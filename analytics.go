package nwhy

import (
	"context"

	"nwhy/internal/core"
	"nwhy/internal/graph"
	"nwhy/internal/hygra"
)

// BFSVariant selects a hypergraph BFS implementation.
type BFSVariant int

const (
	// BFSTopDown expands frontiers outward on the bipartite representation
	// (HyperBFS top-down).
	BFSTopDown BFSVariant = iota
	// BFSBottomUp has unvisited entities scan backward for frontier members
	// (HyperBFS bottom-up).
	BFSBottomUp
	// BFSAdjoin runs direction-optimizing BFS on the adjoin representation
	// (AdjoinBFS).
	BFSAdjoin
	// BFSHygraBaseline runs the Hygra-style top-down baseline.
	BFSHygraBaseline
	// BFSDirectionOptimizing runs the hybrid top-down/bottom-up BFS on the
	// bipartite representation.
	BFSDirectionOptimizing
)

// BFS traverses the hypergraph from hyperedge srcEdge, returning bipartite
// hop levels for hyperedges and hypernodes (-1 = unreachable). All variants
// produce identical levels; they differ in traversal strategy and
// representation, which is what Figure 8 benchmarks. If the bound engine's
// context is cancelled the result is nil; use BFSCtx to observe the error.
func (g *NWHypergraph) BFS(srcEdge int, variant BFSVariant) *core.HyperBFSResult {
	r, _ := g.bfsOn(g.engine(), srcEdge, variant)
	return r
}

// BFSCtx is BFS bounded by ctx: the traversal stops scheduling new rounds
// once ctx is cancelled and returns ctx.Err().
func (g *NWHypergraph) BFSCtx(ctx context.Context, srcEdge int, variant BFSVariant) (*core.HyperBFSResult, error) {
	return g.bfsOn(g.engine().WithContext(ctx), srcEdge, variant)
}

func (g *NWHypergraph) bfsOn(eng *Engine, srcEdge int, variant BFSVariant) (*core.HyperBFSResult, error) {
	switch variant {
	case BFSBottomUp:
		return core.HyperBFSBottomUp(eng, g.hg(), srcEdge)
	case BFSAdjoin:
		return core.AdjoinBFS(eng, g.Adjoin(), srcEdge)
	case BFSHygraBaseline:
		el, nl, err := hygra.BFS(eng, g.hg(), srcEdge)
		if err != nil {
			return nil, err
		}
		return &core.HyperBFSResult{EdgeLevel: el, NodeLevel: nl}, nil
	case BFSDirectionOptimizing:
		return core.HyperBFSDirectionOptimizing(eng, g.hg(), srcEdge)
	default:
		return core.HyperBFSTopDown(eng, g.hg(), srcEdge)
	}
}

// CCVariant selects a hypergraph connected-components implementation.
type CCVariant int

const (
	// CCHyper is label propagation on the bipartite representation
	// (HyperCC).
	CCHyper CCVariant = iota
	// CCAdjoinAfforest runs Afforest on the adjoin representation
	// (AdjoinCC, the paper's default).
	CCAdjoinAfforest
	// CCAdjoinLabelProp runs label propagation on the adjoin
	// representation.
	CCAdjoinLabelProp
	// CCHygraBaseline runs the Hygra-style label-propagation baseline.
	CCHygraBaseline
)

// HyperTree builds the BFS forest (hypertree) rooted at hyperedge srcEdge,
// recording discovery parents on both sides; hyperpaths between entities
// are read off its parent links.
func (g *NWHypergraph) HyperTree(srcEdge int) *core.HyperTree {
	t, _ := core.BuildHyperTree(g.engine(), g.hg(), srcEdge)
	return t
}

// AdjoinBetweenness computes exact betweenness centrality of every
// hyperedge and hypernode under the bipartite-walk metric by running
// Brandes' algorithm on the adjoin representation and splitting the scores
// — the paper's "any graph algorithm can be used to compute hypergraph
// metrics" claim, applied to a metric no bespoke hypergraph kernel exists
// for here.
func (g *NWHypergraph) AdjoinBetweenness(normalized bool) (edgeBC, nodeBC []float64) {
	a := g.Adjoin()
	scores := graph.BetweennessCentrality(g.engine(), a.G, normalized)
	e, n := core.SplitResult(a, scores)
	return append([]float64(nil), e...), append([]float64(nil), n...)
}

// AdjoinCloseness computes closeness centrality over the adjoin
// representation, split into the hyperedge and hypernode index spaces.
func (g *NWHypergraph) AdjoinCloseness() (edgeC, nodeC []float64) {
	a := g.Adjoin()
	scores := graph.ClosenessCentrality(g.engine(), a.G)
	e, n := core.SplitResult(a, scores)
	return append([]float64(nil), e...), append([]float64(nil), n...)
}

// AdjoinEccentricity computes bipartite-hop eccentricities over the adjoin
// representation, split into the two index spaces.
func (g *NWHypergraph) AdjoinEccentricity() (edgeEcc, nodeEcc []float64) {
	a := g.Adjoin()
	scores := graph.Eccentricity(g.engine(), a.G)
	e, n := core.SplitResult(a, scores)
	return append([]float64(nil), e...), append([]float64(nil), n...)
}

// AdjoinPageRank computes PageRank on the adjoin representation and splits
// the mass into hyperedge and hypernode scores. Note the random walk here
// alternates sides every step (the adjoin graph is bipartite), so hypernode
// scores differ from HyperPageRank's two-step walk by the mass parked on
// hyperedges.
func (g *NWHypergraph) AdjoinPageRank(damping, tol float64, maxIter int) (edgePR, nodePR []float64) {
	a := g.Adjoin()
	scores := graph.PageRank(g.engine(), a.G, damping, tol, maxIter)
	e, n := core.SplitResult(a, scores)
	return append([]float64(nil), e...), append([]float64(nil), n...)
}

// HyperPageRank computes PageRank over hypernodes via the two-step random
// walk on the bipartite structure (node -> uniform hyperedge -> uniform
// member), without materializing any projection.
func (g *NWHypergraph) HyperPageRank(damping, tol float64, maxIter int) []float64 {
	pr, _ := core.HyperPageRank(g.engine(), g.hg(), damping, tol, maxIter)
	return pr
}

// HyperPageRankCtx is HyperPageRank bounded by ctx: iteration stops at the
// next round boundary once ctx is cancelled and ctx.Err() is returned.
func (g *NWHypergraph) HyperPageRankCtx(ctx context.Context, damping, tol float64, maxIter int) ([]float64, error) {
	return core.HyperPageRank(g.engine().WithContext(ctx), g.hg(), damping, tol, maxIter)
}

// HyperCoreness computes each hypernode's hypergraph core number under
// peeling semantics: removing a hypernode kills every hyperedge containing
// it; v's core number is the largest k it survives to.
func (g *NWHypergraph) HyperCoreness() []int {
	return core.HyperCoreness(g.hg())
}

// ConnectedComponents labels every hyperedge and hypernode with its
// component (canonical shared-space labels). All variants produce identical
// labels; Figure 7 benchmarks their runtime differences. If the bound
// engine's context is cancelled the result is nil; use
// ConnectedComponentsCtx to observe the error.
func (g *NWHypergraph) ConnectedComponents(variant CCVariant) *core.HyperCCResult {
	r, _ := g.ccOn(g.engine(), variant)
	return r
}

// ConnectedComponentsCtx is ConnectedComponents bounded by ctx: the fixpoint
// loop stops at the next round boundary once ctx is cancelled and returns
// ctx.Err().
func (g *NWHypergraph) ConnectedComponentsCtx(ctx context.Context, variant CCVariant) (*core.HyperCCResult, error) {
	return g.ccOn(g.engine().WithContext(ctx), variant)
}

func (g *NWHypergraph) ccOn(eng *Engine, variant CCVariant) (*core.HyperCCResult, error) {
	switch variant {
	case CCAdjoinAfforest:
		return core.AdjoinCC(eng, g.Adjoin(), core.AdjoinAfforest)
	case CCAdjoinLabelProp:
		return core.AdjoinCC(eng, g.Adjoin(), core.AdjoinLabelPropagation)
	case CCHygraBaseline:
		ec, nc, err := hygra.CC(eng, g.hg())
		if err != nil {
			return nil, err
		}
		return &core.HyperCCResult{EdgeComp: ec, NodeComp: nc}, nil
	default:
		return core.HyperCC(eng, g.hg())
	}
}
