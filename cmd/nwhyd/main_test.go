package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"nwhy"
)

// syncWriter is a goroutine-safe capture buffer for the daemon's stdout.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

var listenRE = regexp.MustCompile(`listening on ([^ ]+) `)

// TestDaemonLifecycle boots the daemon on an ephemeral port against a
// warm-start directory, queries it over HTTP, then cancels the signal
// context and asserts a clean drain.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	g := nwhy.FromSets([][]uint32{{0, 1, 2}, {2, 3}, {3, 4}, {5, 6}}, 7)
	if err := g.SaveSnapshot(filepath.Join(dir, "demo.nwhyb")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &syncWriter{}
	runErr := make(chan error, 1)
	go func() {
		runErr <- run(ctx, []string{"-addr", "127.0.0.1:0", "-data", dir, "-threads", "2"}, out)
	}()

	// Wait for the daemon to print its actual listen address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("daemon exited early: %v\noutput: %s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	get := func(path string, into any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s status = %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s decode: %v", path, err)
		}
	}

	var health struct {
		Status   string   `json:"status"`
		Datasets []string `json:"datasets"`
	}
	get("/healthz", &health)
	if health.Status != "ok" || len(health.Datasets) != 1 || health.Datasets[0] != "demo" {
		t.Fatalf("health = %+v", health)
	}

	var sl struct {
		NumVertices int  `json:"num_vertices"`
		CacheHit    bool `json:"cache_hit"`
	}
	get("/slinegraph?dataset=demo&s=1", &sl)
	if sl.NumVertices != 4 || sl.CacheHit {
		t.Fatalf("slinegraph = %+v", sl)
	}
	get("/slinegraph?dataset=demo&s=1", &sl)
	if !sl.CacheHit {
		t.Fatalf("repeated slinegraph = %+v, want cache hit", sl)
	}

	var scc struct {
		NumComponents int `json:"num_components"`
	}
	get("/scc?dataset=demo&s=1", &scc)
	if scc.NumComponents != 2 {
		t.Fatalf("scc = %+v, want 2 components", scc)
	}

	// Signal-context cancellation drains the server and run returns nil.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v after drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain; output: %s", out.String())
	}
	if !strings.Contains(out.String(), "drained") {
		t.Fatalf("missing drain message; output: %s", out.String())
	}
}

func TestDaemonRequiresDatasets(t *testing.T) {
	err := run(context.Background(), []string{"-addr", "127.0.0.1:0"}, &syncWriter{})
	if err == nil || !strings.Contains(err.Error(), "no datasets") {
		t.Fatalf("err = %v, want no-datasets error", err)
	}
}

func TestDaemonBadDatasetFlag(t *testing.T) {
	err := run(context.Background(), []string{"-dataset", "nopath"}, &syncWriter{})
	if err == nil || !strings.Contains(fmt.Sprint(err), "name=path") {
		t.Fatalf("err = %v, want name=path complaint", err)
	}
}
