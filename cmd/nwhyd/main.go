// Command nwhyd is the NWHy-Go hypergraph query daemon: it loads datasets
// into the concurrency-safe serving core (internal/server) and answers the
// full per-query surface — s-line construction, s-connected components,
// s-distances and paths, centralities, toplexes, statistics — over stdlib
// HTTP, with admission control, an s-line result cache, and graceful drain
// on SIGTERM. Datasets are mutable in place: POST /mutate stages hyperedge
// insertions and removals through the delta overlay (committed per the
// -compact-every policy), POST /compact flushes staged operations into a
// fresh snapshot on demand, and /scc?incremental=true serves connectivity
// from the maintained union-find view across insert-only commits.
// /scc?sharded=true runs k-shard execution (partitioned sub-hypergraphs on
// dedicated engines, halo merge); -partition name=k sets the per-dataset
// default shard count, overridable per request with &parts=k.
//
// Usage:
//
//	nwhyd -addr :8080 -data ./snapshots            # warm-start a directory
//	nwhyd -dataset dblp=dblp.nwhyb web.mtx         # name=path and positional
//	nwhyd -preset dblp-mini -scale 0.5             # built-in generator preset
//	nwhyd -data ./snapshots -compact-every 64      # batch mutations 64 ops/commit
//	nwhyd -data ./snapshots -partition dblp=4      # shard hint for /scc?sharded=true
//
// Query endpoints (GET, JSON): /healthz, /metrics, /datasets, /stats,
// /toplexes, /slinegraph, /scc, /sdistance, /spath, /centrality.
// Mutation endpoints (POST, JSON): /mutate, /compact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"nwhy"
	"nwhy/internal/gen"
	"nwhy/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run is the whole daemon, parameterized for tests: ctx cancellation (the
// signal context in main) triggers graceful drain, and the actual listen
// address is printed to stdout before serving so callers may pass ":0".
func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nwhyd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:8080", "listen address")
		dataDir    = fs.String("data", "", "directory of .nwhyb/.mtx files to warm-start")
		presetName = fs.String("preset", "", "also serve a generator preset")
		scale      = fs.Float64("scale", 1.0, "preset scale factor")
		threads    = fs.Int("threads", 0, "engine worker count (0: GOMAXPROCS)")
		inflight   = fs.Int("inflight", 0, "max concurrently executing queries (0: 2x workers)")
		queue      = fs.Int("queue", 0, "max queries waiting for a slot (0: 4x inflight)")
		queueWait  = fs.Duration("queue-wait", 2*time.Second, "max time a query waits for a slot")
		cacheSize  = fs.Int("cache", 64, "s-line result cache entries")
		compactN   = fs.Int("compact-every", 1, "staged mutation ops per dataset before auto-compaction (1: commit every request)")
		drain      = fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight queries on shutdown")
	)
	var named []string
	fs.Func("dataset", "load a dataset as name=path (repeatable)", func(v string) error {
		if !strings.Contains(v, "=") {
			return fmt.Errorf("want name=path, got %q", v)
		}
		named = append(named, v)
		return nil
	})
	hints := map[string]int{}
	fs.Func("partition", "per-dataset shard-count hint as name=k for /scc?sharded=true (repeatable)", func(v string) error {
		name, ks, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want name=k, got %q", v)
		}
		var k int
		if _, err := fmt.Sscanf(ks, "%d", &k); err != nil || k < 1 {
			return fmt.Errorf("want a positive shard count, got %q", ks)
		}
		hints[name] = k
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng := nwhy.NewEngine(*threads)
	reg := server.NewRegistry()
	if *dataDir != "" {
		names, err := reg.WarmStart(ctx, eng.WithContext(ctx), *dataDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "warm-started %d dataset(s) from %s: %s\n", len(names), *dataDir, strings.Join(names, ", "))
	}
	for _, nv := range named {
		name, path, _ := strings.Cut(nv, "=")
		g, err := nwhy.LoadFile(path, nwhy.LoadOptions{Engine: eng})
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		reg.Add(name, g, path)
	}
	for _, path := range fs.Args() {
		g, err := nwhy.LoadFile(path, nwhy.LoadOptions{Engine: eng})
		if err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		reg.Add(name, g, path)
	}
	if *presetName != "" {
		p, err := gen.ByName(*presetName)
		if err != nil {
			return err
		}
		reg.Add(p.Name, nwhy.Wrap(p.Build(*scale)).WithEngine(eng), "preset")
	}
	if reg.Len() == 0 {
		return errors.New("no datasets: pass -data, -dataset, -preset, or file arguments")
	}

	srv, err := server.New(server.Config{
		Engine:         eng,
		MaxInFlight:    *inflight,
		MaxQueue:       *queue,
		QueueWait:      *queueWait,
		CacheEntries:   *cacheSize,
		CompactEvery:   *compactN,
		PartitionHints: hints,
	}, reg)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "nwhyd listening on %s (%d dataset(s), %d worker(s))\n",
		ln.Addr(), reg.Len(), eng.NumWorkers())

	hs := &http.Server{Handler: srv.Handler()}
	// Graceful drain: when the signal context fires, stop accepting and give
	// in-flight queries until the drain timeout. AfterFunc runs the drain
	// off the serve loop without a hand-rolled goroutine, and WithoutCancel
	// keeps the already-fired signal context from zeroing the budget.
	drained := make(chan struct{})
	stopDrain := context.AfterFunc(ctx, func() {
		defer close(drained)
		sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drain)
		defer cancel()
		_ = hs.Shutdown(sctx)
	})
	defer stopDrain()

	err = hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) && ctx.Err() != nil {
		<-drained
		fmt.Fprintln(stdout, "nwhyd drained, bye")
		return nil
	}
	return err
}
