package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeExample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.mtx")
	content := `%%MatrixMarket matrix coordinate pattern general
4 9 13
1 1
1 2
1 3
2 3
2 4
2 5
3 5
3 6
3 7
4 7
4 8
4 9
4 1
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestHyperstatsFile(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{writeExample(t)}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "9") || !strings.Contains(s, "4") {
		t.Fatalf("stats missing counts: %q", s)
	}
}

func TestHyperstatsComponentsAndToplexes(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-components", "-toplexes", "-dists", writeExample(t)}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "connected components: 1") {
		t.Fatalf("components missing: %q", s)
	}
	if !strings.Contains(s, "toplexes: 4 of 4") {
		t.Fatalf("toplexes missing: %q", s)
	}
	if !strings.Contains(s, "edge-size distribution") {
		t.Fatalf("dists missing: %q", s)
	}
}

func TestHyperstatsPreset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-preset", "rand1-mini", "-scale", "0.01"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rand1-mini") {
		t.Fatal("preset name missing from output")
	}
}

// -save-snapshot must write a .nwhyb the tool itself can then read back,
// with -serial-parse producing the same stats from the text original.
func TestHyperstatsSnapshotRoundTrip(t *testing.T) {
	mtx := writeExample(t)
	snap := filepath.Join(t.TempDir(), "h.nwhyb")
	var out bytes.Buffer
	if err := run([]string{"-save-snapshot", snap, mtx}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "snapshot written to "+snap) {
		t.Fatalf("snapshot confirmation missing: %q", out.String())
	}
	statsOf := func(args ...string) string {
		var b bytes.Buffer
		if err := run(args, &b); err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(b.String()), "\n")
		last := lines[len(lines)-1]
		return last[strings.IndexAny(last, " \t"):] // drop the input-name column
	}
	text := statsOf(mtx)
	serial := statsOf("-serial-parse", mtx)
	bin := statsOf(snap)
	if text != serial || text != bin {
		t.Fatalf("stats disagree:\ntext:   %q\nserial: %q\nbinary: %q", text, serial, bin)
	}
}

func TestHyperstatsErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no input accepted")
	}
	if err := run([]string{"-preset", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"/nonexistent.mtx"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
