// Command hyperstats prints the Table I characteristics row — |V|, |E|,
// mean degrees, max degrees — for a Matrix Market hypergraph file or a
// named preset, plus connectivity structure on request.
//
// Usage:
//
//	hyperstats file.mtx
//	hyperstats -preset web-mini -scale 0.5 -components -toplexes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nwhy"
	"nwhy/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hyperstats", flag.ContinueOnError)
	var (
		presetName = fs.String("preset", "", "use a generator preset instead of a file")
		scale      = fs.Float64("scale", 1.0, "preset scale factor")
		components = fs.Bool("components", false, "also compute connected components")
		toplexes   = fs.Bool("toplexes", false, "also count toplexes")
		scc        = fs.Int("scc", 0, "also compute s-connected components at this s (0 = off)")
		dists      = fs.Bool("dists", false, "also print degree distribution tails")
		serial     = fs.Bool("serial-parse", false, "parse Matrix Market input single-threaded")
		snapOut    = fs.String("save-snapshot", "", "also write the loaded hypergraph as a .nwhyb snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *nwhy.NWHypergraph
	var name string
	switch {
	case *presetName != "":
		p, err := gen.ByName(*presetName)
		if err != nil {
			return err
		}
		g = nwhy.Wrap(p.Build(*scale))
		name = *presetName
	case fs.NArg() == 1:
		var err error
		g, err = nwhy.LoadFile(fs.Arg(0), nwhy.LoadOptions{Serial: *serial})
		if err != nil {
			return err
		}
		name = fs.Arg(0)
	default:
		return fmt.Errorf("usage: hyperstats [-preset name [-scale f]] [file.mtx|file.nwhyb]")
	}
	if *snapOut != "" {
		if err := g.SaveSnapshot(*snapOut); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "snapshot written to %s\n", *snapOut)
	}

	st := g.Stats()
	fmt.Fprintf(stdout, "%-14s %12s %12s %8s %8s %10s %10s\n",
		"input", "|V|", "|E|", "d̄v", "d̄e", "Δv", "Δe")
	fmt.Fprintf(stdout, "%-14s %12d %12d %8.1f %8.1f %10d %10d\n",
		name, st.NumNodes, st.NumEdges, st.AvgNodeDegree, st.AvgEdgeDegree,
		st.MaxNodeDegree, st.MaxEdgeDegree)

	if *components {
		cc := g.ConnectedComponents(nwhy.CCAdjoinAfforest)
		fmt.Fprintf(stdout, "connected components: %d\n", cc.NumComponents())
	}
	if *toplexes {
		// Served from the facade's epoch-keyed toplex cache; a following
		// -scc pass reuses the warm cache for its toplex-pruned kernel run.
		fmt.Fprintf(stdout, "toplexes: %d of %d hyperedges are maximal\n", len(g.Toplexes()), g.NumEdges())
	}
	if *scc > 0 {
		labels := g.SConnectedComponentsPruned(*scc, nwhy.PruneAuto)
		distinct := map[uint32]bool{}
		for _, c := range labels {
			distinct[c] = true
		}
		fmt.Fprintf(stdout, "%d-connected components: %d\n", *scc, len(distinct))
	}
	if *dists {
		printTail(stdout, "edge-size", g.EdgeSizeDist())
		printTail(stdout, "node-degree", g.NodeDegreeDist())
	}
	return nil
}

// printTail prints the non-zero head of a histogram plus its maximum.
func printTail(w io.Writer, label string, hist []int) {
	fmt.Fprintf(w, "%s distribution (d:count):", label)
	shown := 0
	for d, c := range hist {
		if c == 0 {
			continue
		}
		fmt.Fprintf(w, " %d:%d", d, c)
		shown++
		if shown >= 8 {
			fmt.Fprintf(w, " ... max=%d", len(hist)-1)
			break
		}
	}
	fmt.Fprintln(w)
}
