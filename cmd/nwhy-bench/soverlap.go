package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"slices"
	"time"

	"nwhy"
	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/slinegraph"
	"nwhy/internal/smetrics"
)

// soverlapReport is the BENCH_soverlap.json schema: one entry per
// (dataset, s) with the full strategy x schedule sweep and the
// pairs-path vs direct-CSR allocation comparison.
type soverlapReport struct {
	Scale   float64          `json:"scale"`
	Reps    int              `json:"reps"`
	Workers int              `json:"workers"`
	Results []soverlapResult `json:"results"`
}

type soverlapResult struct {
	Dataset   string          `json:"dataset"`
	NumEdges  int             `json:"num_edges"`
	NumNodes  int             `json:"num_nodes"`
	S         int             `json:"s"`
	LineEdges int             `json:"line_edges"`
	Sweep     []soverlapEntry `json:"sweep"`
	Alloc     soverlapAlloc   `json:"alloc"`
	// Connectivity-intent prune sweep: s-connected-components timing at each
	// prune level, with every pruned labelling pinned bit-identical to the
	// unpruned baseline (PrunedLabelsEqual is the CI assertion).
	NumComponents     int                  `json:"num_components"`
	PruneSweep        []soverlapPruneEntry `json:"prune_sweep"`
	PrunedLabelsEqual bool                 `json:"pruned_labels_equal"`
}

type soverlapEntry struct {
	Strategy string `json:"strategy"`
	Schedule string `json:"schedule"`
	Nanos    int64  `json:"ns"`
}

type soverlapPruneEntry struct {
	Prune string `json:"prune"`
	Nanos int64  `json:"ns"`
}

// soverlapAlloc compares heap traffic of the two smetrics build paths for
// the same (dataset, s): the legacy pairs path materializes a global edge
// list and re-sorts it into a CSR; the direct path scatters the kernel's
// per-worker buffers straight into the CSR.
type soverlapAlloc struct {
	PairsPathBytes uint64 `json:"pairs_path_bytes"`
	DirectCSRBytes uint64 `json:"direct_csr_bytes"`
}

// soverlapInputs are the sweep inputs: bipartite power-law hypergraphs at
// two skew exponents (mean edge degree ~6), where work-per-hyperedge varies
// enough for the schedule axis to matter, plus a containment-rich shape
// where most hyperedges nest inside a base toplex — the case toplex pruning
// targets.
func soverlapInputs(scale float64) []struct {
	name string
	h    *core.Hypergraph
} {
	ne, nv := int(20000*scale), int(15000*scale)
	return []struct {
		name string
		h    *core.Hypergraph
	}{
		{"powerlaw-1.6", gen.BipartitePowerLaw(ne, nv, 6*ne, 1.6, 42)},
		{"powerlaw-2.0", gen.BipartitePowerLaw(ne, nv, 6*ne, 2.0, 42)},
		{"containment", gen.Containment(gen.ContainmentConfig{
			NumBase: int(2400 * scale), NumNodes: int(16000 * scale),
			BaseSize: 24, SubsPerBase: 7, MemberSkew: 0.45, Seed: 43,
		})},
	}
}

// allocBytes reports the heap bytes allocated while fn runs (single
// measurement after a forced GC; coarse but directional).
func allocBytes(fn func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	fn()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// soverlap runs the kernel strategy/schedule sweep on skewed-degree inputs,
// prints a summary table, and writes the machine-readable report (including
// the before/after allocation comparison of the CSR assembly) to outPath.
func soverlap(w io.Writer, scale float64, sList []int, reps int, outPath string) error {
	fmt.Fprintf(w, "== S-overlap kernel sweep: strategy x schedule (scale %.2f) ==\n", scale)
	strategies := []nwhy.Strategy{nwhy.StrategyAuto, nwhy.StrategyHashmap, nwhy.StrategyDense, nwhy.StrategyIntersection}
	schedules := []nwhy.Schedule{nwhy.ScheduleBlocked, nwhy.ScheduleCyclic, nwhy.ScheduleQueue}
	report := soverlapReport{Scale: scale, Reps: reps, Workers: runtime.GOMAXPROCS(0)}
	for _, in := range soverlapInputs(scale) {
		g := nwhy.Wrap(in.h)
		eng := g.Engine()
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d) --\n", in.name, g.NumEdges(), g.NumNodes())
		for _, s := range sList {
			res := soverlapResult{
				Dataset: in.name, NumEdges: g.NumEdges(), NumNodes: g.NumNodes(), S: s,
			}
			fmt.Fprintf(w, "%-6s", fmt.Sprintf("s=%d", s))
			for _, sched := range schedules {
				fmt.Fprintf(w, "%24s", sched)
			}
			fmt.Fprintln(w)
			for _, strat := range strategies {
				fmt.Fprintf(w, "  %-12s", strat)
				for _, sched := range schedules {
					o := nwhy.ConstructOptions{Strategy: strat, Schedule: sched}
					var lg *nwhy.SLineGraph
					d := measure(reps, func() { lg = g.SLineGraphWith(s, true, o) })
					res.LineEdges = lg.NumEdges()
					res.Sweep = append(res.Sweep, soverlapEntry{
						Strategy: strat.String(), Schedule: sched.String(), Nanos: d.Nanoseconds(),
					})
					fmt.Fprintf(w, "%24s", d.Round(time.Microsecond))
				}
				fmt.Fprintln(w)
			}
			// Before/after allocation comparison of the smetrics build:
			// global pair list + re-sort vs direct per-worker CSR assembly.
			hin := slinegraph.FromHypergraph(in.h)
			res.Alloc.PairsPathBytes = allocBytes(func() {
				pairs, err := slinegraph.Construct(eng, hin, s, slinegraph.Options{})
				if err == nil {
					smetrics.BuildWith(eng, in.h, s, pairs)
				}
			})
			res.Alloc.DirectCSRBytes = allocBytes(func() {
				_, _ = smetrics.BuildOptions(eng, in.h, s, slinegraph.Options{})
			})
			fmt.Fprintf(w, "  alloc: pairs-path %d B, direct-CSR %d B (%.2fx)\n",
				res.Alloc.PairsPathBytes, res.Alloc.DirectCSRBytes,
				float64(res.Alloc.DirectCSRBytes)/float64(max64(res.Alloc.PairsPathBytes, 1)))
			// Connectivity-intent prune sweep: s-CC at each prune level, with
			// the unpruned run as the label baseline. PruneToplex warms the
			// facade's toplex cache on its first rep; min-of-reps then shows
			// the steady (warm-cache) cost at reps > 1.
			prunes := []nwhy.Prune{nwhy.PruneNone, nwhy.PruneDegree, nwhy.PruneConnectivity, nwhy.PruneToplex}
			var base []uint32
			res.PrunedLabelsEqual = true
			fmt.Fprintf(w, "  scc prune:")
			for _, p := range prunes {
				var labels []uint32
				d := measure(reps, func() { labels = g.SConnectedComponentsPruned(s, p) })
				if p == nwhy.PruneNone {
					base = labels
					distinct := map[uint32]bool{}
					for _, c := range labels {
						distinct[c] = true
					}
					res.NumComponents = len(distinct)
				} else if !slices.Equal(labels, base) {
					res.PrunedLabelsEqual = false
				}
				res.PruneSweep = append(res.PruneSweep, soverlapPruneEntry{Prune: p.String(), Nanos: d.Nanoseconds()})
				fmt.Fprintf(w, " %s=%s", p, d.Round(time.Microsecond))
			}
			fmt.Fprintf(w, " (labels_equal=%v)\n", res.PrunedLabelsEqual)
			report.Results = append(report.Results, res)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n\n", outPath)
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
