package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"nwhy"
	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/partition"
)

// partitionReport is the BENCH_partition.json schema: one entry per dataset
// with the cut quality of the partitioner against the random baseline, the
// locality speedup of part-contiguous relabeling on the s-overlap and
// frontier kernels, and the sharded vs direct s-CC comparison.
type partitionReport struct {
	Scale   float64           `json:"scale"`
	K       int               `json:"k"`
	Reps    int               `json:"reps"`
	Workers int               `json:"workers"`
	Results []partitionResult `json:"results"`
}

type partitionResult struct {
	Dataset         string             `json:"dataset"`
	NumEdges        int                `json:"num_edges"`
	NumNodes        int                `json:"num_nodes"`
	PartitionNanos  int64              `json:"partition_ns"`
	CutLambdaMinus1 int64              `json:"cut_lambda_minus_1"`
	CutRandom       int64              `json:"cut_random"`
	CutImproved     bool               `json:"cut_improved"`
	Imbalance       float64            `json:"imbalance"`
	ShardOwnedEdges []int              `json:"shard_owned_edges"`
	ShardBalance    float64            `json:"shard_balance"`
	Kernels         []partitionKernel  `json:"kernels"`
	ShardedSCC      []shardedSCCResult `json:"sharded_scc"`
}

// partitionKernel compares one kernel on the original handle against the
// same kernel on the RelabelByPartition handle (identical work, different
// ID locality).
type partitionKernel struct {
	Kernel      string  `json:"kernel"`
	OriginalNS  int64   `json:"original_ns"`
	RelabeledNS int64   `json:"relabeled_ns"`
	Speedup     float64 `json:"speedup"`
}

type shardedSCCResult struct {
	S                  int   `json:"s"`
	DirectNS           int64 `json:"direct_ns"`
	ShardedNS          int64 `json:"sharded_ns"`
	ShardedLabelsEqual bool  `json:"sharded_labels_equal"`
}

// partitionInputs are the locality-sweep inputs: a planted-community
// hypergraph (where a good partitioner recovers near-disjoint parts) and a
// skewed bipartite power-law graph with no planted structure. The power-law
// incidence budget keeps mean hyperedge size near 6 at every scale.
func partitionInputs(scale float64) []struct {
	name string
	h    *core.Hypergraph
} {
	ne, nv := int(8000*scale), int(10000*scale)
	return []struct {
		name string
		h    *core.Hypergraph
	}{
		{"community", gen.Community(gen.CommunityConfig{
			NumEdges: ne, NumNodes: nv, MeanEdgeSize: 6, SizeSkew: 1.5, MemberSkew: 0.3, Seed: 7,
		})},
		{"powerlaw-1.6", gen.BipartitePowerLaw(ne, nv, ne*6, 1.6, 7)},
	}
}

// partitionBench measures, per dataset: the k-way partition build time and
// its λ−1 cut against the hashed random baseline, node imbalance, per-shard
// owned-hyperedge balance, the relabeling speedup on the s-overlap
// construction and frontier BFS kernels, and sharded vs direct s-CC (with a
// label-equality check). The machine-readable report goes to outPath.
func partitionBench(w io.Writer, scale float64, sList []int, reps, k int, outPath string) error {
	fmt.Fprintf(w, "== Partition: cut quality, locality relabeling, k-shard s-CC (scale %.2f, k=%d) ==\n", scale, k)
	report := partitionReport{Scale: scale, K: k, Reps: reps, Workers: runtime.GOMAXPROCS(0)}
	for _, in := range partitionInputs(scale) {
		g := nwhy.Wrap(in.h)
		eng := g.Engine()
		res := partitionResult{Dataset: in.name, NumEdges: g.NumEdges(), NumNodes: g.NumNodes()}
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d) --\n", in.name, g.NumEdges(), g.NumNodes())

		// Time the internal partitioner: the facade caches per epoch, which
		// would turn every rep after the first into a map lookup.
		d := measure(reps, func() {
			if _, err := partition.Partition(eng, in.h, partition.Options{K: k}); err != nil {
				panic(err)
			}
		})
		p, err := g.Partition(nwhy.PartitionOptions{K: k})
		if err != nil {
			return err
		}
		res.PartitionNanos = d.Nanoseconds()
		res.CutLambdaMinus1 = p.Cut()
		res.CutRandom = partition.ConnectivityCut(eng, in.h, partition.BaselineParts(g.NumNodes(), k), k)
		res.CutImproved = res.CutLambdaMinus1 < res.CutRandom
		res.Imbalance = partition.Imbalance(p.NodeParts(), k)
		fmt.Fprintf(w, "  partition %12s   cut %d vs random %d (%.2fx)   imbalance %.3f\n",
			d.Round(time.Microsecond), res.CutLambdaMinus1, res.CutRandom,
			float64(res.CutRandom)/float64(maxInt64(res.CutLambdaMinus1, 1)), res.Imbalance)

		sm, err := partition.BuildShardMap(eng, in.h, &partition.Result{
			K: p.K(), NodeParts: p.NodeParts(), EdgeParts: p.EdgeParts(), Cut: p.Cut(),
		})
		if err != nil {
			return err
		}
		maxOwned := 0
		for _, sh := range sm.Shards {
			res.ShardOwnedEdges = append(res.ShardOwnedEdges, sh.NumOwned)
			if sh.NumOwned > maxOwned {
				maxOwned = sh.NumOwned
			}
		}
		res.ShardBalance = float64(maxOwned) * float64(k) / float64(maxInt(g.NumEdges(), 1))
		fmt.Fprintf(w, "  shard owned edges %v (balance %.3f)\n", res.ShardOwnedEdges, res.ShardBalance)

		rg, rl, err := g.RelabelByPartition(p)
		if err != nil {
			return err
		}
		src := maxDegreeEdge(g)
		kernels := []struct {
			name string
			run  func(h *nwhy.NWHypergraph, relabeled bool)
		}{
			{"soverlap-construct-s2", func(h *nwhy.NWHypergraph, _ bool) {
				h.SLineGraphWith(2, true, nwhy.ConstructOptions{})
			}},
			{"frontier-bfs", func(h *nwhy.NWHypergraph, relabeled bool) {
				s := src
				if relabeled {
					s = int(rl.EdgeInv[src])
				}
				h.BFS(s, nwhy.BFSTopDown)
			}},
		}
		for _, kn := range kernels {
			orig := measure(reps, func() { kn.run(g, false) })
			rel := measure(reps, func() { kn.run(rg, true) })
			e := partitionKernel{
				Kernel: kn.name, OriginalNS: orig.Nanoseconds(), RelabeledNS: rel.Nanoseconds(),
				Speedup: float64(orig.Nanoseconds()) / float64(maxInt64(rel.Nanoseconds(), 1)),
			}
			res.Kernels = append(res.Kernels, e)
			fmt.Fprintf(w, "  %-24s original %12s  relabeled %12s  (%.2fx)\n",
				kn.name, orig.Round(time.Microsecond), rel.Round(time.Microsecond), e.Speedup)
		}

		for _, s := range sList {
			var want, got []uint32
			dd := measure(reps, func() { want = g.SConnectedComponentsDirect(s) })
			ds := measure(reps, func() {
				var err error
				got, err = g.SConnectedComponentsSharded(s, k)
				if err != nil {
					panic(err)
				}
			})
			entry := shardedSCCResult{
				S: s, DirectNS: dd.Nanoseconds(), ShardedNS: ds.Nanoseconds(),
				ShardedLabelsEqual: labelsEqual(want, got),
			}
			res.ShardedSCC = append(res.ShardedSCC, entry)
			fmt.Fprintf(w, "  s-CC s=%d direct %12s  sharded(k=%d) %12s  labels equal: %v\n",
				s, dd.Round(time.Microsecond), k, ds.Round(time.Microsecond), entry.ShardedLabelsEqual)
		}
		report.Results = append(report.Results, res)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n\n", outPath)
	return nil
}

func labelsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
