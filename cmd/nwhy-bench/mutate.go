package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"nwhy"
	"nwhy/internal/gen"
)

// mutateReport is the BENCH_mutate.json schema: the dynamic-overlay study
// contrasting incremental s-CC maintenance against full recomputes across an
// insert-heavy mutation workload, a delete phase pinning the forced
// fallback, and the final compact-vs-rebuild differential.
type mutateReport struct {
	Experiment   string  `json:"experiment"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Scale        float64 `json:"scale"`
	Dataset      string  `json:"dataset"`
	S            int     `json:"s"`
	BaseEdges    int     `json:"base_edges"`
	BaseNodes    int     `json:"base_nodes"`
	Batches      int     `json:"batches"`
	AddsPerBatch int     `json:"adds_per_batch"`

	// Mutation throughput: staging (overlay appends) and commit (parallel
	// compaction into a fresh CSR snapshot) across every insert batch.
	InsertOps       int     `json:"insert_ops"`
	StageTotalMs    float64 `json:"stage_total_ms"`
	CommitTotalMs   float64 `json:"commit_total_ms"`
	CommitMeanMs    float64 `json:"commit_mean_ms"`
	InsertOpsPerSec float64 `json:"insert_ops_per_sec"`

	// Per-batch s-CC maintenance: the incremental view absorbing each
	// insert-only commit versus a full union-find recompute on the same
	// snapshot. The speedup is the acceptance observable.
	IncTotalMs         float64 `json:"incremental_total_ms"`
	IncMeanMs          float64 `json:"incremental_mean_ms"`
	FullTotalMs        float64 `json:"full_total_ms"`
	FullMeanMs         float64 `json:"full_mean_ms"`
	IncrementalSpeedup float64 `json:"incremental_speedup"`
	LabelsEqual        bool    `json:"labels_equal"`
	IncrementalServed  int     `json:"incremental_served"`
	FullServed         int     `json:"full_served"`

	// Delete phase: removals move the tombstone epoch, so the maintained
	// view must fall back to a full recompute (and stay correct).
	DeleteBatches     int  `json:"delete_batches"`
	DeleteForcedFull  bool `json:"delete_forced_full"`
	DeleteLabelsEqual bool `json:"delete_labels_equal"`

	// Final differential: the mutate-then-compact snapshot is bit-identical
	// to a from-scratch rebuild of the same live sets, and committing
	// through the overlay is compared against that rebuild's cost.
	FinalEdges           int     `json:"final_edges"`
	RebuildMs            float64 `json:"rebuild_ms"`
	CompactEqualsRebuild bool    `json:"compact_equals_rebuild"`
}

// mutate drives the dynamic-hypergraph workload: batched hyperedge inserts
// committed through the delta overlay with the incremental s-CC view racing
// a full recompute after every commit, then a delete phase, then the
// compact-vs-rebuild differential.
func mutate(w io.Writer, presets []gen.Preset, scale float64, sList []int, outJSON string) error {
	const (
		batches      = 20
		addsPerBatch = 25
	)
	p := presets[0]
	s := sList[0]
	fmt.Fprintf(w, "== Mutate: delta-overlay commits + incremental s-CC vs full recompute (%s, scale %.2f, s=%d) ==\n",
		p.Name, scale, s)

	eng := nwhy.NewEngine(0)
	defer eng.Close()
	g := nwhy.Wrap(p.Build(scale)).WithEngine(eng)
	ctx := context.Background()

	rep := mutateReport{
		Experiment:   "mutate",
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Scale:        scale,
		Dataset:      p.Name,
		S:            s,
		BaseEdges:    g.NumEdges(),
		BaseNodes:    g.NumNodes(),
		Batches:      batches,
		AddsPerBatch: addsPerBatch,
		LabelsEqual:  true,
	}

	view := g.IncrementalSCC(s)
	if _, _, err := view.Labels(ctx); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(42))
	numNodes := g.NumNodes()
	randomMembers := func() []uint32 {
		members := make([]uint32, 2+rng.Intn(4))
		for j := range members {
			members[j] = uint32(rng.Intn(numNodes))
		}
		return members
	}

	var stage, commit, incTotal, fullTotal time.Duration
	for b := 0; b < batches; b++ {
		m, err := g.BeginMutation()
		if err != nil {
			return err
		}
		t0 := time.Now()
		for k := 0; k < addsPerBatch; k++ {
			if _, err := m.AddEdge(randomMembers()); err != nil {
				return err
			}
		}
		stage += time.Since(t0)
		t0 = time.Now()
		if err := m.CommitCtx(ctx); err != nil {
			return err
		}
		commit += time.Since(t0)

		t0 = time.Now()
		incLabels, _, err := view.Labels(ctx)
		if err != nil {
			return err
		}
		incTotal += time.Since(t0)

		t0 = time.Now()
		fullLabels := g.SConnectedComponentsDirect(s)
		fullTotal += time.Since(t0)
		for i := range incLabels {
			if incLabels[i] != fullLabels[i] {
				rep.LabelsEqual = false
				break
			}
		}
	}
	rep.InsertOps = batches * addsPerBatch
	rep.StageTotalMs = ms(stage)
	rep.CommitTotalMs = ms(commit)
	rep.CommitMeanMs = ms(commit) / batches
	if d := stage + commit; d > 0 {
		rep.InsertOpsPerSec = float64(rep.InsertOps) / d.Seconds()
	}
	rep.IncTotalMs = ms(incTotal)
	rep.IncMeanMs = ms(incTotal) / batches
	rep.FullTotalMs = ms(fullTotal)
	rep.FullMeanMs = ms(fullTotal) / batches
	if incTotal > 0 {
		rep.IncrementalSpeedup = float64(fullTotal) / float64(incTotal)
	}
	rep.IncrementalServed, rep.FullServed = view.Counts()
	fmt.Fprintf(w, "inserts: %d ops in %.1fms stage + %.1fms commit (%.0f ops/s, %.2fms/commit)\n",
		rep.InsertOps, rep.StageTotalMs, rep.CommitTotalMs, rep.InsertOpsPerSec, rep.CommitMeanMs)
	fmt.Fprintf(w, "s-CC:    incremental %.2fms/batch vs full %.2fms/batch — %.1fx speedup (labels equal: %v)\n",
		rep.IncMeanMs, rep.FullMeanMs, rep.IncrementalSpeedup, rep.LabelsEqual)

	// Delete phase: each batch removes live hyperedges, which must force the
	// maintained view off the incremental path without losing correctness.
	rep.DeleteBatches = 3
	rep.DeleteForcedFull, rep.DeleteLabelsEqual = true, true
	for b := 0; b < rep.DeleteBatches; b++ {
		err := g.Mutate(func(m *nwhy.Mutation) error {
			for k := 0; k < 5; k++ {
				if err := m.RemoveEdge(uint32(rng.Intn(g.NumEdges()))); err != nil {
					// Already-removed targets are fine: pick another.
					k--
				}
			}
			_, err := m.AddEdge(randomMembers())
			return err
		})
		if err != nil {
			return err
		}
		incLabels, inc, err := view.Labels(ctx)
		if err != nil {
			return err
		}
		if inc {
			rep.DeleteForcedFull = false
		}
		fullLabels := g.SConnectedComponentsDirect(s)
		for i := range incLabels {
			if incLabels[i] != fullLabels[i] {
				rep.DeleteLabelsEqual = false
				break
			}
		}
	}
	fmt.Fprintf(w, "deletes: %d batches forced full recomputes: %v (labels equal: %v)\n",
		rep.DeleteBatches, rep.DeleteForcedFull, rep.DeleteLabelsEqual)

	// Final differential: rebuild from scratch from the live sets and compare
	// bit-for-bit against the compacted handle.
	rep.FinalEdges = g.NumEdges()
	sets := make([][]uint32, g.NumEdges())
	for e := range sets {
		sets[e] = append([]uint32(nil), g.Incidence(e)...)
	}
	t0 := time.Now()
	want := nwhy.FromSets(sets, g.NumNodes()).WithEngine(eng)
	rep.RebuildMs = ms(time.Since(t0))
	rep.CompactEqualsRebuild = g.Hypergraph().Edges.Equal(want.Hypergraph().Edges) &&
		g.Hypergraph().Nodes.Equal(want.Hypergraph().Nodes)
	fmt.Fprintf(w, "compact: %d edges, equals rebuild: %v (rebuild cost %.2fms vs %.2fms/commit)\n",
		rep.FinalEdges, rep.CompactEqualsRebuild, rep.RebuildMs, rep.CommitMeanMs)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n\n", outJSON)
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
