package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"

	"nwhy"
	"nwhy/internal/gen"
	"nwhy/internal/mmio"
	"nwhy/internal/sparse"
)

// ingestParse is one parallel-parse measurement at a fixed worker count.
type ingestParse struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	MBPerSec    float64 `json:"mb_per_sec"`
	EdgesPerSec float64 `json:"edges_per_sec"`
	// Speedup is serial-parse time over this configuration's time.
	Speedup float64 `json:"speedup_vs_serial"`
}

// ingestResult is the full ingestion profile of one dataset: text parse
// serial and parallel, then the binary snapshot round trip.
type ingestResult struct {
	Dataset        string        `json:"dataset"`
	FileBytes      int64         `json:"file_bytes"`
	Incidences     int           `json:"incidences"`
	SerialSeconds  float64       `json:"serial_seconds"`
	SerialMBPerSec float64       `json:"serial_mb_per_sec"`
	Parallel       []ingestParse `json:"parallel"`
	SnapshotBytes  int64         `json:"snapshot_bytes"`
	SnapshotSave   float64       `json:"snapshot_save_seconds"`
	SnapshotLoad   float64       `json:"snapshot_load_seconds"`
	// SnapshotLoadSpeedupVsText is serial text-parse time over snapshot
	// CSR-load time — what a cached .nwhyb buys over re-parsing.
	SnapshotLoadSpeedupVsText float64 `json:"snapshot_load_speedup_vs_text"`
}

type ingestReport struct {
	Experiment string         `json:"experiment"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Scale      float64        `json:"scale"`
	Reps       int            `json:"reps"`
	Results    []ingestResult `json:"results"`
}

// ingest measures the ingestion pipeline end to end: chunked parallel
// Matrix Market parsing against the serial reader across worker counts,
// and .nwhyb snapshot save/load against text parsing. Every timed
// configuration is parity-checked against the serial parse before its
// numbers are reported.
func ingest(w io.Writer, scale float64, workers []int, reps int, outJSON string) error {
	fmt.Fprintf(w, "== Ingestion pipeline: text parse vs chunked parallel parse vs snapshot (scale %.2f) ==\n", scale)
	dir, err := os.MkdirTemp("", "nwhy-ingest")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	datasets := []struct {
		name      string
		ne, nv, m int
		skew      float64
		seed      int64
	}{
		{"powerlaw-s", 4000, 3000, 60000, 1.6, 7},
		{"powerlaw-m", 20000, 15000, 400000, 1.6, 42},
	}
	rep := ingestReport{
		Experiment: "ingest",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Reps:       reps,
	}
	for _, d := range datasets {
		h := gen.BipartitePowerLaw(sc(d.ne, scale), sc(d.nv, scale), sc(d.m, scale), d.skew, d.seed)
		bel := sparse.NewBiEdgeList(h.NumEdges(), h.NumNodes())
		for e, nbrs := range h.EdgeRange() {
			for _, v := range nbrs {
				bel.Add(uint32(e), v)
			}
		}
		mtx := filepath.Join(dir, d.name+".mtx")
		if err := mmio.WriteHypergraphFile(mtx, bel); err != nil {
			return err
		}
		st, err := os.Stat(mtx)
		if err != nil {
			return err
		}
		mb := float64(st.Size()) / (1 << 20)

		serialBel, err := mmio.GraphReader(mtx)
		if err != nil {
			return err
		}
		serialSec := measure(reps, func() {
			if _, err := mmio.GraphReader(mtx); err != nil {
				panic(err)
			}
		}).Seconds()
		res := ingestResult{
			Dataset:        d.name,
			FileBytes:      st.Size(),
			Incidences:     len(serialBel.Edges),
			SerialSeconds:  serialSec,
			SerialMBPerSec: mb / serialSec,
		}
		fmt.Fprintf(w, "-- %s (%.1f MB, %d incidences) --\n", d.name, mb, res.Incidences)
		fmt.Fprintf(w, "  %-22s %10.1f ms %8.1f MB/s\n", "text parse serial", serialSec*1e3, res.SerialMBPerSec)

		for _, nw := range workers {
			eng := nwhy.NewEngine(nw)
			parBel, err := mmio.GraphReaderParallel(eng, mtx)
			if err != nil {
				eng.Close()
				return err
			}
			if !reflect.DeepEqual(serialBel, parBel) {
				eng.Close()
				return fmt.Errorf("ingest: parallel parse (%d workers) differs from serial on %s", nw, d.name)
			}
			sec := measure(reps, func() {
				if _, err := mmio.GraphReaderParallel(eng, mtx); err != nil {
					panic(err)
				}
			}).Seconds()
			eng.Close()
			res.Parallel = append(res.Parallel, ingestParse{
				Workers:     nw,
				Seconds:     sec,
				MBPerSec:    mb / sec,
				EdgesPerSec: float64(res.Incidences) / sec,
				Speedup:     serialSec / sec,
			})
			fmt.Fprintf(w, "  parse parallel w=%-5d %10.1f ms %8.1f MB/s %6.2fx\n", nw, sec*1e3, mb/sec, serialSec/sec)
		}

		// Snapshot round trip: the deduplicated incidence CSR, the same
		// structure Load builds from text.
		eng := nwhy.NewEngine(0)
		if err := serialBel.DedupOn(eng); err != nil {
			eng.Close()
			return err
		}
		csr := sparse.FromPairs(serialBel.N0, serialBel.N1, serialBel.Edges, serialBel.Weights)
		snap := filepath.Join(dir, d.name+mmio.SnapshotExt)
		res.SnapshotSave = measure(reps, func() {
			if err := mmio.SaveSnapshot(snap, &mmio.Snapshot{CSR: csr}); err != nil {
				panic(err)
			}
		}).Seconds()
		loaded, err := mmio.LoadSnapshot(eng, snap)
		if err != nil {
			eng.Close()
			return err
		}
		if !csr.Equal(loaded.CSR) {
			eng.Close()
			return fmt.Errorf("ingest: snapshot round trip changed the CSR on %s", d.name)
		}
		res.SnapshotLoad = measure(reps, func() {
			if _, err := mmio.LoadSnapshot(eng, snap); err != nil {
				panic(err)
			}
		}).Seconds()
		eng.Close()
		sst, err := os.Stat(snap)
		if err != nil {
			return err
		}
		res.SnapshotBytes = sst.Size()
		res.SnapshotLoadSpeedupVsText = res.SerialSeconds / res.SnapshotLoad
		fmt.Fprintf(w, "  %-22s %10.1f ms (%.1f MB)\n", "snapshot save", res.SnapshotSave*1e3, float64(sst.Size())/(1<<20))
		fmt.Fprintf(w, "  %-22s %10.1f ms %6.2fx vs text parse\n", "snapshot load", res.SnapshotLoad*1e3, res.SnapshotLoadSpeedupVsText)
		rep.Results = append(rep.Results, res)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n\n", outJSON)
	return nil
}

// sc scales a dataset dimension, keeping it usable at tiny test scales.
func sc(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 4 {
		v = 4
	}
	return v
}
