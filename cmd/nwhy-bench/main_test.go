package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestBenchTable1(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "table1", "-scale", "0.02", "-datasets", "rand1-mini,com-orkut-mini"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table I") || !strings.Contains(s, "rand1-mini") || !strings.Contains(s, "com-orkut-mini") {
		t.Fatalf("table1 output wrong: %q", s)
	}
}

func TestBenchFig7(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig7", "-scale", "0.02", "-threads", "1,2", "-reps", "1", "-datasets", "rand1-mini"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 7", "HyperCC", "AdjoinCC", "HygraCC"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig7 output missing %s: %q", want, s)
		}
	}
	if strings.Count(s, "µ")+strings.Count(s, "ms") < 6 {
		t.Fatalf("fig7 missing timings: %q", s)
	}
}

func TestBenchFig8(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig8", "-scale", "0.02", "-threads", "1", "-reps", "1", "-datasets", "com-orkut-mini"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 8", "HyperBFS", "AdjoinBFS", "HygraBFS", "reaches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig8 output missing %s: %q", want, s)
		}
	}
}

func TestBenchFig9Quick(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig9", "-scale", "0.02", "-s", "1,2", "-reps", "1", "-quick", "-datasets", "rand1-mini"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 9", "Hashmap", "Alg1(queue)", "Alg2(queue)", "1.00x"} {
		if !strings.Contains(s, want) {
			t.Fatalf("fig9 output missing %s: %q", want, s)
		}
	}
}

func TestBenchFrontier(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "frontier", "-scale", "0.02", "-reps", "1", "-datasets", "rand1-mini"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Frontier strategy sweep", "push", "pull", "auto", "adjoin", "hygra", "reaches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("frontier output missing %s: %q", want, s)
		}
	}
}

func TestBenchAblation(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "ablation", "-scale", "0.02", "-reps", "1", "-datasets", "rand1-mini"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Ablations", "direct-unionfind", "input=adjoin", "partition=cyclic"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ablation output missing %s: %q", want, s)
		}
	}
}

func TestBenchSoverlap(t *testing.T) {
	out := t.TempDir() + "/BENCH_soverlap.json"
	var buf bytes.Buffer
	err := run([]string{"-exp", "soverlap", "-scale", "0.02", "-s", "2", "-reps", "1", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"S-overlap kernel sweep", "hashmap", "dense", "intersection", "queue", "alloc: pairs-path"} {
		if !strings.Contains(s, want) {
			t.Fatalf("soverlap output missing %s: %q", want, s)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep soverlapReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("empty report")
	}
	for _, r := range rep.Results {
		if len(r.Sweep) != 12 { // 4 strategies x 3 schedules
			t.Fatalf("%s s=%d: %d sweep entries, want 12", r.Dataset, r.S, len(r.Sweep))
		}
		if r.Alloc.PairsPathBytes == 0 || r.Alloc.DirectCSRBytes == 0 {
			t.Fatalf("%s s=%d: allocation comparison missing: %+v", r.Dataset, r.S, r.Alloc)
		}
	}
}

func TestBenchIngest(t *testing.T) {
	out := t.TempDir() + "/BENCH_ingest.json"
	var buf bytes.Buffer
	err := run([]string{"-exp", "ingest", "-scale", "0.02", "-threads", "1,2,4", "-reps", "1", "-ingest-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"Ingestion pipeline", "text parse serial", "parse parallel w=4", "snapshot load"} {
		if !strings.Contains(s, want) {
			t.Fatalf("ingest output missing %s: %q", want, s)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep ingestReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if len(rep.Results) == 0 {
		t.Fatal("empty report")
	}
	for _, r := range rep.Results {
		if len(r.Parallel) != 3 {
			t.Fatalf("%s: %d parallel entries, want 3", r.Dataset, len(r.Parallel))
		}
		if r.SerialSeconds <= 0 || r.SnapshotLoad <= 0 || r.SnapshotLoadSpeedupVsText <= 0 {
			t.Fatalf("%s: missing timings: %+v", r.Dataset, r)
		}
		if r.SnapshotBytes == 0 || r.Incidences == 0 {
			t.Fatalf("%s: missing sizes: %+v", r.Dataset, r)
		}
	}
}

func TestBenchErrors(t *testing.T) {
	cases := [][]string{
		{"-exp", "nope"},
		{"-datasets", "nope"},
		{"-threads", "0"},
		{"-threads", "x"},
		{"-s", "-3"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,8")
	if err != nil || len(got) != 3 || got[2] != 8 {
		t.Fatalf("parseInts = %v, %v", got, err)
	}
	if v, err := parseInts(""); v != nil || err != nil {
		t.Fatal("empty list should be nil, nil")
	}
}
