// Command nwhy-bench regenerates the paper's evaluation: Table I (input
// characteristics) and Figures 7 (CC strong scaling), 8 (BFS strong
// scaling), and 9 (s-line-graph construction algorithm comparison), plus
// the ablation studies, on the synthetic Table I preset stand-ins.
//
// Usage:
//
//	nwhy-bench -exp table1 -scale 1
//	nwhy-bench -exp fig7 -threads 1,2,4 -reps 3
//	nwhy-bench -exp fig8
//	nwhy-bench -exp fig9 -s 1,2,4,8
//	nwhy-bench -exp frontier
//	nwhy-bench -exp ablation
//	nwhy-bench -exp soverlap -s 1,2 -out BENCH_soverlap.json
//	nwhy-bench -exp ingest -threads 1,2,4 -ingest-out BENCH_ingest.json
//	nwhy-bench -exp serve -clients 8 -serve-out BENCH_serve.json
//	nwhy-bench -exp mutate -s 2 -mutate-out BENCH_mutate.json
//	nwhy-bench -exp partition -k 4 -partition-out BENCH_partition.json
//	nwhy-bench -exp all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"nwhy"
	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("nwhy-bench", flag.ContinueOnError)
	var (
		exp       = fs.String("exp", "all", "experiment: table1 | fig7 | fig8 | fig9 | frontier | ablation | soverlap | ingest | serve | mutate | partition | all")
		outJSON   = fs.String("out", "BENCH_soverlap.json", "JSON report path for -exp soverlap")
		ingestOut = fs.String("ingest-out", "BENCH_ingest.json", "JSON report path for -exp ingest")
		serveOut  = fs.String("serve-out", "BENCH_serve.json", "JSON report path for -exp serve")
		mutateOut = fs.String("mutate-out", "BENCH_mutate.json", "JSON report path for -exp mutate")
		partOut   = fs.String("partition-out", "BENCH_partition.json", "JSON report path for -exp partition")
		kParts    = fs.Int("k", 4, "shard count for -exp partition")
		clients   = fs.Int("clients", 8, "concurrent clients for -exp serve")
		scale     = fs.Float64("scale", 0.5, "dataset scale factor")
		threads   = fs.String("threads", "", "comma-separated thread counts (default 1,2,..,max(4,GOMAXPROCS))")
		ss        = fs.String("s", "1,2,4,8", "comma-separated s values for fig9")
		reps      = fs.Int("reps", 3, "repetitions per measurement (min reported)")
		datasets  = fs.String("datasets", "", "comma-separated preset names (default: all six)")
		quick     = fs.Bool("quick", false, "fig9: skip the best-of partition/relabel sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	presets := gen.Presets()
	if *datasets != "" {
		var chosen []gen.Preset
		for _, name := range strings.Split(*datasets, ",") {
			p, err := gen.ByName(strings.TrimSpace(name))
			if err != nil {
				return err
			}
			chosen = append(chosen, p)
		}
		presets = chosen
	}

	threadList, err := parseInts(*threads)
	if err != nil {
		return err
	}
	if threadList == nil {
		for t := 1; t <= max(runtime.GOMAXPROCS(0), 4); t *= 2 {
			threadList = append(threadList, t)
		}
	}
	sList, err := parseInts(*ss)
	if err != nil {
		return err
	}

	known := map[string]func() error{
		"table1":   func() error { table1(w, presets, *scale); return nil },
		"fig7":     func() error { fig7(w, presets, *scale, threadList, *reps); return nil },
		"fig8":     func() error { fig8(w, presets, *scale, threadList, *reps); return nil },
		"fig9":     func() error { fig9(w, presets, *scale, sList, *reps, *quick); return nil },
		"frontier": func() error { frontierSweep(w, presets, *scale, *reps); return nil },
		"ablation": func() error { ablation(w, presets, *scale, *reps); return nil },
		"soverlap": func() error { return soverlap(w, *scale, sList, *reps, *outJSON) },
		"ingest":   func() error { return ingest(w, *scale, threadList, *reps, *ingestOut) },
		"serve":    func() error { return serve(w, presets, *scale, sList, *clients, *serveOut) },
		"mutate":   func() error { return mutate(w, presets, *scale, sList, *mutateOut) },
		"partition": func() error {
			return partitionBench(w, *scale, sList, *reps, *kParts, *partOut)
		},
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "fig7", "fig8", "fig9", "frontier", "ablation", "soverlap", "ingest", "serve", "mutate", "partition"} {
			if err := known[name](); err != nil {
				return err
			}
		}
		return nil
	}
	fn, ok := known[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return fn()
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// build materializes one preset with the facade handle.
func build(p gen.Preset, scale float64) *nwhy.NWHypergraph {
	return nwhy.Wrap(p.Build(scale))
}

// table1 prints the input characteristics of every preset — the Table I
// reproduction (at reduced scale; the ratios and skew match the paper).
func table1(w io.Writer, presets []gen.Preset, scale float64) {
	fmt.Fprintf(w, "== Table I: input characteristics (scale %.2f) ==\n", scale)
	fmt.Fprintf(w, "%-18s %10s %10s %8s %8s %9s %9s   %s\n",
		"hypergraph", "|V|", "|E|", "d̄v", "d̄e", "Δv", "Δe", "paper |V|/|E|")
	for _, p := range presets {
		st := core.ComputeStats(p.Build(scale))
		fmt.Fprintf(w, "%-18s %10d %10d %8.1f %8.1f %9d %9d   %s / %s\n",
			p.Name, st.NumNodes, st.NumEdges, st.AvgNodeDegree, st.AvgEdgeDegree,
			st.MaxNodeDegree, st.MaxEdgeDegree, p.PaperV, p.PaperE)
	}
	fmt.Fprintln(w)
}

// measure reports the minimum duration of fn over reps runs.
func measure(reps int, fn func()) time.Duration {
	best := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best
}

// fig7 prints the strong-scaling series of HyperCC, AdjoinCC, and the
// HygraCC baseline per dataset — one line per thread count, matching the
// Figure 7 panels.
func fig7(w io.Writer, presets []gen.Preset, scale float64, threads []int, reps int) {
	fmt.Fprintf(w, "== Figure 7: hypergraph connected components, strong scaling (scale %.2f) ==\n", scale)
	variants := []struct {
		name string
		v    nwhy.CCVariant
	}{
		{"HyperCC", nwhy.CCHyper},
		{"AdjoinCC", nwhy.CCAdjoinAfforest},
		{"HygraCC", nwhy.CCHygraBaseline},
	}
	for _, p := range presets {
		g := build(p, scale)
		g.Adjoin()
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d) --\n", p.Name, g.NumEdges(), g.NumNodes())
		fmt.Fprintf(w, "%-8s", "threads")
		for _, v := range variants {
			fmt.Fprintf(w, "%14s", v.name)
		}
		fmt.Fprintln(w)
		for _, t := range threads {
			eng := nwhy.NewEngine(t)
			gt := g.WithEngine(eng)
			fmt.Fprintf(w, "%-8d", t)
			for _, v := range variants {
				d := measure(reps, func() { gt.ConnectedComponents(v.v) })
				fmt.Fprintf(w, "%14s", d.Round(time.Microsecond))
			}
			fmt.Fprintln(w)
			eng.Close()
		}
	}
	fmt.Fprintln(w)
}

// fig8 prints the strong-scaling series of HyperBFS, AdjoinBFS, and the
// HygraBFS baseline per dataset, sourced at the maximum-degree hyperedge —
// the Figure 8 panels.
func fig8(w io.Writer, presets []gen.Preset, scale float64, threads []int, reps int) {
	fmt.Fprintf(w, "== Figure 8: hypergraph BFS, strong scaling (scale %.2f) ==\n", scale)
	variants := []struct {
		name string
		v    nwhy.BFSVariant
	}{
		{"HyperBFS", nwhy.BFSTopDown},
		{"AdjoinBFS", nwhy.BFSAdjoin},
		{"HygraBFS", nwhy.BFSHygraBaseline},
	}
	for _, p := range presets {
		g := build(p, scale)
		g.Adjoin()
		src := maxDegreeEdge(g)
		reach := g.BFS(src, nwhy.BFSTopDown)
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d, source e%d reaches %d edges + %d nodes) --\n",
			p.Name, g.NumEdges(), g.NumNodes(), src, reach.ReachedEdges(), reach.ReachedNodes())
		fmt.Fprintf(w, "%-8s", "threads")
		for _, v := range variants {
			fmt.Fprintf(w, "%14s", v.name)
		}
		fmt.Fprintln(w)
		for _, t := range threads {
			eng := nwhy.NewEngine(t)
			gt := g.WithEngine(eng)
			fmt.Fprintf(w, "%-8d", t)
			for _, v := range variants {
				d := measure(reps, func() { gt.BFS(src, v.v) })
				fmt.Fprintf(w, "%14s", d.Round(time.Microsecond))
			}
			fmt.Fprintln(w)
			eng.Close()
		}
	}
	fmt.Fprintln(w)
}

func maxDegreeEdge(g *nwhy.NWHypergraph) int {
	best, bestDeg := 0, -1
	for e := 0; e < g.NumEdges(); e++ {
		if d := g.EdgeDegree(e); d > bestDeg {
			best, bestDeg = e, d
		}
	}
	return best
}

// fig9 prints, per dataset and s, the construction time of the Intersection
// and Hashmap algorithms and the paper's queue-based Algorithms 1 and 2 —
// each the fastest over the partition x relabel configurations, normalized
// to Hashmap, matching the Figure 9 bars.
func fig9(w io.Writer, presets []gen.Preset, scale float64, sList []int, reps int, quick bool) {
	fmt.Fprintf(w, "== Figure 9: s-line graph construction, runtime relative to Hashmap (scale %.2f) ==\n", scale)
	type config struct {
		cyclic  bool
		relabel sparse.Order
	}
	configs := []config{{false, sparse.NoOrder}}
	if !quick {
		for _, cyc := range []bool{false, true} {
			for _, rel := range []sparse.Order{sparse.NoOrder, sparse.Ascending, sparse.Descending} {
				if cyc || rel != sparse.NoOrder {
					configs = append(configs, config{cyc, rel})
				}
			}
		}
	}
	algos := []struct {
		name string
		a    nwhy.Algorithm
	}{
		{"Intersection", nwhy.AlgoIntersection},
		{"Hashmap", nwhy.AlgoHashmap},
		{"Alg1(queue)", nwhy.AlgoQueueHashmap},
		{"Alg2(queue)", nwhy.AlgoQueueIntersection},
	}
	for _, p := range presets {
		g := build(p, scale)
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d) --\n", p.Name, g.NumEdges(), g.NumNodes())
		fmt.Fprintf(w, "%-4s", "s")
		for _, a := range algos {
			fmt.Fprintf(w, "%16s", a.name)
		}
		fmt.Fprintf(w, "%16s\n", "(Hashmap time)")
		for _, s := range sList {
			best := make([]time.Duration, len(algos))
			var edges int
			for i, a := range algos {
				best[i] = time.Duration(1 << 62)
				for _, c := range configs {
					opts := nwhy.ConstructOptions{Algorithm: a.a, Cyclic: c.cyclic, Relabel: c.relabel}
					var lg *nwhy.SLineGraph
					d := measure(reps, func() { lg = g.SLineGraphWith(s, true, opts) })
					if d < best[i] {
						best[i] = d
					}
					edges = lg.NumEdges()
				}
			}
			hashmap := best[1]
			fmt.Fprintf(w, "%-4d", s)
			for i := range algos {
				fmt.Fprintf(w, "%15.2fx", float64(best[i])/float64(hashmap))
			}
			fmt.Fprintf(w, "%16s  (%d line edges)\n", hashmap.Round(time.Microsecond), edges)
		}
	}
	fmt.Fprintln(w)
}

// frontierSweep prints, per dataset, the HyperBFS runtime under each
// frontier strategy — forced push, forced pull, and the direction-optimizing
// auto switch — alongside the adjoin and Hygra-baseline formulations, all on
// the shared frontier.EdgeMap substrate. Sourced at the maximum-degree
// hyperedge like Figure 8.
func frontierSweep(w io.Writer, presets []gen.Preset, scale float64, reps int) {
	fmt.Fprintf(w, "== Frontier strategy sweep: HyperBFS push vs pull vs auto (scale %.2f) ==\n", scale)
	variants := []struct {
		name string
		v    nwhy.BFSVariant
	}{
		{"push", nwhy.BFSTopDown},
		{"pull", nwhy.BFSBottomUp},
		{"auto", nwhy.BFSDirectionOptimizing},
		{"adjoin", nwhy.BFSAdjoin},
		{"hygra", nwhy.BFSHygraBaseline},
	}
	for _, p := range presets {
		g := build(p, scale)
		g.Adjoin()
		src := maxDegreeEdge(g)
		reach := g.BFS(src, nwhy.BFSTopDown)
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d, source e%d reaches %d edges + %d nodes) --\n",
			p.Name, g.NumEdges(), g.NumNodes(), src, reach.ReachedEdges(), reach.ReachedNodes())
		for _, v := range variants {
			d := measure(reps, func() { g.BFS(src, v.v) })
			fmt.Fprintf(w, "  %-8s %12s\n", v.name, d.Round(time.Microsecond))
		}
	}
	fmt.Fprintln(w)
}

// ablation prints the design-choice studies DESIGN.md calls out: partition
// strategy, relabel order, queue input representation, and materialized vs
// direct s-connected components.
func ablation(w io.Writer, presets []gen.Preset, scale float64, reps int) {
	fmt.Fprintf(w, "== Ablations (scale %.2f) ==\n", scale)
	for _, p := range presets {
		g := build(p, scale)
		g.Adjoin()
		fmt.Fprintf(w, "-- %s (|E|=%d |V|=%d) --\n", p.Name, g.NumEdges(), g.NumNodes())
		row := func(name string, fn func()) {
			fmt.Fprintf(w, "  %-44s %12s\n", name, measure(reps, fn).Round(time.Microsecond))
		}
		for _, cyc := range []bool{false, true} {
			for _, rel := range []sparse.Order{sparse.NoOrder, sparse.Descending} {
				o := nwhy.ConstructOptions{Algorithm: nwhy.AlgoHashmap, Cyclic: cyc, Relabel: rel}
				name := fmt.Sprintf("hashmap s=2 partition=%v relabel=%v", partName(cyc), rel)
				row(name, func() { g.SLineGraphWith(2, true, o) })
			}
		}
		row("alg1 s=2 input=bipartite", func() {
			g.SLineGraphWith(2, true, nwhy.ConstructOptions{Algorithm: nwhy.AlgoQueueHashmap})
		})
		row("alg1 s=2 input=adjoin", func() {
			g.SLineGraphWith(2, true, nwhy.ConstructOptions{Algorithm: nwhy.AlgoQueueHashmap, UseAdjoin: true})
		})
		row("s-CC s=2 materialize-then-cc", func() {
			g.SLineGraphWith(2, true, nwhy.ConstructOptions{Algorithm: nwhy.AlgoQueueHashmap}).SConnectedComponents()
		})
		row("s-CC s=2 direct-unionfind", func() {
			g.SConnectedComponentsDirect(2)
		})
	}
	fmt.Fprintln(w)
}

func partName(cyclic bool) string {
	if cyclic {
		return "cyclic"
	}
	return "blocked"
}
