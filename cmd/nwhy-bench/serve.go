package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"nwhy"
	"nwhy/internal/gen"
	"nwhy/internal/server"
)

// serveLatency summarizes one workload phase's latency distribution.
type serveLatency struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
	WallSec  float64 `json:"wall_seconds"`
	QPS      float64 `json:"qps"`
}

// servePhase is one concurrent workload phase against the in-process server.
type servePhase struct {
	Name    string `json:"name"`
	Clients int    `json:"clients"`
	serveLatency
}

// serveConstruct contrasts a cold s-line construction with the cached
// repeat — the measurement the result cache exists for.
type serveConstruct struct {
	S       int     `json:"s"`
	ColdMs  float64 `json:"cold_ms"`
	WarmMs  float64 `json:"warm_ms"`
	WarmHit bool    `json:"warm_cache_hit"`
	Speedup float64 `json:"speedup"`
}

type serveCacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Waits   int64   `json:"waits"`
	HitRate float64 `json:"hit_rate"`
}

type serveReport struct {
	Experiment string                    `json:"experiment"`
	GoMaxProcs int                       `json:"gomaxprocs"`
	Scale      float64                   `json:"scale"`
	Dataset    string                    `json:"dataset"`
	NumEdges   int                       `json:"num_edges"`
	NumNodes   int                       `json:"num_nodes"`
	Workers    int                       `json:"server_workers"`
	Clients    int                       `json:"clients"`
	Constructs []serveConstruct          `json:"constructs"`
	Phases     []servePhase              `json:"phases"`
	Cache      serveCacheStats           `json:"cache"`
	Endpoints  []server.EndpointSnapshot `json:"endpoints"`
}

// percentile reports the p-th percentile (0..100) of sorted ms samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

func summarize(lats []float64, errs int, wall time.Duration) serveLatency {
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	out := serveLatency{
		Requests: len(lats),
		Errors:   errs,
		P50Ms:    percentile(sorted, 50),
		P99Ms:    percentile(sorted, 99),
		WallSec:  wall.Seconds(),
	}
	if len(sorted) > 0 {
		out.MeanMs = sum / float64(len(sorted))
	}
	if wall > 0 {
		out.QPS = float64(len(lats)) / wall.Seconds()
	}
	return out
}

// serve drives the in-process serving core with concurrent mixed workloads:
// a cold-vs-cached construction study per s, a hot phase hammering one
// cached s-line key, and a mixed phase interleaving every query kind. The
// client side fans out on its own engine (one worker per simulated client),
// so request concurrency is real without any hand-rolled goroutines.
func serve(w io.Writer, presets []gen.Preset, scale float64, sList []int, clients int, outJSON string) error {
	p := presets[0]
	fmt.Fprintf(w, "== Serve: concurrent query workloads against the serving core (%s, scale %.2f, %d clients) ==\n",
		p.Name, scale, clients)

	eng := nwhy.NewEngine(0)
	defer eng.Close()
	reg := server.NewRegistry()
	g := nwhy.Wrap(p.Build(scale)).WithEngine(eng)
	reg.Add(p.Name, g, "preset")
	// Closed-loop bench: every client waits for its response, so shedding
	// would only corrupt the latency numbers — give queued requests all the
	// time they need instead of the serving default.
	srv, err := server.New(server.Config{Engine: eng, QueueWait: 5 * time.Minute}, reg)
	if err != nil {
		return err
	}
	ctx := context.Background()

	rep := serveReport{
		Experiment: "serve",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Dataset:    p.Name,
		NumEdges:   g.NumEdges(),
		NumNodes:   g.NumNodes(),
		Workers:    eng.NumWorkers(),
		Clients:    clients,
	}

	// Phase 1: cold construction vs cached repeat, per s. The warm repeat
	// must be a cache hit — that is the contract BENCH_serve.json records.
	fmt.Fprintf(w, "%-4s %12s %12s %10s %s\n", "s", "cold", "warm", "speedup", "cache")
	for _, s := range sList {
		req := server.SLineRequest{Dataset: p.Name, S: s, Edges: true}
		cold, err := srv.SLine(ctx, req)
		if err != nil {
			return err
		}
		warm := cold
		for i := 0; i < 3; i++ {
			r, err := srv.SLine(ctx, req)
			if err != nil {
				return err
			}
			if i == 0 || r.ElapsedMs < warm.ElapsedMs {
				warm = r
			}
		}
		c := serveConstruct{S: s, ColdMs: cold.ElapsedMs, WarmMs: warm.ElapsedMs, WarmHit: warm.CacheHit}
		if warm.ElapsedMs > 0 {
			c.Speedup = cold.ElapsedMs / warm.ElapsedMs
		}
		rep.Constructs = append(rep.Constructs, c)
		fmt.Fprintf(w, "%-4d %10.2fms %10.4fms %9.1fx hit=%v\n", s, c.ColdMs, c.WarmMs, c.Speedup, c.WarmHit)
	}

	// The client engine provides the request concurrency: one worker per
	// simulated client, each ForEach index one synchronous request.
	clientEng := nwhy.NewEngine(clients)
	defer clientEng.Close()

	runPhase := func(name string, n int, op func(i int) error) {
		lats := make([]float64, n)
		errs := make([]error, n)
		t0 := time.Now()
		clientEng.ForEach(n, func(i int) {
			r0 := time.Now()
			errs[i] = op(i)
			lats[i] = float64(time.Since(r0)) / float64(time.Millisecond)
		})
		wall := time.Since(t0)
		nerr := 0
		for _, e := range errs {
			if e != nil {
				nerr++
			}
		}
		ph := servePhase{Name: name, Clients: clients, serveLatency: summarize(lats, nerr, wall)}
		rep.Phases = append(rep.Phases, ph)
		fmt.Fprintf(w, "%-14s %6d req %8.3fms p50 %8.3fms p99 %10.0f qps %d errors\n",
			name, ph.Requests, ph.P50Ms, ph.P99Ms, ph.QPS, ph.Errors)
	}

	// Phase 2: hot — every request hits the same cached s-line key.
	hotReq := server.SLineRequest{Dataset: p.Name, S: sList[0], Edges: true}
	runPhase("hot-sline", clients*100, func(i int) error {
		_, err := srv.SLine(ctx, hotReq)
		return err
	})

	// Phase 3: mixed — interleave every query kind the daemon serves, with
	// the all-pairs centrality (by far the heaviest) at 10% of the load.
	nEdges := g.NumEdges()
	runPhase("mixed", clients*30, func(i int) error {
		s := sList[i%len(sList)]
		switch i % 10 {
		case 0, 5:
			_, err := srv.SLine(ctx, server.SLineRequest{Dataset: p.Name, S: s, Edges: true})
			return err
		case 1, 6:
			_, err := srv.SComponents(ctx, server.SCCRequest{Dataset: p.Name, S: s})
			return err
		case 2, 4, 8:
			_, err := srv.SDistance(ctx, server.SDistanceRequest{
				Dataset: p.Name, S: s, Src: (i * 7) % nEdges, Dst: (i * 13) % nEdges,
			})
			return err
		case 7:
			_, err := srv.Centrality(ctx, server.CentralityRequest{
				Dataset: p.Name, S: s, Kind: server.CentralityHarmonic,
			})
			return err
		default:
			_, err := srv.Stats(ctx, p.Name)
			return err
		}
	})

	hits, misses, waits := srv.Cache().Stats()
	rep.Cache = serveCacheStats{Hits: hits, Misses: misses, Waits: waits}
	if hits+misses > 0 {
		rep.Cache.HitRate = float64(hits) / float64(hits+misses)
	}
	rep.Endpoints = srv.Metrics()
	fmt.Fprintf(w, "cache: %d hits / %d misses / %d waits (hit rate %.3f)\n",
		hits, misses, waits, rep.Cache.HitRate)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outJSON, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n\n", outJSON)
	return nil
}
