// Command slinegraph constructs the s-line graph of a hypergraph with a
// chosen algorithm / partition / relabel configuration and reports the
// result size and construction time — the single-run counterpart of the
// Figure 9 benchmark.
//
// Usage:
//
//	slinegraph -preset livejournal-mini -s 2 -algo queue-hashmap -cyclic
//	slinegraph -in file.mtx -s 3 -algo intersection -relabel desc -adjoin
//	slinegraph -preset rand1-mini -s 2 -strategy dense -schedule queue -weighted
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nwhy"
	"nwhy/internal/gen"
	"nwhy/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("slinegraph", flag.ContinueOnError)
	var (
		in         = fs.String("in", "", "input .mtx or .nwhyb file")
		presetName = fs.String("preset", "", "generator preset instead of a file")
		scale      = fs.Float64("scale", 1.0, "preset scale factor")
		s          = fs.Int("s", 1, "overlap threshold s")
		algoName   = fs.String("algo", "hashmap", "naive | intersection | hashmap | queue-hashmap | queue-intersection")
		strategy   = fs.String("strategy", "auto", "kernel overlap counter: auto | hashmap | dense | intersection")
		schedule   = fs.String("schedule", "default", "kernel work schedule: default | blocked | cyclic | queue | auto")
		weighted   = fs.Bool("weighted", false, "retain exact overlap strengths (weighted s-line graph)")
		cyclic     = fs.Bool("cyclic", false, "use the cyclic range partition")
		relabel    = fs.String("relabel", "none", "relabel-by-degree: none | asc | desc")
		adjoin     = fs.Bool("adjoin", false, "feed queue algorithms the adjoin representation")
		threads    = fs.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
		reps       = fs.Int("reps", 3, "repetitions (min time reported)")
		components = fs.Bool("components", false, "also report s-connected components (pruned union-find)")
		pruneName  = fs.String("prune", "auto", "pruning heuristics: auto | none | degree | connectivity | toplex")
		serial     = fs.Bool("serial-parse", false, "parse Matrix Market input single-threaded")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	algos := map[string]nwhy.Algorithm{
		"naive":              nwhy.AlgoNaive,
		"intersection":       nwhy.AlgoIntersection,
		"hashmap":            nwhy.AlgoHashmap,
		"queue-hashmap":      nwhy.AlgoQueueHashmap,
		"queue-intersection": nwhy.AlgoQueueIntersection,
	}
	algo, ok := algos[*algoName]
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algoName)
	}
	orders := map[string]sparse.Order{"none": sparse.NoOrder, "asc": sparse.Ascending, "desc": sparse.Descending}
	order, ok := orders[*relabel]
	if !ok {
		return fmt.Errorf("unknown relabel order %q", *relabel)
	}
	strategies := map[string]nwhy.Strategy{
		"auto":         nwhy.StrategyAuto,
		"hashmap":      nwhy.StrategyHashmap,
		"dense":        nwhy.StrategyDense,
		"intersection": nwhy.StrategyIntersection,
	}
	strat, ok := strategies[*strategy]
	if !ok {
		return fmt.Errorf("unknown strategy %q", *strategy)
	}
	schedules := map[string]nwhy.Schedule{
		"default": nwhy.ScheduleDefault,
		"blocked": nwhy.ScheduleBlocked,
		"cyclic":  nwhy.ScheduleCyclic,
		"queue":   nwhy.ScheduleQueue,
		"auto":    nwhy.ScheduleAuto,
	}
	sched, ok := schedules[*schedule]
	if !ok {
		return fmt.Errorf("unknown schedule %q", *schedule)
	}
	prunes := map[string]nwhy.Prune{
		"auto":         nwhy.PruneAuto,
		"none":         nwhy.PruneNone,
		"degree":       nwhy.PruneDegree,
		"connectivity": nwhy.PruneConnectivity,
		"toplex":       nwhy.PruneToplex,
	}
	prune, ok := prunes[*pruneName]
	if !ok {
		return fmt.Errorf("unknown prune %q", *pruneName)
	}

	var g *nwhy.NWHypergraph
	switch {
	case *presetName != "":
		p, err := gen.ByName(*presetName)
		if err != nil {
			return err
		}
		g = nwhy.Wrap(p.Build(*scale))
	case *in != "":
		var err error
		g, err = nwhy.LoadFile(*in, nwhy.LoadOptions{Serial: *serial})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("usage: slinegraph (-in file.mtx|file.nwhyb | -preset name) [-s N] [-algo A]")
	}

	if *threads > 0 {
		eng := nwhy.NewEngine(*threads)
		defer eng.Close()
		g = g.WithEngine(eng)
	}
	if *adjoin {
		g.Adjoin() // pre-build outside timing
	}

	opts := nwhy.ConstructOptions{
		Algorithm: algo, Strategy: strat, Schedule: sched,
		Cyclic: *cyclic, Relabel: order, UseAdjoin: *adjoin, Prune: prune,
	}
	best := time.Duration(1 << 62)
	var edges int
	for r := 0; r < *reps; r++ {
		t0 := time.Now()
		if *weighted {
			edges = g.SLineGraphWeightedWith(*s, opts).NumEdges()
		} else {
			edges = g.SLineGraphWith(*s, true, opts).NumEdges()
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	label := algo.String()
	if *weighted {
		label = "weighted kernel"
	}
	fmt.Fprintf(stdout, "input: |E|=%d |V|=%d incidences=%d\n", g.NumEdges(), g.NumNodes(), g.NumIncidences())
	fmt.Fprintf(stdout, "%d-line graph via %s (strategy=%s schedule=%s partition=%s relabel=%s adjoin=%v prune=%s, %d threads): %d edges in %v\n",
		*s, label, strat, sched, partitionName(*cyclic), order, *adjoin, prune, g.Engine().NumWorkers(), edges, best.Round(time.Microsecond))
	if *components {
		t0 := time.Now()
		labels := g.SConnectedComponentsPruned(*s, prune)
		distinct := map[uint32]bool{}
		for _, c := range labels {
			distinct[c] = true
		}
		fmt.Fprintf(stdout, "%d-connected components (prune=%s union-find): %d in %v\n",
			*s, prune, len(distinct), time.Since(t0).Round(time.Microsecond))
	}
	return nil
}

func partitionName(cyclic bool) string {
	if cyclic {
		return "cyclic"
	}
	return "blocked"
}
