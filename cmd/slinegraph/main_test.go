package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestSlinegraphAllAlgorithmsAgreeOnEdgeCount(t *testing.T) {
	counts := map[string]string{}
	for _, algo := range []string{"naive", "intersection", "hashmap", "queue-hashmap", "queue-intersection"} {
		var out bytes.Buffer
		err := run([]string{"-preset", "rand1-mini", "-scale", "0.01", "-s", "2", "-algo", algo, "-reps", "1"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		// Extract "N edges in".
		s := out.String()
		idx := strings.Index(s, " edges in")
		if idx < 0 {
			t.Fatalf("%s: no edge count in %q", algo, s)
		}
		start := strings.LastIndexByte(s[:idx], ' ')
		counts[algo] = s[start+1 : idx]
	}
	want := counts["naive"]
	for algo, c := range counts {
		if c != want {
			t.Fatalf("%s edge count %s != naive %s (%v)", algo, c, want, counts)
		}
	}
}

func TestSlinegraphOptionsAndComponents(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-preset", "com-orkut-mini", "-scale", "0.02", "-s", "2",
		"-algo", "queue-hashmap", "-cyclic", "-relabel", "desc", "-adjoin",
		"-threads", "2", "-reps", "1", "-components",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "partition=cyclic relabel=descending adjoin=true prune=auto") {
		t.Fatalf("options not echoed: %q", s)
	}
	if !strings.Contains(s, "2-connected components (prune=auto union-find):") {
		t.Fatalf("components line missing: %q", s)
	}
}

// TestSlinegraphPruneLevelsAgree: the -components count is identical at
// every -prune level.
func TestSlinegraphPruneLevelsAgree(t *testing.T) {
	count := func(prune string) string {
		t.Helper()
		var out bytes.Buffer
		err := run([]string{
			"-preset", "containment-mini", "-scale", "0.1", "-s", "2",
			"-reps", "1", "-components", "-prune", prune,
		}, &out)
		if err != nil {
			t.Fatal(err)
		}
		s := out.String()
		i := strings.Index(s, "union-find): ")
		if i < 0 {
			t.Fatalf("components line missing: %q", s)
		}
		rest := s[i+len("union-find): "):]
		return rest[:strings.Index(rest, " ")]
	}
	want := count("none")
	for _, p := range []string{"auto", "degree", "connectivity", "toplex"} {
		if got := count(p); got != want {
			t.Errorf("prune=%s components = %s, want %s", p, got, want)
		}
	}
}

func TestSlinegraphErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-algo", "nope", "-preset", "rand1-mini"},
		{"-relabel", "nope", "-preset", "rand1-mini"},
		{"-strategy", "nope", "-preset", "rand1-mini"},
		{"-schedule", "nope", "-preset", "rand1-mini"},
		{"-prune", "nope", "-preset", "rand1-mini"},
		{"-preset", "nope"},
		{"-in", "/nonexistent.mtx"},
	}
	for _, args := range cases {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestSlinegraphKernelAxesAgree: every -strategy x -schedule combination,
// weighted or not, reports the naive edge count.
func TestSlinegraphKernelAxesAgree(t *testing.T) {
	edgeCount := func(args ...string) string {
		t.Helper()
		var out bytes.Buffer
		if err := run(append([]string{"-preset", "rand1-mini", "-scale", "0.01", "-s", "2", "-reps", "1"}, args...), &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		s := out.String()
		idx := strings.Index(s, " edges in")
		if idx < 0 {
			t.Fatalf("%v: no edge count in %q", args, s)
		}
		return s[strings.LastIndexByte(s[:idx], ' ')+1 : idx]
	}
	want := edgeCount("-algo", "naive")
	for _, strat := range []string{"auto", "hashmap", "dense", "intersection"} {
		for _, sched := range []string{"blocked", "cyclic", "queue", "auto"} {
			if got := edgeCount("-strategy", strat, "-schedule", sched); got != want {
				t.Fatalf("strategy=%s schedule=%s: %s edges, want %s", strat, sched, got, want)
			}
			if got := edgeCount("-strategy", strat, "-schedule", sched, "-weighted"); got != want {
				t.Fatalf("weighted strategy=%s schedule=%s: %s edges, want %s", strat, sched, got, want)
			}
		}
	}
}

func TestSlinegraphEchoesKernelAxes(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-preset", "rand1-mini", "-scale", "0.01", "-s", "2",
		"-strategy", "dense", "-schedule", "queue", "-weighted", "-reps", "1",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "via weighted kernel (strategy=dense schedule=queue") {
		t.Fatalf("kernel axes not echoed: %q", s)
	}
}

func TestSlinegraphSSweep(t *testing.T) {
	prev := -1
	for _, s := range []int{1, 2, 4} {
		var out bytes.Buffer
		if err := run([]string{"-preset", "livejournal-mini", "-scale", "0.02", "-s", fmt.Sprint(s), "-reps", "1"}, &out); err != nil {
			t.Fatal(err)
		}
		str := out.String()
		idx := strings.Index(str, " edges in")
		start := strings.LastIndexByte(str[:idx], ' ')
		var n int
		fmt.Sscanf(str[start+1:idx], "%d", &n)
		if prev >= 0 && n > prev {
			t.Fatalf("edge count grew with s: %d -> %d", prev, n)
		}
		prev = n
	}
}
