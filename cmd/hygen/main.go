// Command hygen generates synthetic hypergraph datasets — the Table I
// preset shapes or custom generator parameters — and writes them as Matrix
// Market incidence files consumable by the other tools and by Load.
//
// Usage:
//
//	hygen -preset rand1-mini -scale 0.5 -o rand1.mtx
//	hygen -gen uniform -edges 10000 -nodes 10000 -size 10 -o u.mtx
//	hygen -preset rand1-mini -o rand1.nwhyb          (binary snapshot)
//	hygen -gen community -edges 20000 -nodes 5000 -mean 12 -o c.mtx
//	hygen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/mmio"
	"nwhy/internal/sparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hygen", flag.ContinueOnError)
	var (
		presetName = fs.String("preset", "", "Table I preset name (overrides -gen)")
		scale      = fs.Float64("scale", 1.0, "preset scale factor")
		generator  = fs.String("gen", "uniform", "generator: uniform | community | bipartite | rmat")
		rmatA      = fs.Float64("rmat-a", 0.55, "rmat: probability of the (0,0) quadrant")
		ne         = fs.Int("edges", 10000, "number of hyperedges")
		nv         = fs.Int("nodes", 10000, "number of hypernodes")
		size       = fs.Int("size", 10, "uniform: exact hyperedge size")
		mean       = fs.Float64("mean", 10, "community: mean hyperedge size")
		sizeSkew   = fs.Float64("sizeskew", 1.5, "community: Zipf exponent of sizes")
		memberSkew = fs.Float64("memberskew", 0.5, "community: member-selection skew in [0,1)")
		m          = fs.Int("incidences", 100000, "bipartite: incidence count")
		skew       = fs.Float64("skew", 1.7, "bipartite: Zipf exponent")
		seed       = fs.Int64("seed", 42, "random seed")
		out        = fs.String("o", "", "output .mtx path (default stdout)")
		tsv        = fs.Bool("tsv", false, "write SNAP-style TSV instead of Matrix Market")
		list       = fs.Bool("list", false, "list presets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, p := range gen.Presets() {
			fmt.Fprintf(stdout, "%-20s mimics |V|=%s |E|=%s\n", p.Name, p.PaperV, p.PaperE)
		}
		return nil
	}

	var h *core.Hypergraph
	switch {
	case *presetName != "":
		p, err := gen.ByName(*presetName)
		if err != nil {
			return err
		}
		h = p.Build(*scale)
	case *generator == "uniform":
		h = gen.Uniform(*ne, *nv, *size, *seed)
	case *generator == "community":
		h = gen.Community(gen.CommunityConfig{
			NumEdges: *ne, NumNodes: *nv, MeanEdgeSize: *mean,
			SizeSkew: *sizeSkew, MemberSkew: *memberSkew, Seed: *seed,
		})
	case *generator == "bipartite":
		h = gen.BipartitePowerLaw(*ne, *nv, *m, *skew, *seed)
	case *generator == "rmat":
		h = gen.RMAT(*ne, *nv, *m, *rmatA, 0.5*(1-*rmatA), 0.25*(1-*rmatA), *seed)
	default:
		return fmt.Errorf("unknown generator %q", *generator)
	}

	bel := sparse.NewBiEdgeList(h.NumEdges(), h.NumNodes())
	for e, nbrs := range h.EdgeRange() {
		for _, v := range nbrs {
			bel.Add(uint32(e), v)
		}
	}
	write := func(w io.Writer) error {
		switch {
		case *tsv:
			return mmio.WriteTSV(w, bel)
		case strings.HasSuffix(*out, mmio.SnapshotExt):
			// Binary snapshot of the incidence CSR: Load skips text
			// parsing, dedup, and CSR construction on the way back in.
			return mmio.WriteSnapshot(w, &mmio.Snapshot{CSR: h.Edges})
		default:
			return mmio.WriteBiEdgeList(w, bel)
		}
	}
	if *out == "" {
		return write(stdout)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st := core.ComputeStats(h)
	fmt.Fprintf(stdout, "wrote %s: |E|=%d |V|=%d incidences=%d d̄v=%.1f d̄e=%.1f Δv=%d Δe=%d\n",
		*out, st.NumEdges, st.NumNodes, h.NumIncidences(),
		st.AvgNodeDegree, st.AvgEdgeDegree, st.MaxNodeDegree, st.MaxEdgeDegree)
	return nil
}
