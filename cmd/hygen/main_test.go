package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"nwhy"
)

func TestHygenList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"com-orkut-mini", "rand1-mini", "web-mini"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %s", want)
		}
	}
}

func TestHygenWritesLoadableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.mtx")
	var out bytes.Buffer
	if err := run([]string{"-gen", "uniform", "-edges", "50", "-nodes", "80", "-size", "4", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote "+path) {
		t.Fatalf("missing summary: %q", out.String())
	}
	g, err := nwhy.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 50 || g.NumNodes() != 80 {
		t.Fatalf("shape %d/%d", g.NumEdges(), g.NumNodes())
	}
}

func TestHygenWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.nwhyb")
	var out bytes.Buffer
	if err := run([]string{"-gen", "uniform", "-edges", "50", "-nodes", "80", "-size", "4", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := nwhy.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 50 || g.NumNodes() != 80 {
		t.Fatalf("shape %d/%d", g.NumEdges(), g.NumNodes())
	}
	if g.NumIncidences() != 50*4 {
		t.Fatalf("incidences %d", g.NumIncidences())
	}
}

func TestHygenStdout(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "uniform", "-edges", "3", "-nodes", "5", "-size", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "%%MatrixMarket") {
		t.Fatalf("stdout output not Matrix Market: %q", out.String()[:40])
	}
}

func TestHygenTSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-gen", "uniform", "-edges", "3", "-nodes", "5", "-size", "2", "-tsv"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# hypergraph incidence") {
		t.Fatalf("tsv output wrong: %q", out.String()[:40])
	}
}

func TestHygenPreset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.mtx")
	if err := run([]string{"-preset", "rand1-mini", "-scale", "0.01", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if _, err := nwhy.Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestHygenErrors(t *testing.T) {
	if err := run([]string{"-gen", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if err := run([]string{"-preset", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if err := run([]string{"-bogus-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestHygenCommunityAndBipartite(t *testing.T) {
	for _, args := range [][]string{
		{"-gen", "community", "-edges", "40", "-nodes", "30", "-mean", "4"},
		{"-gen", "bipartite", "-edges", "40", "-nodes", "30", "-incidences", "200"},
		{"-gen", "rmat", "-edges", "64", "-nodes", "64", "-incidences", "300"},
	} {
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%v: no output", args)
		}
	}
}
