package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes run with captured stdout/stderr and returns the exit
// code plus both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	out, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	errf, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	defer errf.Close()
	code = run(args, out, errf)
	outData, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	errData, err := os.ReadFile(errf.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(outData), string(errData)
}

func TestListMode(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{
		"engine-first", "no-naked-goroutine", "atomic-mixing", "ctx-at-rounds", "tls-recycle",
		"ctx-propagation", "locks-balanced", "statebox-discipline", "ctx-first-handler",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestUnknownCheckFlag(t *testing.T) {
	code, _, stderr := runLint(t, "-checks", "no-such-check")
	if code != 2 {
		t.Errorf("unknown check exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr missing unknown-check message: %s", stderr)
	}
}

// TestModuleIsClean is the CLI-level twin of the framework's
// TestRepoIsClean: linting the whole module from inside a subdirectory
// (module root discovery walks up) must exit 0 with no output.
func TestModuleIsClean(t *testing.T) {
	code, stdout, stderr := runLint(t, "./...")
	if code != 0 {
		t.Errorf("lint over the module exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

// TestChecksSubset runs a named subset over the module; a clean tree stays
// clean under any subset, and unused-suppression reporting is disabled for
// partial runs.
func TestChecksSubset(t *testing.T) {
	code, stdout, stderr := runLint(t, "-checks", "engine-first,locks-balanced,ctx-propagation", "./...")
	if code != 0 {
		t.Errorf("subset lint exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}

// TestJSONCleanModule pins the machine-readable contract CI keys on: a
// clean tree emits exactly an empty JSON array on stdout.
func TestJSONCleanModule(t *testing.T) {
	code, stdout, stderr := runLint(t, "-json", "./...")
	if code != 0 {
		t.Errorf("-json lint exited %d\nstderr:\n%s", code, stderr)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Errorf("-json clean output = %q, want []", stdout)
	}
}

// TestJSONDiagnostics lints a scratch module with a seeded violation and
// checks the JSON shape end to end: exit 1, one object, the right check.
func TestJSONDiagnostics(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module scratch\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(pkgDir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package core\n\nfunc fire(done chan struct{}) {\n\tgo close(done)\n}\n"
	if err := os.WriteFile(filepath.Join(pkgDir, "core.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Chdir(dir)
	code, stdout, stderr := runLint(t, "-json", "./...")
	if code != 1 {
		t.Fatalf("seeded violation exited %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	var out []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &out); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, stdout)
	}
	if len(out) != 1 || out[0].Check != "no-naked-goroutine" || out[0].Line != 4 {
		t.Fatalf("diagnostics = %+v, want one no-naked-goroutine at line 4", out)
	}
}
