package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runLint invokes run with captured stdout/stderr and returns the exit
// code plus both streams.
func runLint(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	dir := t.TempDir()
	out, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	errf, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	defer errf.Close()
	code = run(args, out, errf)
	outData, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	errData, err := os.ReadFile(errf.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(outData), string(errData)
}

func TestListMode(t *testing.T) {
	code, stdout, _ := runLint(t, "-list")
	if code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"engine-first", "no-naked-goroutine", "atomic-mixing", "ctx-at-rounds", "tls-recycle"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout)
		}
	}
}

func TestUnknownCheckFlag(t *testing.T) {
	code, _, stderr := runLint(t, "-checks", "no-such-check")
	if code != 2 {
		t.Errorf("unknown check exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown check") {
		t.Errorf("stderr missing unknown-check message: %s", stderr)
	}
}

// TestModuleIsClean is the CLI-level twin of the framework's
// TestRepoIsClean: linting the whole module from inside a subdirectory
// (module root discovery walks up) must exit 0 with no output.
func TestModuleIsClean(t *testing.T) {
	code, stdout, stderr := runLint(t, "./...")
	if code != 0 {
		t.Errorf("lint over the module exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("expected no diagnostics, got:\n%s", stdout)
	}
}
