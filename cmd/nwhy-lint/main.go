// Command nwhy-lint runs NWHy-Go's static-analysis suite: repo-specific
// checks that machine-enforce the engine and concurrency invariants
// (engine-first kernels, pool-confined goroutines, no atomic/plain mixing
// inside parallel regions, per-round cancellation, arena recycling).
//
// Usage:
//
//	go run ./cmd/nwhy-lint ./...          # lint the whole module
//	go run ./cmd/nwhy-lint -list          # print the registered checks
//	go run ./cmd/nwhy-lint -checks a,b .  # run a subset
//
// Diagnostics print as file:line:col: check: message. The exit status is 0
// when the tree is clean, 1 when diagnostics were reported, and 2 on usage
// or load errors. Individual findings can be silenced with a justified
// suppression comment:
//
//	//nwhy:nolint(check-name) reason the invariant is safe to waive here
//
// The tool is built on the standard library only; it adds no module
// dependencies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nwhy/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("nwhy-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered checks and exit")
	checkList := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-20s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks := analysis.Checks()
	runningAll := true
	if *checkList != "" {
		runningAll = false
		checks = checks[:0:0]
		for _, name := range strings.Split(*checkList, ",") {
			name = strings.TrimSpace(name)
			c := analysis.LookupCheck(name)
			if c == nil {
				fmt.Fprintf(stderr, "nwhy-lint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}
	pkgs, err := analysis.Load(root, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}
	diags := analysis.Run(pkgs, checks, analysis.Options{ReportUnusedSuppressions: runningAll})
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stdout, "nwhy-lint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
