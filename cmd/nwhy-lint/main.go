// Command nwhy-lint runs NWHy-Go's static-analysis suite: repo-specific
// checks that machine-enforce the engine and concurrency invariants
// (engine-first kernels, pool-confined goroutines, no atomic/plain mixing
// inside parallel regions, per-round cancellation, arena recycling,
// context propagation, lock balance, and the stateBox commit protocol).
// Packages are parsed and type-checked module-wide, so the interprocedural
// checks see real method sets and the cross-package call graph.
//
// Usage:
//
//	go run ./cmd/nwhy-lint ./...          # lint the whole module
//	go run ./cmd/nwhy-lint -list          # print the registered checks
//	go run ./cmd/nwhy-lint -checks a,b .  # run a subset
//	go run ./cmd/nwhy-lint -json ./...    # machine-readable diagnostics
//
// Diagnostics print as file:line:col: check: message (or, with -json, as a
// JSON array of objects with those fields). The exit status is 0 when the
// tree is clean, 1 when diagnostics were reported, and 2 on usage or load
// errors. Individual findings can be silenced with a justified suppression
// comment:
//
//	//nwhy:nolint(check-name) reason the invariant is safe to waive here
//
// The tool is built on the standard library only; it adds no module
// dependencies. Type-checking and analysis both run in parallel on the
// repo's own engine; -v reports the phase timings on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"nwhy/internal/analysis"
	"nwhy/internal/parallel"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiag is the -json wire shape of one diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("nwhy-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the registered checks and exit")
	checkList := fs.String("checks", "", "comma-separated subset of checks to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	verbose := fs.Bool("v", false, "report load/analysis timings on stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, c := range analysis.Checks() {
			fmt.Fprintf(stdout, "%-20s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks := analysis.Checks()
	runningAll := true
	if *checkList != "" {
		runningAll = false
		checks = checks[:0:0]
		for _, name := range strings.Split(*checkList, ",") {
			name = strings.TrimSpace(name)
			c := analysis.LookupCheck(name)
			if c == nil {
				fmt.Fprintf(stderr, "nwhy-lint: unknown check %q (try -list)\n", name)
				return 2
			}
			checks = append(checks, c)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}

	eng := parallel.NewEngine(runtime.GOMAXPROCS(0))
	defer eng.Close()

	loadStart := time.Now()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}
	loader.Engine = eng
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fmt.Fprintln(stderr, "nwhy-lint:", err)
		return 2
	}
	loadDone := time.Now()
	diags := analysis.Run(pkgs, checks, analysis.Options{
		ReportUnusedSuppressions: runningAll,
		Engine:                   eng,
	})
	if *verbose {
		fmt.Fprintf(stderr, "nwhy-lint: loaded %d package(s) in %v, analyzed in %v\n",
			len(pkgs), loadDone.Sub(loadStart).Round(time.Millisecond), time.Since(loadDone).Round(time.Millisecond))
	}

	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "nwhy-lint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(stdout, "nwhy-lint: %d diagnostic(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
