// Command scaling runs a miniature of the paper's Figure 7/8 strong-scaling
// experiment on one preset: hypergraph CC and BFS at 1, 2, 4, ... workers,
// printing per-thread-count runtimes for every algorithm variant so the
// scaling shape (and the NWHy-vs-Hygra comparison) is visible on a laptop.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"nwhy"
	"nwhy/internal/gen"
)

func main() {
	presetName := flag.String("preset", "rand1-mini", "dataset preset (see internal/gen)")
	scale := flag.Float64("scale", 0.25, "dataset scale factor")
	reps := flag.Int("reps", 3, "repetitions per measurement (min is reported)")
	flag.Parse()

	preset, err := gen.ByName(*presetName)
	if err != nil {
		fmt.Println(err)
		return
	}
	g := nwhy.Wrap(preset.Build(*scale))
	fmt.Printf("%s at scale %.2f: |E|=%d |V|=%d incidences=%d\n",
		*presetName, *scale, g.NumEdges(), g.NumNodes(), g.NumIncidences())

	ccVariants := []struct {
		name string
		v    nwhy.CCVariant
	}{
		{"HyperCC", nwhy.CCHyper},
		{"AdjoinCC", nwhy.CCAdjoinAfforest},
		{"HygraCC", nwhy.CCHygraBaseline},
	}
	bfsVariants := []struct {
		name string
		v    nwhy.BFSVariant
	}{
		{"HyperBFS", nwhy.BFSTopDown},
		{"AdjoinBFS", nwhy.BFSAdjoin},
		{"HygraBFS", nwhy.BFSHygraBaseline},
	}

	g.Adjoin() // build once, outside timing

	fmt.Printf("\n%-10s", "threads")
	for _, c := range ccVariants {
		fmt.Printf("%12s", c.name)
	}
	for _, b := range bfsVariants {
		fmt.Printf("%12s", b.name)
	}
	fmt.Println()

	maxThreads := runtime.GOMAXPROCS(0)
	if maxThreads < 4 {
		// On few-core machines still sweep to 4 workers so the scaling
		// machinery is exercised (speedups need real cores, of course).
		maxThreads = 4
	}
	for threads := 1; threads <= maxThreads; threads *= 2 {
		eng := nwhy.NewEngine(threads)
		gt := g.WithEngine(eng)
		fmt.Printf("%-10d", threads)
		for _, c := range ccVariants {
			best := time.Duration(1 << 62)
			for r := 0; r < *reps; r++ {
				t0 := time.Now()
				gt.ConnectedComponents(c.v)
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			fmt.Printf("%12s", best.Round(time.Microsecond))
		}
		for _, b := range bfsVariants {
			best := time.Duration(1 << 62)
			for r := 0; r < *reps; r++ {
				t0 := time.Now()
				gt.BFS(0, b.v)
				if d := time.Since(t0); d < best {
					best = d
				}
			}
			fmt.Printf("%12s", best.Round(time.Microsecond))
		}
		fmt.Println()
		eng.Close()
	}
}
