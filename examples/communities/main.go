// Command communities runs approximate hypergraph analytics on a synthetic
// social-network hypergraph (the com-orkut-mini preset: communities as
// hyperedges, members as hypernodes), the workload family of the paper's
// evaluation. It sweeps s, showing how the s-line graph sharpens from "any
// shared member" to "strongly overlapping communities", and ranks the most
// central communities at each s.
package main

import (
	"fmt"
	"sort"
	"time"

	"nwhy"
	"nwhy/internal/gen"
)

func main() {
	preset, err := gen.ByName("com-orkut-mini")
	if err != nil {
		panic(err)
	}
	g := nwhy.Wrap(preset.Build(0.25))

	fmt.Printf("synthetic com-Orkut: %d communities over %d members (%d memberships)\n",
		g.NumEdges(), g.NumNodes(), g.NumIncidences())

	// Ensemble construction: all thresholds in one counting pass.
	ss := []int{1, 2, 4, 8}
	t0 := time.Now()
	byS := g.SLineGraphEnsemble(ss, true)
	fmt.Printf("ensemble s-line construction took %v\n", time.Since(t0).Round(time.Millisecond))

	for _, s := range ss {
		lg := byS[s]
		comp := lg.SConnectedComponents()
		sizes := map[uint32]int{}
		for _, c := range comp {
			sizes[c]++
		}
		largest := 0
		for _, n := range sizes {
			if n > largest {
				largest = n
			}
		}
		fmt.Printf("s=%d: %7d line-graph edges, %6d s-components, largest %6d\n",
			s, lg.NumEdges(), len(sizes), largest)
	}

	// Rank communities by s=2 harmonic closeness (well-defined on
	// disconnected line graphs, unlike raw closeness).
	lg := byS[2]
	hc := lg.SHarmonicClosenessCentrality()
	type ranked struct {
		id    int
		score float64
	}
	rs := make([]ranked, len(hc))
	for i, v := range hc {
		rs[i] = ranked{i, v}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].score > rs[b].score })
	fmt.Println("most central communities at s=2 (harmonic closeness):")
	for _, r := range rs[:5] {
		fmt.Printf("  community %5d: score %.4f, size %d, 2-degree %d\n",
			r.id, r.score, g.EdgeDegree(r.id), lg.SDegree(r.id))
	}
}
