// Command weightedwalks demonstrates strength-weighted s-analytics: the
// s-line edges of Figure 5 carry the exact overlap |e ∩ f| as a strength,
// and distances/betweenness over s-walks can prefer strongly-overlapping
// hyperedge chains instead of treating every s-line edge alike.
//
// The scenario: collaboration cliques (hyperedges) where two "bridge"
// cliques connect the same pair of clusters — one sharing many members,
// one sharing a single member. Hop-count s-metrics cannot tell the bridges
// apart; strength-weighted ones route through the strong bridge.
package main

import (
	"fmt"

	"nwhy"
)

func main() {
	// Cluster A: hyperedges 0-1 strongly overlapping.
	// Cluster B: hyperedges 4-5 strongly overlapping.
	// Bridge "strong" (e2) shares 3 members with each cluster.
	// Bridge "weak" (e3) shares 1 member with each cluster.
	hg := nwhy.FromSets([][]uint32{
		{0, 1, 2, 3, 4},       // e0  cluster A
		{1, 2, 3, 4, 5},       // e1  cluster A
		{3, 4, 5, 10, 11, 12}, // e2  strong bridge (3 with A, 3 with B)
		{0, 20, 10},           // e3  weak bridge (1 with A, 1 with B)
		{10, 11, 12, 13, 14},  // e4  cluster B
		{11, 12, 13, 14, 15},  // e5  cluster B
	}, 21)

	wl := hg.SLineGraphWeighted(1)
	fmt.Printf("1-line graph: %d hyperedges, %d s-line edges\n", wl.NumVertices(), wl.NumEdges())
	fmt.Println("\noverlap strengths:")
	for _, pair := range [][2]int{{0, 1}, {1, 2}, {2, 4}, {0, 3}, {3, 4}} {
		fmt.Printf("  |e%d ∩ e%d| = %d\n", pair[0], pair[1], wl.Strength(pair[0], pair[1]))
	}

	// Hop distance treats both bridges alike; strength weighting does not.
	fmt.Printf("\nhop s-distance   e1 -> e5: %d\n", wl.SDistance(1, 5))
	fmt.Printf("weighted s-dist  e1 -> e5: %.3f (sum of 1/overlap)\n", wl.SDistanceWeighted(1, 5))
	fmt.Printf("weighted s-path  e1 -> e5: %v (via the strong bridge e2)\n", wl.SPathWeighted(1, 5))

	// Betweenness: under hop counting the bridges can split traffic; under
	// strength weighting the strong bridge carries it.
	plain := wl.SBetweennessCentrality(false)
	weighted := wl.SBetweennessCentralityWeighted(false)
	fmt.Println("\nbetweenness over s-walks (hop vs strength-weighted):")
	for e := 0; e < wl.NumVertices(); e++ {
		marker := ""
		switch e {
		case 2:
			marker = "  <- strong bridge"
		case 3:
			marker = "  <- weak bridge"
		}
		fmt.Printf("  e%d: %6.2f   %6.2f%s\n", e, plain[e], weighted[e], marker)
	}
}
