// Command quickstart reproduces the paper's Listing 5 — the minimal working
// example of the nwhy Python API — in Go: build a small hypergraph, take its
// 2-line graph, and run every s-metric query.
package main

import (
	"fmt"

	"nwhy"
)

func main() {
	// Two hyperedges (communities) 0 and 1, both containing members 0, 1, 2.
	col := []uint32{0, 0, 0, 1, 1, 1}
	row := []uint32{0, 1, 2, 0, 1, 2}
	weight := []float64{1, 1, 1, 1, 1, 1}

	// hg = nwhy.NWHypergraph(row, col, weight)
	hg, err := nwhy.New(col, row, weight)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hypergraph: %d hyperedges, %d hypernodes, %d incidences\n",
		hg.NumEdges(), hg.NumNodes(), hg.NumIncidences())

	// s2lg = hg.s_linegraph(s=2, edges=True)
	s2lg := hg.SLineGraph(2, true)
	fmt.Printf("2-line graph: %d vertices, %d edges\n", s2lg.NumVertices(), s2lg.NumEdges())

	// tmp = s2lg.is_s_connected()
	fmt.Println("is 2-connected:", s2lg.IsSConnected())

	// sn = s2lg.s_neighbors(v=0)
	fmt.Println("2-neighbors of hyperedge 0:", s2lg.SNeighbors(0))

	// sd = s2lg.s_degree(v=0)
	fmt.Println("2-degree of hyperedge 0:", s2lg.SDegree(0))

	// scc = s2lg.s_connected_components()
	fmt.Println("2-connected components:", s2lg.SConnectedComponents())

	// sdist = s2lg.s_distance(src=0, dest=1)
	fmt.Println("2-distance 0 -> 1:", s2lg.SDistance(0, 1))

	// sp = s2lg.s_path(src=0, dest=1)
	fmt.Println("2-path 0 -> 1:", s2lg.SPath(0, 1))

	// sbc = s2lg.s_betweenness_centrality(normalized=True)
	fmt.Println("2-betweenness:", s2lg.SBetweennessCentrality(true))

	// sc = s2lg.s_closeness_centrality(v=None)
	fmt.Println("2-closeness:", s2lg.SClosenessCentrality())

	// shc = s2lg.s_harmonic_closeness_centrality(v=None)
	fmt.Println("2-harmonic closeness:", s2lg.SHarmonicClosenessCentrality())

	// se = s2lg.s_eccentricity(v=None)
	fmt.Println("2-eccentricity:", s2lg.SEccentricity())
}
