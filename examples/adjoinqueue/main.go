// Command adjoinqueue demonstrates the paper's central algorithmic claim:
// the queue-based s-line-graph construction algorithms (Algorithms 1 and 2)
// work on any hyperedge ID space — the adjoin representation's shared index
// set, degree-sorted work queues, even arbitrarily renamed IDs — while
// producing exactly the same s-line graph as the non-queue algorithms on
// the bipartite representation.
package main

import (
	"fmt"
	"reflect"
	"time"

	"nwhy"
	"nwhy/internal/gen"
	"nwhy/internal/slinegraph"
	"nwhy/internal/sparse"
)

func main() {
	preset, _ := gen.ByName("livejournal-mini")
	h := preset.Build(0.3)
	g := nwhy.Wrap(h)
	fmt.Printf("input: |E|=%d |V|=%d incidences=%d\n", g.NumEdges(), g.NumNodes(), g.NumIncidences())

	const s = 2

	// Reference: the non-queue hashmap algorithm on the bipartite form.
	t0 := time.Now()
	reference := g.SLineGraphWith(s, true, nwhy.ConstructOptions{Algorithm: nwhy.AlgoHashmap})
	fmt.Printf("bipartite + Hashmap:                 %7d edges in %v\n",
		reference.NumEdges(), time.Since(t0).Round(time.Millisecond))

	// Algorithm 1 on the same bipartite form.
	t0 = time.Now()
	q1 := g.SLineGraphWith(s, true, nwhy.ConstructOptions{Algorithm: nwhy.AlgoQueueHashmap})
	fmt.Printf("bipartite + Algorithm 1 (queue):     %7d edges in %v\n",
		q1.NumEdges(), time.Since(t0).Round(time.Millisecond))

	// Algorithm 1 fed the adjoin representation directly: one shared index
	// set, no conversion back to bipartite form.
	adjoin := g.Adjoin()
	t0 = time.Now()
	qa := g.SLineGraphWith(s, true, nwhy.ConstructOptions{Algorithm: nwhy.AlgoQueueHashmap, UseAdjoin: true})
	fmt.Printf("adjoin    + Algorithm 1 (queue):     %7d edges in %v  (shared index set of %d IDs)\n",
		qa.NumEdges(), time.Since(t0).Round(time.Millisecond), adjoin.NumVertices())

	// Algorithm 2 with a degree-sorted work queue — relabel-by-degree
	// without physically relabeling anything, the move the non-queue
	// algorithms cannot make on adjoin graphs.
	t0 = time.Now()
	q2 := g.SLineGraphWith(s, true, nwhy.ConstructOptions{
		Algorithm: nwhy.AlgoQueueIntersection,
		Relabel:   sparse.Descending,
		Cyclic:    true,
	})
	fmt.Printf("bipartite + Algorithm 2 (queue, descending, cyclic): %7d edges in %v\n",
		q2.NumEdges(), time.Since(t0).Round(time.Millisecond))

	same := reflect.DeepEqual(reference.Pairs(), q1.Pairs()) &&
		reflect.DeepEqual(reference.Pairs(), qa.Pairs()) &&
		reflect.DeepEqual(reference.Pairs(), q2.Pairs())
	fmt.Println("all four constructions identical:", same)

	// Finally, scatter the hyperedge IDs across a 4x larger sparse ID space
	// — the regime where the non-queue algorithms' [0, nE) assumption breaks
	// outright — and run Algorithm 1 via the Input interface.
	rename := map[uint32]uint32{}
	for e := 0; e < g.NumEdges(); e++ {
		rename[uint32(e)] = uint32(4*e + 3)
	}
	in := slinegraph.Renamed(slinegraph.FromHypergraph(h), rename, 4*g.NumEdges()+3)
	t0 = time.Now()
	renamed, _ := slinegraph.QueueHashmap(nwhy.SharedEngine(), in, s, slinegraph.Options{})
	fmt.Printf("renamed   + Algorithm 1 (queue):     %7d edges in %v  (IDs 3, 7, 11, ...)\n",
		len(renamed), time.Since(t0).Round(time.Millisecond))
	ok := len(renamed) == reference.NumEdges()
	for i, p := range renamed {
		want := reference.Pairs()[i]
		if p.U != 4*want.U+3 || p.V != 4*want.V+3 {
			ok = false
			break
		}
	}
	fmt.Println("renamed result maps back exactly:", ok)
}
