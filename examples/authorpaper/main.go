// Command authorpaper demonstrates exact hypergraph analytics on the kind
// of dataset the paper's introduction motivates: an author–paper hypergraph,
// where each paper is a hyperedge over its authors — the three-way (and
// higher) collaborations a pairwise graph cannot represent.
//
// It builds a small bibliography, then runs the exact algorithms on both
// representations: HyperBFS (collaboration distance), HyperCC / AdjoinCC
// (research communities), and toplexes (maximal author sets), plus the
// s-line view: which papers share at least s authors.
package main

import (
	"fmt"

	"nwhy"
)

func main() {
	authors := []string{
		"Liu", "Firoz", "Gebremedhin", "Lumsdaine", // 0-3
		"Aksoy", "Joslyn", "Praggastis", "Purvine", // 4-7
		"Shun", "Beamer", "Sutton", // 8-10
		"Solo", // 11: publishes alone
	}
	// Each paper is a hyperedge over author IDs.
	papers := [][]uint32{
		{0, 1, 2, 3}, // P0: the NWHy paper's author set
		{0, 1, 3},    // P1: an earlier s-line-graph paper (subset of P0!)
		{4, 5, 6, 7}, // P2: the hypernetwork-science group
		{0, 4, 5},    // P3: a bridge paper between the groups
		{8},          // P4: single-author PPoPP paper
		{9, 8},       // P5: BFS paper
		{10, 9},      // P6: Afforest paper
		{11},         // P7: isolated author
	}
	hg := nwhy.FromSets(papers, len(authors))

	st := hg.Stats()
	fmt.Printf("bibliography: %d papers, %d authors, avg authors/paper %.2f, busiest author writes %d papers\n",
		st.NumEdges, st.NumNodes, st.AvgEdgeDegree, st.MaxNodeDegree)

	// Toplexes: the maximal collaborations (P1 is inside P0, so it is not
	// a toplex; neither are single-author subsets of larger papers).
	fmt.Print("maximal collaborations (toplexes): ")
	for _, e := range hg.Toplexes() {
		fmt.Printf("P%d ", e)
	}
	fmt.Println()

	// Exact connected components on both representations — research
	// communities of transitively collaborating authors.
	cc := hg.ConnectedComponents(nwhy.CCHyper)
	adjoinCC := hg.ConnectedComponents(nwhy.CCAdjoinAfforest)
	fmt.Printf("research communities: %d (bipartite HyperCC) = %d (AdjoinCC)\n",
		cc.NumComponents(), adjoinCC.NumComponents())
	communities := map[uint32][]string{}
	for a, c := range cc.NodeComp {
		communities[c] = append(communities[c], authors[a])
	}
	for _, members := range communities {
		fmt.Println("  community:", members)
	}

	// HyperBFS from P0: bipartite hops alternate paper -> author -> paper,
	// so level/2 is the co-authorship distance between papers.
	bfs := hg.BFS(0, nwhy.BFSTopDown)
	fmt.Println("collaboration distance from P0 (papers):")
	for p, lvl := range bfs.EdgeLevel {
		if lvl >= 0 {
			fmt.Printf("  P%d: %d hop(s)\n", p, lvl/2)
		} else {
			fmt.Printf("  P%d: unreachable\n", p)
		}
	}

	// s-line graphs: which papers share >= s authors.
	for s := 1; s <= 3; s++ {
		lg := hg.SLineGraph(s, true)
		fmt.Printf("papers sharing >= %d authors: %d pairs", s, lg.NumEdges())
		if s == 3 {
			fmt.Printf(" (P0-P1 share Liu, Firoz, Lumsdaine)")
		}
		fmt.Println()
	}

	// s-clique side: authors who co-sign >= 2 papers together.
	dual := hg.SLineGraph(2, false)
	fmt.Print("author pairs with >= 2 joint papers: ")
	for a := 0; a < len(authors); a++ {
		for _, b := range dual.SNeighbors(a) {
			if int(b) > a {
				fmt.Printf("%s-%s ", authors[a], authors[b])
			}
		}
	}
	fmt.Println()
}
