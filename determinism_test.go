package nwhy

import (
	"reflect"
	"testing"
)

// The paper's algorithms are nondeterministic internally (work stealing,
// CAS races on equivalent parents) but every exposed result here is defined
// to be canonical: identical across worker counts and partition strategies.
// These tests sweep the thread count and assert bit-identical outputs.

func determinismFixture() *NWHypergraph {
	sets := make([][]uint32, 120)
	for i := range sets {
		// Overlapping windows plus a few long-range links: one big
		// component with nontrivial s-structure.
		sets[i] = []uint32{uint32(i), uint32(i + 1), uint32(i + 2), uint32((i * 7) % 130)}
	}
	return FromSets(sets, 131)
}

func TestCCDeterministicAcrossThreadCounts(t *testing.T) {
	hg := determinismFixture()
	defer SetNumThreads(0)
	var want *struct {
		e, n []uint32
	}
	for _, threads := range []int{1, 2, 4, 8} {
		SetNumThreads(threads)
		for _, v := range []CCVariant{CCHyper, CCAdjoinAfforest, CCAdjoinLabelProp, CCHygraBaseline} {
			r := hg.ConnectedComponents(v)
			if want == nil {
				want = &struct{ e, n []uint32 }{r.EdgeComp, r.NodeComp}
				continue
			}
			if !reflect.DeepEqual(r.EdgeComp, want.e) || !reflect.DeepEqual(r.NodeComp, want.n) {
				t.Fatalf("CC variant %d at %d threads differs", v, threads)
			}
		}
	}
}

func TestBFSDeterministicAcrossThreadCounts(t *testing.T) {
	hg := determinismFixture()
	defer SetNumThreads(0)
	want := hg.BFS(0, BFSTopDown)
	for _, threads := range []int{1, 2, 4, 8} {
		SetNumThreads(threads)
		for _, v := range []BFSVariant{BFSTopDown, BFSBottomUp, BFSAdjoin, BFSHygraBaseline, BFSDirectionOptimizing} {
			r := hg.BFS(0, v)
			if !reflect.DeepEqual(r.EdgeLevel, want.EdgeLevel) || !reflect.DeepEqual(r.NodeLevel, want.NodeLevel) {
				t.Fatalf("BFS variant %d at %d threads differs", v, threads)
			}
		}
	}
}

func TestSLineDeterministicAcrossThreadCounts(t *testing.T) {
	hg := determinismFixture()
	defer SetNumThreads(0)
	want := hg.SLineGraph(2, true).Pairs()
	for _, threads := range []int{1, 2, 4, 8} {
		SetNumThreads(threads)
		for _, algo := range []Algorithm{AlgoHashmap, AlgoIntersection, AlgoQueueHashmap, AlgoQueueIntersection} {
			for _, cyclic := range []bool{false, true} {
				got := hg.SLineGraphWith(2, true, ConstructOptions{Algorithm: algo, Cyclic: cyclic}).Pairs()
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%v cyclic=%v at %d threads differs", algo, cyclic, threads)
				}
			}
		}
	}
}

func TestToplexesDeterministicAcrossThreadCounts(t *testing.T) {
	hg := determinismFixture()
	defer SetNumThreads(0)
	want := hg.Toplexes()
	for _, threads := range []int{1, 3, 8} {
		SetNumThreads(threads)
		if got := hg.Toplexes(); !reflect.DeepEqual(got, want) {
			t.Fatalf("toplexes at %d threads differ", threads)
		}
	}
}

func TestHyperAlgFacade(t *testing.T) {
	hg := determinismFixture()
	pr := hg.HyperPageRank(0.85, 1e-9, 200)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("HyperPageRank sums to %v", sum)
	}
	core := hg.HyperCoreness()
	if len(core) != hg.NumNodes() {
		t.Fatal("HyperCoreness length wrong")
	}
	for v, c := range core {
		if c < 0 || c > hg.NodeDegree(v) {
			t.Fatalf("core[%d] = %d out of range", v, c)
		}
	}
}

func TestSMISFacade(t *testing.T) {
	hg := determinismFixture()
	lg := hg.SLineGraph(1, true)
	set := lg.SMaximalIndependentSet(7)
	// Independence: no two selected hyperedges may be 1-adjacent.
	for e := 0; e < lg.NumVertices(); e++ {
		if !set[e] {
			continue
		}
		for _, f := range lg.SNeighbors(e) {
			if set[f] {
				t.Fatalf("hyperedges %d and %d both selected but s-adjacent", e, f)
			}
		}
	}
}
