package nwhy

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// engineTestHypergraph builds a hypergraph big enough that its kernels
// actually fan out over workers: a chain of overlapping hyperedges plus a
// block of disconnected singleton edges.
func engineTestHypergraph(t *testing.T) *NWHypergraph {
	t.Helper()
	sets := make([][]uint32, 0, 600)
	for e := 0; e < 400; e++ {
		// Chain: edge e holds nodes {2e, 2e+1, 2e+2, 2e+3} so consecutive
		// edges overlap in two nodes (2-line-graph chain).
		sets = append(sets, []uint32{uint32(2 * e), uint32(2*e + 1), uint32(2*e + 2), uint32(2*e + 3)})
	}
	base := uint32(2*400 + 4)
	for e := 0; e < 200; e++ {
		sets = append(sets, []uint32{base + uint32(e)})
	}
	return FromSets(sets, -1)
}

// TestTwoEnginesConcurrently runs HyperCC and an s-line-graph construction
// on two independent engines with different worker counts at the same time
// and checks both agree with the shared-engine result. Run under -race this
// is the isolation guarantee of the explicit-engine refactor: no shared
// mutable state between engines.
func TestTwoEnginesConcurrently(t *testing.T) {
	g := engineTestHypergraph(t)
	wantCC := g.ConnectedComponents(CCHyper)
	wantPairs := g.SLineGraph(2, true).Pairs()

	e1 := NewEngine(2)
	defer e1.Close()
	e2 := NewEngine(4)
	defer e2.Close()
	g1 := g.WithEngine(e1)
	g2 := g.WithEngine(e2)

	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan string, 4*rounds)
	run := func(gt *NWHypergraph, label string) {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if cc := gt.ConnectedComponents(CCHyper); !reflect.DeepEqual(cc.EdgeComp, wantCC.EdgeComp) {
				errs <- label + ": HyperCC labels diverged"
				return
			}
			if lg := gt.SLineGraph(2, true); !reflect.DeepEqual(lg.Pairs(), wantPairs) {
				errs <- label + ": s-line pairs diverged"
				return
			}
		}
	}
	wg.Add(4)
	go run(g1, "engine1/a")
	go run(g1, "engine1/b")
	go run(g2, "engine2/a")
	go run(g2, "engine2/b")
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestBFSCtxCancellation asserts an expired deadline aborts HyperBFS before
// completion and surfaces ctx.Err().
func TestBFSCtxCancellation(t *testing.T) {
	g := engineTestHypergraph(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, v := range []BFSVariant{BFSTopDown, BFSBottomUp, BFSDirectionOptimizing, BFSAdjoin, BFSHygraBaseline} {
		r, err := g.BFSCtx(ctx, 0, v)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("variant %d: err = %v, want DeadlineExceeded", v, err)
		}
		if r != nil {
			t.Fatalf("variant %d: got non-nil result from cancelled BFS", v)
		}
	}
	// A live context must still produce the full traversal.
	r, err := g.BFSCtx(context.Background(), 0, BFSTopDown)
	if err != nil {
		t.Fatal(err)
	}
	if want := g.BFS(0, BFSTopDown); !reflect.DeepEqual(r.EdgeLevel, want.EdgeLevel) {
		t.Fatal("live-context BFS differs from plain BFS")
	}
}

// TestSLineGraphCtxCancellation asserts a cancelled context aborts the
// s-line-graph construction (queue and non-queue paths) with ctx.Err().
func TestSLineGraphCtxCancellation(t *testing.T) {
	g := engineTestHypergraph(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{AlgoHashmap, AlgoNaive, AlgoQueueHashmap, AlgoQueueIntersection} {
		lg, err := g.SLineGraphCtx(ctx, 2, true, ConstructOptions{Algorithm: algo})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("algo %v: err = %v, want Canceled", algo, err)
		}
		if lg != nil {
			t.Fatalf("algo %v: got non-nil handle from cancelled construction", algo)
		}
	}
	if _, err := g.SConnectedComponentsDirectCtx(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SConnectedComponentsDirectCtx err = %v, want Canceled", err)
	}
	if _, err := g.ConnectedComponentsCtx(ctx, CCHyper); !errors.Is(err, context.Canceled) {
		t.Fatalf("ConnectedComponentsCtx err = %v, want Canceled", err)
	}
	if _, err := g.HyperPageRankCtx(ctx, 0.85, 1e-9, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("HyperPageRankCtx err = %v, want Canceled", err)
	}
	if _, err := g.CliqueExpansionCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CliqueExpansionCtx err = %v, want Canceled", err)
	}
}

// TestWithEngineSharesStructure checks WithEngine is a cheap rebind: the
// underlying hypergraph is shared and the original handle keeps its engine.
func TestWithEngineSharesStructure(t *testing.T) {
	g := engineTestHypergraph(t)
	eng := NewEngine(3)
	defer eng.Close()
	gt := g.WithEngine(eng)
	if gt.Hypergraph() != g.Hypergraph() {
		t.Fatal("WithEngine copied the hypergraph")
	}
	if gt.Engine() != eng {
		t.Fatal("WithEngine did not bind the engine")
	}
	if g.Engine() == eng {
		t.Fatal("WithEngine mutated the receiver")
	}
	if eng.NumWorkers() != 3 {
		t.Fatalf("NumWorkers = %d, want 3", eng.NumWorkers())
	}
}
