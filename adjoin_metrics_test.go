package nwhy

import (
	"math"
	"testing"
)

// starHypergraph: hyperedge 0 contains every node; edges 1..4 contain one
// node each (the node they share with e0). In the adjoin graph, e0 is the
// center of everything.
func starHypergraph() *NWHypergraph {
	return FromSets([][]uint32{
		{0, 1, 2, 3},
		{0},
		{1},
		{2},
		{3},
	}, 4)
}

func TestAdjoinBetweennessCenter(t *testing.T) {
	hg := starHypergraph()
	edgeBC, nodeBC := hg.AdjoinBetweenness(false)
	if len(edgeBC) != 5 || len(nodeBC) != 4 {
		t.Fatalf("lengths %d/%d", len(edgeBC), len(nodeBC))
	}
	// The big hyperedge lies on almost every shortest path: highest score.
	for e := 1; e < 5; e++ {
		if edgeBC[0] <= edgeBC[e] {
			t.Fatalf("hub hyperedge BC %v not above leaf %v", edgeBC[0], edgeBC[e])
		}
	}
	for v := 0; v < 4; v++ {
		if edgeBC[0] <= nodeBC[v] {
			t.Fatalf("hub hyperedge BC %v not above node %v", edgeBC[0], nodeBC[v])
		}
	}
}

func TestAdjoinClosenessCenter(t *testing.T) {
	hg := starHypergraph()
	edgeC, nodeC := hg.AdjoinCloseness()
	for e := 1; e < 5; e++ {
		if edgeC[0] <= edgeC[e] {
			t.Fatalf("hub closeness %v not above leaf %v", edgeC[0], edgeC[e])
		}
	}
	// All four nodes are symmetric.
	for v := 1; v < 4; v++ {
		if math.Abs(nodeC[v]-nodeC[0]) > 1e-12 {
			t.Fatalf("symmetric nodes differ: %v", nodeC)
		}
	}
}

func TestAdjoinEccentricityLevels(t *testing.T) {
	hg := starHypergraph()
	edgeEcc, nodeEcc := hg.AdjoinEccentricity()
	// Hub: nodes at 1, leaf edges at 2 -> ecc 2. Nodes: hub at 1, other
	// nodes at 2, leaf edges at 3 -> ecc 3. Leaf edges: ecc 4.
	if edgeEcc[0] != 2 {
		t.Fatalf("hub ecc = %v", edgeEcc[0])
	}
	if nodeEcc[0] != 3 {
		t.Fatalf("node ecc = %v", nodeEcc[0])
	}
	if edgeEcc[1] != 4 {
		t.Fatalf("leaf edge ecc = %v", edgeEcc[1])
	}
}

func TestAdjoinPageRankConservation(t *testing.T) {
	hg := paperExample()
	edgePR, nodePR := hg.AdjoinPageRank(0.85, 1e-10, 300)
	sum := 0.0
	for _, v := range edgePR {
		sum += v
	}
	for _, v := range nodePR {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("adjoin PageRank sums to %v", sum)
	}
}

func TestAdjoinMetricsMatchBFSLevels(t *testing.T) {
	// Eccentricity of the source side must equal the max BFS level.
	hg := paperExample()
	edgeEcc, _ := hg.AdjoinEccentricity()
	r := hg.BFS(0, BFSTopDown)
	var maxLvl int32
	for _, l := range r.EdgeLevel {
		if l > maxLvl {
			maxLvl = l
		}
	}
	for _, l := range r.NodeLevel {
		if l > maxLvl {
			maxLvl = l
		}
	}
	if edgeEcc[0] != float64(maxLvl) {
		t.Fatalf("ecc(e0) = %v, max BFS level = %d", edgeEcc[0], maxLvl)
	}
}
