package nwhy

// Benchmark harness: one benchmark family per table/figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out
// (partition strategy, relabel order, representation fed to the queue
// algorithms). `go test -bench=.` regenerates every series at a reduced
// dataset scale; cmd/nwhy-bench prints the same data formatted like the
// paper's tables/plots and sweeps thread counts.

import (
	"fmt"
	"sync"
	"testing"

	"nwhy/internal/gen"
	"nwhy/internal/sparse"
)

// benchScale keeps the full benchmark sweep tractable on a laptop while
// preserving every dataset's Table I shape.
const benchScale = 0.1

var (
	benchCache   = map[string]*NWHypergraph{}
	benchCacheMu sync.Mutex
)

func benchHypergraph(b *testing.B, preset string) *NWHypergraph {
	b.Helper()
	benchCacheMu.Lock()
	defer benchCacheMu.Unlock()
	if g, ok := benchCache[preset]; ok {
		return g
	}
	p, err := gen.ByName(preset)
	if err != nil {
		b.Fatal(err)
	}
	g := Wrap(p.Build(benchScale))
	g.Adjoin() // pre-build so representation conversion is outside timings
	benchCache[preset] = g
	return g
}

var benchPresets = []string{
	"com-orkut-mini", "friendster-mini", "orkut-group-mini",
	"livejournal-mini", "web-mini", "rand1-mini",
}

// BenchmarkTable1Stats regenerates Table I: the characteristics computation
// (degree scans and maxima) per dataset.
func BenchmarkTable1Stats(b *testing.B) {
	for _, preset := range benchPresets {
		g := benchHypergraph(b, preset)
		b.Run(preset, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := g.Stats()
				if st.NumEdges == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// BenchmarkFig7CC regenerates Figure 7: hypergraph connected components via
// the bipartite representation (HyperCC), the adjoin representation
// (AdjoinCC = Afforest), and the Hygra label-propagation baseline.
func BenchmarkFig7CC(b *testing.B) {
	variants := []struct {
		name string
		v    CCVariant
	}{
		{"HyperCC", CCHyper},
		{"AdjoinCC", CCAdjoinAfforest},
		{"HygraCC", CCHygraBaseline},
	}
	for _, preset := range benchPresets {
		g := benchHypergraph(b, preset)
		for _, v := range variants {
			b.Run(preset+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := g.ConnectedComponents(v.v)
					if len(r.EdgeComp) != g.NumEdges() {
						b.Fatal("bad result")
					}
				}
			})
		}
	}
}

// BenchmarkFig8BFS regenerates Figure 8: hypergraph BFS via top-down on the
// bipartite representation (HyperBFS), direction-optimizing on the adjoin
// representation (AdjoinBFS), and the Hygra top-down baseline, sourced at
// the maximum-degree hyperedge.
func BenchmarkFig8BFS(b *testing.B) {
	variants := []struct {
		name string
		v    BFSVariant
	}{
		{"HyperBFS", BFSTopDown},
		{"AdjoinBFS", BFSAdjoin},
		{"HygraBFS", BFSHygraBaseline},
	}
	for _, preset := range benchPresets {
		g := benchHypergraph(b, preset)
		src := 0
		for e := 1; e < g.NumEdges(); e++ {
			if g.EdgeDegree(e) > g.EdgeDegree(src) {
				src = e
			}
		}
		for _, v := range variants {
			b.Run(preset+"/"+v.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r := g.BFS(src, v.v)
					if r.EdgeLevel[src] != 0 {
						b.Fatal("bad result")
					}
				}
			})
		}
	}
}

// BenchmarkFig9SLine regenerates Figure 9: s-line-graph construction with
// the non-queue Intersection and Hashmap algorithms and the paper's
// queue-based Algorithms 1 and 2, for s in {1, 2, 4, 8}. Compare ns/op of
// Alg1 vs Hashmap and Alg2 vs Intersection — the paper's claim is that each
// queue algorithm tracks its non-queue counterpart.
func BenchmarkFig9SLine(b *testing.B) {
	algos := []struct {
		name string
		a    Algorithm
	}{
		{"Intersection", AlgoIntersection},
		{"Hashmap", AlgoHashmap},
		{"Alg1-queue", AlgoQueueHashmap},
		{"Alg2-queue", AlgoQueueIntersection},
	}
	for _, preset := range benchPresets {
		g := benchHypergraph(b, preset)
		for _, s := range []int{1, 2, 4, 8} {
			for _, a := range algos {
				b.Run(fmt.Sprintf("%s/s=%d/%s", preset, s, a.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						lg := g.SLineGraphWith(s, true, ConstructOptions{Algorithm: a.a})
						_ = lg.NumEdges()
					}
				})
			}
		}
	}
}

// BenchmarkAblationPartition isolates the blocked vs cyclic partition
// choice on the most degree-skewed preset with descending relabel — the
// configuration where the paper argues cyclic ranges matter.
func BenchmarkAblationPartition(b *testing.B) {
	g := benchHypergraph(b, "orkut-group-mini")
	for _, cyclic := range []bool{false, true} {
		name := "blocked"
		if cyclic {
			name = "cyclic"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.SLineGraphWith(2, true, ConstructOptions{
					Algorithm: AlgoHashmap, Cyclic: cyclic, Relabel: sparse.Descending,
				})
			}
		})
	}
}

// BenchmarkAblationRelabel isolates the relabel-by-degree choice for the
// Intersection algorithm on a skewed preset.
func BenchmarkAblationRelabel(b *testing.B) {
	g := benchHypergraph(b, "livejournal-mini")
	for _, rel := range []struct {
		name  string
		order sparse.Order
	}{{"none", sparse.NoOrder}, {"asc", sparse.Ascending}, {"desc", sparse.Descending}} {
		b.Run(rel.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.SLineGraphWith(2, true, ConstructOptions{
					Algorithm: AlgoIntersection, Relabel: rel.order,
				})
			}
		})
	}
}

// BenchmarkAblationQueueInput compares the queue algorithms fed the
// bipartite vs the adjoin representation: the versatility the non-queue
// algorithms cannot offer, at (per the paper) similar cost.
func BenchmarkAblationQueueInput(b *testing.B) {
	g := benchHypergraph(b, "com-orkut-mini")
	for _, adjoin := range []bool{false, true} {
		name := "bipartite"
		if adjoin {
			name = "adjoin"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.SLineGraphWith(2, true, ConstructOptions{
					Algorithm: AlgoQueueHashmap, UseAdjoin: adjoin,
				})
			}
		})
	}
}

// BenchmarkAblationAdjoinCC compares the two graph CC kernels on the adjoin
// representation (Afforest vs label propagation).
func BenchmarkAblationAdjoinCC(b *testing.B) {
	g := benchHypergraph(b, "rand1-mini")
	for _, v := range []struct {
		name string
		v    CCVariant
	}{{"afforest", CCAdjoinAfforest}, {"labelprop", CCAdjoinLabelProp}} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g.ConnectedComponents(v.v)
			}
		})
	}
}

// BenchmarkAblationDirectComponents compares s-connected components via the
// materialized s-line graph against the direct union-find-during-
// construction path.
func BenchmarkAblationDirectComponents(b *testing.B) {
	g := benchHypergraph(b, "com-orkut-mini")
	b.Run("materialize-then-cc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lg := g.SLineGraphWith(2, true, ConstructOptions{Algorithm: AlgoQueueHashmap})
			_ = lg.SConnectedComponents()
		}
	})
	b.Run("direct-unionfind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.SConnectedComponentsDirect(2)
		}
	})
}

// BenchmarkToplexes measures Algorithm 3 on a containment-rich input.
func BenchmarkToplexes(b *testing.B) {
	g := benchHypergraph(b, "friendster-mini")
	b.Run("friendster-mini", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(g.Toplexes()) == 0 {
				b.Fatal("no toplexes")
			}
		}
	})
}

// BenchmarkCliqueExpansion measures the clique-expansion construction
// (Listing 2's fourth representation).
func BenchmarkCliqueExpansion(b *testing.B) {
	g := benchHypergraph(b, "web-mini")
	b.Run("web-mini", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.CliqueExpansion()
		}
	})
}

// BenchmarkEnsemble measures the one-pass multi-s construction against
// running the hashmap algorithm once per s.
func BenchmarkEnsemble(b *testing.B) {
	g := benchHypergraph(b, "livejournal-mini")
	ss := []int{1, 2, 4, 8}
	b.Run("ensemble-one-pass", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = g.SLineGraphEnsemble(ss, true)
		}
	})
	b.Run("separate-runs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range ss {
				_ = g.SLineGraphWith(s, true, ConstructOptions{Algorithm: AlgoHashmap})
			}
		}
	})
}
