package nwhy

import (
	"context"
	"slices"
	"testing"
)

func containmentFacade() *NWHypergraph {
	// Base toplexes {0..5}, {4..9}, {8..13} plus nested subsets of each.
	return FromSets([][]uint32{
		{0, 1, 2, 3, 4, 5},
		{4, 5, 6, 7, 8, 9},
		{8, 9, 10, 11, 12, 13},
		{0, 1, 2},
		{2, 3, 4, 5},
		{5, 6, 7},
		{8, 9},
		{10, 11, 12, 13},
		{14, 15}, // isolated toplex
	}, 16)
}

func TestSConnectedComponentsPrunedMatchesDirect(t *testing.T) {
	g := containmentFacade()
	for s := 1; s <= 4; s++ {
		want := g.SConnectedComponentsDirect(s)
		for _, p := range []Prune{PruneAuto, PruneNone, PruneDegree, PruneConnectivity, PruneToplex} {
			got := g.SConnectedComponentsPruned(s, p)
			if !slices.Equal(got, want) {
				t.Fatalf("s=%d prune=%v: pruned labels diverge from direct", s, p)
			}
		}
	}
}

func TestPruneAutoUpgradesOnWarmToplexCache(t *testing.T) {
	g := containmentFacade()
	if g.toplexCacheWarm() {
		t.Fatal("fresh handle should have a cold toplex cache")
	}
	want := g.SConnectedComponentsPruned(2, PruneAuto)
	// Cold cache: PruneAuto must not have paid for toplexes speculatively.
	if g.toplexCacheWarm() {
		t.Fatal("PruneAuto warmed the toplex cache on a cold handle")
	}
	// PruneToplex forces and caches the cover; PruneAuto then upgrades.
	g.SConnectedComponentsPruned(2, PruneToplex)
	if !g.toplexCacheWarm() {
		t.Fatal("PruneToplex should warm the toplex cache")
	}
	if got := g.SConnectedComponentsPruned(2, PruneAuto); !slices.Equal(got, want) {
		t.Fatal("warm-cache PruneAuto labels diverge from cold-cache run")
	}
}

func TestToplexCacheInvalidatedByCommit(t *testing.T) {
	g := containmentFacade()
	before := g.Toplexes()
	if !g.toplexCacheWarm() {
		t.Fatal("Toplexes should warm the cache")
	}
	m, err := g.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	// A new 3-node hyperedge strictly containing {14,15} demotes that toplex.
	if _, err := m.AddEdge([]uint32{14, 15, 3}); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if g.toplexCacheWarm() {
		t.Fatal("Commit should invalidate the toplex cache")
	}
	after := g.Toplexes()
	if slices.Contains(after, 8) {
		t.Fatalf("edge 8 should no longer be maximal after commit: %v", after)
	}
	if slices.Equal(before, after) {
		t.Fatal("toplex set should change after the commit")
	}
	// Pruned components still match direct on the new snapshot.
	if !slices.Equal(g.SConnectedComponentsPruned(1, PruneToplex), g.SConnectedComponentsDirect(1)) {
		t.Fatal("post-commit toplex-pruned labels diverge from direct")
	}
}

func TestToplexesReturnsCopy(t *testing.T) {
	g := containmentFacade()
	a := g.Toplexes()
	if len(a) == 0 {
		t.Fatal("expected toplexes")
	}
	a[0] = 999
	if b := g.Toplexes(); b[0] == 999 {
		t.Fatal("Toplexes exposed the cached slice")
	}
}

func TestSConnectedComponentsPrunedCtxCancel(t *testing.T) {
	g := containmentFacade()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []Prune{PruneAuto, PruneDegree, PruneToplex} {
		if _, err := g.SConnectedComponentsPrunedCtx(ctx, 2, p); err == nil {
			t.Fatalf("prune=%v: cancelled run returned nil error", p)
		}
	}
	// The cancelled toplex attempt must not have poisoned the cache.
	if g.toplexCacheWarm() {
		t.Fatal("cancelled run populated the toplex cache")
	}
	if labels, err := g.SConnectedComponentsPrunedCtx(context.Background(), 2, PruneToplex); err != nil || len(labels) != g.NumEdges() {
		t.Fatalf("post-cancel retry failed: %v", err)
	}
}

func TestPruneStrings(t *testing.T) {
	for want, p := range map[string]Prune{
		"auto": PruneAuto, "none": PruneNone, "degree": PruneDegree,
		"connectivity": PruneConnectivity, "toplex": PruneToplex,
	} {
		if p.String() != want {
			t.Fatalf("String() = %q, want %q", p.String(), want)
		}
	}
}
