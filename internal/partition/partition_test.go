package partition

import (
	"context"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/parallel"
	"nwhy/internal/slinegraph"
)

func communityGraph(seed int64) *core.Hypergraph {
	return gen.Community(gen.CommunityConfig{
		NumEdges:     400,
		NumNodes:     600,
		MeanEdgeSize: 6,
		SizeSkew:     1.5,
		MemberSkew:   0.4,
		Seed:         seed,
	})
}

func TestPartitionDeterministicAcrossWorkerCounts(t *testing.T) {
	h := communityGraph(7)
	o := Options{K: 4}
	e1 := parallel.NewEngine(1)
	defer e1.Close()
	e8 := parallel.NewEngine(8)
	defer e8.Close()
	r1, err := Partition(e1, h, o)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Partition(e8, h, o)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cut != r8.Cut {
		t.Fatalf("cut differs across worker counts: %d vs %d", r1.Cut, r8.Cut)
	}
	for v := range r1.NodeParts {
		if r1.NodeParts[v] != r8.NodeParts[v] {
			t.Fatalf("NodeParts[%d] differs: %d vs %d", v, r1.NodeParts[v], r8.NodeParts[v])
		}
	}
	for e := range r1.EdgeParts {
		if r1.EdgeParts[e] != r8.EdgeParts[e] {
			t.Fatalf("EdgeParts[%d] differs: %d vs %d", e, r1.EdgeParts[e], r8.EdgeParts[e])
		}
	}
}

func TestPartitionBalanceBound(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	for _, k := range []int{2, 3, 7} {
		h := communityGraph(int64(k))
		o := Options{K: k, ImbalanceTol: 0.05}
		r, err := Partition(eng, h, o)
		if err != nil {
			t.Fatal(err)
		}
		capacity := (h.NumNodes()*105 + 100*k - 1) / (100 * k)
		w := make([]int, k)
		for _, p := range r.NodeParts {
			if int(p) >= k {
				t.Fatalf("part %d out of range for k=%d", p, k)
			}
			w[p]++
		}
		for p, x := range w {
			if x > capacity {
				t.Fatalf("k=%d: part %d holds %d nodes, capacity %d", k, p, x, capacity)
			}
		}
		for _, p := range r.EdgeParts {
			if int(p) >= k {
				t.Fatalf("edge part %d out of range for k=%d", p, k)
			}
		}
	}
}

func TestPartitionCutBeatsBaseline(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	h := communityGraph(11)
	r, err := Partition(eng, h, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := ConnectivityCut(eng, h, BaselineParts(h.NumNodes(), 4), 4)
	if r.Cut > base {
		t.Fatalf("partition cut %d worse than random baseline %d", r.Cut, base)
	}
	if got := ConnectivityCut(eng, h, r.NodeParts, r.K); got != r.Cut {
		t.Fatalf("reported cut %d != recomputed cut %d", r.Cut, got)
	}
}

func TestPartitionKValidation(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	h := gen.Uniform(10, 10, 3, 1)
	if _, err := Partition(eng, h, Options{K: 0}); err == nil {
		t.Fatal("K=0 should error")
	}
	if _, err := Partition(eng, h, Options{K: maxK + 1}); err == nil {
		t.Fatal("K beyond maxK should error")
	}
}

func TestPartitionCancelled(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := communityGraph(3)
	if _, err := Partition(eng.WithContext(ctx), h, Options{K: 2}); err == nil {
		t.Fatal("cancelled partition should return the context error")
	}
}

func TestPermFromPartsBijectionAndContiguity(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	h := communityGraph(5)
	r, err := Partition(eng, h, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	perm, inv := PermFromParts(eng, r.NodeParts)
	seen := make([]bool, len(perm))
	for newID, oldID := range perm {
		if seen[oldID] {
			t.Fatalf("old ID %d mapped twice", oldID)
		}
		seen[oldID] = true
		if inv[oldID] != uint32(newID) {
			t.Fatalf("inv[%d] = %d, want %d", oldID, inv[oldID], newID)
		}
	}
	for newID := 1; newID < len(perm); newID++ {
		prev, cur := r.NodeParts[perm[newID-1]], r.NodeParts[perm[newID]]
		if cur < prev {
			t.Fatalf("parts not contiguous at new ID %d: %d after %d", newID, cur, prev)
		}
		if cur == prev && perm[newID] < perm[newID-1] {
			t.Fatalf("IDs not ascending within part at new ID %d", newID)
		}
	}
}

func TestShardMapInvariants(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	h := communityGraph(9)
	r, err := Partition(eng, h, Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := BuildShardMap(eng, h, r)
	if err != nil {
		t.Fatal(err)
	}
	ownedTotal := 0
	ownedSeen := make([]bool, h.NumEdges())
	for p, sh := range sm.Shards {
		ownedTotal += sh.NumOwned
		if err := sh.H.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", p, err)
		}
		if sh.H.NumEdges() != len(sh.Edges) || sh.H.NumNodes() != len(sh.Nodes) {
			t.Fatalf("shard %d dimension mismatch", p)
		}
		for le, ge := range sh.Edges {
			owned := le < sh.NumOwned
			if owned != (sm.EdgeOwner[ge] == uint32(p)) {
				t.Fatalf("shard %d: edge %d owned=%v but owner=%d", p, ge, owned, sm.EdgeOwner[ge])
			}
			if owned {
				if ownedSeen[ge] {
					t.Fatalf("edge %d owned by two shards", ge)
				}
				ownedSeen[ge] = true
				// Owned hyperedges keep their full pin set.
				if sh.H.Edges.Degree(le) != h.Edges.Degree(int(ge)) {
					t.Fatalf("shard %d: owned edge %d lost pins", p, ge)
				}
			}
			// Every local pin translates to a global pin of the same edge.
			for _, lv := range sh.H.Edges.Row(le) {
				if !h.Edges.HasEntry(int(ge), sh.Nodes[lv]) {
					t.Fatalf("shard %d: edge %d has phantom pin %d", p, ge, sh.Nodes[lv])
				}
			}
		}
	}
	if ownedTotal != h.NumEdges() {
		t.Fatalf("owned edges total %d, want %d", ownedTotal, h.NumEdges())
	}
}

func TestSComponentsShardedMatchesDirect(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	graphs := []*core.Hypergraph{
		communityGraph(13),
		gen.Uniform(120, 80, 4, 2),
		gen.BipartitePowerLaw(200, 150, 900, 1.6, 3),
	}
	for gi, h := range graphs {
		for _, k := range []int{1, 2, 4} {
			r, err := Partition(eng, h, Options{K: k})
			if err != nil {
				t.Fatal(err)
			}
			sm, err := BuildShardMap(eng, h, r)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range []int{1, 2, 3} {
				want, err := slinegraph.SComponentsDirect(eng, slinegraph.FromHypergraph(h), s, slinegraph.Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := SComponentsSharded(eng, sm, s, slinegraph.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("graph %d k=%d s=%d: label length %d, want %d", gi, k, s, len(got), len(want))
				}
				for e := range want {
					if got[e] != want[e] {
						t.Fatalf("graph %d k=%d s=%d: label[%d] = %d, want %d", gi, k, s, e, got[e], want[e])
					}
				}
			}
		}
	}
}
