// Package partition implements a lightweight, engine-first, cancellable
// k-way hypergraph partitioner in the spirit of the label-propagation tier
// of multilevel partitioners (Mt-KaHyPar): parallel label-propagation
// coarsening over the bipartite CSR pair, balanced greedy seed assignment of
// the discovered clusters, and boundary-refinement passes that greedily
// minimize the connectivity cut Σ_e (λ(e) − 1). Every phase breaks ties
// deterministically (smallest label, smallest part index, ascending ID), so
// a partition is reproducible across runs and worker counts.
//
// The result is consumed two ways: PermFromParts turns an assignment into a
// part-contiguous relabeling permutation (cache locality for CSR kernels),
// and BuildShardMap cuts the hypergraph into k engine-independent shards
// with halo boundaries for sharded execution (shard.go).
package partition

import (
	"fmt"
	"math"
	"sync"

	"nwhy/internal/core"
	"nwhy/internal/countmap"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// maxK bounds the part count: refinement keeps a per-hyperedge array of k
// part counts, so memory is Θ(|E|·k).
const maxK = 4096

// Options configure Partition.
type Options struct {
	// K is the number of parts. Required; 1 <= K <= 4096.
	K int
	// CoarsenRounds bounds the label-propagation rounds (<= 0: 8).
	CoarsenRounds int
	// RefineRounds bounds the boundary-refinement passes (<= 0: 4).
	RefineRounds int
	// ImbalanceTol is the allowed imbalance epsilon: every part holds at
	// most ceil(|V|/K · (1+tol)) hypernodes (<= 0: 0.05).
	ImbalanceTol float64
}

func (o Options) withDefaults() Options {
	if o.CoarsenRounds <= 0 {
		o.CoarsenRounds = 8
	}
	if o.RefineRounds <= 0 {
		o.RefineRounds = 4
	}
	if o.ImbalanceTol <= 0 {
		o.ImbalanceTol = 0.05
	}
	return o
}

// Result is a k-way partition of a hypergraph's hypernode and hyperedge ID
// spaces.
type Result struct {
	K int
	// NodeParts[v] is hypernode v's part, in [0, K).
	NodeParts []uint32
	// EdgeParts[e] is hyperedge e's owner: the part holding a plurality of
	// its pins, ties to the smaller part index. Pinless hyperedges go to
	// part 0.
	EdgeParts []uint32
	// Cut is the connectivity metric Σ_e (λ(e) − 1) of NodeParts, where
	// λ(e) counts the distinct parts among e's pins.
	Cut int64
}

// Partition computes a balanced k-way partition of h's hypernodes and
// derives hyperedge owners from it. The run is deterministic for a given
// (hypergraph, options) pair regardless of eng's worker count. Cancellation
// of eng's context is observed between rounds; a cancelled run returns the
// context error.
func Partition(eng *parallel.Engine, h *core.Hypergraph, o Options) (*Result, error) {
	o = o.withDefaults()
	if o.K < 1 || o.K > maxK {
		return nil, fmt.Errorf("partition: K must be in [1, %d], got %d", maxK, o.K)
	}
	nv, ne := h.NumNodes(), h.NumEdges()
	k := o.K
	capacity := int(math.Ceil(float64(nv) * (1 + o.ImbalanceTol) / float64(k)))
	if capacity < 1 {
		capacity = 1
	}
	labels := coarsen(eng, h, o.CoarsenRounds)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	parts, weight := seedParts(eng, labels, k, capacity)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	cnt := refine(eng, h, parts, weight, k, o.RefineRounds, capacity)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return &Result{
		K:         k,
		NodeParts: parts,
		EdgeParts: ownerParts(eng, cnt, ne, k),
		Cut:       cutFromCounts(eng, cnt, ne, k),
	}, nil
}

// coarsen runs synchronous label propagation over the bipartite pair:
// hyperedges adopt the plurality label of their pins, then hypernodes adopt
// the plurality label of their incident hyperedges, double-buffered so each
// half-step reads only frozen state — the result is independent of worker
// count. Converged (or round-capped) node labels name the clusters.
func coarsen(eng *parallel.Engine, h *core.Hypergraph, rounds int) []uint32 {
	nv, ne := h.NumNodes(), h.NumEdges()
	nodeLab := make([]uint32, nv)
	for i := range nodeLab {
		nodeLab[i] = uint32(i)
	}
	next := make([]uint32, nv)
	edgeLab := make([]uint32, ne)
	pool := sync.Pool{New: func() any { return countmap.New(32) }}
	for r := 0; r < rounds; r++ {
		if eng.Cancelled() {
			break
		}
		eng.ForN(ne, func(_, lo, hi int) {
			cnt := pool.Get().(*countmap.Map)
			for e := lo; e < hi; e++ {
				pins := h.Edges.Row(e)
				if len(pins) == 0 {
					edgeLab[e] = 0
					continue
				}
				cnt.Clear()
				for _, v := range pins {
					cnt.Inc(nodeLab[v], 1)
				}
				edgeLab[e] = pluralityLabel(cnt)
			}
			pool.Put(cnt)
		})
		if eng.Err() != nil {
			break
		}
		changed := parallel.ReduceWith(eng, nv, 0, func(lo, hi, acc int) int {
			cnt := pool.Get().(*countmap.Map)
			for v := lo; v < hi; v++ {
				inc := h.Nodes.Row(v)
				if len(inc) == 0 {
					next[v] = nodeLab[v]
					continue
				}
				cnt.Clear()
				for _, e := range inc {
					cnt.Inc(edgeLab[e], 1)
				}
				next[v] = pluralityLabel(cnt)
				if next[v] != nodeLab[v] {
					acc++
				}
			}
			pool.Put(cnt)
			return acc
		}, func(a, b int) int { return a + b })
		nodeLab, next = next, nodeLab
		if changed == 0 || eng.Err() != nil {
			break
		}
	}
	return nodeLab
}

// pluralityLabel picks the most frequent key; ties take the smallest key, so
// the choice does not depend on the map's iteration order.
func pluralityLabel(cnt *countmap.Map) uint32 {
	var best uint32
	bestCnt := int32(0)
	first := true
	cnt.Range(func(k uint32, c int32) {
		if first || c > bestCnt || (c == bestCnt && k < best) {
			best, bestCnt, first = k, c, false
		}
	})
	return best
}

// seedParts assigns whole clusters greedily: clusters in size-descending
// (then ID-ascending) order each go to the currently lightest part (ties to
// the smaller index), splitting a cluster only when it would overflow the
// part's capacity. Returns the assignment and the per-part node weights.
func seedParts(eng *parallel.Engine, nodeLab []uint32, k, capacity int) ([]uint32, []int64) {
	nv := len(nodeLab)
	parts := make([]uint32, nv)
	counts := make([]int32, nv)
	for _, l := range nodeLab {
		counts[l]++
	}
	clusters := make([]uint32, 0, 64)
	maxSize := int32(0)
	for l, c := range counts {
		if c > 0 {
			clusters = append(clusters, uint32(l))
			if c > maxSize {
				maxSize = c
			}
		}
	}
	parallel.RadixSort64On(eng, clusters, func(l uint32) uint64 {
		return uint64(uint32(maxSize-counts[l]))<<32 | uint64(l)
	})
	// Bucket members by cluster rank; scanning nodes in ascending ID keeps
	// each bucket ID-ascending.
	rankOf := make([]uint32, nv)
	offs := make([]int64, len(clusters)+1)
	for r, l := range clusters {
		rankOf[l] = uint32(r)
		offs[r+1] = offs[r] + int64(counts[l])
	}
	members := make([]uint32, nv)
	cursor := make([]int64, len(clusters))
	copy(cursor, offs[:len(clusters)])
	for v, l := range nodeLab {
		r := rankOf[l]
		members[cursor[r]] = uint32(v)
		cursor[r]++
	}
	weight := make([]int64, k)
	for r := range clusters {
		seg := members[offs[r]:offs[r+1]]
		for len(seg) > 0 {
			p := lightestPart(weight)
			t := int64(len(seg))
			if room := int64(capacity) - weight[p]; room < t {
				t = room
			}
			if t <= 0 {
				// Capacity rounding can leave every part "full" before the
				// last few nodes land; overflow into the lightest part.
				t = int64(len(seg))
			}
			for _, v := range seg[:t] {
				parts[v] = uint32(p)
			}
			weight[p] += t
			seg = seg[t:]
		}
	}
	return parts, weight
}

func lightestPart(weight []int64) int {
	best := 0
	for p := 1; p < len(weight); p++ {
		if weight[p] < weight[best] {
			best = p
		}
	}
	return best
}

// refine runs boundary-refinement passes over parts in place: candidate
// moves are computed in parallel against the frozen assignment (per-edge
// part counts make the λ−1 gain of moving v from p to q a per-incidence
// lookup), then applied serially in ascending node ID with the gain
// revalidated against live counts — deterministic regardless of worker
// count. Returns the final per-hyperedge part-count matrix cnt[e·k+p].
func refine(eng *parallel.Engine, h *core.Hypergraph, parts []uint32, weight []int64, k, rounds, capacity int) []int32 {
	ne, nv := h.NumEdges(), h.NumNodes()
	cnt := make([]int32, ne*k)
	eng.ForN(ne, func(_, lo, hi int) {
		for e := lo; e < hi; e++ {
			row := cnt[e*k : e*k+k]
			for _, v := range h.Edges.Row(e) {
				row[parts[v]]++
			}
		}
	})
	type move struct {
		v        uint32
		from, to uint32
	}
	for r := 0; r < rounds; r++ {
		if eng.Cancelled() {
			break
		}
		tls := parallel.NewTLSFor(eng, func() []move { return nil })
		scratch := parallel.NewTLSFor(eng, func() []int32 { return make([]int32, k) })
		eng.ForN(nv, func(w, lo, hi int) {
			pen := *scratch.Get(w)
			buf := tls.Get(w)
			for v := lo; v < hi; v++ {
				inc := h.Nodes.Row(v)
				if len(inc) == 0 {
					continue
				}
				from := parts[v]
				saves := int32(0)
				for q := 0; q < k; q++ {
					pen[q] = 0
				}
				for _, e := range inc {
					row := cnt[int(e)*k : int(e)*k+k]
					if row[from] == 1 {
						saves++
					}
					for q := 0; q < k; q++ {
						if row[q] == 0 {
							pen[q]++
						}
					}
				}
				bestQ, bestGain := -1, int32(0)
				for q := 0; q < k; q++ {
					if uint32(q) == from || weight[q] >= int64(capacity) {
						continue
					}
					if g := saves - pen[q]; g > bestGain {
						bestQ, bestGain = q, g
					}
				}
				if bestQ >= 0 {
					*buf = append(*buf, move{uint32(v), from, uint32(bestQ)})
				}
			}
		})
		if eng.Err() != nil {
			break
		}
		var moves []move
		tls.All(func(ms *[]move) { moves = append(moves, *ms...) })
		if len(moves) == 0 {
			break
		}
		parallel.RadixSort64On(eng, moves, func(m move) uint64 { return uint64(m.v) })
		applied := 0
		for _, m := range moves {
			if weight[m.to] >= int64(capacity) {
				continue
			}
			g := int32(0)
			for _, e := range h.Nodes.Row(int(m.v)) {
				row := cnt[int(e)*k : int(e)*k+k]
				if row[m.from] == 1 {
					g++
				}
				if row[m.to] == 0 {
					g--
				}
			}
			if g <= 0 {
				continue
			}
			for _, e := range h.Nodes.Row(int(m.v)) {
				cnt[int(e)*k+int(m.from)]--
				cnt[int(e)*k+int(m.to)]++
			}
			parts[m.v] = m.to
			weight[m.from]--
			weight[m.to]++
			applied++
		}
		if applied == 0 {
			break
		}
	}
	return cnt
}

// ownerParts derives each hyperedge's owner from the part-count matrix: the
// part with the most pins, ties to the smaller index.
func ownerParts(eng *parallel.Engine, cnt []int32, ne, k int) []uint32 {
	owners := make([]uint32, ne)
	eng.ForN(ne, func(_, lo, hi int) {
		for e := lo; e < hi; e++ {
			row := cnt[e*k : e*k+k]
			best, bestC := 0, int32(-1)
			for q := 0; q < k; q++ {
				if row[q] > bestC {
					best, bestC = q, row[q]
				}
			}
			owners[e] = uint32(best)
		}
	})
	return owners
}

func cutFromCounts(eng *parallel.Engine, cnt []int32, ne, k int) int64 {
	return parallel.ReduceWith(eng, ne, int64(0), func(lo, hi int, acc int64) int64 {
		for e := lo; e < hi; e++ {
			lambda := 0
			for _, c := range cnt[e*k : e*k+k] {
				if c > 0 {
					lambda++
				}
			}
			if lambda > 1 {
				acc += int64(lambda - 1)
			}
		}
		return acc
	}, func(a, b int64) int64 { return a + b })
}

// ConnectivityCut computes Σ_e (λ(e) − 1) for an arbitrary assignment of
// hypernodes to k parts — the yardstick benchmarks use to compare a
// computed partition against BaselineParts.
func ConnectivityCut(eng *parallel.Engine, h *core.Hypergraph, parts []uint32, k int) int64 {
	sums := parallel.NewTLSFor(eng, func() int64 { return 0 })
	stamps := parallel.NewTLSFor(eng, func() []int64 { return make([]int64, k) })
	eng.ForN(h.NumEdges(), func(w, lo, hi int) {
		st := *stamps.Get(w)
		acc := sums.Get(w)
		for e := lo; e < hi; e++ {
			mark := int64(e) + 1
			lambda := 0
			for _, v := range h.Edges.Row(e) {
				if q := parts[v]; st[q] != mark {
					st[q] = mark
					lambda++
				}
			}
			if lambda > 1 {
				*acc += int64(lambda - 1)
			}
		}
	})
	var cut int64
	sums.All(func(v *int64) { cut += *v })
	return cut
}

// Imbalance reports the largest part weight relative to perfect balance:
// 1.0 is perfectly balanced, 2.0 means the heaviest part holds twice its
// fair share.
func Imbalance(parts []uint32, k int) float64 {
	if len(parts) == 0 || k == 0 {
		return 0
	}
	w := make([]int64, k)
	for _, p := range parts {
		w[p]++
	}
	var maxW int64
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
	}
	return float64(maxW) * float64(k) / float64(len(parts))
}

// BaselineParts assigns n IDs to k parts by a fixed avalanche hash — the
// deterministic stand-in for a uniform random assignment that cut-quality
// comparisons measure against.
func BaselineParts(n, k int) []uint32 {
	parts := make([]uint32, n)
	for i := range parts {
		x := uint64(i)*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		parts[i] = uint32(x % uint64(k))
	}
	return parts
}

// PermFromParts orders an ID space part-contiguously: IDs sort by (part,
// ID), so each part's IDs become one dense block and intra-part neighbors
// stay ID-ascending. Returns perm[newID] = oldID and its inverse
// inv[oldID] = newID, ready for sparse.ApplyPerm / core.Relabel.
func PermFromParts(eng *parallel.Engine, parts []uint32) (perm, inv []uint32) {
	perm = make([]uint32, len(parts))
	for i := range perm {
		perm[i] = uint32(i)
	}
	parallel.RadixSort64On(eng, perm, func(id uint32) uint64 { return uint64(parts[id]) })
	return perm, sparse.InvertPerm(perm)
}
