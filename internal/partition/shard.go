package partition

import (
	"nwhy/internal/core"
	"nwhy/internal/parallel"
	"nwhy/internal/slinegraph"
	"nwhy/internal/sparse"
	"nwhy/internal/unionfind"
)

// Shard is one engine-independent sub-hypergraph of a ShardMap. Local
// hyperedge IDs are [0, len(Edges)) with the NumOwned owned hyperedges
// first, then the halo; local hypernode IDs are [0, len(Nodes)). Halo
// hyperedges keep only the pins that fall inside the shard's node set, so
// every s-overlap a shard certifies locally also holds globally.
type Shard struct {
	// H is the local sub-hypergraph over local IDs.
	H *core.Hypergraph
	// Edges maps local -> global hyperedge IDs, owned prefix first, each
	// half ascending.
	Edges []uint32
	// Nodes maps local -> global hypernode IDs, ascending.
	Nodes []uint32
	// NumOwned counts the owned (non-halo) hyperedges.
	NumOwned int
}

// ShardMap cuts a hypergraph into K engine-independent shards with halo
// boundaries. Shard p owns the hyperedges whose EdgeParts is p; its node set
// is the union of the owned hyperedges' pins; its halo is every non-owned
// hyperedge incident to a shard node, pins restricted to the shard's node
// set. The restriction loses nothing: for an owned hyperedge e and any
// hyperedge f, e ∩ f is contained in e's pins and hence in the shard's node
// set, so |e ∩ f| is exact in e's owner shard — every global s-overlap pair
// is discovered by at least its owner, and no shard can certify a pair the
// full hypergraph would reject.
type ShardMap struct {
	K      int
	Shards []*Shard
	// EdgeOwner[e] is the shard owning global hyperedge e.
	EdgeOwner []uint32
}

// BuildShardMap materializes the K shards of partition result r. Each
// shard's local hypergraph is assembled through the usual biadjacency
// builders, so both CSRs of the pair satisfy the mutual-transpose invariant.
// Cancellation is observed between shards.
func BuildShardMap(eng *parallel.Engine, h *core.Hypergraph, r *Result) (*ShardMap, error) {
	sm := &ShardMap{K: r.K, Shards: make([]*Shard, r.K), EdgeOwner: r.EdgeParts}
	for p := 0; p < r.K; p++ {
		if eng.Cancelled() {
			break
		}
		sm.Shards[p] = buildShard(h, r.EdgeParts, uint32(p))
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return sm, nil
}

func buildShard(h *core.Hypergraph, owner []uint32, p uint32) *Shard {
	ne, nv := h.NumEdges(), h.NumNodes()
	var owned []uint32
	for e := 0; e < ne; e++ {
		if owner[e] == p {
			owned = append(owned, uint32(e))
		}
	}
	nodeMark := make([]bool, nv)
	for _, e := range owned {
		for _, v := range h.Edges.Row(int(e)) {
			nodeMark[v] = true
		}
	}
	var nodes []uint32
	localNode := make([]uint32, nv)
	for v := 0; v < nv; v++ {
		if nodeMark[v] {
			localNode[v] = uint32(len(nodes))
			nodes = append(nodes, uint32(v))
		}
	}
	edgeMark := make([]bool, ne)
	for _, v := range nodes {
		for _, e := range h.Nodes.Row(int(v)) {
			if owner[e] != p {
				edgeMark[e] = true
			}
		}
	}
	edges := owned
	for e := 0; e < ne; e++ {
		if edgeMark[e] {
			edges = append(edges, uint32(e))
		}
	}
	bel := sparse.NewBiEdgeList(len(edges), len(nodes))
	for le, ge := range edges {
		for _, v := range h.Edges.Row(int(ge)) {
			if nodeMark[v] {
				bel.Add(uint32(le), localNode[v])
			}
		}
	}
	return &Shard{
		H:        core.FromBiEdgeList(bel),
		Edges:    edges,
		Nodes:    nodes,
		NumOwned: len(owned),
	}
}

// SComponentsSharded computes exact s-connected components of the sharded
// hypergraph: each shard runs the union-find s-overlap kernel on its own
// dedicated parallel.Engine (workers split evenly across shards), then the
// local forests are absorbed into one global forest across the halo — local
// root edges union with their members translated back to global IDs. The
// returned labels are identical to slinegraph.SComponentsDirect on the
// unsharded hypergraph: every hyperedge labeled with its component's
// minimum member ID.
func SComponentsSharded(eng *parallel.Engine, sm *ShardMap, s int, o slinegraph.Options) ([]uint32, error) {
	k := sm.K
	per := eng.NumWorkers() / k
	if per < 1 {
		per = 1
	}
	forests := make([]*unionfind.Forest, k)
	errs := make([]error, k)
	fns := make([]func(), k)
	for p := range fns {
		p := p
		fns[p] = func() {
			if eng.Cancelled() {
				errs[p] = eng.Err()
				return
			}
			se := parallel.NewEngine(per)
			defer se.Close()
			forests[p], errs[p] = slinegraph.SComponentsForest(
				se.WithContext(eng.Context()), slinegraph.FromHypergraph(sm.Shards[p].H), s, o)
		}
	}
	// A dedicated coordinator pool drives the k shard engines. Shard kernels
	// reach the process default pool (forest compression), so parking the
	// caller's workers here could starve that pool into deadlock when eng is
	// the shared engine; coordinator workers are never default-pool workers.
	coord := parallel.NewEngine(k)
	defer coord.Close()
	coord.WithContext(eng.Context()).Invoke(fns...)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	global := unionfind.New(len(sm.EdgeOwner))
	for p := 0; p < k; p++ {
		if eng.Cancelled() {
			break
		}
		sh := sm.Shards[p]
		labs := forests[p].Labels()
		eng.ForN(len(sh.Edges), func(_, lo, hi int) {
			for l := lo; l < hi; l++ {
				if root := labs[l]; root != uint32(l) {
					global.Union(sh.Edges[l], sh.Edges[root])
				}
			}
		})
	}
	global.Compress()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return global.Labels(), nil
}
