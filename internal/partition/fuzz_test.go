package partition

import (
	"testing"

	"nwhy/internal/gen"
	"nwhy/internal/parallel"
	"nwhy/internal/slinegraph"
)

// FuzzPartition drives random hypergraphs through the full pipeline and
// checks the partition invariants: every node assigned to exactly one
// in-range part, the balance bound respected, every hyperedge owned by
// exactly one shard, the relabeling permutation a bijection, and the
// sharded s-CC labels identical to the single-engine result.
func FuzzPartition(f *testing.F) {
	f.Add(uint8(40), uint8(30), uint8(3), uint8(2), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), int64(2))
	f.Add(uint8(200), uint8(120), uint8(5), uint8(7), int64(3))
	f.Fuzz(func(t *testing.T, ne8, nv8, size8, k8 uint8, seed int64) {
		ne := int(ne8)%200 + 1
		nv := int(nv8)%150 + 1
		size := int(size8)%6 + 1
		k := int(k8)%8 + 1
		h := gen.Uniform(ne, nv, size, seed)
		eng := parallel.NewEngine(2)
		defer eng.Close()
		r, err := Partition(eng, h, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if len(r.NodeParts) != nv || len(r.EdgeParts) != ne {
			t.Fatalf("assignment sizes %d/%d, want %d/%d", len(r.NodeParts), len(r.EdgeParts), nv, ne)
		}
		capacity := (int(float64(nv)*1.05) + k) / k
		w := make([]int, k)
		for _, p := range r.NodeParts {
			if int(p) >= k {
				t.Fatalf("node part %d out of range [0,%d)", p, k)
			}
			w[p]++
		}
		for _, x := range w {
			if x > capacity+1 {
				t.Fatalf("part weight %d exceeds capacity %d", x, capacity)
			}
		}
		perm, inv := PermFromParts(eng, r.NodeParts)
		seen := make([]bool, nv)
		for newID, oldID := range perm {
			if seen[oldID] {
				t.Fatalf("perm maps old ID %d twice", oldID)
			}
			seen[oldID] = true
			if inv[oldID] != uint32(newID) {
				t.Fatalf("inv[%d] = %d, want %d", oldID, inv[oldID], newID)
			}
		}
		sm, err := BuildShardMap(eng, h, r)
		if err != nil {
			t.Fatal(err)
		}
		ownedSeen := make([]bool, ne)
		for p, sh := range sm.Shards {
			if err := sh.H.Validate(); err != nil {
				t.Fatalf("shard %d invalid: %v", p, err)
			}
			for le := 0; le < sh.NumOwned; le++ {
				ge := sh.Edges[le]
				if ownedSeen[ge] {
					t.Fatalf("edge %d owned twice", ge)
				}
				ownedSeen[ge] = true
			}
		}
		for e, ok := range ownedSeen {
			if !ok {
				t.Fatalf("edge %d owned by no shard", e)
			}
		}
		s := int(seed&1) + 1
		want, err := slinegraph.SComponentsDirect(eng, slinegraph.FromHypergraph(h), s, slinegraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SComponentsSharded(eng, sm, s, slinegraph.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for e := range want {
			if got[e] != want[e] {
				t.Fatalf("s=%d: sharded label[%d] = %d, want %d", s, e, got[e], want[e])
			}
		}
	})
}
