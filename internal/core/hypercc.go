package core

import (
	"sync/atomic"

	"nwhy/internal/graph"
	"nwhy/internal/parallel"
)

// HyperCCResult carries the connected-component labels of both index
// spaces. Labels live in the shared space [0, ne+nv): a hyperedge and a
// hypernode in the same component carry the same label, and labels are
// canonicalized to the smallest shared-space ID in the component.
type HyperCCResult struct {
	EdgeComp []uint32
	NodeComp []uint32
}

// NumComponents counts distinct components across both index spaces.
func (r *HyperCCResult) NumComponents() int {
	seen := map[uint32]bool{}
	for _, c := range r.EdgeComp {
		seen[c] = true
	}
	for _, c := range r.NodeComp {
		seen[c] = true
	}
	return len(seen)
}

// HyperCC computes hypergraph connected components on the bipartite
// representation with minimum-label propagation, the algorithm the paper
// builds HyperCC on: labels initialize to distinct IDs in the shared space
// and each round pushes minima across the incidence lists — hyperedges pull
// from and push to their hypernodes — until a fixpoint.
func HyperCC(eng *parallel.Engine, h *Hypergraph) (*HyperCCResult, error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	edgeComp := make([]uint32, ne)
	nodeComp := make([]uint32, nv)
	for e := range edgeComp {
		edgeComp[e] = uint32(e)
	}
	for v := range nodeComp {
		nodeComp[v] = uint32(ne + v)
	}
	for {
		if err := eng.Err(); err != nil {
			return nil, err
		}
		var changed atomic.Bool
		eng.ForN(ne, func(_, lo, hi int) {
			c := false
			for e := lo; e < hi; e++ {
				m := parallel.LoadU32(&edgeComp[e])
				for _, v := range h.Edges.Row(e) {
					if cv := parallel.LoadU32(&nodeComp[v]); cv < m {
						m = cv
					}
				}
				if parallel.MinU32(&edgeComp[e], m) {
					c = true
				}
				for _, v := range h.Edges.Row(e) {
					if parallel.MinU32(&nodeComp[v], m) {
						c = true
					}
				}
			}
			if c {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return canonicalizeHyperCC(edgeComp, nodeComp), nil
}

// canonicalizeHyperCC renames labels to the minimum shared-space member ID.
func canonicalizeHyperCC(edgeComp, nodeComp []uint32) *HyperCCResult {
	ne := len(edgeComp)
	minOf := map[uint32]uint32{}
	note := func(c, id uint32) {
		if m, ok := minOf[c]; !ok || id < m {
			minOf[c] = id
		}
	}
	for e, c := range edgeComp {
		note(c, uint32(e))
	}
	for v, c := range nodeComp {
		note(c, uint32(ne+v))
	}
	out := &HyperCCResult{EdgeComp: make([]uint32, ne), NodeComp: make([]uint32, len(nodeComp))}
	for e, c := range edgeComp {
		out.EdgeComp[e] = minOf[c]
	}
	for v, c := range nodeComp {
		out.NodeComp[v] = minOf[c]
	}
	return out
}

// AdjoinCCAlgorithm selects the graph CC kernel AdjoinCC runs on the adjoin
// representation.
type AdjoinCCAlgorithm int

const (
	// AdjoinAfforest runs the Afforest algorithm (the paper's default).
	AdjoinAfforest AdjoinCCAlgorithm = iota
	// AdjoinLabelPropagation runs minimum-label propagation.
	AdjoinLabelPropagation
)

// AdjoinCC computes hypergraph connected components by running a standard
// graph CC algorithm on the adjoin representation — no hypergraph-specific
// algorithm needed, which is the point of the adjoin technique — and
// splitting the result back into the two index spaces.
func AdjoinCC(eng *parallel.Engine, a *AdjoinGraph, alg AdjoinCCAlgorithm) (*HyperCCResult, error) {
	var comp []uint32
	switch alg {
	case AdjoinLabelPropagation:
		comp = graph.CCLabelPropagation(eng, a.G)
	default:
		comp = graph.CCAfforest(eng, a.G)
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	comp = graph.CanonicalizeComponents(comp)
	edgeComp, nodeComp := SplitResult(a, comp)
	return &HyperCCResult{
		EdgeComp: append([]uint32(nil), edgeComp...),
		NodeComp: append([]uint32(nil), nodeComp...),
	}, nil
}
