package core

import (
	"sync/atomic"

	"nwhy/internal/frontier"
	"nwhy/internal/graph"
	"nwhy/internal/parallel"
)

// HyperBFSResult carries the BFS levels of both index spaces from a
// traversal of the bipartite representation. Levels count bipartite hops:
// the source has level 0, its incident entities level 1, and so on; -1 means
// unreachable.
type HyperBFSResult struct {
	EdgeLevel []int32
	NodeLevel []int32
}

// ReachedEdges reports how many hyperedges the traversal visited.
func (r *HyperBFSResult) ReachedEdges() int { return countReached(r.EdgeLevel) }

// ReachedNodes reports how many hypernodes the traversal visited.
func (r *HyperBFSResult) ReachedNodes() int { return countReached(r.NodeLevel) }

func countReached(levels []int32) int {
	n := 0
	for _, l := range levels {
		if l >= 0 {
			n++
		}
	}
	return n
}

func newHyperBFSResult(ne, nv int) *HyperBFSResult {
	r := &HyperBFSResult{EdgeLevel: make([]int32, ne), NodeLevel: make([]int32, nv)}
	for i := range r.EdgeLevel {
		r.EdgeLevel[i] = -1
	}
	for i := range r.NodeLevel {
		r.NodeLevel[i] = -1
	}
	return r
}

// hyperBFSWith is the one bipartite BFS loop behind all three variants: a
// frontier.EdgeMap traversal that alternates between the two index spaces
// each half-step — as the paper notes for all bipartite-representation
// algorithms, two of every algorithm-specific structure are maintained, one
// per index space — run under the given direction strategy. The engine is
// checked for cancellation at every round boundary; an aborted traversal
// returns eng.Err().
func hyperBFSWith(eng *parallel.Engine, h *Hypergraph, srcEdge int, strategy frontier.Strategy) (*HyperBFSResult, error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	r := newHyperBFSResult(ne, nv)
	r.EdgeLevel[srcEdge] = 0
	st := frontier.NewState(int64(h.NumIncidences()), strategy)
	f := frontier.Single(eng, ne, uint32(srcEdge))
	onEdges := true // the side the frontier lives on
	for depth := int32(1); !f.Empty(); depth++ {
		if eng.Cancelled() {
			f.Release(eng)
			return nil, eng.Err()
		}
		level, outRow, inRow, nDst := r.NodeLevel, h.Edges.Row, h.Nodes.Row, nv
		if !onEdges {
			level, outRow, inRow, nDst = r.EdgeLevel, h.Nodes.Row, h.Edges.Row, ne
		}
		d := depth
		f = st.EdgeMap(eng, f, nDst, outRow, inRow,
			func(_, t uint32) bool {
				return atomic.CompareAndSwapInt32(&level[t], -1, d)
			},
			func(t uint32) bool { return atomic.LoadInt32(&level[t]) == -1 })
		onEdges = !onEdges
	}
	f.Release(eng)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// HyperBFSTopDown runs a parallel top-down BFS on the bipartite
// representation from hyperedge srcEdge: every half-step scatters the
// frontier over its incidence lists, claiming unvisited entities of the
// other index space with a CAS.
func HyperBFSTopDown(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperBFSResult, error) {
	return hyperBFSWith(eng, h, srcEdge, frontier.ForcePush)
}

// HyperBFSBottomUp runs a parallel bottom-up BFS on the bipartite
// representation: each half-step, every unvisited entity of the side being
// expanded scans its incidence list for a frontier member.
func HyperBFSBottomUp(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperBFSResult, error) {
	return hyperBFSWith(eng, h, srcEdge, frontier.ForcePull)
}

// HyperBFSDirectionOptimizing runs the hybrid BFS on the bipartite
// representation: each half-step picks top-down or bottom-up through
// frontier.State's alpha/beta heuristics over the incidence volume — the
// bipartite analogue (alternating edge→node and node→edge pulls) of the
// direction-optimizing BFS that AdjoinBFS gets for free from the graph
// library.
func HyperBFSDirectionOptimizing(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperBFSResult, error) {
	return hyperBFSWith(eng, h, srcEdge, frontier.Auto)
}

// AdjoinBFS runs the direction-optimizing BFS of the graph library on the
// adjoin representation from hyperedge srcEdge, then splits the shared-space
// levels back into the two index spaces. Level semantics match HyperBFS.
func AdjoinBFS(eng *parallel.Engine, a *AdjoinGraph, srcEdge int) (*HyperBFSResult, error) {
	res := graph.BFSDirectionOptimizing(eng, a.G, a.EdgeID(srcEdge))
	if err := eng.Err(); err != nil {
		return nil, err
	}
	edgeLvl, nodeLvl := SplitResult(a, res.Level)
	return &HyperBFSResult{
		EdgeLevel: append([]int32(nil), edgeLvl...),
		NodeLevel: append([]int32(nil), nodeLvl...),
	}, nil
}
