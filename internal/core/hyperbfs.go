package core

import (
	"sync/atomic"

	"nwhy/internal/graph"
	"nwhy/internal/parallel"
)

// HyperBFSResult carries the BFS levels of both index spaces from a
// traversal of the bipartite representation. Levels count bipartite hops:
// the source has level 0, its incident entities level 1, and so on; -1 means
// unreachable.
type HyperBFSResult struct {
	EdgeLevel []int32
	NodeLevel []int32
}

// ReachedEdges reports how many hyperedges the traversal visited.
func (r *HyperBFSResult) ReachedEdges() int { return countReached(r.EdgeLevel) }

// ReachedNodes reports how many hypernodes the traversal visited.
func (r *HyperBFSResult) ReachedNodes() int { return countReached(r.NodeLevel) }

func countReached(levels []int32) int {
	n := 0
	for _, l := range levels {
		if l >= 0 {
			n++
		}
	}
	return n
}

func newHyperBFSResult(ne, nv int) *HyperBFSResult {
	r := &HyperBFSResult{EdgeLevel: make([]int32, ne), NodeLevel: make([]int32, nv)}
	for i := range r.EdgeLevel {
		r.EdgeLevel[i] = -1
	}
	for i := range r.NodeLevel {
		r.NodeLevel[i] = -1
	}
	return r
}

// HyperBFSTopDown runs a parallel top-down BFS on the bipartite
// representation from hyperedge srcEdge. Rounds alternate between the two
// index spaces, and — as the paper notes for all bipartite-representation
// algorithms — two of every algorithm-specific structure are maintained, one
// per index space.
func HyperBFSTopDown(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperBFSResult, error) {
	r := newHyperBFSResult(h.NumEdges(), h.NumNodes())
	r.EdgeLevel[srcEdge] = 0
	edgeFrontier := []uint32{uint32(srcEdge)}
	var nodeFrontier []uint32
	for depth := int32(1); len(edgeFrontier) > 0 || len(nodeFrontier) > 0; depth++ {
		if err := eng.Err(); err != nil {
			return nil, err
		}
		if depth%2 == 1 {
			nodeFrontier = expandFrontier(eng, edgeFrontier, h.Edges.Row, r.NodeLevel, depth)
			edgeFrontier = nil
		} else {
			edgeFrontier = expandFrontier(eng, nodeFrontier, h.Nodes.Row, r.EdgeLevel, depth)
			nodeFrontier = nil
		}
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// expandFrontier claims unvisited targets of every frontier member with a
// CAS on the target level array, returning the next frontier.
func expandFrontier(eng *parallel.Engine, frontier []uint32, row func(int) []uint32, level []int32, depth int32) []uint32 {
	next := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	eng.ForN(len(frontier), func(w, lo, hi int) {
		buf := next.Get(w)
		if cap(*buf) == 0 {
			*buf = eng.GrabU32(w)
		}
		for i := lo; i < hi; i++ {
			for _, t := range row(int(frontier[i])) {
				if atomic.LoadInt32(&level[t]) == -1 &&
					atomic.CompareAndSwapInt32(&level[t], -1, depth) {
					*buf = append(*buf, t)
				}
			}
		}
	})
	var out []uint32
	next.Each(func(w int, v *[]uint32) {
		out = append(out, *v...)
		eng.StashU32(w, *v)
	})
	return out
}

// HyperBFSBottomUp runs a parallel bottom-up BFS on the bipartite
// representation: each round, every unvisited entity of the side being
// expanded scans its incidence list for a frontier member.
func HyperBFSBottomUp(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperBFSResult, error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	r := newHyperBFSResult(ne, nv)
	r.EdgeLevel[srcEdge] = 0
	edgeFront := parallel.NewBitset(ne)
	edgeFront.Set(srcEdge)
	var nodeFront *parallel.Bitset
	for depth := int32(1); ; depth++ {
		if err := eng.Err(); err != nil {
			return nil, err
		}
		var awake int64
		if depth%2 == 1 {
			nodeFront, awake = bottomUpStep(eng, nv, h.Nodes.Row, edgeFront, r.NodeLevel, depth)
		} else {
			edgeFront, awake = bottomUpStep(eng, ne, h.Edges.Row, nodeFront, r.EdgeLevel, depth)
		}
		if awake == 0 {
			if err := eng.Err(); err != nil {
				return nil, err
			}
			return r, nil
		}
	}
}

// bottomUpStep marks every unvisited entity adjacent to the previous side's
// frontier, writing its level and setting it in the next frontier bitmap.
func bottomUpStep(eng *parallel.Engine, n int, row func(int) []uint32, front *parallel.Bitset, level []int32, depth int32) (*parallel.Bitset, int64) {
	next := parallel.NewBitset(n)
	var awake atomic.Int64
	eng.ForN(n, func(_, lo, hi int) {
		local := int64(0)
		for v := lo; v < hi; v++ {
			if level[v] != -1 {
				continue
			}
			for _, u := range row(v) {
				if front.Get(int(u)) {
					level[v] = depth
					next.Set(v)
					local++
					break
				}
			}
		}
		awake.Add(local)
	})
	return next, awake.Load()
}

// hyperDOAlpha/hyperDOBeta are the direction-switch thresholds for the
// hybrid bipartite BFS, following Beamer's heuristics.
const (
	hyperDOAlpha = 15
	hyperDOBeta  = 18
)

// HyperBFSDirectionOptimizing runs a hybrid BFS on the bipartite
// representation: each half-step picks top-down or bottom-up by comparing
// the frontier's incidence volume against the unexplored remainder of the
// side being expanded — the bipartite analogue of the direction-optimizing
// BFS that AdjoinBFS gets for free from the graph library.
func HyperBFSDirectionOptimizing(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperBFSResult, error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	r := newHyperBFSResult(ne, nv)
	r.EdgeLevel[srcEdge] = 0

	frontier := []uint32{uint32(srcEdge)}
	onEdges := true // the side the frontier lives on
	incTotal := int64(h.NumIncidences())
	var exploredInc int64

	for depth := int32(1); len(frontier) > 0; depth++ {
		if err := eng.Err(); err != nil {
			return nil, err
		}
		// Volume of incidences leaving the frontier.
		var frontInc int64
		rowOut := h.Edges.Row
		rowIn := h.Nodes.Row
		nOther := nv
		level := r.NodeLevel
		if !onEdges {
			rowOut, rowIn = h.Nodes.Row, h.Edges.Row
			nOther = ne
			level = r.EdgeLevel
		}
		for _, u := range frontier {
			frontInc += int64(len(rowOut(int(u))))
		}
		exploredInc += frontInc
		bottomUp := frontInc > (incTotal-exploredInc)/hyperDOAlpha &&
			len(frontier) > nOther/hyperDOBeta

		if bottomUp {
			// Bitmap over the frontier's own side.
			front := parallel.NewBitset(frontierSpace(onEdges, ne, nv))
			for _, u := range frontier {
				front.Set(int(u))
			}
			var awake int64
			var next *parallel.Bitset
			next, awake = bottomUpStep(eng, nOther, rowIn, front, level, depth)
			if awake == 0 {
				break
			}
			frontier = bitsetToList(next)
		} else {
			frontier = expandFrontier(eng, frontier, func(i int) []uint32 { return rowOut(i) }, level, depth)
		}
		onEdges = !onEdges
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

func frontierSpace(onEdges bool, ne, nv int) int {
	if onEdges {
		return ne
	}
	return nv
}

func bitsetToList(b *parallel.Bitset) []uint32 {
	var out []uint32
	for i := 0; i < b.Len(); i++ {
		if b.Get(i) {
			out = append(out, uint32(i))
		}
	}
	return out
}

// AdjoinBFS runs the direction-optimizing BFS of the graph library on the
// adjoin representation from hyperedge srcEdge, then splits the shared-space
// levels back into the two index spaces. Level semantics match HyperBFS.
func AdjoinBFS(eng *parallel.Engine, a *AdjoinGraph, srcEdge int) (*HyperBFSResult, error) {
	res := graph.BFSDirectionOptimizing(eng, a.G, a.EdgeID(srcEdge))
	if err := eng.Err(); err != nil {
		return nil, err
	}
	edgeLvl, nodeLvl := SplitResult(a, res.Level)
	return &HyperBFSResult{
		EdgeLevel: append([]int32(nil), edgeLvl...),
		NodeLevel: append([]int32(nil), nodeLvl...),
	}, nil
}
