// Package core_test holds cross-package traversal properties: every BFS
// formulation in the repo — the three bipartite HyperBFS strategies, the
// Hygra-style baseline, and the adjoin-representation BFS — must report
// identical levels on random hypergraphs now that they all run on the one
// frontier.EdgeMap substrate. External package because hygra imports core.
package core_test

import (
	"testing"
	"testing/quick"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/graph"
	"nwhy/internal/hygra"
	"nwhy/internal/parallel"
)

var pteng = parallel.SharedEngine()

func levelsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTraversalVariantsAgree asserts that push, pull, direction-optimizing,
// Hygra-baseline, and adjoin BFS all compute the same edge and node levels
// from the same source on random hypergraphs.
func TestTraversalVariantsAgree(t *testing.T) {
	f := func(seed int64) bool {
		h := gen.Uniform(30, 40, 5, seed)
		base, err := core.HyperBFSTopDown(pteng, h, 0)
		if err != nil {
			return false
		}
		for _, fn := range []func(*parallel.Engine, *core.Hypergraph, int) (*core.HyperBFSResult, error){
			core.HyperBFSBottomUp,
			core.HyperBFSDirectionOptimizing,
		} {
			r, err := fn(pteng, h, 0)
			if err != nil || !levelsEqual(r.EdgeLevel, base.EdgeLevel) || !levelsEqual(r.NodeLevel, base.NodeLevel) {
				return false
			}
		}
		el, nl, err := hygra.BFS(pteng, h, 0)
		if err != nil || !levelsEqual(el, base.EdgeLevel) || !levelsEqual(nl, base.NodeLevel) {
			return false
		}
		ar, err := core.AdjoinBFS(pteng, core.Adjoin(pteng, h), 0)
		if err != nil || !levelsEqual(ar.EdgeLevel, base.EdgeLevel) || !levelsEqual(ar.NodeLevel, base.NodeLevel) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGraphBFSStrategiesAgreeWithValidParents asserts, on the adjoin graph
// of random hypergraphs, that the three graph.BFS strategies report
// identical levels and that every reported parent is a genuine BFS tree
// edge: an in-neighbor exactly one level closer to the source.
func TestGraphBFSStrategiesAgreeWithValidParents(t *testing.T) {
	f := func(seed int64) bool {
		h := gen.Uniform(25, 35, 5, seed)
		g := core.Adjoin(pteng, h).G
		src := 0
		base := graph.BFSTopDown(pteng, g, src)
		for _, r := range []*graph.BFSResult{
			graph.BFSBottomUp(pteng, g, src),
			graph.BFSDirectionOptimizing(pteng, g, src),
		} {
			if !levelsEqual(r.Level, base.Level) {
				return false
			}
			for v := range r.Level {
				if r.Level[v] <= 0 {
					continue // source or unreachable: no parent required
				}
				p := r.Parent[v]
				if p < 0 || r.Level[p] != r.Level[v]-1 {
					return false
				}
				adjacent := false
				for _, u := range g.Row(v) {
					if int32(u) == p {
						adjacent = true
						break
					}
				}
				if !adjacent {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
