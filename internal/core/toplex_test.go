package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestToplexesPaperExample(t *testing.T) {
	// No hyperedge of the running example contains another: all are toplexes.
	got := tToplexes(paperHypergraph())
	if !reflect.DeepEqual(got, []uint32{0, 1, 2, 3}) {
		t.Fatalf("toplexes = %v", got)
	}
}

func TestToplexesStrictContainment(t *testing.T) {
	h := FromSets([][]uint32{
		{0, 1, 2}, // toplex
		{0, 1},    // contained in e0
		{1, 2, 3}, // toplex
		{3},       // contained in e2
	}, 4)
	got := tToplexes(h)
	if !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("toplexes = %v, want [0 2]", got)
	}
}

func TestToplexesDuplicateSetsKeepSmallestID(t *testing.T) {
	h := FromSets([][]uint32{
		{0, 1},
		{0, 1},
		{2},
	}, 3)
	got := tToplexes(h)
	if !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("toplexes = %v, want [0 2]", got)
	}
}

func TestToplexesChain(t *testing.T) {
	// Nested chain {0} ⊂ {0,1} ⊂ {0,1,2} ⊂ {0,1,2,3}: only the largest wins.
	h := FromSets([][]uint32{{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}}, 4)
	got := tToplexes(h)
	if !reflect.DeepEqual(got, []uint32{3}) {
		t.Fatalf("toplexes = %v, want [3]", got)
	}
}

func TestToplexesEmptyEdges(t *testing.T) {
	// An empty edge is dominated by any non-empty edge.
	h := FromSets([][]uint32{{}, {0}}, 1)
	if got := tToplexes(h); !reflect.DeepEqual(got, []uint32{1}) {
		t.Fatalf("toplexes = %v, want [1]", got)
	}
	// Two empty edges: smallest ID survives only if nothing else exists.
	h2 := FromSets([][]uint32{{}, {}}, 0)
	if got := tToplexes(h2); !reflect.DeepEqual(got, []uint32{0}) {
		t.Fatalf("toplexes = %v, want [0]", got)
	}
}

func TestToplexesSingleEdge(t *testing.T) {
	h := FromSets([][]uint32{{0, 1, 2}}, 3)
	if got := tToplexes(h); !reflect.DeepEqual(got, []uint32{0}) {
		t.Fatalf("toplexes = %v", got)
	}
}

func TestToplexesMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(25, 12, 5, seed) // small node space forces containments
		return reflect.DeepEqual(tToplexes(h), ToplexesBruteForce(h))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestToplexCoverInvariant(t *testing.T) {
	// Every hyperedge must be contained in some toplex.
	f := func(seed int64) bool {
		h := randomHypergraph(20, 10, 4, seed)
		tops := tToplexes(h)
		for e := 0; e < h.NumEdges(); e++ {
			covered := false
			for _, f := range tops {
				if subsetSorted(h.EdgeIncidence(e), h.EdgeIncidence(int(f))) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestToplexCoverAgreesWithToplexes(t *testing.T) {
	// The toplex list from ToplexCover must match Toplexes exactly, and
	// cover[e] == e must hold iff e is a toplex.
	f := func(seed int64) bool {
		h := randomHypergraph(25, 12, 5, seed)
		tops, cover := ToplexCover(teng, h)
		if !reflect.DeepEqual(tops, tToplexes(h)) {
			return false
		}
		isTop := map[uint32]bool{}
		for _, e := range tops {
			isTop[e] = true
		}
		for e := 0; e < h.NumEdges(); e++ {
			if (cover[e] == uint32(e)) != isTop[uint32(e)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestToplexCoverWitnesses(t *testing.T) {
	// A non-toplex's witness must strictly dominate it: a superset of no
	// smaller degree (a strict superset, or an equal set with smaller ID).
	f := func(seed int64) bool {
		h := randomHypergraph(20, 10, 4, seed)
		_, cover := ToplexCover(teng, h)
		for e := 0; e < h.NumEdges(); e++ {
			c := cover[e]
			if c == uint32(e) {
				continue
			}
			if h.EdgeDegree(e) > 0 && !subsetSorted(h.EdgeIncidence(e), h.EdgeIncidence(int(c))) {
				return false
			}
			de, dc := h.EdgeDegree(e), h.EdgeDegree(int(c))
			if dc < de || (dc == de && c > uint32(e)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestToplexCoverChainsTerminate(t *testing.T) {
	// Following cover links from any hyperedge must reach a toplex without
	// cycling: each hop strictly increases (degree, -ID).
	f := func(seed int64) bool {
		h := randomHypergraph(25, 12, 5, seed)
		_, cover := ToplexCover(teng, h)
		for e := 0; e < h.NumEdges(); e++ {
			cur, hops := uint32(e), 0
			for cover[cur] != cur {
				cur = cover[cur]
				hops++
				if hops > h.NumEdges() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestToplexCoverChain(t *testing.T) {
	// Nested chain: every link's witness has strictly larger degree, and the
	// chain resolves to the unique toplex.
	h := FromSets([][]uint32{{0}, {0, 1}, {0, 1, 2}, {0, 1, 2, 3}}, 4)
	tops, cover := ToplexCover(teng, h)
	if !reflect.DeepEqual(tops, []uint32{3}) {
		t.Fatalf("tops = %v, want [3]", tops)
	}
	for e := 0; e < 3; e++ {
		cur := uint32(e)
		for cover[cur] != cur {
			cur = cover[cur]
		}
		if cur != 3 {
			t.Fatalf("edge %d resolves to %d, want 3", e, cur)
		}
	}
}

func TestToplexCoverDuplicates(t *testing.T) {
	// Duplicate sets: the smallest ID is the toplex, the copy points at it.
	h := FromSets([][]uint32{{0, 1}, {0, 1}, {2}}, 3)
	tops, cover := ToplexCover(teng, h)
	if !reflect.DeepEqual(tops, []uint32{0, 2}) {
		t.Fatalf("tops = %v, want [0 2]", tops)
	}
	if cover[1] != 0 {
		t.Fatalf("cover[1] = %d, want 0", cover[1])
	}
}

func TestToplexCoverEmptyEdges(t *testing.T) {
	// An empty edge is never its own cover when a non-empty edge exists; its
	// witness is the first disqualifier (any other hyperedge dominates it).
	h := FromSets([][]uint32{{}, {0}}, 1)
	tops, cover := ToplexCover(teng, h)
	if !reflect.DeepEqual(tops, []uint32{1}) {
		t.Fatalf("tops = %v, want [1]", tops)
	}
	if cover[0] == 0 {
		t.Fatal("empty edge should not be its own cover")
	}
}

func TestSubsetSorted(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want bool
	}{
		{nil, nil, true},
		{nil, []uint32{1}, true},
		{[]uint32{1}, nil, false},
		{[]uint32{1, 3}, []uint32{1, 2, 3}, true},
		{[]uint32{1, 4}, []uint32{1, 2, 3}, false},
		{[]uint32{2}, []uint32{1, 2, 3}, true},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, true},
	}
	for _, c := range cases {
		if got := subsetSorted(c.a, c.b); got != c.want {
			t.Errorf("subsetSorted(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
