package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestHyperTreePaperExample(t *testing.T) {
	h := paperHypergraph()
	tr := tBuildHyperTree(h, 0)
	if !tr.Verify(h) {
		t.Fatal("hypertree invariants violated")
	}
	// Levels must match plain HyperBFS.
	want := tHyperBFSTopDown(h, 0)
	if !reflect.DeepEqual(tr.EdgeLevel, want.EdgeLevel) || !reflect.DeepEqual(tr.NodeLevel, want.NodeLevel) {
		t.Fatal("hypertree levels differ from HyperBFS")
	}
}

func TestHyperPathToEdge(t *testing.T) {
	h := paperHypergraph()
	tr := tBuildHyperTree(h, 0)
	// e2 is at level 4: path e0 -> node -> e -> node -> e2 (5 steps).
	path := tr.HyperPathToEdge(2)
	if len(path) != 5 {
		t.Fatalf("path length %d, want 5: %v", len(path), path)
	}
	if path[0].ID != 0 || !path[0].IsEdge {
		t.Fatalf("path must start at root: %v", path)
	}
	if path[4].ID != 2 || !path[4].IsEdge {
		t.Fatalf("path must end at e2: %v", path)
	}
	// Alternation and incidence.
	for i := 1; i < len(path); i++ {
		if path[i].IsEdge == path[i-1].IsEdge {
			t.Fatalf("path does not alternate: %v", path)
		}
		var edge, node uint32
		if path[i].IsEdge {
			edge, node = path[i].ID, path[i-1].ID
		} else {
			edge, node = path[i-1].ID, path[i].ID
		}
		if !containsU32(h.Edges.Row(int(edge)), node) {
			t.Fatalf("consecutive path entities not incident: %v", path)
		}
	}
}

func TestHyperPathToNode(t *testing.T) {
	h := paperHypergraph()
	tr := tBuildHyperTree(h, 0)
	path := tr.HyperPathToNode(5) // node 5 is at level 5 (via e2)
	if len(path) != 6 {
		t.Fatalf("path = %v", path)
	}
	last := path[len(path)-1]
	if last.ID != 5 || last.IsEdge {
		t.Fatalf("path must end at node 5: %v", path)
	}
}

func TestHyperPathUnreachable(t *testing.T) {
	h := FromSets([][]uint32{{0, 1}, {2, 3}}, 4)
	tr := tBuildHyperTree(h, 0)
	if tr.HyperPathToEdge(1) != nil {
		t.Fatal("unreachable edge path should be nil")
	}
	if tr.HyperPathToNode(2) != nil {
		t.Fatal("unreachable node path should be nil")
	}
	if tr.HyperPathToEdge(0) == nil || len(tr.HyperPathToEdge(0)) != 1 {
		t.Fatal("root path should be [root]")
	}
}

func TestHyperTreeRandomVerify(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(30, 40, 5, seed)
		tr := tBuildHyperTree(h, 0)
		if !tr.Verify(h) {
			return false
		}
		// Path lengths must match levels for all reachable edges.
		for e := 0; e < h.NumEdges(); e++ {
			if tr.EdgeLevel[e] < 0 {
				continue
			}
			if len(tr.HyperPathToEdge(e)) != int(tr.EdgeLevel[e])+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
