package core

import (
	"sync/atomic"

	"nwhy/internal/parallel"
)

// HyperTree is a BFS forest of the bipartite structure rooted at a
// hyperedge: every reached entity knows the entity (on the other side) that
// discovered it. This is the "hypertree" of the MESH / HyperX algorithm
// suites; hyperpaths are read off by walking parents.
type HyperTree struct {
	*HyperBFSResult
	// EdgeParent[e] is the hypernode that discovered hyperedge e (-1 for
	// the root and unreached hyperedges).
	EdgeParent []int32
	// NodeParent[v] is the hyperedge that discovered hypernode v (-1 if
	// unreached).
	NodeParent []int32
	// Root is the source hyperedge.
	Root int
}

// BuildHyperTree runs a parallel top-down BFS from srcEdge recording
// parents on both sides.
func BuildHyperTree(eng *parallel.Engine, h *Hypergraph, srcEdge int) (*HyperTree, error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	t := &HyperTree{
		HyperBFSResult: newHyperBFSResult(ne, nv),
		EdgeParent:     make([]int32, ne),
		NodeParent:     make([]int32, nv),
		Root:           srcEdge,
	}
	for i := range t.EdgeParent {
		t.EdgeParent[i] = -1
	}
	for i := range t.NodeParent {
		t.NodeParent[i] = -1
	}
	t.EdgeLevel[srcEdge] = 0
	edgeFrontier := []uint32{uint32(srcEdge)}
	var nodeFrontier []uint32
	for depth := int32(1); len(edgeFrontier) > 0 || len(nodeFrontier) > 0; depth++ {
		if err := eng.Err(); err != nil {
			return nil, err
		}
		if depth%2 == 1 {
			nodeFrontier = expandWithParents(eng, edgeFrontier, h.Edges.Row, t.NodeLevel, t.NodeParent, depth)
			edgeFrontier = nil
		} else {
			edgeFrontier = expandWithParents(eng, nodeFrontier, h.Nodes.Row, t.EdgeLevel, t.EdgeParent, depth)
			nodeFrontier = nil
		}
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func expandWithParents(eng *parallel.Engine, frontier []uint32, row func(int) []uint32, level, parent []int32, depth int32) []uint32 {
	next := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	eng.ForN(len(frontier), func(w, lo, hi int) {
		buf := next.Get(w)
		if cap(*buf) == 0 {
			*buf = eng.GrabU32(w)
		}
		for i := lo; i < hi; i++ {
			u := frontier[i]
			for _, tgt := range row(int(u)) {
				if atomic.LoadInt32(&level[tgt]) == -1 &&
					atomic.CompareAndSwapInt32(&level[tgt], -1, depth) {
					parent[tgt] = int32(u)
					*buf = append(*buf, tgt)
				}
			}
		}
	})
	var out []uint32
	next.Each(func(w int, v *[]uint32) {
		out = append(out, *v...)
		eng.StashU32(w, *v)
	})
	return out
}

// PathStep is one entity on a hyperpath.
type PathStep struct {
	ID     uint32
	IsEdge bool
}

// HyperPathToEdge returns the alternating hyperedge/hypernode sequence from
// the root to hyperedge dst, or nil if unreachable. The sequence starts at
// the root hyperedge and ends at dst.
func (t *HyperTree) HyperPathToEdge(dst int) []PathStep {
	if t.EdgeLevel[dst] < 0 {
		return nil
	}
	var rev []PathStep
	id, isEdge := uint32(dst), true
	for {
		rev = append(rev, PathStep{ID: id, IsEdge: isEdge})
		if isEdge {
			p := t.EdgeParent[id]
			if p < 0 {
				break // root
			}
			id, isEdge = uint32(p), false
		} else {
			id, isEdge = uint32(t.NodeParent[id]), true
		}
	}
	out := make([]PathStep, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// HyperPathToNode returns the alternating sequence from the root to
// hypernode dst, or nil if unreachable.
func (t *HyperTree) HyperPathToNode(dst int) []PathStep {
	if t.NodeLevel[dst] < 0 {
		return nil
	}
	e := t.NodeParent[dst]
	path := t.HyperPathToEdge(int(e))
	return append(path, PathStep{ID: uint32(dst), IsEdge: false})
}

// Verify checks the hypertree invariants against the hypergraph: parents
// are incident, levels increase by one along parent links, and levels match
// an independent BFS.
func (t *HyperTree) Verify(h *Hypergraph) bool {
	for e := 0; e < h.NumEdges(); e++ {
		p := t.EdgeParent[e]
		switch {
		case e == t.Root:
			if p != -1 || t.EdgeLevel[e] != 0 {
				return false
			}
		case t.EdgeLevel[e] < 0:
			if p != -1 {
				return false
			}
		default:
			if p < 0 || t.NodeLevel[p] != t.EdgeLevel[e]-1 {
				return false
			}
			if !containsU32(h.Edges.Row(e), uint32(p)) {
				return false
			}
		}
	}
	for v := 0; v < h.NumNodes(); v++ {
		p := t.NodeParent[v]
		if t.NodeLevel[v] < 0 {
			if p != -1 {
				return false
			}
			continue
		}
		if p < 0 || t.EdgeLevel[p] != t.NodeLevel[v]-1 {
			return false
		}
		if !containsU32(h.Nodes.Row(v), uint32(p)) {
			return false
		}
	}
	return true
}

func containsU32(s []uint32, x uint32) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
