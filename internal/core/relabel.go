package core

import "nwhy/internal/sparse"

// Relabel returns a hypergraph whose hyperedge and hypernode ID spaces are
// permuted: hyperedge newID of the result is hyperedge edgePerm[newID] of the
// input, and likewise for hypernodes under nodePerm (perm[newID] = oldID in
// both). Either permutation may be nil for identity. Both sides of the
// mutually indexed biadjacency pair are rewritten through one
// sparse.ApplyPerm each, so the result satisfies Validate's mutual-transpose
// invariant by construction.
func Relabel(h *Hypergraph, edgePerm, nodePerm []uint32) *Hypergraph {
	var edgeInv, nodeInv []uint32
	if edgePerm != nil {
		edgeInv = sparse.InvertPerm(edgePerm)
	}
	if nodePerm != nil {
		nodeInv = sparse.InvertPerm(nodePerm)
	}
	return &Hypergraph{
		Edges: h.Edges.ApplyPerm(edgePerm, nodeInv),
		Nodes: h.Nodes.ApplyPerm(nodePerm, edgeInv),
	}
}
