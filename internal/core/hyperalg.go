package core

import (
	"math"

	"nwhy/internal/parallel"
)

// HyperPageRank computes PageRank directly on the hypergraph via the
// two-step random walk of the bipartite structure: a walker at a hypernode
// picks one of its hyperedges uniformly, then one of that hyperedge's
// members uniformly. Returned scores are over hypernodes and sum to ~1.
// Hypernodes in no hyperedge are dangling; their mass is redistributed
// uniformly. This is the hypergraph PageRank of the MESH / HyperX algorithm
// suites, computed without materializing a projection.
func HyperPageRank(eng *parallel.Engine, h *Hypergraph, damping, tol float64, maxIter int) ([]float64, error) {
	nv, ne := h.NumNodes(), h.NumEdges()
	if nv == 0 {
		return nil, eng.Err()
	}
	rank := make([]float64, nv)
	next := make([]float64, nv)
	edgeMass := make([]float64, ne)
	inv := 1 / float64(nv)
	for i := range rank {
		rank[i] = inv
	}
	nodeDeg := h.NodeDegrees()
	edgeSize := h.EdgeDegrees()

	for iter := 0; iter < maxIter; iter++ {
		if err := eng.Err(); err != nil {
			return nil, err
		}
		// Step 1: push node mass onto hyperedges (rank/deg per incidence).
		dangling := parallel.ReduceWith(eng, nv, 0.0, func(lo, hi int, acc float64) float64 {
			for v := lo; v < hi; v++ {
				if nodeDeg[v] == 0 {
					acc += rank[v]
				}
			}
			return acc
		}, func(a, b float64) float64 { return a + b })
		eng.ForN(ne, func(_, lo, hi int) {
			for e := lo; e < hi; e++ {
				sum := 0.0
				for _, v := range h.Edges.Row(e) {
					sum += rank[v] / float64(nodeDeg[v])
				}
				edgeMass[e] = sum
			}
		})
		// Step 2: spread hyperedge mass uniformly over members.
		base := (1-damping)*inv + damping*dangling*inv
		eng.ForN(nv, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				for _, e := range h.Nodes.Row(v) {
					if edgeSize[e] > 0 {
						sum += edgeMass[e] / float64(edgeSize[e])
					}
				}
				next[v] = base + damping*sum
			}
		})
		delta := parallel.ReduceWith(eng, nv, 0.0, func(lo, hi int, acc float64) float64 {
			for v := lo; v < hi; v++ {
				acc += math.Abs(next[v] - rank[v])
			}
			return acc
		}, func(a, b float64) float64 { return a + b })
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return rank, nil
}

// HyperCoreness computes the hypergraph k-core number of every hypernode
// under Hygra's peeling semantics: repeatedly remove the hypernode with the
// fewest live hyperedges; removing it kills all its live hyperedges, which
// decrements the live-degree of every other member. The core number of v is
// the largest k such that v survives when all nodes of live-degree < k have
// been peeled.
func HyperCoreness(h *Hypergraph) []int {
	nv, ne := h.NumNodes(), h.NumEdges()
	deg := h.NodeDegrees() // live hyperedge count per node
	aliveEdge := make([]bool, ne)
	for e := range aliveEdge {
		aliveEdge[e] = true
	}
	core := make([]int, nv)
	removed := make([]bool, nv)

	// Bucket queue over degrees.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]uint32, maxDeg+1)
	for v, d := range deg {
		buckets[d] = append(buckets[d], uint32(v))
	}
	level := 0
	for processed := 0; processed < nv; {
		// Find the lowest non-empty bucket at or below the current level,
		// or advance the level.
		adv := true
		for d := 0; d <= level && d <= maxDeg; d++ {
			for len(buckets[d]) > 0 {
				v := buckets[d][len(buckets[d])-1]
				buckets[d] = buckets[d][:len(buckets[d])-1]
				if removed[v] || deg[v] != d {
					continue // stale entry
				}
				removed[v] = true
				core[v] = level
				processed++
				for _, e := range h.Nodes.Row(int(v)) {
					if !aliveEdge[e] {
						continue
					}
					aliveEdge[e] = false
					for _, u := range h.Edges.Row(int(e)) {
						if !removed[u] {
							deg[u]--
							buckets[deg[u]] = append(buckets[deg[u]], u)
						}
					}
				}
				adv = false
				break
			}
			if !adv {
				break
			}
		}
		if adv {
			level++
		}
	}
	return core
}
