package core

import (
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// CollapseResult describes a collapse: the reduced hypergraph plus, for each
// representative entity, the original IDs it absorbed (including itself).
// Representatives are the smallest original ID in each equivalence class,
// and keep their relative order.
type CollapseResult struct {
	H *Hypergraph
	// Classes[k] lists the original IDs merged into representative k (the
	// k-th kept entity, in ascending original-ID order). Classes[k][0] is
	// the representative's original ID.
	Classes [][]uint32
}

// CollapseEdges merges duplicate hyperedges — hyperedges with identical
// hypernode sets — into a single representative each, mirroring the nwhy
// Python API's collapse_edges(). Hypernode IDs are unchanged.
func CollapseEdges(eng *parallel.Engine, h *Hypergraph) *CollapseResult {
	classes := equivalenceClasses(eng, h.Edges)
	bel := sparse.NewBiEdgeList(len(classes), h.NumNodes())
	for k, class := range classes {
		for _, v := range h.Edges.Row(int(class[0])) {
			bel.Add(uint32(k), v)
		}
	}
	return &CollapseResult{H: FromBiEdgeList(bel), Classes: classes}
}

// CollapseNodes merges duplicate hypernodes — hypernodes incident to
// identical hyperedge sets — into a single representative each, mirroring
// collapse_nodes(). Hyperedge IDs are unchanged; hyperedge sizes shrink.
func CollapseNodes(eng *parallel.Engine, h *Hypergraph) *CollapseResult {
	classes := equivalenceClasses(eng, h.Nodes)
	bel := sparse.NewBiEdgeList(h.NumEdges(), len(classes))
	for k, class := range classes {
		for _, e := range h.Nodes.Row(int(class[0])) {
			bel.Add(e, uint32(k))
		}
	}
	return &CollapseResult{H: FromBiEdgeList(bel), Classes: classes}
}

// CollapseNodesAndEdges collapses duplicate hypernodes, then duplicate
// hyperedges of the reduced hypergraph (collapse_nodes_and_edges()). The
// returned classes describe the edge collapse of the node-collapsed
// hypergraph; nodeClasses describes the first stage.
func CollapseNodesAndEdges(eng *parallel.Engine, h *Hypergraph) (result *CollapseResult, nodeClasses [][]uint32) {
	nodes := CollapseNodes(eng, h)
	edges := CollapseEdges(eng, nodes.H)
	return edges, nodes.Classes
}

// equivalenceClasses groups the rows of a CSR by identical content,
// returning the classes sorted by representative (minimum member) ID. Rows
// are hashed in parallel and grouped exactly (hash collisions verified).
func equivalenceClasses(eng *parallel.Engine, c *sparse.CSR) [][]uint32 {
	n := c.NumRows()
	hashes := make([]uint64, n)
	eng.ForN(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			hashes[i] = hashRow(c.Row(i))
		}
	})
	byHash := map[uint64][]uint32{}
	for i := 0; i < n; i++ {
		byHash[hashes[i]] = append(byHash[hashes[i]], uint32(i))
	}
	var classes [][]uint32
	for _, group := range byHash {
		// Within a hash bucket, split by exact row equality (collision-safe).
		for len(group) > 0 {
			rep := group[0]
			var class, rest []uint32
			for _, id := range group {
				if rowsEqual(c.Row(int(rep)), c.Row(int(id))) {
					class = append(class, id)
				} else {
					rest = append(rest, id)
				}
			}
			classes = append(classes, class)
			group = rest
		}
	}
	// Canonical order: by representative ID (class slices are already
	// ascending because buckets preserve insertion order).
	sortClasses(classes)
	return classes
}

func hashRow(row []uint32) uint64 {
	// FNV-1a over the row contents plus length.
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(x uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64((x >> s) & 0xff)
			h *= prime
		}
	}
	mix(uint32(len(row)))
	for _, v := range row {
		mix(v)
	}
	return h
}

func rowsEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortClasses(classes [][]uint32) {
	// Insertion sort on representative (classes counts are small relative
	// to row counts; simplicity over asymptotics here is fine).
	for i := 1; i < len(classes); i++ {
		for j := i; j > 0 && classes[j-1][0] > classes[j][0]; j-- {
			classes[j-1], classes[j] = classes[j], classes[j-1]
		}
	}
}

// EdgeSizeDist returns the histogram of hyperedge sizes: dist[d] = number
// of hyperedges with exactly d hypernodes (the Python API's
// edge_size_dist()).
func EdgeSizeDist(h *Hypergraph) []int {
	return degreeHistogram(h.EdgeDegrees())
}

// NodeDegreeDist returns the histogram of hypernode degrees.
func NodeDegreeDist(h *Hypergraph) []int {
	return degreeHistogram(h.NodeDegrees())
}

func degreeHistogram(degrees []int) []int {
	maxD := 0
	for _, d := range degrees {
		if d > maxD {
			maxD = d
		}
	}
	hist := make([]int, maxD+1)
	for _, d := range degrees {
		hist[d]++
	}
	return hist
}

// RestrictToEdges returns the sub-hypergraph induced by the given hyperedge
// IDs (renumbered 0..len-1 in the given order); hypernode IDs are kept.
func RestrictToEdges(h *Hypergraph, edgeIDs []uint32) *Hypergraph {
	bel := sparse.NewBiEdgeList(len(edgeIDs), h.NumNodes())
	for k, e := range edgeIDs {
		for _, v := range h.Edges.Row(int(e)) {
			bel.Add(uint32(k), v)
		}
	}
	return FromBiEdgeList(bel)
}

// RestrictToNodes returns the sub-hypergraph induced by the given hypernode
// IDs (renumbered 0..len-1); hyperedges keep their IDs but lose members
// outside the set (possibly becoming empty).
func RestrictToNodes(h *Hypergraph, nodeIDs []uint32) *Hypergraph {
	keep := make(map[uint32]uint32, len(nodeIDs))
	for k, v := range nodeIDs {
		keep[v] = uint32(k)
	}
	bel := sparse.NewBiEdgeList(h.NumEdges(), len(nodeIDs))
	for e := 0; e < h.NumEdges(); e++ {
		for _, v := range h.Edges.Row(e) {
			if nv, ok := keep[v]; ok {
				bel.Add(uint32(e), nv)
			}
		}
	}
	return FromBiEdgeList(bel)
}

// Toplexify returns the sub-hypergraph restricted to the toplexes — the
// simplification HyperNetX calls "toplexes()": the maximal hyperedges carry
// all the set-containment information.
func Toplexify(eng *parallel.Engine, h *Hypergraph) *Hypergraph {
	return RestrictToEdges(h, Toplexes(eng, h))
}
