package core

import (
	"math/rand"
	"testing"

	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

func dynBase(t *testing.T) *Hypergraph {
	t.Helper()
	h := FromSets([][]uint32{
		{0, 1, 2},
		{2, 3},
		{4},
		{3, 5},
	}, 6)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewDynamicRejectsWeighted(t *testing.T) {
	c := sparse.FromPairs(1, 1, []sparse.Edge{{U: 0, V: 0}}, []float64{1})
	h := &Hypergraph{Edges: c, Nodes: c.Transpose()}
	if _, err := NewDynamic(h); err == nil {
		t.Fatal("want error for weighted hypergraph")
	}
}

func TestDynamicAddRemoveSemantics(t *testing.T) {
	d, err := NewDynamic(dynBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdge(nil); err == nil {
		t.Fatal("empty hyperedge should be rejected")
	}
	id, err := d.AddEdge([]uint32{5, 1, 5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("id = %d, want fresh 4", id)
	}
	if got := d.EdgeMembers(id); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("members = %v", got)
	}
	if d.NodeDegree(5) != 2 || d.NodeDegree(1) != 2 {
		t.Fatalf("degrees: node5=%d node1=%d", d.NodeDegree(5), d.NodeDegree(1))
	}
	if err := d.RemoveEdge(2); err != nil { // edge {4}: node 4 drops to degree 0
		t.Fatal(err)
	}
	if d.EdgeAlive(2) || d.EdgeMembers(2) != nil {
		t.Fatal("edge 2 should be dead")
	}
	if d.NodeDegree(4) != 0 {
		t.Fatalf("node 4 degree = %d", d.NodeDegree(4))
	}
	if err := d.RemoveEdge(2); err == nil {
		t.Fatal("double remove should fail")
	}
	if d.Deletes() != 1 || d.Inserts() != 1 {
		t.Fatalf("epochs: del=%d ins=%d", d.Deletes(), d.Inserts())
	}
	// Next insert recycles edge ID 2.
	id2, err := d.AddEdge([]uint32{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if id2 != 2 {
		t.Fatalf("recycled id = %d, want 2", id2)
	}
	if got := d.Dirty(); len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("dirty = %v", got)
	}
}

func TestDynamicNodeRecycling(t *testing.T) {
	d, err := NewDynamic(dynBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2); err != nil { // isolates node 4
		t.Fatal(err)
	}
	if v := d.NewNodeID(); v != 4 {
		t.Fatalf("NewNodeID = %d, want recycled 4", v)
	}
	// Free-list is drained; next ID is fresh and grows the space.
	if v := d.NewNodeID(); v != 6 {
		t.Fatalf("NewNodeID = %d, want fresh 6", v)
	}
	if d.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
}

func TestDynamicNodeRecyclingSkipsReattached(t *testing.T) {
	d, err := NewDynamic(dynBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(2); err != nil { // isolates node 4
		t.Fatal(err)
	}
	if _, err := d.AddEdge([]uint32{4, 0}); err != nil { // re-attaches node 4
		t.Fatal(err)
	}
	if v := d.NewNodeID(); v == 4 {
		t.Fatal("re-attached node must not be recycled")
	}
}

func TestDynamicAddEdgeGrowthGuard(t *testing.T) {
	d, err := NewDynamic(dynBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdge([]uint32{1 << 30}); err == nil {
		t.Fatal("absurd node ID should be rejected")
	}
	if _, err := d.AddEdge([]uint32{8}); err != nil { // modest growth is fine
		t.Fatal(err)
	}
	if d.NumNodes() != 9 {
		t.Fatalf("NumNodes = %d", d.NumNodes())
	}
}

func TestDynamicSnapshotValidates(t *testing.T) {
	eng := parallel.NewEngine(4)
	d, err := NewDynamic(dynBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddEdge([]uint32{0, 5}); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveEdge(1); err != nil {
		t.Fatal(err)
	}
	h, err := d.Snapshot(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 5 || len(h.EdgeIncidence(1)) != 0 {
		t.Fatalf("edges=%d row1=%v", h.NumEdges(), h.EdgeIncidence(1))
	}
}

// liveSets reads the live hyperedges out of a dynamic view as explicit sets
// aligned with the full edge ID space (dead IDs become empty sets).
func liveSets(d *DynamicHypergraph) [][]uint32 {
	sets := make([][]uint32, d.NumEdges())
	for e := range sets {
		sets[e] = append([]uint32(nil), d.EdgeMembers(uint32(e))...)
	}
	return sets
}

// TestDynamicSnapshotMatchesRebuild is the semantic pin for the tentpole:
// a random mutation script applied through the overlay, then compacted,
// must be bit-identical to a hypergraph rebuilt from scratch from the live
// edge sets.
func TestDynamicSnapshotMatchesRebuild(t *testing.T) {
	eng := parallel.NewEngine(4)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		numNodes := 4 + rng.Intn(30)
		var sets [][]uint32
		for e := 0; e < 2+rng.Intn(20); e++ {
			d := 1 + rng.Intn(4)
			s := make([]uint32, d)
			for j := range s {
				s[j] = uint32(rng.Intn(numNodes))
			}
			sets = append(sets, s)
		}
		base := FromSets(sets, numNodes)
		d, err := NewDynamic(base)
		if err != nil {
			t.Fatal(err)
		}
		live := map[uint32]bool{}
		for e := 0; e < base.NumEdges(); e++ {
			live[uint32(e)] = true
		}
		for op := 0; op < 40; op++ {
			if rng.Intn(3) == 0 && len(live) > 1 {
				var victim uint32
				n := rng.Intn(len(live))
				for e := range live {
					if n == 0 {
						victim = e
						break
					}
					n--
				}
				if err := d.RemoveEdge(victim); err != nil {
					t.Fatal(err)
				}
				delete(live, victim)
			} else {
				deg := 1 + rng.Intn(4)
				s := make([]uint32, deg)
				for j := range s {
					s[j] = uint32(rng.Intn(d.NumNodes()))
				}
				id, err := d.AddEdge(s)
				if err != nil {
					t.Fatal(err)
				}
				live[id] = true
			}
		}
		got, err := d.Snapshot(eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := FromSets(liveSets(d), got.NumNodes())
		if !got.Edges.Equal(want.Edges) || !got.Nodes.Equal(want.Nodes) {
			t.Fatalf("trial %d: snapshot != rebuild", trial)
		}
	}
}
