package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestCollapseEdgesMergesDuplicates(t *testing.T) {
	h := FromSets([][]uint32{
		{0, 1},
		{2, 3},
		{0, 1}, // dup of e0
		{4},
		{0, 1}, // dup of e0
		{2, 3}, // dup of e1
	}, 5)
	r := tCollapseEdges(h)
	if r.H.NumEdges() != 3 {
		t.Fatalf("collapsed to %d edges, want 3", r.H.NumEdges())
	}
	wantClasses := [][]uint32{{0, 2, 4}, {1, 5}, {3}}
	if !reflect.DeepEqual(r.Classes, wantClasses) {
		t.Fatalf("classes = %v, want %v", r.Classes, wantClasses)
	}
	if !reflect.DeepEqual(r.H.EdgeIncidence(0), []uint32{0, 1}) {
		t.Fatalf("representative 0 incidence = %v", r.H.EdgeIncidence(0))
	}
	if err := r.H.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseEdgesNoDuplicatesIdentity(t *testing.T) {
	h := paperHypergraph()
	r := tCollapseEdges(h)
	if r.H.NumEdges() != 4 || len(r.Classes) != 4 {
		t.Fatal("collapse changed a duplicate-free hypergraph")
	}
	if !r.H.Edges.Equal(h.Edges) {
		t.Fatal("edge structure changed")
	}
}

func TestCollapseNodesMergesDuplicateMemberships(t *testing.T) {
	// Nodes 0,1,2 all belong exactly to e0; nodes 3,4 to e0 and e1.
	h := FromSets([][]uint32{
		{0, 1, 2, 3, 4},
		{3, 4},
	}, 5)
	r := tCollapseNodes(h)
	if r.H.NumNodes() != 2 {
		t.Fatalf("collapsed to %d nodes, want 2", r.H.NumNodes())
	}
	if !reflect.DeepEqual(r.Classes, [][]uint32{{0, 1, 2}, {3, 4}}) {
		t.Fatalf("classes = %v", r.Classes)
	}
	// e0 now has 2 members (one per class), e1 has 1.
	if r.H.EdgeDegree(0) != 2 || r.H.EdgeDegree(1) != 1 {
		t.Fatalf("degrees = %d, %d", r.H.EdgeDegree(0), r.H.EdgeDegree(1))
	}
}

func TestCollapseNodesAndEdges(t *testing.T) {
	// After node collapse, e0 and e2 become identical.
	h := FromSets([][]uint32{
		{0, 1},
		{2},
		{0, 1},
	}, 3)
	r, nodeClasses := tCollapseNodesAndEdges(h)
	if len(nodeClasses) != 2 { // {0,1} merge (same membership {e0,e2}), {2}
		t.Fatalf("node classes = %v", nodeClasses)
	}
	if r.H.NumEdges() != 2 {
		t.Fatalf("edges after double collapse = %d", r.H.NumEdges())
	}
}

func TestCollapseIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(20, 8, 3, seed) // small node space: duplicates likely
		once := tCollapseEdges(h)
		twice := tCollapseEdges(once.H)
		return twice.H.NumEdges() == once.H.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCollapsePreservesDistinctSets(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(25, 8, 3, seed)
		r := tCollapseEdges(h)
		// Every original hyperedge's set must equal its representative's.
		for k, class := range r.Classes {
			for _, orig := range class {
				if !rowsEqual(h.Edges.Row(int(orig)), r.H.Edges.Row(k)) {
					return false
				}
			}
		}
		// Distinct set count must match.
		distinct := map[string]bool{}
		for e := 0; e < h.NumEdges(); e++ {
			key := ""
			for _, v := range h.Edges.Row(e) {
				key += string(rune(v)) + ","
			}
			distinct[key] = true
		}
		return len(distinct) == r.H.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeSizeDist(t *testing.T) {
	h := paperHypergraph() // sizes 3,3,3,4
	dist := EdgeSizeDist(h)
	want := []int{0, 0, 0, 3, 1}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("EdgeSizeDist = %v, want %v", dist, want)
	}
}

func TestNodeDegreeDist(t *testing.T) {
	h := paperHypergraph() // nodes 0,2,4,6 have degree 2; the other five degree 1
	dist := NodeDegreeDist(h)
	want := []int{0, 5, 4}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("NodeDegreeDist = %v, want %v", dist, want)
	}
}

func TestDegreeDistSumsMatch(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(20, 15, 5, seed)
		total := 0
		for d, c := range EdgeSizeDist(h) {
			total += d * c
		}
		return total == h.NumIncidences()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRestrictToEdges(t *testing.T) {
	h := paperHypergraph()
	sub := RestrictToEdges(h, []uint32{3, 1})
	if sub.NumEdges() != 2 || sub.NumNodes() != 9 {
		t.Fatalf("shape %d/%d", sub.NumEdges(), sub.NumNodes())
	}
	if !reflect.DeepEqual(sub.EdgeIncidence(0), []uint32{0, 6, 7, 8}) {
		t.Fatalf("first restricted edge = %v (should be old e3)", sub.EdgeIncidence(0))
	}
	if !reflect.DeepEqual(sub.EdgeIncidence(1), []uint32{2, 3, 4}) {
		t.Fatalf("second restricted edge = %v (should be old e1)", sub.EdgeIncidence(1))
	}
}

func TestRestrictToNodes(t *testing.T) {
	h := paperHypergraph()
	// Keep only nodes 0 and 2 (renumbered 0 and 1).
	sub := RestrictToNodes(h, []uint32{0, 2})
	if sub.NumNodes() != 2 || sub.NumEdges() != 4 {
		t.Fatalf("shape %d/%d", sub.NumEdges(), sub.NumNodes())
	}
	// e0 was {0,1,2}: keeps {0, 2} -> renumbered {0, 1}.
	if !reflect.DeepEqual(sub.EdgeIncidence(0), []uint32{0, 1}) {
		t.Fatalf("e0 restricted = %v", sub.EdgeIncidence(0))
	}
	// e2 was {4,5,6}: loses everything.
	if sub.EdgeDegree(2) != 0 {
		t.Fatalf("e2 should be empty, has %d", sub.EdgeDegree(2))
	}
}

func TestToplexify(t *testing.T) {
	h := FromSets([][]uint32{{0, 1, 2}, {0, 1}, {3}, {3}}, 4)
	tp := tToplexify(h)
	if tp.NumEdges() != 2 {
		t.Fatalf("toplexified to %d edges, want 2 ({0,1,2} and one {3})", tp.NumEdges())
	}
	if !reflect.DeepEqual(tp.EdgeIncidence(0), []uint32{0, 1, 2}) {
		t.Fatalf("first toplex = %v", tp.EdgeIncidence(0))
	}
}

func TestHyperBFSDirectionOptimizingAgrees(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(40, 50, 6, seed)
		want := hyperBFSOracle(h, 0)
		got := tHyperBFSDirectionOptimizing(h, 0)
		return reflect.DeepEqual(got.EdgeLevel, want.EdgeLevel) &&
			reflect.DeepEqual(got.NodeLevel, want.NodeLevel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHyperBFSDirectionOptimizingDenseInput(t *testing.T) {
	// One hyperedge containing everything forces a giant first frontier
	// (the bottom-up trigger); correctness must hold either way.
	sets := [][]uint32{make([]uint32, 500)}
	for i := range sets[0] {
		sets[0][i] = uint32(i)
	}
	for i := 0; i < 50; i++ {
		sets = append(sets, []uint32{uint32(i * 10), uint32(i*10 + 1)})
	}
	h := FromSets(sets, 500)
	want := hyperBFSOracle(h, 0)
	got := tHyperBFSDirectionOptimizing(h, 0)
	if !reflect.DeepEqual(got.EdgeLevel, want.EdgeLevel) || !reflect.DeepEqual(got.NodeLevel, want.NodeLevel) {
		t.Fatal("direction-optimizing BFS differs on dense input")
	}
}
