package core

import "nwhy/internal/parallel"

// teng is the engine the package tests run on; wrapper funcs restore the
// engine-less signatures the table-driven tests were written against and
// discard the (always-nil without cancellation) errors.
var teng = parallel.SharedEngine()

func tHyperBFSTopDown(h *Hypergraph, src int) *HyperBFSResult {
	r, _ := HyperBFSTopDown(teng, h, src)
	return r
}

func tHyperBFSBottomUp(h *Hypergraph, src int) *HyperBFSResult {
	r, _ := HyperBFSBottomUp(teng, h, src)
	return r
}

func tHyperBFSDirectionOptimizing(h *Hypergraph, src int) *HyperBFSResult {
	r, _ := HyperBFSDirectionOptimizing(teng, h, src)
	return r
}

func tAdjoinBFS(a *AdjoinGraph, src int) *HyperBFSResult {
	r, _ := AdjoinBFS(teng, a, src)
	return r
}

func tHyperCC(h *Hypergraph) *HyperCCResult {
	r, _ := HyperCC(teng, h)
	return r
}

func tAdjoinCC(a *AdjoinGraph, alg AdjoinCCAlgorithm) *HyperCCResult {
	r, _ := AdjoinCC(teng, a, alg)
	return r
}

func tHyperPageRank(h *Hypergraph, damping, tol float64, maxIter int) []float64 {
	r, _ := HyperPageRank(teng, h, damping, tol, maxIter)
	return r
}

func tBuildHyperTree(h *Hypergraph, src int) *HyperTree {
	r, _ := BuildHyperTree(teng, h, src)
	return r
}

func tAdjoin(h *Hypergraph) *AdjoinGraph { return Adjoin(teng, h) }

func tToplexes(h *Hypergraph) []uint32 { return Toplexes(teng, h) }

func tToplexify(h *Hypergraph) *Hypergraph { return Toplexify(teng, h) }

func tCollapseEdges(h *Hypergraph) *CollapseResult { return CollapseEdges(teng, h) }

func tCollapseNodes(h *Hypergraph) *CollapseResult { return CollapseNodes(teng, h) }

func tCollapseNodesAndEdges(h *Hypergraph) (*CollapseResult, [][]uint32) {
	return CollapseNodesAndEdges(teng, h)
}
