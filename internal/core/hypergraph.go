// Package core implements the paper's primary contribution: the hypergraph
// data structures (bipartite representation with two mutually indexed index
// sets, and the adjoin representation with one shared index set) and the
// exact hypergraph algorithms that operate on them — HyperBFS, HyperCC,
// AdjoinBFS, AdjoinCC, and toplex computation (Algorithm 3).
package core

import (
	"fmt"
	"iter"

	"nwhy/internal/sparse"
)

// Hypergraph is the bipartite representation of a hypergraph: two separate
// but mutually indexed CSR structures (the paper's biadjacency<0> and
// biadjacency<1>). Edges maps each hyperedge to its incident hypernodes;
// Nodes maps each hypernode to its incident hyperedges. Hyperedge IDs and
// hypernode IDs are two independent index spaces.
type Hypergraph struct {
	Edges *sparse.CSR
	Nodes *sparse.CSR
}

// FromBiEdgeList builds the two mutually indexed incidence structures from
// a bipartite edge list.
func FromBiEdgeList(bel *sparse.BiEdgeList) *Hypergraph {
	e, n := sparse.BiAdjacency(bel)
	return &Hypergraph{Edges: e, Nodes: n}
}

// FromIncidenceCSR builds a hypergraph around a prebuilt hyperedge
// incidence structure — the snapshot-load fast path, where the CSR comes off
// disk already canonical — deriving the node incidence by transposition.
func FromIncidenceCSR(edges *sparse.CSR) *Hypergraph {
	return &Hypergraph{Edges: edges, Nodes: edges.Transpose()}
}

// FromSets builds a hypergraph from explicit hyperedge vertex sets over
// numNodes hypernodes. numNodes < 0 infers the node count from the sets.
func FromSets(sets [][]uint32, numNodes int) *Hypergraph {
	if numNodes < 0 {
		numNodes = 0
		for _, s := range sets {
			for _, v := range s {
				if int(v) >= numNodes {
					numNodes = int(v) + 1
				}
			}
		}
	}
	bel := sparse.NewBiEdgeList(len(sets), numNodes)
	for e, s := range sets {
		for _, v := range s {
			bel.Add(uint32(e), v)
		}
	}
	bel.Dedup() // hyperedges are sets: repeated members collapse
	return FromBiEdgeList(bel)
}

// NumEdges reports the number of hyperedges |E|.
func (h *Hypergraph) NumEdges() int { return h.Edges.NumRows() }

// NumNodes reports the number of hypernodes |V|.
func (h *Hypergraph) NumNodes() int { return h.Nodes.NumRows() }

// NumIncidences reports the number of (hyperedge, hypernode) incidences —
// the number of non-zeros in the incidence matrix.
func (h *Hypergraph) NumIncidences() int { return h.Edges.NumEdges() }

// EdgeIncidence returns hyperedge e's incident hypernodes (sorted; aliases
// storage).
func (h *Hypergraph) EdgeIncidence(e int) []uint32 { return h.Edges.Row(e) }

// NodeIncidence returns hypernode v's incident hyperedges (sorted; aliases
// storage).
func (h *Hypergraph) NodeIncidence(v int) []uint32 { return h.Nodes.Row(v) }

// EdgeDegree reports |e|: the number of hypernodes hyperedge e joins.
func (h *Hypergraph) EdgeDegree(e int) int { return h.Edges.Degree(e) }

// NodeDegree reports d(v): the number of hyperedges hypernode v joins.
func (h *Hypergraph) NodeDegree(v int) int { return h.Nodes.Degree(v) }

// EdgeDegrees returns the degree of every hyperedge.
func (h *Hypergraph) EdgeDegrees() []int { return h.Edges.Degrees() }

// NodeDegrees returns the degree of every hypernode.
func (h *Hypergraph) NodeDegrees() []int { return h.Nodes.Degrees() }

// Dual returns the dual hypergraph H*: hyperedges and hypernodes swap roles.
// The incidence matrix of the dual is the transpose of H's. The returned
// hypergraph shares storage with h.
func (h *Hypergraph) Dual() *Hypergraph {
	return &Hypergraph{Edges: h.Nodes, Nodes: h.Edges}
}

// EdgeRange iterates over (hyperedge ID, incident hypernodes) pairs — the
// "range of ranges" view of Listing 3, with Go iterators standing in for
// C++20 ranges.
func (h *Hypergraph) EdgeRange() iter.Seq2[int, []uint32] {
	return func(yield func(int, []uint32) bool) {
		for e := 0; e < h.NumEdges(); e++ {
			if !yield(e, h.Edges.Row(e)) {
				return
			}
		}
	}
}

// NodeRange iterates over (hypernode ID, incident hyperedges) pairs.
func (h *Hypergraph) NodeRange() iter.Seq2[int, []uint32] {
	return func(yield func(int, []uint32) bool) {
		for v := 0; v < h.NumNodes(); v++ {
			if !yield(v, h.Nodes.Row(v)) {
				return
			}
		}
	}
}

// EdgeNeighbors reports the hyperedges adjacent to hyperedge e (sharing at
// least one hypernode), excluding e itself, in ascending order.
func (h *Hypergraph) EdgeNeighbors(e int) []uint32 {
	seen := map[uint32]bool{}
	for _, v := range h.Edges.Row(e) {
		for _, f := range h.Nodes.Row(int(v)) {
			if int(f) != e {
				seen[f] = true
			}
		}
	}
	out := make([]uint32, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sortU32(out)
	return out
}

// NodeNeighbors reports the hypernodes adjacent to hypernode v (sharing at
// least one hyperedge), excluding v itself, in ascending order.
func (h *Hypergraph) NodeNeighbors(v int) []uint32 {
	return h.Dual().EdgeNeighbors(v)
}

// Validate checks that the two incidence structures are mutual transposes
// and structurally sound.
func (h *Hypergraph) Validate() error {
	if err := h.Edges.Validate(); err != nil {
		return fmt.Errorf("core: edge incidence: %w", err)
	}
	if err := h.Nodes.Validate(); err != nil {
		return fmt.Errorf("core: node incidence: %w", err)
	}
	if h.Edges.NumCols() != h.Nodes.NumRows() || h.Edges.NumRows() != h.Nodes.NumCols() {
		return fmt.Errorf("core: dimensions not dual: %dx%d vs %dx%d",
			h.Edges.NumRows(), h.Edges.NumCols(), h.Nodes.NumRows(), h.Nodes.NumCols())
	}
	if !h.Edges.Transpose().Equal(h.Nodes) {
		return fmt.Errorf("core: incidence structures are not mutually indexed (transpose mismatch)")
	}
	return nil
}

// Stats are the Table I input characteristics of a hypergraph.
type Stats struct {
	NumNodes      int     // |V|
	NumEdges      int     // |E|
	AvgNodeDegree float64 // mean d(v)
	AvgEdgeDegree float64 // mean |e|
	MaxNodeDegree int     // Δv
	MaxEdgeDegree int     // Δe
}

// ComputeStats derives the Table I row for h.
func ComputeStats(h *Hypergraph) Stats {
	return Stats{
		NumNodes:      h.NumNodes(),
		NumEdges:      h.NumEdges(),
		AvgNodeDegree: h.Nodes.AvgDegree(),
		AvgEdgeDegree: h.Edges.AvgDegree(),
		MaxNodeDegree: h.Nodes.MaxDegree(),
		MaxEdgeDegree: h.Edges.MaxDegree(),
	}
}

func sortU32(s []uint32) {
	// insertion sort is fine for small neighbor lists; fall back to a
	// simple quicksort via sort.Slice for larger ones.
	if len(s) < 32 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j-1] > s[j]; j-- {
				s[j-1], s[j] = s[j], s[j-1]
			}
		}
		return
	}
	quickSortU32(s)
}

func quickSortU32(s []uint32) {
	if len(s) < 2 {
		return
	}
	pivot := s[len(s)/2]
	i, j := 0, len(s)-1
	for i <= j {
		for s[i] < pivot {
			i++
		}
		for s[j] > pivot {
			j--
		}
		if i <= j {
			s[i], s[j] = s[j], s[i]
			i++
			j--
		}
	}
	quickSortU32(s[:j+1])
	quickSortU32(s[i:])
}
