package core

import (
	"fmt"

	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// maxNodeGrowth caps how far a single AddEdge may extend the hypernode ID
// space past its current end. Members are caller-chosen IDs, so a typo'd
// huge ID would otherwise silently commit the next snapshot to a
// multi-gigabyte node incidence.
const maxNodeGrowth = 1 << 20

// DynamicHypergraph is the mutable view of a bipartite hypergraph: a
// sparse.Overlay over the frozen hyperedge incidence, plus hypernode
// bookkeeping (degree deltas and a hypernode ID free-list) maintained
// incrementally so node recycling never needs the transposed structure.
// It is single-writer, like the overlay underneath; Snapshot folds the
// pending mutations into a fresh frozen Hypergraph.
//
// Hyperedge IDs are stable under mutation and recycled only after a
// RemoveEdge, which incremental consumers detect through Deletes().
type DynamicHypergraph struct {
	base *Hypergraph
	ov   *sparse.Overlay

	nodeDelta map[uint32]int // live-degree adjustment vs base, per touched hypernode
	nodeFree  []uint32       // hypernode IDs observed at live degree 0 (candidates for recycling)

	dirty []uint32 // hyperedge IDs inserted since construction, in order
}

// NewDynamic opens a mutable view over base. Weighted incidence structures
// are rejected (the mutation surface carries no incidence weights).
func NewDynamic(base *Hypergraph) (*DynamicHypergraph, error) {
	ov, err := sparse.NewOverlay(base.Edges)
	if err != nil {
		return nil, err
	}
	ov.GrowCols(base.NumNodes())
	return &DynamicHypergraph{
		base:      base,
		ov:        ov,
		nodeDelta: map[uint32]int{},
	}, nil
}

// Base returns the frozen hypergraph the view was opened over.
func (d *DynamicHypergraph) Base() *Hypergraph { return d.base }

// NumEdges reports the hyperedge ID space (dead IDs included — IDs are
// stable until recycled).
func (d *DynamicHypergraph) NumEdges() int { return d.ov.NumRows() }

// NumNodes reports the hypernode ID space.
func (d *DynamicHypergraph) NumNodes() int { return d.ov.NumCols() }

// Inserts reports the number of AddEdge calls accepted so far.
func (d *DynamicHypergraph) Inserts() int { return d.ov.Inserts() }

// Deletes is the tombstone epoch: the number of RemoveEdge calls accepted
// so far. Incremental consumers may absorb insertions while this is
// unchanged but must recompute from scratch once it moves.
func (d *DynamicHypergraph) Deletes() int { return d.ov.Deletes() }

// Dirty returns the hyperedge IDs inserted since construction, in insert
// order (aliases internal storage). IDs later removed again still appear;
// consumers read their current membership, which is then empty.
func (d *DynamicHypergraph) Dirty() []uint32 { return d.dirty }

// EdgeAlive reports whether hyperedge e currently exists.
func (d *DynamicHypergraph) EdgeAlive(e uint32) bool {
	return int(e) < d.ov.NumRows() && !d.ov.Dead(e)
}

// EdgeMembers returns hyperedge e's current hypernodes (sorted, deduplicated;
// aliases storage; nil for dead or out-of-range IDs).
func (d *DynamicHypergraph) EdgeMembers(e uint32) []uint32 { return d.ov.Row(e) }

// NodeDegree reports hypernode v's current live degree: its frozen degree
// plus the pending delta.
func (d *DynamicHypergraph) NodeDegree(v uint32) int {
	deg := d.nodeDelta[v]
	if int(v) < d.base.NumNodes() {
		deg += d.base.NodeDegree(int(v))
	}
	return deg
}

// AddEdge inserts a hyperedge over members and returns its ID (recycled
// after deletions, fresh otherwise). Members are deduplicated; an empty
// member set is rejected, as is a member ID that would grow the hypernode
// space by more than maxNodeGrowth.
func (d *DynamicHypergraph) AddEdge(members []uint32) (uint32, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("core: empty hyperedge")
	}
	for _, v := range members {
		if int(v) >= d.ov.NumCols()+maxNodeGrowth {
			return 0, fmt.Errorf("core: hypernode %d grows the node space by more than %d past %d",
				v, maxNodeGrowth, d.ov.NumCols())
		}
	}
	id := d.ov.InsertRow(members)
	for _, v := range d.ov.Row(id) { // post-dedup membership
		d.nodeDelta[v]++
	}
	d.dirty = append(d.dirty, id)
	return id, nil
}

// RemoveEdge tombstones hyperedge e, releasing its ID for recycling.
// Hypernodes whose live degree drops to zero become candidates for
// NewNodeID recycling.
func (d *DynamicHypergraph) RemoveEdge(e uint32) error {
	members := d.ov.Row(e)
	if err := d.ov.DeleteRow(e); err != nil {
		return err
	}
	for _, v := range members {
		d.nodeDelta[v]--
		if d.NodeDegree(v) == 0 {
			d.nodeFree = append(d.nodeFree, v)
		}
	}
	return nil
}

// NewNodeID returns a hypernode ID guaranteed unused by any live hyperedge:
// a recycled degree-zero ID freed by earlier removals when one is still
// unused, else a fresh ID extending the node space. The caller owns wiring
// it into hyperedges via AddEdge.
func (d *DynamicHypergraph) NewNodeID() uint32 {
	for n := len(d.nodeFree); n > 0; n = len(d.nodeFree) {
		v := d.nodeFree[n-1]
		d.nodeFree = d.nodeFree[:n-1]
		// An AddEdge since the removal may have re-referenced v; recycle
		// only if it is still isolated.
		if d.NodeDegree(v) == 0 {
			return v
		}
	}
	v := uint32(d.ov.NumCols())
	d.ov.GrowCols(int(v) + 1)
	return v
}

// Snapshot compacts the pending mutations into a fresh frozen Hypergraph:
// the overlay folds into a new hyperedge incidence (dead IDs become empty
// rows, keeping the ID space stable), and the node incidence is derived by
// the parallel radix transpose. The view stays usable afterwards, still
// layered over its original base.
func (d *DynamicHypergraph) Snapshot(e *parallel.Engine) (*Hypergraph, error) {
	edges, err := d.ov.Compact(e)
	if err != nil {
		return nil, err
	}
	nodes, err := sparse.TransposeOn(e, edges)
	if err != nil {
		return nil, err
	}
	return &Hypergraph{Edges: edges, Nodes: nodes}, nil
}
