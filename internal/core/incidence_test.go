package core

import (
	"testing"
	"testing/quick"
)

// These tests pin the §II definitions directly: incidence matrix structure,
// duality, and the degree identities that every representation must agree
// on.

func TestIncidenceMatrixRowColSums(t *testing.T) {
	// Row sums of the incidence matrix = hyperedge degrees; column sums =
	// hypernode degrees (B is |E| x |V| here with rows as hyperedges).
	f := func(seed int64) bool {
		h := randomHypergraph(25, 20, 5, seed)
		for e := 0; e < h.NumEdges(); e++ {
			if len(h.EdgeIncidence(e)) != h.EdgeDegree(e) {
				return false
			}
		}
		colSums := make([]int, h.NumNodes())
		for e := 0; e < h.NumEdges(); e++ {
			for _, v := range h.EdgeIncidence(e) {
				colSums[v]++
			}
		}
		for v := 0; v < h.NumNodes(); v++ {
			if colSums[v] != h.NodeDegree(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDualIncidenceIsTranspose(t *testing.T) {
	// B^t is the incidence matrix of H* (paper §II.C).
	f := func(seed int64) bool {
		h := randomHypergraph(20, 15, 4, seed)
		d := h.Dual()
		for e := 0; e < h.NumEdges(); e++ {
			for _, v := range h.EdgeIncidence(e) {
				// (e, v) in B  <=>  (v, e) in B^t.
				found := false
				for _, f := range d.EdgeIncidence(int(v)) {
					if int(f) == e {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return h.NumIncidences() == d.NumIncidences()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacencyViaSharedHyperedge(t *testing.T) {
	// Two hypernodes are adjacent iff they are incident on a common
	// hyperedge (§II.C); NodeNeighbors must agree with a brute-force check.
	f := func(seed int64) bool {
		h := randomHypergraph(15, 12, 4, seed)
		for u := 0; u < h.NumNodes(); u++ {
			nbrs := map[uint32]bool{}
			for _, n := range h.NodeNeighbors(u) {
				nbrs[n] = true
			}
			for v := 0; v < h.NumNodes(); v++ {
				if v == u {
					continue
				}
				share := false
				for _, e := range h.NodeIncidence(u) {
					for _, f := range h.NodeIncidence(v) {
						if e == f {
							share = true
						}
					}
				}
				if share != nbrs[uint32(v)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestSIncidenceDefinition(t *testing.T) {
	// e and f are s-incident iff |e ∩ f| >= s (§II.D): EdgeNeighbors is
	// exactly 1-incidence.
	h := paperHypergraph()
	for e := 0; e < h.NumEdges(); e++ {
		nbrs := map[uint32]bool{}
		for _, n := range h.EdgeNeighbors(e) {
			nbrs[n] = true
		}
		for f := 0; f < h.NumEdges(); f++ {
			if f == e {
				continue
			}
			common := 0
			for _, a := range h.EdgeIncidence(e) {
				for _, b := range h.EdgeIncidence(f) {
					if a == b {
						common++
					}
				}
			}
			if (common >= 1) != nbrs[uint32(f)] {
				t.Fatalf("1-incidence mismatch between e%d and e%d", e, f)
			}
		}
	}
}

func TestAdjoinMatrixSymmetryFromIncidence(t *testing.T) {
	// A_G = [[0, B^t],[B, 0]] means: shared-space entry (e, ne+v) exists
	// iff incidence (e, v) exists, and the matrix is symmetric.
	h := paperHypergraph()
	a := tAdjoin(h)
	ne := h.NumEdges()
	for e := 0; e < ne; e++ {
		row := map[uint32]bool{}
		for _, x := range a.G.Row(e) {
			row[x] = true
		}
		for v := 0; v < h.NumNodes(); v++ {
			want := false
			for _, iv := range h.EdgeIncidence(e) {
				if int(iv) == v {
					want = true
				}
			}
			if row[uint32(ne+v)] != want {
				t.Fatalf("adjoin entry (e%d, v%d) = %v, want %v", e, v, row[uint32(ne+v)], want)
			}
		}
	}
}
