package core

import (
	"context"
	"sync/atomic"
	"testing"

	"nwhy/internal/parallel"
)

// countdownCtx is a context.Context whose Err starts reporting
// context.Canceled after the first n calls — a deterministic way to cancel
// an engine partway through a multi-round traversal without timing races.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// pathHypergraph chains k hyperedges e_i = {v_i, v_{i+1}}, giving a
// traversal of ~2k rounds from e_0.
func pathHypergraph(k int) *Hypergraph {
	sets := make([][]uint32, k)
	for i := range sets {
		sets[i] = []uint32{uint32(i), uint32(i + 1)}
	}
	return FromSets(sets, k+1)
}

// TestHyperBFSCancelledBetweenRounds is the regression test for the round
// loop ignoring cancellation: a context that expires after the traversal is
// underway must abort HyperBFS at a round boundary and surface the error,
// for every variant.
func TestHyperBFSCancelledBetweenRounds(t *testing.T) {
	h := pathHypergraph(200)
	variants := map[string]func(*parallel.Engine, *Hypergraph, int) (*HyperBFSResult, error){
		"topdown":  HyperBFSTopDown,
		"bottomup": HyperBFSBottomUp,
		"diropt":   HyperBFSDirectionOptimizing,
	}
	for name, fn := range variants {
		// Let a handful of cancellation checks pass, then trip: the
		// ~400-round traversal cannot have finished by then.
		eng := teng.WithContext(newCountdownCtx(20))
		r, err := fn(eng, h, 0)
		if err == nil {
			t.Fatalf("%s: expected cancellation error, got nil (result %v)", name, r != nil)
		}
		if r != nil {
			t.Fatalf("%s: expected nil result on cancellation", name)
		}
	}
}

// TestHyperBFSPreCancelled asserts an already-expired context aborts before
// any round runs.
func TestHyperBFSPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := teng.WithContext(ctx)
	if _, err := HyperBFSTopDown(eng, pathHypergraph(3), 0); err == nil {
		t.Fatal("expected error from pre-cancelled engine")
	}
}
