package core

import (
	"nwhy/internal/parallel"
)

// Toplexes computes the maximal hyperedges of a hypergraph (the paper's
// Algorithm 3): hyperedge e is a toplex iff no other hyperedge f is a strict
// superset of e. Duplicate hyperedges keep only the smallest ID.
//
// Unlike Algorithm 3's shared mutable set, this implementation decides each
// hyperedge independently (embarrassingly parallel) with a counting
// superset test: any f containing e appears exactly |e| times among the
// incidence lists of e's vertices, so tallying those lists finds every
// superset in O(Σ_{v∈e} d(v)) without pairwise subset checks.
func Toplexes(eng *parallel.Engine, h *Hypergraph) []uint32 {
	ne := h.NumEdges()
	tls := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	counts := parallel.NewTLSFor(eng, func() map[uint32]int { return map[uint32]int{} })
	eng.ForN(ne, func(w, lo, hi int) {
		buf := tls.Get(w)
		cnt := *counts.Get(w)
		for e := lo; e < hi; e++ {
			if isToplex(h, uint32(e), cnt) {
				*buf = append(*buf, uint32(e))
			}
		}
	})
	var out []uint32
	tls.All(func(v *[]uint32) { out = append(out, *v...) })
	sortU32(out)
	return out
}

// ToplexCover computes the toplexes together with a containment map: for
// every hyperedge e, cover[e] == e iff e is a toplex; otherwise cover[e] is
// a deterministic witness that e is non-maximal — the smallest-ID hyperedge
// whose member set strictly contains e's (or, for duplicate member sets,
// the smallest duplicate ID). Since deg(cover[e]) > deg(e), or the degrees
// are equal and cover[e] < e, the potential (deg, -ID) strictly increases
// along cover chains, so following cover repeatedly terminates at a toplex.
// This is the expansion map the toplex-only s-component construction uses
// to label non-maximal hyperedges: e ⊆ cover[e] means |e ∩ cover[e]| =
// deg(e), so any e clearing the degree filter is s-connected to its cover.
func ToplexCover(eng *parallel.Engine, h *Hypergraph) (tops, cover []uint32) {
	ne := h.NumEdges()
	cover = make([]uint32, ne)
	tls := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	counts := parallel.NewTLSFor(eng, func() map[uint32]int { return map[uint32]int{} })
	eng.ForN(ne, func(w, lo, hi int) {
		buf := tls.Get(w)
		cnt := *counts.Get(w)
		for e := lo; e < hi; e++ {
			c := coverOf(h, uint32(e), cnt)
			cover[e] = c
			if c == uint32(e) {
				*buf = append(*buf, uint32(e))
			}
		}
	})
	var out []uint32
	tls.All(func(v *[]uint32) { out = append(out, *v...) })
	sortU32(out)
	return out, cover
}

// coverOf returns e's covering witness (e itself when maximal), using the
// same counting superset test as isToplex but scanning every qualifying
// superset to pick the deterministic minimum-ID one. cnt is reusable
// scratch (cleared before use).
func coverOf(h *Hypergraph, e uint32, cnt map[uint32]int) uint32 {
	clear(cnt)
	size := h.EdgeDegree(int(e))
	if size == 0 {
		// Mirrors isToplex's empty-edge rule; the returned witness (never
		// unioned — an empty edge cannot clear any degree filter s ≥ 1) is
		// the first disqualifying hyperedge.
		for f := 0; f < h.NumEdges(); f++ {
			if f != int(e) && (h.EdgeDegree(f) > 0 || f < int(e)) {
				return uint32(f)
			}
		}
		return e
	}
	for _, v := range h.EdgeIncidence(int(e)) {
		for _, f := range h.NodeIncidence(int(v)) {
			if f != e {
				cnt[f]++
			}
		}
	}
	best := e
	for f, c := range cnt {
		if c != size {
			continue // f does not contain all of e
		}
		df := h.EdgeDegree(int(f))
		if df > size || (df == size && f < e) {
			if best == e || f < best {
				best = f
			}
		}
	}
	return best
}

// isToplex decides whether e is maximal. cnt is reusable scratch (cleared
// before use).
func isToplex(h *Hypergraph, e uint32, cnt map[uint32]int) bool {
	clear(cnt)
	size := h.EdgeDegree(int(e))
	if size == 0 {
		// Empty hyperedges are contained in every hyperedge; an empty
		// hyperedge is a toplex only if it is the smallest-ID empty edge and
		// no non-empty edge exists.
		for f := 0; f < h.NumEdges(); f++ {
			if f != int(e) && (h.EdgeDegree(f) > 0 || f < int(e)) {
				return false
			}
		}
		return true
	}
	for _, v := range h.EdgeIncidence(int(e)) {
		for _, f := range h.NodeIncidence(int(v)) {
			if f != e {
				cnt[f]++
			}
		}
	}
	for f, c := range cnt {
		if c != size {
			continue // f does not contain all of e
		}
		df := h.EdgeDegree(int(f))
		if df > size {
			return false // strict superset
		}
		if df == size && f < e {
			return false // duplicate set; smaller ID wins
		}
	}
	return true
}

// ToplexesBruteForce is the O(|E|² · Δ) oracle used by tests: pairwise
// subset checks over sorted incidence lists.
func ToplexesBruteForce(h *Hypergraph) []uint32 {
	ne := h.NumEdges()
	var out []uint32
	for e := 0; e < ne; e++ {
		maximal := true
		for f := 0; f < ne && maximal; f++ {
			if f == e {
				continue
			}
			if subsetSorted(h.EdgeIncidence(e), h.EdgeIncidence(f)) {
				if h.EdgeDegree(f) > h.EdgeDegree(e) || f < e {
					maximal = false
				}
			}
		}
		if maximal {
			out = append(out, uint32(e))
		}
	}
	return out
}

// subsetSorted reports whether sorted slice a ⊆ sorted slice b.
func subsetSorted(a, b []uint32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}
