package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHyperPageRankSumsToOne(t *testing.T) {
	h := randomHypergraph(50, 80, 6, 3)
	pr := tHyperPageRank(h, 0.85, 1e-10, 300)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("tHyperPageRank sums to %v", sum)
	}
}

func TestHyperPageRankSymmetricInput(t *testing.T) {
	// Fully symmetric hypergraph: every node in both edges -> uniform rank.
	h := FromSets([][]uint32{{0, 1, 2}, {0, 1, 2}}, 3)
	pr := tHyperPageRank(h, 0.85, 1e-12, 500)
	for i, v := range pr {
		if math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want 1/3", i, v)
		}
	}
}

func TestHyperPageRankHubNode(t *testing.T) {
	// Node 0 is in every hyperedge; others in one each.
	h := FromSets([][]uint32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}, 5)
	pr := tHyperPageRank(h, 0.85, 1e-10, 300)
	for i := 1; i < 5; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub rank %v not above %v", pr[0], pr[i])
		}
	}
}

func TestHyperPageRankDanglingNodes(t *testing.T) {
	h := FromSets([][]uint32{{0, 1}}, 4) // nodes 2, 3 dangling
	pr := tHyperPageRank(h, 0.85, 1e-12, 500)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum with dangling nodes = %v", sum)
	}
	if pr[2] != pr[3] {
		t.Fatal("symmetric dangling nodes should tie")
	}
}

func TestHyperPageRankEmpty(t *testing.T) {
	if tHyperPageRank(FromSets(nil, 0), 0.85, 1e-10, 10) != nil {
		t.Fatal("empty hypergraph should give nil")
	}
}

// hyperCorenessOracle computes core numbers by the fixpoint definition:
// S_k = maximal node set where every member is in >= k hyperedges fully
// inside S_k (edges die when any member is removed).
func hyperCorenessOracle(h *Hypergraph) []int {
	nv := h.NumNodes()
	core := make([]int, nv)
	maxDeg := 0
	for v := 0; v < nv; v++ {
		if d := h.NodeDegree(v); d > maxDeg {
			maxDeg = d
		}
	}
	for k := 1; k <= maxDeg; k++ {
		alive := make([]bool, nv)
		for v := range alive {
			alive[v] = true
		}
		for {
			changed := false
			for v := 0; v < nv; v++ {
				if !alive[v] {
					continue
				}
				liveDeg := 0
				for _, e := range h.Nodes.Row(v) {
					ok := true
					for _, u := range h.Edges.Row(int(e)) {
						if !alive[u] {
							ok = false
							break
						}
					}
					if ok {
						liveDeg++
					}
				}
				if liveDeg < k {
					alive[v] = false
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for v := 0; v < nv; v++ {
			if alive[v] {
				core[v] = k
			}
		}
	}
	return core
}

func TestHyperCorenessSingleEdge(t *testing.T) {
	h := FromSets([][]uint32{{0, 1}}, 3)
	core := HyperCoreness(h)
	if core[0] != 1 || core[1] != 1 || core[2] != 0 {
		t.Fatalf("core = %v", core)
	}
}

func TestHyperCorenessNestedStructure(t *testing.T) {
	// Nodes 0,1 share three hyperedges; node 2 hangs off one extra edge.
	h := FromSets([][]uint32{{0, 1}, {0, 1}, {0, 1}, {1, 2}}, 3)
	core := HyperCoreness(h)
	want := []int{3, 3, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
}

func TestHyperCorenessMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(20, 12, 4, seed)
		got := HyperCoreness(h)
		want := hyperCorenessOracle(h)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHyperCorenessPaperExample(t *testing.T) {
	h := paperHypergraph()
	core := HyperCoreness(h)
	want := hyperCorenessOracle(h)
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("core = %v, want %v", core, want)
		}
	}
}
