package core

import (
	"fmt"

	"nwhy/internal/graph"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// AdjoinGraph is the paper's adjoin representation of a hypergraph: the two
// separate index spaces are consolidated into one shared index space, making
// the hypergraph an ordinary (general) graph that any graph algorithm can
// process. Hyperedges occupy IDs [0, NumRealEdges); hypernodes occupy
// [NumRealEdges, NumRealEdges+NumRealNodes). Its adjacency matrix has the
// block anti-diagonal form [[0, Bᵗ], [B, 0]] where B is the incidence matrix
// of the hypergraph (Figure 4).
//
// Algorithms consuming an AdjoinGraph must be range-aware: they need
// NumRealEdges/NumRealNodes to know which part of the shared index set is
// which, and results are split back with SplitResult.
type AdjoinGraph struct {
	G            *graph.Graph
	NumRealEdges int
	NumRealNodes int
}

// Adjoin converts the bipartite representation into an adjoin graph: the
// vertex set is the direct sum of the hyperedge and hypernode index sets,
// and each incidence (e, v) becomes the undirected pair {e, NumRealEdges+v}.
func Adjoin(eng *parallel.Engine, h *Hypergraph) *AdjoinGraph {
	ne, nv := h.NumEdges(), h.NumNodes()
	m := h.NumIncidences()
	pairs := make([]sparse.Edge, 2*m)
	eng.ForN(ne, func(_, lo, hi int) {
		for e := lo; e < hi; e++ {
			base := h.Edges.RowPtr[e]
			for k, v := range h.Edges.Row(e) {
				i := base + int64(k)
				pairs[2*i] = sparse.Edge{U: uint32(e), V: uint32(ne) + v}
				pairs[2*i+1] = sparse.Edge{U: uint32(ne) + v, V: uint32(e)}
			}
		}
	})
	csr := sparse.FromPairs(ne+nv, ne+nv, pairs, nil)
	g, err := graph.FromCSR(csr)
	if err != nil {
		panic("core: adjoin CSR not square: " + err.Error()) // impossible by construction
	}
	return &AdjoinGraph{G: g, NumRealEdges: ne, NumRealNodes: nv}
}

// FromAdjoinEdgeList wraps an already-adjoined edge list (e.g. read by
// mmio.GraphReaderAdjoin) whose vertex IDs are in the shared index space.
// The list must already contain both directions of every incidence.
func FromAdjoinEdgeList(el *sparse.EdgeList, numRealEdges, numRealNodes int) (*AdjoinGraph, error) {
	if numRealEdges+numRealNodes != el.NumVertices {
		return nil, fmt.Errorf("core: adjoin vertex count %d != %d edges + %d nodes",
			el.NumVertices, numRealEdges, numRealNodes)
	}
	g := graph.FromEdgeList(el, false)
	return &AdjoinGraph{G: g, NumRealEdges: numRealEdges, NumRealNodes: numRealNodes}, nil
}

// NumVertices reports the size of the shared index space.
func (a *AdjoinGraph) NumVertices() int { return a.NumRealEdges + a.NumRealNodes }

// IsHyperedge reports whether shared-space ID id denotes a hyperedge.
func (a *AdjoinGraph) IsHyperedge(id int) bool { return id < a.NumRealEdges }

// EdgeID maps hyperedge e into the shared index space.
func (a *AdjoinGraph) EdgeID(e int) int { return e }

// NodeID maps hypernode v into the shared index space.
func (a *AdjoinGraph) NodeID(v int) int { return a.NumRealEdges + v }

// SplitResult splits a per-vertex result array computed on the adjoin graph
// back into the hyperedge part and the hypernode part.
func SplitResult[T any](a *AdjoinGraph, result []T) (edges, nodes []T) {
	return result[:a.NumRealEdges], result[a.NumRealEdges:]
}

// ToHypergraph converts the adjoin graph back to the bipartite
// representation (the inverse of Adjoin).
func (a *AdjoinGraph) ToHypergraph() *Hypergraph {
	bel := sparse.NewBiEdgeList(a.NumRealEdges, a.NumRealNodes)
	for e := 0; e < a.NumRealEdges; e++ {
		for _, x := range a.G.Row(e) {
			if int(x) >= a.NumRealEdges {
				bel.Add(uint32(e), x-uint32(a.NumRealEdges))
			}
		}
	}
	return FromBiEdgeList(bel)
}

// Validate checks the structural invariants of the adjoin form: the
// adjacency is symmetric and strictly bipartite between the hyperedge range
// and the hypernode range (the zero diagonal blocks of Figure 4).
func (a *AdjoinGraph) Validate() error {
	n := a.NumVertices()
	if a.G.NumVertices() != n {
		return fmt.Errorf("core: adjoin graph has %d vertices, expected %d", a.G.NumVertices(), n)
	}
	for u := 0; u < n; u++ {
		for _, v := range a.G.Row(u) {
			if a.IsHyperedge(u) == a.IsHyperedge(int(v)) {
				return fmt.Errorf("core: adjoin edge (%d,%d) inside one partition", u, v)
			}
		}
	}
	if !a.G.IsSymmetric() {
		return fmt.Errorf("core: adjoin graph not symmetric")
	}
	return nil
}
