package core

import (
	"reflect"
	"testing"
	"testing/quick"

	"nwhy/internal/sparse"
)

func TestAdjoinPaperExample(t *testing.T) {
	h := paperHypergraph()
	a := tAdjoin(h)
	if a.NumVertices() != 13 || a.NumRealEdges != 4 || a.NumRealNodes != 9 {
		t.Fatalf("adjoin shape: %d vertices, %d edges, %d nodes", a.NumVertices(), a.NumRealEdges, a.NumRealNodes)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Figure 3: hyperedge IDs 0..3, hypernode IDs 4..12. Hyperedge 0 = {0,1,2}
	// connects to shared IDs 4,5,6.
	if got := a.G.Row(0); !reflect.DeepEqual(got, []uint32{4, 5, 6}) {
		t.Fatalf("adjoin row 0 = %v", got)
	}
	// Hypernode 0 (shared ID 4) is in hyperedges 0 and 3.
	if got := a.G.Row(4); !reflect.DeepEqual(got, []uint32{0, 3}) {
		t.Fatalf("adjoin row 4 = %v", got)
	}
}

func TestAdjoinBlockStructure(t *testing.T) {
	// Figure 4: A_G = [[0, B^t],[B, 0]] — no edge stays within one partition.
	h := randomHypergraph(20, 30, 6, 1)
	a := tAdjoin(h)
	for u := 0; u < a.NumVertices(); u++ {
		for _, v := range a.G.Row(u) {
			if a.IsHyperedge(u) == a.IsHyperedge(int(v)) {
				t.Fatalf("edge (%d,%d) violates block anti-diagonal structure", u, v)
			}
		}
	}
	if !a.G.IsSymmetric() {
		t.Fatal("adjoin adjacency not symmetric")
	}
}

func TestAdjoinIDMapping(t *testing.T) {
	a := tAdjoin(paperHypergraph())
	if a.EdgeID(2) != 2 || a.NodeID(0) != 4 || a.NodeID(8) != 12 {
		t.Fatal("ID mapping wrong")
	}
	if !a.IsHyperedge(3) || a.IsHyperedge(4) {
		t.Fatal("IsHyperedge wrong at the boundary")
	}
}

func TestSplitResult(t *testing.T) {
	a := tAdjoin(paperHypergraph())
	all := make([]int, 13)
	for i := range all {
		all[i] = i * 10
	}
	edges, nodes := SplitResult(a, all)
	if len(edges) != 4 || len(nodes) != 9 {
		t.Fatalf("split lengths %d/%d", len(edges), len(nodes))
	}
	if edges[3] != 30 || nodes[0] != 40 || nodes[8] != 120 {
		t.Fatal("split contents wrong")
	}
}

func TestAdjoinRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(15, 25, 5, seed)
		back := tAdjoin(h).ToHypergraph()
		return back.Edges.Equal(h.Edges) && back.Nodes.Equal(h.Nodes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFromAdjoinEdgeList(t *testing.T) {
	// Manually adjoin the paper example: incidence (e, v) -> {e, 4+v}.
	h := paperHypergraph()
	el := sparse.NewEdgeList(13)
	for e, nbrs := range h.EdgeRange() {
		for _, v := range nbrs {
			el.Add(uint32(e), 4+v)
			el.Add(4+v, uint32(e))
		}
	}
	a, err := FromAdjoinEdgeList(el, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.ToHypergraph().Edges.Equal(h.Edges) {
		t.Fatal("FromAdjoinEdgeList round trip failed")
	}
}

func TestFromAdjoinEdgeListRejectsBadCounts(t *testing.T) {
	el := sparse.NewEdgeList(5)
	if _, err := FromAdjoinEdgeList(el, 2, 2); err == nil {
		t.Fatal("accepted mismatched vertex count")
	}
}

func TestAdjoinEmptyHypergraph(t *testing.T) {
	a := tAdjoin(FromSets(nil, 0))
	if a.NumVertices() != 0 {
		t.Fatal("empty adjoin not empty")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}
