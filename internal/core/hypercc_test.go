package core

import (
	"reflect"
	"testing"
	"testing/quick"
)

// hyperCCOracle computes components with sequential union-find over the
// shared index space.
func hyperCCOracle(h *Hypergraph) *HyperCCResult {
	ne, nv := h.NumEdges(), h.NumNodes()
	parent := make([]int, ne+nv)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra < rb {
			parent[rb] = ra
		} else if rb < ra {
			parent[ra] = rb
		}
	}
	for e := 0; e < ne; e++ {
		for _, v := range h.Edges.Row(e) {
			union(e, ne+int(v))
		}
	}
	r := &HyperCCResult{EdgeComp: make([]uint32, ne), NodeComp: make([]uint32, nv)}
	for e := 0; e < ne; e++ {
		r.EdgeComp[e] = uint32(find(e))
	}
	for v := 0; v < nv; v++ {
		r.NodeComp[v] = uint32(find(ne + v))
	}
	return r
}

func checkHyperCC(t *testing.T, h *Hypergraph) {
	t.Helper()
	want := hyperCCOracle(h)
	algs := map[string]func() *HyperCCResult{
		"hypercc":         func() *HyperCCResult { return tHyperCC(h) },
		"adjoin-afforest": func() *HyperCCResult { return tAdjoinCC(tAdjoin(h), AdjoinAfforest) },
		"adjoin-labelprop": func() *HyperCCResult {
			return tAdjoinCC(tAdjoin(h), AdjoinLabelPropagation)
		},
	}
	for name, fn := range algs {
		got := fn()
		if !reflect.DeepEqual(got.EdgeComp, want.EdgeComp) {
			t.Fatalf("%s edge components = %v, want %v", name, got.EdgeComp, want.EdgeComp)
		}
		if !reflect.DeepEqual(got.NodeComp, want.NodeComp) {
			t.Fatalf("%s node components = %v, want %v", name, got.NodeComp, want.NodeComp)
		}
	}
}

func TestHyperCCPaperExampleOneComponent(t *testing.T) {
	h := paperHypergraph()
	checkHyperCC(t, h)
	r := tHyperCC(h)
	if r.NumComponents() != 1 {
		t.Fatalf("NumComponents = %d, want 1", r.NumComponents())
	}
	for _, c := range r.EdgeComp {
		if c != 0 {
			t.Fatalf("labels not canonical: %v", r.EdgeComp)
		}
	}
}

func TestHyperCCTwoComponents(t *testing.T) {
	h := FromSets([][]uint32{{0, 1}, {1, 2}, {3, 4}}, 5)
	checkHyperCC(t, h)
	r := tHyperCC(h)
	if r.NumComponents() != 2 {
		t.Fatalf("NumComponents = %d, want 2", r.NumComponents())
	}
	if r.EdgeComp[0] != r.EdgeComp[1] || r.EdgeComp[0] == r.EdgeComp[2] {
		t.Fatalf("edge components = %v", r.EdgeComp)
	}
	if r.NodeComp[0] != r.NodeComp[2] || r.NodeComp[0] == r.NodeComp[3] {
		t.Fatalf("node components = %v", r.NodeComp)
	}
}

func TestHyperCCIsolatedNodes(t *testing.T) {
	// Nodes 2 and 3 are in no hyperedge: each is its own component.
	h := FromSets([][]uint32{{0, 1}}, 4)
	checkHyperCC(t, h)
	r := tHyperCC(h)
	if r.NumComponents() != 3 {
		t.Fatalf("NumComponents = %d, want 3", r.NumComponents())
	}
}

func TestHyperCCEmptyHyperedge(t *testing.T) {
	// An empty hyperedge forms a singleton component.
	h := FromSets([][]uint32{{}, {0}}, 1)
	checkHyperCC(t, h)
	if got := tHyperCC(h).NumComponents(); got != 2 {
		t.Fatalf("NumComponents = %d, want 2", got)
	}
}

func TestHyperCCRandomAgreement(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(30, 30, 4, seed)
		want := hyperCCOracle(h)
		got := tHyperCC(h)
		if !reflect.DeepEqual(got.EdgeComp, want.EdgeComp) || !reflect.DeepEqual(got.NodeComp, want.NodeComp) {
			return false
		}
		ad := tAdjoinCC(tAdjoin(h), AdjoinAfforest)
		return reflect.DeepEqual(ad.EdgeComp, want.EdgeComp) && reflect.DeepEqual(ad.NodeComp, want.NodeComp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHyperCCManyComponents(t *testing.T) {
	// 50 disjoint hyperedges.
	sets := make([][]uint32, 50)
	for i := range sets {
		sets[i] = []uint32{uint32(2 * i), uint32(2*i + 1)}
	}
	h := FromSets(sets, 100)
	checkHyperCC(t, h)
	if got := tHyperCC(h).NumComponents(); got != 50 {
		t.Fatalf("NumComponents = %d, want 50", got)
	}
}
