package core

import (
	"testing"
	"testing/quick"
)

// hyperBFSOracle runs a sequential BFS on the bipartite structure.
func hyperBFSOracle(h *Hypergraph, srcEdge int) *HyperBFSResult {
	r := newHyperBFSResult(h.NumEdges(), h.NumNodes())
	r.EdgeLevel[srcEdge] = 0
	type item struct {
		id     uint32
		isEdge bool
	}
	queue := []item{{uint32(srcEdge), true}}
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if it.isEdge {
			d := r.EdgeLevel[it.id]
			for _, v := range h.Edges.Row(int(it.id)) {
				if r.NodeLevel[v] == -1 {
					r.NodeLevel[v] = d + 1
					queue = append(queue, item{v, false})
				}
			}
		} else {
			d := r.NodeLevel[it.id]
			for _, e := range h.Nodes.Row(int(it.id)) {
				if r.EdgeLevel[e] == -1 {
					r.EdgeLevel[e] = d + 1
					queue = append(queue, item{e, true})
				}
			}
		}
	}
	return r
}

func checkHyperBFS(t *testing.T, h *Hypergraph, src int) {
	t.Helper()
	want := hyperBFSOracle(h, src)
	for name, fn := range map[string]func(*Hypergraph, int) *HyperBFSResult{
		"topdown":  tHyperBFSTopDown,
		"bottomup": tHyperBFSBottomUp,
	} {
		got := fn(h, src)
		for e := range want.EdgeLevel {
			if got.EdgeLevel[e] != want.EdgeLevel[e] {
				t.Fatalf("%s: edge level[%d] = %d, want %d", name, e, got.EdgeLevel[e], want.EdgeLevel[e])
			}
		}
		for v := range want.NodeLevel {
			if got.NodeLevel[v] != want.NodeLevel[v] {
				t.Fatalf("%s: node level[%d] = %d, want %d", name, v, got.NodeLevel[v], want.NodeLevel[v])
			}
		}
	}
	// tAdjoinBFS must agree too: levels on the adjoin graph count the same
	// bipartite hops.
	a := tAdjoin(h)
	got := tAdjoinBFS(a, src)
	for e := range want.EdgeLevel {
		if got.EdgeLevel[e] != want.EdgeLevel[e] {
			t.Fatalf("adjoin: edge level[%d] = %d, want %d", e, got.EdgeLevel[e], want.EdgeLevel[e])
		}
	}
	for v := range want.NodeLevel {
		if got.NodeLevel[v] != want.NodeLevel[v] {
			t.Fatalf("adjoin: node level[%d] = %d, want %d", v, got.NodeLevel[v], want.NodeLevel[v])
		}
	}
}

func TestHyperBFSPaperExample(t *testing.T) {
	h := paperHypergraph()
	checkHyperBFS(t, h, 0)
	r := tHyperBFSTopDown(h, 0)
	// From e0: nodes {0,1,2} at level 1; edges e1 (via node 2) and e3 (via
	// node 0) at level 2; their nodes at level 3; e2 at level 4.
	if r.EdgeLevel[0] != 0 || r.EdgeLevel[1] != 2 || r.EdgeLevel[3] != 2 || r.EdgeLevel[2] != 4 {
		t.Fatalf("edge levels = %v", r.EdgeLevel)
	}
	if r.NodeLevel[0] != 1 || r.NodeLevel[3] != 3 || r.NodeLevel[5] != 5 {
		t.Fatalf("node levels = %v", r.NodeLevel)
	}
	if r.ReachedEdges() != 4 || r.ReachedNodes() != 9 {
		t.Fatalf("reached %d edges, %d nodes", r.ReachedEdges(), r.ReachedNodes())
	}
}

func TestHyperBFSDisconnected(t *testing.T) {
	h := FromSets([][]uint32{{0, 1}, {2, 3}}, 4)
	checkHyperBFS(t, h, 0)
	r := tHyperBFSTopDown(h, 0)
	if r.EdgeLevel[1] != -1 || r.NodeLevel[2] != -1 {
		t.Fatal("second component should be unreachable")
	}
	if r.ReachedEdges() != 1 || r.ReachedNodes() != 2 {
		t.Fatal("reach counts wrong")
	}
}

func TestHyperBFSFromOtherSources(t *testing.T) {
	h := paperHypergraph()
	for src := 0; src < h.NumEdges(); src++ {
		checkHyperBFS(t, h, src)
	}
}

func TestHyperBFSRandomAgreement(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(25, 40, 6, seed)
		want := hyperBFSOracle(h, 0)
		for _, fn := range []func(*Hypergraph, int) *HyperBFSResult{tHyperBFSTopDown, tHyperBFSBottomUp} {
			got := fn(h, 0)
			for e := range want.EdgeLevel {
				if got.EdgeLevel[e] != want.EdgeLevel[e] {
					return false
				}
			}
			for v := range want.NodeLevel {
				if got.NodeLevel[v] != want.NodeLevel[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHyperBFSSingleEdge(t *testing.T) {
	h := FromSets([][]uint32{{0, 1, 2}}, 3)
	r := tHyperBFSTopDown(h, 0)
	for v := 0; v < 3; v++ {
		if r.NodeLevel[v] != 1 {
			t.Fatalf("node level = %v", r.NodeLevel)
		}
	}
}
