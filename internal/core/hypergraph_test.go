package core

import (
	"math/rand"
	"reflect"
	"testing"

	"nwhy/internal/sparse"
)

// paperHypergraph returns the running example used throughout the paper's
// figures: hyperedges e0={0,1,2}, e1={2,3,4}, e2={4,5,6}, e3={0,6,7,8}.
func paperHypergraph() *Hypergraph {
	return FromSets([][]uint32{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6},
		{0, 6, 7, 8},
	}, 9)
}

// randomHypergraph generates a random hypergraph with ne hyperedges over nv
// hypernodes, each hyperedge of size 1..maxSize.
func randomHypergraph(ne, nv, maxSize int, seed int64) *Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint32, ne)
	for e := range sets {
		size := 1 + rng.Intn(maxSize)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(rng.Intn(nv))] = true
		}
		for v := range seen {
			sets[e] = append(sets[e], v)
		}
	}
	return FromSets(sets, nv)
}

func TestPaperHypergraphShape(t *testing.T) {
	h := paperHypergraph()
	if h.NumEdges() != 4 || h.NumNodes() != 9 || h.NumIncidences() != 13 {
		t.Fatalf("shape: %d edges, %d nodes, %d incidences", h.NumEdges(), h.NumNodes(), h.NumIncidences())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h.EdgeIncidence(3), []uint32{0, 6, 7, 8}) {
		t.Fatalf("e3 = %v", h.EdgeIncidence(3))
	}
	if !reflect.DeepEqual(h.NodeIncidence(4), []uint32{1, 2}) {
		t.Fatalf("node 4 incidence = %v", h.NodeIncidence(4))
	}
	if h.EdgeDegree(3) != 4 || h.NodeDegree(0) != 2 {
		t.Fatal("degrees wrong")
	}
}

func TestDualSwapsRoles(t *testing.T) {
	h := paperHypergraph()
	d := h.Dual()
	if d.NumEdges() != 9 || d.NumNodes() != 4 {
		t.Fatalf("dual shape %dx%d", d.NumEdges(), d.NumNodes())
	}
	if !reflect.DeepEqual(d.EdgeIncidence(0), []uint32{0, 3}) {
		t.Fatalf("dual e0 = %v", d.EdgeIncidence(0))
	}
	dd := d.Dual()
	if dd.Edges != h.Edges || dd.Nodes != h.Nodes {
		t.Fatal("dual of dual should be the original structure")
	}
}

func TestFromSetsDedupsRepeatedMembers(t *testing.T) {
	h := FromSets([][]uint32{{1, 1, 2}}, 3)
	if !reflect.DeepEqual(h.EdgeIncidence(0), []uint32{1, 2}) {
		t.Fatalf("incidence = %v", h.EdgeIncidence(0))
	}
}

func TestFromSetsInfersNodeCount(t *testing.T) {
	h := FromSets([][]uint32{{5}, {2, 7}}, -1)
	if h.NumNodes() != 8 {
		t.Fatalf("NumNodes = %d, want 8", h.NumNodes())
	}
}

func TestEdgeRangeIteratesAll(t *testing.T) {
	h := paperHypergraph()
	total := 0
	count := 0
	for e, nbrs := range h.EdgeRange() {
		if e != count {
			t.Fatalf("edge IDs out of order: %d at position %d", e, count)
		}
		count++
		total += len(nbrs)
	}
	if count != 4 || total != 13 {
		t.Fatalf("EdgeRange visited %d edges, %d incidences", count, total)
	}
}

func TestEdgeRangeEarlyBreak(t *testing.T) {
	h := paperHypergraph()
	count := 0
	for range h.EdgeRange() {
		count++
		if count == 2 {
			break
		}
	}
	if count != 2 {
		t.Fatalf("early break failed: %d", count)
	}
}

func TestNodeRangeIteratesAll(t *testing.T) {
	h := paperHypergraph()
	count := 0
	for _, nbrs := range h.NodeRange() {
		count += len(nbrs)
	}
	if count != 13 {
		t.Fatalf("NodeRange incidences = %d", count)
	}
}

func TestEdgeNeighbors(t *testing.T) {
	h := paperHypergraph()
	// e0 shares node 2 with e1 and node 0 with e3.
	if got := h.EdgeNeighbors(0); !reflect.DeepEqual(got, []uint32{1, 3}) {
		t.Fatalf("EdgeNeighbors(0) = %v", got)
	}
	// e2 shares node 4 with e1 and node 6 with e3.
	if got := h.EdgeNeighbors(2); !reflect.DeepEqual(got, []uint32{1, 3}) {
		t.Fatalf("EdgeNeighbors(2) = %v", got)
	}
}

func TestNodeNeighbors(t *testing.T) {
	h := paperHypergraph()
	// Node 0 is in e0 {0,1,2} and e3 {0,6,7,8}: neighbors 1,2,6,7,8.
	if got := h.NodeNeighbors(0); !reflect.DeepEqual(got, []uint32{1, 2, 6, 7, 8}) {
		t.Fatalf("NodeNeighbors(0) = %v", got)
	}
}

func TestComputeStatsPaperExample(t *testing.T) {
	s := ComputeStats(paperHypergraph())
	if s.NumNodes != 9 || s.NumEdges != 4 {
		t.Fatalf("stats %+v", s)
	}
	if s.MaxEdgeDegree != 4 || s.MaxNodeDegree != 2 {
		t.Fatalf("max degrees %+v", s)
	}
	if s.AvgEdgeDegree != 13.0/4 || s.AvgNodeDegree != 13.0/9 {
		t.Fatalf("avg degrees %+v", s)
	}
}

func TestValidateCatchesMismatchedPair(t *testing.T) {
	h := paperHypergraph()
	bad := &Hypergraph{Edges: h.Edges, Nodes: h.Nodes.Transpose()} // wrong shape
	if bad.Validate() == nil {
		t.Fatal("Validate accepted dimension mismatch")
	}
	other := FromSets([][]uint32{{0}, {1, 2}, {3}, {4}}, 9)
	bad2 := &Hypergraph{Edges: h.Edges, Nodes: other.Nodes}
	if bad2.Validate() == nil {
		t.Fatal("Validate accepted non-transpose pair")
	}
}

func TestEmptyHypergraph(t *testing.T) {
	h := FromSets(nil, 0)
	if h.NumEdges() != 0 || h.NumNodes() != 0 {
		t.Fatal("empty hypergraph not empty")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(h)
	if s.AvgEdgeDegree != 0 || s.MaxNodeDegree != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestSingletonAndIsolated(t *testing.T) {
	// Hyperedge {3} over 5 nodes: nodes 0,1,2,4 isolated.
	h := FromSets([][]uint32{{3}}, 5)
	if h.NodeDegree(0) != 0 || h.NodeDegree(3) != 1 {
		t.Fatal("degrees wrong with isolated nodes")
	}
	if got := h.EdgeNeighbors(0); len(got) != 0 {
		t.Fatalf("singleton edge has neighbors %v", got)
	}
}

func TestHypergraphFromBiEdgeListMatchesFromSets(t *testing.T) {
	bel := sparse.NewBiEdgeList(2, 4)
	bel.Add(0, 1)
	bel.Add(0, 3)
	bel.Add(1, 0)
	a := FromBiEdgeList(bel)
	b := FromSets([][]uint32{{1, 3}, {0}}, 4)
	if !a.Edges.Equal(b.Edges) || !a.Nodes.Equal(b.Nodes) {
		t.Fatal("construction paths disagree")
	}
}
