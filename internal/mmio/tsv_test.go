package mmio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadTSV(t *testing.T) {
	in := "# comment\n0 0\n0\t1\n% also comment\n\n1 1\n2 5\n"
	bel, err := ReadTSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if bel.Len() != 4 || bel.N0 != 3 || bel.N1 != 6 {
		t.Fatalf("shape %d/%d/%d", bel.N0, bel.N1, bel.Len())
	}
}

func TestReadTSVRejectsBad(t *testing.T) {
	for name, in := range map[string]string{
		"one field": "0\n",
		"non-int":   "a b\n",
		"negative":  "-1 2\n",
	} {
		if _, err := ReadTSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestTSVRoundTrip(t *testing.T) {
	bel, err := ReadBiEdgeList(strings.NewReader(paperMM))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTSV(&buf, bel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Edges, bel.Edges) {
		t.Fatal("TSV round trip changed edges")
	}
}

func TestReadTSVFileMissing(t *testing.T) {
	if _, err := ReadTSVFile("/nonexistent/x.tsv"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func FuzzReadTSV(f *testing.F) {
	f.Add("0 0\n1 2\n")
	f.Add("# c\n\n3\t4\n")
	f.Fuzz(func(t *testing.T, in string) {
		bel, err := ReadTSV(strings.NewReader(in))
		if err == nil && bel.Validate() != nil {
			t.Fatalf("accepted input produced invalid edge list: %q", in)
		}
	})
}
