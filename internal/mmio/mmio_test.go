package mmio

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"math/rand"

	"nwhy/internal/core"
	"nwhy/internal/sparse"
)

const paperMM = `%%MatrixMarket matrix coordinate pattern general
% the running example: 4 hyperedges over 9 hypernodes
4 9 13
1 1
1 2
1 3
2 3
2 4
2 5
3 5
3 6
3 7
4 7
4 8
4 9
4 1
`

func TestReadBiEdgeListPaperExample(t *testing.T) {
	bel, err := ReadBiEdgeList(strings.NewReader(paperMM))
	if err != nil {
		t.Fatal(err)
	}
	if bel.N0 != 4 || bel.N1 != 9 || bel.Len() != 13 {
		t.Fatalf("shape %d/%d/%d", bel.N0, bel.N1, bel.Len())
	}
	h := core.FromBiEdgeList(bel)
	if !reflect.DeepEqual(h.EdgeIncidence(0), []uint32{0, 1, 2}) {
		t.Fatalf("e0 = %v", h.EdgeIncidence(0))
	}
	if !reflect.DeepEqual(h.EdgeIncidence(3), []uint32{0, 6, 7, 8}) {
		t.Fatalf("e3 = %v", h.EdgeIncidence(3))
	}
}

func TestReadWeighted(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 3 2
1 3 2.5
2 1 -1
`
	bel, err := ReadBiEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if bel.Weights == nil || bel.Weights[0] != 2.5 || bel.Weights[1] != -1 {
		t.Fatalf("weights = %v", bel.Weights)
	}
}

func TestReadIntegerField(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"
	bel, err := ReadBiEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if bel.Weights[0] != 7 {
		t.Fatalf("weight = %v", bel.Weights[0])
	}
}

func TestReadRejectsBadInputs(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad banner":     "%%MatrixMarket matrix array real general\n1 1 1\n",
		"bad field":      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n",
		"symmetric":      "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 2\n",
		"missing size":   "%%MatrixMarket matrix coordinate pattern general\n",
		"bad size line":  "%%MatrixMarket matrix coordinate pattern general\n1 2\n",
		"count mismatch": "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n",
		"out of range":   "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"bad entry":      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\nx y\n",
		"missing value":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		// Trailing garbage columns must be rejected, not silently ignored.
		"extra field pattern":  "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 9\n",
		"extra field weighted": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 2.5 junk\n",
		"extra fields many":    "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 2 3 4\n",
		"size line extra":      "%%MatrixMarket matrix coordinate pattern general\n2 2 1 7\n1 1\n",
		"bad value":            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.2.3\n",
		"sign only entry":      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n+ 1\n",
		"huge dimension":       "%%MatrixMarket matrix coordinate pattern general\n99999999999999 2 1\n1 1\n",
	}
	for name, in := range cases {
		if _, err := ReadBiEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bel := sparse.NewBiEdgeList(1+rng.Intn(20), 1+rng.Intn(20))
		m := rng.Intn(100)
		seen := map[sparse.Edge]bool{}
		for i := 0; i < m; i++ {
			e := sparse.Edge{U: uint32(rng.Intn(bel.N0)), V: uint32(rng.Intn(bel.N1))}
			if !seen[e] {
				seen[e] = true
				bel.Edges = append(bel.Edges, e)
			}
		}
		var buf bytes.Buffer
		if err := WriteBiEdgeList(&buf, bel); err != nil {
			return false
		}
		back, err := ReadBiEdgeList(&buf)
		if err != nil {
			return false
		}
		if back.N0 != bel.N0 || back.N1 != bel.N1 || len(back.Edges) != len(bel.Edges) {
			return false
		}
		for i := range back.Edges {
			if back.Edges[i] != bel.Edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteReadWeightedRoundTrip(t *testing.T) {
	bel := sparse.NewBiEdgeList(2, 2)
	bel.AddWeighted(0, 1, 3.5)
	bel.AddWeighted(1, 0, -2)
	var buf bytes.Buffer
	if err := WriteBiEdgeList(&buf, bel); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBiEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Weights, bel.Weights) {
		t.Fatalf("weights = %v", back.Weights)
	}
}

func TestReadAdjoin(t *testing.T) {
	el, ne, nv, err := ReadAdjoin(strings.NewReader(paperMM))
	if err != nil {
		t.Fatal(err)
	}
	if ne != 4 || nv != 9 || el.NumVertices != 13 {
		t.Fatalf("adjoin shape %d/%d/%d", ne, nv, el.NumVertices)
	}
	if el.Len() != 26 {
		t.Fatalf("adjoin edges = %d, want 26 (both directions)", el.Len())
	}
	a, err := core.FromAdjoinEdgeList(el, ne, nv)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same hypergraph as the bipartite read.
	bel, _ := ReadBiEdgeList(strings.NewReader(paperMM))
	h := core.FromBiEdgeList(bel)
	if !a.ToHypergraph().Edges.Equal(h.Edges) {
		t.Fatal("adjoin read disagrees with bipartite read")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.mtx")
	bel := sparse.NewBiEdgeList(3, 3)
	bel.Add(0, 2)
	bel.Add(2, 0)
	if err := WriteHypergraphFile(path, bel); err != nil {
		t.Fatal(err)
	}
	back, err := GraphReader(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Edges, bel.Edges) {
		t.Fatal("file round trip failed")
	}
	el, ne, nv, err := GraphReaderAdjoin(path)
	if err != nil {
		t.Fatal(err)
	}
	if ne != 3 || nv != 3 || el.Len() != 4 {
		t.Fatalf("adjoin file read: %d/%d/%d", ne, nv, el.Len())
	}
}

func TestGraphReaderMissingFile(t *testing.T) {
	if _, err := GraphReader("/nonexistent/x.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, _, _, err := GraphReaderAdjoin("/nonexistent/x.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate pattern general\n% c1\n\n% c2\n2 2 1\n\n% inline\n1 2\n"
	bel, err := ReadBiEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if bel.Len() != 1 {
		t.Fatalf("Len = %d", bel.Len())
	}
}
