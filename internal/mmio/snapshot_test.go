package mmio

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"nwhy/internal/gen"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

func snapshotBytes(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSnapshotBiEdgeListRoundTrip(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	for _, weighted := range []bool{false, true} {
		bel := belFromHypergraph(gen.BipartitePowerLaw(300, 200, 1500, 1.7, 1), weighted, 3)
		data := snapshotBytes(t, &Snapshot{Bel: bel})
		back, err := ReadSnapshot(eng, data)
		if err != nil {
			t.Fatalf("weighted=%v: %v", weighted, err)
		}
		if back.Bel == nil || back.CSR != nil {
			t.Fatal("wrong kind decoded")
		}
		if !belEqual(bel, back.Bel) {
			t.Fatalf("weighted=%v: round trip changed the list", weighted)
		}
	}
}

func TestSnapshotCSRRoundTrip(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	for _, weighted := range []bool{false, true} {
		bel := belFromHypergraph(gen.BipartitePowerLaw(300, 200, 1500, 1.7, 2), weighted, 4)
		csr := sparse.FromPairs(bel.N0, bel.N1, bel.Edges, bel.Weights)
		data := snapshotBytes(t, &Snapshot{CSR: csr})
		back, err := ReadSnapshot(eng, data)
		if err != nil {
			t.Fatalf("weighted=%v: %v", weighted, err)
		}
		if back.CSR == nil || back.Bel != nil {
			t.Fatal("wrong kind decoded")
		}
		if !csr.Equal(back.CSR) {
			t.Fatalf("weighted=%v: round trip changed the CSR", weighted)
		}
		if weighted && !reflect.DeepEqual(csr.Val, back.CSR.Val) {
			t.Fatal("round trip changed CSR values")
		}
	}
}

// Text parse -> snapshot -> load must reproduce a byte-identical CSR — the
// acceptance-criteria round trip.
func TestTextSnapshotLoadByteIdenticalCSR(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	bel, err := ReadBiEdgeList(strings.NewReader(paperMM))
	if err != nil {
		t.Fatal(err)
	}
	bel.Dedup()
	csr := sparse.FromPairs(bel.N0, bel.N1, bel.Edges, bel.Weights)
	back, err := ReadSnapshot(eng, snapshotBytes(t, &Snapshot{CSR: csr}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(csr.RowPtr, back.CSR.RowPtr) || !reflect.DeepEqual(csr.Col, back.CSR.Col) {
		t.Fatal("snapshot CSR storage not byte-identical to source")
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	dir := t.TempDir()
	path := filepath.Join(dir, "h.nwhyb")
	bel := belFromHypergraph(gen.Uniform(20, 30, 3, 6), false, 0)
	if err := SaveSnapshot(path, &Snapshot{Bel: bel}); err != nil {
		t.Fatal(err)
	}
	if !IsSnapshotFile(path) {
		t.Fatal("IsSnapshotFile = false on a snapshot")
	}
	back, err := LoadSnapshot(eng, path)
	if err != nil {
		t.Fatal(err)
	}
	if !belEqual(bel, back.Bel) {
		t.Fatal("file round trip changed the list")
	}
	mtx := filepath.Join(dir, "h.mtx")
	if err := WriteHypergraphFile(mtx, bel); err != nil {
		t.Fatal(err)
	}
	if IsSnapshotFile(mtx) {
		t.Fatal("IsSnapshotFile = true on a Matrix Market file")
	}
	if IsSnapshotFile(filepath.Join(dir, "missing")) {
		t.Fatal("IsSnapshotFile = true on a missing file")
	}
}

// Every single-byte corruption of a small snapshot must be rejected (or, if
// accepted, must decode only via a checksum collision — with CRC32 over
// these sizes single-byte flips always change the sum, so acceptance is a
// bug outright).
func TestSnapshotRejectsCorruption(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	bel := belFromHypergraph(gen.Uniform(6, 8, 3, 7), true, 1)
	good := snapshotBytes(t, &Snapshot{Bel: bel})
	if _, err := ReadSnapshot(eng, good); err != nil {
		t.Fatal(err)
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x41
		if _, err := ReadSnapshot(eng, bad); err == nil {
			t.Fatalf("accepted snapshot with byte %d corrupted", i)
		}
	}
	for _, cut := range []int{len(good) - 1, len(good) / 2, snapHeaderSize, 8, 0} {
		if _, err := ReadSnapshot(eng, good[:cut]); err == nil {
			t.Fatalf("accepted snapshot truncated to %d bytes", cut)
		}
	}
}

// A forged header declaring a huge entry count must fail fast on the size
// check, not attempt the allocation.
func TestSnapshotRejectsForgedDims(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	bel := belFromHypergraph(gen.Uniform(4, 4, 2, 3), false, 0)
	good := snapshotBytes(t, &Snapshot{Bel: bel})
	forge := func(mut func(h []byte)) []byte {
		bad := append([]byte(nil), good...)
		mut(bad)
		binary.LittleEndian.PutUint32(bad[36:40], crc32.ChecksumIEEE(bad[:36]))
		return bad
	}
	huge := forge(func(h []byte) { binary.LittleEndian.PutUint64(h[28:36], 1<<60) })
	if _, err := ReadSnapshot(eng, huge); err == nil {
		t.Fatal("accepted snapshot declaring 2^60 entries")
	}
	negative := forge(func(h []byte) { binary.LittleEndian.PutUint64(h[12:20], ^uint64(0)) })
	if _, err := ReadSnapshot(eng, negative); err == nil {
		t.Fatal("accepted snapshot with negative dimension")
	}
	badKind := forge(func(h []byte) { h[10] = 9 })
	if _, err := ReadSnapshot(eng, badKind); err == nil {
		t.Fatal("accepted snapshot with unknown kind")
	}
	badVersion := forge(func(h []byte) { binary.LittleEndian.PutUint16(h[8:10], 99) })
	if _, err := ReadSnapshot(eng, badVersion); err == nil {
		t.Fatal("accepted snapshot with unknown version")
	}
	badFlags := forge(func(h []byte) { h[11] = 0xFE })
	if _, err := ReadSnapshot(eng, badFlags); err == nil {
		t.Fatal("accepted snapshot with unknown flags")
	}
}

// An unsorted or inconsistent CSR payload must be rejected by the
// AdoptSorted validation even though both checksums verify.
func TestSnapshotRejectsInvalidCSRPayload(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	csr := sparse.FromPairs(2, 4, []sparse.Edge{{U: 0, V: 3}, {U: 0, V: 1}, {U: 1, V: 2}}, nil)
	good := snapshotBytes(t, &Snapshot{CSR: csr})
	// Swap row 0's two (sorted) columns in the payload and re-checksum.
	bad := append([]byte(nil), good...)
	colOff := snapHeaderSize + 3*8
	c0 := binary.LittleEndian.Uint32(bad[colOff:])
	c1 := binary.LittleEndian.Uint32(bad[colOff+4:])
	binary.LittleEndian.PutUint32(bad[colOff:], c1)
	binary.LittleEndian.PutUint32(bad[colOff+4:], c0)
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[snapHeaderSize:len(bad)-4]))
	if _, err := ReadSnapshot(eng, bad); err == nil {
		t.Fatal("accepted CSR snapshot with unsorted row")
	}
}

func TestSnapshotCancellation(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ceng := eng.WithContext(ctx)
	bel := belFromHypergraph(gen.BipartitePowerLaw(400, 300, 2400, 1.6, 5), false, 0)
	data := snapshotBytes(t, &Snapshot{Bel: bel})
	if _, err := ReadSnapshot(ceng, data); err != context.Canceled {
		t.Fatalf("cancelled snapshot load returned %v, want context.Canceled", err)
	}
}

func TestWriteSnapshotRejectsAmbiguous(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{}); err == nil {
		t.Fatal("accepted empty snapshot")
	}
	bel := sparse.NewBiEdgeList(1, 1)
	csr := sparse.FromPairs(1, 1, nil, nil)
	if err := WriteSnapshot(&buf, &Snapshot{Bel: bel, CSR: csr}); err == nil {
		t.Fatal("accepted snapshot with both kinds set")
	}
}

func TestWriteSnapshotRejectsInvalidInput(t *testing.T) {
	var buf bytes.Buffer
	bad := &sparse.BiEdgeList{N0: 1, N1: 1, Edges: []sparse.Edge{{U: 5, V: 5}}}
	if err := WriteSnapshot(&buf, &Snapshot{Bel: bad}); err == nil {
		t.Fatal("snapshotted an out-of-range edge list")
	}
}

// FuzzReadSnapshot drives arbitrary bytes through the snapshot decoder: it
// must never panic or over-allocate, and anything it accepts must satisfy
// the structural invariants.
func FuzzReadSnapshot(f *testing.F) {
	belSeed := &sparse.BiEdgeList{N0: 2, N1: 3, Edges: []sparse.Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, &Snapshot{Bel: belSeed}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	csrSeed := sparse.FromPairs(2, 3, belSeed.Edges, []float64{1, 2})
	if err := WriteSnapshot(&buf, &Snapshot{CSR: csrSeed}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(snapshotMagic))
	eng := parallel.SharedEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := ReadSnapshot(eng, data)
		if err != nil {
			return
		}
		switch {
		case snap.Bel != nil:
			if err := snap.Bel.Validate(); err != nil {
				t.Fatalf("accepted snapshot decoded invalid list: %v", err)
			}
		case snap.CSR != nil:
			if err := snap.CSR.Validate(); err != nil {
				t.Fatalf("accepted snapshot decoded invalid CSR: %v", err)
			}
		default:
			t.Fatal("accepted snapshot decoded nothing")
		}
	})
}
