package mmio

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// belFromHypergraph flattens a hypergraph's incidence CSR back into a
// bipartite edge list, optionally attaching synthetic weights.
func belFromHypergraph(h *core.Hypergraph, weighted bool, seed int64) *sparse.BiEdgeList {
	rng := rand.New(rand.NewSource(seed))
	bel := sparse.NewBiEdgeList(h.NumEdges(), h.NumNodes())
	for e := 0; e < h.NumEdges(); e++ {
		for _, v := range h.EdgeIncidence(e) {
			if weighted {
				bel.AddWeighted(uint32(e), v, float64(rng.Intn(2000)-1000)/16)
			} else {
				bel.Add(uint32(e), v)
			}
		}
	}
	bel.N0, bel.N1 = h.NumEdges(), h.NumNodes()
	return bel
}

func belEqual(a, b *sparse.BiEdgeList) bool {
	return a.N0 == b.N0 && a.N1 == b.N1 &&
		reflect.DeepEqual(a.Edges, b.Edges) && reflect.DeepEqual(a.Weights, b.Weights)
}

// The tentpole parity property: on round-tripped internal/gen hypergraphs,
// the chunked parallel reader returns exactly what the serial reader does.
func TestParallelSerialParityOnGenerated(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	graphs := []*core.Hypergraph{
		gen.Uniform(40, 60, 4, 1),
		gen.BipartitePowerLaw(200, 150, 1200, 1.8, 2),
		gen.BipartitePowerLaw(1000, 700, 6000, 1.5, 3),
	}
	for gi, h := range graphs {
		for _, weighted := range []bool{false, true} {
			bel := belFromHypergraph(h, weighted, int64(gi))
			var buf bytes.Buffer
			if err := WriteBiEdgeList(&buf, bel); err != nil {
				t.Fatal(err)
			}
			serial, err := ReadBiEdgeList(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("graph %d weighted=%v: serial: %v", gi, weighted, err)
			}
			par, err := ReadBiEdgeListParallel(eng, buf.Bytes())
			if err != nil {
				t.Fatalf("graph %d weighted=%v: parallel: %v", gi, weighted, err)
			}
			if !belEqual(serial, par) {
				t.Fatalf("graph %d weighted=%v: parallel result differs from serial", gi, weighted)
			}
		}
	}
}

// Nasty-formatting inputs both readers must agree on, value for value:
// CRLF endings, comments and blanks between entries, padded lines, and the
// float spellings that straddle the fast/slow parse paths.
func TestParallelSerialParityFormatting(t *testing.T) {
	eng := parallel.NewEngine(3)
	defer eng.Close()
	inputs := []string{
		"%%MatrixMarket matrix coordinate pattern general\r\n% c\r\n3 3 2\r\n1 1\r\n3 3\r\n",
		"%%MatrixMarket matrix coordinate pattern general\n3 3 2\n\n% mid\n  1\t2  \n3 1\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 4\n1 1 .5\n1 2 1e3\n2 1 -2.25e-2\n2 2 184467440737095516150\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 5.\n1 2 +0.125\n2 2 9007199254740993\n",
		"%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 1 7\n2 2 -3\n",
		"%%MatrixMarket matrix coordinate pattern general\n1 1 1\n1 1", // no trailing newline
	}
	for i, in := range inputs {
		serial, serr := ReadBiEdgeList(strings.NewReader(in))
		par, perr := ReadBiEdgeListParallel(eng, []byte(in))
		if (serr == nil) != (perr == nil) {
			t.Fatalf("input %d: serial err %v, parallel err %v", i, serr, perr)
		}
		if serr != nil {
			continue
		}
		if !belEqual(serial, par) {
			t.Fatalf("input %d: results differ\nserial: %+v\nparallel: %+v", i, serial, par)
		}
	}
}

// Malformed inputs must fail in both readers with the same message.
func TestParallelSerialParityErrors(t *testing.T) {
	eng := parallel.NewEngine(3)
	defer eng.Close()
	inputs := []string{
		"",
		"%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n",
		"%%MatrixMarket matrix coordinate pattern general\n1 2\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n",
		"%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 1 9\n",
		"%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 zebra\n",
	}
	for i, in := range inputs {
		_, serr := ReadBiEdgeList(strings.NewReader(in))
		_, perr := ReadBiEdgeListParallel(eng, []byte(in))
		if serr == nil || perr == nil {
			t.Fatalf("input %d: expected both to fail, serial %v parallel %v", i, serr, perr)
		}
		if serr.Error() != perr.Error() {
			t.Fatalf("input %d: error mismatch\nserial:   %v\nparallel: %v", i, serr, perr)
		}
	}
}

func TestParallelReaderCancellation(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ceng := eng.WithContext(ctx)
	bel := belFromHypergraph(gen.BipartitePowerLaw(500, 300, 3000, 1.6, 9), false, 0)
	var buf bytes.Buffer
	if err := WriteBiEdgeList(&buf, bel); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBiEdgeListParallel(ceng, buf.Bytes()); err != context.Canceled {
		t.Fatalf("cancelled parse returned %v, want context.Canceled", err)
	}
}

func TestGraphReaderParallelFile(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	dir := t.TempDir()
	path := dir + "/h.mtx"
	bel := belFromHypergraph(gen.Uniform(10, 12, 3, 4), false, 0)
	if err := WriteHypergraphFile(path, bel); err != nil {
		t.Fatal(err)
	}
	got, err := GraphReaderParallel(eng, path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GraphReader(path)
	if err != nil {
		t.Fatal(err)
	}
	if !belEqual(got, want) {
		t.Fatal("file parallel read differs from serial")
	}
	if _, err := GraphReaderParallel(eng, dir+"/missing.mtx"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestChunkBoundariesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		body := make([]byte, n)
		for i := range body {
			if rng.Intn(6) == 0 {
				body[i] = '\n'
			} else {
				body[i] = 'a'
			}
		}
		target := 1 + rng.Intn(8)
		bounds := chunkBoundaries(body, target)
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			t.Fatalf("endpoints %v for n=%d", bounds, n)
		}
		for k := 1; k < len(bounds); k++ {
			if bounds[k] <= bounds[k-1] && !(k == len(bounds)-1 && n == 0) {
				t.Fatalf("not strictly increasing: %v", bounds)
			}
			if k < len(bounds)-1 && body[bounds[k]-1] != '\n' {
				t.Fatalf("boundary %d not newline-aligned in %q", bounds[k], body)
			}
		}
	}
}

// Exhaustive float spelling parity between the fast path and strconv, over
// generated mantissa/exponent shapes.
func TestParseFloatBytesMatchesStrconv(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	specials := []string{"0", "-0", "0.0", "1", "5.", ".5", "1e0", "1E5", "1e-5", "1e+22", "1e-22",
		"1e23", "1e-23", "9007199254740991", "9007199254740993", "1.7976931348623157e308",
		"5e-324", "inf", "-inf", "nan", "Infinity", "1e400", "1e-400", "3.14159265358979323846",
		"184467440737095516150.5", "0.1", "0.2", "0.3", "123456.789e-10"}
	for trial := 0; trial < 3000; trial++ {
		var s string
		if trial < len(specials) {
			s = specials[trial]
		} else {
			s = fmt.Sprintf("%d.%de%d", rng.Intn(1<<30), rng.Intn(1<<20), rng.Intn(60)-30)
			if rng.Intn(2) == 0 {
				s = "-" + s
			}
		}
		got, ok := parseFloatBytes([]byte(s))
		want, wok := parseFloatSlow([]byte(s))
		if ok != wok {
			t.Fatalf("%q: accept mismatch fast=%v strconv=%v", s, ok, wok)
		}
		if ok && got != want && !(got != got && want != want) { // NaN == NaN
			t.Fatalf("%q: fast %v (%b) != strconv %v (%b)", s, got, got, want, want)
		}
	}
}

func BenchmarkReadSerial(b *testing.B)   { benchRead(b, false) }
func BenchmarkReadParallel(b *testing.B) { benchRead(b, true) }

func benchRead(b *testing.B, par bool) {
	eng := parallel.NewEngine(0)
	defer eng.Close()
	bel := belFromHypergraph(gen.BipartitePowerLaw(20000, 15000, 120000, 1.6, 42), false, 0)
	var buf bytes.Buffer
	if err := WriteBiEdgeList(&buf, bel); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if par {
			_, err = ReadBiEdgeListParallel(eng, data)
		} else {
			_, err = ReadBiEdgeList(bytes.NewReader(data))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}
