// Package mmio reads and writes hypergraphs in Matrix Market coordinate
// format, the interchange format the paper's graph_reader /
// graph_reader_adjoin APIs consume. A hypergraph's incidence matrix is a
// rectangular pattern (or real/integer) matrix: rows are hyperedges, columns
// are hypernodes, and each stored entry is one incidence.
package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"nwhy/internal/sparse"
)

// Header describes a Matrix Market file's declared type.
type Header struct {
	Field    string // pattern | real | integer
	Symmetry string // general | symmetric
}

// parseHeader validates the banner line.
func parseHeader(line string) (Header, error) {
	fields := strings.Fields(strings.ToLower(line))
	if len(fields) != 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" || fields[2] != "coordinate" {
		return Header{}, fmt.Errorf("mmio: unsupported banner %q (want %%%%MatrixMarket matrix coordinate ...)", line)
	}
	h := Header{Field: fields[3], Symmetry: fields[4]}
	switch h.Field {
	case "pattern", "real", "integer":
	default:
		return Header{}, fmt.Errorf("mmio: unsupported field %q", h.Field)
	}
	switch h.Symmetry {
	case "general", "symmetric":
	default:
		return Header{}, fmt.Errorf("mmio: unsupported symmetry %q", h.Symmetry)
	}
	return h, nil
}

// ReadBiEdgeList parses a Matrix Market stream as a hypergraph incidence
// matrix: entry (i, j) declares hyperedge i-1 incident on hypernode j-1.
// Real/integer values are kept as incidence weights; pattern files produce
// an unweighted list. Symmetric files are rejected (incidence matrices are
// rectangular and general). Entry lines must have exactly the declared field
// count — two indices, plus a value for non-pattern files; extra columns are
// an error, not ignored. It shares its byte-level scanners (scan.go) with
// ReadBiEdgeListParallel, so the two readers accept the same language.
func ReadBiEdgeList(r io.Reader) (*sparse.BiEdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	header, rows, cols, nnz, err := readPreamble(sc)
	if err != nil {
		return nil, err
	}
	if header.Symmetry != "general" {
		return nil, fmt.Errorf("mmio: hypergraph incidence must be general, got %s", header.Symmetry)
	}
	bel := sparse.NewBiEdgeList(rows, cols)
	bel.Edges = make([]sparse.Edge, 0, initialEdgeCap(nnz))
	weighted := header.Field != "pattern"
	if weighted {
		bel.Weights = make([]float64, 0, initialEdgeCap(nnz))
	}
	for sc.Scan() {
		line := trimASCII(sc.Bytes())
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		i, j, w, ok := parseEntryBytes(line, weighted)
		if !ok {
			return nil, fmt.Errorf("mmio: bad entry %q", line)
		}
		if i < 1 || i > int64(rows) || j < 1 || j > int64(cols) {
			return nil, fmt.Errorf("mmio: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		bel.Edges = append(bel.Edges, sparse.Edge{U: uint32(i - 1), V: uint32(j - 1)})
		if weighted {
			bel.Weights = append(bel.Weights, w)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	if len(bel.Edges) != nnz {
		return nil, fmt.Errorf("mmio: header declared %d entries, found %d", nnz, len(bel.Edges))
	}
	return bel, nil
}

func readPreamble(sc *bufio.Scanner) (Header, int, int, int, error) {
	if !sc.Scan() {
		return Header{}, 0, 0, 0, fmt.Errorf("mmio: empty input")
	}
	header, err := parseHeader(sc.Text())
	if err != nil {
		return Header{}, 0, 0, 0, err
	}
	for sc.Scan() {
		line := trimASCII(sc.Bytes())
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		rows, cols, nnz, ok := parseSizeLine(line)
		if !ok {
			return Header{}, 0, 0, 0, fmt.Errorf("mmio: bad size line %q", line)
		}
		return header, rows, cols, nnz, nil
	}
	return Header{}, 0, 0, 0, fmt.Errorf("mmio: missing size line")
}

// WriteBiEdgeList writes bel as a Matrix Market pattern (or real, when
// weighted) coordinate file.
func WriteBiEdgeList(w io.Writer, bel *sparse.BiEdgeList) error {
	bw := bufio.NewWriter(w)
	field := "pattern"
	if bel.Weights != nil {
		field = "real"
	}
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate %s general\n", field)
	fmt.Fprintf(bw, "%% hypergraph incidence: rows = hyperedges, cols = hypernodes\n")
	fmt.Fprintf(bw, "%d %d %d\n", bel.N0, bel.N1, len(bel.Edges))
	for k, e := range bel.Edges {
		if bel.Weights != nil {
			fmt.Fprintf(bw, "%d %d %g\n", e.U+1, e.V+1, bel.Weights[k])
		} else {
			fmt.Fprintf(bw, "%d %d\n", e.U+1, e.V+1)
		}
	}
	return bw.Flush()
}

// GraphReader opens path and reads the bipartite edge list of a hypergraph,
// mirroring the paper's graph_reader(mm_file).
func GraphReader(path string) (*sparse.BiEdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBiEdgeList(f)
}

// ReadAdjoin parses a Matrix Market incidence stream directly into an
// adjoined edge list over the single shared index space: hyperedge i keeps
// ID i, hypernode j becomes ID rows+j, and both directions of every
// incidence are materialized. It returns the edge list plus the partition
// sizes (the paper's nrealedges / nrealnodes out-parameters).
func ReadAdjoin(r io.Reader) (el *sparse.EdgeList, nrealedges, nrealnodes int, err error) {
	bel, err := ReadBiEdgeList(r)
	if err != nil {
		return nil, 0, 0, err
	}
	el = sparse.NewEdgeList(bel.N0 + bel.N1)
	el.Edges = make([]sparse.Edge, 0, 2*len(bel.Edges))
	for _, e := range bel.Edges {
		shared := uint32(bel.N0) + e.V
		el.Edges = append(el.Edges,
			sparse.Edge{U: e.U, V: shared},
			sparse.Edge{U: shared, V: e.U})
	}
	return el, bel.N0, bel.N1, nil
}

// GraphReaderAdjoin opens path and reads it in adjoin form, mirroring the
// paper's graph_reader_adjoin(mm_file, nrealedges, nrealnodes).
func GraphReaderAdjoin(path string) (*sparse.EdgeList, int, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	return ReadAdjoin(f)
}

// WriteHypergraphFile writes a bipartite edge list to path.
func WriteHypergraphFile(path string, bel *sparse.BiEdgeList) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBiEdgeList(f, bel); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
