package mmio

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// The .nwhyb snapshot format: a versioned little-endian binary container
// for a parsed hypergraph, so repeated runs skip text parsing entirely.
//
//	offset  size  field
//	0       8     magic "NWHYBSN1"
//	8       2     version (uint16, currently 1)
//	10      1     kind (1 = BiEdgeList, 2 = CSR)
//	11      1     flags (bit 0: weighted)
//	12      24    three int64 dims — BiEdgeList: N0, N1, nnz;
//	              CSR: nrows, ncols, nnz
//	36      4     CRC32 (IEEE) of bytes [0, 36)
//	40      ...   payload (bulk little-endian slices)
//	end-4   4     CRC32 (IEEE) of the payload
//
// BiEdgeList payload: nnz edges as (uint32 U, uint32 V) pairs, then nnz
// float64 weights when the weighted flag is set. CSR payload: nrows+1
// int64 row offsets, nnz uint32 columns, then nnz float64 values when
// weighted. Both checksums must verify before any field is trusted, and
// every structural invariant is re-checked on load — a corrupted or forged
// snapshot is an error, never an invalid in-memory structure.
// SnapshotExt is the conventional file extension for snapshot files.
const SnapshotExt = ".nwhyb"

const (
	snapshotMagic   = "NWHYBSN1"
	snapshotVersion = 1

	snapKindBiEdgeList = 1
	snapKindCSR        = 2

	snapFlagWeighted = 1

	snapHeaderSize = 40
)

// Snapshot is the decoded content of a .nwhyb file: exactly one of Bel and
// CSR is non-nil, matching the kind byte.
type Snapshot struct {
	Bel *sparse.BiEdgeList
	CSR *sparse.CSR
}

// IsSnapshotData reports whether data begins with the .nwhyb magic.
func IsSnapshotData(data []byte) bool {
	return len(data) >= len(snapshotMagic) && string(data[:len(snapshotMagic)]) == snapshotMagic
}

// IsSnapshotFile reports whether the file at path begins with the .nwhyb
// magic (false on any I/O error).
func IsSnapshotFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [len(snapshotMagic)]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return IsSnapshotData(head[:])
}

func snapHeader(kind, flags byte, d0, d1, d2 int64) [snapHeaderSize]byte {
	var h [snapHeaderSize]byte
	copy(h[:8], snapshotMagic)
	binary.LittleEndian.PutUint16(h[8:10], snapshotVersion)
	h[10], h[11] = kind, flags
	binary.LittleEndian.PutUint64(h[12:20], uint64(d0))
	binary.LittleEndian.PutUint64(h[20:28], uint64(d1))
	binary.LittleEndian.PutUint64(h[28:36], uint64(d2))
	binary.LittleEndian.PutUint32(h[36:40], crc32.ChecksumIEEE(h[:36]))
	return h
}

// crcWriter tracks the running payload checksum of everything written
// through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// stageBuf is the staging-buffer size for bulk slice encoding: big enough
// to amortize Write calls, small enough to stay cache-resident.
const stageBuf = 1 << 16

func writeEdges(w io.Writer, edges []sparse.Edge) error {
	var buf [stageBuf]byte
	for len(edges) > 0 {
		n := min(len(edges), stageBuf/8)
		for i, e := range edges[:n] {
			binary.LittleEndian.PutUint32(buf[i*8:], e.U)
			binary.LittleEndian.PutUint32(buf[i*8+4:], e.V)
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		edges = edges[n:]
	}
	return nil
}

func writeU32s(w io.Writer, vals []uint32) error {
	var buf [stageBuf]byte
	for len(vals) > 0 {
		n := min(len(vals), stageBuf/4)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint32(buf[i*4:], v)
		}
		if _, err := w.Write(buf[:n*4]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeI64s(w io.Writer, vals []int64) error {
	var buf [stageBuf]byte
	for len(vals) > 0 {
		n := min(len(vals), stageBuf/8)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func writeF64s(w io.Writer, vals []float64) error {
	var buf [stageBuf]byte
	for len(vals) > 0 {
		n := min(len(vals), stageBuf/8)
		for i, v := range vals[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

// WriteSnapshot encodes snap (exactly one of Bel/CSR set) as a .nwhyb
// stream.
func WriteSnapshot(w io.Writer, snap *Snapshot) error {
	switch {
	case snap.Bel != nil && snap.CSR == nil:
		return writeSnapshotBiEdgeList(w, snap.Bel)
	case snap.CSR != nil && snap.Bel == nil:
		return writeSnapshotCSR(w, snap.CSR)
	default:
		return fmt.Errorf("mmio: snapshot must hold exactly one of BiEdgeList or CSR")
	}
}

func writeSnapshotBiEdgeList(w io.Writer, bel *sparse.BiEdgeList) error {
	if err := bel.Validate(); err != nil {
		return fmt.Errorf("mmio: refusing to snapshot invalid list: %w", err)
	}
	var flags byte
	if bel.Weights != nil {
		flags |= snapFlagWeighted
	}
	h := snapHeader(snapKindBiEdgeList, flags, int64(bel.N0), int64(bel.N1), int64(len(bel.Edges)))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	if err := writeEdges(cw, bel.Edges); err != nil {
		return err
	}
	if bel.Weights != nil {
		if err := writeF64s(cw, bel.Weights); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	_, err := w.Write(tail[:])
	return err
}

func writeSnapshotCSR(w io.Writer, c *sparse.CSR) error {
	if err := c.Validate(); err != nil {
		return fmt.Errorf("mmio: refusing to snapshot invalid CSR: %w", err)
	}
	var flags byte
	if c.Val != nil {
		flags |= snapFlagWeighted
	}
	h := snapHeader(snapKindCSR, flags, int64(c.NumRows()), int64(c.NumCols()), int64(c.NumEdges()))
	if _, err := w.Write(h[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	if err := writeI64s(cw, c.RowPtr); err != nil {
		return err
	}
	if err := writeU32s(cw, c.Col); err != nil {
		return err
	}
	if c.Val != nil {
		if err := writeF64s(cw, c.Val); err != nil {
			return err
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	_, err := w.Write(tail[:])
	return err
}

// SaveSnapshot writes snap to path as a .nwhyb file.
func SaveSnapshot(path string, snap *Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSnapshot(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot decodes a .nwhyb image. Both checksums are verified before
// any payload byte is interpreted; the bulk slices then decode with
// engine-parallel loops and the result is validated (bounds for an edge
// list, the full CSR invariant set via sparse.AdoptSorted) before being
// returned. Cancellation is observed at decode-chunk boundaries.
func ReadSnapshot(eng *parallel.Engine, data []byte) (*Snapshot, error) {
	if len(data) < snapHeaderSize+4 {
		return nil, fmt.Errorf("mmio: snapshot truncated (%d bytes)", len(data))
	}
	if !IsSnapshotData(data) {
		return nil, fmt.Errorf("mmio: bad snapshot magic")
	}
	if crc32.ChecksumIEEE(data[:36]) != binary.LittleEndian.Uint32(data[36:40]) {
		return nil, fmt.Errorf("mmio: snapshot header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != snapshotVersion {
		return nil, fmt.Errorf("mmio: unsupported snapshot version %d", v)
	}
	kind, flags := data[10], data[11]
	if flags&^byte(snapFlagWeighted) != 0 {
		return nil, fmt.Errorf("mmio: unknown snapshot flags %#x", flags)
	}
	weighted := flags&snapFlagWeighted != 0
	d0 := int64(binary.LittleEndian.Uint64(data[12:20]))
	d1 := int64(binary.LittleEndian.Uint64(data[20:28]))
	nnz := int64(binary.LittleEndian.Uint64(data[28:36]))
	payload := data[snapHeaderSize : len(data)-4]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
		return nil, fmt.Errorf("mmio: snapshot payload checksum mismatch")
	}
	// Dimension sanity before any sizing arithmetic: non-negative, index
	// spaces addressable by uint32, and the entry count bounded by the
	// payload that is actually present (each entry takes at least 4 bytes).
	// With these bounds the per-kind `need` computations cannot overflow,
	// and their exact-size checks run before any allocation, so a forged
	// header cannot demand a huge allocation.
	if d0 < 0 || d1 < 0 || nnz < 0 || d0 > math.MaxUint32 || d1 > math.MaxUint32 ||
		nnz > int64(len(payload)) {
		return nil, fmt.Errorf("mmio: snapshot dims %d/%d/%d inconsistent with %d payload bytes", d0, d1, nnz, len(payload))
	}
	switch kind {
	case snapKindBiEdgeList:
		return readSnapshotBiEdgeList(eng, payload, weighted, d0, d1, nnz)
	case snapKindCSR:
		return readSnapshotCSR(eng, payload, weighted, d0, d1, nnz)
	default:
		return nil, fmt.Errorf("mmio: unknown snapshot kind %d", kind)
	}
}

func readSnapshotBiEdgeList(eng *parallel.Engine, payload []byte, weighted bool, d0, d1, nnz int64) (*Snapshot, error) {
	need := nnz * 8
	if weighted {
		need += nnz * 8
	}
	if int64(len(payload)) != need {
		return nil, fmt.Errorf("mmio: snapshot payload %d bytes, want %d", len(payload), need)
	}
	bel := &sparse.BiEdgeList{N0: int(d0), N1: int(d1)}
	bel.Edges = make([]sparse.Edge, nnz)
	eng.ForN(int(nnz), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			bel.Edges[i] = sparse.Edge{
				U: binary.LittleEndian.Uint32(payload[i*8:]),
				V: binary.LittleEndian.Uint32(payload[i*8+4:]),
			}
		}
	})
	if weighted {
		bel.Weights = make([]float64, nnz)
		wb := payload[nnz*8:]
		eng.ForN(int(nnz), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				bel.Weights[i] = math.Float64frombits(binary.LittleEndian.Uint64(wb[i*8:]))
			}
		})
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	bad := parallel.ReduceWith(eng, int(nnz), false,
		func(lo, hi int, acc bool) bool {
			for i := lo; i < hi; i++ {
				e := bel.Edges[i]
				if int64(e.U) >= d0 || int64(e.V) >= d1 {
					return true
				}
			}
			return acc
		},
		func(a, b bool) bool { return a || b })
	if err := eng.Err(); err != nil {
		return nil, err
	}
	if bad {
		return nil, fmt.Errorf("mmio: snapshot edge outside %dx%d", d0, d1)
	}
	return &Snapshot{Bel: bel}, nil
}

func readSnapshotCSR(eng *parallel.Engine, payload []byte, weighted bool, d0, d1, nnz int64) (*Snapshot, error) {
	need := (d0+1)*8 + nnz*4
	if weighted {
		need += nnz * 8
	}
	if int64(len(payload)) != need {
		return nil, fmt.Errorf("mmio: snapshot payload %d bytes, want %d", len(payload), need)
	}
	rowptr := make([]int64, d0+1)
	eng.ForN(len(rowptr), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rowptr[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	})
	cb := payload[(d0+1)*8:]
	col := make([]uint32, nnz)
	eng.ForN(int(nnz), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			col[i] = binary.LittleEndian.Uint32(cb[i*4:])
		}
	})
	var val []float64
	if weighted {
		vb := cb[nnz*4:]
		val = make([]float64, nnz)
		eng.ForN(int(nnz), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				val[i] = math.Float64frombits(binary.LittleEndian.Uint64(vb[i*8:]))
			}
		})
	}
	if err := eng.Err(); err != nil {
		return nil, err
	}
	c, err := sparse.AdoptSorted(int(d0), int(d1), rowptr, col, val)
	if err != nil {
		return nil, fmt.Errorf("mmio: snapshot CSR invalid: %w", err)
	}
	return &Snapshot{CSR: c}, nil
}

// LoadSnapshot reads the .nwhyb file at path.
func LoadSnapshot(eng *parallel.Engine, path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadSnapshot(eng, data)
}
