package mmio

import (
	"math"
	"strconv"
)

// This file is the byte-level scanning core shared by the serial and
// parallel Matrix Market readers. Both parse the exact same helper set, so
// the parsers agree by construction: any line one accepts, the other accepts
// with the same value. The helpers are ASCII-only (Matrix Market is an ASCII
// format) and allocation-free on the fast paths — a worker scanning its
// chunk of a large file touches the heap only to append parsed edges.

// isSpaceASCII reports whether c is ASCII whitespace.
func isSpaceASCII(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// trimASCII returns b without leading and trailing ASCII whitespace.
func trimASCII(b []byte) []byte {
	for len(b) > 0 && isSpaceASCII(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpaceASCII(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

// nextField splits the first whitespace-delimited token off b. The returned
// rest has its leading whitespace consumed, so a caller detects "no more
// fields" as len(rest) == 0.
func nextField(b []byte) (tok, rest []byte) {
	i := 0
	for i < len(b) && !isSpaceASCII(b[i]) {
		i++
	}
	tok, rest = b[:i], b[i:]
	for len(rest) > 0 && isSpaceASCII(rest[0]) {
		rest = rest[1:]
	}
	return tok, rest
}

// nextLine splits data at the first newline, stripping one trailing '\r'
// from the line — the same framing bufio.ScanLines produces, so chunked
// parsing sees byte-identical lines to a Scanner over the whole stream.
func nextLine(data []byte) (line, rest []byte) {
	for i, c := range data {
		if c == '\n' {
			line, rest = data[:i], data[i+1:]
			if n := len(line); n > 0 && line[n-1] == '\r' {
				line = line[:n-1]
			}
			return line, rest
		}
	}
	line = data
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line, nil
}

// parseIntCap bounds parseIntBytes so the accumulator cannot overflow:
// anything above ~4.6e18 is rejected, far beyond any dimension or entry
// count a coordinate file can mean.
const parseIntCap = int64(1) << 62

// parseIntBytes parses a decimal integer with an optional sign.
func parseIntBytes(tok []byte) (int64, bool) {
	if len(tok) == 0 {
		return 0, false
	}
	neg := false
	switch tok[0] {
	case '+':
		tok = tok[1:]
	case '-':
		neg = true
		tok = tok[1:]
	}
	if len(tok) == 0 {
		return 0, false
	}
	var v int64
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, false
		}
		if v > parseIntCap/10 {
			return 0, false
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, true
}

// pow10 holds the powers of ten exactly representable as float64, the
// domain of the fast-path float conversion below.
var pow10 = [...]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// parseFloatBytes parses a float64. The fast path is Clinger's exact case —
// mantissa below 2^53 and decimal exponent within ±22, where one multiply
// or divide by an exact power of ten is correctly rounded — which covers
// essentially every weight a Matrix Market file carries without allocating.
// Everything else (huge mantissas, extreme exponents, inf/nan spellings)
// falls back to strconv.ParseFloat, so accepted values are bit-identical to
// the standard library's in all cases.
func parseFloatBytes(tok []byte) (float64, bool) {
	if len(tok) == 0 {
		return 0, false
	}
	s := tok
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	var mant uint64
	digits, frac := 0, 0
	i := 0
	const mantCap = (uint64(1)<<53 - 10) / 10
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		if mant > mantCap {
			return parseFloatSlow(tok)
		}
		mant = mant*10 + uint64(s[i]-'0')
		digits++
	}
	if i < len(s) && s[i] == '.' {
		i++
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			if mant > mantCap {
				return parseFloatSlow(tok)
			}
			mant = mant*10 + uint64(s[i]-'0')
			digits++
			frac++
		}
	}
	if digits == 0 {
		return parseFloatSlow(tok) // "inf", "nan", lone "." — let strconv decide
	}
	exp := 0
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		eneg := false
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			eneg = s[i] == '-'
			i++
		}
		edigits := 0
		for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
			if exp < 10000 {
				exp = exp*10 + int(s[i]-'0')
			}
			edigits++
		}
		if edigits == 0 {
			return parseFloatSlow(tok) // "1e", "1e+" — invalid, strconv rejects
		}
		if eneg {
			exp = -exp
		}
	}
	if i != len(s) {
		return parseFloatSlow(tok) // trailing junk — invalid, strconv rejects
	}
	exp -= frac
	if exp < -22 || exp > 22 {
		return parseFloatSlow(tok)
	}
	f := float64(mant)
	if exp >= 0 {
		f *= pow10[exp]
	} else {
		f /= pow10[-exp]
	}
	if neg {
		f = -f
	}
	return f, true
}

func parseFloatSlow(tok []byte) (float64, bool) {
	f, err := strconv.ParseFloat(string(tok), 64)
	return f, err == nil
}

// parseEntryBytes parses one coordinate line into its 1-based indices and
// weight. The field count must be exact — two fields for pattern entries,
// three for weighted — so a line with trailing garbage columns is rejected
// instead of silently ignored.
func parseEntryBytes(line []byte, weighted bool) (i, j int64, w float64, ok bool) {
	tok, rest := nextField(line)
	i, ok = parseIntBytes(tok)
	if !ok {
		return 0, 0, 0, false
	}
	tok, rest = nextField(rest)
	j, ok = parseIntBytes(tok)
	if !ok {
		return 0, 0, 0, false
	}
	w = 1.0
	if weighted {
		tok, rest = nextField(rest)
		w, ok = parseFloatBytes(tok)
		if !ok {
			return 0, 0, 0, false
		}
	}
	if len(rest) != 0 {
		return 0, 0, 0, false // extra fields
	}
	return i, j, w, true
}

// parseSizeLine parses the "rows cols nnz" size line. Dimensions are capped
// at what a uint32 entry index can address and nnz at what fits an int, so a
// lying header cannot push the readers into index overflow.
func parseSizeLine(line []byte) (rows, cols, nnz int, ok bool) {
	f1, rest := nextField(line)
	f2, rest := nextField(rest)
	f3, rest := nextField(rest)
	if len(rest) != 0 {
		return 0, 0, 0, false
	}
	r, ok1 := parseIntBytes(f1)
	c, ok2 := parseIntBytes(f2)
	z, ok3 := parseIntBytes(f3)
	if !ok1 || !ok2 || !ok3 || r < 0 || c < 0 || z < 0 {
		return 0, 0, 0, false
	}
	if r > math.MaxUint32 || c > math.MaxUint32 || z > int64(math.MaxInt) {
		return 0, 0, 0, false
	}
	return int(r), int(c), int(z), true
}

// initialEdgeCap bounds the capacity pre-allocated from a header's declared
// entry count, so a lying size line on a tiny file cannot force a huge
// allocation before a single entry is parsed.
func initialEdgeCap(nnz int) int {
	const maxPrealloc = 1 << 20
	if nnz > maxPrealloc {
		return maxPrealloc
	}
	return nnz
}
