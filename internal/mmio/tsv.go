package mmio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nwhy/internal/sparse"
)

// ReadTSV parses a SNAP-style whitespace-separated incidence list: one
// "hyperedge hypernode" pair per line, 0-based IDs, '#' or '%' comments.
// Partition sizes are inferred from the maximum IDs. This is the format the
// SNAP community files (com-Orkut, Friendster, ...) ship in.
func ReadTSV(r io.Reader) (*sparse.BiEdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	bel := sparse.NewBiEdgeList(0, 0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 2 {
			return nil, fmt.Errorf("mmio: tsv line %d: want 2 fields, got %q", lineNo, line)
		}
		e, err1 := strconv.ParseUint(f[0], 10, 32)
		v, err2 := strconv.ParseUint(f[1], 10, 32)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("mmio: tsv line %d: bad IDs %q", lineNo, line)
		}
		bel.Add(uint32(e), uint32(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mmio: %w", err)
	}
	return bel, nil
}

// WriteTSV writes a bipartite edge list as SNAP-style pairs.
func WriteTSV(w io.Writer, bel *sparse.BiEdgeList) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# hypergraph incidence pairs: hyperedge hypernode (%d x %d, %d pairs)\n",
		bel.N0, bel.N1, len(bel.Edges))
	for _, e := range bel.Edges {
		fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadTSVFile opens and parses a SNAP-style incidence file.
func ReadTSVFile(path string) (*sparse.BiEdgeList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTSV(f)
}
