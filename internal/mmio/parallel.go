package mmio

import (
	"fmt"
	"os"

	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// ReadBiEdgeListParallel parses data — a whole Matrix Market file in memory
// — with engine-parallel chunked scanning: the entry body is split into
// newline-aligned byte ranges, each worker scans its range with the shared
// byte-level scanners into a private edge chunk, and the chunks are
// assembled into the final list by an exclusive scan over chunk sizes plus a
// parallel scatter copy. It produces exactly the BiEdgeList ReadBiEdgeList
// produces, or exactly its error for malformed input (the earliest bad line
// wins, matching the serial reader's first-error semantics). Cancellation is
// observed at chunk boundaries; an aborted parse returns eng.Err().
func ReadBiEdgeListParallel(eng *parallel.Engine, data []byte) (*sparse.BiEdgeList, error) {
	header, rows, cols, nnz, body, err := readPreambleBytes(data)
	if err != nil {
		return nil, err
	}
	if header.Symmetry != "general" {
		return nil, fmt.Errorf("mmio: hypergraph incidence must be general, got %s", header.Symmetry)
	}
	weighted := header.Field != "pattern"
	bounds := chunkBoundaries(body, eng.NumWorkers()*4)
	nchunks := len(bounds) - 1
	chunks := make([]parsedChunk, nchunks)
	eng.For(parallel.BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			chunks[c] = parseChunk(body[bounds[c]:bounds[c+1]], weighted, rows, cols)
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	for c := range chunks {
		if chunks[c].err != nil {
			return nil, chunks[c].err
		}
	}
	offsets := make([]int64, nchunks)
	for c := range chunks {
		offsets[c] = int64(len(chunks[c].edges))
	}
	total := parallel.ScanExclusive(offsets)
	if total != int64(nnz) {
		return nil, fmt.Errorf("mmio: header declared %d entries, found %d", nnz, total)
	}
	bel := sparse.NewBiEdgeList(rows, cols)
	bel.Edges = make([]sparse.Edge, total)
	if weighted {
		bel.Weights = make([]float64, total)
	}
	eng.For(parallel.BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			copy(bel.Edges[offsets[c]:], chunks[c].edges)
			if weighted {
				copy(bel.Weights[offsets[c]:], chunks[c].weights)
			}
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return bel, nil
}

// GraphReaderParallel reads path into memory and parses it with
// ReadBiEdgeListParallel — the parallel counterpart of GraphReader.
func GraphReaderParallel(eng *parallel.Engine, path string) (*sparse.BiEdgeList, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadBiEdgeListParallel(eng, data)
}

// parsedChunk is one worker's output for one byte range: the edges (and
// weights, for non-pattern files) of its lines, or the first parse error.
type parsedChunk struct {
	edges   []sparse.Edge
	weights []float64
	err     error
}

// parseChunk scans one newline-aligned byte range with the same
// line-by-line logic as the serial reader's entry loop.
func parseChunk(chunk []byte, weighted bool, rows, cols int) parsedChunk {
	var out parsedChunk
	for len(chunk) > 0 {
		var line []byte
		line, chunk = nextLine(chunk)
		line = trimASCII(line)
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		i, j, w, ok := parseEntryBytes(line, weighted)
		if !ok {
			out.err = fmt.Errorf("mmio: bad entry %q", line)
			return out
		}
		if i < 1 || i > int64(rows) || j < 1 || j > int64(cols) {
			out.err = fmt.Errorf("mmio: entry (%d,%d) outside %dx%d", i, j, rows, cols)
			return out
		}
		out.edges = append(out.edges, sparse.Edge{U: uint32(i - 1), V: uint32(j - 1)})
		if weighted {
			out.weights = append(out.weights, w)
		}
	}
	return out
}

// readPreambleBytes is readPreamble over an in-memory file: it consumes the
// banner, comments, and size line and returns the remaining entry body.
func readPreambleBytes(data []byte) (Header, int, int, int, []byte, error) {
	if len(data) == 0 {
		return Header{}, 0, 0, 0, nil, fmt.Errorf("mmio: empty input")
	}
	line, rest := nextLine(data)
	header, err := parseHeader(string(line))
	if err != nil {
		return Header{}, 0, 0, 0, nil, err
	}
	for {
		if len(rest) == 0 {
			return Header{}, 0, 0, 0, nil, fmt.Errorf("mmio: missing size line")
		}
		line, rest = nextLine(rest)
		line = trimASCII(line)
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		rows, cols, nnz, ok := parseSizeLine(line)
		if !ok {
			return Header{}, 0, 0, 0, nil, fmt.Errorf("mmio: bad size line %q", line)
		}
		return header, rows, cols, nnz, rest, nil
	}
}

// chunkBoundaries cuts body into up to target newline-aligned byte ranges:
// every boundary except the endpoints sits just after a '\n', so no entry
// line straddles two chunks. Boundaries are strictly increasing; short
// bodies yield fewer chunks.
func chunkBoundaries(body []byte, target int) []int {
	n := len(body)
	if target < 1 {
		target = 1
	}
	bounds := make([]int, 1, target+1)
	for c := 1; c < target; c++ {
		pos := c * n / target
		if pos <= bounds[len(bounds)-1] {
			continue
		}
		for pos < n && body[pos-1] != '\n' {
			pos++
		}
		if pos > bounds[len(bounds)-1] && pos < n {
			bounds = append(bounds, pos)
		}
	}
	return append(bounds, n)
}
