package mmio

import (
	"bytes"
	"reflect"
	"testing"

	"nwhy/internal/parallel"
)

// FuzzReadBiEdgeList drives arbitrary bytes through both Matrix Market
// readers. The property is differential: the serial and parallel readers
// must agree on acceptance, and on accepted inputs produce identical
// structures whose invariants (declared shapes, weight alignment,
// in-range endpoints) hold.
func FuzzReadBiEdgeList(f *testing.F) {
	f.Add([]byte(paperMM))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n2 3 2\n1 3 2.5\n2 1 -1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\r\n% c\r\n3 3 1\r\n2 2\r\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern general\n99999999 99999999 1\n1 1\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1e-400\n"))
	f.Add([]byte(""))
	eng := parallel.SharedEngine()
	f.Fuzz(func(t *testing.T, data []byte) {
		serial, serr := ReadBiEdgeList(bytes.NewReader(data))
		par, perr := ReadBiEdgeListParallel(eng, data)
		if (serr == nil) != (perr == nil) {
			t.Fatalf("acceptance mismatch: serial %v, parallel %v", serr, perr)
		}
		if serr != nil {
			return
		}
		if serial.N0 != par.N0 || serial.N1 != par.N1 ||
			!reflect.DeepEqual(serial.Edges, par.Edges) ||
			!reflect.DeepEqual(serial.Weights, par.Weights) {
			t.Fatal("parallel reader result differs from serial")
		}
		if err := serial.Validate(); err != nil {
			t.Fatalf("accepted input produced invalid list: %v", err)
		}
	})
}
