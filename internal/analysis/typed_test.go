package analysis

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadModulePkgs loads patterns from the real enclosing module.
func loadModulePkgs(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, patterns)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestTypedLoadRealPackages pins the loader contract on real module code:
// every loaded package carries a *types.Package and a fully populated
// *types.Info, with no type errors, and every file — test files included —
// has type information attached.
func TestTypedLoadRealPackages(t *testing.T) {
	pkgs := loadModulePkgs(t, "./internal/parallel", "./internal/core")
	if len(pkgs) != 2 {
		t.Fatalf("want 2 packages, got %d", len(pkgs))
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil {
			t.Fatalf("%s: missing type information", p.Path)
		}
		for _, e := range p.TypeErrors {
			t.Errorf("%s: unexpected type error: %v", p.Path, e)
		}
		for _, f := range p.Files {
			if f.Info == nil {
				t.Errorf("%s: file %s has no Info", p.Path, f.Name)
				continue
			}
			if !f.Test && f.Info != p.TypesInfo {
				t.Errorf("%s: non-test file %s not checked in the lib unit", p.Path, f.Name)
			}
			if f.Test && f.Info == p.TypesInfo {
				t.Errorf("%s: test file %s shares the lib Info; test units must not pollute it", p.Path, f.Name)
			}
		}
	}
}

// TestTypedLoadGenerics verifies the loader handles generic declarations
// and records instantiations: RadixSort64On and ReduceWith are generic, and
// their call sites (in lib or test files) land in Info.Instances.
func TestTypedLoadGenerics(t *testing.T) {
	pkgs := loadModulePkgs(t, "./internal/parallel")
	p := pkgs[0]
	for _, name := range []string{"RadixSort64On", "ReduceWith"} {
		obj := p.Types.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("%s not found in %s", name, p.Path)
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.TypeParams().Len() == 0 {
			t.Errorf("%s: expected a generic signature, got %v", name, obj.Type())
		}
	}
	instances := 0
	seen := map[*types.Info]bool{}
	for _, f := range p.Files {
		if f.Info == nil || seen[f.Info] {
			continue
		}
		seen[f.Info] = true
		instances += len(f.Info.Instances)
	}
	if instances == 0 {
		t.Error("no generic instantiations recorded across any type-check unit")
	}
}

// TestTypedLoadExternalTestPackage verifies external test packages
// (package foo_test) are type-checked as their own unit, with Info attached
// to their files and distinct from the lib unit's.
func TestTypedLoadExternalTestPackage(t *testing.T) {
	pkgs := loadModulePkgs(t, "./internal/core")
	p := pkgs[0]
	found := false
	for _, f := range p.Files {
		if !strings.HasSuffix(f.Name, "traversal_prop_test.go") {
			continue
		}
		found = true
		if !f.Test {
			t.Errorf("%s not marked as a test file", f.Name)
		}
		if f.Info == nil {
			t.Fatalf("%s: external test file has no Info", f.Name)
		}
		if f.Info == p.TypesInfo {
			t.Errorf("%s: external test file shares the lib Info", f.Name)
		}
		if len(f.Info.Defs) == 0 {
			t.Errorf("%s: external test unit recorded no definitions", f.Name)
		}
	}
	if !found {
		t.Skip("traversal_prop_test.go not present")
	}
}

// TestFixtureTypeErrorsTolerated pins the error-tolerant tier: fixtures
// carry deliberate type errors (undeclared helpers, wrong arity), and the
// loader must collect them on TypeErrors yet still deliver an AST package
// the checks can run on.
func TestFixtureTypeErrorsTolerated(t *testing.T) {
	pkg := loadFixturePkg(t, filepath.Join("testdata", "src", "tlsrecycle", "bad"), "nwhy/internal/graph")
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	if len(pkg.TypeErrors) == 0 {
		t.Error("expected the fixture's deliberate type errors to be collected")
	}
	diags := Run([]*Package{pkg}, []*Check{LookupCheck("tls-recycle")}, Options{})
	if len(diags) == 0 {
		t.Error("checks did not run on the partially typed fixture")
	}
}

// TestLoadDirCorrupted pins the hard-failure path: a directory whose Go
// source does not parse is an error, not a silent partial package.
func TestLoadDirCorrupted(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte("package broken\nfunc {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDir(token.NewFileSet(), dir, "nwhy/internal/broken", "nwhy"); err == nil {
		t.Fatal("LoadDir succeeded on unparseable source")
	}
}

// TestLoadDirEmpty pins the no-files error.
func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(token.NewFileSet(), t.TempDir(), "nwhy/internal/empty", "nwhy"); err == nil {
		t.Fatal("LoadDir succeeded on an empty directory")
	}
}

// TestImportsAs pins the constant-time import lookup both ways.
func TestImportsAs(t *testing.T) {
	pkg := loadSourcePkg(t, "nwhy/internal/core", `package core

import (
	"context"
	par "nwhy/internal/parallel"
)

var _ = context.Background
var _ = par.NewEngine
`)
	f := pkg.Files[0]
	if got := f.ImportsAs("nwhy/internal/parallel"); got != "par" {
		t.Errorf("ImportsAs(parallel) = %q, want %q", got, "par")
	}
	if got := f.ImportsAs("context"); got != "context" {
		t.Errorf("ImportsAs(context) = %q, want %q", got, "context")
	}
	if got := f.ImportsAs("net/http"); got != "" {
		t.Errorf("ImportsAs(net/http) = %q, want empty", got)
	}
}
