package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// loadSourcePkg builds a single-file Package straight from source text,
// under a simulated import path.
func loadSourcePkg(t *testing.T, importPath, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	name := importPath + "/fixture.go"
	astFile, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := &File{Name: name, AST: astFile}
	f.Imports, f.importedAs = importTables(astFile)
	f.suppressions = parseSuppressions(fset, astFile)
	return &Package{Path: importPath, Module: "nwhy", Name: astFile.Name.Name, Fset: fset, Files: []*File{f}}
}

func runAll(pkg *Package, reportUnused bool) []Diagnostic {
	return Run([]*Package{pkg}, Checks(), Options{ReportUnusedSuppressions: reportUnused})
}

func TestSuppressionTrailing(t *testing.T) {
	pkg := loadSourcePkg(t, "nwhy/internal/core", `package core

func fire(done chan struct{}) {
	go close(done) //nwhy:nolint(no-naked-goroutine) exercised only in this test fixture
}
`)
	if diags := runAll(pkg, true); len(diags) != 0 {
		t.Errorf("trailing suppression did not silence: %v", diags)
	}
}

func TestSuppressionLineAbove(t *testing.T) {
	pkg := loadSourcePkg(t, "nwhy/internal/core", `package core

func fire(done chan struct{}) {
	//nwhy:nolint(no-naked-goroutine) exercised only in this test fixture
	go close(done)
}
`)
	if diags := runAll(pkg, true); len(diags) != 0 {
		t.Errorf("suppression on the line above did not silence: %v", diags)
	}
}

func TestSuppressionUnknownCheck(t *testing.T) {
	pkg := loadSourcePkg(t, "nwhy/internal/core", `package core

//nwhy:nolint(bogus-check) some reason
func fire() {}
`)
	diags := runAll(pkg, true)
	if len(diags) != 1 || diags[0].Check != "nolint" || !strings.Contains(diags[0].Message, "unknown check") {
		t.Errorf("want one nolint unknown-check diagnostic, got %v", diags)
	}
}

func TestSuppressionMissingReason(t *testing.T) {
	pkg := loadSourcePkg(t, "nwhy/internal/core", `package core

func fire(done chan struct{}) {
	go close(done) //nwhy:nolint(no-naked-goroutine)
}
`)
	diags := runAll(pkg, true)
	// A reasonless suppression is malformed, so it both reports itself and
	// fails to silence the underlying diagnostic.
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (nolint + unsuppressed), got %v", diags)
	}
	checks := []string{diags[0].Check, diags[1].Check}
	if !(contains(checks, "nolint") && contains(checks, "no-naked-goroutine")) {
		t.Errorf("want nolint + no-naked-goroutine, got %v", checks)
	}
}

func TestSuppressionUnused(t *testing.T) {
	src := `package core

//nwhy:nolint(no-naked-goroutine) nothing here actually violates it
func fire() {}
`
	pkg := loadSourcePkg(t, "nwhy/internal/core", src)
	diags := runAll(pkg, true)
	if len(diags) != 1 || diags[0].Check != "nolint" || !strings.Contains(diags[0].Message, "unused suppression") {
		t.Errorf("want one unused-suppression diagnostic, got %v", diags)
	}
	// Partial runs may legitimately leave suppressions unused.
	pkg = loadSourcePkg(t, "nwhy/internal/core", src)
	if diags := runAll(pkg, false); len(diags) != 0 {
		t.Errorf("unused suppression reported despite ReportUnusedSuppressions=false: %v", diags)
	}
}

func TestSuppressionProseMentionIgnored(t *testing.T) {
	pkg := loadSourcePkg(t, "nwhy/internal/core", `package core

// The grammar is //nwhy:nolint(check-name) reason — this is prose, not a
// directive, and must not parse as a suppression.
func fire() {}
`)
	if diags := runAll(pkg, true); len(diags) != 0 {
		t.Errorf("prose mention of the grammar parsed as a suppression: %v", diags)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
