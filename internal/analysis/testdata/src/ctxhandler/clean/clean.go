// Package clean threads the caller's context through every request path.
package clean

import (
	stdctx "context"
	"time"
)

type server struct{}

// Query derives everything it needs from the caller's ctx — deadlines and
// detached drains included, via the aliased import.
func (s *server) Query(ctx stdctx.Context, name string) error {
	bounded, cancel := stdctx.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := work(bounded); err != nil {
		return err
	}
	// Draining past cancellation detaches values-only — still rooted in
	// the request, not a fresh Background().
	drain, cancel2 := stdctx.WithTimeout(stdctx.WithoutCancel(ctx), time.Second)
	defer cancel2()
	return work(drain)
}

func work(ctx stdctx.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
