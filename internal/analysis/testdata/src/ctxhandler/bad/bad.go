// Package bad mints root contexts on request paths.
package bad

import "context"

type server struct{}

// Query drops the caller's context on the floor and starts a fresh root —
// the cancellation chain from client to kernel is severed.
func (s *server) Query(ctx context.Context, name string) error {
	_ = ctx
	fresh := context.Background() // want ctx-first-handler
	return work(fresh)
}

// QueryTODO is the same severing with the other constructor.
func QueryTODO() error {
	return work(context.TODO()) // want ctx-first-handler
}

// nested roots inside closures are still request-path roots.
func handler(run func() error) error { return run() }

func QueryNested(ctx context.Context) error {
	return handler(func() error {
		return work(context.Background()) // want ctx-first-handler
	})
}

// main is the one place a root context may be born (the daemon's signal
// context), so this is exempt.
func main() {
	_ = work(context.Background())
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
