// Package clean threads the received context everywhere it goes: engines
// are derived with WithContext, child contexts are derived from the parent,
// and the serving wrapper's shadowing closure parameter is trusted.
package clean

import (
	"context"

	"nwhy/internal/parallel"
)

func kernel(eng *parallel.Engine, n int) int {
	sum := 0
	eng.ForEach(n, func(i int) { sum += i })
	return sum
}

func kernelCtx(ctx context.Context, n int) error {
	return ctx.Err()
}

func do(ctx context.Context, fn func(ctx context.Context) error) error {
	return fn(ctx)
}

// Handle derives everything from the ctx it received.
func Handle(ctx context.Context, eng *parallel.Engine, n int) error {
	bound := eng.WithContext(ctx)
	kernel(bound, n)
	child, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := kernelCtx(child, n); err != nil {
		return err
	}
	// The wrapper pattern: the closure parameter shadows ctx under a
	// distinct object, bound by do to a value derived from the outer one.
	return do(ctx, func(ctx context.Context) error {
		return kernelCtx(ctx, n)
	})
}

// NoCtx has no context or engine parameter and is exempt: convenience
// wrappers legitimately start from a fresh engine.
func NoCtx(n int) int {
	return kernel(parallel.NewEngine(2), n)
}
