// Package bad receives a request context and then drops it: kernels are
// launched on an unrelated engine and called with a freshly minted context.
package bad

import (
	"context"

	"nwhy/internal/parallel"
)

func kernel(eng *parallel.Engine, n int) int {
	sum := 0
	eng.ForEach(n, func(i int) { sum += i })
	return sum
}

func kernelCtx(ctx context.Context, n int) error {
	return ctx.Err()
}

// Handle has a perfectly good ctx but the engine it builds is not derived
// from it, and the second kernel gets a fresh root context.
func Handle(ctx context.Context, n int) error {
	eng := parallel.NewEngine(2)
	kernel(eng, n)                      // want ctx-propagation
	return kernelCtx(context.TODO(), n) // want ctx-propagation
}

// Rebuild receives a ctx-bound engine and then reaches for a new one for
// the second phase.
func Rebuild(eng *parallel.Engine, n int) int {
	a := kernel(eng, n)
	b := kernel(parallel.NewEngine(2), n) // want ctx-propagation
	return a + b
}
