// Package clean routes all concurrency through the engine's pool.
package clean

import "nwhy/internal/parallel"

// Fire schedules the task on the engine's pool.
func Fire(eng *parallel.Engine, done chan struct{}) {
	eng.Go(func() {
		close(done)
	})
}
