// Package bad launches concurrency outside the pool.
package bad

// Fire spins up a raw goroutine instead of routing through the engine.
func Fire(done chan struct{}) {
	go func() { // want no-naked-goroutine
		close(done)
	}()
}

// FireNamed hands a named function to a raw goroutine.
func FireNamed(done chan struct{}) {
	go fire(done) // want no-naked-goroutine
}

func fire(done chan struct{}) { close(done) }
