// Package clean pairs every arena grab with its recycle, including through
// package-local ownership-transferring wrappers.
package clean

import "nwhy/internal/parallel"

// Paired grabs scratch and stashes it back in the same function.
func Paired(eng *parallel.Engine, n int) {
	buf := eng.GrabU32(n)
	for i := range buf {
		buf[i] = 0
	}
	eng.StashU32(buf)
}

// grabScratch transfers ownership of grabbed scratch to its caller; it is
// exempt itself, and calling it counts as a grab at the call site.
func grabScratch(eng *parallel.Engine, n int) []uint32 {
	buf := eng.GrabU32(n)
	return buf
}

// stashScratch recycles scratch grabbed through grabScratch; calling it
// counts as a recycle at the call site.
func stashScratch(eng *parallel.Engine, buf []uint32) {
	eng.StashU32(buf)
}

// Wrapped pairs the two wrappers, so it is clean.
func Wrapped(eng *parallel.Engine, n int) {
	buf := grabScratch(eng, n)
	for i := range buf {
		buf[i] = uint32(i)
	}
	stashScratch(eng, buf)
}
