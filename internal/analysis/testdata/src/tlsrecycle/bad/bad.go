// Package bad leaks arena scratch out of the steady-state reuse loop.
package bad

import "nwhy/internal/parallel"

// Leak grabs scratch and never stashes it back.
func Leak(eng *parallel.Engine, n int) {
	buf := eng.GrabU32(n) // want tls-recycle
	for i := range buf {
		buf[i] = 0
	}
}

// EarlyReturn has an escape path between the grab and the stash.
func EarlyReturn(eng *parallel.Engine, n int) int {
	buf := eng.GrabU32(n)
	if n == 0 {
		return 0 // want tls-recycle
	}
	for i := range buf {
		buf[i] = uint32(i)
	}
	eng.StashU32(buf)
	return n
}
