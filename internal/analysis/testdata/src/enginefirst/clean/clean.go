// Package clean follows the engine-first discipline: the engine is the
// first parameter of every kernel that takes one, loops run on the
// caller's engine, and methods receive theirs through a carrying type.
package clean

import "nwhy/internal/parallel"

// Kernel takes its engine first and runs every loop on it.
func Kernel(eng *parallel.Engine, n int) int {
	eng.ForN(n, func(_, lo, hi int) {
		_, _ = lo, hi
	})
	return parallel.ReduceWith(eng, n, 0,
		func(_ int, lo, hi int, acc int) int { return acc + hi - lo },
		func(a, b int) int { return a + b })
}

// runner carries the engine through a struct; methods need no engine
// parameter.
type runner struct{ eng *parallel.Engine }

// Step runs on the carried engine.
func (r *runner) Step(n int) {
	r.eng.ForN(n, func(_, lo, hi int) {
		_, _ = lo, hi
	})
}
