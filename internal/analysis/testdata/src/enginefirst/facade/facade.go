// Package facade stands in for the module root — the one package allowed
// to reach for the process-wide shared engine.
package facade

import "nwhy/internal/parallel"

// Run grabs the shared engine and drives a kernel with it.
func Run(n int) int {
	eng := parallel.SharedEngine()
	count := 0
	eng.Invoke(func() { count = n })
	return count
}
