// Package bad violates the engine-first discipline in every way the check
// recognizes: a shared-engine reference outside the facade, package-level
// engine bindings, an engine parameter that is not first, and a
// default-pool loop entry point.
package bad

import "nwhy/internal/parallel"

var shared = parallel.SharedEngine() // want engine-first engine-first

var cached *parallel.Engine // want engine-first

// BadOrder takes the engine second instead of first.
func BadOrder(n int, eng *parallel.Engine) { // want engine-first
	eng.ForN(n, func(_, lo, hi int) {
		_, _ = lo, hi
	})
}

// DefaultPool schedules on the process default pool behind the caller's
// back.
func DefaultPool(n int) {
	parallel.For(0, n, func(i int) { _ = i }) // want engine-first
}
