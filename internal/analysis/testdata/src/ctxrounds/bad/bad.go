// Package bad spins round loops that never observe cancellation.
package bad

import "nwhy/internal/parallel"

// Drive launches parallel work every round without checking the engine.
func Drive(eng *parallel.Engine, rounds, n int) {
	for r := 0; r < rounds; r++ { // want ctx-at-rounds
		eng.ForN(n, func(_, lo, hi int) {
			_, _ = lo, hi
		})
	}
}

// DriveIndirect launches parallel work through a package-local helper; the
// check closes over local calls, so the loop is still flagged.
func DriveIndirect(eng *parallel.Engine, rounds, n int) {
	for r := 0; r < rounds; r++ { // want ctx-at-rounds
		step(eng, n)
	}
}

func step(eng *parallel.Engine, n int) {
	eng.ForN(n, func(_, lo, hi int) {
		_, _ = lo, hi
	})
}
