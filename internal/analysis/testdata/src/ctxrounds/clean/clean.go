// Package clean observes cancellation at every round boundary, and its
// serial loops need no check at all.
package clean

import "nwhy/internal/parallel"

// Drive checks cancellation in the loop condition.
func Drive(eng *parallel.Engine, rounds, n int) {
	for r := 0; r < rounds && !eng.Cancelled(); r++ {
		step(eng, n)
	}
}

// DriveBody checks cancellation inside the loop body instead.
func DriveBody(eng *parallel.Engine, rounds, n int) {
	for r := 0; r < rounds; r++ {
		if eng.Err() != nil {
			return
		}
		step(eng, n)
	}
}

func step(eng *parallel.Engine, n int) {
	eng.ForN(n, func(_, lo, hi int) {
		_, _ = lo, hi
	})
}

// Sum is a serial loop; no parallel work, no cancellation required.
func Sum(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
