// Package bad mixes plain and atomic element access of the same slice
// inside one parallel region.
package bad

import (
	"sync/atomic"

	"nwhy/internal/parallel"
)

// Claim reads state plainly and claims it atomically in the same region;
// the plain read races with concurrent stores from other workers.
func Claim(eng *parallel.Engine, state []int32, n int) {
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if state[v] != 0 { // want atomic-mixing
				continue
			}
			atomic.StoreInt32(&state[v], 1)
		}
	})
}

// ClaimAliased hides the same mix behind a rename: view aliases state, so
// the plain read through view races with the atomic claims of state.
func ClaimAliased(eng *parallel.Engine, state []int32, n int) {
	view := state
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if view[v] != 0 { // want atomic-mixing
				continue
			}
			atomic.StoreInt32(&state[v], 1)
		}
	})
}
