// Package clean separates plain initialization and atomic claiming into
// distinct parallel regions; the barrier between the two regions keeps the
// phases race-free, so neither is flagged.
package clean

import (
	"sync/atomic"

	"nwhy/internal/parallel"
)

// Claim initializes plainly in one region, then claims atomically in the
// next.
func Claim(eng *parallel.Engine, state []int32, n int) {
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			state[v] = 0
		}
	})
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			atomic.StoreInt32(&state[v], 1)
		}
	})
}

// PhasedAlias initializes plainly through an alias in one region and
// claims atomically in a later one; the barrier between regions separates
// the phases, alias or not.
func PhasedAlias(eng *parallel.Engine, state []int32, n int) {
	view := state
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			view[v] = 0
		}
	})
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			atomic.StoreInt32(&state[v], 1)
		}
	})
}
