// Package clean follows the stateBox protocol: cur is only touched in
// mutation.go, readers use snap(), and the CAS publish result is checked.
package clean

import "sync/atomic"

type snapshot struct{ epoch uint64 }

type stateBox struct {
	cur atomic.Pointer[snapshot]
}

func newStateBox() *stateBox {
	st := &stateBox{}
	st.cur.Store(&snapshot{})
	return st
}

func (b *stateBox) snap() *snapshot { return b.cur.Load() }

// commit surfaces a lost race to the caller.
func (b *stateBox) commit(old, next *snapshot) bool {
	return b.cur.CompareAndSwap(old, next)
}
