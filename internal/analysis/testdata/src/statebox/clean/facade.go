package clean

// Epoch reads through the snap() accessor.
func Epoch(b *stateBox) uint64 {
	return b.snap().epoch
}

// Publish retries through the checked commit path.
func Publish(b *stateBox) {
	for {
		old := b.snap()
		if b.commit(old, &snapshot{epoch: old.epoch + 1}) {
			return
		}
	}
}
