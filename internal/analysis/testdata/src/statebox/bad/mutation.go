// Package bad breaks the stateBox protocol: a CAS publish whose result is
// thrown away (here, in the accessor file itself) and a reader in another
// file that bypasses snap().
package bad

import "sync/atomic"

type snapshot struct{ epoch uint64 }

// stateBox holds the current snapshot behind one atomic pointer.
type stateBox struct {
	cur atomic.Pointer[snapshot]
}

func newStateBox() *stateBox {
	st := &stateBox{}
	st.cur.Store(&snapshot{})
	return st
}

func (b *stateBox) snap() *snapshot { return b.cur.Load() }

// commitRacy publishes without checking the swap: a racing commit is
// silently lost instead of surfacing as a conflict.
func (b *stateBox) commitRacy(old, next *snapshot) {
	b.cur.CompareAndSwap(old, next) // want statebox-discipline
}

// commit is the correct shape.
func (b *stateBox) commit(old, next *snapshot) bool {
	return b.cur.CompareAndSwap(old, next)
}
