package bad

// Epoch reads the atomic pointer directly instead of going through snap(),
// pinning the raw protocol outside the accessor file.
func Epoch(b *stateBox) uint64 {
	return b.cur.Load().epoch // want statebox-discipline
}
