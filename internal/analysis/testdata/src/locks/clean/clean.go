// Package clean holds its locks correctly: deferred unlocks, plain
// lock/unlock spans with the blocking work outside them, closures with
// their own balanced pairs, and a deferred literal carrying the unlock.
package clean

import (
	"sync"

	"nwhy/internal/parallel"
)

type store struct {
	mu sync.Mutex
	n  int
	ch chan int
}

// get pairs with a defer.
func (s *store) get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// update releases the lock before the parallel region and the channel
// send: the hazards sit outside the held span.
func (s *store) update(eng *parallel.Engine) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	eng.ForEach(n, func(i int) { _ = i })
	s.ch <- n
}

// each carries a balanced pair inside its own closure scope.
func (s *store) each(fn func()) {
	helper := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		fn()
	}
	helper()
}

// reset defers a literal whose body performs the unlock at function exit.
func (s *store) reset() {
	s.mu.Lock()
	defer func() {
		s.n = 0
		s.mu.Unlock()
	}()
	s.n++
}

// loopStep unlocks at the top of the next iteration; the unlock sits
// lexically before the lock but still pairs.
func (s *store) loopStep(rounds int) {
	for i := 0; i < rounds; i++ {
		if i > 0 {
			s.mu.Unlock()
		}
		s.mu.Lock()
		s.n++
	}
	s.mu.Unlock()
}
