// Package bad violates both lock disciplines: locks without a matching
// unlock, leak paths that return with the lock held, and serving-layer
// stalls where parallel work or channel operations run under the lock.
package bad

import (
	"sync"

	"nwhy/internal/parallel"
)

type store struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
	ch chan int
}

// leak never unlocks.
func (s *store) leak() {
	s.mu.Lock() // want locks-balanced
	s.n++
}

// earlyReturn exits with the lock held on the error path.
func (s *store) earlyReturn(bad bool) int {
	s.mu.Lock()
	if bad {
		return -1 // want locks-balanced
	}
	n := s.n
	s.mu.Unlock()
	return n
}

// heldAcross schedules a parallel region and performs channel operations
// while holding the lock: every request sharing s.mu stalls behind the
// pool.
func (s *store) heldAcross(eng *parallel.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	eng.ForEach(4, func(i int) { _ = i }) // want locks-balanced
	s.ch <- 1                             // want locks-balanced
	<-s.ch                                // want locks-balanced
}

// rleak takes the read lock and never releases it.
func (s *store) rleak() int {
	s.rw.RLock() // want locks-balanced
	return s.n
}
