package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Check{
		Name: "engine-first",
		Doc: "kernels take the *parallel.Engine as their first argument; " +
			"parallel.SharedEngine() is confined to the facade package",
		Run: runEngineFirst,
	})
}

// runEngineFirst enforces the explicit-engine discipline of PR 1:
//
//   - in the algorithm-layer packages, any function with a
//     *parallel.Engine parameter must take it first (functions without an
//     engine parameter receive it through a carrying type, e.g. a method
//     whose receiver holds one, and are not flagged);
//   - the algorithm-layer packages must not declare package-level engines
//     nor call the default-pool loop entry points (parallel.For /
//     parallel.ForEach / parallel.Reduce) — both are backdoors to implicit
//     process-global execution state;
//   - parallel.SharedEngine() may only be referenced from the facade
//     package (the module root) and the runtime itself. Everything else
//     receives its engine from the caller.
//
// Test files are exempt throughout: tests construct and share engines
// freely.
func runEngineFirst(p *Pass) {
	facade := p.Pkg.Path == p.Pkg.Module
	if !facade && !isParallelPkg(p.Pkg.Path) {
		p.walkFiles(func(f *File) {
			ast.Inspect(f.AST, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "SharedEngine" {
					return true
				}
				if f.Info != nil {
					if fn, isFn := f.Info.Uses[sel.Sel].(*types.Func); isFn {
						if isParallelModulePkg(funcPkgPath(fn)) {
							p.Reportf(sel.Pos(), "parallel.SharedEngine is confined to the facade package; take a *parallel.Engine from the caller instead")
						}
						return true
					}
				}
				if base := pathOf(sel.X); base != "" && f.Imports[base] == parallelPkg {
					p.Reportf(sel.Pos(), "parallel.SharedEngine is confined to the facade package; take a *parallel.Engine from the caller instead")
				}
				return true
			})
		})
	}

	if !isKernelPkg(p.Pkg.Path) {
		return
	}
	p.walkFiles(func(f *File) {
		for _, decl := range f.AST.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkEngineParamFirst(p, f, d)
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					if vs.Type != nil && isEnginePtrType(f, vs.Type) {
						p.Reportf(vs.Pos(), "package-level *parallel.Engine variable; kernels must receive their engine per call")
					}
					for _, v := range vs.Values {
						call, ok := ast.Unparen(v).(*ast.CallExpr)
						if !ok {
							continue
						}
						if fn := typedCallee(f, call); fn != nil {
							if isParallelModulePkg(funcPkgPath(fn)) &&
								(fn.Name() == "SharedEngine" || fn.Name() == "NewEngine") {
								p.Reportf(vs.Pos(), "package-level engine binding (parallel.%s); kernels must receive their engine per call", fn.Name())
							}
							continue
						}
						if base, name := selectorCall(call); f.Imports[base] == parallelPkg &&
							(name == "SharedEngine" || name == "NewEngine") {
							p.Reportf(vs.Pos(), "package-level engine binding (%s.%s); kernels must receive their engine per call", base, name)
						}
					}
				}
			}
		}
		// Default-pool loop entry points bypass the caller's engine
		// (ReduceWith and Drain take an explicit engine and are fine).
		ast.Inspect(f.AST, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := typedCallee(f, call); fn != nil {
				if isParallelModulePkg(funcPkgPath(fn)) && recvTypeName(fn) == "" && defaultPoolFuncNames[fn.Name()] {
					p.Reportf(call.Pos(), "parallel.%s schedules on the process default pool; run the loop on the caller's engine", fn.Name())
				}
				return true
			}
			if base, name := selectorCall(call); base != "" && f.Imports[base] == parallelPkg && defaultPoolFuncNames[name] {
				p.Reportf(call.Pos(), "parallel.%s schedules on the process default pool; run the loop on the caller's engine", name)
			}
			return true
		})
	})
}

// checkEngineParamFirst flags engine parameters that are not first.
func checkEngineParamFirst(p *Pass, f *File, d *ast.FuncDecl) {
	if d.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range d.Type.Params.List {
		width := len(field.Names)
		if width == 0 {
			width = 1
		}
		if isEnginePtrType(f, field.Type) && idx != 0 {
			p.Reportf(field.Pos(), "%s takes *parallel.Engine as parameter %d; the engine must come first", d.Name.Name, idx+1)
		}
		idx += width
	}
}
