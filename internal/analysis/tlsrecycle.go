package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Check{
		Name: "tls-recycle",
		Doc: "arena Gets (Engine.GrabU32/Grab) in kernels must have a " +
			"matching Stash/FlattenTLS/Release in the same function",
		Run: runTLSRecycle,
	})
}

// grabNames / recycleNames are the two halves of the arena protocol.
// FlattenTLS counts as a recycle because it drains per-worker buffers into
// one result and hands each buffer to its recycle callback; Release counts
// because frontier.Release stashes both frontier buffers.
var (
	grabNames    = map[string]bool{"GrabU32": true, "Grab": true}
	recycleNames = map[string]bool{"StashU32": true, "Stash": true, "FlattenTLS": true, "Release": true}
)

// runTLSRecycle pairs arena Gets with their recycle, per function, inside
// the kernel packages. The pairing is lexical (AST-level), not data-flow:
//
//   - a function that acquires arena scratch but never mentions a recycle
//     leaks buffers out of the steady-state reuse loop — flagged at the
//     grab;
//   - a return statement lexically between the first grab and the first
//     recycle mention is an escape path on which nothing has been stashed
//     yet — flagged at the return.
//
// Two package-local wrapper patterns are understood so the check pairs at
// the right altitude: a function that returns arena-grabbed scratch to its
// caller (an ownership-transferring grab wrapper, e.g. slinegraph's
// grabCounter) is exempt itself and counts as a grab at its call sites, and
// a function that contains a recycle (e.g. stashCounter, or counterTLS
// returning a release closure) counts as a recycle at its call sites. The
// frontier substrate is outside the kernel scope entirely: its
// constructors transfer buffer ownership into the Frontier, recycled by
// EdgeMap or Release at the consumer.
func runTLSRecycle(p *Pass) {
	if !isKernelPkg(p.Pkg.Path) {
		return
	}
	grabLike, recycleLike := arenaWrappers(p)
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		if d.Recv == nil && grabLike[d.Name.Name] {
			return // transfers ownership of the grabbed scratch to its caller
		}
		var grabs, recycles []token.Pos
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if isArenaSel(f, n, grabNames) {
					grabs = append(grabs, n.Pos())
				} else if isArenaSel(f, n, recycleNames) {
					recycles = append(recycles, n.Pos())
				}
			case *ast.CallExpr:
				if base, name := selectorCall(n); base == "" {
					if grabLike[name] {
						grabs = append(grabs, n.Pos())
					} else if recycleLike[name] {
						recycles = append(recycles, n.Pos())
					}
				}
			}
			return true
		})
		if len(grabs) == 0 {
			return
		}
		if len(recycles) == 0 {
			p.Reportf(grabs[0], "%s grabs arena scratch but never stashes it back (no Stash/FlattenTLS/Release on any path)", d.Name.Name)
			return
		}
		firstGrab, firstRecycle := grabs[0], recycles[0]
		for _, r := range recycles {
			if r < firstRecycle {
				firstRecycle = r
			}
		}
		ast.Inspect(d.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			if ret.Pos() > firstGrab && ret.Pos() < firstRecycle {
				p.Reportf(ret.Pos(), "return path between arena grab and its recycle in %s; stash scratch before returning", d.Name.Name)
			}
			return true
		})
	})
}

// arenaWrappers classifies package-local functions: grabLike functions
// hand arena-grabbed scratch to their caller (a grab reaches a return
// statement), recycleLike functions contain a recycle mention. Both close
// transitively over package-local calls.
func arenaWrappers(p *Pass) (grabLike, recycleLike map[string]bool) {
	grabLike, recycleLike = map[string]bool{}, map[string]bool{}
	type fnDecl struct {
		decl *ast.FuncDecl
		file *File
	}
	decls := map[string]fnDecl{}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		if d.Recv == nil {
			decls[d.Name.Name] = fnDecl{d, f}
		}
	})
	for changed := true; changed; {
		changed = false
		for name, fd := range decls {
			if !grabLike[name] && returnsGrabbedScratch(fd.file, fd.decl, grabLike) {
				grabLike[name] = true
				changed = true
			}
			if !recycleLike[name] && mentionsRecycle(fd.file, fd.decl, recycleLike) {
				recycleLike[name] = true
				changed = true
			}
		}
	}
	return grabLike, recycleLike
}

// returnsGrabbedScratch reports whether a grab result reaches a return
// statement of d: a return expression containing a grab call directly, or
// containing an identifier previously assigned from one.
func returnsGrabbedScratch(f *File, d *ast.FuncDecl, grabLike map[string]bool) bool {
	if d.Type.Results == nil || len(d.Type.Results.List) == 0 {
		return false
	}
	isGrabCall := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return isArenaSel(f, sel, grabNames)
		}
		base, name := selectorCall(call)
		return base == "" && grabLike[name]
	}
	// Identifiers assigned (directly or through a pointer) from a grab.
	tainted := map[string]bool{}
	ast.Inspect(d.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		fromGrab := false
		for _, rhs := range as.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				if isGrabCall(m) {
					fromGrab = true
				}
				return !fromGrab
			})
		}
		if !fromGrab {
			return true
		}
		for _, lhs := range as.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				tainted[l.Name] = true
			case *ast.StarExpr:
				if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
					tainted[id.Name] = true
				}
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(m ast.Node) bool {
				if escapes {
					return false
				}
				if isGrabCall(m) {
					escapes = true
				}
				if id, ok := m.(*ast.Ident); ok && tainted[id.Name] {
					escapes = true
				}
				return true
			})
		}
		return true
	})
	return escapes
}

// mentionsRecycle reports whether d contains a recycle selector or a call
// to a recycleLike package-local function.
func mentionsRecycle(f *File, d *ast.FuncDecl, recycleLike map[string]bool) bool {
	found := false
	ast.Inspect(d.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if isArenaSel(f, n, recycleNames) {
				found = true
			}
		case *ast.CallExpr:
			if base, name := selectorCall(n); base == "" && recycleLike[name] {
				found = true
			}
		}
		return true
	})
	return found
}

// isArenaSel reports whether sel mentions one of the arena protocol names.
// When the selector resolves, the callee must actually belong to the
// parallel runtime or the frontier substrate — an unrelated method that
// happens to be called Stash no longer satisfies a grab. Unresolved
// selectors (type errors, untyped loads) are accepted by name, as before.
func isArenaSel(f *File, sel *ast.SelectorExpr, names map[string]bool) bool {
	if !names[sel.Sel.Name] {
		return false
	}
	if f != nil && f.Info != nil {
		if obj := f.Info.Uses[sel.Sel]; obj != nil {
			fn, ok := obj.(*types.Func)
			if !ok {
				return false
			}
			pkg := funcPkgPath(fn)
			return isParallelModulePkg(pkg) || isFrontierPkg(pkg)
		}
	}
	return true
}
