package analysis

import "go/ast"

func init() {
	Register(&Check{
		Name: "no-naked-goroutine",
		Doc: "go statements are forbidden outside internal/parallel; " +
			"all concurrency flows through the pool",
		Run: runNoNakedGoroutine,
	})
}

// runNoNakedGoroutine flags every go statement outside the concurrency
// runtime. Kernels and commands schedule work through the engine
// (Engine.For*/Invoke/Go), which keeps the worker budget, cancellation,
// and per-worker scratch arenas coherent; a naked goroutine escapes all
// three. Test files are exempt — tests legitimately spin up goroutines to
// exercise concurrency.
func runNoNakedGoroutine(p *Pass) {
	if isParallelPkg(p.Pkg.Path) {
		return
	}
	p.walkFiles(func(f *File) {
		ast.Inspect(f.AST, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "naked goroutine; route concurrency through the engine's pool (Engine.Go / Engine.Invoke / Engine.For*)")
			}
			return true
		})
	})
}
