package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

func init() {
	Register(&Check{
		Name: "atomic-mixing",
		Doc: "a slice accessed atomically inside a parallel region must not " +
			"also be plainly indexed in the same region",
		Run: runAtomicMixing,
	})
}

// runAtomicMixing hunts the race pattern that erodes silently as kernels
// evolve: a shared array whose elements are claimed with sync/atomic or
// internal/parallel atomic helpers in one place and plainly read or
// written elsewhere in the same parallel region. The scope is one region —
// the union of all function literals passed to a single Engine.For*/
// Invoke/Go/EdgeMap/parallel.Reduce* call — because that is exactly where
// concurrent execution overlaps; the ubiquitous and race-free
// initialize-plainly-then-claim-atomically-in-a-later-phase pattern
// (phases are separated by the loop's barrier) is deliberately not
// flagged.
//
// The analysis is name-based (dotted selector paths like "state" or
// "r.Level"); aliasing through extra assignments is out of scope, as is
// proving that a flagged access is dominated by a successful CAS.
func runAtomicMixing(p *Pass) {
	if isParallelPkg(p.Pkg.Path) {
		return
	}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		ast.Inspect(d, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			closures, isRegion := isParallelRegionCall(f, call)
			if !isRegion || len(closures) == 0 {
				return true
			}
			checkRegion(p, f, closures)
			return true
		})
	})
}

// checkRegion inspects the closures of one parallel region together.
func checkRegion(p *Pass, f *File, closures []*ast.FuncLit) {
	// Pass 1: find atomic accesses — &base or &base[...] arguments to an
	// atomic call — recording the bases and the argument spans.
	atomicBases := map[string]bool{}
	type span struct{ lo, hi token.Pos }
	var atomicArgSpans []span
	for _, cl := range closures {
		ast.Inspect(cl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(f, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				base := ""
				if ix, ok := target.(*ast.IndexExpr); ok {
					base = pathOf(ix.X)
				} else {
					base = pathOf(target)
				}
				if base != "" {
					atomicBases[base] = true
					atomicArgSpans = append(atomicArgSpans, span{un.Pos(), un.End()})
				}
			}
			return true
		})
	}
	if len(atomicBases) == 0 {
		return
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicArgSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	// Pass 2: find plain element accesses of the same bases.
	plain := map[string]token.Pos{}
	for _, cl := range closures {
		ast.Inspect(cl, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			base := pathOf(ix.X)
			if base == "" || !atomicBases[base] || inAtomicArg(ix.Pos()) {
				return true
			}
			if cur, seen := plain[base]; !seen || ix.Pos() < cur {
				plain[base] = ix.Pos()
			}
			return true
		})
	}
	bases := make([]string, 0, len(plain))
	for base := range plain {
		bases = append(bases, base)
	}
	sort.Strings(bases)
	for _, base := range bases {
		p.Reportf(plain[base], "%s is accessed atomically in this parallel region; this plain element access races with those atomics", base)
	}
}
