package analysis

import (
	"go/ast"
	"go/token"
	"sort"
)

func init() {
	Register(&Check{
		Name: "atomic-mixing",
		Doc: "a slice accessed atomically inside a parallel region must not " +
			"also be plainly indexed in the same region, aliases included",
		Run: runAtomicMixing,
	})
}

// runAtomicMixing hunts the race pattern that erodes silently as kernels
// evolve: a shared array whose elements are claimed with sync/atomic or
// internal/parallel atomic helpers in one place and plainly read or
// written elsewhere in the same parallel region. The scope is one region —
// the union of all function literals passed to a single Engine.For*/
// Invoke/Go/EdgeMap/parallel.Reduce*/Drain call — because that is exactly
// where concurrent execution overlaps; the ubiquitous and race-free
// initialize-plainly-then-claim-atomically-in-a-later-phase pattern
// (phases are separated by the loop's barrier) is deliberately not
// flagged.
//
// Base identity is typed: a selector chain resolves to its go/types
// objects, and simple aliases (view := state, d := r.dist — anywhere in
// the enclosing function, including other closures) are unified, so
// renaming a slice no longer hides the mix. Chains that fail to resolve
// (type errors, untyped loads) fall back to the rendered path string, as
// before. Proving that a flagged access is dominated by a successful CAS
// remains out of scope.
func runAtomicMixing(p *Pass) {
	if isParallelPkg(p.Pkg.Path) {
		return
	}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		aliases := collectAliases(f, d)
		ast.Inspect(d, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			closures, isRegion := isParallelRegionCall(f, call)
			if !isRegion || len(closures) == 0 {
				return true
			}
			checkRegion(p, f, closures, aliases)
			return true
		})
	})
}

// aliasSets is a union-find over base keys, fed by plain chain-to-chain
// assignments in the enclosing function.
type aliasSets struct {
	parent map[string]string
}

func (a *aliasSets) find(k string) string {
	if a == nil || a.parent == nil {
		return k
	}
	root := k
	for {
		p, ok := a.parent[root]
		if !ok || p == root {
			return root
		}
		root = p
	}
}

func (a *aliasSets) union(k1, k2 string) {
	r1, r2 := a.find(k1), a.find(k2)
	if r1 != r2 {
		a.parent[r1] = r2
	}
}

// collectAliases unifies the two sides of every assignment of the shape
// lhsChain = rhsChain (x := y, d = r.dist) under d, so a region accessing
// the slice under either name is analyzed as one base.
func collectAliases(f *File, d *ast.FuncDecl) *aliasSets {
	a := &aliasSets{parent: map[string]string{}}
	ast.Inspect(d, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			lk, _ := memKey(f, as.Lhs[i])
			rk, _ := memKey(f, as.Rhs[i])
			if lk != "" && rk != "" {
				a.union(lk, rk)
			}
		}
		return true
	})
	return a
}

// checkRegion inspects the closures of one parallel region together.
func checkRegion(p *Pass, f *File, closures []*ast.FuncLit, aliases *aliasSets) {
	// Pass 1: find atomic accesses — &base or &base[...] arguments to an
	// atomic call — recording the canonical bases and the argument spans.
	atomicBases := map[string]bool{}
	type span struct{ lo, hi token.Pos }
	var atomicArgSpans []span
	for _, cl := range closures {
		ast.Inspect(cl, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(f, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				target := ast.Unparen(un.X)
				var key string
				if ix, ok := target.(*ast.IndexExpr); ok {
					key, _ = memKey(f, ix.X)
				} else {
					key, _ = memKey(f, target)
				}
				if key != "" {
					atomicBases[aliases.find(key)] = true
					atomicArgSpans = append(atomicArgSpans, span{un.Pos(), un.End()})
				}
			}
			return true
		})
	}
	if len(atomicBases) == 0 {
		return
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range atomicArgSpans {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}
	// Pass 2: find plain element accesses of the same canonical bases.
	type hit struct {
		pos  token.Pos
		path string
	}
	plain := map[string]hit{}
	for _, cl := range closures {
		ast.Inspect(cl, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			key, path := memKey(f, ix.X)
			if key == "" || path == "" {
				return true
			}
			key = aliases.find(key)
			if !atomicBases[key] || inAtomicArg(ix.Pos()) {
				return true
			}
			if cur, seen := plain[key]; !seen || ix.Pos() < cur.pos {
				plain[key] = hit{ix.Pos(), path}
			}
			return true
		})
	}
	keys := make([]string, 0, len(plain))
	for key := range plain {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		h := plain[key]
		p.Reportf(h.pos, "%s is accessed atomically in this parallel region; this plain element access races with those atomics", h.path)
	}
}
