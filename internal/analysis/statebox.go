package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

func init() {
	Register(&Check{
		Name: "statebox-discipline",
		Doc: "the facade's atomic stateBox is only touched through " +
			"mutation.go's accessors, and every CAS publish result is checked",
		Run: runStateboxDiscipline,
	})
}

// runStateboxDiscipline machine-checks the epoch-swap protocol the facade's
// mutation tier established: the current snapshot lives in stateBox.cur (an
// atomic.Pointer), readers go through the snap() load helper, and commits
// publish via CompareAndSwap so a racing commit surfaces as
// ErrMutationConflict instead of silently clobbering. Two rules, typed
// (files without type information are skipped):
//
//   - any selection of the cur field on the package's stateBox type outside
//     mutation.go is a diagnostic — new code must use the accessors, which
//     keeps the protocol swappable (epoch counters, seqlocks) behind two
//     functions;
//   - a CompareAndSwap call on stateBox.cur whose result is discarded is a
//     diagnostic anywhere, mutation.go included: an unchecked CAS publish
//     is exactly the lost-update bug the protocol exists to prevent.
//
// The check applies to the facade package only (fixture packages with a
// stateBox type of their own get the same treatment).
func runStateboxDiscipline(p *Pass) {
	if p.Pkg.Path != p.Pkg.Module {
		return
	}
	p.walkFiles(func(f *File) {
		if f.Info == nil {
			return
		}
		inAccessorFile := filepath.Base(f.Name) == "mutation.go"
		ast.Inspect(f.AST, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isStateboxCASCall(p, f, call) {
					p.Reportf(call.Pos(), "stateBox CAS publish result is discarded; check the swap and surface ErrMutationConflict (or retry) on failure")
				}
			case *ast.SelectorExpr:
				if !inAccessorFile && isStateboxCurField(p, f, n) {
					p.Reportf(n.Sel.Pos(), "direct stateBox access outside mutation.go; read through snap() and publish through the CAS commit path")
				}
			}
			return true
		})
	})
}

// isStateboxCurField reports whether sel selects the cur field of the
// facade package's stateBox type.
func isStateboxCurField(p *Pass, f *File, sel *ast.SelectorExpr) bool {
	s := f.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || v.Name() != "cur" {
		return false
	}
	rt := types.Unalias(s.Recv())
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = types.Unalias(ptr.Elem())
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "stateBox" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == p.Pkg.Path
}

// isStateboxCASCall reports whether call is a CompareAndSwap publish on a
// stateBox.cur field.
func isStateboxCASCall(p *Pass, f *File, call *ast.CallExpr) bool {
	fn := typedCallee(f, call)
	if fn == nil || fn.Name() != "CompareAndSwap" ||
		funcPkgPath(fn) != "sync/atomic" || recvTypeName(fn) != "Pointer" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	return ok && isStateboxCurField(p, f, inner)
}
