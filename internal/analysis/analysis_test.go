package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// loadFixturePkg parses one testdata fixture directory under a simulated
// import path, so kernel- and facade-scoped checks see the path shape they
// key on.
func loadFixturePkg(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := LoadDir(fset, dir, importPath, "nwhy")
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

const wantMarker = "// want "

// wantedDiags collects the // want <check...> line markers of a fixture
// package as a map from "file:line" to the expected check names (sorted).
func wantedDiags(t *testing.T, pkg *Package) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	for _, f := range pkg.Files {
		data, err := os.ReadFile(f.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			key := fmt.Sprintf("%s:%d", f.Name, i+1)
			want[key] = append(want[key], strings.Fields(line[idx+len(wantMarker):])...)
			sort.Strings(want[key])
		}
	}
	return want
}

// gotDiags groups diagnostics the same way wantedDiags groups markers.
func gotDiags(diags []Diagnostic) map[string][]string {
	got := map[string][]string{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Check)
		sort.Strings(got[key])
	}
	return got
}

// TestGoldenFixtures runs each check over its violating and clean fixture
// packages and compares the diagnostics against the // want line markers.
// The bad fixtures double as the exit-code guarantee: an engine param out
// of position, a naked go statement, and friends all must produce
// diagnostics.
func TestGoldenFixtures(t *testing.T) {
	cases := []struct {
		name  string
		check string
		dir   string
		path  string
	}{
		{"engine-first/bad", "engine-first", "enginefirst/bad", "nwhy/internal/graph"},
		{"engine-first/clean", "engine-first", "enginefirst/clean", "nwhy/internal/graph"},
		{"engine-first/facade", "engine-first", "enginefirst/facade", "nwhy"},
		{"no-naked-goroutine/bad", "no-naked-goroutine", "goroutine/bad", "nwhy/internal/core"},
		{"no-naked-goroutine/clean", "no-naked-goroutine", "goroutine/clean", "nwhy/internal/core"},
		{"atomic-mixing/bad", "atomic-mixing", "atomicmix/bad", "nwhy/internal/graph"},
		{"atomic-mixing/clean", "atomic-mixing", "atomicmix/clean", "nwhy/internal/graph"},
		{"ctx-at-rounds/bad", "ctx-at-rounds", "ctxrounds/bad", "nwhy/internal/graph"},
		{"ctx-at-rounds/clean", "ctx-at-rounds", "ctxrounds/clean", "nwhy/internal/graph"},
		{"ctx-first-handler/bad", "ctx-first-handler", "ctxhandler/bad", "nwhy/cmd/nwhyd"},
		{"ctx-first-handler/clean", "ctx-first-handler", "ctxhandler/clean", "nwhy/internal/server"},
		{"tls-recycle/bad", "tls-recycle", "tlsrecycle/bad", "nwhy/internal/graph"},
		{"tls-recycle/clean", "tls-recycle", "tlsrecycle/clean", "nwhy/internal/graph"},
		{"ctx-propagation/bad", "ctx-propagation", "ctxprop/bad", "nwhy/internal/server"},
		{"ctx-propagation/clean", "ctx-propagation", "ctxprop/clean", "nwhy/internal/server"},
		{"locks-balanced/bad", "locks-balanced", "locks/bad", "nwhy/internal/server"},
		{"locks-balanced/clean", "locks-balanced", "locks/clean", "nwhy/internal/server"},
		{"statebox-discipline/bad", "statebox-discipline", "statebox/bad", "nwhy"},
		{"statebox-discipline/clean", "statebox-discipline", "statebox/clean", "nwhy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			check := LookupCheck(tc.check)
			if check == nil {
				t.Fatalf("check %q not registered", tc.check)
			}
			pkg := loadFixturePkg(t, filepath.Join("testdata", "src", tc.dir), tc.path)
			want := wantedDiags(t, pkg)
			if strings.HasSuffix(tc.name, "/bad") && len(want) == 0 {
				t.Fatalf("bad fixture %s has no // want markers", tc.dir)
			}
			diags := Run([]*Package{pkg}, []*Check{check}, Options{})
			got := gotDiags(diags)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("diagnostics mismatch\n got: %v\nwant: %v\nfull output:\n%s", got, want, render(diags))
			}
		})
	}
}

func render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintln(&b, d.String())
	}
	return b.String()
}

// TestRepoIsClean runs the full check suite over the real module and
// demands zero diagnostics — the tree must stay lint-clean, with every
// suppression justified and used.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, Checks(), Options{ReportUnusedSuppressions: true})
	if len(diags) != 0 {
		t.Errorf("repository is not lint-clean:\n%s", render(diags))
	}
}

// TestDiagnosticString pins the file:line:col: check: message format the CI
// step and editors key on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "x.go", Line: 3, Column: 7},
		Check:   "engine-first",
		Message: "m",
	}
	if got, want := d.String(), "x.go:3:7: engine-first: m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestChecksRegistered pins the check vocabulary: the nine invariants must
// all be registered, sorted, and uniquely named.
func TestChecksRegistered(t *testing.T) {
	want := []string{
		"atomic-mixing", "ctx-at-rounds", "ctx-first-handler",
		"ctx-propagation", "engine-first", "locks-balanced",
		"no-naked-goroutine", "statebox-discipline", "tls-recycle",
	}
	var got []string
	for _, c := range Checks() {
		got = append(got, c.Name)
		if c.Doc == "" {
			t.Errorf("check %s has no doc string", c.Name)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Checks() = %v, want %v", got, want)
	}
}
