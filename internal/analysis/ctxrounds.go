package analysis

import "go/ast"

func init() {
	Register(&Check{
		Name: "ctx-at-rounds",
		Doc: "multi-round driver loops in kernels must observe cancellation " +
			"(eng.Err / eng.Cancelled / ctx.Err) every round",
		Run: runCtxAtRounds,
	})
}

// runCtxAtRounds enforces the grain-boundary cancellation contract at the
// next level up: a loop that repeatedly launches parallel work (a BFS
// round loop, a PageRank iteration loop, an ensemble sweep) must check for
// cancellation between rounds, otherwise a cancelled engine merely stops
// scheduling grains while the driver keeps spinning rounds forever.
//
// "Launches parallel work" is computed package-locally: a function is
// parallel if it contains a region call (Engine.For*/Invoke/Go/EdgeMap,
// parallel.Reduce*) or calls another function of the same package that is,
// transitively. A loop whose body (or condition) contains a parallel call
// then needs a cancellation observer — a call to Err or Cancelled — in its
// condition or body. Cross-package kernel calls (e.g. core driving
// graph.CCAfforest) are resolved by name against the known region
// vocabulary only, so the check under-approximates across packages rather
// than guessing.
func runCtxAtRounds(p *Pass) {
	if !isKernelPkg(p.Pkg.Path) {
		return
	}
	parallelFns := packageParallelFuncs(p)
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		ast.Inspect(d, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var cond ast.Expr
			switch loop := n.(type) {
			case *ast.ForStmt:
				body, cond = loop.Body, loop.Cond
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !launchesParallelWork(f, body, parallelFns) {
				return true
			}
			if containsCancellationCheck(body) || (cond != nil && containsCancellationCheck(cond)) {
				return true
			}
			p.Reportf(n.Pos(), "round loop launches parallel work but never observes cancellation; check eng.Err()/eng.Cancelled() each round")
			return true
		})
	})
}

// packageParallelFuncs computes the transitive closure of package-local
// functions that launch parallel work.
func packageParallelFuncs(p *Pass) map[string]bool {
	type fn struct {
		decl *ast.FuncDecl
		file *File
	}
	decls := map[string]fn{}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		if d.Recv == nil { // methods are resolved through regionMethods instead
			decls[d.Name.Name] = fn{d, f}
		}
	})
	parallel := map[string]bool{}
	for name, fd := range decls {
		if containsRegionCall(fd.file, fd.decl.Body) {
			parallel[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, fd := range decls {
			if parallel[name] {
				continue
			}
			callsParallel := false
			ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
				if callsParallel {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if base, callee := selectorCall(call); base == "" && parallel[callee] {
						callsParallel = true
					}
				}
				return true
			})
			if callsParallel {
				parallel[name] = true
				changed = true
			}
		}
	}
	return parallel
}

func containsRegionCall(f *File, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := isParallelRegionCall(f, call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// launchesParallelWork reports whether root contains a region call or a
// call to a package-local parallel function.
func launchesParallelWork(f *File, root ast.Node, parallelFns map[string]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isParallelRegionCall(f, call); ok {
			found = true
			return false
		}
		if base, callee := selectorCall(call); base == "" && parallelFns[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}
