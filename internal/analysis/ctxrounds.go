package analysis

import "go/ast"

func init() {
	Register(&Check{
		Name: "ctx-at-rounds",
		Doc: "multi-round driver loops in kernels must observe cancellation " +
			"(eng.Err / eng.Cancelled / ctx.Err) every round",
		Run: runCtxAtRounds,
	})
}

// runCtxAtRounds enforces the grain-boundary cancellation contract at the
// next level up: a loop that repeatedly launches parallel work (a BFS
// round loop, a PageRank iteration loop, an ensemble sweep) must check for
// cancellation between rounds, otherwise a cancelled engine merely stops
// scheduling grains while the driver keeps spinning rounds forever.
//
// "Launches parallel work" resolves through the module call graph when
// type information is available: a loop is parallel if it contains a
// region call or a statically resolved call — cross-package and method
// calls included — to a function that transitively schedules on pool
// workers. Untyped files keep the original package-local name closure, so
// fixtures with deliberate type errors degrade rather than break. The
// cancellation observer is typed too: Engine.Err/Cancelled or
// context.Context.Err/Done, verified by receiver.
func runCtxAtRounds(p *Pass) {
	if !isKernelPkg(p.Pkg.Path) {
		return
	}
	parallelFns := packageParallelFuncs(p)
	var cg *CallGraph
	if p.Mod != nil {
		cg = p.Mod.CallGraph()
	}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		ast.Inspect(d, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var cond ast.Expr
			switch loop := n.(type) {
			case *ast.ForStmt:
				body, cond = loop.Body, loop.Cond
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !launchesParallelWork(f, cg, body, parallelFns) {
				return true
			}
			if containsCancellationCheck(f, body) || (cond != nil && containsCancellationCheck(f, cond)) {
				return true
			}
			p.Reportf(n.Pos(), "round loop launches parallel work but never observes cancellation; check eng.Err()/eng.Cancelled() each round")
			return true
		})
	})
}

// packageParallelFuncs computes the transitive closure of package-local
// functions that launch parallel work — the untyped fallback vocabulary.
func packageParallelFuncs(p *Pass) map[string]bool {
	type fn struct {
		decl *ast.FuncDecl
		file *File
	}
	decls := map[string]fn{}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		if d.Recv == nil { // methods are resolved through regionMethods instead
			decls[d.Name.Name] = fn{d, f}
		}
	})
	parallel := map[string]bool{}
	for name, fd := range decls {
		if containsRegionCall(fd.file, fd.decl.Body) {
			parallel[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, fd := range decls {
			if parallel[name] {
				continue
			}
			callsParallel := false
			ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
				if callsParallel {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if base, callee := selectorCall(call); base == "" && parallel[callee] {
						callsParallel = true
					}
				}
				return true
			})
			if callsParallel {
				parallel[name] = true
				changed = true
			}
		}
	}
	return parallel
}

func containsRegionCall(f *File, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, ok := isParallelRegionCall(f, call); ok {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// launchesParallelWork reports whether root contains a region call, a
// statically resolved call to a function the call graph marks parallel, or
// (for unresolved calls) a call to a package-local parallel function by
// name.
func launchesParallelWork(f *File, cg *CallGraph, root ast.Node, parallelFns map[string]bool) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := isParallelRegionCall(f, call); ok {
			found = true
			return false
		}
		if cg != nil {
			if callee := typedCallee(f, call); callee != nil {
				if cg.LaunchesParallel(callee) {
					found = true
				}
				return !found
			}
		}
		if base, callee := selectorCall(call); base == "" && parallelFns[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}
