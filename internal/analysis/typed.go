package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nwhy/internal/parallel"
)

// The typed loader turns the parse-only tier into full go/types packages
// without leaving the standard library: module-internal imports are
// resolved by type-checking the imported directory from source, and
// everything else (stdlib) goes through go/importer's source-mode importer.
// Type-checking is error-tolerant — fixtures with deliberate type errors
// still load, with the errors collected on Package.TypeErrors and the
// affected identifiers simply absent from the Info maps (checks fall back
// to name matching there).

// stdlib is the process-wide cache in front of the source-mode stdlib
// importer. srcimporter is not safe for concurrent use and re-checking the
// standard library per Loader would dominate load time, so one instance
// (with its own FileSet — stdlib positions are never reported) serves every
// Loader behind a mutex.
var stdlib struct {
	mu   sync.Mutex
	imp  types.Importer
	pkgs map[string]*types.Package
	errs map[string]error
}

func stdImport(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	stdlib.mu.Lock()
	defer stdlib.mu.Unlock()
	if stdlib.imp == nil {
		stdlib.imp = importer.ForCompiler(token.NewFileSet(), "source", nil)
		stdlib.pkgs = map[string]*types.Package{}
		stdlib.errs = map[string]error{}
	}
	if p, ok := stdlib.pkgs[path]; ok {
		return p, nil
	}
	if err, ok := stdlib.errs[path]; ok {
		return nil, err
	}
	p, err := stdlib.imp.Import(path)
	if err != nil {
		stdlib.errs[path] = err
		return nil, err
	}
	stdlib.pkgs[path] = p
	return p, nil
}

// Loader parses and type-checks packages of one module. Each import path is
// checked at most once per Loader, so every consumer of a package sees the
// same *types.Package — object identity is what the call graph and the
// typed checks key on.
type Loader struct {
	Fset   *token.FileSet
	Root   string // module root directory
	Module string // module import path
	// Engine, when set, type-checks the packages of each DAG level in
	// parallel (levels are dependency-complete, so checks never race on an
	// import).
	Engine *parallel.Engine

	mu     sync.Mutex
	parsed map[string]*Package
	states map[string]*pkgState
}

// pkgState serializes the one-time lib-unit check of a package. Module
// import cycles would already fail `go build`, so the once-per-path
// recursion through the importer terminates.
type pkgState struct {
	once sync.Once
	pkg  *Package
	err  error
}

// NewLoader builds a Loader rooted at the module containing root/go.mod.
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return &Loader{Fset: token.NewFileSet(), Root: root, Module: module}, nil
}

func (l *Loader) stateFor(path string) *pkgState {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.states == nil {
		l.states = map[string]*pkgState{}
	}
	st := l.states[path]
	if st == nil {
		st = &pkgState{}
		l.states[path] = st
	}
	return st
}

// dirFor maps a module-internal import path to its directory on disk.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.Module {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(importPath, l.Module+"/")))
}

func (l *Loader) isModulePath(p string) bool {
	return p == l.Module || strings.HasPrefix(p, l.Module+"/")
}

// parsedPkg returns the parsed (but not necessarily type-checked) package
// for importPath, parsing its directory on first use.
func (l *Loader) parsedPkg(importPath string) (*Package, error) {
	l.mu.Lock()
	if p, ok := l.parsed[importPath]; ok {
		l.mu.Unlock()
		return p, nil
	}
	l.mu.Unlock()
	pkg, err := parseDir(l.Fset, l.dirFor(importPath), importPath, l.Module)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.parsed == nil {
		l.parsed = map[string]*Package{}
	}
	if p, ok := l.parsed[importPath]; ok {
		return p, nil // lost a parse race; keep the first
	}
	l.parsed[importPath] = pkg
	return pkg, nil
}

// seed registers an already-parsed package (fixture loading parses the
// target directory itself and resolves its imports against the real
// module).
func (l *Loader) seed(pkg *Package) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.parsed == nil {
		l.parsed = map[string]*Package{}
	}
	l.parsed[pkg.Path] = pkg
}

// libPkg returns importPath's package with its lib unit (non-test files)
// type-checked exactly once.
func (l *Loader) libPkg(importPath string) (*Package, error) {
	st := l.stateFor(importPath)
	st.once.Do(func() {
		pkg, err := l.parsedPkg(importPath)
		if err != nil {
			st.err = err
			return
		}
		l.checkLib(pkg)
		st.pkg = pkg
	})
	return st.pkg, st.err
}

// newTypesInfo allocates every Info map the checks consume, Instances
// included so generic call sites resolve.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// check runs one type-checking unit, collecting errors softly onto pkg.
// Each package is checked by exactly one goroutine, so the append is safe.
func (l *Loader) check(pkg *Package, path string, files []*ast.File, info *types.Info) *types.Package {
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	tp, _ := conf.Check(path, l.Fset, files, info)
	return tp
}

// checkLib type-checks the package's non-test files (the canonical unit
// other packages import) and attaches the Info to those files.
func (l *Loader) checkLib(pkg *Package) {
	info := newTypesInfo()
	var files []*ast.File
	var libFiles []*File
	for _, f := range pkg.Files {
		if !f.Test {
			files = append(files, f.AST)
			libFiles = append(libFiles, f)
		}
	}
	pkg.Types = l.check(pkg, pkg.Path, files, info)
	pkg.TypesInfo = info
	for _, f := range libFiles {
		f.Info = info
	}
}

// checkTests type-checks the package's test files: in-package tests are
// re-checked together with the lib files in a fresh unit (only the test
// files keep that Info — non-test files stay on the canonical lib unit),
// and external _test packages are checked as their own unit, importing the
// canonical package like any other consumer.
func (l *Loader) checkTests(pkg *Package) {
	var lib, intest, xtest []*File
	for _, f := range pkg.Files {
		switch {
		case !f.Test:
			lib = append(lib, f)
		case f.AST.Name.Name == pkg.Name:
			intest = append(intest, f)
		default:
			xtest = append(xtest, f)
		}
	}
	asts := func(fs []*File) []*ast.File {
		out := make([]*ast.File, len(fs))
		for i, f := range fs {
			out[i] = f.AST
		}
		return out
	}
	if len(intest) > 0 {
		info := newTypesInfo()
		l.check(pkg, pkg.Path, append(asts(lib), asts(intest)...), info)
		for _, f := range intest {
			f.Info = info
		}
	}
	if len(xtest) > 0 {
		info := newTypesInfo()
		l.check(pkg, pkg.Path+"_test", asts(xtest), info)
		for _, f := range xtest {
			f.Info = info
		}
	}
}

// loaderImporter adapts a Loader to types.Importer: module paths resolve by
// source-checking the imported directory (memoized per Loader), everything
// else comes from the shared stdlib importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if l.isModulePath(path) {
		pkg, err := l.libPkg(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("analysis: no type information for %s", path)
		}
		return pkg.Types, nil
	}
	return stdImport(path)
}

// Load parses and type-checks the packages matched by patterns plus their
// module-internal dependency closure, bottom-up over the import DAG (levels
// in parallel when an Engine is set), and returns the matched packages
// ready for Run.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	paths, err := l.matchPatterns(patterns)
	if err != nil {
		return nil, err
	}
	result := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.parsedPkg(p)
		if err != nil {
			return nil, err
		}
		result = append(result, pkg)
	}

	// Module-internal dependency closure (test imports included: test units
	// need their imports checked too).
	closure := map[string]*Package{}
	queue := append([]string(nil), paths...)
	for _, p := range paths {
		closure[p], _ = l.parsedPkg(p)
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		pkg := closure[p]
		for _, dep := range l.moduleImports(pkg, true) {
			if _, ok := closure[dep]; ok {
				continue
			}
			dpkg, err := l.parsedPkg(dep)
			if err != nil {
				return nil, fmt.Errorf("analysis: resolving import %s of %s: %w", dep, p, err)
			}
			closure[dep] = dpkg
			queue = append(queue, dep)
		}
	}

	levels, err := l.topoLevels(closure)
	if err != nil {
		return nil, err
	}

	// Prewarm the stdlib cache serially so the parallel level checks spend
	// their time on module packages, not convoying on the stdlib mutex.
	l.prewarmStdlib(closure)

	runEach := func(paths []string, fn func(p string)) {
		if l.Engine != nil && len(paths) > 1 {
			l.Engine.ForEach(len(paths), func(i int) { fn(paths[i]) })
		} else {
			for _, p := range paths {
				fn(p)
			}
		}
	}
	for _, level := range levels {
		runEach(level, func(p string) { l.libPkg(p) })
	}
	// Test units, once every lib unit they could import exists.
	resultPaths := paths
	runEach(resultPaths, func(p string) {
		if pkg := closure[p]; pkg != nil {
			l.checkTests(pkg)
		}
	})
	return result, nil
}

// moduleImports lists pkg's module-internal imports (optionally including
// test files'), deduplicated and sorted.
func (l *Loader) moduleImports(pkg *Package, includeTests bool) []string {
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		if f.Test && !includeTests {
			continue
		}
		for _, p := range f.Imports {
			if l.isModulePath(p) && p != pkg.Path {
				seen[p] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// topoLevels layers the closure by lib-unit import depth: level 0 has no
// module-internal imports, level n imports only lower levels. A cycle is a
// hard error (it would also fail `go build`).
func (l *Loader) topoLevels(closure map[string]*Package) ([][]string, error) {
	depth := map[string]int{}
	var visit func(p string, stack map[string]bool) (int, error)
	visit = func(p string, stack map[string]bool) (int, error) {
		if d, ok := depth[p]; ok {
			return d, nil
		}
		if stack[p] {
			return 0, fmt.Errorf("analysis: import cycle through %s", p)
		}
		stack[p] = true
		defer delete(stack, p)
		d := 0
		pkg := closure[p]
		if pkg == nil {
			return 0, nil
		}
		for _, dep := range l.moduleImports(pkg, false) {
			dd, err := visit(dep, stack)
			if err != nil {
				return 0, err
			}
			if dd+1 > d {
				d = dd + 1
			}
		}
		depth[p] = d
		return d, nil
	}
	paths := make([]string, 0, len(closure))
	for p := range closure {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	maxDepth := 0
	for _, p := range paths {
		d, err := visit(p, map[string]bool{})
		if err != nil {
			return nil, err
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	levels := make([][]string, maxDepth+1)
	for _, p := range paths {
		levels[depth[p]] = append(levels[depth[p]], p)
	}
	return levels, nil
}

// prewarmStdlib imports every non-module dependency of the closure once,
// serially (transitive stdlib imports are handled inside the importer).
func (l *Loader) prewarmStdlib(closure map[string]*Package) {
	seen := map[string]bool{}
	for _, pkg := range closure {
		for _, f := range pkg.Files {
			for _, p := range f.Imports {
				if !l.isModulePath(p) && !seen[p] {
					seen[p] = true
				}
			}
		}
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		stdImport(p) // failures resurface as positioned type errors later
	}
}
