package analysis

import (
	"go/ast"
	"strings"
)

func init() {
	Register(&Check{
		Name: "ctx-first-handler",
		Doc: "serving-layer code must thread the request context; " +
			"context.Background()/TODO() are forbidden outside func main",
		Run: runCtxFirstHandler,
	})
}

// servingPkgSuffixes are the serving-layer packages the check applies to:
// everything in them sits on a request path where a fresh root context
// would detach kernels from the caller's deadline and cancellation.
var servingPkgSuffixes = []string{
	"internal/server",
	"cmd/nwhyd",
}

func isServingPkg(importPath string) bool {
	for _, s := range servingPkgSuffixes {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// runCtxFirstHandler flags context.Background() and context.TODO() calls in
// serving-layer packages. A handler that mints its own root context breaks
// the chain from the client's request to the kernels: admission waits stop
// honoring caller cancellation, and an abandoned query keeps computing.
// The one legitimate root is the process's own, so func main of the daemon
// is exempt (that is where the signal context is born); test files are
// exempt as always.
func runCtxFirstHandler(p *Pass) {
	if !isServingPkg(p.Pkg.Path) {
		return
	}
	p.walkFiles(func(f *File) {
		ctxName := f.ImportsAs("context")
		if ctxName == "" && f.Info == nil {
			return
		}
		for _, decl := range f.AST.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Recv == nil && fd.Name.Name == "main" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := typedCallee(f, call); fn != nil {
					if funcPkgPath(fn) == "context" && recvTypeName(fn) == "" &&
						(fn.Name() == "Background" || fn.Name() == "TODO") {
						p.Reportf(call.Pos(),
							"context.%s() on a request path; thread the caller's ctx instead",
							fn.Name())
					}
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				base, ok := sel.X.(*ast.Ident)
				if !ok || base.Name != ctxName {
					return true
				}
				if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
					p.Reportf(call.Pos(),
						"context.%s() on a request path; thread the caller's ctx instead",
						sel.Sel.Name)
				}
				return true
			})
		}
	})
}
