package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

func init() {
	Register(&Check{
		Name: "locks-balanced",
		Doc: "every Mutex/RWMutex Lock pairs with a same-function Unlock or " +
			"defer Unlock; serving code must not hold a lock across parallel " +
			"regions or channel operations",
		Run: runLocksBalanced,
	})
}

// runLocksBalanced enforces two lock disciplines, both typed (the check
// skips files without type information — name matching cannot distinguish
// sync.Mutex.Lock from any other Lock method):
//
//   - pairing, module-wide (the parallel runtime itself is exempt — its
//     pool hand-off patterns are the mechanism the rest of the module is
//     being policed onto): a sync.Mutex/RWMutex Lock (or RLock) must have a
//     matching Unlock (RUnlock) or defer Unlock in the same function scope,
//     and a return lexically between a Lock and its first following Unlock
//     is a leak path. Function literals are separate scopes, except bodies
//     deferred directly (defer func(){...}()), which run at function exit
//     and may carry the unlock;
//   - held-across, serving packages only: within the lexical span where a
//     lock is held (Lock to its next matching Unlock, or to end of scope
//     under a defer Unlock), a parallel region call, a statically resolved
//     call that transitively schedules parallel work (per the module call
//     graph), or a channel operation is a stall hazard — every request
//     sharing the lock waits for pool workers to drain. Intentional
//     single-writer serialization (e.g. committing a staged batch under the
//     per-dataset writer lock) is annotated //nwhy:nolint at the site.
//
// Lock identity follows the receiver chain's resolved objects, so s.mu in
// one method and s.mu in a helper literal are the same lock, while two
// different struct fields named mu are not.
func runLocksBalanced(p *Pass) {
	if isParallelPkg(p.Pkg.Path) {
		return
	}
	serving := isServingPkg(p.Pkg.Path)
	var cg *CallGraph
	if serving && p.Mod != nil {
		cg = p.Mod.CallGraph()
	}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		if f.Info == nil {
			return
		}
		var scopes []*lockScope
		collectLockScope(f, cg, d.Body, d.Name.Name, &scopes)
		for _, sc := range scopes {
			analyzeLockScope(p, serving, sc)
		}
	})
}

type lockEvent struct {
	key      string // resolved receiver-chain identity
	path     string // rendered receiver, for messages
	name     string // Lock / Unlock / RLock / RUnlock
	deferred bool
	pos      token.Pos
}

type lockHazard struct {
	pos  token.Pos
	desc string
}

type lockScope struct {
	fname   string
	events  []lockEvent
	hazards []lockHazard
	returns []token.Pos
	end     token.Pos
}

// lockMethodCall classifies call as a sync.Mutex/RWMutex lock-family method
// call (embedded promotion included) and returns the lock's identity.
func lockMethodCall(f *File, call *ast.CallExpr) (key, path, name string, ok bool) {
	fn := typedCallee(f, call)
	if fn == nil {
		return "", "", "", false
	}
	name = fn.Name()
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", "", false
	}
	if funcPkgPath(fn) != "sync" {
		return "", "", "", false
	}
	if recv := recvTypeName(fn); recv != "Mutex" && recv != "RWMutex" {
		return "", "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	key, path = memKey(f, sel.X)
	if key == "" {
		return "", "", "", false
	}
	return key, path, name, true
}

// collectLockScope walks one function scope, spawning sibling scopes for
// nested function literals (deferred literal bodies fold into this scope
// with their events marked deferred).
func collectLockScope(f *File, cg *CallGraph, body *ast.BlockStmt, fname string, out *[]*lockScope) {
	sc := &lockScope{fname: fname, end: body.End()}
	*out = append(*out, sc)

	handleCall := func(call *ast.CallExpr, deferred bool) {
		if key, path, name, ok := lockMethodCall(f, call); ok {
			sc.events = append(sc.events, lockEvent{key: key, path: path, name: name, deferred: deferred, pos: call.Pos()})
			return
		}
		if deferred {
			return
		}
		if _, isRegion := isParallelRegionCall(f, call); isRegion {
			sc.hazards = append(sc.hazards, lockHazard{call.Pos(), "a parallel region"})
			return
		}
		if cg != nil {
			if callee := typedCallee(f, call); callee != nil && cg.LaunchesParallel(callee) {
				sc.hazards = append(sc.hazards, lockHazard{call.Pos(), callee.Name() + " (which schedules parallel work)"})
			}
		}
	}

	var scan func(root ast.Node, deferred bool)
	scan = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			if n == root {
				return true
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				collectLockScope(f, cg, n.Body, fname+" (closure)", out)
				return false
			case *ast.DeferStmt:
				handleCall(n.Call, true)
				if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					scan(fl.Body, true)
				} else {
					for _, a := range n.Call.Args {
						scan(a, deferred)
					}
				}
				return false
			case *ast.CallExpr:
				handleCall(n, deferred)
			case *ast.SendStmt:
				sc.hazards = append(sc.hazards, lockHazard{n.Pos(), "a channel send"})
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					sc.hazards = append(sc.hazards, lockHazard{n.Pos(), "a channel receive"})
				}
			case *ast.SelectStmt:
				sc.hazards = append(sc.hazards, lockHazard{n.Pos(), "a select"})
			case *ast.RangeStmt:
				if t := f.Info.TypeOf(n.X); t != nil {
					if _, isChan := types.Unalias(t).Underlying().(*types.Chan); isChan {
						sc.hazards = append(sc.hazards, lockHazard{n.X.Pos(), "a channel range"})
					}
				}
			case *ast.ReturnStmt:
				if !deferred {
					sc.returns = append(sc.returns, n.Pos())
				}
			}
			return true
		})
	}
	scan(body, false)
}

var lockPairs = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// analyzeLockScope applies the pairing and held-across rules to one scope.
func analyzeLockScope(p *Pass, serving bool, sc *lockScope) {
	reportedHazard := map[token.Pos]bool{}
	for _, lock := range sc.events {
		want, isLock := lockPairs[lock.name]
		if !isLock || lock.deferred {
			continue
		}
		hasDefer := false
		firstPlain := token.NoPos
		for _, e := range sc.events {
			if e.key != lock.key || e.name != want {
				continue
			}
			if e.deferred {
				hasDefer = true
			} else if e.pos > lock.pos && (firstPlain == token.NoPos || e.pos < firstPlain) {
				firstPlain = e.pos
			}
		}
		if !hasDefer && firstPlain == token.NoPos {
			// An unlock lexically before the lock (loop bodies) still pairs.
			paired := false
			for _, e := range sc.events {
				if e.key == lock.key && e.name == want {
					paired = true
					break
				}
			}
			if !paired {
				p.Reportf(lock.pos, "%s.%s() has no matching %s in %s; unlock on every path (or defer it)",
					lock.path, lock.name, want, sc.fname)
				continue
			}
		}
		spanEnd := sc.end
		if !hasDefer && firstPlain != token.NoPos {
			spanEnd = firstPlain
			for _, r := range sc.returns {
				if r > lock.pos && r < firstPlain {
					p.Reportf(r, "return between %s.%s() and its %s in %s; this path exits with the lock held — defer the unlock",
						lock.path, lock.name, want, sc.fname)
				}
			}
		}
		if !serving {
			continue
		}
		for _, h := range sc.hazards {
			if h.pos > lock.pos && h.pos < spanEnd && !reportedHazard[h.pos] {
				reportedHazard[h.pos] = true
				p.Reportf(h.pos, "%s is held across %s; release the lock before blocking or scheduling parallel work",
					lock.path, h.desc)
			}
		}
	}
}
