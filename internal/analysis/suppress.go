package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression grammar is
//
//	//nwhy:nolint(check-a,check-b) reason text
//
// A suppression silences diagnostics of the listed checks on its own line
// and on the line immediately below (so it works both as a trailing comment
// and as a standalone comment above the offending line). The reason text is
// mandatory: a suppression without one is itself a diagnostic, as is one
// naming an unknown check, so suppressions stay few, targeted, and
// justified.
const nolintMarker = "nwhy:nolint("

type suppression struct {
	pos    token.Pos
	line   int
	checks []string
	err    string // non-empty: malformed, reported as a "nolint" diagnostic
}

// parseSuppressions extracts every nwhy:nolint marker from a file's comments.
func parseSuppressions(fset *token.FileSet, f *ast.File) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// Only directive-style comments count: //nwhy:nolint(...) with
			// no space, like //go: directives. Prose that merely mentions
			// the grammar (docs, examples) is ignored.
			rest, ok := strings.CutPrefix(c.Text, "//"+nolintMarker)
			if !ok {
				continue
			}
			s := suppression{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
			j := strings.Index(rest, ")")
			if j < 0 {
				s.err = "malformed nwhy:nolint: missing closing parenthesis"
				out = append(out, s)
				continue
			}
			for _, name := range strings.Split(rest[:j], ",") {
				name = strings.TrimSpace(name)
				if name == "" {
					continue
				}
				if LookupCheck(name) == nil {
					s.err = "nwhy:nolint names unknown check " + quote(name)
					break
				}
				s.checks = append(s.checks, name)
			}
			if s.err == "" && len(s.checks) == 0 {
				s.err = "nwhy:nolint lists no checks"
			}
			if s.err == "" && strings.TrimSpace(rest[j+1:]) == "" {
				s.err = "nwhy:nolint requires a reason after the check list"
			}
			out = append(out, s)
		}
	}
	return out
}

func quote(s string) string { return `"` + s + `"` }

// matchSuppression finds a suppression covering diagnostic d, if any.
func matchSuppression(pkgs []*Package, d Diagnostic) *suppression {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Name != d.Pos.Filename {
				continue
			}
			for i := range f.suppressions {
				s := &f.suppressions[i]
				if s.err != "" || (d.Pos.Line != s.line && d.Pos.Line != s.line+1) {
					continue
				}
				for _, c := range s.checks {
					if c == d.Check {
						return s
					}
				}
			}
		}
	}
	return nil
}
