package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// typedCallee resolves the *types.Func a call statically dispatches to:
// package functions, methods (interface methods resolve to the interface's
// declaration), and generic instantiations (which resolve to their origin).
// nil for func-value calls, unresolved identifiers, and untyped files —
// callers fall back to name matching then.
func typedCallee(f *File, call *ast.CallExpr) *types.Func {
	if f == nil || f.Info == nil {
		return nil
	}
	fun := ast.Unparen(call.Fun)
	for {
		switch fe := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(fe.X)
			continue
		case *ast.IndexListExpr:
			fun = ast.Unparen(fe.X)
			continue
		}
		break
	}
	var obj types.Object
	switch fe := fun.(type) {
	case *ast.Ident:
		obj = f.Info.Uses[fe]
	case *ast.SelectorExpr:
		obj = f.Info.Uses[fe.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcPkgPath is the import path of the package a function belongs to
// ("" for builtins and error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// recvTypeName is the named type a method's receiver resolves to, pointers
// stripped ("" for plain functions).
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isParallelModulePkg matches the concurrency runtime's import path both in
// the real module and under fixture module names.
func isParallelModulePkg(path string) bool {
	return path == parallelPkg || strings.HasSuffix(path, "/internal/parallel")
}

func isFrontierPkg(path string) bool {
	return strings.HasSuffix(path, "/internal/frontier")
}

// engineRegionMethods are the *parallel.Engine methods that schedule their
// closure arguments onto pool workers.
var engineRegionMethods = map[string]bool{
	"For": true, "ForN": true, "ForEach": true,
	"ForCyclic": true, "ForCyclicNeighbor": true,
	"Invoke": true, "Go": true,
}

// defaultPoolFuncNames are the package-level parallel entry points that run
// on the process default pool (banned in kernels — they bypass the
// caller's engine). ReduceWith and Drain take an explicit engine and are
// therefore regions but not backdoors.
var defaultPoolFuncNames = map[string]bool{
	"For": true, "ForEach": true, "Reduce": true,
}

// typedRegionFunc classifies a resolved callee as a parallel-region entry:
// an Engine region method, frontier State.EdgeMap, or a package-level
// parallel loop/reduction/queue drain.
func typedRegionFunc(fn *types.Func) bool {
	pkg := funcPkgPath(fn)
	recv := recvTypeName(fn)
	switch {
	case isParallelModulePkg(pkg) && recv == "Engine" && engineRegionMethods[fn.Name()]:
		return true
	case isParallelModulePkg(pkg) && recv == "" && regionParallelFuncs[fn.Name()]:
		return true
	case isFrontierPkg(pkg) && recv == "State" && fn.Name() == "EdgeMap":
		return true
	}
	return false
}

// isCancellationObserver reports whether call observes cancellation:
// Engine.Err / Engine.Cancelled / context.Context.Err (or Done). With type
// information the receiver is verified; without, any .Err()/.Cancelled()
// counts, as before.
func isCancellationObserver(f *File, call *ast.CallExpr) bool {
	if fn := typedCallee(f, call); fn != nil {
		pkg, recv, name := funcPkgPath(fn), recvTypeName(fn), fn.Name()
		switch {
		case isParallelModulePkg(pkg) && recv == "Engine" && (name == "Err" || name == "Cancelled"):
			return true
		case pkg == "context" && recv == "Context" && (name == "Err" || name == "Done"):
			return true
		}
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && cancellationNames[sel.Sel.Name]
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isEngineType reports whether t is *parallel.Engine.
func isEngineType(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := types.Unalias(p.Elem()).(*types.Named)
	return ok && n.Obj().Pkg() != nil &&
		isParallelModulePkg(n.Obj().Pkg().Path()) && n.Obj().Name() == "Engine"
}

// identObj resolves an identifier's object, use or definition.
func identObj(f *File, id *ast.Ident) types.Object {
	if f == nil || f.Info == nil {
		return nil
	}
	if obj := f.Info.Uses[id]; obj != nil {
		return obj
	}
	return f.Info.Defs[id]
}

// chainObjects resolves a selector chain (x, x.f, x.f.g — parens looked
// through) to its constituent objects, outermost first. Package qualifiers
// are dropped (the package-level object is already unique). nil when any
// link fails to resolve — callers fall back to the rendered string path.
func chainObjects(f *File, e ast.Expr) []types.Object {
	if f == nil || f.Info == nil {
		return nil
	}
	var chain []types.Object
	var walk func(e ast.Expr) bool
	walk = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := identObj(f, e)
			if obj == nil {
				return false
			}
			if _, isPkg := obj.(*types.PkgName); !isPkg {
				chain = append(chain, obj)
			}
			return true
		case *ast.SelectorExpr:
			if !walk(e.X) {
				return false
			}
			obj := f.Info.Uses[e.Sel]
			if obj == nil {
				return false
			}
			chain = append(chain, obj)
			return true
		}
		return false
	}
	if !walk(e) || len(chain) == 0 {
		return nil
	}
	return chain
}

// memKey is a comparable identity for a selector chain: object pointers
// when typed ("o:" prefix), the rendered path otherwise ("s:" prefix).
// Typed and untyped keys never collide, so one region/function mixing both
// stays internally consistent per base.
func memKey(f *File, e ast.Expr) (key, display string) {
	display = pathOf(e)
	if chain := chainObjects(f, e); chain != nil {
		var b strings.Builder
		b.WriteString("o:")
		for _, o := range chain {
			fmt.Fprintf(&b, "%p.", o)
		}
		return b.String(), display
	}
	if display == "" {
		return "", ""
	}
	return "s:" + display, display
}
