// Package analysis is NWHy-Go's zero-dependency static-analysis framework:
// a type-aware, module-wide analyzer runner with file/line diagnostics and
// //nwhy:nolint suppressions, built on the standard library only (go/ast,
// go/parser, go/token, go/types with a source importer — no
// golang.org/x/tools).
//
// The framework exists to machine-enforce the engine and concurrency
// invariants the repo established by convention: every kernel threads an
// explicit *parallel.Engine, all concurrency flows through the pool, shared
// state inside parallel regions goes through atomics, multi-round drivers
// observe cancellation, arena scratch is recycled, serving paths thread the
// request context, locks balance, and the facade's snapshot box is only
// touched through its accessors. Each invariant is a registered Check;
// cmd/nwhy-lint runs them all over the module.
//
// Loading happens in two tiers. The Loader parses the module's package DAG
// and type-checks it bottom-up (stdlib dependencies come from a shared
// source importer), attaching go/types information to every File. Checks
// consume types when present and degrade to the original AST name-matching
// when a file failed to type-check — golden fixtures with deliberate type
// errors keep working.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nwhy/internal/parallel"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// File is one parsed source file plus the lookup tables checks need.
type File struct {
	Name string // path on disk
	AST  *ast.File
	Test bool // *_test.go
	// Imports maps each import's local name (alias or path base) to its
	// import path, so checks can resolve selector expressions like
	// parallel.MinU32 without type information. Files with identical
	// import blocks share one table.
	Imports map[string]string
	// Info is the go/types information for the checking unit this file was
	// type-checked in (nil when the package was loaded without types).
	// Non-test files share the package's lib unit; in-package and external
	// test files each get their own unit.
	Info *types.Info

	importedAs   map[string]string // reverse of Imports: path → local name
	suppressions []suppression
}

// ImportsAs reports the local name path is imported under in this file
// ("" if not imported).
func (f *File) ImportsAs(path string) string {
	return f.importedAs[path]
}

// Package is one directory's worth of parsed files (test files included,
// marked Test; external _test packages ride along in the same Package).
type Package struct {
	Path   string // import path
	Module string // module path (the facade package has Path == Module)
	Name   string
	Fset   *token.FileSet
	Files  []*File

	// Types and TypesInfo carry the type-checked form of the package's
	// non-test files; nil for AST-only loads. TypeErrors collects every
	// soft error the checker reported — fixture packages type-check
	// best-effort, and checks fall back to name matching where resolution
	// failed.
	Types      *types.Package
	TypesInfo  *types.Info
	TypeErrors []error
}

// Check is one registered invariant: a stable name (the key used in
// //nwhy:nolint suppressions), a one-line doc string, and the pass body.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one (check, package) run handed to Check.Run. Mod gives
// interprocedural checks the module-wide view (every package of the Run,
// plus the lazily built call graph).
type Pass struct {
	Check *Check
	Pkg   *Package
	Mod   *Module
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

var registry []*Check

// Register adds a check to the global registry. Checks register themselves
// from init so cmd/nwhy-lint and the tests see one authoritative list.
func Register(c *Check) {
	for _, r := range registry {
		if r.Name == c.Name {
			panic("analysis: duplicate check " + c.Name)
		}
	}
	registry = append(registry, c)
}

// Checks returns the registered checks sorted by name.
func Checks() []*Check {
	out := append([]*Check(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupCheck resolves a check by name.
func LookupCheck(name string) *Check {
	for _, c := range registry {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Options configures a Run.
type Options struct {
	// ReportUnusedSuppressions adds a diagnostic for every //nwhy:nolint
	// that suppressed nothing. Set when running the full check suite (a
	// partial run can legitimately leave suppressions unused).
	ReportUnusedSuppressions bool
	// Engine, when set, analyzes packages in parallel on the given engine
	// (each package's checks still run sequentially, so per-package state
	// never races). Nil runs everything on the calling goroutine.
	Engine *parallel.Engine
}

// Run executes the checks over the packages, applies //nwhy:nolint
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppressions (unknown check, missing reason) surface as
// diagnostics of the pseudo-check "nolint" and cannot be suppressed.
func Run(pkgs []*Package, checks []*Check, opts Options) []Diagnostic {
	mod := NewModule(pkgs)
	perPkg := make([][]Diagnostic, len(pkgs))
	analyze := func(i int) {
		for _, c := range checks {
			c.Run(&Pass{Check: c, Pkg: pkgs[i], Mod: mod, diags: &perPkg[i]})
		}
	}
	if opts.Engine != nil {
		opts.Engine.ForEach(len(pkgs), analyze)
	} else {
		for i := range pkgs {
			analyze(i)
		}
	}
	var raw []Diagnostic
	for _, ds := range perPkg {
		raw = append(raw, ds...)
	}

	var out []Diagnostic
	used := map[*suppression]bool{}
	for _, d := range raw {
		if s := matchSuppression(pkgs, d); s != nil {
			used[s] = true
			continue
		}
		out = append(out, d)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for i := range f.suppressions {
				s := &f.suppressions[i]
				if s.err != "" {
					out = append(out, Diagnostic{Pos: pkg.Fset.Position(s.pos), Check: "nolint", Message: s.err})
				} else if opts.ReportUnusedSuppressions && !used[s] {
					out = append(out, Diagnostic{
						Pos:     pkg.Fset.Position(s.pos),
						Check:   "nolint",
						Message: fmt.Sprintf("unused suppression for %s", strings.Join(s.checks, ", ")),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// walkFiles visits every non-test file of the pass's package.
func (p *Pass) walkFiles(fn func(f *File)) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		fn(f)
	}
}

// funcDecls visits every function declaration in non-test files.
func (p *Pass) funcDecls(fn func(f *File, d *ast.FuncDecl)) {
	p.walkFiles(func(f *File) {
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	})
}
