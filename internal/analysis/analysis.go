// Package analysis is NWHy-Go's zero-dependency static-analysis framework:
// a multi-pass AST analyzer runner with file/line diagnostics and
// //nwhy:nolint suppressions, built on the standard library only (go/ast,
// go/parser, go/token — no golang.org/x/tools).
//
// The framework exists to machine-enforce the engine and concurrency
// invariants PRs 1–2 established by convention: every kernel threads an
// explicit *parallel.Engine, all concurrency flows through the pool, shared
// state inside parallel regions goes through atomics, multi-round drivers
// observe cancellation, and arena scratch is recycled. Each invariant is a
// registered Check; cmd/nwhy-lint runs them all over the module.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// File is one parsed source file plus the lookup tables checks need.
type File struct {
	Name string // path on disk
	AST  *ast.File
	Test bool // *_test.go
	// Imports maps each import's local name (alias or path base) to its
	// import path, so checks can resolve selector expressions like
	// parallel.MinU32 without type information.
	Imports map[string]string

	suppressions []suppression
}

// ImportsAs reports the local name path is imported under in this file
// ("" if not imported).
func (f *File) ImportsAs(path string) string {
	for name, p := range f.Imports {
		if p == path {
			return name
		}
	}
	return ""
}

// Package is one directory's worth of parsed files (test files included,
// marked Test; external _test packages ride along in the same Package).
type Package struct {
	Path   string // import path
	Module string // module path (the facade package has Path == Module)
	Name   string
	Fset   *token.FileSet
	Files  []*File
}

// Check is one registered invariant: a stable name (the key used in
// //nwhy:nolint suppressions), a one-line doc string, and the pass body.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one (check, package) run handed to Check.Run.
type Pass struct {
	Check *Check
	Pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Check:   p.Check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

var registry []*Check

// Register adds a check to the global registry. Checks register themselves
// from init so cmd/nwhy-lint and the tests see one authoritative list.
func Register(c *Check) {
	for _, r := range registry {
		if r.Name == c.Name {
			panic("analysis: duplicate check " + c.Name)
		}
	}
	registry = append(registry, c)
}

// Checks returns the registered checks sorted by name.
func Checks() []*Check {
	out := append([]*Check(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupCheck resolves a check by name.
func LookupCheck(name string) *Check {
	for _, c := range registry {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Options configures a Run.
type Options struct {
	// ReportUnusedSuppressions adds a diagnostic for every //nwhy:nolint
	// that suppressed nothing. Set when running the full check suite (a
	// partial run can legitimately leave suppressions unused).
	ReportUnusedSuppressions bool
}

// Run executes the checks over the packages, applies //nwhy:nolint
// suppressions, and returns the surviving diagnostics sorted by position.
// Malformed suppressions (unknown check, missing reason) surface as
// diagnostics of the pseudo-check "nolint" and cannot be suppressed.
func Run(pkgs []*Package, checks []*Check, opts Options) []Diagnostic {
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, c := range checks {
			c.Run(&Pass{Check: c, Pkg: pkg, diags: &raw})
		}
	}

	var out []Diagnostic
	used := map[*suppression]bool{}
	for _, d := range raw {
		if s := matchSuppression(pkgs, d); s != nil {
			used[s] = true
			continue
		}
		out = append(out, d)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for i := range f.suppressions {
				s := &f.suppressions[i]
				if s.err != "" {
					out = append(out, Diagnostic{Pos: pkg.Fset.Position(s.pos), Check: "nolint", Message: s.err})
				} else if opts.ReportUnusedSuppressions && !used[s] {
					out = append(out, Diagnostic{
						Pos:     pkg.Fset.Position(s.pos),
						Check:   "nolint",
						Message: fmt.Sprintf("unused suppression for %s", strings.Join(s.checks, ", ")),
					})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// walkFiles visits every non-test file of the pass's package.
func (p *Pass) walkFiles(fn func(f *File)) {
	for _, f := range p.Pkg.Files {
		if f.Test {
			continue
		}
		fn(f)
	}
}

// funcDecls visits every function declaration in non-test files.
func (p *Pass) funcDecls(fn func(f *File, d *ast.FuncDecl)) {
	p.walkFiles(func(f *File) {
		for _, decl := range f.AST.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	})
}
