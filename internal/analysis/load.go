package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
)

// Load parses the packages matched by patterns (directories, optionally
// with a /... suffix) relative to the module root and returns them ready
// for Run. Directories named testdata or vendor and hidden directories are
// skipped, matching the go tool's convention.
func Load(root string, patterns []string) ([]*Package, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := map[string]bool{}
	var pkgs []*Package
	add := func(dir string) error {
		abs := filepath.Clean(dir)
		if seen[abs] {
			return nil
		}
		seen[abs] = true
		ok, err := hasGoFiles(abs)
		if err != nil || !ok {
			return err
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil {
			return err
		}
		importPath := module
		if rel != "." {
			importPath = path.Join(module, filepath.ToSlash(rel))
		}
		pkg, err := LoadDir(fset, abs, importPath, module)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, pat)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	return pkgs, nil
}

// LoadDir parses every .go file of one directory as a single Package with
// the given import path. Test files are included and marked.
func LoadDir(fset *token.FileSet, dir, importPath, module string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Module: module, Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		astFile, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		f := &File{
			Name:    name,
			AST:     astFile,
			Test:    strings.HasSuffix(e.Name(), "_test.go"),
			Imports: importTable(astFile),
		}
		f.suppressions = parseSuppressions(fset, astFile)
		if pkg.Name == "" && !f.Test {
			pkg.Name = astFile.Name.Name
		}
		pkg.Files = append(pkg.Files, f)
	}
	if pkg.Name == "" && len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].AST.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return pkg, nil
}

// importTable maps each import's local name to its path.
func importTable(f *ast.File) map[string]string {
	out := map[string]string{}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = p
	}
	return out
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}
