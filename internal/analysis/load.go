package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Load parses and type-checks the packages matched by patterns
// (directories, optionally with a /... suffix) relative to the module root
// and returns them ready for Run. Directories named testdata or vendor and
// hidden directories are skipped, matching the go tool's convention.
func Load(root string, patterns []string) ([]*Package, error) {
	l, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	return l.Load(patterns)
}

// matchPatterns resolves the pattern list to module import paths.
func (l *Loader) matchPatterns(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) error {
		abs := filepath.Clean(dir)
		if seen[abs] {
			return nil
		}
		seen[abs] = true
		ok, err := hasGoFiles(abs)
		if err != nil || !ok {
			return err
		}
		rel, err := filepath.Rel(l.Root, abs)
		if err != nil {
			return err
		}
		importPath := l.Module
		if rel != "." {
			importPath = path.Join(l.Module, filepath.ToSlash(rel))
		}
		out = append(out, importPath)
		return nil
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.Root, pat)
		}
		if !recursive {
			if err := add(dir); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return add(p)
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// LoadDir parses every .go file of one directory as a single Package with
// the given import path, then type-checks it best-effort: module-internal
// imports resolve against the enclosing module on disk, and type errors
// (fixtures carry some deliberately) are collected on Package.TypeErrors
// rather than failing the load. Test files are included and marked.
func LoadDir(fset *token.FileSet, dir, importPath, module string) (*Package, error) {
	pkg, err := parseDir(fset, dir, importPath, module)
	if err != nil {
		return nil, err
	}
	if root, rerr := FindModuleRoot(dir); rerr == nil {
		l := &Loader{Fset: fset, Root: root, Module: module}
		l.seed(pkg)
		if _, err := l.libPkg(importPath); err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		}
		l.checkTests(pkg)
	}
	return pkg, nil
}

// parseDir is the parse-only tier of LoadDir.
func parseDir(fset *token.FileSet, dir, importPath, module string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Module: module, Fset: fset}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		astFile, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		f := &File{
			Name: name,
			AST:  astFile,
			Test: strings.HasSuffix(e.Name(), "_test.go"),
		}
		f.Imports, f.importedAs = importTables(astFile)
		f.suppressions = parseSuppressions(fset, astFile)
		if pkg.Name == "" && !f.Test {
			pkg.Name = astFile.Name.Name
		}
		pkg.Files = append(pkg.Files, f)
	}
	if pkg.Name == "" && len(pkg.Files) > 0 {
		pkg.Name = pkg.Files[0].AST.Name.Name
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	return pkg, nil
}

// importCache dedupes import tables across files: most files of a package
// (and many across packages) share the same import block, so both lookup
// maps are built once per distinct block and shared read-only.
var importCache struct {
	sync.Mutex
	tables map[string]*importTable
}

type importTable struct {
	byName map[string]string // local name → import path
	byPath map[string]string // import path → local name
}

// importTables returns the (name→path, path→name) lookup tables for f's
// imports, from cache when an identical import block was seen before.
func importTables(f *ast.File) (byName, byPath map[string]string) {
	var key strings.Builder
	for _, imp := range f.Imports {
		if imp.Name != nil {
			key.WriteString(imp.Name.Name)
		}
		key.WriteByte(' ')
		key.WriteString(imp.Path.Value)
		key.WriteByte('\n')
	}
	importCache.Lock()
	defer importCache.Unlock()
	if t, ok := importCache.tables[key.String()]; ok {
		return t.byName, t.byPath
	}
	t := &importTable{byName: map[string]string{}, byPath: map[string]string{}}
	for _, imp := range f.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path.Base(p)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		t.byName[name] = p
		if _, dup := t.byPath[p]; !dup {
			t.byPath[p] = name
		}
	}
	if importCache.tables == nil {
		importCache.tables = map[string]*importTable{}
	}
	importCache.tables[key.String()] = t
	return t.byName, t.byPath
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}
