package analysis

import (
	"go/ast"
	"go/types"
	"sync"
)

// Module is the unit of one Run: every package handed to Run plus the
// lazily built module-wide call graph. Interprocedural checks reach it
// through Pass.Mod.
type Module struct {
	Pkgs []*Package

	once sync.Once
	cg   *CallGraph
}

// NewModule wraps the packages of one Run.
func NewModule(pkgs []*Package) *Module { return &Module{Pkgs: pkgs} }

// CallGraph returns the static call graph over the module's typed function
// declarations, built on first use (safe under concurrent passes).
func (m *Module) CallGraph() *CallGraph {
	m.once.Do(func() { m.cg = buildCallGraph(m.Pkgs) })
	return m.cg
}

// CallGraph maps each declared function or method (the *types.Func from its
// declaration — loaders guarantee one types.Package per import path, so
// call-site Uses and declaration Defs agree on identity) to its statically
// resolved callees. Dynamic dispatch through func values, and interface
// calls without a unique static target, are out of scope: the graph
// under-approximates, which keeps its clients' diagnostics precise. Only
// packages included in the Run contribute nodes; calls into packages
// outside it are classified by the region vocabulary alone.
type CallGraph struct {
	callees map[*types.Func][]*types.Func
	launch  map[*types.Func]bool // contains a region call, transitively
}

func buildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		callees: map[*types.Func][]*types.Func{},
		launch:  map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if f.Test || f.Info == nil {
				continue
			}
			for _, decl := range f.AST.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				def, _ := f.Info.Defs[fd.Name].(*types.Func)
				if def == nil {
					continue
				}
				var outs []*types.Func
				region := false
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if _, isRegion := isParallelRegionCall(f, call); isRegion {
						region = true
					}
					if callee := typedCallee(f, call); callee != nil {
						outs = append(outs, callee)
					}
					return true
				})
				cg.callees[def] = outs
				cg.launch[def] = region
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, outs := range cg.callees {
			if cg.launch[fn] {
				continue
			}
			for _, c := range outs {
				if cg.launch[c] {
					cg.launch[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return cg
}

// LaunchesParallel reports whether fn (directly or through any declared
// callee) schedules work on pool workers. Region entry points themselves
// count.
func (cg *CallGraph) LaunchesParallel(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	return cg.launch[fn] || typedRegionFunc(fn)
}
