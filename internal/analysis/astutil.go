package analysis

import (
	"go/ast"
	"strings"
)

// parallelPkg is the import path of the concurrency runtime every invariant
// is phrased against.
const parallelPkg = "nwhy/internal/parallel"

// kernelPkgSuffixes are the algorithm-layer packages whose exported entry
// points are "kernels" in the sense of the engine invariants.
var kernelPkgSuffixes = []string{
	"internal/graph",
	"internal/core",
	"internal/slinegraph",
	"internal/smetrics",
	"internal/hygra",
	"internal/mmio",
	"internal/partition",
}

// isKernelPkg reports whether importPath is one of the algorithm-layer
// packages the kernel checks apply to.
func isKernelPkg(importPath string) bool {
	for _, s := range kernelPkgSuffixes {
		if strings.HasSuffix(importPath, s) {
			return true
		}
	}
	return false
}

// isParallelPkg reports whether importPath is the concurrency runtime
// itself (exempt from the checks that police its callers).
func isParallelPkg(importPath string) bool {
	return strings.HasSuffix(importPath, "internal/parallel")
}

// pathOf renders a dotted identifier chain ("eng", "r.Level", "s.dist") or
// "" for expressions that are not plain selector chains. Parenthesized
// expressions are looked through.
func pathOf(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.ParenExpr:
		return pathOf(e.X)
	case *ast.SelectorExpr:
		base := pathOf(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// selectorCall splits a call into the rendered path of its callee's base
// and the selected name: parallel.MinU32(&x, v) → ("parallel", "MinU32"),
// eng.ForN(n, body) → ("eng", "ForN"). Plain ident calls return ("", name).
func selectorCall(call *ast.CallExpr) (base, name string) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "", fn.Name
	case *ast.SelectorExpr:
		return pathOf(fn.X), fn.Sel.Name
	case *ast.IndexExpr: // generic instantiation, e.g. ReduceWith[float64]
		inner := &ast.CallExpr{Fun: fn.X, Args: call.Args}
		return selectorCall(inner)
	case *ast.IndexListExpr:
		inner := &ast.CallExpr{Fun: fn.X, Args: call.Args}
		return selectorCall(inner)
	}
	return "", ""
}

// regionMethods are the method names that schedule their function-literal
// arguments onto pool workers. With type information the receiver is
// verified (real method-set resolution on *parallel.Engine / frontier
// State); this name table is the fallback for unresolved calls, sound in
// this module because the names are only used by the parallel runtime, the
// frontier substrate, and their adopters.
var regionMethods = map[string]bool{
	"For": true, "ForN": true, "ForEach": true,
	"ForCyclic": true, "ForCyclicNeighbor": true,
	"Invoke": true, "Go": true, "EdgeMap": true,
}

// regionParallelFuncs are package-level functions of internal/parallel that
// schedule their closure arguments onto pool workers.
var regionParallelFuncs = map[string]bool{
	"For": true, "ForEach": true, "Reduce": true, "ReduceWith": true,
	"Drain": true,
}

// isParallelRegionCall reports whether call hands work to pool workers, and
// returns the function-literal arguments that will run there. Resolution is
// typed-first: a resolved callee is classified by its actual package and
// receiver; only unresolved calls fall back to the name tables.
func isParallelRegionCall(f *File, call *ast.CallExpr) (closures []*ast.FuncLit, ok bool) {
	isRegion := false
	if fn := typedCallee(f, call); fn != nil {
		isRegion = typedRegionFunc(fn)
	} else {
		base, name := selectorCall(call)
		if base != "" {
			if f.Imports[base] == parallelPkg || (f.Imports[base] == "" && base == "parallel") {
				// Package-level parallel.For / parallel.Reduce / parallel.Drain.
				isRegion = regionParallelFuncs[name]
			} else if f.Imports[base] == "" {
				// Method call on a value (engine, pool, frontier state, …).
				isRegion = regionMethods[name]
			}
		}
	}
	if !isRegion {
		return nil, false
	}
	for _, arg := range call.Args {
		if fl, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
			closures = append(closures, fl)
		}
	}
	return closures, true
}

// parallelAtomicHelpers are internal/parallel's atomic vocabulary; all take
// the shared address first, like sync/atomic.
var parallelAtomicHelpers = map[string]bool{
	"MinU32": true, "MinU64": true, "CASU32": true,
	"LoadU32": true, "StoreU32": true, "AddI64": true,
}

// isAtomicCall reports whether call is an atomic access through either
// vocabulary — sync/atomic or internal/parallel's helpers. Typed-first,
// with the import-table name match as fallback.
func isAtomicCall(f *File, call *ast.CallExpr) bool {
	if fn := typedCallee(f, call); fn != nil {
		pkg := funcPkgPath(fn)
		if pkg == "sync/atomic" && recvTypeName(fn) == "" {
			return true
		}
		return isParallelModulePkg(pkg) && parallelAtomicHelpers[fn.Name()]
	}
	base, name := selectorCall(call)
	if base == "" {
		return false
	}
	switch f.Imports[base] {
	case "sync/atomic":
		return strings.HasPrefix(name, "Load") || strings.HasPrefix(name, "Store") ||
			strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Swap") ||
			strings.HasPrefix(name, "CompareAndSwap")
	case parallelPkg:
		return parallelAtomicHelpers[name]
	}
	return false
}

// cancellationNames are the method names whose call counts as observing
// cancellation when the callee cannot be resolved: Engine.Err /
// Engine.Cancelled / context.Context.Err.
var cancellationNames = map[string]bool{"Err": true, "Cancelled": true}

// containsCancellationCheck reports whether any node under root calls a
// cancellation observer.
func containsCancellationCheck(f *File, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isCancellationObserver(f, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isEnginePtrType reports whether the type expression t is
// *parallel.Engine: by its checked type when available, by the file's
// import table otherwise.
func isEnginePtrType(f *File, t ast.Expr) bool {
	if f.Info != nil {
		if tv, ok := f.Info.Types[t]; ok && tv.Type != nil {
			return isEngineType(tv.Type)
		}
	}
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	sel, ok := star.X.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Engine" {
		return false
	}
	base := pathOf(sel.X)
	return base != "" && f.Imports[base] == parallelPkg
}
