package analysis

import (
	"go/ast"
	"go/types"
)

func init() {
	Register(&Check{
		Name: "ctx-propagation",
		Doc: "a received context.Context (or ctx-bound *parallel.Engine) must " +
			"reach every callee on serving and facade paths that accepts one",
		Run: runCtxPropagation,
	})
}

// runCtxPropagation closes the gap ctx-first-handler leaves open: banning
// context.Background() catches minted roots, but a handler that receives a
// perfectly good ctx and then calls a kernel with a fresh unbound engine —
// or a *Ctx facade method that builds one ctx-bound engine and launches a
// second kernel on g.engine() — drops the deadline silently and nothing
// -race can catch it.
//
// For every function in the serving packages and the facade that has a
// context.Context or *parallel.Engine parameter, the parameter seeds a
// taint set; assignments whose right-hand side uses a tainted value extend
// it (only ctx- and engine-typed bindings are tracked — deriving
// eng.WithContext(ctx) or context.WithTimeout(ctx, d) keeps the chain).
// Every statically resolved call is then required to receive a tainted
// value in each of its context.Context / *parallel.Engine parameter
// positions. WithEngine callees are exempt: rebinding a result handle to a
// fresh engine is exactly how ctx-bound construction hands back a handle
// that outlives the request deadline.
//
// Functions without a ctx or engine parameter are not analyzed — the
// non-Ctx convenience wrappers legitimately start from the shared engine.
// The check needs type information and skips files without it.
func runCtxPropagation(p *Pass) {
	facade := p.Pkg.Path == p.Pkg.Module
	if !facade && !isServingPkg(p.Pkg.Path) {
		return
	}
	p.funcDecls(func(f *File, d *ast.FuncDecl) {
		if f.Info == nil {
			return
		}
		tainted := ctxSeeds(f, d)
		if len(tainted) == 0 {
			return
		}
		seedClosureParams(f, d.Body, tainted)
		propagateCtxTaint(f, d, tainted)
		ast.Inspect(d.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := typedCallee(f, call)
			if callee == nil || callee.Name() == "WithEngine" {
				return true
			}
			sig, ok := callee.Type().(*types.Signature)
			if !ok {
				return true
			}
			params := sig.Params()
			for i := 0; i < params.Len() && i < len(call.Args); i++ {
				kind := ""
				switch {
				case isContextType(params.At(i).Type()):
					kind = "context.Context"
				case isEngineType(params.At(i).Type()):
					kind = "engine"
				default:
					continue
				}
				if exprUsesTainted(f, call.Args[i], tainted) {
					continue
				}
				if kind == "engine" {
					p.Reportf(call.Args[i].Pos(),
						"%s runs on an engine not derived from the ctx %s received; thread the WithContext-bound engine (rebind result handles with WithEngine)",
						callee.Name(), d.Name.Name)
				} else {
					p.Reportf(call.Args[i].Pos(),
						"%s is called with a context not derived from the one %s received; thread the caller's ctx",
						callee.Name(), d.Name.Name)
				}
			}
			return true
		})
	})
}

// ctxSeeds collects d's context.Context and *parallel.Engine parameters.
func ctxSeeds(f *File, d *ast.FuncDecl) map[types.Object]bool {
	seeds := map[types.Object]bool{}
	if d.Type.Params == nil {
		return seeds
	}
	for _, field := range d.Type.Params.List {
		for _, name := range field.Names {
			obj := f.Info.Defs[name]
			if obj == nil {
				continue
			}
			if isContextType(obj.Type()) || isEngineType(obj.Type()) {
				seeds[obj] = true
			}
		}
	}
	return seeds
}

// seedClosureParams adds the ctx- and engine-typed parameters of nested
// function literals to the taint set. The serving wrapper pattern
//
//	s.do(ctx, "endpoint", func(ctx context.Context) error { … })
//
// shadows the received ctx with a closure parameter bound to a distinct
// object; the wrapper derives the value it passes from the tainted one, so
// the shadowing binding is tainted too. Only applied when the enclosing
// declaration itself has seeds — a function without a ctx parameter keeps
// its exemption even if a callback it declares takes one.
func seedClosureParams(f *File, root ast.Node, tainted map[types.Object]bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok || fl.Type.Params == nil {
			return true
		}
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				obj := f.Info.Defs[name]
				if obj == nil {
					continue
				}
				if isContextType(obj.Type()) || isEngineType(obj.Type()) {
					tainted[obj] = true
				}
			}
		}
		return true
	})
}

// propagateCtxTaint extends the taint set to fixpoint: a ctx- or
// engine-typed binding whose initializer uses a tainted value becomes
// tainted itself (closures share the enclosing function's set — they
// capture the same objects).
func propagateCtxTaint(f *File, d *ast.FuncDecl, tainted map[types.Object]bool) {
	taintLHS := func(lhs ast.Expr, rhsTainted bool) bool {
		if !rhsTainted {
			return false
		}
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		obj := identObj(f, id)
		if obj == nil || tainted[obj] {
			return false
		}
		if !isContextType(obj.Type()) && !isEngineType(obj.Type()) {
			return false
		}
		tainted[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(d.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				rhsTainted := false
				for _, r := range n.Rhs {
					if exprUsesTainted(f, r, tainted) {
						rhsTainted = true
						break
					}
				}
				for _, lhs := range n.Lhs {
					if taintLHS(lhs, rhsTainted) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				rhsTainted := false
				for _, v := range n.Values {
					if exprUsesTainted(f, v, tainted) {
						rhsTainted = true
						break
					}
				}
				for _, name := range n.Names {
					if taintLHS(name, rhsTainted) {
						changed = true
					}
				}
			}
			return true
		})
	}
}

// exprUsesTainted reports whether any identifier under e resolves to a
// tainted object.
func exprUsesTainted(f *File, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := f.Info.Uses[id]; obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
