package unionfind

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	f := New(5)
	if f.Len() != 5 || f.NumSets() != 5 {
		t.Fatal("fresh forest wrong")
	}
	f.Union(0, 2)
	f.Union(2, 4)
	f.Compress()
	if !f.Same(0, 4) || f.Same(0, 1) {
		t.Fatal("union results wrong")
	}
	if f.NumSets() != 3 {
		t.Fatalf("NumSets = %d, want 3", f.NumSets())
	}
	// Minimum-member representative.
	if f.Find(4) != 0 {
		t.Fatalf("root of 4 = %d, want 0", f.Find(4))
	}
}

func TestUnionSelfAndRepeated(t *testing.T) {
	f := New(3)
	f.Union(1, 1)
	f.Union(0, 2)
	f.Union(0, 2)
	f.Union(2, 0)
	f.Compress()
	if f.NumSets() != 2 {
		t.Fatalf("NumSets = %d", f.NumSets())
	}
}

// oracle union-find for comparison.
type oracle struct{ parent []int }

func newOracle(n int) *oracle {
	o := &oracle{parent: make([]int, n)}
	for i := range o.parent {
		o.parent[i] = i
	}
	return o
}
func (o *oracle) find(x int) int {
	for o.parent[x] != x {
		o.parent[x] = o.parent[o.parent[x]]
		x = o.parent[x]
	}
	return x
}
func (o *oracle) union(a, b int) {
	ra, rb := o.find(a), o.find(b)
	if ra < rb {
		o.parent[rb] = ra
	} else if rb < ra {
		o.parent[ra] = rb
	}
}

func TestMatchesOracleProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		f := New(n)
		o := newOracle(n)
		for i := 0; i < 120; i++ {
			a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			f.Union(a, b)
			o.union(int(a), int(b))
		}
		f.Compress()
		for x := 0; x < n; x++ {
			if int(f.Labels()[x]) != o.find(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUnions(t *testing.T) {
	const n = 10000
	f := New(n)
	var wg sync.WaitGroup
	// 8 goroutines each union a strided chain; combined they connect
	// everything into one set.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i+8 < n; i += 8 {
				f.Union(uint32(i), uint32(i+8)) // chains within residue class
			}
			f.Union(uint32(g), uint32((g+1)%8)) // stitch classes together
		}(g)
	}
	wg.Wait()
	f.Compress()
	if f.NumSets() != 1 {
		t.Fatalf("NumSets = %d, want 1", f.NumSets())
	}
	for x := 0; x < n; x++ {
		if f.Labels()[x] != 0 {
			t.Fatalf("label[%d] = %d", x, f.Labels()[x])
		}
	}
}

func TestConcurrentUnionsRandom(t *testing.T) {
	const n = 5000
	edges := make([][2]uint32, 20000)
	rng := rand.New(rand.NewSource(7))
	o := newOracle(n)
	for i := range edges {
		a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		edges[i] = [2]uint32{a, b}
		o.union(int(a), int(b))
	}
	f := New(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(edges); i += 8 {
				f.Union(edges[i][0], edges[i][1])
			}
		}(g)
	}
	wg.Wait()
	f.Compress()
	for x := 0; x < n; x++ {
		if int(f.Labels()[x]) != o.find(x) {
			t.Fatalf("label[%d] = %d, oracle %d", x, f.Labels()[x], o.find(x))
		}
	}
}

func TestGrowPreservesSets(t *testing.T) {
	f := New(4)
	f.Union(0, 1)
	f.Union(2, 3)
	f.Grow(7)
	if f.Len() != 7 {
		t.Fatalf("Len = %d, want 7", f.Len())
	}
	f.Compress()
	if !f.Same(0, 1) || !f.Same(2, 3) || f.Same(0, 2) {
		t.Fatal("pre-grow sets disturbed")
	}
	for x := uint32(4); x < 7; x++ {
		if f.Find(x) != x {
			t.Fatalf("new element %d not a singleton (root %d)", x, f.Find(x))
		}
	}
	// New elements participate in unions normally.
	f.Union(3, 5)
	f.Compress()
	if !f.Same(2, 5) {
		t.Fatal("union across the grown boundary failed")
	}
	// Growing to a smaller or equal size is a no-op.
	f.Grow(3)
	if f.Len() != 7 {
		t.Fatalf("Len after shrink attempt = %d", f.Len())
	}
}
