package unionfind

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	f := New(5)
	if f.Len() != 5 || f.NumSets() != 5 {
		t.Fatal("fresh forest wrong")
	}
	f.Union(0, 2)
	f.Union(2, 4)
	f.Compress()
	if !f.Same(0, 4) || f.Same(0, 1) {
		t.Fatal("union results wrong")
	}
	if f.NumSets() != 3 {
		t.Fatalf("NumSets = %d, want 3", f.NumSets())
	}
	// Minimum-member representative.
	if f.Find(4) != 0 {
		t.Fatalf("root of 4 = %d, want 0", f.Find(4))
	}
}

func TestUnionSelfAndRepeated(t *testing.T) {
	f := New(3)
	f.Union(1, 1)
	f.Union(0, 2)
	f.Union(0, 2)
	f.Union(2, 0)
	f.Compress()
	if f.NumSets() != 2 {
		t.Fatalf("NumSets = %d", f.NumSets())
	}
}

// oracle union-find for comparison.
type oracle struct{ parent []int }

func newOracle(n int) *oracle {
	o := &oracle{parent: make([]int, n)}
	for i := range o.parent {
		o.parent[i] = i
	}
	return o
}
func (o *oracle) find(x int) int {
	for o.parent[x] != x {
		o.parent[x] = o.parent[o.parent[x]]
		x = o.parent[x]
	}
	return x
}
func (o *oracle) union(a, b int) {
	ra, rb := o.find(a), o.find(b)
	if ra < rb {
		o.parent[rb] = ra
	} else if rb < ra {
		o.parent[ra] = rb
	}
}

func TestMatchesOracleProperty(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		f := New(n)
		o := newOracle(n)
		for i := 0; i < 120; i++ {
			a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
			f.Union(a, b)
			o.union(int(a), int(b))
		}
		f.Compress()
		for x := 0; x < n; x++ {
			if int(f.Labels()[x]) != o.find(x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentUnions(t *testing.T) {
	const n = 10000
	f := New(n)
	var wg sync.WaitGroup
	// 8 goroutines each union a strided chain; combined they connect
	// everything into one set.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i+8 < n; i += 8 {
				f.Union(uint32(i), uint32(i+8)) // chains within residue class
			}
			f.Union(uint32(g), uint32((g+1)%8)) // stitch classes together
		}(g)
	}
	wg.Wait()
	f.Compress()
	if f.NumSets() != 1 {
		t.Fatalf("NumSets = %d, want 1", f.NumSets())
	}
	for x := 0; x < n; x++ {
		if f.Labels()[x] != 0 {
			t.Fatalf("label[%d] = %d", x, f.Labels()[x])
		}
	}
}

func TestConcurrentUnionsRandom(t *testing.T) {
	const n = 5000
	edges := make([][2]uint32, 20000)
	rng := rand.New(rand.NewSource(7))
	o := newOracle(n)
	for i := range edges {
		a, b := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		edges[i] = [2]uint32{a, b}
		o.union(int(a), int(b))
	}
	f := New(n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(edges); i += 8 {
				f.Union(edges[i][0], edges[i][1])
			}
		}(g)
	}
	wg.Wait()
	f.Compress()
	for x := 0; x < n; x++ {
		if int(f.Labels()[x]) != o.find(x) {
			t.Fatalf("label[%d] = %d, oracle %d", x, f.Labels()[x], o.find(x))
		}
	}
}

func TestTryUnion(t *testing.T) {
	f := New(4)
	if !f.TryUnion(0, 2) {
		t.Fatal("first union of distinct singletons should report a merge")
	}
	if f.TryUnion(0, 2) || f.TryUnion(2, 0) {
		t.Fatal("re-union of the same set should report no merge")
	}
	if f.TryUnion(1, 1) {
		t.Fatal("self-union should report no merge")
	}
	if !f.TryUnion(2, 3) {
		t.Fatal("union through a non-root member should still merge")
	}
	f.Compress()
	if f.NumSets() != 2 {
		t.Fatalf("NumSets = %d, want 2", f.NumSets())
	}
}

func TestTryUnionCountsMerges(t *testing.T) {
	// Across any interleaving, successful TryUnions = n - NumSets: each true
	// return is exactly one merge.
	const n = 4000
	f := New(n)
	rng := rand.New(rand.NewSource(11))
	edges := make([][2]uint32, 12000)
	for i := range edges {
		edges[i] = [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
	}
	var merges atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(edges); i += 8 {
				if f.TryUnion(edges[i][0], edges[i][1]) {
					merges.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	f.Compress()
	if got, want := merges.Load(), int64(n-f.NumSets()); got != want {
		t.Fatalf("merges = %d, want %d (n - NumSets)", got, want)
	}
}

func TestSameSet(t *testing.T) {
	f := New(6)
	if f.SameSet(0, 1) {
		t.Fatal("fresh singletons reported connected")
	}
	f.Union(0, 2)
	f.Union(2, 4)
	if !f.SameSet(0, 4) || !f.SameSet(4, 0) {
		t.Fatal("SameSet missed a union chain")
	}
	if f.SameSet(0, 1) {
		t.Fatal("SameSet connected disjoint sets")
	}
	if !f.SameSet(3, 3) {
		t.Fatal("SameSet(x, x) must be true")
	}
}

// TestSameSetNeverFalsePositive: under concurrent unions, SameSet may be
// stale (report false for a freshly merged pair) but must never report true
// for elements in different residue classes, which no union ever connects.
func TestSameSetNeverFalsePositive(t *testing.T) {
	const n = 8000
	f := New(n)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := g; i+4 < n; i += 4 {
				f.Union(uint32(i), uint32(i+4)) // stays within residue class mod 4
			}
		}(g)
	}
	var bad atomic.Bool
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := uint32(rng.Intn(n))
				b := uint32(rng.Intn(n))
				if a%4 != b%4 && f.SameSet(a, b) {
					bad.Store(true)
					return
				}
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if bad.Load() {
		t.Fatal("SameSet reported true across disjoint residue classes")
	}
	f.Compress()
	for x := 0; x < n; x++ {
		if f.Labels()[x] != uint32(x%4) {
			t.Fatalf("label[%d] = %d, want %d", x, f.Labels()[x], x%4)
		}
	}
}

func TestGrowPreservesSets(t *testing.T) {
	f := New(4)
	f.Union(0, 1)
	f.Union(2, 3)
	f.Grow(7)
	if f.Len() != 7 {
		t.Fatalf("Len = %d, want 7", f.Len())
	}
	f.Compress()
	if !f.Same(0, 1) || !f.Same(2, 3) || f.Same(0, 2) {
		t.Fatal("pre-grow sets disturbed")
	}
	for x := uint32(4); x < 7; x++ {
		if f.Find(x) != x {
			t.Fatalf("new element %d not a singleton (root %d)", x, f.Find(x))
		}
	}
	// New elements participate in unions normally.
	f.Union(3, 5)
	f.Compress()
	if !f.Same(2, 5) {
		t.Fatal("union across the grown boundary failed")
	}
	// Growing to a smaller or equal size is a no-op.
	f.Grow(3)
	if f.Len() != 7 {
		t.Fatalf("Len after shrink attempt = %d", f.Len())
	}
}
