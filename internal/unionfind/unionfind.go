// Package unionfind provides a lock-free concurrent disjoint-set forest
// (the Afforest-style link/compress structure), shared by the connected
// component algorithms and by the direct s-component computation that
// unions s-incident hyperedge pairs during construction without
// materializing the s-line graph.
package unionfind

import (
	"nwhy/internal/parallel"
)

// Forest is a concurrent disjoint-set forest over uint32 IDs. Union is safe
// to call from many goroutines; Find is safe concurrently with Union but
// only stabilizes after Compress. The representative of a set is always its
// minimum member after Compress.
type Forest struct {
	parent []uint32
}

// New creates a forest of n singleton sets.
func New(n int) *Forest {
	f := &Forest{parent: make([]uint32, n)}
	for i := range f.parent {
		f.parent[i] = uint32(i)
	}
	return f
}

// Len reports the element count.
func (f *Forest) Len() int { return len(f.parent) }

// Grow extends the forest to n elements, appending singleton sets. IDs
// below the old length keep their set membership, so an incremental
// algorithm can widen its forest as the ID space grows and then absorb
// new unions. Shrinking is not supported (n <= Len is a no-op). Not safe
// concurrently with Union/Find.
func (f *Forest) Grow(n int) {
	for i := len(f.parent); i < n; i++ {
		f.parent = append(f.parent, uint32(i))
	}
}

// Union merges the sets containing u and v with lock-free hooking by
// minimum root (the Afforest link operation).
func (f *Forest) Union(u, v uint32) { f.TryUnion(u, v) }

// TryUnion merges the sets containing u and v, reporting whether this call
// performed the link. A false return means the two were already one set
// (possibly merged concurrently by another caller an instant earlier) —
// the signal the kernel's connected short-circuit and the tests use to
// count productive unions. Lock-free, same hooking discipline as Union.
func (f *Forest) TryUnion(u, v uint32) bool {
	p1 := parallel.LoadU32(&f.parent[u])
	p2 := parallel.LoadU32(&f.parent[v])
	for p1 != p2 {
		high, low := p1, p2
		if high < low {
			high, low = low, high
		}
		pHigh := parallel.LoadU32(&f.parent[high])
		if pHigh == low {
			return false
		}
		if pHigh == high && parallel.CASU32(&f.parent[high], high, low) {
			return true
		}
		p1 = parallel.LoadU32(&f.parent[parallel.LoadU32(&f.parent[high])])
		p2 = parallel.LoadU32(&f.parent[low])
	}
	return false
}

// Find returns the current root of x's set (with path halving). Between a
// quiescent point and the next Union burst this is exact; during concurrent
// Unions it may lag, which the CC algorithms tolerate.
func (f *Forest) Find(x uint32) uint32 {
	for {
		p := parallel.LoadU32(&f.parent[x])
		pp := parallel.LoadU32(&f.parent[p])
		if p == pp {
			return p
		}
		parallel.CASU32(&f.parent[x], p, pp)
		x = pp
	}
}

// Compress fully flattens the forest in parallel so parent[x] is x's root
// for every element. Call between Union phases, not concurrently with them.
func (f *Forest) Compress() {
	parallel.For(len(f.parent), func(_, lo, hi int) {
		for x := lo; x < hi; x++ {
			for {
				p := parallel.LoadU32(&f.parent[x])
				pp := parallel.LoadU32(&f.parent[p])
				if p == pp {
					break
				}
				parallel.StoreU32(&f.parent[x], pp)
			}
		}
	})
}

// Labels returns the flattened parent array (aliasing internal storage);
// call Compress first.
func (f *Forest) Labels() []uint32 { return f.parent }

// NumSets counts distinct roots; call Compress first.
func (f *Forest) NumSets() int {
	return parallel.Reduce(len(f.parent), 0,
		func(lo, hi, acc int) int {
			for x := lo; x < hi; x++ {
				if f.parent[x] == uint32(x) {
					acc++
				}
			}
			return acc
		},
		func(a, b int) int { return a + b })
}

// Same reports whether u and v are currently in one set (quiescent use).
func (f *Forest) Same(u, v uint32) bool { return f.Find(u) == f.Find(v) }

// SameSet reports whether u and v are in one set, safely during concurrent
// Union bursts: a true result is definitive (both Finds reached a common
// element, and connectivity only ever grows), while a false result may be
// stale the instant it returns. That asymmetry is exactly what the kernel's
// connected short-circuit tolerates — a false negative costs one redundant
// overlap count; a false positive would lose a component merge and cannot
// happen. The loop retries while the roots it observed were concurrently
// hooked under something else, so false negatives are confined to genuinely
// racing unions.
func (f *Forest) SameSet(u, v uint32) bool {
	for {
		ru := f.Find(u)
		rv := f.Find(v)
		if ru == rv {
			return true
		}
		if parallel.LoadU32(&f.parent[ru]) == ru {
			return false
		}
		u, v = ru, rv
	}
}
