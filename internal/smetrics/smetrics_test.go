package smetrics

import (
	"math"
	"reflect"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/slinegraph"
)

// chainHypergraph: e0..e4 where consecutive edges share exactly 2 nodes,
// and |e_i| = 3 except the last. The 2-line graph is the path e0-e1-e2-e3-e4.
func chainHypergraph() *core.Hypergraph {
	return core.FromSets([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{2, 3, 4},
		{3, 4, 5},
		{4, 5, 6},
	}, 7)
}

func paperHypergraph() *core.Hypergraph {
	return core.FromSets([][]uint32{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6},
		{0, 6, 7, 8},
	}, 9)
}

func TestBuildShape(t *testing.T) {
	l := tBuild(paperHypergraph(), 1)
	if l.NumVertices() != 4 || l.NumEdges() != 4 {
		t.Fatalf("1-line graph: %d vertices, %d edges", l.NumVertices(), l.NumEdges())
	}
	if l.S != 1 {
		t.Fatalf("S = %d", l.S)
	}
}

func TestSDegreeAndNeighbors(t *testing.T) {
	l := tBuild(paperHypergraph(), 1)
	// Cycle e0-e1-e2-e3: every hyperedge has s-degree 2.
	for e := 0; e < 4; e++ {
		if l.SDegree(e) != 2 {
			t.Fatalf("SDegree(%d) = %d", e, l.SDegree(e))
		}
	}
	if got := l.SNeighbors(0); !reflect.DeepEqual(got, []uint32{1, 3}) {
		t.Fatalf("SNeighbors(0) = %v", got)
	}
}

func TestSConnectedComponents(t *testing.T) {
	l := tBuild(paperHypergraph(), 1)
	comp := l.SConnectedComponents()
	for e := 1; e < 4; e++ {
		if comp[e] != comp[0] {
			t.Fatalf("1-line graph should be one component: %v", comp)
		}
	}
	if !l.IsSConnected() {
		t.Fatal("IsSConnected should be true at s=1")
	}
	// At s=2 the paper example's line graph has no edges: 4 singletons.
	l2 := tBuild(paperHypergraph(), 2)
	if l2.IsSConnected() {
		t.Fatal("IsSConnected should be false at s=2")
	}
	comp2 := l2.SConnectedComponents()
	seen := map[uint32]bool{}
	for _, c := range comp2 {
		seen[c] = true
	}
	if len(seen) != 4 {
		t.Fatalf("s=2 components = %v", comp2)
	}
}

func TestIsSConnectedIgnoresIneligible(t *testing.T) {
	// Hyperedge {9} has |e| = 1 < s = 2: inert, must not break connectivity.
	h := core.FromSets([][]uint32{{0, 1, 2}, {1, 2, 3}, {9}}, 10)
	l := tBuild(h, 2)
	if !l.IsSConnected() {
		t.Fatal("ineligible hyperedge should be ignored by IsSConnected")
	}
	if l.Eligible(2) {
		t.Fatal("size-1 hyperedge eligible at s=2")
	}
}

func TestIsSConnectedVacuouslyFalse(t *testing.T) {
	h := core.FromSets([][]uint32{{0}}, 1)
	if tBuild(h, 2).IsSConnected() {
		t.Fatal("no eligible hyperedges should mean not s-connected")
	}
}

func TestSDistanceChain(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	if d := l.SDistance(0, 4); d != 4 {
		t.Fatalf("SDistance(0,4) = %d, want 4", d)
	}
	if d := l.SDistance(1, 3); d != 2 {
		t.Fatalf("SDistance(1,3) = %d, want 2", d)
	}
	if d := l.SDistance(0, 0); d != 0 {
		t.Fatalf("SDistance(0,0) = %d", d)
	}
}

func TestSDistanceUnreachable(t *testing.T) {
	h := core.FromSets([][]uint32{{0, 1}, {5, 6}}, 7)
	l := tBuild(h, 1)
	if d := l.SDistance(0, 1); d != -1 {
		t.Fatalf("SDistance across components = %d, want -1", d)
	}
}

func TestSPathChain(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	got := l.SPath(0, 4)
	want := []uint32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SPath = %v, want %v", got, want)
	}
	if l.SPath(0, 0) == nil || len(l.SPath(0, 0)) != 1 {
		t.Fatal("SPath to self should be [src]")
	}
}

func TestSPathNil(t *testing.T) {
	h := core.FromSets([][]uint32{{0, 1}, {5, 6}}, 7)
	if tBuild(h, 1).SPath(0, 1) != nil {
		t.Fatal("SPath across components should be nil")
	}
}

func TestSBetweennessChain(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	bc := l.SBetweennessCentrality(false)
	// Path of 5: middle vertex has BC 4 (pairs (0,3),(0,4),(1,3),(1,4)).
	if bc[2] != 4 {
		t.Fatalf("BC = %v", bc)
	}
	if bc[0] != 0 || bc[4] != 0 {
		t.Fatalf("endpoints should be 0: %v", bc)
	}
}

func TestSClosenessChain(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	c := l.SClosenessCentrality()
	// Middle of a 5-path: distances 2+1+1+2 = 6 -> 4/6.
	if math.Abs(c[2]-4.0/6.0) > 1e-9 {
		t.Fatalf("closeness = %v", c)
	}
	if got := l.SClosenessCentralityOf(2); math.Abs(got-c[2]) > 1e-12 {
		t.Fatal("single-vertex closeness differs")
	}
}

func TestSHarmonicChain(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	hc := l.SHarmonicClosenessCentrality()
	// Vertex 0: 1 + 1/2 + 1/3 + 1/4 = 2.0833.., / 4.
	want := (1 + 0.5 + 1.0/3 + 0.25) / 4
	if math.Abs(hc[0]-want) > 1e-9 {
		t.Fatalf("harmonic[0] = %v, want %v", hc[0], want)
	}
}

func TestSEccentricityChain(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	ecc := l.SEccentricity()
	want := []float64{4, 3, 2, 3, 4}
	if !reflect.DeepEqual(ecc, want) {
		t.Fatalf("ecc = %v", ecc)
	}
	if l.SEccentricityOf(0) != 4 {
		t.Fatal("SEccentricityOf differs")
	}
	if l.SDiameter() != 4 {
		t.Fatalf("diameter = %v", l.SDiameter())
	}
}

func TestBuildWithMatchesBuild(t *testing.T) {
	h := chainHypergraph()
	viaQueue := tBuildWith(h, 2, tQueueIntersection(slinegraph.FromHypergraph(h), 2, slinegraph.Options{}))
	direct := tBuild(h, 2)
	if viaQueue.NumEdges() != direct.NumEdges() {
		t.Fatal("tBuildWith(queue2) differs from Build")
	}
	if !reflect.DeepEqual(viaQueue.SConnectedComponents(), direct.SConnectedComponents()) {
		t.Fatal("components differ")
	}
}

func TestSPageRankAndCoreness(t *testing.T) {
	l := tBuild(chainHypergraph(), 2)
	pr := l.SPageRank(0.85, 1e-10, 200)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("s-PageRank sums to %v", sum)
	}
	core := l.SCoreness()
	for e, c := range core {
		if c != 1 {
			t.Fatalf("path coreness[%d] = %d", e, c)
		}
	}
}
