// Package smetrics implements NWHy's approximate hypergraph analytics: the
// s-metrics of Aksoy et al. computed on s-line graphs. An s-walk is a walk
// on the s-line graph; every metric here (s-connected components,
// s-distance, s-path, s-betweenness, s-closeness, s-harmonic closeness,
// s-eccentricity) is the corresponding graph metric evaluated on the s-line
// graph, whose vertices are the hyperedges of the original hypergraph.
package smetrics

import (
	"math"
	"sync"

	"nwhy/internal/core"
	"nwhy/internal/graph"
	"nwhy/internal/parallel"
	"nwhy/internal/slinegraph"
	"nwhy/internal/sparse"
)

// SLineGraph is a materialized s-line graph of a hypergraph, the object the
// s-metric queries run against (the Go analogue of the Python API's
// hg.s_linegraph(s) handle).
type SLineGraph struct {
	// S is the overlap threshold the graph was built with.
	S int
	// G is the line graph: vertex e is hyperedge e of the source hypergraph.
	G *graph.Graph

	// pairs lazily materializes the canonical edge list from G. It is a
	// shared pointer (not an inline sync.Once) so WithEngine's shallow copy
	// neither copies a lock nor recomputes the list.
	pairs *pairsBox

	h   *core.Hypergraph
	eng *parallel.Engine
}

// pairsBox holds the lazily-extracted canonical s-line edge list, shared
// across every WithEngine copy of a handle.
type pairsBox struct {
	once sync.Once
	list []sparse.Edge
}

// Build constructs the s-line graph of h on eng with Auto counter/schedule
// resolution, assembling the adjacency CSR directly from the kernel's
// per-worker buffers — the default path never materializes a global edge
// list (Pairs extracts one lazily on demand). The handle binds eng: every
// subsequent s-metric query schedules on it and observes its context.
func Build(eng *parallel.Engine, h *core.Hypergraph, s int) (*SLineGraph, error) {
	return BuildOptions(eng, h, s, slinegraph.Options{Schedule: slinegraph.AutoSchedule})
}

// BuildOptions is Build with explicit construction options (counter
// strategy, schedule, relabel order, partition), still on the direct-CSR
// fast path.
func BuildOptions(eng *parallel.Engine, h *core.Hypergraph, s int, o slinegraph.Options) (*SLineGraph, error) {
	csr, err := slinegraph.ConstructCSR(eng, slinegraph.FromHypergraph(h), s, o)
	if err != nil {
		return nil, err
	}
	return BuildCSR(eng, h, s, csr)
}

// BuildCSR wraps an already-assembled symmetric s-line adjacency (from
// slinegraph.ConstructCSR), binding eng for the s-metric queries.
func BuildCSR(eng *parallel.Engine, h *core.Hypergraph, s int, csr *sparse.CSR) (*SLineGraph, error) {
	g, err := graph.FromCSR(csr)
	if err != nil {
		return nil, err
	}
	return &SLineGraph{
		S:     s,
		G:     g,
		pairs: &pairsBox{},
		h:     h,
		eng:   eng,
	}, nil
}

// BuildWith wraps an already-constructed s-line edge list (from any of the
// construction algorithms — they all produce identical canonical lists),
// binding eng for the s-metric queries.
func BuildWith(eng *parallel.Engine, h *core.Hypergraph, s int, pairs []sparse.Edge) *SLineGraph {
	box := &pairsBox{list: pairs}
	box.once.Do(func() {}) // already populated
	return &SLineGraph{
		S:     s,
		G:     slinegraph.ToLineGraph(h.NumEdges(), pairs),
		pairs: box,
		h:     h,
		eng:   eng,
	}
}

// Pairs returns the canonical s-line edge list (U < V, sorted). Handles on
// the direct-CSR path extract it from the adjacency on first call (rows are
// sorted, so walking the upper triangle yields canonical order directly);
// handles built from a pair list return that list.
func (l *SLineGraph) Pairs() []sparse.Edge {
	l.pairs.once.Do(func() {
		c := l.G.CSR()
		out := make([]sparse.Edge, 0, c.NumEdges()/2)
		for u := 0; u < c.NumRows(); u++ {
			for _, v := range c.Row(u) {
				if v > uint32(u) {
					out = append(out, sparse.Edge{U: uint32(u), V: v})
				}
			}
		}
		if len(out) > 0 {
			l.pairs.list = out
		}
	})
	return l.pairs.list
}

// Engine returns the engine the handle's queries run on.
func (l *SLineGraph) Engine() *parallel.Engine { return l.eng }

// WithEngine returns a shallow copy of the handle bound to eng — the hook
// the facade uses to attach a context-carrying engine for one call chain.
func (l *SLineGraph) WithEngine(eng *parallel.Engine) *SLineGraph {
	c := *l
	c.eng = eng
	return &c
}

// NumVertices reports the number of line-graph vertices (= hyperedges of h).
func (l *SLineGraph) NumVertices() int { return l.G.NumVertices() }

// NumEdges reports the number of s-line edges (each stored as two arcs of
// the symmetric adjacency).
func (l *SLineGraph) NumEdges() int { return l.G.NumArcs() / 2 }

// SDegree reports hyperedge e's s-degree: the number of hyperedges sharing
// at least s hypernodes with it.
func (l *SLineGraph) SDegree(e int) int { return l.G.Degree(e) }

// SNeighbors returns the hyperedges s-adjacent to e.
func (l *SLineGraph) SNeighbors(e int) []uint32 { return l.G.Row(e) }

// Eligible reports whether hyperedge e can participate in s-walks at all
// (|e| >= s); smaller hyperedges are inert vertices of the line graph.
func (l *SLineGraph) Eligible(e int) bool { return l.h.EdgeDegree(e) >= l.S }

// SConnectedComponents labels every hyperedge with its s-component
// (canonical minimum-member labels). Hyperedges with no s-neighbors are
// singleton components.
func (l *SLineGraph) SConnectedComponents() []uint32 {
	return graph.CanonicalizeComponents(graph.CCAfforest(l.eng, l.G))
}

// IsSConnected reports whether all eligible hyperedges form a single
// s-connected component (vacuously false when no hyperedge is eligible).
func (l *SLineGraph) IsSConnected() bool {
	comp := l.SConnectedComponents()
	label := uint32(math.MaxUint32)
	any := false
	for e := 0; e < l.NumVertices(); e++ {
		if !l.Eligible(e) {
			continue
		}
		if !any {
			label = comp[e]
			any = true
		} else if comp[e] != label {
			return false
		}
	}
	return any
}

// SDistance reports the s-walk length between hyperedges src and dst: the
// hop distance in the s-line graph, or -1 if no s-walk connects them.
func (l *SLineGraph) SDistance(src, dst int) int {
	r := graph.BFSTopDown(l.eng, l.G, src)
	return int(r.Level[dst])
}

// SPath returns one shortest s-walk from src to dst as a hyperedge ID
// sequence (inclusive), or nil if none exists.
func (l *SLineGraph) SPath(src, dst int) []uint32 {
	r := graph.BFSTopDown(l.eng, l.G, src)
	if r.Level[dst] < 0 {
		return nil
	}
	var rev []uint32
	for v := int32(dst); v != -1; v = r.Parent[v] {
		rev = append(rev, uint32(v))
	}
	out := make([]uint32, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// SBetweennessCentrality computes betweenness centrality of every hyperedge
// over s-walks.
func (l *SLineGraph) SBetweennessCentrality(normalized bool) []float64 {
	return graph.BetweennessCentrality(l.eng, l.G, normalized)
}

// SClosenessCentrality computes closeness centrality over s-walks for every
// hyperedge.
func (l *SLineGraph) SClosenessCentrality() []float64 {
	return graph.ClosenessCentrality(l.eng, l.G)
}

// SClosenessCentralityOf computes one hyperedge's s-closeness.
func (l *SLineGraph) SClosenessCentralityOf(e int) float64 {
	return l.SClosenessCentrality()[e]
}

// SHarmonicClosenessCentrality computes harmonic closeness over s-walks.
func (l *SLineGraph) SHarmonicClosenessCentrality() []float64 {
	return graph.HarmonicClosenessCentrality(l.eng, l.G)
}

// SEccentricity computes every hyperedge's s-eccentricity: the longest
// shortest s-walk from it.
func (l *SLineGraph) SEccentricity() []float64 {
	return graph.Eccentricity(l.eng, l.G)
}

// SEccentricityOf computes one hyperedge's s-eccentricity.
func (l *SLineGraph) SEccentricityOf(e int) float64 {
	return graph.EccentricityOf(l.G, e)
}

// SDiameter reports the largest finite s-eccentricity (the diameter of the
// largest-diameter s-component).
func (l *SLineGraph) SDiameter() float64 {
	d := 0.0
	for _, e := range l.SEccentricity() {
		if e > d {
			d = e
		}
	}
	return d
}

// SPageRank runs PageRank on the s-line graph.
func (l *SLineGraph) SPageRank(damping, tol float64, maxIter int) []float64 {
	return graph.PageRank(l.eng, l.G, damping, tol, maxIter)
}

// SCoreness computes k-core numbers on the s-line graph.
func (l *SLineGraph) SCoreness() []int {
	return graph.Coreness(l.G)
}

// SMaximalIndependentSet computes a maximal set of pairwise non-s-adjacent
// hyperedges (Luby's algorithm on the s-line graph).
func (l *SLineGraph) SMaximalIndependentSet(seed int64) []bool {
	return graph.MaximalIndependentSet(l.eng, l.G, seed)
}
