package smetrics

import (
	"nwhy/internal/core"
	"nwhy/internal/parallel"
	"nwhy/internal/slinegraph"
	"nwhy/internal/sparse"
)

// teng is the engine the package tests run on; wrapper funcs restore the
// engine-less signatures the tests were written against and discard the
// (always-nil without cancellation) errors.
var teng = parallel.SharedEngine()

func tBuild(h *core.Hypergraph, s int) *SLineGraph {
	l, _ := Build(teng, h, s)
	return l
}

func tBuildWith(h *core.Hypergraph, s int, pairs []sparse.Edge) *SLineGraph {
	return BuildWith(teng, h, s, pairs)
}

func tBuildWeighted(h *core.Hypergraph, s int) *WeightedSLineGraph {
	l, _ := BuildWeighted(teng, h, s)
	return l
}

func tQueueIntersection(in slinegraph.Input, s int, o slinegraph.Options) []sparse.Edge {
	r, _ := slinegraph.QueueIntersection(teng, in, s, o)
	return r
}
