package smetrics

import (
	"nwhy/internal/core"
	"nwhy/internal/graph"
	"nwhy/internal/parallel"
	"nwhy/internal/slinegraph"
)

// WeightedSLineGraph extends SLineGraph with the overlap strengths of
// Figure 5: each s-line edge knows |e ∩ f|, and a strength-weighted view
// (arc weight 1/overlap) supports distances that prefer strong overlaps.
type WeightedSLineGraph struct {
	*SLineGraph
	// Strengths holds the canonical weighted pair list.
	Strengths []slinegraph.WeightedPair
	// WG is the weighted line graph (arc weight = 1/overlap).
	WG *graph.Graph
}

// BuildWeighted constructs the strength-annotated s-line graph of h on eng,
// binding eng for the weighted s-metric queries.
func BuildWeighted(eng *parallel.Engine, h *core.Hypergraph, s int) (*WeightedSLineGraph, error) {
	return BuildWeightedOptions(eng, h, s, slinegraph.Options{})
}

// BuildWeightedOptions is BuildWeighted with explicit construction options,
// running the kernel's exact-count emit mode under any counter/schedule.
func BuildWeightedOptions(eng *parallel.Engine, h *core.Hypergraph, s int, o slinegraph.Options) (*WeightedSLineGraph, error) {
	wp, err := slinegraph.ConstructWeighted(eng, slinegraph.FromHypergraph(h), s, o)
	if err != nil {
		return nil, err
	}
	return &WeightedSLineGraph{
		SLineGraph: BuildWith(eng, h, s, slinegraph.Unweight(wp)),
		Strengths:  wp,
		WG:         slinegraph.ToWeightedLineGraph(h.NumEdges(), wp),
	}, nil
}

// WithEngine returns a shallow copy of the handle (weighted view included)
// bound to eng — the hook the facade uses to attach a context-carrying
// engine for one call chain.
func (l *WeightedSLineGraph) WithEngine(eng *parallel.Engine) *WeightedSLineGraph {
	c := *l
	c.SLineGraph = l.SLineGraph.WithEngine(eng)
	return &c
}

// Strength reports |e ∩ f| for an s-line edge, or 0 if the pair is not
// s-incident.
func (l *WeightedSLineGraph) Strength(e, f int) int {
	u, v := uint32(e), uint32(f)
	if u > v {
		u, v = v, u
	}
	// Binary search over the canonical pair list.
	lo, hi := 0, len(l.Strengths)
	for lo < hi {
		mid := (lo + hi) / 2
		p := l.Strengths[mid]
		if p.U < u || (p.U == u && p.V < v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(l.Strengths) && l.Strengths[lo].U == u && l.Strengths[lo].V == v {
		return l.Strengths[lo].Overlap
	}
	return 0
}

// SDistanceWeighted reports the strength-weighted s-distance between two
// hyperedges: the minimum over s-walks of the sum of 1/overlap along the
// walk. Returns +Inf when unreachable.
func (l *WeightedSLineGraph) SDistanceWeighted(src, dst int) float64 {
	r := graph.DeltaStepping(l.eng, l.WG, src, 0)
	return r.Dist[dst]
}

// SPathWeighted returns the minimum strength-weighted s-walk, or nil.
func (l *WeightedSLineGraph) SPathWeighted(src, dst int) []uint32 {
	r := graph.DeltaStepping(l.eng, l.WG, src, 0)
	return r.PathTo(dst)
}

// SBetweennessCentralityWeighted computes betweenness centrality over
// strength-weighted s-walks (Dijkstra-based Brandes on the weighted line
// graph): hyperedges bridging strong-overlap chains score highest.
func (l *WeightedSLineGraph) SBetweennessCentralityWeighted(normalized bool) []float64 {
	return graph.WeightedBetweennessCentrality(l.eng, l.WG, normalized)
}

// SClosenessCentralityWeighted computes closeness over strength-weighted
// s-walks.
func (l *WeightedSLineGraph) SClosenessCentralityWeighted() []float64 {
	return graph.WeightedClosenessCentrality(l.eng, l.WG)
}

// SHarmonicClosenessCentralityWeighted computes harmonic closeness over
// strength-weighted s-walks.
func (l *WeightedSLineGraph) SHarmonicClosenessCentralityWeighted() []float64 {
	return graph.WeightedHarmonicCloseness(l.eng, l.WG)
}

// SEccentricityWeighted computes eccentricity over strength-weighted
// s-walks.
func (l *WeightedSLineGraph) SEccentricityWeighted() []float64 {
	return graph.WeightedEccentricity(l.eng, l.WG)
}
