package smetrics

import (
	"math"
	"testing"

	"nwhy/internal/core"
)

// strengthChain: e0-e1 overlap 3, e1-e2 overlap 1, e0-e2 overlap 0...
// Actually e0={0,1,2,3}, e1={1,2,3,4}, e2={4,5}: |e0∩e1|=3, |e1∩e2|=1.
func strengthChain() *core.Hypergraph {
	return core.FromSets([][]uint32{
		{0, 1, 2, 3},
		{1, 2, 3, 4},
		{4, 5},
	}, 6)
}

func TestWeightedStrengthLookup(t *testing.T) {
	l := tBuildWeighted(strengthChain(), 1)
	if got := l.Strength(0, 1); got != 3 {
		t.Fatalf("Strength(0,1) = %d, want 3", got)
	}
	if got := l.Strength(1, 0); got != 3 {
		t.Fatalf("Strength is not symmetric: %d", got)
	}
	if got := l.Strength(1, 2); got != 1 {
		t.Fatalf("Strength(1,2) = %d, want 1", got)
	}
	if got := l.Strength(0, 2); got != 0 {
		t.Fatalf("Strength(0,2) = %d, want 0 (not s-incident)", got)
	}
}

func TestWeightedDistance(t *testing.T) {
	l := tBuildWeighted(strengthChain(), 1)
	// 0 -> 1 costs 1/3; 1 -> 2 costs 1/1. Total 4/3.
	got := l.SDistanceWeighted(0, 2)
	if math.Abs(got-4.0/3.0) > 1e-9 {
		t.Fatalf("weighted distance = %v, want 4/3", got)
	}
	if l.SDistanceWeighted(0, 0) != 0 {
		t.Fatal("self distance != 0")
	}
}

func TestWeightedDistancePrefersStrongPath(t *testing.T) {
	// Two routes from e0 to e3: via e1 (strong overlaps: 3 then 3) or via
	// e2 (weak: 1 then 1). Hop distance ties at 2; strength-weighted
	// distance must pick the strong route (2/3 < 2).
	h := core.FromSets([][]uint32{
		{0, 1, 2, 10},      // e0
		{0, 1, 2, 3, 4, 5}, // e1: |e0∩e1|=3, |e1∩e3|=3
		{10, 20},           // e2: |e0∩e2|=1, |e2∩e3|=1
		{3, 4, 5, 20},      // e3
	}, 21)
	l := tBuildWeighted(h, 1)
	d := l.SDistanceWeighted(0, 3)
	if math.Abs(d-2.0/3.0) > 1e-9 {
		t.Fatalf("weighted distance = %v, want 2/3", d)
	}
	path := l.SPathWeighted(0, 3)
	if len(path) != 3 || path[1] != 1 {
		t.Fatalf("weighted path = %v, want through e1", path)
	}
}

func TestWeightedUnreachable(t *testing.T) {
	h := core.FromSets([][]uint32{{0, 1}, {5, 6}}, 7)
	l := tBuildWeighted(h, 1)
	if !math.IsInf(l.SDistanceWeighted(0, 1), 1) {
		t.Fatal("unreachable weighted distance should be +Inf")
	}
	if l.SPathWeighted(0, 1) != nil {
		t.Fatal("unreachable weighted path should be nil")
	}
}

func TestWeightedBetweennessRoutesThroughStrongBridge(t *testing.T) {
	// e1 bridges e0 and e3 with strong overlaps; e2 with weak ones. Under
	// hop counting they tie; under strength weighting e1 takes the traffic.
	h := core.FromSets([][]uint32{
		{0, 1, 2, 10},
		{0, 1, 2, 3, 4, 5},
		{10, 20},
		{3, 4, 5, 20},
	}, 21)
	l := tBuildWeighted(h, 1)
	bc := l.SBetweennessCentralityWeighted(false)
	if bc[1] <= bc[2] {
		t.Fatalf("strong bridge BC %v not above weak bridge %v", bc[1], bc[2])
	}
	// Unweighted BC splits the (0,3) pair between the two bridges equally.
	plain := l.SBetweennessCentrality(false)
	if plain[1] != plain[2] {
		t.Fatalf("hop-count BC should tie: %v vs %v", plain[1], plain[2])
	}
}

func TestWeightedClosenessFamily(t *testing.T) {
	l := tBuildWeighted(strengthChain(), 1)
	// Weighted distances: d(0,1)=1/3, d(1,2)=1, d(0,2)=4/3.
	c := l.SClosenessCentralityWeighted()
	// Vertex 1: sum = 1/3 + 1 = 4/3; c = 2/(4/3) = 1.5 (full reach, n=3).
	if math.Abs(c[1]-1.5) > 1e-9 {
		t.Fatalf("weighted closeness[1] = %v", c[1])
	}
	h := l.SHarmonicClosenessCentralityWeighted()
	// Vertex 0: 1/(1/3) + 1/(4/3) = 3 + 0.75 = 3.75, /2.
	if math.Abs(h[0]-3.75/2) > 1e-9 {
		t.Fatalf("weighted harmonic[0] = %v", h[0])
	}
	ecc := l.SEccentricityWeighted()
	if math.Abs(ecc[0]-4.0/3.0) > 1e-9 || math.Abs(ecc[1]-1.0) > 1e-9 {
		t.Fatalf("weighted ecc = %v", ecc)
	}
}

func TestWeightedEmbedsPlainSLineGraph(t *testing.T) {
	h := strengthChain()
	l := tBuildWeighted(h, 1)
	plain := tBuild(h, 1)
	if l.NumEdges() != plain.NumEdges() {
		t.Fatal("weighted wrapper changed the pair set")
	}
	if l.SDistance(0, 2) != plain.SDistance(0, 2) {
		t.Fatal("hop distances differ")
	}
}
