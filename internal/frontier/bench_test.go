package frontier

import (
	"sync/atomic"
	"testing"
)

// benchBFS traverses the benchmark graph once under one strategy.
func benchBFS(b *testing.B, strategy Strategy) {
	adj := randAdj(1<<14, 8, 42)
	m := arcCount(adj)
	row := func(u int) []uint32 { return adj[u] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		level := make([]int32, len(adj))
		for j := range level {
			level[j] = -1
		}
		level[0] = 0
		st := NewState(m, strategy)
		f := Single(teng, len(adj), 0)
		for depth := int32(1); !f.Empty(); depth++ {
			d := depth
			f = st.EdgeMap(teng, f, len(adj), row, row,
				func(_, v uint32) bool {
					return atomic.CompareAndSwapInt32(&level[v], -1, d)
				},
				func(v uint32) bool { return atomic.LoadInt32(&level[v]) == -1 })
		}
		f.Release(teng)
	}
}

func BenchmarkEdgeMapPush(b *testing.B) { benchBFS(b, ForcePush) }
func BenchmarkEdgeMapPull(b *testing.B) { benchBFS(b, ForcePull) }
func BenchmarkEdgeMapAuto(b *testing.B) { benchBFS(b, Auto) }
