package frontier

import (
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"nwhy/internal/parallel"
)

var teng = parallel.SharedEngine()

// randAdj builds a random undirected adjacency over n vertices with ~deg
// neighbors each (symmetric, no self loops, possibly disconnected).
func randAdj(n, deg int, seed int64) [][]uint32 {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]uint32, n)
	for u := 0; u < n; u++ {
		for k := 0; k < deg; k++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			adj[u] = append(adj[u], uint32(v))
			adj[v] = append(adj[v], uint32(u))
		}
	}
	return adj
}

func arcCount(adj [][]uint32) int64 {
	var m int64
	for _, row := range adj {
		m += int64(len(row))
	}
	return m
}

// bfsLevels runs a full BFS traversal through EdgeMap under one strategy.
func bfsLevels(adj [][]uint32, src int, strategy Strategy) []int32 {
	n := len(adj)
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	row := func(u int) []uint32 { return adj[u] }
	st := NewState(arcCount(adj), strategy)
	f := Single(teng, n, uint32(src))
	for depth := int32(1); !f.Empty(); depth++ {
		d := depth
		f = st.EdgeMap(teng, f, n, row, row,
			func(_, v uint32) bool {
				return atomic.CompareAndSwapInt32(&level[v], -1, d)
			},
			func(v uint32) bool { return atomic.LoadInt32(&level[v]) == -1 })
	}
	f.Release(teng)
	return level
}

// bfsOracle is the sequential reference.
func bfsOracle(adj [][]uint32, src int) []int32 {
	level := make([]int32, len(adj))
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range adj[u] {
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return level
}

func TestEdgeMapBFSAllStrategies(t *testing.T) {
	f := func(seed int64) bool {
		adj := randAdj(120, 3, seed)
		want := bfsOracle(adj, 0)
		for _, strat := range []Strategy{ForcePush, ForcePull, Auto} {
			got := bfsLevels(adj, 0, strat)
			for v := range want {
				if got[v] != want[v] {
					t.Logf("strategy %v: level[%d] = %d, want %d", strat, v, got[v], want[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestEdgeMapDedup drives a label-propagation round where one target is
// claimable from several sources and asserts the next frontier holds it
// once.
func TestEdgeMapDedup(t *testing.T) {
	// Star: sources 1..8 all point at vertex 0.
	n := 9
	adj := make([][]uint32, n)
	for u := 1; u < n; u++ {
		adj[u] = []uint32{0}
	}
	labels := []uint32{100, 1, 2, 3, 4, 5, 6, 7, 8}
	st := NewState(8, ForcePush)
	st.Dedup = true
	ids := make([]uint32, 8)
	for i := range ids {
		ids[i] = uint32(i + 1)
	}
	f := FromList(n, ids)
	next := st.EdgeMap(teng, f, n, func(u int) []uint32 { return adj[u] }, nil,
		func(u, v uint32) bool {
			return parallel.MinU32(&labels[v], parallel.LoadU32(&labels[u]))
		}, nil)
	if next.Len() != 1 || next.Members()[0] != 0 {
		t.Fatalf("dedup next frontier = %v, want [0]", next.Members())
	}
	if labels[0] != 1 {
		t.Fatalf("label[0] = %d, want 1", labels[0])
	}
	next.Release(teng)
}

func TestFrontierRepresentations(t *testing.T) {
	f := FromList(100, []uint32{3, 97, 41})
	if f.Space() != 100 || f.Len() != 3 || f.Empty() {
		t.Fatalf("bad frontier shape: space=%d len=%d", f.Space(), f.Len())
	}
	b := f.Dense(teng)
	for i := 0; i < 100; i++ {
		want := i == 3 || i == 97 || i == 41
		if b.Get(i) != want {
			t.Fatalf("dense bit %d = %v", i, b.Get(i))
		}
	}
	if !f.Contains(teng, 41) || f.Contains(teng, 40) {
		t.Fatal("Contains disagrees with members")
	}
	f.Release(teng)

	all := All(teng, 5)
	got := append([]uint32(nil), all.Members()...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("All members = %v", got)
		}
	}
	all.Release(teng)

	if !New(7).Empty() {
		t.Fatal("New frontier should be empty")
	}
}

func TestStrategyString(t *testing.T) {
	if Auto.String() != "auto" || ForcePush.String() != "push" || ForcePull.String() != "pull" {
		t.Fatal("strategy names changed")
	}
}

// TestStateDirectionSwitch asserts the alpha/beta heuristics actually
// switch direction on a graph engineered for it: a huge frontier must pull,
// then a tiny one must push again.
func TestStateDirectionSwitch(t *testing.T) {
	st := NewState(1000, Auto)
	// Tiny frontier, huge unexplored volume -> push.
	outRow := func(int) []uint32 { return make([]uint32, 10) }
	if st.decide(FromList(100, []uint32{0}), 100, outRow, true) {
		t.Fatal("small frontier should push")
	}
	// Frontier whose volume dwarfs what is left -> pull.
	big := make([]uint32, 90)
	for i := range big {
		big[i] = uint32(i)
	}
	if !st.decide(FromList(100, big), 100, outRow, true) {
		t.Fatal("huge frontier should pull")
	}
	// Back to a frontier below n/beta -> push again.
	if st.decide(FromList(100, []uint32{0, 1}), 100, outRow, true) {
		t.Fatal("shrunken frontier should push")
	}
	// Pull impossible without an in-adjacency.
	if st.decide(FromList(100, big), 100, outRow, false) {
		t.Fatal("cannot pull without inRow")
	}
}

// TestScratchReuse asserts EdgeMap recycles frontier buffers: after a
// traversal on a private engine, the arena holds reusable u32 buffers.
func TestScratchReuse(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	adj := randAdj(200, 3, 7)
	row := func(u int) []uint32 { return adj[u] }
	for rep := 0; rep < 3; rep++ {
		level := make([]int32, len(adj))
		for i := range level {
			level[i] = -1
		}
		level[0] = 0
		st := NewState(arcCount(adj), Auto)
		f := Single(eng, len(adj), 0)
		for depth := int32(1); !f.Empty(); depth++ {
			d := depth
			f = st.EdgeMap(eng, f, len(adj), row, row,
				func(_, v uint32) bool {
					return atomic.CompareAndSwapInt32(&level[v], -1, d)
				},
				func(v uint32) bool { return atomic.LoadInt32(&level[v]) == -1 })
		}
		f.Release(eng)
	}
	if buf := eng.GrabU32(0); buf == nil {
		t.Fatal("no recycled buffer in arena after traversals")
	}
}
