// Package frontier is the shared traversal substrate of NWHy-Go: a
// dual-representation frontier type (sparse member list ⇄ dense atomic
// bitmap) and a generic direction-optimizing EdgeMap that implements
// Ligra-style push/pull switching once, for every frontier-based kernel in
// the repository.
//
// Before this package existed, frontier handling was implemented four
// separate times — internal/graph's three BFS variants, internal/hygra's
// vertexSubset/edgeMap, internal/core's alternating bipartite frontiers,
// and internal/slinegraph's component traversals. They now all build on
// Frontier + State.EdgeMap, so direction optimization, per-worker append
// buffers with a single merge path (parallel.FlattenTLS), and
// engine-scratch-backed buffer reuse apply uniformly: a BFS over the
// bipartite representation, a label propagation over an s-line graph, and
// the Hygra baseline all share one expansion engine and differ only in
// their visit functions.
package frontier

import (
	"strconv"

	"nwhy/internal/parallel"
)

// Frontier is a set of active entity IDs drawn from a space [0, n). The
// sparse member list is always materialized (it is what the merge path
// produces); the dense bitmap is built lazily on first Dense call — or
// eagerly by pull-direction EdgeMap rounds, which discover it for free —
// and cached. Frontiers are immutable once built; traversal loops consume
// them through State.EdgeMap, which recycles their buffers into the
// engine's scratch arenas.
type Frontier struct {
	n    int
	list []uint32
	bits *parallel.Bitset
}

// New returns an empty frontier over the space [0, n).
func New(n int) *Frontier { return &Frontier{n: n} }

// Single returns a frontier holding only id, backed by an engine scratch
// buffer when one is free.
func Single(eng *parallel.Engine, n int, id uint32) *Frontier {
	return &Frontier{n: n, list: append(eng.GrabU32(0), id)}
}

// FromList adopts ids as a frontier over [0, n). Ownership of the slice
// transfers: EdgeMap recycles it into the engine's scratch arenas, so the
// caller must not retain it.
func FromList(n int, ids []uint32) *Frontier {
	return &Frontier{n: n, list: ids}
}

// All returns the full frontier {0, …, n-1}, the usual starting point of
// label-propagation traversals.
func All(eng *parallel.Engine, n int) *Frontier {
	ids := eng.GrabU32(0)
	if cap(ids) < n {
		ids = make([]uint32, 0, n)
	}
	ids = ids[:n]
	for i := range ids {
		ids[i] = uint32(i)
	}
	return &Frontier{n: n, list: ids}
}

// Space reports the size of the ID space the frontier is drawn from.
func (f *Frontier) Space() int { return f.n }

// Len reports the number of active entities.
func (f *Frontier) Len() int { return len(f.list) }

// Empty reports whether no entity is active.
func (f *Frontier) Empty() bool { return len(f.list) == 0 }

// Members returns the sparse member list. The slice is owned by the
// frontier; it is recycled when the frontier is consumed.
func (f *Frontier) Members() []uint32 { return f.list }

// Contains reports whether id is active. It requires the dense form;
// callers on hot paths should hoist Dense out of their loops.
func (f *Frontier) Contains(eng *parallel.Engine, id int) bool {
	return f.Dense(eng).Get(id)
}

// denseCutoff is the member count above which Dense builds the bitmap with
// a parallel loop instead of serially.
const denseCutoff = 1 << 12

// Dense returns the dense bitmap form, building and caching it from the
// member list on first call (pull-direction EdgeMap rounds hand their
// output frontier a ready-made bitmap instead).
func (f *Frontier) Dense(eng *parallel.Engine) *parallel.Bitset {
	if f.bits == nil {
		f.bits = grabBits(eng, f.n)
		if len(f.list) >= denseCutoff {
			list, bits := f.list, f.bits
			eng.ForN(len(list), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					bits.Set(int(list[i]))
				}
			})
		} else {
			for _, u := range f.list {
				f.bits.Set(int(u))
			}
		}
	}
	return f.bits
}

// Release returns the frontier's buffers to eng's scratch arenas. EdgeMap
// releases the frontier it consumes automatically; traversal loops call
// Release once on the final (empty or abandoned) frontier.
func (f *Frontier) Release(eng *parallel.Engine) {
	if f == nil {
		return
	}
	if f.list != nil {
		eng.StashU32(0, f.list)
		f.list = nil
	}
	if f.bits != nil {
		eng.Stash(0, bitsKey(f.bits.Len()), f.bits)
		f.bits = nil
	}
}

// bitsKey is the arena key frontier bitmaps of one size are stashed under.
// The size is part of the key because bipartite traversals alternate
// between two ID spaces and must not hand one side the other's bitmap.
func bitsKey(n int) string { return "frontier/bits/" + strconv.Itoa(n) }

// grabBits pops a cleared reusable bitmap of n bits from eng's scratch, or
// allocates one.
func grabBits(eng *parallel.Engine, n int) *parallel.Bitset {
	if v, ok := eng.Grab(0, bitsKey(n)); ok {
		b := v.(*parallel.Bitset)
		b.Clear()
		return b
	}
	return parallel.NewBitset(n)
}
