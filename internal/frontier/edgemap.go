package frontier

import "nwhy/internal/parallel"

// Adj returns the adjacency (incidence) list of one entity. Push-direction
// rounds call it on frontier members; pull-direction rounds call it on
// candidate targets.
type Adj func(u int) []uint32

// Visit attempts to claim target t discovered from source u, returning
// whether the claim succeeded. In push direction many workers race on one
// target, so Visit must decide with an atomic (CAS for BFS parent claims,
// atomic write-min for label propagation). In pull direction each target is
// owned by a single worker, but sources are only read, so the same atomic
// implementation is reused.
type Visit func(u, t uint32) bool

// Pending reports whether target t still wants a visit. Push rounds use it
// as a cheap pre-filter before the atomic Visit; pull rounds additionally
// use it as the scan-break condition: once a target stops pending
// mid-scan (a BFS target that just got claimed), the rest of its incidence
// list is skipped — the bottom-up early exit of Beamer's BFS. A nil Pending
// means every target is always eligible (label propagation), so pull rounds
// scan full incidence lists.
type Pending func(t uint32) bool

// Strategy selects how EdgeMap picks the expansion direction each round.
type Strategy int

const (
	// Auto switches between push and pull with the alpha/beta heuristics —
	// direction-optimizing traversal.
	Auto Strategy = iota
	// ForcePush always expands top-down (sparse frontier, scatter).
	ForcePush
	// ForcePull always expands bottom-up (dense frontier, gather).
	ForcePull
)

func (s Strategy) String() string {
	switch s {
	case ForcePush:
		return "push"
	case ForcePull:
		return "pull"
	default:
		return "auto"
	}
}

// Direction-optimizing switch thresholds (Beamer, Asanović, Patterson
// 2013): switch push → pull when the frontier's out-arc volume exceeds a
// 1/DefaultAlpha fraction of the unexplored arcs, and pull → push when the
// frontier shrinks below a 1/DefaultBeta fraction of the target space.
const (
	DefaultAlpha = 15
	DefaultBeta  = 18
)

// State carries one traversal's direction-optimization bookkeeping across
// EdgeMap rounds: the running unexplored-arc estimate behind the alpha
// heuristic and the current direction (the heuristics have hysteresis, so
// direction is state, not a pure function of the frontier).
type State struct {
	// Strategy fixes the direction (ForcePush/ForcePull) or lets the
	// alpha/beta heuristics choose (Auto).
	Strategy Strategy
	// Alpha and Beta override the switch thresholds; 0 means the defaults.
	Alpha, Beta int
	// TotalArcs is the total directed arc (or incidence) volume of the
	// structure being traversed, the denominator of the alpha heuristic.
	// 0 disables the heuristics: Auto degrades to push-only.
	TotalArcs int64
	// Dedup must be set when Visit can succeed for one target from several
	// sources in one round (label propagation's write-min). Push rounds
	// then deduplicate the next frontier through its bitmap; BFS-style
	// exactly-one-claim visits leave it false and skip that cost.
	Dedup bool
	// Revisits marks traversals whose entities re-enter the frontier
	// (label propagation). Beamer's unexplored-arc accounting assumes each
	// arc is explored once and is meaningless under revisits, so Auto then
	// uses Ligra's stateless rule instead: pull while |frontier| + its arc
	// volume exceeds TotalArcs/Alpha.
	Revisits bool

	unexplored int64
	started    bool
	pull       bool
}

// NewState returns direction-optimization state for one traversal of a
// structure with totalArcs directed arcs.
func NewState(totalArcs int64, strategy Strategy) *State {
	return &State{Strategy: strategy, TotalArcs: totalArcs}
}

func (st *State) alpha() int64 {
	if st.Alpha > 0 {
		return int64(st.Alpha)
	}
	return DefaultAlpha
}

func (st *State) beta() int64 {
	if st.Beta > 0 {
		return int64(st.Beta)
	}
	return DefaultBeta
}

// decide picks the direction for this round and updates the bookkeeping.
func (st *State) decide(f *Frontier, nDst int, outRow Adj, canPull bool) bool {
	if !canPull || st.Strategy == ForcePush {
		st.pull = false
		return false
	}
	if st.Strategy == ForcePull {
		st.pull = true
		return true
	}
	if st.TotalArcs <= 0 {
		return false
	}
	var vol int64
	for _, u := range f.Members() {
		vol += int64(len(outRow(int(u))))
	}
	if st.Revisits {
		st.pull = int64(f.Len())+vol > st.TotalArcs/st.alpha()
		return st.pull
	}
	if !st.started {
		st.started = true
		st.unexplored = st.TotalArcs
	}
	st.unexplored -= vol
	if st.pull {
		if int64(f.Len()) < int64(nDst)/st.beta() {
			st.pull = false
		}
	} else if vol > st.unexplored/st.alpha() {
		st.pull = true
	}
	return st.pull
}

// EdgeMap runs one frontier expansion round: it maps f (a frontier over the
// source space) through the incidence structure and returns the frontier of
// targets Visit claimed, over the target space [0, nDst). The direction is
// chosen per round by st:
//
//   - push (top-down): scatter from each frontier member u over outRow(u),
//     claiming targets with the atomic Visit;
//   - pull (bottom-up): gather per pending target t over inRow(t), scanning
//     for a frontier member and stopping early once t stops pending.
//
// outRow and inRow are the two orientations of the same incidence relation
// (equal for symmetric graphs; the two bipartite sides for hypergraphs). A
// nil inRow disables pull. EdgeMap consumes f: its buffers are recycled
// into eng's scratch arenas, so steady-state traversals stop allocating.
//
// A cancelled engine stops scheduling grains mid-round (the round's partial
// result is a valid sub-frontier); traversal loops check eng at round
// boundaries as usual.
func (st *State) EdgeMap(eng *parallel.Engine, f *Frontier, nDst int, outRow, inRow Adj, visit Visit, pending Pending) *Frontier {
	if st.decide(f, nDst, outRow, inRow != nil) {
		return st.pullRound(eng, f, nDst, inRow, visit, pending)
	}
	return st.pushRound(eng, f, nDst, outRow, visit, pending)
}

// pushRound scatters the sparse frontier over its out-incidences.
func (st *State) pushRound(eng *parallel.Engine, f *Frontier, nDst int, outRow Adj, visit Visit, pending Pending) *Frontier {
	members := f.Members()
	var dedup *parallel.Bitset
	if st.Dedup {
		dedup = grabBits(eng, nDst)
	}
	tls := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	eng.ForN(len(members), func(w, lo, hi int) {
		buf := tls.Get(w)
		if cap(*buf) == 0 {
			*buf = eng.GrabU32(w)
		}
		for i := lo; i < hi; i++ {
			u := members[i]
			for _, t := range outRow(int(u)) {
				if pending != nil && !pending(t) {
					continue
				}
				if visit(u, t) && (dedup == nil || dedup.TestAndSet(int(t))) {
					*buf = append(*buf, t)
				}
			}
		}
	})
	next := &Frontier{n: nDst, bits: dedup}
	f.Release(eng)
	next.list = parallel.FlattenTLS(eng.GrabU32(0), tls, eng.StashU32)
	return next
}

// pullRound gathers per target over its in-incidences, testing frontier
// membership against the dense bitmap. It produces the next frontier's
// bitmap as a by-product, so consecutive pull rounds never rebuild it.
func (st *State) pullRound(eng *parallel.Engine, f *Frontier, nDst int, inRow Adj, visit Visit, pending Pending) *Frontier {
	src := f.Dense(eng)
	nextBits := grabBits(eng, nDst)
	tls := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	eng.ForN(nDst, func(w, lo, hi int) {
		buf := tls.Get(w)
		if cap(*buf) == 0 {
			*buf = eng.GrabU32(w)
		}
		for t := lo; t < hi; t++ {
			tt := uint32(t)
			if pending != nil && !pending(tt) {
				continue
			}
			claimed := false
			for _, u := range inRow(t) {
				if src.Get(int(u)) && visit(u, tt) {
					claimed = true
				}
				if pending != nil && !pending(tt) {
					break
				}
			}
			if claimed {
				nextBits.Set(t)
				*buf = append(*buf, tt)
			}
		}
	})
	next := &Frontier{n: nDst, bits: nextBits}
	f.Release(eng)
	next.list = parallel.FlattenTLS(eng.GrabU32(0), tls, eng.StashU32)
	return next
}
