// Package hygra re-implements the two baseline kernels the paper's
// evaluation compares NWHy against: HygraBFS (the top-down hypergraph BFS of
// Shun's Hygra framework, PPoPP'20) and HygraCC (Hygra's label-propagation
// connected components). The implementations follow Hygra's vertex-subset /
// edge-map style: a frontier of active entities is flat-mapped over its
// incidence lists to produce the next frontier, alternating between the
// hypernode side and the hyperedge side each half-step.
//
// These are deliberately independent re-implementations — they share no
// traversal code with internal/core — so benchmark comparisons measure two
// different codebases the way the paper's Figure 7/8 did.
package hygra

import (
	"sync/atomic"

	"nwhy/internal/core"
	"nwhy/internal/parallel"
)

// vertexSubset is Hygra's frontier abstraction (sparse form).
type vertexSubset []uint32

// edgeMap applies the Hygra edgeMap primitive: for every active entity in
// the frontier, visit its incidence list and claim unvisited targets with
// compare-and-swap, producing the next frontier on the opposite side.
func edgeMap(eng *parallel.Engine, frontier vertexSubset, row func(int) []uint32, visited []int32, round int32) vertexSubset {
	tls := parallel.NewTLSFor(eng, func() vertexSubset { return nil })
	eng.ForN(len(frontier), func(w, lo, hi int) {
		out := tls.Get(w)
		for i := lo; i < hi; i++ {
			for _, t := range row(int(frontier[i])) {
				if atomic.LoadInt32(&visited[t]) == -1 &&
					atomic.CompareAndSwapInt32(&visited[t], -1, round) {
					*out = append(*out, t)
				}
			}
		}
	})
	var next vertexSubset
	tls.All(func(v *vertexSubset) { next = append(next, *v...) })
	return next
}

// BFS runs Hygra's top-down hypergraph BFS from hyperedge srcEdge on eng,
// returning bipartite-hop levels for both index spaces (-1 = unreachable).
// A cancelled engine aborts at the next half-step and returns eng.Err().
func BFS(eng *parallel.Engine, h *core.Hypergraph, srcEdge int) (edgeLevel, nodeLevel []int32, err error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	edgeLevel = make([]int32, ne)
	nodeLevel = make([]int32, nv)
	for i := range edgeLevel {
		edgeLevel[i] = -1
	}
	for i := range nodeLevel {
		nodeLevel[i] = -1
	}
	edgeLevel[srcEdge] = 0
	frontier := vertexSubset{uint32(srcEdge)}
	onEdges := true
	for round := int32(1); len(frontier) > 0; round++ {
		if err := eng.Err(); err != nil {
			return nil, nil, err
		}
		if onEdges {
			frontier = edgeMap(eng, frontier, h.Edges.Row, nodeLevel, round)
		} else {
			frontier = edgeMap(eng, frontier, h.Nodes.Row, edgeLevel, round)
		}
		onEdges = !onEdges
	}
	return edgeLevel, nodeLevel, eng.Err()
}

// CC runs Hygra's label-propagation connected components on the bipartite
// structure: hyperedge and hypernode labels live in one shared label space
// and each round flat-maps the full incidence relation both ways, writing
// minima, until no label changes. Returns canonical minimum-member labels
// in the shared space [0, ne+nv). A cancelled engine aborts between rounds
// and returns eng.Err().
func CC(eng *parallel.Engine, h *core.Hypergraph) (edgeComp, nodeComp []uint32, err error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	edgeComp = make([]uint32, ne)
	nodeComp = make([]uint32, nv)
	for e := range edgeComp {
		edgeComp[e] = uint32(e)
	}
	for v := range nodeComp {
		nodeComp[v] = uint32(ne + v)
	}
	for {
		if err := eng.Err(); err != nil {
			return nil, nil, err
		}
		var changed atomic.Bool
		// Edge side -> node side.
		eng.ForN(ne, func(_, lo, hi int) {
			c := false
			for e := lo; e < hi; e++ {
				ce := parallel.LoadU32(&edgeComp[e])
				for _, v := range h.Edges.Row(e) {
					if parallel.MinU32(&nodeComp[v], ce) {
						c = true
					}
				}
			}
			if c {
				changed.Store(true)
			}
		})
		// Node side -> edge side.
		eng.ForN(nv, func(_, lo, hi int) {
			c := false
			for v := lo; v < hi; v++ {
				cv := parallel.LoadU32(&nodeComp[v])
				for _, e := range h.Nodes.Row(v) {
					if parallel.MinU32(&edgeComp[e], cv) {
						c = true
					}
				}
			}
			if c {
				changed.Store(true)
			}
		})
		if !changed.Load() {
			break
		}
	}
	// Canonicalize to minimum shared-space member per component.
	minOf := map[uint32]uint32{}
	note := func(c, id uint32) {
		if m, ok := minOf[c]; !ok || id < m {
			minOf[c] = id
		}
	}
	for e, c := range edgeComp {
		note(c, uint32(e))
	}
	for v, c := range nodeComp {
		note(c, uint32(ne+v))
	}
	for e := range edgeComp {
		edgeComp[e] = minOf[edgeComp[e]]
	}
	for v := range nodeComp {
		nodeComp[v] = minOf[nodeComp[v]]
	}
	return edgeComp, nodeComp, eng.Err()
}
