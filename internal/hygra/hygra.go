// Package hygra re-implements the two baseline kernels the paper's
// evaluation compares NWHy against: HygraBFS (the top-down hypergraph BFS of
// Shun's Hygra framework, PPoPP'20) and HygraCC (Hygra's label-propagation
// connected components). The implementations follow Hygra's vertex-subset /
// edge-map style: a frontier of active entities is mapped over its
// incidence lists to produce the next frontier, alternating between the
// hypernode side and the hyperedge side each half-step.
//
// The frontier machinery itself comes from internal/frontier — the one
// frontier/EdgeMap implementation every traversal in this repository shares
// — pinned to the push direction, which is what Hygra's sparse edgeMap
// does. The kernels remain separate from internal/core's (different
// algorithms, per-side rounds vs. interleaved label spaces), so benchmark
// comparisons still measure two different algorithm formulations the way
// the paper's Figure 7/8 did; only the frontier substrate is shared.
package hygra

import (
	"sync/atomic"

	"nwhy/internal/core"
	"nwhy/internal/frontier"
	"nwhy/internal/parallel"
)

// BFS runs Hygra's top-down hypergraph BFS from hyperedge srcEdge on eng,
// returning bipartite-hop levels for both index spaces (-1 = unreachable).
// A cancelled engine aborts at the next half-step and returns eng.Err().
func BFS(eng *parallel.Engine, h *core.Hypergraph, srcEdge int) (edgeLevel, nodeLevel []int32, err error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	edgeLevel = make([]int32, ne)
	nodeLevel = make([]int32, nv)
	for i := range edgeLevel {
		edgeLevel[i] = -1
	}
	for i := range nodeLevel {
		nodeLevel[i] = -1
	}
	edgeLevel[srcEdge] = 0
	st := frontier.NewState(int64(h.NumIncidences()), frontier.ForcePush)
	f := frontier.Single(eng, ne, uint32(srcEdge))
	onEdges := true
	for round := int32(1); !f.Empty(); round++ {
		if err := eng.Err(); err != nil {
			f.Release(eng)
			return nil, nil, err
		}
		visited, row, nDst := nodeLevel, h.Edges.Row, nv
		if !onEdges {
			visited, row, nDst = edgeLevel, h.Nodes.Row, ne
		}
		r := round
		f = st.EdgeMap(eng, f, nDst, row, nil,
			func(_, t uint32) bool {
				return atomic.CompareAndSwapInt32(&visited[t], -1, r)
			},
			func(t uint32) bool { return atomic.LoadInt32(&visited[t]) == -1 })
		onEdges = !onEdges
	}
	f.Release(eng)
	return edgeLevel, nodeLevel, eng.Err()
}

// CC runs Hygra's label-propagation connected components on the bipartite
// structure: hyperedge and hypernode labels live in one shared label space,
// and each round the frontiers of changed entities on both sides flat-map
// their incidence lists, writing minima, until both frontiers drain.
// Returns canonical minimum-member labels in the shared space [0, ne+nv).
// A cancelled engine aborts between rounds and returns eng.Err().
func CC(eng *parallel.Engine, h *core.Hypergraph) (edgeComp, nodeComp []uint32, err error) {
	ne, nv := h.NumEdges(), h.NumNodes()
	edgeComp = make([]uint32, ne)
	nodeComp = make([]uint32, nv)
	for e := range edgeComp {
		edgeComp[e] = uint32(e)
	}
	for v := range nodeComp {
		nodeComp[v] = uint32(ne + v)
	}
	newState := func() *frontier.State {
		st := frontier.NewState(int64(h.NumIncidences()), frontier.Auto)
		st.Dedup = true
		st.Revisits = true
		return st
	}
	stEdges, stNodes := newState(), newState()
	edgeF, nodeF := frontier.All(eng, ne), frontier.All(eng, nv)
	for !edgeF.Empty() || !nodeF.Empty() {
		if err := eng.Err(); err != nil {
			edgeF.Release(eng)
			nodeF.Release(eng)
			return nil, nil, err
		}
		// Edge side -> node side.
		nodeNext := stEdges.EdgeMap(eng, edgeF, nv, h.Edges.Row, h.Nodes.Row,
			func(e, v uint32) bool {
				return parallel.MinU32(&nodeComp[v], parallel.LoadU32(&edgeComp[e]))
			}, nil)
		// Node side -> edge side.
		edgeF = stNodes.EdgeMap(eng, nodeF, ne, h.Nodes.Row, h.Edges.Row,
			func(v, e uint32) bool {
				return parallel.MinU32(&edgeComp[e], parallel.LoadU32(&nodeComp[v]))
			}, nil)
		nodeF = nodeNext
	}
	edgeF.Release(eng)
	nodeF.Release(eng)
	// Canonicalize to minimum shared-space member per component.
	minOf := map[uint32]uint32{}
	note := func(c, id uint32) {
		if m, ok := minOf[c]; !ok || id < m {
			minOf[c] = id
		}
	}
	for e, c := range edgeComp {
		note(c, uint32(e))
	}
	for v, c := range nodeComp {
		note(c, uint32(ne+v))
	}
	for e := range edgeComp {
		edgeComp[e] = minOf[edgeComp[e]]
	}
	for v := range nodeComp {
		nodeComp[v] = minOf[nodeComp[v]]
	}
	return edgeComp, nodeComp, eng.Err()
}
