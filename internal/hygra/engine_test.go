package hygra

import (
	"nwhy/internal/core"
	"nwhy/internal/parallel"
)

// teng is the engine the package tests run on; wrapper funcs restore the
// engine-less signatures the tests were written against and discard the
// (always-nil without cancellation) errors.
var teng = parallel.SharedEngine()

func tBFS(h *core.Hypergraph, srcEdge int) (edgeLevel, nodeLevel []int32) {
	el, nl, _ := BFS(teng, h, srcEdge)
	return el, nl
}

func tCC(h *core.Hypergraph) (edgeComp, nodeComp []uint32) {
	ec, nc, _ := CC(teng, h)
	return ec, nc
}
