package hygra

import (
	"reflect"
	"testing"
	"testing/quick"

	"math/rand"

	"nwhy/internal/core"
)

func paperHypergraph() *core.Hypergraph {
	return core.FromSets([][]uint32{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6},
		{0, 6, 7, 8},
	}, 9)
}

func randomHypergraph(ne, nv, maxSize int, seed int64) *core.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint32, ne)
	for e := range sets {
		size := 1 + rng.Intn(maxSize)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(rng.Intn(nv))] = true
		}
		for v := range seen {
			sets[e] = append(sets[e], v)
		}
	}
	return core.FromSets(sets, nv)
}

func TestHygraBFSMatchesNWHy(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(30, 40, 5, seed)
		el, nl := tBFS(h, 0)
		want, _ := core.HyperBFSTopDown(teng, h, 0)
		return reflect.DeepEqual(el, want.EdgeLevel) && reflect.DeepEqual(nl, want.NodeLevel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHygraBFSPaperExample(t *testing.T) {
	el, nl := tBFS(paperHypergraph(), 0)
	if el[0] != 0 || el[1] != 2 || el[3] != 2 || el[2] != 4 {
		t.Fatalf("edge levels = %v", el)
	}
	if nl[0] != 1 || nl[5] != 5 {
		t.Fatalf("node levels = %v", nl)
	}
}

func TestHygraCCMatchesNWHy(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(30, 30, 4, seed)
		ec, nc := tCC(h)
		want, _ := core.HyperCC(teng, h)
		return reflect.DeepEqual(ec, want.EdgeComp) && reflect.DeepEqual(nc, want.NodeComp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHygraCCDisconnected(t *testing.T) {
	h := core.FromSets([][]uint32{{0, 1}, {1, 2}, {3, 4}}, 5)
	ec, _ := tCC(h)
	if ec[0] != ec[1] || ec[0] == ec[2] {
		t.Fatalf("edge components = %v", ec)
	}
}

func TestHygraBFSDisconnected(t *testing.T) {
	h := core.FromSets([][]uint32{{0, 1}, {2, 3}}, 4)
	el, nl := tBFS(h, 1)
	if el[0] != -1 || nl[0] != -1 || el[1] != 0 || nl[2] != 1 {
		t.Fatalf("levels = %v / %v", el, nl)
	}
}
