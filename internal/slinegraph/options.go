package slinegraph

import (
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// Partition selects the work-distribution strategy for the outer parallel
// loop, mirroring the paper's blocked range vs cyclic range adaptors.
type Partition int

const (
	// BlockedPartition assigns contiguous chunks of hyperedge IDs to workers
	// (tbb::blocked_range). Cache friendly; imbalanced on degree-sorted
	// inputs.
	BlockedPartition Partition = iota
	// CyclicPartition assigns hyperedges round-robin with a stride
	// (NWHy's cyclic range adaptor), interleaving heavy and light hyperedges.
	CyclicPartition
)

func (p Partition) String() string {
	if p == CyclicPartition {
		return "cyclic"
	}
	return "blocked"
}

// Options configure a construction algorithm run.
type Options struct {
	// Partition selects blocked or cyclic work distribution.
	Partition Partition
	// NumBins is the cyclic stride count; <= 0 uses 4x the worker count.
	NumBins int
	// Relabel applies relabel-by-degree to the hyperedge IDs before
	// construction. Non-queue algorithms physically relabel the CSR pair
	// (and map results back); queue algorithms merely sort their work queue,
	// which is the versatility the paper's Algorithms 1 and 2 demonstrate.
	Relabel sparse.Order
}

// forIndices runs body(worker, i) over [0, n) under the selected partition.
func (o Options) forIndices(n int, body func(worker, i int)) {
	p := parallel.Default()
	switch o.Partition {
	case CyclicPartition:
		p.ForCyclic(parallel.Cyclic(0, n, o.NumBins), func(w, start, end, stride int) {
			for i := start; i < end; i += stride {
				body(w, i)
			}
		})
	default:
		p.For(parallel.Blocked(0, n), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		})
	}
}

// collectTLS gathers per-worker edge buffers into one canonical list.
func collectTLS(tls *parallel.TLS[[]sparse.Edge]) []sparse.Edge {
	var out []sparse.Edge
	tls.All(func(v *[]sparse.Edge) { out = append(out, *v...) })
	return canonPairs(out)
}
