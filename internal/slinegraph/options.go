package slinegraph

import (
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
	"nwhy/internal/unionfind"
)

// Partition selects the work-distribution strategy for the outer parallel
// loop, mirroring the paper's blocked range vs cyclic range adaptors.
type Partition int

const (
	// BlockedPartition assigns contiguous chunks of hyperedge IDs to workers
	// (tbb::blocked_range). Cache friendly; imbalanced on degree-sorted
	// inputs.
	BlockedPartition Partition = iota
	// CyclicPartition assigns hyperedges round-robin with a stride
	// (NWHy's cyclic range adaptor), interleaving heavy and light hyperedges.
	CyclicPartition
)

func (p Partition) String() string {
	if p == CyclicPartition {
		return "cyclic"
	}
	return "blocked"
}

// Intent declares what the caller consumes from a construction run — the
// signal the Prune axis resolves against. Heuristics that drop pairs
// (connected short-circuit, toplex restriction) are only sound when the
// caller needs s-connectivity, never the pair list or the exact weights.
type Intent int

const (
	// IntentThreshold (the zero value): the caller consumes every pair with
	// |e ∩ f| ≥ s — the s-line edge list or CSR. Only result-invariant
	// pruning (the degree prefilter) applies.
	IntentThreshold Intent = iota
	// IntentExact: the caller consumes exact overlap counts (the weighted
	// and ensemble emit modes). Same pruning latitude as IntentThreshold.
	IntentExact
	// IntentConnectivity: the caller consumes only the s-component
	// structure, so pairs inside an already-connected component prove
	// nothing and non-maximal hyperedges are redundant — the full pruning
	// arsenal applies.
	IntentConnectivity
)

func (i Intent) String() string {
	switch i {
	case IntentExact:
		return "exact"
	case IntentConnectivity:
		return "connectivity"
	default:
		return "threshold"
	}
}

// Prune selects the algorithmic-cut heuristics (kernel axis 4), the
// companion paper's pruning arsenal (Liu et al., arXiv:2010.11448). The
// heuristics compose in order: each level includes everything below it.
type Prune int

const (
	// AutoPrune (the zero value) resolves from Intent: the degree prefilter
	// for threshold/exact runs, the full connectivity arsenal when the
	// components builders declare IntentConnectivity (see resolvePrune).
	AutoPrune Prune = iota
	// NoPrune keeps the legacy behaviour: every hyperedge enters the work
	// list and candidates are degree-checked one at a time. The benchmark
	// baseline.
	NoPrune
	// DegreePrune builds the eligibility set {e : deg(e) ≥ s} once up front
	// (engine-parallel) as a bitset plus a filtered work span, so schedules,
	// counters, and the two-level incidence walk skip sub-s hyperedges
	// entirely. Result-invariant: sound for every intent.
	DegreePrune
	// ConnectivityPrune adds the connected short-circuit: candidate pairs
	// already in one s-component (per the run's concurrent union-find) skip
	// counting. Drops pairs, so it degrades to DegreePrune unless the run
	// declares IntentConnectivity and feeds a forest.
	ConnectivityPrune
	// ToplexPrune additionally restricts construction to the toplex Subset;
	// non-maximal hyperedges are attached through the containment map by
	// the components builder. Degrades to ConnectivityPrune without a
	// Subset.
	ToplexPrune
)

func (p Prune) String() string {
	switch p {
	case NoPrune:
		return "none"
	case DegreePrune:
		return "degree"
	case ConnectivityPrune:
		return "connectivity"
	case ToplexPrune:
		return "toplex"
	default:
		return "auto"
	}
}

// Options configure a construction algorithm run. The zero value selects
// the historical defaults: blocked distribution, no relabeling, hashmap
// counting (via AutoCounter resolution) under the entry point's schedule.
type Options struct {
	// Partition selects blocked or cyclic work distribution. It feeds the
	// DefaultSchedule resolution and the queue interleave; callers using the
	// Schedule axis directly can ignore it.
	Partition Partition
	// NumBins is the cyclic stride count; <= 0 uses 4x the worker count.
	NumBins int
	// Relabel applies relabel-by-degree to the hyperedge IDs before
	// construction. The kernel sorts its work order — queue contents or
	// iteration space — rather than physically relabeling the CSR pair,
	// which is the versatility the paper's queue-based algorithms
	// demonstrate; results are always in the original ID space.
	Relabel sparse.Order
	// Counter selects the overlap-counting strategy (kernel axis 1).
	// AutoCounter (the zero value) resolves from s and degree statistics.
	Counter Counter
	// Schedule selects the work distribution (kernel axis 2).
	// DefaultSchedule (the zero value) derives from Partition; the legacy
	// Queue* entry points pin QueueSchedule.
	Schedule Schedule
	// Intent declares what the caller consumes (see Intent); it steers the
	// AutoPrune resolution and bounds which heuristics are sound.
	Intent Intent
	// Prune selects the pruning heuristics (kernel axis 4). AutoPrune (the
	// zero value) resolves from Intent.
	Prune Prune
	// Stats optionally injects precomputed degree statistics so resolveAxes
	// skips its per-run scan — the facade memoizes one DegreeStats per
	// snapshot epoch. nil falls back to scanning.
	Stats *DegreeStats
	// Subset restricts construction to these hyperedge IDs (the toplex-only
	// path). Honored only under ToplexPrune: the components builder that
	// sets it owns expanding labels back over the full ID space through the
	// containment map.
	Subset []uint32
	// forest backs the connected short-circuit and is deliberately
	// unexported: only the in-package components builders may arm it,
	// because skipping already-connected pairs is only sound when the emit
	// target is this same forest.
	forest *unionfind.Forest
}

// collectTLS gathers per-worker edge buffers into one canonical list
// through the shared TLS merge path.
func collectTLS(eng *parallel.Engine, tls *parallel.TLS[[]sparse.Edge]) []sparse.Edge {
	return canonPairs(eng, parallel.FlattenTLS(nil, tls, nil))
}
