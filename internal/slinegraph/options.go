package slinegraph

import (
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// Partition selects the work-distribution strategy for the outer parallel
// loop, mirroring the paper's blocked range vs cyclic range adaptors.
type Partition int

const (
	// BlockedPartition assigns contiguous chunks of hyperedge IDs to workers
	// (tbb::blocked_range). Cache friendly; imbalanced on degree-sorted
	// inputs.
	BlockedPartition Partition = iota
	// CyclicPartition assigns hyperedges round-robin with a stride
	// (NWHy's cyclic range adaptor), interleaving heavy and light hyperedges.
	CyclicPartition
)

func (p Partition) String() string {
	if p == CyclicPartition {
		return "cyclic"
	}
	return "blocked"
}

// Options configure a construction algorithm run. The zero value selects
// the historical defaults: blocked distribution, no relabeling, hashmap
// counting (via AutoCounter resolution) under the entry point's schedule.
type Options struct {
	// Partition selects blocked or cyclic work distribution. It feeds the
	// DefaultSchedule resolution and the queue interleave; callers using the
	// Schedule axis directly can ignore it.
	Partition Partition
	// NumBins is the cyclic stride count; <= 0 uses 4x the worker count.
	NumBins int
	// Relabel applies relabel-by-degree to the hyperedge IDs before
	// construction. The kernel sorts its work order — queue contents or
	// iteration space — rather than physically relabeling the CSR pair,
	// which is the versatility the paper's queue-based algorithms
	// demonstrate; results are always in the original ID space.
	Relabel sparse.Order
	// Counter selects the overlap-counting strategy (kernel axis 1).
	// AutoCounter (the zero value) resolves from s and degree statistics.
	Counter Counter
	// Schedule selects the work distribution (kernel axis 2).
	// DefaultSchedule (the zero value) derives from Partition; the legacy
	// Queue* entry points pin QueueSchedule.
	Schedule Schedule
}

// collectTLS gathers per-worker edge buffers into one canonical list
// through the shared TLS merge path.
func collectTLS(eng *parallel.Engine, tls *parallel.TLS[[]sparse.Edge]) []sparse.Edge {
	return canonPairs(eng, parallel.FlattenTLS(nil, tls, nil))
}
