package slinegraph

import (
	"nwhy/internal/countmap"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// Partition selects the work-distribution strategy for the outer parallel
// loop, mirroring the paper's blocked range vs cyclic range adaptors.
type Partition int

const (
	// BlockedPartition assigns contiguous chunks of hyperedge IDs to workers
	// (tbb::blocked_range). Cache friendly; imbalanced on degree-sorted
	// inputs.
	BlockedPartition Partition = iota
	// CyclicPartition assigns hyperedges round-robin with a stride
	// (NWHy's cyclic range adaptor), interleaving heavy and light hyperedges.
	CyclicPartition
)

func (p Partition) String() string {
	if p == CyclicPartition {
		return "cyclic"
	}
	return "blocked"
}

// Options configure a construction algorithm run.
type Options struct {
	// Partition selects blocked or cyclic work distribution.
	Partition Partition
	// NumBins is the cyclic stride count; <= 0 uses 4x the worker count.
	NumBins int
	// Relabel applies relabel-by-degree to the hyperedge IDs before
	// construction. Non-queue algorithms physically relabel the CSR pair
	// (and map results back); queue algorithms merely sort their work queue,
	// which is the versatility the paper's Algorithms 1 and 2 demonstrate.
	Relabel sparse.Order
}

// forIndices runs body(worker, i) over [0, n) on eng under the selected
// partition. A cancelled engine stops scheduling chunks at grain boundaries;
// callers surface eng.Err() to report the abort.
func (o Options) forIndices(eng *parallel.Engine, n int, body func(worker, i int)) {
	switch o.Partition {
	case CyclicPartition:
		eng.ForCyclic(eng.Cyclic(0, n, o.NumBins), func(w, start, end, stride int) {
			for i := start; i < end; i += stride {
				body(w, i)
			}
		})
	default:
		eng.For(eng.Blocked(0, n), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				body(w, i)
			}
		})
	}
}

// collectTLS gathers per-worker edge buffers into one canonical list
// through the shared TLS merge path.
func collectTLS(eng *parallel.Engine, tls *parallel.TLS[[]sparse.Edge]) []sparse.Edge {
	return canonPairs(eng, parallel.FlattenTLS(nil, tls, nil))
}

// grabCount fetches a reusable countmap from worker w's arena on eng, falling
// back to a fresh map when the arena has none. Constructions stash the maps
// back with stashCount so repeated runs on one engine stop allocating their
// hash tables.
func grabCount(eng *parallel.Engine, w int) *countmap.Map {
	if v, ok := eng.Grab(w, countKey); ok {
		return v.(*countmap.Map)
	}
	return countmap.New(64)
}

// stashCount returns a countmap to worker w's arena for reuse.
func stashCount(eng *parallel.Engine, w int, m *countmap.Map) {
	if m == nil {
		return
	}
	m.Clear()
	eng.Stash(w, countKey, m)
}

// countKey is the arena key the construction algorithms share their
// countmap scratch under.
const countKey = "slinegraph.countmap"

// countTLS lazily binds one arena countmap per worker; release returns every
// bound map to the arenas once the construction's loops are done.
func countTLS(eng *parallel.Engine) (tls *parallel.TLS[*countmap.Map], release func()) {
	tls = parallel.NewTLSFor(eng, func() *countmap.Map { return nil })
	release = func() {
		tls.Each(func(w int, v **countmap.Map) { stashCount(eng, w, *v) })
	}
	return tls, release
}

// getCount returns worker w's countmap from tls, binding one from the arena
// on first use, cleared and ready to tally.
func getCount(eng *parallel.Engine, tls *parallel.TLS[*countmap.Map], w int) *countmap.Map {
	cp := tls.Get(w)
	if *cp == nil {
		*cp = grabCount(eng, w)
	}
	(*cp).Clear()
	return *cp
}
