package slinegraph

import (
	"nwhy/internal/core"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// teng is the engine the package tests run on; wrapper funcs restore the
// engine-less signatures the table-driven tests were written against and
// discard the (always-nil without cancellation) errors.
var teng = parallel.SharedEngine()

func tNaive(h *core.Hypergraph, s int) []sparse.Edge {
	r, _ := Naive(teng, h, s)
	return r
}

func tIntersection(h *core.Hypergraph, s int, o Options) []sparse.Edge {
	r, _ := Intersection(teng, h, s, o)
	return r
}

func tHashmap(h *core.Hypergraph, s int, o Options) []sparse.Edge {
	r, _ := Hashmap(teng, h, s, o)
	return r
}

func tEnsemble(h *core.Hypergraph, ss []int, o Options) map[int][]sparse.Edge {
	r, _ := Ensemble(teng, h, ss, o)
	return r
}

func tEnsembleQueue(in Input, ss []int, o Options) map[int][]sparse.Edge {
	r, _ := EnsembleQueue(teng, in, ss, o)
	return r
}

func tCliqueExpansion(h *core.Hypergraph, o Options) []sparse.Edge {
	r, _ := CliqueExpansion(teng, h, o)
	return r
}

func tQueueHashmap(in Input, s int, o Options) []sparse.Edge {
	r, _ := QueueHashmap(teng, in, s, o)
	return r
}

func tQueueIntersection(in Input, s int, o Options) []sparse.Edge {
	r, _ := QueueIntersection(teng, in, s, o)
	return r
}

func tSComponentsDirect(in Input, s int, o Options) []uint32 {
	r, _ := SComponentsDirect(teng, in, s, o)
	return r
}

func tHashmapWeighted(h *core.Hypergraph, s int, o Options) []WeightedPair {
	r, _ := HashmapWeighted(teng, h, s, o)
	return r
}

func tQueueHashmapWeighted(in Input, s int, o Options) []WeightedPair {
	r, _ := QueueHashmapWeighted(teng, in, s, o)
	return r
}
