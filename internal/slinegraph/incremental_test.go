package slinegraph

import (
	"math/rand"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
	"nwhy/internal/unionfind"
)

// randSets builds a random hypergraph's hyperedge sets.
func randSets(rng *rand.Rand, numEdges, numNodes, maxDeg int) [][]uint32 {
	sets := make([][]uint32, numEdges)
	for e := range sets {
		d := 1 + rng.Intn(maxDeg)
		s := make([]uint32, d)
		for j := range s {
			s[j] = uint32(rng.Intn(numNodes))
		}
		sets[e] = s
	}
	return sets
}

// pairsSubsetOnDirty filters a canonical pair list to those touching the
// dirty set.
func pairsTouching(pairs []sparse.Edge, dirty map[uint32]bool) []sparse.Edge {
	var out []sparse.Edge
	for _, p := range pairs {
		if dirty[p.U] || dirty[p.V] {
			out = append(out, p)
		}
	}
	return out
}

// TestConstructDirtyMatchesFullDiff grows a hypergraph edge by edge and
// checks that the dirty-edge kernel reports exactly the full kernel's pairs
// that touch the dirty set — the incremental-maintenance contract.
func TestConstructDirtyMatchesFullDiff(t *testing.T) {
	eng := parallel.NewEngine(4)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		numNodes := 6 + rng.Intn(20)
		oldSets := randSets(rng, 3+rng.Intn(12), numNodes, 5)
		newSets := randSets(rng, 1+rng.Intn(5), numNodes, 5)
		all := append(append([][]uint32(nil), oldSets...), newSets...)
		h := core.FromSets(all, numNodes)
		in := FromHypergraph(h)
		dirty := map[uint32]bool{}
		var dirtyIDs []uint32
		for e := len(oldSets); e < len(all); e++ {
			dirty[uint32(e)] = true
			dirtyIDs = append(dirtyIDs, uint32(e))
		}
		for s := 1; s <= 3; s++ {
			full, err := Construct(eng, in, s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := ConstructDirty(eng, in, s, dirtyIDs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := pairsTouching(full, dirty)
			if len(got) != len(want) {
				t.Fatalf("trial %d s=%d: got %d pairs, want %d\n got %v\nwant %v",
					trial, s, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d s=%d pair %d: got %v want %v", trial, s, i, got[i], want[i])
				}
			}
		}
	}
}

func TestConstructDirtySkipsIneligible(t *testing.T) {
	eng := parallel.NewEngine(2)
	h := core.FromSets([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{5}, // degree 1: ineligible at s=2
	}, 6)
	in := FromHypergraph(h)
	got, err := ConstructDirty(eng, in, 2, []uint32{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("ineligible dirty edge produced pairs: %v", got)
	}
}

func TestConstructDirtyDirtyDirtyPairOnce(t *testing.T) {
	eng := parallel.NewEngine(2)
	h := core.FromSets([][]uint32{
		{0, 1},
		{0, 1, 2},
		{1, 2, 3},
	}, 4)
	in := FromHypergraph(h)
	// Both overlapping edges dirty: their mutual pair must appear exactly once.
	got, err := ConstructDirty(eng, in, 2, []uint32{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []sparse.Edge{{U: 0, V: 1}, {U: 1, V: 2}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestMergeCanonical(t *testing.T) {
	eng := parallel.NewEngine(2)
	a := []sparse.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	b := []sparse.Edge{{U: 1, V: 2}, {U: 0, V: 1}} // one duplicate
	got := MergeCanonical(eng, a, b)
	want := []sparse.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Inputs untouched.
	if a[0] != (sparse.Edge{U: 0, V: 1}) || b[0] != (sparse.Edge{U: 1, V: 2}) {
		t.Fatal("MergeCanonical modified an input")
	}
}

// TestIncrementalSCCMatchesFull is the end-to-end incremental s-CC check at
// the kernel layer: seed forest from the old hypergraph, Grow to the new ID
// space, absorb the dirty pairs, compare against a from-scratch computation
// on the grown hypergraph.
func TestIncrementalSCCMatchesFull(t *testing.T) {
	eng := parallel.NewEngine(4)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		numNodes := 6 + rng.Intn(20)
		oldSets := randSets(rng, 3+rng.Intn(12), numNodes, 5)
		newSets := randSets(rng, 1+rng.Intn(6), numNodes, 5)
		all := append(append([][]uint32(nil), oldSets...), newSets...)
		oldH := core.FromSets(oldSets, numNodes)
		newH := core.FromSets(all, numNodes)
		for s := 1; s <= 3; s++ {
			forest, err := SComponentsForest(eng, FromHypergraph(oldH), s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			forest.Grow(newH.NumEdges())
			var dirtyIDs []uint32
			for e := len(oldSets); e < len(all); e++ {
				dirtyIDs = append(dirtyIDs, uint32(e))
			}
			delta, err := ConstructDirty(eng, FromHypergraph(newH), s, dirtyIDs, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := AbsorbPairs(eng, forest, delta); err != nil {
				t.Fatal(err)
			}
			want, err := SComponentsDirect(eng, FromHypergraph(newH), s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := forest.Labels()
			if len(got) != len(want) {
				t.Fatalf("trial %d s=%d: label lengths %d vs %d", trial, s, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d s=%d: labels differ at %d: %d vs %d\n got %v\nwant %v",
						trial, s, i, got[i], want[i], got, want)
				}
			}
		}
	}
}

func TestAbsorbPairsEmpty(t *testing.T) {
	eng := parallel.NewEngine(2)
	f := unionfind.New(3)
	if err := AbsorbPairs(eng, f, nil); err != nil {
		t.Fatal(err)
	}
	if f.NumSets() != 3 {
		t.Fatalf("NumSets = %d", f.NumSets())
	}
}
