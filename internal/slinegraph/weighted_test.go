package slinegraph

import (
	"reflect"
	"testing"
	"testing/quick"

	"nwhy/internal/core"
	"nwhy/internal/parallel"
)

func TestHashmapWeightedStrengths(t *testing.T) {
	h := overlapHypergraph() // |e0∩e1|=3, |e0∩e2|=2, |e1∩e2|=3
	wp := tHashmapWeighted(h, 1, Options{})
	want := map[[2]uint32]int{{0, 1}: 3, {0, 2}: 2, {1, 2}: 3}
	if len(wp) != len(want) {
		t.Fatalf("got %v", wp)
	}
	for _, p := range wp {
		if want[[2]uint32{p.U, p.V}] != p.Overlap {
			t.Fatalf("pair (%d,%d) overlap %d, want %d", p.U, p.V, p.Overlap, want[[2]uint32{p.U, p.V}])
		}
	}
}

func TestWeightedMatchesUnweightedPairs(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(30, 20, 5, seed)
		for s := 1; s <= 3; s++ {
			plain := tHashmap(h, s, Options{})
			weighted := Unweight(tHashmapWeighted(h, s, Options{}))
			if !reflect.DeepEqual(plain, weighted) {
				return false
			}
			qw := Unweight(tQueueHashmapWeighted(FromHypergraph(h), s, Options{}))
			if !reflect.DeepEqual(plain, qw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedOverlapsAreExact(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(25, 15, 5, seed)
		for _, p := range tHashmapWeighted(h, 1, Options{}) {
			if exactOverlap(h.EdgeIncidence(int(p.U)), h.EdgeIncidence(int(p.V))) != p.Overlap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedOverlapAtLeastS(t *testing.T) {
	h := randomHypergraph(40, 20, 6, 11)
	for s := 2; s <= 4; s++ {
		for _, p := range tHashmapWeighted(h, s, Options{}) {
			if p.Overlap < s {
				t.Fatalf("s=%d pair with overlap %d", s, p.Overlap)
			}
		}
	}
}

// exactOverlap counts |a ∩ b| of sorted slices without the early-exit
// pruning of countCommonGE.
func exactOverlap(a, b []uint32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

func TestQueueHashmapWeightedOnAdjoin(t *testing.T) {
	h := randomHypergraph(30, 20, 5, 5)
	a := core.Adjoin(teng, h)
	want := tHashmapWeighted(h, 2, Options{})
	got := tQueueHashmapWeighted(FromAdjoin(a), 2, Options{})
	if !reflect.DeepEqual(got, want) {
		t.Fatal("weighted queue construction on adjoin differs")
	}
}

func TestToWeightedLineGraph(t *testing.T) {
	h := overlapHypergraph()
	wp := tHashmapWeighted(h, 1, Options{})
	g := ToWeightedLineGraph(h.NumEdges(), wp)
	if !g.Weighted() {
		t.Fatal("line graph not weighted")
	}
	if g.NumVertices() != 4 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// Edge (0,1) has overlap 3 -> weight 1/3 in both directions.
	row := g.Row(0)
	ws := g.Weights(0)
	found := false
	for k, v := range row {
		if v == 1 {
			found = true
			if ws[k] != 1.0/3.0 {
				t.Fatalf("weight = %v, want 1/3", ws[k])
			}
		}
	}
	if !found {
		t.Fatal("edge (0,1) missing")
	}
	if !g.IsSymmetric() {
		t.Fatal("weighted line graph not symmetric")
	}
}

func TestCanonWeightedNormalizes(t *testing.T) {
	in := []WeightedPair{{U: 5, V: 2, Overlap: 1}, {U: 2, V: 5, Overlap: 1}, {U: 1, V: 3, Overlap: 2}}
	out := canonWeighted(parallel.SharedEngine(), in)
	if len(out) != 2 || out[0].U != 1 || out[1].U != 2 || out[1].V != 5 {
		t.Fatalf("canonWeighted = %v", out)
	}
}
