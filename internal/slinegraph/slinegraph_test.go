package slinegraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"nwhy/internal/core"
	"nwhy/internal/sparse"
)

// paperHypergraph is the running example: e0={0,1,2}, e1={2,3,4},
// e2={4,5,6}, e3={0,6,7,8}. Pairwise overlaps are all of size 1 in a cycle
// e0-e1-e2-e3-e0.
func paperHypergraph() *core.Hypergraph {
	return core.FromSets([][]uint32{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6},
		{0, 6, 7, 8},
	}, 9)
}

// overlapHypergraph has graded overlaps to make s = 2 and s = 3 non-trivial:
// e0={0,1,2,3}, e1={1,2,3,4}, e2={2,3,4,5}, e3={7,8}.
// |e0∩e1| = 3, |e0∩e2| = 2, |e1∩e2| = 3, e3 disjoint.
func overlapHypergraph() *core.Hypergraph {
	return core.FromSets([][]uint32{
		{0, 1, 2, 3},
		{1, 2, 3, 4},
		{2, 3, 4, 5},
		{7, 8},
	}, 9)
}

func pairs(ps ...[2]uint32) []sparse.Edge {
	out := make([]sparse.Edge, len(ps))
	for i, p := range ps {
		out[i] = sparse.Edge{U: p[0], V: p[1]}
	}
	return out
}

// allAlgorithms runs every construction algorithm (queue-based ones on the
// bipartite input) with default options.
func allAlgorithms(h *core.Hypergraph, s int) map[string][]sparse.Edge {
	o := Options{}
	return map[string][]sparse.Edge{
		"naive":        tNaive(h, s),
		"intersection": tIntersection(h, s, o),
		"hashmap":      tHashmap(h, s, o),
		"queue1":       tQueueHashmap(FromHypergraph(h), s, o),
		"queue2":       tQueueIntersection(FromHypergraph(h), s, o),
	}
}

func TestSLineGraphPaperExampleS1(t *testing.T) {
	want := pairs([2]uint32{0, 1}, [2]uint32{0, 3}, [2]uint32{1, 2}, [2]uint32{2, 3})
	for name, got := range allAlgorithms(paperHypergraph(), 1) {
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s s=1: %v, want %v", name, got, want)
		}
	}
}

func TestSLineGraphPaperExampleS2Empty(t *testing.T) {
	for name, got := range allAlgorithms(paperHypergraph(), 2) {
		if len(got) != 0 {
			t.Errorf("%s s=2: %v, want empty", name, got)
		}
	}
}

func TestSLineGraphGradedOverlaps(t *testing.T) {
	h := overlapHypergraph()
	wantByS := map[int][]sparse.Edge{
		1: pairs([2]uint32{0, 1}, [2]uint32{0, 2}, [2]uint32{1, 2}),
		2: pairs([2]uint32{0, 1}, [2]uint32{0, 2}, [2]uint32{1, 2}),
		3: pairs([2]uint32{0, 1}, [2]uint32{1, 2}),
		4: nil,
	}
	for s, want := range wantByS {
		for name, got := range allAlgorithms(h, s) {
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s s=%d: %v, want %v", name, s, got, want)
			}
		}
	}
}

func randomHypergraph(ne, nv, maxSize int, seed int64) *core.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint32, ne)
	for e := range sets {
		size := 1 + rng.Intn(maxSize)
		seen := map[uint32]bool{}
		for len(seen) < size {
			seen[uint32(rng.Intn(nv))] = true
		}
		for v := range seen {
			sets[e] = append(sets[e], v)
		}
	}
	return core.FromSets(sets, nv)
}

func TestAllAlgorithmsAgreeOnRandomInputs(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(40, 25, 6, seed)
		for s := 1; s <= 4; s++ {
			want := tNaive(h, s)
			for name, got := range allAlgorithms(h, s) {
				if !reflect.DeepEqual(got, want) {
					t.Logf("%s disagrees with naive at s=%d (seed %d)", name, s, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSLineMonotonicityProperty(t *testing.T) {
	// edges(s+1) ⊆ edges(s): higher thresholds only remove edges.
	f := func(seed int64) bool {
		h := randomHypergraph(30, 20, 6, seed)
		prev := tHashmap(h, 1, Options{})
		for s := 2; s <= 5; s++ {
			cur := tHashmap(h, s, Options{})
			set := map[sparse.Edge]bool{}
			for _, e := range prev {
				set[e] = true
			}
			for _, e := range cur {
				if !set[e] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsMatrixAllEquivalent(t *testing.T) {
	h := randomHypergraph(50, 30, 6, 77)
	want := tNaive(h, 2)
	for _, part := range []Partition{BlockedPartition, CyclicPartition} {
		for _, rel := range []sparse.Order{sparse.NoOrder, sparse.Ascending, sparse.Descending} {
			o := Options{Partition: part, Relabel: rel, NumBins: 8}
			for name, got := range map[string][]sparse.Edge{
				"intersection": tIntersection(h, 2, o),
				"hashmap":      tHashmap(h, 2, o),
				"queue1":       tQueueHashmap(FromHypergraph(h), 2, o),
				"queue2":       tQueueIntersection(FromHypergraph(h), 2, o),
			} {
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s with %v/%v differs from naive", name, part, rel)
				}
			}
		}
	}
}

func TestQueueAlgorithmsOnAdjoinInput(t *testing.T) {
	// The queue-based algorithms must produce identical s-line graphs when
	// fed the adjoin representation directly — the versatility claim.
	h := randomHypergraph(40, 25, 5, 3)
	a := core.Adjoin(teng, h)
	for s := 1; s <= 3; s++ {
		want := tNaive(h, s)
		if got := tQueueHashmap(FromAdjoin(a), s, Options{}); !reflect.DeepEqual(got, want) {
			t.Errorf("QueueHashmap on adjoin, s=%d: %v want %v", s, got, want)
		}
		if got := tQueueIntersection(FromAdjoin(a), s, Options{}); !reflect.DeepEqual(got, want) {
			t.Errorf("QueueIntersection on adjoin, s=%d: %v want %v", s, got, want)
		}
	}
}

func TestQueueAlgorithmsOnRenamedIDs(t *testing.T) {
	// Rename hyperedges to sparse non-contiguous IDs; queue algorithms must
	// work and emit the renamed pairs.
	h := paperHypergraph()
	rename := map[uint32]uint32{0: 11, 1: 3, 2: 29, 3: 17}
	in := Renamed(FromHypergraph(h), rename, 32)
	got1 := tQueueHashmap(in, 1, Options{})
	got2 := tQueueIntersection(in, 1, Options{})
	// Cycle e0-e1-e2-e3-e0 renames to 11-3-29-17-11.
	want := canonPairs(teng, pairs([2]uint32{11, 3}, [2]uint32{11, 17}, [2]uint32{3, 29}, [2]uint32{29, 17}))
	if !reflect.DeepEqual(got1, want) {
		t.Errorf("QueueHashmap renamed: %v, want %v", got1, want)
	}
	if !reflect.DeepEqual(got2, want) {
		t.Errorf("QueueIntersection renamed: %v, want %v", got2, want)
	}
}

func TestQueueAlgorithmsRenamedInvariance(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(25, 15, 4, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		// Random injective renaming into a 4x larger space.
		space := 4 * h.NumEdges()
		permIDs := rng.Perm(space)
		rename := map[uint32]uint32{}
		for e := 0; e < h.NumEdges(); e++ {
			rename[uint32(e)] = uint32(permIDs[e])
		}
		in := Renamed(FromHypergraph(h), rename, space)
		for s := 1; s <= 3; s++ {
			want := map[sparse.Edge]bool{}
			for _, e := range tNaive(h, s) {
				u, v := rename[e.U], rename[e.V]
				if u > v {
					u, v = v, u
				}
				want[sparse.Edge{U: u, V: v}] = true
			}
			for _, algo := range []func(Input, int, Options) []sparse.Edge{tQueueHashmap, tQueueIntersection} {
				got := algo(in, s, Options{})
				if len(got) != len(want) {
					return false
				}
				for _, e := range got {
					if !want[e] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEnsembleMatchesIndividualRuns(t *testing.T) {
	h := randomHypergraph(40, 25, 6, 9)
	ss := []int{1, 2, 3, 5}
	got := tEnsemble(h, ss, Options{})
	for _, s := range ss {
		want := tHashmap(h, s, Options{})
		if !reflect.DeepEqual(got[s], want) {
			t.Errorf("ensemble s=%d differs from hashmap", s)
		}
	}
}

func TestEnsembleQueueMatchesEnsemble(t *testing.T) {
	h := randomHypergraph(40, 25, 6, 17)
	ss := []int{1, 2, 4}
	want := tEnsemble(h, ss, Options{})
	got := tEnsembleQueue(FromHypergraph(h), ss, Options{})
	for _, s := range ss {
		if !reflect.DeepEqual(got[s], want[s]) {
			t.Errorf("queue ensemble s=%d differs", s)
		}
	}
	// And on the adjoin representation.
	gotAdj := tEnsembleQueue(FromAdjoin(core.Adjoin(teng, h)), ss, Options{})
	for _, s := range ss {
		if !reflect.DeepEqual(gotAdj[s], want[s]) {
			t.Errorf("adjoin queue ensemble s=%d differs", s)
		}
	}
}

func TestEnsembleQueueEmpty(t *testing.T) {
	if tEnsembleQueue(FromHypergraph(paperHypergraph()), nil, Options{}) != nil {
		t.Fatal("EnsembleQueue(nil) should be nil")
	}
}

func TestEnsembleEmptyThresholds(t *testing.T) {
	if got := tEnsemble(paperHypergraph(), nil, Options{}); got != nil {
		t.Fatalf("Ensemble(nil) = %v", got)
	}
}

func TestCliqueExpansionPaperExample(t *testing.T) {
	// Clique expansion of the running example: each hyperedge becomes a
	// clique over its members.
	got := tCliqueExpansion(paperHypergraph(), Options{})
	want := map[sparse.Edge]bool{}
	for _, set := range [][]uint32{{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {0, 6, 7, 8}} {
		for i := 0; i < len(set); i++ {
			for j := i + 1; j < len(set); j++ {
				u, v := set[i], set[j]
				if u > v {
					u, v = v, u
				}
				want[sparse.Edge{U: u, V: v}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("clique expansion has %d edges, want %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e] {
			t.Fatalf("unexpected clique edge %v", e)
		}
	}
}

func TestCliqueExpansionIsDualOneLine(t *testing.T) {
	h := randomHypergraph(20, 15, 5, 21)
	a := tCliqueExpansion(h, Options{})
	b := tNaive(h.Dual(), 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("clique expansion != 1-line graph of dual")
	}
}

func TestToLineGraph(t *testing.T) {
	h := paperHypergraph()
	lg := ToLineGraph(h.NumEdges(), tHashmap(h, 1, Options{}))
	if lg.NumVertices() != 4 {
		t.Fatalf("line graph vertices = %d", lg.NumVertices())
	}
	// 4-cycle: every vertex degree 2.
	for v := 0; v < 4; v++ {
		if lg.Degree(v) != 2 {
			t.Fatalf("line graph degree(%d) = %d", v, lg.Degree(v))
		}
	}
}

func TestDegreeFilterExcludesSmallEdges(t *testing.T) {
	// A hyperedge of size 1 can never appear in a 2-line graph, even though
	// it overlaps others.
	h := core.FromSets([][]uint32{{0}, {0, 1, 2}, {1, 2, 3}}, 4)
	for name, got := range allAlgorithms(h, 2) {
		want := pairs([2]uint32{1, 2})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: %v, want %v", name, got, want)
		}
	}
}

func TestSelfPairsNeverEmitted(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(20, 10, 4, seed)
		for _, e := range tHashmap(h, 1, Options{}) {
			if e.U == e.V {
				return false
			}
			if e.U > e.V {
				return false // canonical order violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderQueueCyclicPermutation(t *testing.T) {
	h := paperHypergraph()
	in := FromHypergraph(h)
	q := orderQueue(teng, in.EdgeIDs(), in, Options{Partition: CyclicPartition, NumBins: 2})
	// 4 items, 2 bins: [0 2 1 3].
	if !reflect.DeepEqual(q, []uint32{0, 2, 1, 3}) {
		t.Fatalf("cyclic queue order = %v", q)
	}
	// Still a permutation.
	seen := map[uint32]bool{}
	for _, e := range q {
		seen[e] = true
	}
	if len(seen) != 4 {
		t.Fatal("cyclic order lost items")
	}
}

func TestOrderQueueDegreeSort(t *testing.T) {
	h := paperHypergraph() // degrees 3,3,3,4
	in := FromHypergraph(h)
	q := orderQueue(teng, in.EdgeIDs(), in, Options{Relabel: sparse.Descending})
	if q[0] != 3 {
		t.Fatalf("descending queue should start with e3 (degree 4): %v", q)
	}
	q = orderQueue(teng, in.EdgeIDs(), in, Options{Relabel: sparse.Ascending})
	if q[3] != 3 {
		t.Fatalf("ascending queue should end with e3: %v", q)
	}
}

func TestCountCommonGE(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{3, 4, 5, 6, 7}
	if c, ok := countCommonGE(a, b, 3); !ok || c < 3 {
		t.Fatalf("countCommonGE = %d,%v want >=3", c, ok)
	}
	if _, ok := countCommonGE(a, b, 4); ok {
		t.Fatal("countCommonGE reported 4 common, only 3 exist")
	}
	if c, ok := countCommonGE(nil, b, 0); !ok || c != 0 {
		t.Fatalf("s=0 should trivially hold: %d %v", c, ok)
	}
	if _, ok := countCommonGE([]uint32{1}, []uint32{2}, 1); ok {
		t.Fatal("disjoint sets reported s-incident")
	}
}
