// Package slinegraph implements the s-line-graph construction algorithms of
// NWHy: the naive all-pairs algorithm, the set-intersection heuristic
// (HiPC'21), the hashmap-counting algorithm (IPDPS'22), the ensemble
// variant, and the paper's two new queue-based algorithms — Algorithm 1
// (single-phase, hashmap counting over a work queue of hyperedge IDs) and
// Algorithm 2 (two-phase: enqueue candidate hyperedge pairs, then
// set-intersect each pair). Clique expansion is provided as the 1-line graph
// of the dual hypergraph.
//
// The non-queue algorithms assume hyperedge IDs are the contiguous range
// [0, nₑ) — the assumption the paper identifies as the reason they cannot
// run on adjoin graphs or relabeled ID spaces. The queue-based algorithms
// consume the Input interface instead and work with any hyperedge ID set:
// bipartite, adjoin (shared index space), or arbitrarily renamed.
package slinegraph

import (
	"nwhy/internal/core"
	"nwhy/internal/graph"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// Input is the representation-independent view the queue-based algorithms
// operate on. Hyperedge IDs may be any subset of [0, IDSpace()); hypernode
// handles are whatever Incidence returns and are only ever passed back to
// EdgesOf.
type Input interface {
	// EdgeIDs returns the hyperedge work-queue contents. Callers may reorder
	// the returned slice (it is a fresh copy).
	EdgeIDs() []uint32
	// IDSpace bounds every hyperedge ID (for stamp/result arrays).
	IDSpace() int
	// Incidence returns the hypernode handles of hyperedge e, sorted.
	Incidence(e uint32) []uint32
	// EdgesOf returns the hyperedge IDs incident to hypernode handle v.
	EdgesOf(v uint32) []uint32
	// EdgeDegree reports |e| for hyperedge e.
	EdgeDegree(e uint32) int
}

// bipartiteInput adapts the two-index-space representation.
type bipartiteInput struct {
	h *core.Hypergraph
}

// FromHypergraph exposes a bipartite-representation hypergraph as a
// queue-algorithm input with hyperedge IDs [0, nₑ).
func FromHypergraph(h *core.Hypergraph) Input { return bipartiteInput{h} }

func (b bipartiteInput) EdgeIDs() []uint32 {
	ids := make([]uint32, b.h.NumEdges())
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}
func (b bipartiteInput) IDSpace() int                { return b.h.NumEdges() }
func (b bipartiteInput) Incidence(e uint32) []uint32 { return b.h.Edges.Row(int(e)) }
func (b bipartiteInput) EdgesOf(v uint32) []uint32   { return b.h.Nodes.Row(int(v)) }
func (b bipartiteInput) EdgeDegree(e uint32) int     { return b.h.Edges.Degree(int(e)) }

// adjoinInput adapts the shared-index-space representation: hyperedges keep
// their shared-space IDs [0, nₑ) and hypernode handles are shared-space IDs
// [nₑ, nₑ+nᵥ). No conversion back to bipartite form is needed — the point
// of the queue-based algorithms.
type adjoinInput struct {
	a *core.AdjoinGraph
}

// FromAdjoin exposes an adjoin-representation hypergraph as a
// queue-algorithm input.
func FromAdjoin(a *core.AdjoinGraph) Input { return adjoinInput{a} }

func (ai adjoinInput) EdgeIDs() []uint32 {
	ids := make([]uint32, ai.a.NumRealEdges)
	for i := range ids {
		ids[i] = uint32(i)
	}
	return ids
}
func (ai adjoinInput) IDSpace() int                { return ai.a.NumVertices() }
func (ai adjoinInput) Incidence(e uint32) []uint32 { return ai.a.G.Row(int(e)) }
func (ai adjoinInput) EdgesOf(v uint32) []uint32   { return ai.a.G.Row(int(v)) }
func (ai adjoinInput) EdgeDegree(e uint32) int     { return ai.a.G.Degree(int(e)) }

// renamedInput wraps another input with an arbitrary hyperedge renaming —
// the situation (permuted, non-contiguous IDs) the queue-based algorithms
// were designed for and the non-queue ones cannot handle.
type renamedInput struct {
	base    Input
	toNew   map[uint32]uint32
	toOld   map[uint32]uint32
	idSpace int
}

// Renamed returns in with hyperedge e renamed to rename[e]. rename must be
// injective; IDs may be arbitrary within idSpace.
func Renamed(in Input, rename map[uint32]uint32, idSpace int) Input {
	toOld := make(map[uint32]uint32, len(rename))
	for o, n := range rename {
		toOld[n] = o
	}
	return renamedInput{base: in, toNew: rename, toOld: toOld, idSpace: idSpace}
}

func (r renamedInput) EdgeIDs() []uint32 {
	base := r.base.EdgeIDs()
	out := make([]uint32, len(base))
	for i, e := range base {
		out[i] = r.toNew[e]
	}
	return out
}
func (r renamedInput) IDSpace() int                { return r.idSpace }
func (r renamedInput) Incidence(e uint32) []uint32 { return r.base.Incidence(r.toOld[e]) }
func (r renamedInput) EdgesOf(v uint32) []uint32 {
	base := r.base.EdgesOf(v)
	out := make([]uint32, len(base))
	for i, e := range base {
		out[i] = r.toNew[e]
	}
	return out
}
func (r renamedInput) EdgeDegree(e uint32) int { return r.base.EdgeDegree(r.toOld[e]) }

// canonPairs normalizes an s-line edge list: U < V per pair, sorted,
// deduplicated. All construction algorithms return canonical lists so
// results are directly comparable across algorithms and representations.
func canonPairs(eng *parallel.Engine, pairs []sparse.Edge) []sparse.Edge {
	for i, e := range pairs {
		if e.U > e.V {
			pairs[i] = sparse.Edge{U: e.V, V: e.U}
		}
	}
	parallel.RadixSort64On(eng, pairs, func(e sparse.Edge) uint64 {
		return uint64(e.U)<<32 | uint64(e.V)
	})
	out := pairs[:0]
	for i, e := range pairs {
		if i > 0 && e == pairs[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// ToLineGraph materializes an s-line edge list over idSpace hyperedge IDs
// as an undirected graph, ready for the graph algorithm library (s-connected
// components, s-distance, s-betweenness, ...).
func ToLineGraph(idSpace int, pairs []sparse.Edge) *graph.Graph {
	el := &sparse.EdgeList{NumVertices: idSpace, Edges: append([]sparse.Edge(nil), pairs...)}
	return graph.FromEdgeList(el, true)
}

// countCommonGE counts |a ∩ b| of two sorted slices, short-circuiting as
// soon as the count reaches s or the remaining elements cannot reach it.
// Returns (count, reachedS).
func countCommonGE(a, b []uint32, s int) (int, bool) {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		if c >= s {
			return c, true
		}
		// Prune: even matching everything left cannot reach s.
		if c+min(len(a)-i, len(b)-j) < s {
			return c, false
		}
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c, c >= s
}
