package slinegraph

import (
	"nwhy/internal/parallel"
	"nwhy/internal/unionfind"
)

// This file is the kernel's fourth axis — Prune — the companion paper's
// algorithmic cuts (Liu et al., arXiv:2010.11448): the degree prefilter,
// the union-find connected short-circuit, and the toplex-only restriction.
// The axis resolves from the caller's declared Intent so heuristics that
// drop pairs never leak into runs that consume the pair list.

// DegreeStats summarizes the hyperedge degree distribution of an input. It
// feeds the resolveAxes heuristics; the facade memoizes one per snapshot
// epoch (Options.Stats) so repeated constructions skip the rescan.
type DegreeStats struct {
	// Mean is the average hyperedge degree over the work list.
	Mean float64
	// Max is the maximum hyperedge degree.
	Max int
}

// ComputeDegreeStats computes DegreeStats engine-parallel over in's
// hyperedges.
func ComputeDegreeStats(eng *parallel.Engine, in Input) DegreeStats {
	ids := in.EdgeIDs()
	type acc struct{ total, max int }
	tls := parallel.NewTLSFor(eng, func() acc { return acc{} })
	eng.ForN(len(ids), func(w, lo, hi int) {
		a := tls.Get(w)
		for i := lo; i < hi; i++ {
			d := in.EdgeDegree(ids[i])
			a.total += d
			if d > a.max {
				a.max = d
			}
		}
	})
	var st DegreeStats
	total := 0
	tls.All(func(a *acc) {
		total += a.total
		if a.max > st.Max {
			st.Max = a.max
		}
	})
	if len(ids) > 0 {
		st.Mean = float64(total) / float64(len(ids))
	}
	return st
}

// resolvePrune turns AutoPrune into a concrete heuristic from the declared
// intent and clamps explicit choices to what is sound: the connected
// short-circuit and the toplex restriction change which pairs are emitted,
// so they require a connectivity-intent run feeding an in-package forest;
// anywhere else they degrade to the result-identical degree prefilter.
func resolvePrune(o Options) Prune {
	p := o.Prune
	if p == AutoPrune {
		if o.Intent == IntentConnectivity {
			if o.Subset != nil {
				p = ToplexPrune
			} else {
				p = ConnectivityPrune
			}
		} else {
			p = DegreePrune
		}
	}
	if p >= ConnectivityPrune && (o.Intent != IntentConnectivity || o.forest == nil) {
		p = DegreePrune
	}
	if p == ToplexPrune && o.Subset == nil {
		p = ConnectivityPrune
	}
	return p
}

// pruneState carries one run's pruning machinery through the kernel: the
// eligibility bitset counters consult instead of per-candidate degree
// checks, and the union-find forest backing the connected short-circuit.
// The zero value (NoPrune) falls back to the legacy per-candidate checks.
type pruneState struct {
	eligible *parallel.Bitset
	forest   *unionfind.Forest
}

// ok reports whether candidate f participates in this run: degree ≥ s, and
// a member of the Subset when the run is toplex-restricted.
func (p *pruneState) ok(in Input, f uint32, s int) bool {
	if p.eligible == nil {
		return in.EdgeDegree(f) >= s
	}
	return p.eligible.Get(int(f))
}

// connected reports whether (e, f) is already known s-connected, in which
// case counting the pair proves nothing new. A false negative costs one
// redundant count; a false positive cannot happen (SameSet only affirms
// established connectivity), so no component merge is ever lost.
func (p *pruneState) connected(e, f uint32) bool {
	return p.forest != nil && p.forest.SameSet(e, f)
}

// buildPrune resolves the Prune axis and materializes the run's state: the
// eligibility bitset over the ID space and the filtered work span, both
// built engine-parallel once up front so every schedule and counter skips
// sub-s (and, under ToplexPrune, non-maximal) hyperedges entirely.
func buildPrune(eng *parallel.Engine, in Input, s int, o Options, ids []uint32) (*pruneState, []uint32) {
	p := resolvePrune(o)
	if p == NoPrune {
		return &pruneState{}, ids
	}
	work := ids
	if p == ToplexPrune {
		work = append([]uint32(nil), o.Subset...)
	}
	bits := parallel.NewBitset(in.IDSpace())
	eng.ForN(len(work), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if e := work[i]; in.EdgeDegree(e) >= s {
				bits.Set(int(e))
			}
		}
	})
	work = filterSpan(eng, work, func(e uint32) bool { return bits.Get(int(e)) })
	ps := &pruneState{eligible: bits}
	if p >= ConnectivityPrune {
		ps.forest = o.forest
	}
	return ps, work
}

// filterSpan compacts ids to the elements passing keep, engine-parallel and
// order-preserving: per-chunk counts, an exclusive scan, then a scatter —
// the same two-pass shape as ConstructCSR's assembly.
func filterSpan(eng *parallel.Engine, ids []uint32, keep func(uint32) bool) []uint32 {
	n := len(ids)
	if n == 0 {
		return ids
	}
	const chunk = 4096
	nchunks := (n + chunk - 1) / chunk
	counts := make([]int64, nchunks)
	eng.ForEach(nchunks, func(c int) {
		lo, hi := c*chunk, min((c+1)*chunk, n)
		k := int64(0)
		for i := lo; i < hi; i++ {
			if keep(ids[i]) {
				k++
			}
		}
		counts[c] = k
	})
	total := parallel.ScanExclusive(counts)
	if total == int64(n) {
		return ids // nothing filtered; skip the copy
	}
	out := make([]uint32, total)
	eng.ForEach(nchunks, func(c int) {
		lo, hi := c*chunk, min((c+1)*chunk, n)
		at := counts[c]
		for i := lo; i < hi; i++ {
			if keep(ids[i]) {
				out[at] = ids[i]
				at++
			}
		}
	})
	return out
}
