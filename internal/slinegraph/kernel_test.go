package slinegraph

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"nwhy/internal/gen"
	"nwhy/internal/sparse"
)

func tConstruct(t *testing.T, in Input, s int, o Options) []sparse.Edge {
	t.Helper()
	r, err := Construct(teng, in, s, o)
	if err != nil {
		t.Fatalf("Construct: %v", err)
	}
	return r
}

// TestCrossStrategyDifferential is the kernel's differential property test:
// on generated random hypergraphs, every (counter x schedule x relabel x
// partition) combination must yield the identical canonicalized s-line edge
// set for s in {1, 2, 3}.
func TestCrossStrategyDifferential(t *testing.T) {
	hs := map[string]Input{
		"uniform":  FromHypergraph(gen.Uniform(60, 40, 5, 1)),
		"powerlaw": FromHypergraph(gen.BipartitePowerLaw(50, 35, 4, 1.6, 2)),
	}
	counters := []Counter{AutoCounter, HashmapCounter, DenseCounter, IntersectionCounter}
	schedules := []Schedule{DefaultSchedule, BlockedSchedule, CyclicSchedule, QueueSchedule, AutoSchedule}
	relabels := []sparse.Order{sparse.NoOrder, sparse.Ascending, sparse.Descending}
	partitions := []Partition{BlockedPartition, CyclicPartition}
	for hname, in := range hs {
		for s := 1; s <= 3; s++ {
			want := tConstruct(t, in, s, Options{})
			for _, ctr := range counters {
				for _, sched := range schedules {
					for _, rel := range relabels {
						for _, part := range partitions {
							o := Options{Counter: ctr, Schedule: sched, Relabel: rel, Partition: part, NumBins: 8}
							got := tConstruct(t, in, s, o)
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%s s=%d counter=%v schedule=%v relabel=%v partition=%v: %d edges, want %d",
									hname, s, ctr, sched, rel, part, len(got), len(want))
							}
						}
					}
				}
			}
		}
	}
}

// TestWeightedParityAcrossOptions is the weighted/unweighted parity test:
// weighted output stripped of overlaps equals unweighted output for the
// same options, across every axis combination.
func TestWeightedParityAcrossOptions(t *testing.T) {
	in := FromHypergraph(gen.Uniform(50, 30, 5, 7))
	for _, ctr := range []Counter{HashmapCounter, DenseCounter, IntersectionCounter} {
		for _, sched := range []Schedule{BlockedSchedule, CyclicSchedule, QueueSchedule} {
			for _, rel := range []sparse.Order{sparse.NoOrder, sparse.Descending} {
				o := Options{Counter: ctr, Schedule: sched, Relabel: rel}
				for s := 1; s <= 3; s++ {
					plain := tConstruct(t, in, s, o)
					wp, err := ConstructWeighted(teng, in, s, o)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(Unweight(wp), plain) {
						t.Fatalf("counter=%v schedule=%v relabel=%v s=%d: weighted pairs differ from unweighted", ctr, sched, rel, s)
					}
					for _, p := range wp {
						if exactOverlap(in.Incidence(p.U), in.Incidence(p.V)) != p.Overlap {
							t.Fatalf("counter=%v s=%d: pair (%d,%d) overlap %d not exact", ctr, s, p.U, p.V, p.Overlap)
						}
					}
				}
			}
		}
	}
}

// TestConstructCSRMatchesPairsPath: the direct-CSR assembly must produce
// exactly the adjacency the pairs-then-FromEdgeList path produces.
func TestConstructCSRMatchesPairsPath(t *testing.T) {
	for _, seed := range []int64{3, 9, 27} {
		in := FromHypergraph(gen.Uniform(45, 30, 5, seed))
		for s := 1; s <= 3; s++ {
			for _, o := range []Options{
				{},
				{Counter: DenseCounter, Schedule: QueueSchedule},
				{Counter: IntersectionCounter, Schedule: CyclicSchedule, Relabel: sparse.Ascending},
			} {
				csr, err := ConstructCSR(teng, in, s, o)
				if err != nil {
					t.Fatal(err)
				}
				if err := csr.Validate(); err != nil {
					t.Fatalf("seed=%d s=%d: %v", seed, s, err)
				}
				want := ToLineGraph(in.IDSpace(), tConstruct(t, in, s, o)).CSR()
				if !csr.Equal(want) {
					t.Fatalf("seed=%d s=%d %+v: direct CSR differs from pairs path", seed, s, o)
				}
			}
		}
	}
}

func TestConstructCSREmpty(t *testing.T) {
	in := FromHypergraph(paperHypergraph())
	csr, err := ConstructCSR(teng, in, 5, Options{}) // threshold above any overlap
	if err != nil {
		t.Fatal(err)
	}
	if csr.NumRows() != in.IDSpace() || csr.NumEdges() != 0 {
		t.Fatalf("empty line graph CSR: %d rows, %d edges", csr.NumRows(), csr.NumEdges())
	}
}

// TestResolveAxesAuto pins the Auto heuristic's direction: high thresholds
// pick intersection, dense overlap picks the dense counter, relabel orders
// and skew pick the queue schedule.
func TestResolveAxesAuto(t *testing.T) {
	in := FromHypergraph(overlapHypergraph()) // degrees 4,4,4,2: mean 3.5
	ids := in.EdgeIDs()

	ctr, sched := resolveAxes(in, 3, ids, Options{})
	if ctr != IntersectionCounter {
		t.Fatalf("s=3 vs mean 3.5: counter %v, want intersection", ctr)
	}
	if sched != BlockedSchedule {
		t.Fatalf("default schedule %v, want blocked", sched)
	}

	// s=1 keeps tallying; the tiny ID space (4) vs mean*max=14 forces dense.
	if ctr, _ := resolveAxes(in, 1, ids, Options{}); ctr != DenseCounter {
		t.Fatalf("dense-overlap input: counter %v, want dense", ctr)
	}

	// A sparse-overlap input falls back to the hashmap.
	sp := FromHypergraph(gen.Uniform(500, 2000, 3, 4))
	if ctr, _ := resolveAxes(sp, 1, sp.EdgeIDs(), Options{}); ctr != HashmapCounter {
		t.Fatalf("sparse-overlap input: counter %v, want hashmap", ctr)
	}

	if _, sched := resolveAxes(in, 1, ids, Options{Schedule: AutoSchedule, Relabel: sparse.Descending}); sched != QueueSchedule {
		t.Fatalf("relabel order should pick the queue schedule, got %v", sched)
	}
	if _, sched := resolveAxes(in, 1, ids, Options{Schedule: AutoSchedule, Partition: CyclicPartition}); sched != CyclicSchedule {
		t.Fatalf("auto over cyclic partition: %v, want cyclic", sched)
	}
}

func TestConstructSurfacesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := FromHypergraph(paperHypergraph())
	for _, sched := range []Schedule{BlockedSchedule, CyclicSchedule, QueueSchedule} {
		if _, err := Construct(teng.WithContext(ctx), in, 1, Options{Schedule: sched}); err == nil {
			t.Fatalf("schedule %v: cancelled construct returned nil error", sched)
		}
	}
	if _, err := ConstructCSR(teng.WithContext(ctx), in, 1, Options{}); err == nil {
		t.Fatal("cancelled ConstructCSR returned nil error")
	}
}

func TestAxisStrings(t *testing.T) {
	for want, got := range map[string]fmt.Stringer{
		"auto":         AutoCounter,
		"hashmap":      HashmapCounter,
		"dense":        DenseCounter,
		"intersection": IntersectionCounter,
		"default":      DefaultSchedule,
		"blocked":      BlockedSchedule,
		"cyclic":       CyclicSchedule,
		"queue":        QueueSchedule,
	} {
		if got.String() != want {
			t.Fatalf("String() = %q, want %q", got.String(), want)
		}
	}
}

func TestCountCommonExact(t *testing.T) {
	a := []uint32{1, 3, 5, 7}
	b := []uint32{3, 4, 5, 6, 7}
	if c, ok := countCommonExact(a, b, 2); !ok || c != 3 {
		t.Fatalf("countCommonExact = %d,%v want exact 3", c, ok)
	}
	if c, ok := countCommonExact(a, b, 3); !ok || c != 3 {
		t.Fatalf("countCommonExact at threshold = %d,%v", c, ok)
	}
	if _, ok := countCommonExact(a, b, 4); ok {
		t.Fatal("countCommonExact reported 4 common, only 3 exist")
	}
}
