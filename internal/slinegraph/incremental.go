package slinegraph

import (
	"sync"

	"nwhy/internal/countmap"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
	"nwhy/internal/unionfind"
)

// ConstructDirty computes the canonical s-line pairs incident to the dirty
// hyperedges only — the incremental kernel behind overlay mutation. The key
// structural fact: inserting a hyperedge never changes the overlap between
// two pre-existing hyperedges (member sets are immutable), so after an
// insert-only batch the s-line graph changes exactly by pairs touching a
// dirty edge. Unlike the full kernel's tally walk, the filter here is f ≠ e
// (not f > e): a dirty edge must pair with older edges on both sides.
// Dirty IDs that are dead or below degree s contribute nothing.
//
// Deletions are out of scope by design — a tombstone moves the delete epoch
// and consumers rebuild from scratch.
func ConstructDirty(eng *parallel.Engine, in Input, s int, dirty []uint32, o Options) ([]sparse.Edge, error) {
	ids := orderQueue(eng, append([]uint32(nil), dirty...), in, o)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	isDirty := make(map[uint32]bool, len(ids))
	for _, e := range ids {
		isDirty[e] = true
	}
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	pool := sync.Pool{New: func() any { return countmap.New(64) }}
	eng.For(eng.Blocked(0, len(ids)), func(w, lo, hi int) {
		buf := tls.Get(w)
		for i := lo; i < hi; i++ {
			e := ids[i]
			if in.EdgeDegree(e) < s {
				continue
			}
			cnt := pool.Get().(*countmap.Map)
			cnt.Clear()
			for _, v := range in.Incidence(e) {
				for _, f := range in.EdgesOf(v) {
					if f != e && in.EdgeDegree(f) >= s {
						cnt.Inc(f, 1)
					}
				}
			}
			cnt.Range(func(f uint32, c int32) {
				if int(c) < s {
					return
				}
				// A dirty-dirty pair is found from both ends; keep it once,
				// from its minimum endpoint (canonPairs would dedup anyway,
				// but not doubling the buffer is free here).
				if isDirty[f] && f < e {
					return
				}
				u, v := e, f
				if u > v {
					u, v = v, u
				}
				*buf = append(*buf, sparse.Edge{U: u, V: v})
			})
			pool.Put(cnt)
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, tls), nil
}

// MergeCanonical merges two canonical s-line pair lists into one canonical
// list (neither input is modified). Used to patch a cached s-line graph:
// the old pairs plus the dirty-edge pairs of an insert-only batch.
func MergeCanonical(eng *parallel.Engine, a, b []sparse.Edge) []sparse.Edge {
	merged := make([]sparse.Edge, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return canonPairs(eng, merged)
}

// SComponentsForest is SComponentsDirect keeping the union-find forest
// alive: the caller owns it and can later Grow it and absorb insert-only
// deltas without recomputing from scratch. The forest is compressed on
// return.
//
// The run declares IntentConnectivity and feeds the forest back into the
// kernel, arming the connected short-circuit: once two hyperedges land in
// one s-component, later candidate pairs between that component's members
// skip counting entirely (their union would be a no-op). Pass
// Options.Prune = NoPrune to disable every heuristic (the benchmark
// baseline); labels are identical either way.
func SComponentsForest(eng *parallel.Engine, in Input, s int, o Options) (*unionfind.Forest, error) {
	forest := unionfind.New(in.IDSpace())
	if o.Schedule == DefaultSchedule {
		o.Schedule = QueueSchedule
	}
	o.Intent = IntentConnectivity
	o.forest = forest
	if err := construct(eng, in, s, o, false, func(_ int, e, f uint32, _ int32) {
		forest.Union(e, f)
	}); err != nil {
		return nil, err
	}
	forest.Compress()
	return forest, nil
}

// AbsorbPairs unions a batch of s-line pairs into an existing forest — the
// incremental s-CC step for insert-only deltas, the connectivity-only
// short-circuit of the companion paper: component labels need the pairs'
// existence, never their exact overlap counts. The forest is compressed on
// return so Labels is immediately valid.
func AbsorbPairs(eng *parallel.Engine, forest *unionfind.Forest, pairs []sparse.Edge) error {
	eng.For(eng.Blocked(0, len(pairs)), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			forest.Union(pairs[i].U, pairs[i].V)
		}
	})
	if err := eng.Err(); err != nil {
		return err
	}
	forest.Compress()
	return nil
}
