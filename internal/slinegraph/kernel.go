package slinegraph

import (
	"sort"

	"nwhy/internal/countmap"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// This file is the unified s-overlap construction kernel: one generic
// count/filter/emit cycle parameterized along three orthogonal axes —
// counter strategy (Counter), work schedule (Schedule), and emit mode
// (threshold pairs vs exact overlaps, chosen by the entry point). Every
// construction algorithm in this package — the queue-based Algorithms 1 and
// 2, the non-queue hashmap and intersection heuristics, the weighted
// variants, the ensembles, and the direct components builder — is a thin
// wrapper pinning some of the axes.

// Counter selects the per-worker overlap-counting strategy.
type Counter int

const (
	// AutoCounter picks a strategy from s and the degree statistics of the
	// input (see resolveAxes).
	AutoCounter Counter = iota
	// HashmapCounter tallies overlaps in a per-worker open-addressing hash
	// map (countmap.Map): O(distinct neighbors) memory, the IPDPS'22 default.
	HashmapCounter
	// DenseCounter tallies overlaps in a per-worker stamp/counter array
	// indexed by hyperedge ID: O(1) access with no probing, O(ID space)
	// memory, the winner when hyperedges overlap much of the ID space.
	DenseCounter
	// IntersectionCounter skips tallying: candidates are deduplicated with a
	// stamp array and each candidate pair is sorted-merge intersected with
	// short-circuiting at s (the HiPC'21 heuristic).
	IntersectionCounter
)

func (c Counter) String() string {
	switch c {
	case HashmapCounter:
		return "hashmap"
	case DenseCounter:
		return "dense"
	case IntersectionCounter:
		return "intersection"
	default:
		return "auto"
	}
}

// Schedule selects how hyperedges are distributed over workers.
type Schedule int

const (
	// DefaultSchedule derives the schedule from Options.Partition: blocked
	// or cyclic, matching the historical non-queue behaviour.
	DefaultSchedule Schedule = iota
	// BlockedSchedule assigns contiguous chunks (tbb::blocked_range).
	BlockedSchedule
	// CyclicSchedule assigns hyperedges round-robin with a stride.
	CyclicSchedule
	// QueueSchedule is the paper's dynamic work queue: workers fetch chunks
	// with an atomic cursor, rebalancing skew regardless of order.
	QueueSchedule
	// AutoSchedule picks a schedule from the relabel order and degree skew
	// (see resolveAxes).
	AutoSchedule
)

func (s Schedule) String() string {
	switch s {
	case BlockedSchedule:
		return "blocked"
	case CyclicSchedule:
		return "cyclic"
	case QueueSchedule:
		return "queue"
	case AutoSchedule:
		return "auto"
	default:
		return "default"
	}
}

// overlapCounter is the per-worker strategy object of the kernel: process
// yields every neighbor f > e with |e ∩ f| ≥ s. When exact is set the
// yielded count is the true overlap size |e ∩ f| (needed by the weighted
// and ensemble emit modes); otherwise it may be any value ≥ s reached after
// short-circuiting. Counters are arena-recycled across runs via reset.
type overlapCounter interface {
	// reset prepares the counter for in's ID space. Called once per run when
	// the counter is bound to a worker.
	reset(in Input)
	// process visits hyperedge e, yielding each (f, count) with f > e,
	// deg(f) ≥ s and |e ∩ f| ≥ s. pr supplies the run's pruning state:
	// candidate eligibility (degree prefilter / toplex restriction) and the
	// connected short-circuit.
	process(in Input, e uint32, s int, exact bool, pr *pruneState, yield func(f uint32, c int32))
}

// tallyCounter counts overlaps through the two-level incidence walk into a
// pluggable countmap.Counter (hashmap or dense). Tallies are always exact —
// every shared hypernode increments — so it serves both emit modes.
type tallyCounter struct {
	c countmap.Counter
}

func (t *tallyCounter) reset(in Input) { t.c.Reset(in.IDSpace()) }

func (t *tallyCounter) process(in Input, e uint32, s int, _ bool, pr *pruneState, yield func(f uint32, c int32)) {
	t.c.Clear()
	for _, v := range in.Incidence(e) { // Alg 1, line 9
		for _, f := range in.EdgesOf(v) { // line 10: (i < j)
			if f > e && pr.ok(in, f, s) {
				t.c.Inc(f, 1) // line 11
			}
		}
	}
	t.c.Range(func(f uint32, c int32) { // lines 12-14
		if int(c) >= s && !pr.connected(e, f) {
			yield(f, c)
		}
	})
}

// intersectionCounter implements the set-intersection strategy: collect the
// candidate neighbors once (deduplicated with an epoch-stamped array, so no
// per-call clearing), then sorted-merge intersect each candidate's incidence
// list with e's, short-circuiting at s unless an exact count is required.
type intersectionCounter struct {
	stamp []uint32
	cand  []uint32
	epoch uint32
}

func (ic *intersectionCounter) reset(in Input) {
	if n := in.IDSpace(); n > len(ic.stamp) {
		ic.stamp = make([]uint32, n)
		ic.epoch = 0
	}
}

func (ic *intersectionCounter) process(in Input, e uint32, s int, exact bool, pr *pruneState, yield func(f uint32, c int32)) {
	ic.epoch++
	if ic.epoch == 0 { // stamp wraparound: hard reset
		for i := range ic.stamp {
			ic.stamp[i] = 0
		}
		ic.epoch = 1
	}
	ic.cand = ic.cand[:0]
	re := in.Incidence(e)
	for _, v := range re {
		for _, f := range in.EdgesOf(v) {
			if f <= e || ic.stamp[f] == ic.epoch || !pr.ok(in, f, s) {
				continue
			}
			ic.stamp[f] = ic.epoch
			ic.cand = append(ic.cand, f)
		}
	}
	for _, f := range ic.cand {
		if pr.connected(e, f) {
			continue // already one s-component; the merge would be a no-op
		}
		var c int
		var ok bool
		if exact {
			c, ok = countCommonExact(re, in.Incidence(f), s)
		} else {
			c, ok = countCommonGE(re, in.Incidence(f), s)
		}
		if ok {
			yield(f, int32(c))
		}
	}
}

// newCounter constructs a fresh counter of the resolved (non-Auto) kind.
func newCounter(kind Counter) overlapCounter {
	switch kind {
	case DenseCounter:
		return &tallyCounter{c: countmap.NewDense(0)}
	case IntersectionCounter:
		return &intersectionCounter{}
	default:
		return &tallyCounter{c: countmap.New(64)}
	}
}

// counterKey is the arena key a counter kind's scratch is recycled under.
func counterKey(kind Counter) string {
	switch kind {
	case DenseCounter:
		return "slinegraph.counter.dense"
	case IntersectionCounter:
		return "slinegraph.counter.isect"
	default:
		return "slinegraph.counter.hashmap"
	}
}

// grabCounter fetches a reusable counter of the given kind from worker w's
// arena on eng, falling back to a fresh one. Runs stash counters back with
// stashCounter so repeated constructions on one engine stop allocating
// their hash tables and stamp arrays.
func grabCounter(eng *parallel.Engine, w int, kind Counter) overlapCounter {
	if v, ok := eng.Grab(w, counterKey(kind)); ok {
		return v.(overlapCounter)
	}
	return newCounter(kind)
}

// stashCounter returns a counter to worker w's arena for reuse.
func stashCounter(eng *parallel.Engine, w int, kind Counter, c overlapCounter) {
	if c == nil {
		return
	}
	eng.Stash(w, counterKey(kind), c)
}

// counterTLS lazily binds one arena counter per worker; release returns every
// bound counter to the arenas once the construction's loops are done.
func counterTLS(eng *parallel.Engine, kind Counter) (tls *parallel.TLS[overlapCounter], release func()) {
	tls = parallel.NewTLSFor(eng, func() overlapCounter { return nil })
	release = func() {
		tls.Each(func(w int, v *overlapCounter) { stashCounter(eng, w, kind, *v) })
	}
	return tls, release
}

// getCounter returns worker w's counter from tls, binding one from the arena
// (reset for in's ID space) on first use.
func getCounter(eng *parallel.Engine, tls *parallel.TLS[overlapCounter], w int, kind Counter, in Input) overlapCounter {
	cp := tls.Get(w)
	if *cp == nil {
		*cp = grabCounter(eng, w, kind)
		(*cp).reset(in)
	}
	return *cp
}

// degreeStats computes the mean and maximum hyperedge degree over ids.
func degreeStats(in Input, ids []uint32) (mean float64, max int) {
	total := 0
	for _, e := range ids {
		d := in.EdgeDegree(e)
		total += d
		if d > max {
			max = d
		}
	}
	if len(ids) > 0 {
		mean = float64(total) / float64(len(ids))
	}
	return mean, max
}

// resolveAxes turns Auto/Default axis values into concrete ones, following
// the degree-based heuristics of Liu et al. (arXiv:2010.11448):
//
//   - Counter: a threshold s large relative to the mean degree favors the
//     intersection strategy (the s short-circuit kills most merges early and
//     few pairs survive the degree filter); when the expected candidate
//     volume (mean × max degree) rivals the ID space, the dense array beats
//     the hash map (no probing, every slot hit anyway); otherwise the
//     hashmap is the safe default.
//   - Schedule: a relabel order or a skewed degree distribution
//     (max ≥ 8 × mean) begs for the dynamic queue's load rebalancing;
//     otherwise the static schedules win on scheduling overhead, honoring
//     the Partition option.
func resolveAxes(in Input, s int, ids []uint32, o Options) (Counter, Schedule) {
	ctr, sched := o.Counter, o.Schedule
	if sched == DefaultSchedule {
		if o.Partition == CyclicPartition {
			sched = CyclicSchedule
		} else {
			sched = BlockedSchedule
		}
	}
	if ctr == AutoCounter || sched == AutoSchedule {
		var mean float64
		var max int
		if o.Stats != nil {
			mean, max = o.Stats.Mean, o.Stats.Max
		} else {
			mean, max = degreeStats(in, ids)
		}
		if ctr == AutoCounter {
			switch {
			case s >= 2 && float64(s) >= mean/2:
				ctr = IntersectionCounter
			case mean*float64(max) >= float64(in.IDSpace()):
				ctr = DenseCounter
			default:
				ctr = HashmapCounter
			}
		}
		if sched == AutoSchedule {
			if o.Relabel != sparse.NoOrder || float64(max) >= 8*mean {
				sched = QueueSchedule
			} else if o.Partition == CyclicPartition {
				sched = CyclicSchedule
			} else {
				sched = BlockedSchedule
			}
		}
	}
	return ctr, sched
}

// sortByDegree stably sorts ids by hyperedge degree per ord (NoOrder leaves
// the slice untouched). For the queue schedule this is the paper's
// relabel-by-degree without any physical CSR relabeling — only the work
// order changes; for the static schedules it reorders the iteration space
// the same way, so all schedules see identical orderings.
func sortByDegree(ids []uint32, in Input, ord sparse.Order) []uint32 {
	switch ord {
	case sparse.Ascending:
		sort.SliceStable(ids, func(a, b int) bool {
			return in.EdgeDegree(ids[a]) < in.EdgeDegree(ids[b])
		})
	case sparse.Descending:
		sort.SliceStable(ids, func(a, b int) bool {
			return in.EdgeDegree(ids[a]) > in.EdgeDegree(ids[b])
		})
	}
	return ids
}

// construct is the kernel body shared by every construction algorithm: order
// the hyperedge IDs, distribute them per the schedule, and run the counter
// strategy on each, yielding (worker, e, f, count) for every s-overlapping
// pair with f > e. Each surviving pair is emitted exactly once. When exact
// is set the count is the true |e ∩ f| (the weighted/ensemble emit modes);
// otherwise counters may short-circuit at s. Returns eng.Err() so callers
// surface mid-run cancellation.
func construct(eng *parallel.Engine, in Input, s int, o Options, exact bool, emit func(w int, e, f uint32, c int32)) error {
	ids := in.EdgeIDs()
	// Axis 4 first: the prefiltered work span feeds the schedule and, when
	// Stats is unset, the axis-resolution scan only visits eligible edges.
	pr, ids := buildPrune(eng, in, s, o, ids)
	if err := eng.Err(); err != nil {
		return err
	}
	ctr, sched := resolveAxes(in, s, ids, o)
	if sched == QueueSchedule {
		ids = orderQueue(eng, ids, in, o)
	} else {
		ids = sortByDegree(ids, in, o.Relabel)
	}
	tls, release := counterTLS(eng, ctr)
	body := func(w int, e uint32) {
		if !pr.ok(in, e, s) { // Alg 1, line 6 (pre-checked under the prefilter)
			return
		}
		cnt := getCounter(eng, tls, w, ctr, in)
		cnt.process(in, e, s, exact, pr, func(f uint32, c int32) { emit(w, e, f, c) })
	}
	switch sched {
	case QueueSchedule:
		parallel.Drain(eng, parallel.NewWorkQueueFor(eng, ids), body)
	case CyclicSchedule:
		eng.ForCyclic(eng.Cyclic(0, len(ids), o.NumBins), func(w, start, end, stride int) {
			for i := start; i < end; i += stride {
				body(w, ids[i])
			}
		})
	default:
		eng.For(eng.Blocked(0, len(ids)), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				body(w, ids[i])
			}
		})
	}
	release()
	return eng.Err()
}

// Construct runs the kernel and collects the canonical s-line edge list.
// It is the slice-output adapter over the kernel; the default smetrics path
// uses ConstructCSR instead and never materializes this list.
func Construct(eng *parallel.Engine, in Input, s int, o Options) ([]sparse.Edge, error) {
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	if err := construct(eng, in, s, o, false, func(w int, e, f uint32, _ int32) {
		buf := tls.Get(w)
		*buf = append(*buf, sparse.Edge{U: e, V: f})
	}); err != nil {
		return nil, err
	}
	return collectTLS(eng, tls), nil
}

// ConstructWeighted runs the kernel in exact-count mode and collects the
// canonical weighted s-line edge list (each pair with its |e ∩ f|).
func ConstructWeighted(eng *parallel.Engine, in Input, s int, o Options) ([]WeightedPair, error) {
	tls := parallel.NewTLSFor(eng, func() []WeightedPair { return nil })
	if err := construct(eng, in, s, o, true, func(w int, e, f uint32, c int32) {
		buf := tls.Get(w)
		*buf = append(*buf, WeightedPair{U: e, V: f, Overlap: int(c)})
	}); err != nil {
		return nil, err
	}
	return canonWeighted(eng, parallel.FlattenTLS(nil, tls, nil)), nil
}

// ConstructCSR runs the kernel and assembles the symmetric s-line adjacency
// directly into a sparse.CSR over in's ID space — the fast path consumed by
// smetrics.Build. Per-worker sorted chunk buffers are counted into a degree
// array, a parallel.ScanExclusive pass turns the counts into row offsets,
// and the chunks scatter both arc directions straight into the CSR's column
// storage; no global []sparse.Edge list ever exists.
func ConstructCSR(eng *parallel.Engine, in Input, s int, o Options) (*sparse.CSR, error) {
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	if err := construct(eng, in, s, o, false, func(w int, e, f uint32, _ int32) {
		buf := tls.Get(w)
		*buf = append(*buf, sparse.Edge{U: e, V: f})
	}); err != nil {
		return nil, err
	}
	// Collect the per-worker chunks (the slice headers, not the pairs).
	var chunks [][]sparse.Edge
	tls.Each(func(_ int, v *[]sparse.Edge) {
		if len(*v) > 0 {
			chunks = append(chunks, *v)
		}
	})
	n := in.IDSpace()
	// Sort each chunk in parallel so the scatter below writes each row in
	// near-sorted runs (FromParts' final row sort then works on almost-ordered
	// data), and count both arc directions into the degree array.
	counts := make([]int64, n)
	sortAndCount := make([]func(), len(chunks))
	for ci := range chunks {
		chunk := chunks[ci]
		sortAndCount[ci] = func() {
			sort.Slice(chunk, func(a, b int) bool {
				if chunk[a].U != chunk[b].U {
					return chunk[a].U < chunk[b].U
				}
				return chunk[a].V < chunk[b].V
			})
			for _, p := range chunk {
				parallel.AddI64(&counts[p.U], 1)
				parallel.AddI64(&counts[p.V], 1)
			}
		}
	}
	eng.Invoke(sortAndCount...)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	total := parallel.ScanExclusive(counts)
	rowptr := make([]int64, n+1)
	copy(rowptr, counts)
	rowptr[n] = total
	// The scanned array doubles as the per-row scatter cursors.
	col := make([]uint32, total)
	scatter := make([]func(), len(chunks))
	for ci := range chunks {
		chunk := chunks[ci]
		scatter[ci] = func() {
			for _, p := range chunk {
				col[parallel.AddI64(&counts[p.U], 1)-1] = p.V
				col[parallel.AddI64(&counts[p.V], 1)-1] = p.U
			}
		}
	}
	eng.Invoke(scatter...)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return sparse.FromParts(n, n, rowptr, col, nil), nil
}

// countCommonExact counts |a ∩ b| of two sorted slices exactly, pruning only
// when the remaining elements cannot reach s. Returns (count, count >= s) —
// the exact-mode sibling of countCommonGE.
func countCommonExact(a, b []uint32, s int) (int, bool) {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		if c < s && c+min(len(a)-i, len(b)-j) < s {
			return c, false
		}
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c, c >= s
}
