package slinegraph

import (
	"sort"

	"nwhy/internal/core"
	"nwhy/internal/graph"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// WeightedPair is one s-line edge together with its strength: the exact
// overlap |e ∩ f|. Figure 5 of the paper draws s-line edges with width
// proportional to this strength; keeping it enables strength-weighted
// s-metrics (e.g. distances where strongly-overlapping hyperedges are
// closer).
type WeightedPair struct {
	U, V    uint32
	Overlap int
}

// HashmapWeighted is the hashmap-counting construction retaining overlap
// strengths. It produces the same pair set as Hashmap plus the exact
// overlap count per pair.
func HashmapWeighted(eng *parallel.Engine, h *core.Hypergraph, s int, o Options) ([]WeightedPair, error) {
	edges, nodes, perm := relabeled(h, o)
	ne := edges.NumRows()
	deg := edges.Degrees()
	tls := parallel.NewTLSFor(eng, func() []WeightedPair { return nil })
	cntTLS, release := countTLS(eng)
	o.forIndices(eng, ne, func(w, i int) {
		if deg[i] < s {
			return
		}
		cnt := getCount(eng, cntTLS, w)
		for _, v := range edges.Row(i) {
			for _, j := range nodes.Row(int(v)) {
				if int(j) > i && deg[j] >= s {
					cnt.Inc(j, 1)
				}
			}
		}
		buf := tls.Get(w)
		cnt.Range(func(j uint32, c int32) {
			if int(c) >= s {
				*buf = append(*buf, WeightedPair{U: perm[i], V: perm[j], Overlap: int(c)})
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	var out []WeightedPair
	tls.All(func(v *[]WeightedPair) { out = append(out, *v...) })
	return canonWeighted(out), nil
}

// QueueHashmapWeighted is Algorithm 1 retaining overlap strengths; like
// QueueHashmap it accepts any Input (bipartite, adjoin, renamed).
func QueueHashmapWeighted(eng *parallel.Engine, in Input, s int, o Options) ([]WeightedPair, error) {
	queue := orderQueue(eng, in.EdgeIDs(), in, o)
	wq := newWorkQueue(queue, queueGrain(eng, len(queue)))
	results := parallel.NewTLSFor(eng, func() []WeightedPair { return nil })
	cntTLS, release := countTLS(eng)
	drain(eng, wq, func(w int, e uint32) {
		if in.EdgeDegree(e) < s {
			return
		}
		cnt := getCount(eng, cntTLS, w)
		for _, v := range in.Incidence(e) {
			for _, f := range in.EdgesOf(v) {
				if f > e && in.EdgeDegree(f) >= s {
					cnt.Inc(f, 1)
				}
			}
		}
		buf := results.Get(w)
		cnt.Range(func(f uint32, c int32) {
			if int(c) >= s {
				*buf = append(*buf, WeightedPair{U: e, V: f, Overlap: int(c)})
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	var out []WeightedPair
	results.All(func(v *[]WeightedPair) { out = append(out, *v...) })
	return canonWeighted(out), nil
}

// canonWeighted normalizes weighted pairs: U < V, sorted, deduplicated.
func canonWeighted(pairs []WeightedPair) []WeightedPair {
	for i, e := range pairs {
		if e.U > e.V {
			pairs[i].U, pairs[i].V = e.V, e.U
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].U != pairs[b].U {
			return pairs[a].U < pairs[b].U
		}
		return pairs[a].V < pairs[b].V
	})
	out := pairs[:0]
	for i, e := range pairs {
		if i > 0 && e.U == pairs[i-1].U && e.V == pairs[i-1].V {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Unweight drops the strengths, producing a canonical plain pair list
// (nil for an empty input, matching the unweighted constructions).
func Unweight(pairs []WeightedPair) []sparse.Edge {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]sparse.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = sparse.Edge{U: p.U, V: p.V}
	}
	return out
}

// ToWeightedLineGraph materializes a weighted s-line graph: each arc carries
// weight 1/overlap, so shortest paths prefer strongly-overlapping hyperedge
// chains (strength-weighted s-distance).
func ToWeightedLineGraph(idSpace int, pairs []WeightedPair) *graph.Graph {
	arcs := make([]sparse.Edge, 0, 2*len(pairs))
	weights := make([]float64, 0, 2*len(pairs))
	for _, p := range pairs {
		w := 1.0 / float64(p.Overlap)
		arcs = append(arcs, sparse.Edge{U: p.U, V: p.V}, sparse.Edge{U: p.V, V: p.U})
		weights = append(weights, w, w)
	}
	csr := sparse.FromPairs(idSpace, idSpace, arcs, weights)
	g, err := graph.FromCSR(csr)
	if err != nil {
		panic("slinegraph: weighted line graph not square: " + err.Error())
	}
	return g
}
