package slinegraph

import (
	"nwhy/internal/core"
	"nwhy/internal/graph"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// WeightedPair is one s-line edge together with its strength: the exact
// overlap |e ∩ f|. Figure 5 of the paper draws s-line edges with width
// proportional to this strength; keeping it enables strength-weighted
// s-metrics (e.g. distances where strongly-overlapping hyperedges are
// closer).
//
// The weighted constructions are the kernel's exact-count emit mode — the
// same construct body as the unweighted ones, so there is no duplicated
// counting or drain loop here.
type WeightedPair struct {
	U, V    uint32
	Overlap int
}

// HashmapWeighted is the hashmap-counting construction retaining overlap
// strengths. It produces the same pair set as Hashmap plus the exact
// overlap count per pair.
func HashmapWeighted(eng *parallel.Engine, h *core.Hypergraph, s int, o Options) ([]WeightedPair, error) {
	o.Counter = HashmapCounter
	o.Schedule = DefaultSchedule
	return ConstructWeighted(eng, FromHypergraph(h), s, o)
}

// QueueHashmapWeighted is Algorithm 1 retaining overlap strengths; like
// QueueHashmap it accepts any Input (bipartite, adjoin, renamed).
func QueueHashmapWeighted(eng *parallel.Engine, in Input, s int, o Options) ([]WeightedPair, error) {
	o.Counter = HashmapCounter
	o.Schedule = QueueSchedule
	return ConstructWeighted(eng, in, s, o)
}

// canonWeighted normalizes weighted pairs: U < V, sorted, deduplicated.
func canonWeighted(eng *parallel.Engine, pairs []WeightedPair) []WeightedPair {
	for i, e := range pairs {
		if e.U > e.V {
			pairs[i].U, pairs[i].V = e.V, e.U
		}
	}
	parallel.RadixSort64On(eng, pairs, func(p WeightedPair) uint64 {
		return uint64(p.U)<<32 | uint64(p.V)
	})
	out := pairs[:0]
	for i, e := range pairs {
		if i > 0 && e.U == pairs[i-1].U && e.V == pairs[i-1].V {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Unweight drops the strengths, producing a canonical plain pair list
// (nil for an empty input, matching the unweighted constructions).
func Unweight(pairs []WeightedPair) []sparse.Edge {
	if len(pairs) == 0 {
		return nil
	}
	out := make([]sparse.Edge, len(pairs))
	for i, p := range pairs {
		out[i] = sparse.Edge{U: p.U, V: p.V}
	}
	return out
}

// ToWeightedLineGraph materializes a weighted s-line graph: each arc carries
// weight 1/overlap, so shortest paths prefer strongly-overlapping hyperedge
// chains (strength-weighted s-distance).
func ToWeightedLineGraph(idSpace int, pairs []WeightedPair) *graph.Graph {
	arcs := make([]sparse.Edge, 0, 2*len(pairs))
	weights := make([]float64, 0, 2*len(pairs))
	for _, p := range pairs {
		w := 1.0 / float64(p.Overlap)
		arcs = append(arcs, sparse.Edge{U: p.U, V: p.V}, sparse.Edge{U: p.V, V: p.U})
		weights = append(weights, w, w)
	}
	csr := sparse.FromPairs(idSpace, idSpace, arcs, weights)
	g, err := graph.FromCSR(csr)
	if err != nil {
		panic("slinegraph: weighted line graph not square: " + err.Error())
	}
	return g
}
