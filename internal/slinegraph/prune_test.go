package slinegraph

import (
	"context"
	"slices"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/unionfind"
)

// containmentHypergraph builds a containment-rich input: most hyperedges are
// proper subsets of a base toplex, the shape where toplex pruning bites.
func containmentHypergraph(seed int64) *core.Hypergraph {
	return gen.Containment(gen.ContainmentConfig{
		NumBase: 30, NumNodes: 120, BaseSize: 10, SubsPerBase: 4,
		MemberSkew: 0.3, Seed: seed,
	})
}

func pruneTestInputs() []*core.Hypergraph {
	return []*core.Hypergraph{
		randomHypergraph(40, 25, 6, 11),
		containmentHypergraph(7),
	}
}

// TestConstructPruneInvariant pins the materializing entry points: every
// prune level yields the identical canonical pair list, because levels that
// would drop pairs (connectivity, toplex) clamp to the degree prefilter
// unless a components builder arms the forest.
func TestConstructPruneInvariant(t *testing.T) {
	for _, h := range pruneTestInputs() {
		in := FromHypergraph(h)
		for s := 1; s <= 4; s++ {
			base, err := Construct(teng, in, s, Options{Prune: NoPrune})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []Prune{AutoPrune, DegreePrune, ConnectivityPrune, ToplexPrune} {
				got, err := Construct(teng, in, s, Options{Prune: p})
				if err != nil {
					t.Fatal(err)
				}
				if !slices.Equal(got, base) {
					t.Fatalf("s=%d prune=%v: %d pairs, want %d (NoPrune)", s, p, len(got), len(base))
				}
			}
		}
	}
}

// TestSComponentsDirectPruneLevels pins the direct components builder across
// prune levels: the degree prefilter and the connected short-circuit must
// not change a single label relative to the unpruned baseline.
func TestSComponentsDirectPruneLevels(t *testing.T) {
	for _, h := range pruneTestInputs() {
		in := FromHypergraph(h)
		for s := 0; s <= 4; s++ {
			want := tSComponentsDirect(in, s, Options{Prune: NoPrune})
			for _, p := range []Prune{AutoPrune, DegreePrune, ConnectivityPrune} {
				got := tSComponentsDirect(in, s, Options{Prune: p})
				if !slices.Equal(got, want) {
					t.Fatalf("s=%d prune=%v: labels diverge from NoPrune baseline", s, p)
				}
			}
		}
	}
}

// TestSComponentsToplexMatchesDirect is the differential pin of the toplex
// path: labels must be bit-identical to SComponentsDirect across every
// counter x schedule combination, on random and containment-rich inputs,
// including the s=0 floor case.
func TestSComponentsToplexMatchesDirect(t *testing.T) {
	counters := []Counter{AutoCounter, HashmapCounter, DenseCounter, IntersectionCounter}
	schedules := []Schedule{DefaultSchedule, BlockedSchedule, CyclicSchedule, QueueSchedule}
	for _, h := range pruneTestInputs() {
		in := FromHypergraph(h)
		tops, cover := core.ToplexCover(teng, h)
		for s := 0; s <= 4; s++ {
			want := tSComponentsDirect(in, s, Options{Prune: NoPrune})
			for _, ctr := range counters {
				for _, sched := range schedules {
					got, err := SComponentsToplex(teng, in, s, tops, cover,
						Options{Counter: ctr, Schedule: sched})
					if err != nil {
						t.Fatal(err)
					}
					if !slices.Equal(got, want) {
						t.Fatalf("s=%d counter=%v schedule=%v: toplex labels diverge from direct",
							s, ctr, sched)
					}
				}
			}
		}
	}
}

// TestSComponentsToplexOnlyToplexes covers the degenerate subset: when every
// hyperedge is maximal the toplex path is the direct path plus a no-op
// expansion.
func TestSComponentsToplexOnlyToplexes(t *testing.T) {
	h := paperHypergraph()
	tops, cover := core.ToplexCover(teng, h)
	if len(tops) != h.NumEdges() {
		t.Fatalf("paper example should be all-toplex, got %d of %d", len(tops), h.NumEdges())
	}
	for s := 1; s <= 2; s++ {
		want := tSComponentsDirect(FromHypergraph(h), s, Options{})
		got, err := SComponentsToplex(teng, FromHypergraph(h), s, tops, cover, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("s=%d: all-toplex labels diverge", s)
		}
	}
}

// TestPrunedComponentsSurfaceCancellation: both pruned builders must surface
// a pre-cancelled context as an error, not hang or return partial labels.
func TestPrunedComponentsSurfaceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h := containmentHypergraph(3)
	in := FromHypergraph(h)
	ceng := teng.WithContext(ctx)
	if _, err := SComponentsDirect(ceng, in, 2, Options{}); err == nil {
		t.Fatal("cancelled SComponentsDirect returned nil error")
	}
	tops, cover := core.ToplexCover(teng, h)
	if _, err := SComponentsToplex(ceng, in, 2, tops, cover, Options{}); err == nil {
		t.Fatal("cancelled SComponentsToplex returned nil error")
	}
}

// TestResolvePruneClamps pins the resolution policy table.
func TestResolvePruneClamps(t *testing.T) {
	forest := unionfind.New(8)
	cases := []struct {
		name string
		o    Options
		want Prune
	}{
		{"auto threshold", Options{}, DegreePrune},
		{"auto exact", Options{Intent: IntentExact}, DegreePrune},
		{"auto connectivity+forest", Options{Intent: IntentConnectivity, forest: forest}, ConnectivityPrune},
		{"auto connectivity+subset", Options{Intent: IntentConnectivity, forest: forest, Subset: []uint32{0}}, ToplexPrune},
		{"connectivity without forest clamps", Options{Prune: ConnectivityPrune}, DegreePrune},
		{"toplex without forest clamps", Options{Prune: ToplexPrune}, DegreePrune},
		{"toplex without subset clamps", Options{Prune: ToplexPrune, Intent: IntentConnectivity, forest: forest}, ConnectivityPrune},
		{"none stays none", Options{Prune: NoPrune, Intent: IntentConnectivity, forest: forest}, NoPrune},
	}
	for _, c := range cases {
		if got := resolvePrune(c.o); got != c.want {
			t.Errorf("%s: resolvePrune = %v, want %v", c.name, got, c.want)
		}
	}
}

// FuzzPruneEquivalence fuzzes the full prune arsenal against the unpruned
// baseline on random hypergraphs: pair lists must be invariant and
// component labels bit-identical through both the short-circuit and the
// toplex path.
func FuzzPruneEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(42), uint8(0))
	f.Add(int64(-7), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, sRaw uint8) {
		s := int(sRaw % 5)
		h := randomHypergraph(30, 18, 5, seed)
		in := FromHypergraph(h)

		basePairs, err := Construct(teng, in, s, Options{Prune: NoPrune})
		if err != nil {
			t.Fatal(err)
		}
		degPairs, err := Construct(teng, in, s, Options{Prune: DegreePrune})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(degPairs, basePairs) {
			t.Fatalf("seed=%d s=%d: degree-pruned pairs diverge", seed, s)
		}

		want := tSComponentsDirect(in, s, Options{Prune: NoPrune})
		if got := tSComponentsDirect(in, s, Options{}); !slices.Equal(got, want) {
			t.Fatalf("seed=%d s=%d: short-circuit labels diverge", seed, s)
		}
		tops, cover := core.ToplexCover(teng, h)
		tgot, err := SComponentsToplex(teng, in, s, tops, cover, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(tgot, want) {
			t.Fatalf("seed=%d s=%d: toplex labels diverge", seed, s)
		}
	})
}
