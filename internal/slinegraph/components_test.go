package slinegraph

import (
	"testing"
	"testing/quick"

	"nwhy/internal/core"
	"nwhy/internal/graph"
)

// componentsViaMaterialize is the reference: build the s-line graph, run CC.
func componentsViaMaterialize(h *core.Hypergraph, s int) []uint32 {
	lg := ToLineGraph(h.NumEdges(), tHashmap(h, s, Options{}))
	return graph.CanonicalizeComponents(graph.CCAfforest(teng, lg))
}

func TestSComponentsDirectMatchesMaterialized(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(40, 25, 6, seed)
		for s := 1; s <= 3; s++ {
			want := componentsViaMaterialize(h, s)
			got := tSComponentsDirect(FromHypergraph(h), s, Options{})
			if len(got) != len(want) {
				return false
			}
			for e := range want {
				if got[e] != want[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSComponentsDirectPaperExample(t *testing.T) {
	h := paperHypergraph()
	// s=1: the line graph is a 4-cycle -> one component labeled 0.
	got := tSComponentsDirect(FromHypergraph(h), 1, Options{})
	for e := 0; e < 4; e++ {
		if got[e] != 0 {
			t.Fatalf("s=1 components = %v", got[:4])
		}
	}
	// s=2: no s-line edges -> all singletons.
	got2 := tSComponentsDirect(FromHypergraph(h), 2, Options{})
	for e := 0; e < 4; e++ {
		if got2[e] != uint32(e) {
			t.Fatalf("s=2 components = %v", got2[:4])
		}
	}
}

func TestSComponentsDirectOnAdjoin(t *testing.T) {
	h := randomHypergraph(30, 20, 5, 9)
	a := core.Adjoin(teng, h)
	want := tSComponentsDirect(FromHypergraph(h), 2, Options{})
	got := tSComponentsDirect(FromAdjoin(a), 2, Options{})
	// Adjoin ID space is larger, but the hyperedge prefix must agree.
	for e := 0; e < h.NumEdges(); e++ {
		if got[e] != want[e] {
			t.Fatalf("adjoin direct components differ at %d", e)
		}
	}
}

func TestSComponentsFrontierMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		h := randomHypergraph(40, 25, 6, seed)
		for s := 1; s <= 3; s++ {
			want := tSComponentsDirect(FromHypergraph(h), s, Options{})
			got, err := SComponentsFrontier(teng, FromHypergraph(h), s, Options{})
			if err != nil || len(got) != len(want) {
				return false
			}
			for e := range want {
				if got[e] != want[e] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSComponentsFrontierOnAdjoin(t *testing.T) {
	h := randomHypergraph(30, 20, 5, 9)
	a := core.Adjoin(teng, h)
	want := tSComponentsDirect(FromHypergraph(h), 2, Options{})
	got, err := SComponentsFrontier(teng, FromAdjoin(a), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Adjoin ID space is larger, but the hyperedge prefix must agree.
	for e := 0; e < h.NumEdges(); e++ {
		if got[e] != want[e] {
			t.Fatalf("adjoin frontier components differ at %d", e)
		}
	}
}

func TestSComponentsDirectDeterministic(t *testing.T) {
	h := randomHypergraph(50, 30, 6, 4)
	a := tSComponentsDirect(FromHypergraph(h), 2, Options{})
	for i := 0; i < 5; i++ {
		b := tSComponentsDirect(FromHypergraph(h), 2, Options{Partition: CyclicPartition})
		for e := range a {
			if a[e] != b[e] {
				t.Fatal("direct components not deterministic across partitions")
			}
		}
	}
}
