package slinegraph

import (
	"sync"

	"nwhy/internal/countmap"
	"nwhy/internal/frontier"
	"nwhy/internal/parallel"
	"nwhy/internal/unionfind"
)

// SComponentsDirect computes the s-connected components of the hyperedges
// WITHOUT materializing the s-line graph edge list: whenever the
// single-phase queue algorithm (Algorithm 1's traversal) certifies an
// s-incident pair, the pair is unioned into a concurrent disjoint-set
// forest instead of appended to an edge list. For component queries this
// saves the memory of the (often near-quadratic) s-line edge list — the
// usability bottleneck the paper attributes to clique expansion.
//
// Returned labels cover the full ID space [0, in.IDSpace()); hyperedges in
// the same s-component share the minimum member ID, every other ID is a
// singleton.
func SComponentsDirect(eng *parallel.Engine, in Input, s int, o Options) ([]uint32, error) {
	forest, err := SComponentsForest(eng, in, s, o)
	if err != nil {
		return nil, err
	}
	return forest.Labels(), nil
}

// SComponentsToplex computes the s-connected components through the
// toplex-only construction, the companion paper's strongest connectivity
// cut: the kernel runs over the maximal hyperedges only (tops, with the
// eligibility bitset confining candidates to the same subset), then every
// non-maximal hyperedge clearing the degree filter is attached to its
// containment witness cover[e] (both from core.ToplexCover).
//
// Soundness of the expansion: e ⊆ cover[e] means |e ∩ cover[e]| = deg(e),
// so an eligible non-toplex s-overlaps each link of its cover chain, which
// terminates at a toplex of no smaller degree. Completeness: if e₁ and e₂
// s-overlap, their covering toplexes T₁ ⊇ e₁ and T₂ ⊇ e₂ satisfy
// |T₁ ∩ T₂| ≥ |e₁ ∩ e₂| ≥ s, so the toplex-restricted kernel connects
// them directly. The resulting partition — and the minimum-member labels —
// is therefore bit-identical to SComponentsDirect over the full set.
func SComponentsToplex(eng *parallel.Engine, in Input, s int, tops, cover []uint32, o Options) ([]uint32, error) {
	forest := unionfind.New(in.IDSpace())
	if o.Schedule == DefaultSchedule {
		o.Schedule = QueueSchedule
	}
	o.Intent = IntentConnectivity
	o.Prune = ToplexPrune
	o.Subset = tops
	o.forest = forest
	if err := construct(eng, in, s, o, false, func(_ int, e, f uint32, _ int32) {
		forest.Union(e, f)
	}); err != nil {
		return nil, err
	}
	// Expand: attach eligible non-maximal hyperedges to their covers. The
	// max(s, 1) floor keeps s = 0 parity with the direct kernel, which only
	// ever connects hyperedges sharing at least one node.
	floor := max(s, 1)
	eng.ForN(len(cover), func(_, lo, hi int) {
		for e := lo; e < hi; e++ {
			if c := cover[e]; c != uint32(e) && in.EdgeDegree(uint32(e)) >= floor {
				forest.Union(uint32(e), c)
			}
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	forest.Compress()
	return forest.Labels(), nil
}

// SComponentsFrontier computes the s-connected components of the hyperedges
// by frontier-parallel minimum-label propagation over the IMPLICIT s-line
// adjacency: the traversal runs on frontier.EdgeMap like every other kernel,
// but the adjacency rows are recomputed on demand with the hashmap-counting
// walk instead of being materialized. Compared to SComponentsDirect this
// trades the union-find forest for the shared traversal substrate (frontier
// scheduling, per-worker buffers, one merge path); compared to
// materialize-then-CC it never stores the (often near-quadratic) s-line
// edge list, at the cost of recomputing the rows of re-activated hyperedges
// across rounds.
//
// Returned labels cover the full ID space [0, in.IDSpace()); hyperedges in
// the same s-component share the minimum member ID, every other ID is a
// singleton.
func SComponentsFrontier(eng *parallel.Engine, in Input, s int, o Options) ([]uint32, error) {
	n := in.IDSpace()
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	// Only eligible hyperedges start active; everything else is a singleton.
	init := orderQueue(eng, in.EdgeIDs(), in, o)
	k := 0
	for _, e := range init {
		if in.EdgeDegree(e) >= s {
			init[k] = e
			k++
		}
	}
	// The implicit adjacency: s-neighbors of e via the two-level incidence
	// walk. Scratch maps are pooled because Adj carries no worker identity;
	// the returned row must outlive the scratch, so it is copied out before
	// the scratch is recycled.
	pool := sync.Pool{New: func() any { return countmap.New(64) }}
	row := func(u int) []uint32 {
		e := uint32(u)
		cnt := pool.Get().(*countmap.Map)
		cnt.Clear()
		for _, v := range in.Incidence(e) {
			for _, f := range in.EdgesOf(v) {
				if f != e && in.EdgeDegree(f) >= s {
					cnt.Inc(f, 1)
				}
			}
		}
		out := make([]uint32, 0, cnt.Len())
		cnt.Range(func(f uint32, c int32) {
			if int(c) >= s {
				out = append(out, f)
			}
		})
		pool.Put(cnt)
		return out
	}
	st := frontier.NewState(0, frontier.ForcePush) // pull would scan all IDs per round
	st.Dedup = true
	f := frontier.FromList(n, init[:k])
	for !f.Empty() && !eng.Cancelled() {
		f = st.EdgeMap(eng, f, n, row, nil,
			func(u, t uint32) bool {
				return parallel.MinU32(&comp[t], parallel.LoadU32(&comp[u]))
			}, nil)
	}
	f.Release(eng)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return comp, nil
}
