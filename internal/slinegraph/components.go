package slinegraph

import (
	"nwhy/internal/parallel"
	"nwhy/internal/unionfind"
)

// SComponentsDirect computes the s-connected components of the hyperedges
// WITHOUT materializing the s-line graph edge list: whenever the
// single-phase queue algorithm (Algorithm 1's traversal) certifies an
// s-incident pair, the pair is unioned into a concurrent disjoint-set
// forest instead of appended to an edge list. For component queries this
// saves the memory of the (often near-quadratic) s-line edge list — the
// usability bottleneck the paper attributes to clique expansion.
//
// Returned labels cover the full ID space [0, in.IDSpace()); hyperedges in
// the same s-component share the minimum member ID, every other ID is a
// singleton.
func SComponentsDirect(eng *parallel.Engine, in Input, s int, o Options) ([]uint32, error) {
	queue := orderQueue(eng, in.EdgeIDs(), in, o)
	forest := unionfind.New(in.IDSpace())
	wq := newWorkQueue(queue, queueGrain(eng, len(queue)))
	cntTLS, release := countTLS(eng)
	drain(eng, wq, func(w int, e uint32) {
		if in.EdgeDegree(e) < s {
			return
		}
		cnt := getCount(eng, cntTLS, w)
		for _, v := range in.Incidence(e) {
			for _, f := range in.EdgesOf(v) {
				if f > e && in.EdgeDegree(f) >= s {
					cnt.Inc(f, 1)
				}
			}
		}
		cnt.Range(func(f uint32, c int32) {
			if int(c) >= s {
				forest.Union(e, f)
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	forest.Compress()
	return forest.Labels(), nil
}
