package slinegraph

import (
	"math/rand"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// TestConstructPermutationInvariant: relabeling both ID spaces of the
// hypergraph with arbitrary permutations and constructing the s-line graph
// yields exactly the original pair set once the hyperedge IDs are mapped
// back — the s-overlap kernel is permutation-invariant modulo relabeling.
func TestConstructPermutationInvariant(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	graphs := []*core.Hypergraph{
		gen.Uniform(100, 70, 4, 1),
		gen.BipartitePowerLaw(150, 100, 700, 1.6, 2),
		gen.Community(gen.CommunityConfig{
			NumEdges: 120, NumNodes: 90, MeanEdgeSize: 5, SizeSkew: 1.5, MemberSkew: 0.3, Seed: 3,
		}),
	}
	rng := rand.New(rand.NewSource(7))
	shuffled := func(n int) []uint32 {
		p := make([]uint32, n)
		for i := range p {
			p[i] = uint32(i)
		}
		rng.Shuffle(n, func(a, b int) { p[a], p[b] = p[b], p[a] })
		return p
	}
	for gi, h := range graphs {
		edgePerm := shuffled(h.NumEdges())
		nodePerm := shuffled(h.NumNodes())
		rh := core.Relabel(h, edgePerm, nodePerm)
		if err := rh.Validate(); err != nil {
			t.Fatalf("graph %d: relabeled hypergraph invalid: %v", gi, err)
		}
		for _, s := range []int{1, 2, 3} {
			want, err := Construct(eng, FromHypergraph(h), s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Construct(eng, FromHypergraph(rh), s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("graph %d s=%d: %d pairs on relabeled input, want %d", gi, s, len(got), len(want))
			}
			// Map the relabeled pairs back to the original hyperedge IDs and
			// re-canonicalize; the two sets must be identical.
			back := make([]sparse.Edge, len(got))
			for i, p := range got {
				back[i] = sparse.Edge{U: edgePerm[p.U], V: edgePerm[p.V]}
			}
			back = canonPairs(eng, back)
			for i := range want {
				if back[i] != want[i] {
					t.Fatalf("graph %d s=%d: pair %d is %v, want %v", gi, s, i, back[i], want[i])
				}
			}
			// Component structure must also be permutation-invariant: same
			// partition of hyperedges modulo the relabeling.
			wantLab, err := SComponentsDirect(eng, FromHypergraph(h), s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			gotLab, err := SComponentsDirect(eng, FromHypergraph(rh), s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			edgeInv := sparse.InvertPerm(edgePerm)
			canon := make(map[uint32]uint32)
			for e := 0; e < h.NumEdges(); e++ {
				rep, ok := canon[wantLab[e]]
				if !ok {
					canon[wantLab[e]] = gotLab[edgeInv[e]]
					continue
				}
				if gotLab[edgeInv[e]] != rep {
					t.Fatalf("graph %d s=%d: component split by relabeling at hyperedge %d", gi, s, e)
				}
			}
			if distinct(wantLab) != distinct(gotLab) {
				t.Fatalf("graph %d s=%d: component counts differ", gi, s)
			}
		}
	}
}

func distinct(labels []uint32) int {
	seen := make(map[uint32]struct{}, len(labels))
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}
