package slinegraph

import (
	"nwhy/internal/core"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// Naive computes the s-line graph by set-intersecting every hyperedge pair:
// the O(|E|² · Δ) baseline every other algorithm is measured against.
func Naive(eng *parallel.Engine, h *core.Hypergraph, s int) ([]sparse.Edge, error) {
	ne := h.NumEdges()
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	eng.ForN(ne, func(w, lo, hi int) {
		buf := tls.Get(w)
		for i := lo; i < hi; i++ {
			if h.EdgeDegree(i) < s {
				continue
			}
			ri := h.EdgeIncidence(i)
			for j := i + 1; j < ne; j++ {
				if h.EdgeDegree(j) < s {
					continue
				}
				if _, ok := countCommonGE(ri, h.EdgeIncidence(j), s); ok {
					*buf = append(*buf, sparse.Edge{U: uint32(i), V: uint32(j)})
				}
			}
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, tls), nil
}

// Intersection is the set-intersection heuristic of Liu et al. (HiPC'21):
// for each eligible hyperedge, collect the candidate neighbors j > i once
// (deduplicated with a per-worker stamp array), skip those that cannot reach
// s by the degree filter, and set-intersect incidence lists with early
// termination. This and Hashmap are the non-queue algorithms Figure 9
// compares the queue-based ones against.
func Intersection(eng *parallel.Engine, h *core.Hypergraph, s int, o Options) ([]sparse.Edge, error) {
	o.Counter = IntersectionCounter
	o.Schedule = DefaultSchedule
	return Construct(eng, FromHypergraph(h), s, o)
}

// Hashmap is the hashmap-counting algorithm of Liu et al. (IPDPS'22): for
// each hyperedge, tally overlap counts with every later hyperedge through
// the two-level incidence walk, then emit the pairs whose tally reaches s.
// One pass; no set intersections.
func Hashmap(eng *parallel.Engine, h *core.Hypergraph, s int, o Options) ([]sparse.Edge, error) {
	o.Counter = HashmapCounter
	o.Schedule = DefaultSchedule
	return Construct(eng, FromHypergraph(h), s, o)
}

// ensemble is the multi-threshold emit mode over the kernel: one exact-count
// pass at the minimum threshold, with each surviving pair emitted into every
// bucket whose threshold its overlap meets.
func ensemble(eng *parallel.Engine, in Input, ss []int, o Options) (map[int][]sparse.Edge, error) {
	if len(ss) == 0 {
		return nil, eng.Err()
	}
	smin := ss[0]
	for _, s := range ss {
		if s < smin {
			smin = s
		}
	}
	type buckets map[int][]sparse.Edge
	tls := parallel.NewTLSFor(eng, func() buckets {
		b := buckets{}
		for _, s := range ss {
			b[s] = nil
		}
		return b
	})
	if err := construct(eng, in, smin, o, true, func(w int, e, f uint32, c int32) {
		b := *tls.Get(w)
		for _, s := range ss {
			if int(c) >= s {
				b[s] = append(b[s], sparse.Edge{U: e, V: f})
			}
		}
	}); err != nil {
		return nil, err
	}
	out := map[int][]sparse.Edge{}
	for _, s := range ss {
		var all []sparse.Edge
		tls.All(func(b *buckets) { all = append(all, (*b)[s]...) })
		out[s] = canonPairs(eng, all)
	}
	return out, nil
}

// Ensemble computes the s-line graphs for every s in ss in a single
// counting pass (Liu et al., IPDPS'22): overlap tallies are computed once
// and each pair is emitted into every bucket whose threshold it meets.
func Ensemble(eng *parallel.Engine, h *core.Hypergraph, ss []int, o Options) (map[int][]sparse.Edge, error) {
	o.Counter = HashmapCounter
	o.Schedule = DefaultSchedule
	return ensemble(eng, FromHypergraph(h), ss, o)
}

// EnsembleQueue computes the s-line graphs for every s in ss in one
// queue-driven counting pass — the ensemble construction generalized to
// arbitrary ID spaces via the Input interface, like Algorithm 1.
func EnsembleQueue(eng *parallel.Engine, in Input, ss []int, o Options) (map[int][]sparse.Edge, error) {
	o.Counter = HashmapCounter
	o.Schedule = QueueSchedule
	return ensemble(eng, in, ss, o)
}

// CliqueExpansion computes the clique-expansion graph of h: each hyperedge
// becomes a clique over its hypernodes. Per the paper, this is exactly the
// 1-line graph of the dual hypergraph, so it reuses the Hashmap
// construction on H* (Listing 2's to_two_graph_hashmap_cyclic(hypernodes,
// hyperedges, ..., 1, ...)). Vertex IDs of the result are hypernode IDs.
func CliqueExpansion(eng *parallel.Engine, h *core.Hypergraph, o Options) ([]sparse.Edge, error) {
	return Hashmap(eng, h.Dual(), 1, o)
}
