package slinegraph

import (
	"nwhy/internal/core"
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// Naive computes the s-line graph by set-intersecting every hyperedge pair:
// the O(|E|² · Δ) baseline every other algorithm is measured against.
func Naive(eng *parallel.Engine, h *core.Hypergraph, s int) ([]sparse.Edge, error) {
	ne := h.NumEdges()
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	eng.ForN(ne, func(w, lo, hi int) {
		buf := tls.Get(w)
		for i := lo; i < hi; i++ {
			if h.EdgeDegree(i) < s {
				continue
			}
			ri := h.EdgeIncidence(i)
			for j := i + 1; j < ne; j++ {
				if h.EdgeDegree(j) < s {
					continue
				}
				if _, ok := countCommonGE(ri, h.EdgeIncidence(j), s); ok {
					*buf = append(*buf, sparse.Edge{U: uint32(i), V: uint32(j)})
				}
			}
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, tls), nil
}

// relabeled applies Options.Relabel to the biadjacency pair, returning the
// (possibly) relabeled CSRs and the perm mapping relabeled IDs back to
// original ones.
func relabeled(h *core.Hypergraph, o Options) (edges, nodes *sparse.CSR, perm []uint32) {
	return sparse.RelabelHyperedges(h.Edges, h.Nodes, o.Relabel)
}

// Intersection is the set-intersection heuristic of Liu et al. (HiPC'21):
// for each eligible hyperedge, collect the candidate neighbors j > i once
// (deduplicated with a per-worker stamp array), skip those that cannot reach
// s by the degree filter, and set-intersect incidence lists with early
// termination. This and Hashmap are the non-queue algorithms Figure 9
// compares the queue-based ones against.
func Intersection(eng *parallel.Engine, h *core.Hypergraph, s int, o Options) ([]sparse.Edge, error) {
	edges, nodes, perm := relabeled(h, o)
	ne := edges.NumRows()
	deg := edges.Degrees()
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	type scratch struct {
		stamp []uint32 // stamp[j] == i+1 means j already considered for i
		cand  []uint32
	}
	scratchTLS := parallel.NewTLSFor(eng, func() scratch { return scratch{stamp: make([]uint32, ne)} })
	o.forIndices(eng, ne, func(w, i int) {
		if deg[i] < s {
			return
		}
		sc := scratchTLS.Get(w)
		buf := tls.Get(w)
		sc.cand = sc.cand[:0]
		ri := edges.Row(i)
		for _, v := range ri {
			for _, j := range nodes.Row(int(v)) {
				if int(j) <= i || deg[j] < s || sc.stamp[j] == uint32(i)+1 {
					continue
				}
				sc.stamp[j] = uint32(i) + 1
				sc.cand = append(sc.cand, j)
			}
		}
		for _, j := range sc.cand {
			if _, ok := countCommonGE(ri, edges.Row(int(j)), s); ok {
				*buf = append(*buf, sparse.Edge{U: perm[i], V: perm[j]})
			}
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, tls), nil
}

// Hashmap is the hashmap-counting algorithm of Liu et al. (IPDPS'22): for
// each hyperedge, tally overlap counts with every later hyperedge through
// the two-level incidence walk, then emit the pairs whose tally reaches s.
// One pass; no set intersections.
func Hashmap(eng *parallel.Engine, h *core.Hypergraph, s int, o Options) ([]sparse.Edge, error) {
	edges, nodes, perm := relabeled(h, o)
	ne := edges.NumRows()
	deg := edges.Degrees()
	tls := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil })
	cntTLS, release := countTLS(eng)
	o.forIndices(eng, ne, func(w, i int) {
		if deg[i] < s {
			return
		}
		cnt := getCount(eng, cntTLS, w)
		for _, v := range edges.Row(i) {
			for _, j := range nodes.Row(int(v)) {
				if int(j) > i && deg[j] >= s {
					cnt.Inc(j, 1)
				}
			}
		}
		buf := tls.Get(w)
		cnt.Range(func(j uint32, c int32) {
			if int(c) >= s {
				*buf = append(*buf, sparse.Edge{U: perm[i], V: perm[j]})
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, tls), nil
}

// Ensemble computes the s-line graphs for every s in ss in a single
// counting pass (Liu et al., IPDPS'22): overlap tallies are computed once
// and each pair is emitted into every bucket whose threshold it meets.
func Ensemble(eng *parallel.Engine, h *core.Hypergraph, ss []int, o Options) (map[int][]sparse.Edge, error) {
	if len(ss) == 0 {
		return nil, eng.Err()
	}
	smin := ss[0]
	for _, s := range ss {
		if s < smin {
			smin = s
		}
	}
	edges, nodes, perm := relabeled(h, o)
	ne := edges.NumRows()
	deg := edges.Degrees()
	type buckets map[int][]sparse.Edge
	tls := parallel.NewTLSFor(eng, func() buckets {
		b := buckets{}
		for _, s := range ss {
			b[s] = nil
		}
		return b
	})
	cntTLS, release := countTLS(eng)
	o.forIndices(eng, ne, func(w, i int) {
		if deg[i] < smin {
			return
		}
		cnt := getCount(eng, cntTLS, w)
		for _, v := range edges.Row(i) {
			for _, j := range nodes.Row(int(v)) {
				if int(j) > i && deg[j] >= smin {
					cnt.Inc(j, 1)
				}
			}
		}
		b := *tls.Get(w)
		cnt.Range(func(j uint32, c int32) {
			for _, s := range ss {
				if int(c) >= s {
					b[s] = append(b[s], sparse.Edge{U: perm[i], V: perm[j]})
				}
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	out := map[int][]sparse.Edge{}
	for _, s := range ss {
		var all []sparse.Edge
		tls.All(func(b *buckets) { all = append(all, (*b)[s]...) })
		out[s] = canonPairs(eng, all)
	}
	return out, nil
}

// EnsembleQueue computes the s-line graphs for every s in ss in one
// queue-driven counting pass — the ensemble construction generalized to
// arbitrary ID spaces via the Input interface, like Algorithm 1.
func EnsembleQueue(eng *parallel.Engine, in Input, ss []int, o Options) (map[int][]sparse.Edge, error) {
	if len(ss) == 0 {
		return nil, eng.Err()
	}
	smin := ss[0]
	for _, s := range ss {
		if s < smin {
			smin = s
		}
	}
	queue := orderQueue(eng, in.EdgeIDs(), in, o)
	wq := newWorkQueue(queue, queueGrain(eng, len(queue)))
	type buckets map[int][]sparse.Edge
	tls := parallel.NewTLSFor(eng, func() buckets {
		b := buckets{}
		for _, s := range ss {
			b[s] = nil
		}
		return b
	})
	cntTLS, release := countTLS(eng)
	drain(eng, wq, func(w int, e uint32) {
		if in.EdgeDegree(e) < smin {
			return
		}
		cnt := getCount(eng, cntTLS, w)
		for _, v := range in.Incidence(e) {
			for _, f := range in.EdgesOf(v) {
				if f > e && in.EdgeDegree(f) >= smin {
					cnt.Inc(f, 1)
				}
			}
		}
		b := *tls.Get(w)
		cnt.Range(func(f uint32, c int32) {
			for _, s := range ss {
				if int(c) >= s {
					b[s] = append(b[s], sparse.Edge{U: e, V: f})
				}
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	out := map[int][]sparse.Edge{}
	for _, s := range ss {
		var all []sparse.Edge
		tls.All(func(b *buckets) { all = append(all, (*b)[s]...) })
		out[s] = canonPairs(eng, all)
	}
	return out, nil
}

// CliqueExpansion computes the clique-expansion graph of h: each hyperedge
// becomes a clique over its hypernodes. Per the paper, this is exactly the
// 1-line graph of the dual hypergraph, so it reuses the Hashmap
// construction on H* (Listing 2's to_two_graph_hashmap_cyclic(hypernodes,
// hyperedges, ..., 1, ...)). Vertex IDs of the result are hypernode IDs.
func CliqueExpansion(eng *parallel.Engine, h *core.Hypergraph, o Options) ([]sparse.Edge, error) {
	return Hashmap(eng, h.Dual(), 1, o)
}
