package slinegraph

import (
	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// The paper's queue-based algorithms, expressed as kernel wrappers pinning
// the schedule axis to the dynamic work queue (parallel.WorkQueue, promoted
// out of this package). Algorithm 2's two phases — enqueue candidate pairs,
// then set-intersect each — are fused into the kernel's single pass with an
// inner intersection per candidate: the pair queue becomes the per-worker
// candidate list of the intersection counter, and the result is identical.

// orderQueue applies the Options to the work queue contents: relabel-by-
// degree becomes a simple sort of the queue (no physical CSR relabeling
// needed — the versatility argument for the queue-based algorithms), and
// cyclic partitioning becomes a round-robin interleave of the queue order.
func orderQueue(eng *parallel.Engine, queue []uint32, in Input, o Options) []uint32 {
	queue = sortByDegree(queue, in, o.Relabel)
	if o.Partition == CyclicPartition {
		bins := o.NumBins
		if bins <= 0 {
			bins = 4 * eng.NumWorkers()
		}
		if bins > len(queue) {
			bins = len(queue)
		}
		if bins > 1 {
			out := make([]uint32, 0, len(queue))
			for b := 0; b < bins; b++ {
				for i := b; i < len(queue); i += bins {
					out = append(out, queue[i])
				}
			}
			copy(queue, out)
		}
	}
	return queue
}

// QueueHashmap is the paper's Algorithm 1: a single-phase queue-based
// s-line-graph construction using hashmap counting. All hyperedge IDs —
// original, permuted, or adjoin shared-space — are enqueued into a work
// queue; workers fetch IDs, tally overlap counts against every
// higher-ID neighbor through the two-level incidence walk, and emit pairs
// whose tally reaches s. Enqueuing is linear in |E|, so the complexity
// matches the non-queue Hashmap algorithm.
func QueueHashmap(eng *parallel.Engine, in Input, s int, o Options) ([]sparse.Edge, error) {
	o.Counter = HashmapCounter
	o.Schedule = QueueSchedule
	return Construct(eng, in, s, o)
}

// QueueIntersection is the paper's Algorithm 2: queue-based s-line-graph
// construction via candidate set-intersection. Candidate pairs are
// deduplicated per source hyperedge with a stamp array and each candidate's
// incidence list is sorted-merge intersected with e's, short-circuiting at
// s common hypernodes (the kernel fuses the paper's two phases into one
// pass; the emitted pair set is identical).
func QueueIntersection(eng *parallel.Engine, in Input, s int, o Options) ([]sparse.Edge, error) {
	o.Counter = IntersectionCounter
	o.Schedule = QueueSchedule
	return Construct(eng, in, s, o)
}
