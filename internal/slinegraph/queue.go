package slinegraph

import (
	"sort"
	"sync"
	"sync/atomic"

	"nwhy/internal/parallel"
	"nwhy/internal/sparse"
)

// workQueue is the shared work queue at the heart of the paper's Algorithms
// 1 and 2: items are enqueued up front and workers repeatedly fetch chunks
// with an atomic cursor until the queue drains. Fetching is dynamic, so the
// load balances regardless of how work is distributed across items.
type workQueue[T any] struct {
	items  []T
	cursor atomic.Int64
	grain  int
}

func newWorkQueue[T any](items []T, grain int) *workQueue[T] {
	if grain < 1 {
		grain = 1
	}
	return &workQueue[T]{items: items, grain: grain}
}

// next returns the next chunk of work, or nil when the queue is drained.
func (q *workQueue[T]) next() []T {
	lo := q.cursor.Add(int64(q.grain)) - int64(q.grain)
	if lo >= int64(len(q.items)) {
		return nil
	}
	hi := lo + int64(q.grain)
	if hi > int64(len(q.items)) {
		hi = int64(len(q.items))
	}
	return q.items[lo:hi]
}

// drain runs body over every queue item using all of eng's workers. A
// cancelled engine stops fetching at the next chunk boundary, leaving the
// rest of the queue unprocessed; callers surface eng.Err().
func drain[T any](eng *parallel.Engine, q *workQueue[T], body func(worker int, item T)) {
	var wg sync.WaitGroup
	for w := 0; w < eng.NumWorkers(); w++ {
		wg.Add(1)
		eng.Go(func(worker int) {
			for !eng.Cancelled() {
				chunk := q.next()
				if chunk == nil {
					return
				}
				for _, it := range chunk {
					body(worker, it)
				}
			}
		}, &wg)
	}
	wg.Wait()
}

// orderQueue applies the Options to the work queue contents: relabel-by-
// degree becomes a simple sort of the queue (no physical CSR relabeling
// needed — the versatility argument for the queue-based algorithms), and
// cyclic partitioning becomes a round-robin interleave of the queue order.
func orderQueue(eng *parallel.Engine, queue []uint32, in Input, o Options) []uint32 {
	switch o.Relabel {
	case sparse.Ascending:
		sort.SliceStable(queue, func(a, b int) bool {
			return in.EdgeDegree(queue[a]) < in.EdgeDegree(queue[b])
		})
	case sparse.Descending:
		sort.SliceStable(queue, func(a, b int) bool {
			return in.EdgeDegree(queue[a]) > in.EdgeDegree(queue[b])
		})
	}
	if o.Partition == CyclicPartition {
		bins := o.NumBins
		if bins <= 0 {
			bins = 4 * eng.NumWorkers()
		}
		if bins > len(queue) {
			bins = len(queue)
		}
		if bins > 1 {
			out := make([]uint32, 0, len(queue))
			for b := 0; b < bins; b++ {
				for i := b; i < len(queue); i += bins {
					out = append(out, queue[i])
				}
			}
			copy(queue, out)
		}
	}
	return queue
}

func queueGrain(eng *parallel.Engine, n int) int {
	g := n / (16 * eng.NumWorkers())
	if g < 1 {
		g = 1
	}
	return g
}

// QueueHashmap is the paper's Algorithm 1: a single-phase queue-based
// s-line-graph construction using hashmap counting. All hyperedge IDs —
// original, permuted, or adjoin shared-space — are enqueued into a work
// queue; workers fetch IDs, tally overlap counts against every
// higher-ID neighbor through the two-level incidence walk, and emit pairs
// whose tally reaches s. Enqueuing is linear in |E|, so the complexity
// matches the non-queue Hashmap algorithm.
func QueueHashmap(eng *parallel.Engine, in Input, s int, o Options) ([]sparse.Edge, error) {
	queue := orderQueue(eng, in.EdgeIDs(), in, o) // Alg 1, line 2: enqueue all IDs
	wq := newWorkQueue(queue, queueGrain(eng, len(queue)))
	results := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil }) // L_t(H)
	cntTLS, release := countTLS(eng)
	drain(eng, wq, func(w int, e uint32) {
		if in.EdgeDegree(e) < s { // Alg 1, line 6
			return
		}
		cnt := getCount(eng, cntTLS, w)     // Alg 1, line 8: overlap_count
		for _, v := range in.Incidence(e) { // line 9
			for _, f := range in.EdgesOf(v) { // line 10: (i < j)
				if f > e && in.EdgeDegree(f) >= s {
					cnt.Inc(f, 1) // line 11
				}
			}
		}
		buf := results.Get(w)
		cnt.Range(func(f uint32, c int32) { // lines 12-14
			if int(c) >= s {
				*buf = append(*buf, sparse.Edge{U: e, V: f})
			}
		})
	})
	release()
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, results), nil // line 15: union of every L_t(H)
}

// QueueIntersection is the paper's Algorithm 2: a two-phase queue-based
// s-line-graph construction. Phase one walks the incidence structure and
// enqueues every eligible hyperedge pair (deduplicated per source hyperedge
// with a stamp array) into per-thread queues that merge into one shared
// pair queue. Phase two fetches pairs from the queue and set-intersects the
// two incidence lists, emitting pairs with at least s common hypernodes.
// The second phase is a single flat loop over pairs, giving finer-grained
// load balancing than the three-level nest of the non-queue Intersection.
func QueueIntersection(eng *parallel.Engine, in Input, s int, o Options) ([]sparse.Edge, error) {
	queue := orderQueue(eng, in.EdgeIDs(), in, o)

	// Phase 1 (Alg 2, lines 1-6): build the pair queue.
	pairTLS := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil }) // queue_t
	stampTLS := parallel.NewTLSFor(eng, func() []uint32 { return make([]uint32, in.IDSpace()) })
	wq := newWorkQueue(queue, queueGrain(eng, len(queue)))
	drain(eng, wq, func(w int, e uint32) {
		if in.EdgeDegree(e) < s {
			return
		}
		stamp := *stampTLS.Get(w)
		buf := pairTLS.Get(w)
		for _, v := range in.Incidence(e) {
			for _, f := range in.EdgesOf(v) {
				if f <= e || in.EdgeDegree(f) < s || stamp[f] == e+1 {
					continue
				}
				stamp[f] = e + 1
				*buf = append(*buf, sparse.Edge{U: e, V: f}) // line 5
			}
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	var pairs []sparse.Edge // line 6: queue <- union of every queue_t
	pairTLS.All(func(v *[]sparse.Edge) { pairs = append(pairs, *v...) })

	// Phase 2 (lines 7-13): set-intersect each queued pair.
	results := parallel.NewTLSFor(eng, func() []sparse.Edge { return nil }) // L_t(H)
	pq := newWorkQueue(pairs, queueGrain(eng, len(pairs)))
	drain(eng, pq, func(w int, pr sparse.Edge) {
		if _, ok := countCommonGE(in.Incidence(pr.U), in.Incidence(pr.V), s); ok { // line 10-11
			*results.Get(w) = append(*results.Get(w), pr) // line 12
		}
	})
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return collectTLS(eng, results), nil // line 13
}
