package graph

import (
	"reflect"
	"testing"
	"testing/quick"
)

// ccOracle computes components with sequential union-find.
func ccOracle(g *Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Row(u) {
			ru, rv := find(u), find(int(v))
			if ru != rv {
				if ru < rv {
					parent[rv] = ru
				} else {
					parent[ru] = rv
				}
			}
		}
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(find(i))
	}
	return out
}

var ccAlgorithms = map[string]func(*Graph) []uint32{
	"labelprop": tCCLabelPropagation,
	"sv":        tCCShiloachVishkin,
	"afforest":  tCCAfforest,
}

func checkCC(t *testing.T, g *Graph) {
	t.Helper()
	want := CanonicalizeComponents(ccOracle(g))
	for name, fn := range ccAlgorithms {
		got := CanonicalizeComponents(fn(g))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s components differ from oracle\n got %v\nwant %v", name, got, want)
		}
	}
}

func TestCCPath(t *testing.T)     { checkCC(t, pathGraph(20)) }
func TestCCComplete(t *testing.T) { checkCC(t, completeGraph(10)) }

func TestCCDisconnected(t *testing.T) {
	g := buildGraph(10, [][2]uint32{{0, 1}, {2, 3}, {3, 4}, {7, 8}})
	checkCC(t, g)
	comp := tCCLabelPropagation(g)
	if NumComponents(comp) != 6 {
		t.Fatalf("NumComponents = %d, want 6 (three pairs + {5},{6},{9} singletons... actually components {0,1},{2,3,4},{7,8},{5},{6},{9})", NumComponents(comp))
	}
}

func TestCCEmptyGraph(t *testing.T) {
	g := buildGraph(5, nil)
	for name, fn := range ccAlgorithms {
		comp := fn(g)
		if NumComponents(comp) != 5 {
			t.Fatalf("%s: %d components on edgeless graph, want 5", name, NumComponents(comp))
		}
	}
}

func TestCCSingleGiantComponent(t *testing.T) {
	g := randomGraph(500, 3000, 5)
	checkCC(t, g)
}

func TestCCManySmallComponents(t *testing.T) {
	// 100 disjoint triangles: exercises Afforest's giant-component skip on
	// an input where sampling may pick any label.
	var pairs [][2]uint32
	for i := 0; i < 100; i++ {
		b := uint32(3 * i)
		pairs = append(pairs, [2]uint32{b, b + 1}, [2]uint32{b + 1, b + 2}, [2]uint32{b, b + 2})
	}
	g := buildGraph(300, pairs)
	checkCC(t, g)
	if got := NumComponents(tCCAfforest(g)); got != 100 {
		t.Fatalf("NumComponents = %d, want 100", got)
	}
}

func TestCCRandomAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(80, 120, seed)
		want := CanonicalizeComponents(ccOracle(g))
		for _, fn := range ccAlgorithms {
			if !reflect.DeepEqual(CanonicalizeComponents(fn(g)), want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalizeComponents(t *testing.T) {
	comp := []uint32{7, 7, 3, 3, 7}
	got := CanonicalizeComponents(comp)
	if !reflect.DeepEqual(got, []uint32{0, 0, 2, 2, 0}) {
		t.Fatalf("Canonicalize = %v", got)
	}
}
