package graph

import (
	"container/heap"
	"math"

	"nwhy/internal/parallel"
)

// dijkstraInto computes single-source weighted distances into dist (scratch
// reused across sources), returning the settled vertices in order.
func dijkstraInto(g *Graph, src int, dist []float64, done []bool, pq *distHeap, order []uint32) []uint32 {
	for i := range dist {
		dist[i] = Inf
		done[i] = false
	}
	order = order[:0]
	*pq = (*pq)[:0]
	dist[src] = 0
	heap.Push(pq, distItem{uint32(src), 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if done[it.v] {
			continue
		}
		done[it.v] = true
		order = append(order, it.v)
		row := g.Row(int(it.v))
		ws := g.Weights(int(it.v))
		for k, u := range row {
			w := 1.0
			if ws != nil {
				w = ws[k]
			}
			if nd := dist[it.v] + w; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, distItem{u, nd})
			}
		}
	}
	return order
}

// perSourceWeightedScan runs fn over every source's weighted distance
// vector in parallel.
func perSourceWeightedScan(eng *parallel.Engine, g *Graph, fn func(src int, dist []float64, reached []uint32) float64) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	type scratch struct {
		dist  []float64
		done  []bool
		pq    distHeap
		order []uint32
	}
	tls := parallel.NewTLSFor(eng, func() scratch {
		return scratch{dist: make([]float64, n), done: make([]bool, n), order: make([]uint32, 0, n)}
	})
	eng.For(parallel.BlockedGrain(0, n, 1), func(w, lo, hi int) {
		s := tls.Get(w)
		for src := lo; src < hi; src++ {
			reached := dijkstraInto(g, src, s.dist, s.done, &s.pq, s.order)
			s.order = reached
			out[src] = fn(src, s.dist, reached)
		}
	})
	return out
}

// WeightedClosenessCentrality computes closeness over weighted shortest
// paths with the Wasserman–Faust reachable-fraction scaling (matching the
// unweighted ClosenessCentrality convention).
func WeightedClosenessCentrality(eng *parallel.Engine, g *Graph) []float64 {
	n := g.NumVertices()
	return perSourceWeightedScan(eng, g, func(src int, dist []float64, reached []uint32) float64 {
		sum := 0.0
		for _, v := range reached {
			sum += dist[v]
		}
		r := len(reached)
		if r <= 1 || sum == 0 {
			return 0
		}
		c := float64(r-1) / sum
		if n > 1 {
			c *= float64(r-1) / float64(n-1)
		}
		return c
	})
}

// WeightedEccentricity computes each vertex's greatest weighted shortest-
// path distance to any reachable vertex.
func WeightedEccentricity(eng *parallel.Engine, g *Graph) []float64 {
	return perSourceWeightedScan(eng, g, func(src int, dist []float64, reached []uint32) float64 {
		ecc := 0.0
		for _, v := range reached {
			if !math.IsInf(dist[v], 1) && dist[v] > ecc {
				ecc = dist[v]
			}
		}
		return ecc
	})
}

// WeightedHarmonicCloseness computes the harmonic closeness over weighted
// shortest paths, normalized by n-1.
func WeightedHarmonicCloseness(eng *parallel.Engine, g *Graph) []float64 {
	n := g.NumVertices()
	return perSourceWeightedScan(eng, g, func(src int, dist []float64, reached []uint32) float64 {
		sum := 0.0
		for _, v := range reached {
			if d := dist[v]; d > 0 {
				sum += 1 / d
			}
		}
		if n > 1 {
			sum /= float64(n - 1)
		}
		return sum
	})
}
