package graph

import (
	"container/heap"

	"nwhy/internal/parallel"
)

// WeightedBetweennessCentrality computes exact betweenness centrality on a
// weighted graph with the Dijkstra-based variant of Brandes' algorithm,
// parallelized over sources. Arc weights must be positive. Unweighted
// graphs fall back to the BFS-based implementation.
func WeightedBetweennessCentrality(eng *parallel.Engine, g *Graph, normalized bool) []float64 {
	if !g.Weighted() {
		return BetweennessCentrality(eng, g, normalized)
	}
	n := g.NumVertices()
	partials := parallel.NewTLSFor(eng, func() []float64 { return make([]float64, n) })

	eng.For(parallel.BlockedGrain(0, n, 1), func(w, lo, hi int) {
		score := *partials.Get(w)
		st := newWeightedBrandesState(n)
		for src := lo; src < hi; src++ {
			weightedBrandesFromSource(g, src, score, st)
		}
	})

	out := make([]float64, n)
	partials.All(func(s *[]float64) {
		for i, v := range *s {
			out[i] += v
		}
	})
	for i := range out {
		out[i] /= 2 // undirected double counting
	}
	if normalized && n > 2 {
		norm := 1 / (float64(n-1) * float64(n-2))
		for i := range out {
			out[i] *= norm
		}
	}
	return out
}

type weightedBrandesState struct {
	dist  []float64
	sigma []float64
	delta []float64
	done  []bool
	order []uint32 // settle order
	pq    distHeap
}

func newWeightedBrandesState(n int) *weightedBrandesState {
	return &weightedBrandesState{
		dist:  make([]float64, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		done:  make([]bool, n),
		order: make([]uint32, 0, n),
	}
}

type distItem struct {
	v uint32
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(a, b int) bool  { return h[a].d < h[b].d }
func (h distHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// weightedBrandesFromSource runs one Dijkstra-based Brandes accumulation.
func weightedBrandesFromSource(g *Graph, src int, score []float64, st *weightedBrandesState) {
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		st.dist[i] = Inf
		st.sigma[i] = 0
		st.delta[i] = 0
		st.done[i] = false
	}
	st.order = st.order[:0]
	st.pq = st.pq[:0]
	st.dist[src] = 0
	st.sigma[src] = 1
	heap.Push(&st.pq, distItem{uint32(src), 0})

	const eps = 1e-12
	for st.pq.Len() > 0 {
		it := heap.Pop(&st.pq).(distItem)
		if st.done[it.v] {
			continue
		}
		st.done[it.v] = true
		st.order = append(st.order, it.v)
		row := g.Row(int(it.v))
		ws := g.Weights(int(it.v))
		for k, u := range row {
			nd := st.dist[it.v] + ws[k]
			switch {
			case nd < st.dist[u]-eps:
				st.dist[u] = nd
				st.sigma[u] = st.sigma[it.v]
				heap.Push(&st.pq, distItem{u, nd})
			case nd <= st.dist[u]+eps && !st.done[u]:
				st.sigma[u] += st.sigma[it.v]
			}
		}
	}
	// Reverse accumulation over the settle order.
	for i := len(st.order) - 1; i > 0; i-- {
		w := st.order[i]
		coeff := (1 + st.delta[w]) / st.sigma[w]
		row := g.Row(int(w))
		ws := g.Weights(int(w))
		for k, v := range row {
			if st.dist[v]+ws[k] <= st.dist[w]+eps && st.dist[v]+ws[k] >= st.dist[w]-eps {
				st.delta[v] += st.sigma[v] * coeff
			}
		}
		score[w] += st.delta[w]
	}
}
