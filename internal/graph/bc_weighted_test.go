package graph

import (
	"math"
	"testing"
	"testing/quick"

	"nwhy/internal/sparse"
)

// unitWeightedCopy returns g with explicit weight 1 on every arc.
func unitWeightedCopy(g *Graph) *Graph {
	var pairs []sparse.Edge
	var ws []float64
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Row(u) {
			pairs = append(pairs, sparse.Edge{U: uint32(u), V: v})
			ws = append(ws, 1)
		}
	}
	csr := sparse.FromPairs(g.NumVertices(), g.NumVertices(), pairs, ws)
	out, err := FromCSR(csr)
	if err != nil {
		panic(err)
	}
	return out
}

func TestWeightedBCUnweightedFallback(t *testing.T) {
	g := randomGraph(40, 100, 1)
	a := WeightedBetweennessCentrality(teng, g, false) // no weights: falls back
	b := BetweennessCentrality(teng, g, false)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("fallback differs at %d", i)
		}
	}
}

func TestWeightedBCUnitWeightsMatchBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 70, seed)
		wg := unitWeightedCopy(g)
		a := WeightedBetweennessCentrality(teng, wg, false)
		b := BetweennessCentrality(teng, g, false)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedBCUniformScalingInvariant(t *testing.T) {
	// Multiplying all weights by a constant must not change BC.
	g := weightedRandomGraph(30, 80, 3)
	a := WeightedBetweennessCentrality(teng, g, false)
	scaled := g.CSR().Clone()
	for i := range scaled.Val {
		scaled.Val[i] *= 7.5
	}
	sg, err := FromCSR(scaled)
	if err != nil {
		t.Fatal(err)
	}
	b := WeightedBetweennessCentrality(teng, sg, false)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("scaling changed BC at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWeightedBCWeightedDetour(t *testing.T) {
	// Triangle 0-1-2 plus heavy direct edge 0-2: with w(0,2) large, the
	// path 0-1-2 is shortest, so vertex 1 gains betweenness it would not
	// have with unit weights.
	pairs := []sparse.Edge{
		{U: 0, V: 1}, {U: 1, V: 0},
		{U: 1, V: 2}, {U: 2, V: 1},
		{U: 0, V: 2}, {U: 2, V: 0},
	}
	ws := []float64{1, 1, 1, 1, 10, 10}
	csr := sparse.FromPairs(3, 3, pairs, ws)
	g, err := FromCSR(csr)
	if err != nil {
		t.Fatal(err)
	}
	bc := WeightedBetweennessCentrality(teng, g, false)
	if bc[1] != 1 { // pair (0,2) routes through 1
		t.Fatalf("BC[1] = %v, want 1", bc[1])
	}
	if bc[0] != 0 || bc[2] != 0 {
		t.Fatalf("endpoints should be 0: %v", bc)
	}
}

func TestWeightedBCNormalized(t *testing.T) {
	g := weightedRandomGraph(20, 60, 9)
	raw := WeightedBetweennessCentrality(teng, g, false)
	norm := WeightedBetweennessCentrality(teng, g, true)
	n := float64(g.NumVertices())
	for i := range raw {
		if math.Abs(norm[i]-raw[i]/((n-1)*(n-2))) > 1e-9 {
			t.Fatalf("normalization wrong at %d", i)
		}
	}
}
