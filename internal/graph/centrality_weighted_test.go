package graph

import (
	"math"
	"testing"
	"testing/quick"

	"nwhy/internal/sparse"
)

func TestWeightedClosenessUnitMatchesUnweighted(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 70, seed)
		wg := unitWeightedCopy(g)
		a := WeightedClosenessCentrality(teng, wg)
		b := ClosenessCentrality(teng, g)
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedEccentricityUnitMatchesUnweighted(t *testing.T) {
	g := randomGraph(40, 90, 2)
	wg := unitWeightedCopy(g)
	a := WeightedEccentricity(teng, wg)
	b := Eccentricity(teng, g)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("ecc differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestWeightedHarmonicUnitMatchesUnweighted(t *testing.T) {
	g := randomGraph(40, 90, 3)
	wg := unitWeightedCopy(g)
	a := WeightedHarmonicCloseness(teng, wg)
	b := HarmonicClosenessCentrality(teng, g)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("harmonic differs at %d", i)
		}
	}
}

func TestWeightedClosenessDistances(t *testing.T) {
	// Path 0 -1.0- 1 -3.0- 2: closeness(1) = 2/4, scaled by full reach = 1.
	g := weightedPath(t, []float64{1, 3})
	c := WeightedClosenessCentrality(teng, g)
	if math.Abs(c[1]-2.0/4.0) > 1e-9 {
		t.Fatalf("closeness[1] = %v", c[1])
	}
	ecc := WeightedEccentricity(teng, g)
	if ecc[0] != 4 || ecc[1] != 3 || ecc[2] != 4 {
		t.Fatalf("ecc = %v", ecc)
	}
}

// weightedPath builds a path graph 0-1-...-n with the given consecutive
// edge weights (symmetric arcs).
func weightedPath(t *testing.T, ws []float64) *Graph {
	t.Helper()
	var pairs []sparse.Edge
	var weights []float64
	for i, w := range ws {
		pairs = append(pairs,
			sparse.Edge{U: uint32(i), V: uint32(i + 1)},
			sparse.Edge{U: uint32(i + 1), V: uint32(i)})
		weights = append(weights, w, w)
	}
	csr := sparse.FromPairs(len(ws)+1, len(ws)+1, pairs, weights)
	g, err := FromCSR(csr)
	if err != nil {
		t.Fatal(err)
	}
	return g
}
