package graph

import (
	"testing"
	"testing/quick"
)

func TestMISPath(t *testing.T) {
	g := pathGraph(10)
	set := MaximalIndependentSet(teng, g, 1)
	if !IsMaximalIndependentSet(g, set) {
		t.Fatal("not a maximal independent set")
	}
}

func TestMISComplete(t *testing.T) {
	g := completeGraph(8)
	set := MaximalIndependentSet(teng, g, 2)
	count := 0
	for _, in := range set {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("K8 MIS size = %d, want 1", count)
	}
	if !IsMaximalIndependentSet(g, set) {
		t.Fatal("invalid MIS")
	}
}

func TestMISEmptyGraphAllIn(t *testing.T) {
	g := buildGraph(5, nil)
	set := MaximalIndependentSet(teng, g, 3)
	for v, in := range set {
		if !in {
			t.Fatalf("isolated vertex %d excluded", v)
		}
	}
}

func TestMISStar(t *testing.T) {
	var pairs [][2]uint32
	for i := 1; i < 30; i++ {
		pairs = append(pairs, [2]uint32{0, uint32(i)})
	}
	g := buildGraph(30, pairs)
	set := MaximalIndependentSet(teng, g, 5)
	if !IsMaximalIndependentSet(g, set) {
		t.Fatal("invalid MIS on star")
	}
	// Either the hub alone or all leaves.
	if set[0] {
		for i := 1; i < 30; i++ {
			if set[i] {
				t.Fatal("hub and leaf both selected")
			}
		}
	} else {
		for i := 1; i < 30; i++ {
			if !set[i] {
				t.Fatal("hub excluded but leaf missing")
			}
		}
	}
}

func TestMISSelfLoopTolerated(t *testing.T) {
	g := buildGraph(3, [][2]uint32{{0, 0}, {0, 1}, {1, 2}})
	set := MaximalIndependentSet(teng, g, 7)
	if !IsMaximalIndependentSet(g, set) {
		t.Fatal("invalid MIS with self-loop")
	}
}

func TestMISRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(80, 200, seed)
		return IsMaximalIndependentSet(g, MaximalIndependentSet(teng, g, seed))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMISDeterministicForSeed(t *testing.T) {
	g := randomGraph(60, 150, 4)
	a := MaximalIndependentSet(teng, g, 9)
	b := MaximalIndependentSet(teng, g, 9)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("MIS not deterministic for fixed seed")
		}
	}
}

func TestIsIndependentSetDetectsViolation(t *testing.T) {
	g := pathGraph(3)
	if IsIndependentSet(g, []bool{true, true, false}) {
		t.Fatal("adjacent pair accepted")
	}
	if !IsIndependentSet(g, []bool{true, false, true}) {
		t.Fatal("valid set rejected")
	}
	if IsMaximalIndependentSet(g, []bool{true, false, false}) {
		t.Fatal("non-maximal set accepted as maximal")
	}
}
