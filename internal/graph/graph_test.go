package graph

import (
	"math/rand"
	"testing"

	"nwhy/internal/sparse"
)

// buildGraph constructs an undirected graph from pairs.
func buildGraph(n int, pairs [][2]uint32) *Graph {
	el := sparse.NewEdgeList(n)
	for _, p := range pairs {
		el.Add(p[0], p[1])
	}
	return FromEdgeList(el, true)
}

// pathGraph returns 0-1-2-...-(n-1).
func pathGraph(n int) *Graph {
	var pairs [][2]uint32
	for i := 0; i+1 < n; i++ {
		pairs = append(pairs, [2]uint32{uint32(i), uint32(i + 1)})
	}
	return buildGraph(n, pairs)
}

// completeGraph returns K_n.
func completeGraph(n int) *Graph {
	var pairs [][2]uint32
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pairs = append(pairs, [2]uint32{uint32(i), uint32(j)})
		}
	}
	return buildGraph(n, pairs)
}

// randomGraph returns an Erdős–Rényi-ish undirected graph.
func randomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	el := sparse.NewEdgeList(n)
	for i := 0; i < m; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u != v {
			el.Add(u, v)
		}
	}
	return FromEdgeList(el, true)
}

func TestFromCSRRejectsRectangular(t *testing.T) {
	c := sparse.FromPairs(2, 3, []sparse.Edge{{U: 0, V: 2}}, nil)
	if _, err := FromCSR(c); err == nil {
		t.Fatal("FromCSR accepted a rectangular matrix")
	}
}

func TestFromEdgeListSymmetric(t *testing.T) {
	g := buildGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 3}})
	if !g.IsSymmetric() {
		t.Fatal("undirected graph not symmetric")
	}
	if g.NumArcs() != 6 {
		t.Fatalf("NumArcs = %d, want 6", g.NumArcs())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
	if !g.HasEdge(3, 2) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong")
	}
}

func TestGraphSatisfiesAdjacency(t *testing.T) {
	g := pathGraph(3)
	if g.NumRows() != 3 {
		t.Fatalf("NumRows = %d", g.NumRows())
	}
	if len(g.Row(1)) != 2 {
		t.Fatalf("Row(1) = %v", g.Row(1))
	}
}
