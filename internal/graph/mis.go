package graph

import (
	"math/rand"
	"sync/atomic"

	"nwhy/internal/parallel"
)

// MaximalIndependentSet computes a maximal independent set with Luby's
// parallel algorithm: every live vertex draws a random priority; vertices
// that beat all live neighbors enter the set, their neighbors leave the
// pool, and the round repeats until the pool drains. The result is maximal
// (no vertex can be added) though not maximum, and deterministic for a
// given seed.
func MaximalIndependentSet(eng *parallel.Engine, g *Graph, seed int64) []bool {
	n := g.NumVertices()
	const (
		undecided int32 = iota
		in
		out
	)
	state := make([]int32, n)
	prio := make([]uint64, n)
	rng := rand.New(rand.NewSource(seed))

	remaining := int64(n)
	for remaining > 0 && !eng.Cancelled() {
		// New priorities each round (drawn sequentially for determinism).
		for i := range prio {
			if state[i] == undecided {
				prio[i] = rng.Uint64()
			}
		}
		var decided atomic.Int64
		// Select local minima among undecided vertices.
		eng.ForN(n, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if atomic.LoadInt32(&state[v]) != undecided {
					continue
				}
				win := true
				for _, u := range g.Row(v) {
					if int(u) == v {
						continue
					}
					switch atomic.LoadInt32(&state[u]) {
					case in:
						win = false
					case undecided:
						// Only undecided neighbors compete on priority;
						// ties break by vertex ID, so exactly one of two
						// adjacent undecided vertices can win.
						if pu, pv := prio[u], prio[v]; pu < pv || (pu == pv && int(u) < v) {
							win = false
						}
					}
					if !win {
						break
					}
				}
				if win {
					atomic.StoreInt32(&state[v], in)
					decided.Add(1)
				}
			}
		})
		// Knock out neighbors of newly selected vertices.
		eng.ForN(n, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				if atomic.LoadInt32(&state[v]) != undecided {
					continue
				}
				for _, u := range g.Row(v) {
					if int(u) != v && atomic.LoadInt32(&state[u]) == in {
						atomic.StoreInt32(&state[v], out)
						decided.Add(1)
						break
					}
				}
			}
		})
		d := decided.Load()
		remaining -= d
		if d == 0 {
			// All remaining undecided vertices are isolated among
			// undecided ones; admit them all.
			for v := 0; v < n; v++ {
				if state[v] == undecided {
					state[v] = in
					remaining--
				}
			}
		}
	}
	out32 := make([]bool, n)
	for v, s := range state {
		out32[v] = s == in
	}
	return out32
}

// IsIndependentSet verifies no two selected vertices are adjacent
// (self-loops are ignored).
func IsIndependentSet(g *Graph, set []bool) bool {
	for v := 0; v < g.NumVertices(); v++ {
		if !set[v] {
			continue
		}
		for _, u := range g.Row(v) {
			if int(u) != v && set[u] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependentSet verifies the set is independent and no excluded
// vertex could be added.
func IsMaximalIndependentSet(g *Graph, set []bool) bool {
	if !IsIndependentSet(g, set) {
		return false
	}
	for v := 0; v < g.NumVertices(); v++ {
		if set[v] {
			continue
		}
		blocked := false
		for _, u := range g.Row(v) {
			if int(u) != v && set[u] {
				blocked = true
				break
			}
		}
		if !blocked {
			return false
		}
	}
	return true
}
