package graph

import "nwhy/internal/parallel"

// teng is the engine the package tests run on; wrapper funcs restore the
// engine-less signatures the table-driven tests were written against.
var teng = parallel.SharedEngine()

func tBFSTopDown(g *Graph, src int) *BFSResult  { return BFSTopDown(teng, g, src) }
func tBFSBottomUp(g *Graph, src int) *BFSResult { return BFSBottomUp(teng, g, src) }
func tBFSDirectionOptimizing(g *Graph, src int) *BFSResult {
	return BFSDirectionOptimizing(teng, g, src)
}

func tCCLabelPropagation(g *Graph) []uint32 { return CCLabelPropagation(teng, g) }
func tCCShiloachVishkin(g *Graph) []uint32  { return CCShiloachVishkin(teng, g) }
func tCCAfforest(g *Graph) []uint32         { return CCAfforest(teng, g) }
