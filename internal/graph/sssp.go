package graph

import (
	"math"

	"nwhy/internal/parallel"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// SSSPResult carries distances and shortest-path parents from one source.
type SSSPResult struct {
	Dist   []float64
	Parent []int32
}

// DeltaStepping computes single-source shortest paths with the
// delta-stepping algorithm: distances are bucketed by multiples of delta;
// each bucket is settled by repeatedly relaxing its light edges (weight <=
// delta) in parallel, then its heavy edges once. With delta <= min weight it
// behaves like parallel Dijkstra; with delta = +inf like Bellman–Ford.
//
// Unweighted graphs use weight 1 per arc (so distances are hop counts).
// delta <= 0 picks a heuristic delta = max(1e-9, avg weight). Parents are
// reconstructed in a deterministic post-pass: the parent of v is the
// smallest-ID neighbor u with dist[u] + w(u,v) == dist[v].
func DeltaStepping(eng *parallel.Engine, g *Graph, src int, delta float64) *SSSPResult {
	n := g.NumVertices()
	distBits := make([]uint64, n)
	for i := range distBits {
		distBits[i] = math.Float64bits(math.MaxFloat64)
	}
	if delta <= 0 {
		delta = defaultDelta(g)
	}
	distBits[src] = math.Float64bits(0)

	// Non-negative float64 bit patterns order identically to the floats, so
	// an atomic u64-min implements the distance relaxation.
	relax := func(v uint32, nd float64) bool {
		return parallel.MinU64(&distBits[v], math.Float64bits(nd))
	}
	dist := func(v uint32) float64 { return math.Float64frombits(distBits[v]) }

	arcWeight := func(ws []float64, k int) float64 {
		if ws == nil {
			return 1
		}
		return ws[k]
	}

	base := 0.0
	bucket := []uint32{uint32(src)}
	for len(bucket) > 0 && !eng.Cancelled() {
		upper := base + delta
		// Settle light edges of this bucket to a fixpoint.
		active := bucket
		for len(active) > 0 && !eng.Cancelled() {
			moved := parallel.NewTLSFor(eng, func() []uint32 { return nil })
			eng.ForN(len(active), func(w, lo, hi int) {
				buf := moved.Get(w)
				for i := lo; i < hi; i++ {
					u := active[i]
					du := dist(u)
					if du >= upper {
						continue
					}
					row := g.Row(int(u))
					ws := g.Weights(int(u))
					for k, v := range row {
						wgt := arcWeight(ws, k)
						if wgt > delta {
							continue
						}
						if relax(v, du+wgt) && du+wgt < upper {
							*buf = append(*buf, v)
						}
					}
				}
			})
			active = nil
			moved.All(func(v *[]uint32) { active = append(active, *v...) })
		}
		// Heavy edges of everything settled in this bucket, once.
		eng.ForN(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				du := dist(uint32(u))
				if du < base || du >= upper {
					continue
				}
				row := g.Row(u)
				ws := g.Weights(u)
				for k, v := range row {
					wgt := arcWeight(ws, k)
					if wgt <= delta {
						continue
					}
					relax(v, du+wgt)
				}
			}
		})
		// Jump to the lowest non-empty bucket at or above upper.
		base, bucket = nextBucket(eng, distBits, upper, delta)
	}

	r := &SSSPResult{Dist: make([]float64, n), Parent: make([]int32, n)}
	for i := range r.Dist {
		d := math.Float64frombits(distBits[i])
		if d == math.MaxFloat64 {
			r.Dist[i] = Inf
		} else {
			r.Dist[i] = d
		}
		r.Parent[i] = -1
	}
	// Deterministic parent reconstruction. Scanning v's own (symmetric)
	// adjacency keeps each write local to its owner.
	eng.ForN(n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			if v == src || math.IsInf(r.Dist[v], 1) {
				continue
			}
			row := g.Row(v)
			ws := g.Weights(v)
			for k, u := range row {
				if r.Dist[int(u)]+arcWeight(ws, k) == r.Dist[v] {
					r.Parent[v] = int32(u)
					break
				}
			}
		}
	})
	return r
}

// nextBucket finds the lowest non-empty delta-bucket at or above lower,
// returning its base and members. An empty slice means traversal is done.
func nextBucket(eng *parallel.Engine, distBits []uint64, lower, delta float64) (float64, []uint32) {
	minDist := parallel.ReduceWith(eng, len(distBits), math.MaxFloat64,
		func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				d := math.Float64frombits(distBits[i])
				if d >= lower && d < acc {
					acc = d
				}
			}
			return acc
		},
		math.Min)
	if minDist == math.MaxFloat64 {
		return lower, nil
	}
	bucketLo := math.Floor(minDist/delta) * delta
	bucketHi := bucketLo + delta
	tls := parallel.NewTLSFor(eng, func() []uint32 { return nil })
	eng.ForN(len(distBits), func(w, lo, hi int) {
		buf := tls.Get(w)
		for i := lo; i < hi; i++ {
			d := math.Float64frombits(distBits[i])
			if d >= bucketLo && d < bucketHi {
				*buf = append(*buf, uint32(i))
			}
		}
	})
	var out []uint32
	tls.All(func(v *[]uint32) { out = append(out, *v...) })
	return bucketLo, out
}

func defaultDelta(g *Graph) float64 {
	if !g.Weighted() || g.NumArcs() == 0 {
		return 1
	}
	sum := 0.0
	for u := 0; u < g.NumVertices(); u++ {
		for _, w := range g.Weights(u) {
			sum += w
		}
	}
	d := sum / float64(g.NumArcs())
	if d < 1e-9 {
		d = 1e-9
	}
	return d
}

// PathTo reconstructs the vertex sequence from the source to dst using the
// parent array, or nil if dst is unreachable.
func (r *SSSPResult) PathTo(dst int) []uint32 {
	if math.IsInf(r.Dist[dst], 1) {
		return nil
	}
	var rev []uint32
	for v := int32(dst); v != -1; v = r.Parent[v] {
		rev = append(rev, uint32(v))
	}
	out := make([]uint32, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}
