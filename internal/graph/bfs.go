package graph

import (
	"sync/atomic"

	"nwhy/internal/parallel"
)

// BFSResult carries the outcome of a breadth-first search: the BFS level of
// each vertex (hop distance from the source, -1 if unreachable) and the BFS
// parent of each vertex (-1 for the source itself and unreachable vertices).
type BFSResult struct {
	Level  []int32
	Parent []int32
}

// Reached reports how many vertices the traversal visited (incl. the source).
func (r *BFSResult) Reached() int {
	n := 0
	for _, l := range r.Level {
		if l >= 0 {
			n++
		}
	}
	return n
}

func newBFSResult(n int) *BFSResult {
	r := &BFSResult{Level: make([]int32, n), Parent: make([]int32, n)}
	for i := range r.Level {
		r.Level[i] = unreachable
		r.Parent[i] = -1
	}
	return r
}

// mergeFrontier collects the per-worker next-frontier buffers into frontier
// and returns the buffers to the engine's scratch arenas for the next round.
func mergeFrontier(eng *parallel.Engine, frontier []uint32, next *parallel.TLS[[]uint32]) []uint32 {
	frontier = frontier[:0]
	next.Each(func(w int, v *[]uint32) {
		frontier = append(frontier, *v...)
		eng.StashU32(w, *v)
	})
	return frontier
}

// BFSTopDown runs a parallel top-down BFS from src: each round expands the
// frontier by claiming unvisited neighbors with a CAS on the parent array.
// A cancelled engine stops the traversal at the next round boundary,
// returning the partial result.
func BFSTopDown(eng *parallel.Engine, g *Graph, src int) *BFSResult {
	r := newBFSResult(g.NumVertices())
	r.Level[src] = 0
	frontier := []uint32{uint32(src)}
	for depth := int32(1); len(frontier) > 0 && !eng.Cancelled(); depth++ {
		next := parallel.NewTLSFor(eng, func() []uint32 { return nil })
		eng.ForN(len(frontier), func(w, lo, hi int) {
			buf := next.Get(w)
			if cap(*buf) == 0 {
				*buf = eng.GrabU32(w)
			}
			for i := lo; i < hi; i++ {
				u := frontier[i]
				for _, v := range g.Row(int(u)) {
					if atomic.LoadInt32(&r.Level[v]) == unreachable &&
						atomic.CompareAndSwapInt32(&r.Level[v], unreachable, depth) {
						r.Parent[v] = int32(u)
						*buf = append(*buf, v)
					}
				}
			}
		})
		frontier = mergeFrontier(eng, frontier, next)
	}
	return r
}

// BFSBottomUp runs a parallel bottom-up BFS from src: each round every
// unvisited vertex scans its neighbors for a frontier member and adopts the
// first one found as its parent (Beamer et al.'s bottom-up step, used for
// the large-frontier middle rounds of road-free graphs).
func BFSBottomUp(eng *parallel.Engine, g *Graph, src int) *BFSResult {
	n := g.NumVertices()
	r := newBFSResult(n)
	r.Level[src] = 0
	front := parallel.NewBitset(n)
	front.Set(src)
	for depth := int32(1); !eng.Cancelled(); depth++ {
		next := parallel.NewBitset(n)
		var awake atomic.Int64
		eng.ForN(n, func(_, lo, hi int) {
			local := int64(0)
			for v := lo; v < hi; v++ {
				if r.Level[v] != unreachable {
					continue
				}
				for _, u := range g.Row(v) {
					if front.Get(int(u)) {
						r.Level[v] = depth
						r.Parent[v] = int32(u)
						next.Set(v)
						local++
						break
					}
				}
			}
			awake.Add(local)
		})
		if awake.Load() == 0 {
			break
		}
		front = next
	}
	return r
}

// Direction-optimizing switch thresholds (Beamer, Asanović, Patterson 2013).
const (
	doAlpha = 15 // switch top-down -> bottom-up when m_frontier > m_unexplored / alpha
	doBeta  = 18 // switch bottom-up -> top-down when n_frontier < n / beta
)

// BFSDirectionOptimizing runs Beamer's direction-optimizing BFS: top-down
// rounds while the frontier is small, bottom-up rounds while it is a large
// fraction of the graph. This is the algorithm behind AdjoinBFS in the paper.
func BFSDirectionOptimizing(eng *parallel.Engine, g *Graph, src int) *BFSResult {
	n := g.NumVertices()
	r := newBFSResult(n)
	r.Level[src] = 0

	frontier := []uint32{uint32(src)}
	edgesUnexplored := int64(g.NumArcs() - g.Degree(src))
	edgesFrontier := int64(g.Degree(src))
	bottomUp := false

	for depth := int32(1); len(frontier) > 0 && !eng.Cancelled(); depth++ {
		if !bottomUp && edgesFrontier > edgesUnexplored/doAlpha {
			bottomUp = true
		} else if bottomUp && int64(len(frontier)) < int64(n)/doBeta {
			bottomUp = false
		}

		next := parallel.NewTLSFor(eng, func() []uint32 { return nil })
		if bottomUp {
			front := parallel.NewBitset(n)
			for _, u := range frontier {
				front.Set(int(u))
			}
			eng.ForN(n, func(w, lo, hi int) {
				buf := next.Get(w)
				if cap(*buf) == 0 {
					*buf = eng.GrabU32(w)
				}
				for v := lo; v < hi; v++ {
					if r.Level[v] != unreachable {
						continue
					}
					for _, u := range g.Row(v) {
						if front.Get(int(u)) {
							r.Level[v] = depth
							r.Parent[v] = int32(u)
							*buf = append(*buf, uint32(v))
							break
						}
					}
				}
			})
		} else {
			eng.ForN(len(frontier), func(w, lo, hi int) {
				buf := next.Get(w)
				if cap(*buf) == 0 {
					*buf = eng.GrabU32(w)
				}
				for i := lo; i < hi; i++ {
					u := frontier[i]
					for _, v := range g.Row(int(u)) {
						if atomic.LoadInt32(&r.Level[v]) == unreachable &&
							atomic.CompareAndSwapInt32(&r.Level[v], unreachable, depth) {
							r.Parent[v] = int32(u)
							*buf = append(*buf, v)
						}
					}
				}
			})
		}

		frontier = mergeFrontier(eng, frontier, next)
		var ef int64
		for _, u := range frontier {
			ef += int64(g.Degree(int(u)))
		}
		edgesFrontier = ef
		edgesUnexplored -= ef
	}
	return r
}
