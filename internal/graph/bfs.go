package graph

import (
	"sync/atomic"

	"nwhy/internal/frontier"
	"nwhy/internal/parallel"
)

// BFSResult carries the outcome of a breadth-first search: the BFS level of
// each vertex (hop distance from the source, -1 if unreachable) and the BFS
// parent of each vertex (-1 for the source itself and unreachable vertices).
type BFSResult struct {
	Level  []int32
	Parent []int32
}

// Reached reports how many vertices the traversal visited (incl. the source).
func (r *BFSResult) Reached() int {
	n := 0
	for _, l := range r.Level {
		if l >= 0 {
			n++
		}
	}
	return n
}

func newBFSResult(n int) *BFSResult {
	r := &BFSResult{Level: make([]int32, n), Parent: make([]int32, n)}
	for i := range r.Level {
		r.Level[i] = unreachable
		r.Parent[i] = -1
	}
	return r
}

// bfsWith is the one BFS loop behind all three variants: a frontier.EdgeMap
// traversal whose visit claims vertices with a CAS on the level array, run
// under the given direction strategy. A cancelled engine stops the
// traversal at the next round boundary, returning the partial result.
func bfsWith(eng *parallel.Engine, g *Graph, src int, strategy frontier.Strategy) *BFSResult {
	n := g.NumVertices()
	r := newBFSResult(n)
	r.Level[src] = 0
	st := frontier.NewState(int64(g.NumArcs()), strategy)
	f := frontier.Single(eng, n, uint32(src))
	for depth := int32(1); !f.Empty() && !eng.Cancelled(); depth++ {
		d := depth
		f = st.EdgeMap(eng, f, n, g.Row, g.Row,
			func(u, v uint32) bool {
				if atomic.CompareAndSwapInt32(&r.Level[v], unreachable, d) {
					r.Parent[v] = int32(u)
					return true
				}
				return false
			},
			func(v uint32) bool { return atomic.LoadInt32(&r.Level[v]) == unreachable })
	}
	f.Release(eng)
	return r
}

// BFSTopDown runs a parallel top-down BFS from src: each round expands the
// frontier by claiming unvisited neighbors with a CAS on the level array.
func BFSTopDown(eng *parallel.Engine, g *Graph, src int) *BFSResult {
	return bfsWith(eng, g, src, frontier.ForcePush)
}

// BFSBottomUp runs a parallel bottom-up BFS from src: each round every
// unvisited vertex scans its neighbors for a frontier member and adopts the
// first one found as its parent (Beamer et al.'s bottom-up step, used for
// the large-frontier middle rounds of road-free graphs).
func BFSBottomUp(eng *parallel.Engine, g *Graph, src int) *BFSResult {
	return bfsWith(eng, g, src, frontier.ForcePull)
}

// BFSDirectionOptimizing runs Beamer's direction-optimizing BFS: top-down
// rounds while the frontier is small, bottom-up rounds while it is a large
// fraction of the graph (frontier.State's alpha/beta switch). This is the
// algorithm behind AdjoinBFS in the paper.
func BFSDirectionOptimizing(eng *parallel.Engine, g *Graph, src int) *BFSResult {
	return bfsWith(eng, g, src, frontier.Auto)
}
