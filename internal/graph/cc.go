package graph

import (
	"math/rand"
	"sync/atomic"

	"nwhy/internal/frontier"
	"nwhy/internal/parallel"
)

// CCLabelPropagation computes connected components by minimum-label
// propagation: every vertex starts with its own ID as label, and each round
// the frontier of vertices whose label changed propagates its minimum over
// the incident edges (an atomic write-min visit under frontier.EdgeMap)
// until the frontier drains. Simple, parallel, and the algorithm Hygra's CC
// (and NWHy's HyperCC) is built on; the first rounds run in pull direction
// (the frontier is the whole graph), the convergence tail in push.
func CCLabelPropagation(eng *parallel.Engine, g *Graph) []uint32 {
	n := g.NumVertices()
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	st := frontier.NewState(int64(g.NumArcs()), frontier.Auto)
	st.Dedup = true
	st.Revisits = true
	f := frontier.All(eng, n)
	for !f.Empty() && !eng.Cancelled() {
		f = st.EdgeMap(eng, f, n, g.Row, g.Row,
			func(u, v uint32) bool {
				return parallel.MinU32(&comp[v], parallel.LoadU32(&comp[u]))
			}, nil)
	}
	f.Release(eng)
	return comp
}

// CCShiloachVishkin computes connected components with the classic
// Shiloach–Vishkin PRAM algorithm: alternating hook (attach a tree root to a
// smaller-labelled neighbor's tree) and shortcut (pointer-jump every label to
// its grandparent) phases until no hook fires.
func CCShiloachVishkin(eng *parallel.Engine, g *Graph) []uint32 {
	n := g.NumVertices()
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}
	for {
		var changed atomic.Bool
		// Hook phase: for every arc (u, v), if comp[u] < comp[v] and comp[v]
		// is a root, hook it.
		eng.ForN(n, func(_, lo, hi int) {
			c := false
			for u := lo; u < hi; u++ {
				for _, v := range g.Row(u) {
					cu := parallel.LoadU32(&comp[u])
					cv := parallel.LoadU32(&comp[v])
					if cu < cv && cv == parallel.LoadU32(&comp[cv]) {
						if parallel.CASU32(&comp[cv], cv, cu) {
							c = true
						}
					}
				}
			}
			if c {
				changed.Store(true)
			}
		})
		// Shortcut phase: pointer jumping until every label points at a root.
		for {
			var jumped atomic.Bool
			eng.ForN(n, func(_, lo, hi int) {
				j := false
				for u := lo; u < hi; u++ {
					cu := parallel.LoadU32(&comp[u])
					ccu := parallel.LoadU32(&comp[cu])
					if cu != ccu {
						parallel.StoreU32(&comp[u], ccu)
						j = true
					}
				}
				if j {
					jumped.Store(true)
				}
			})
			if !jumped.Load() || eng.Cancelled() {
				break
			}
		}
		if !changed.Load() || eng.Cancelled() {
			break
		}
	}
	return comp
}

// afforestNeighborRounds is the number of initial neighbor-sampling rounds
// Afforest performs before skipping the largest component.
const afforestNeighborRounds = 2

// CCAfforest computes connected components with the Afforest algorithm
// (Sutton, Ben-Nun, Barak 2018): link the first k neighbors of every vertex,
// identify the (almost surely giant) most frequent component by sampling,
// then finish the remaining edges only for vertices outside that component —
// skipping most of the edge list on real-world graphs.
func CCAfforest(eng *parallel.Engine, g *Graph) []uint32 {
	n := g.NumVertices()
	comp := make([]uint32, n)
	for i := range comp {
		comp[i] = uint32(i)
	}

	for r := 0; r < afforestNeighborRounds && !eng.Cancelled(); r++ {
		eng.ForN(n, func(_, lo, hi int) {
			for u := lo; u < hi; u++ {
				row := g.Row(u)
				if r < len(row) {
					link(uint32(u), row[r], comp)
				}
			}
		})
		compress(eng, comp)
	}

	giant := sampleFrequentComponent(comp)

	eng.ForN(n, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			if parallel.LoadU32(&comp[u]) == giant {
				continue
			}
			row := g.Row(u)
			for k := afforestNeighborRounds; k < len(row); k++ {
				link(uint32(u), row[k], comp)
			}
		}
	})
	compress(eng, comp)
	return comp
}

// link unites the components containing u and v with lock-free hooking by
// minimum root.
func link(u, v uint32, comp []uint32) {
	p1 := parallel.LoadU32(&comp[u])
	p2 := parallel.LoadU32(&comp[v])
	for p1 != p2 {
		high, low := p1, p2
		if high < low {
			high, low = low, high
		}
		pHigh := parallel.LoadU32(&comp[high])
		if pHigh == low {
			return
		}
		if pHigh == high && parallel.CASU32(&comp[high], high, low) {
			return
		}
		p1 = parallel.LoadU32(&comp[parallel.LoadU32(&comp[high])])
		p2 = parallel.LoadU32(&comp[low])
	}
}

// compress performs full path compression so every label points at its root.
func compress(eng *parallel.Engine, comp []uint32) {
	eng.ForN(len(comp), func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			for {
				c := parallel.LoadU32(&comp[u])
				cc := parallel.LoadU32(&comp[c])
				if c == cc {
					break
				}
				parallel.StoreU32(&comp[u], cc)
			}
		}
	})
}

// sampleFrequentComponent estimates the most common component label.
func sampleFrequentComponent(comp []uint32) uint32 {
	const samples = 1024
	rng := rand.New(rand.NewSource(42))
	counts := map[uint32]int{}
	n := len(comp)
	if n == 0 {
		return 0
	}
	for i := 0; i < samples; i++ {
		counts[comp[rng.Intn(n)]]++
	}
	best, bestCount := uint32(0), -1
	for c, k := range counts {
		if k > bestCount {
			best, bestCount = c, k
		}
	}
	return best
}

// NumComponents counts distinct labels in a component assignment.
func NumComponents(comp []uint32) int {
	seen := map[uint32]bool{}
	for _, c := range comp {
		seen[c] = true
	}
	return len(seen)
}

// CanonicalizeComponents renames component labels to the minimum vertex ID in
// each component, making assignments from different algorithms comparable.
func CanonicalizeComponents(comp []uint32) []uint32 {
	minOf := map[uint32]uint32{}
	for v, c := range comp {
		if m, ok := minOf[c]; !ok || uint32(v) < m {
			minOf[c] = uint32(v)
		}
	}
	out := make([]uint32, len(comp))
	for v, c := range comp {
		out[v] = minOf[c]
	}
	return out
}
