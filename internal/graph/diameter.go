package graph

import (
	"nwhy/internal/parallel"
)

// Diameter computes the exact diameter (longest shortest path, per
// component) by running a BFS from every vertex in parallel. O(n·m); use
// ApproxDiameter for large graphs.
func Diameter(eng *parallel.Engine, g *Graph) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return parallel.ReduceWith(eng, n, 0,
		func(lo, hi, acc int) int {
			dist := make([]int32, n)
			var queue []uint32
			for src := lo; src < hi; src++ {
				queue = bfsDistances(g, src, dist, queue)
				for _, v := range queue {
					if int(dist[v]) > acc {
						acc = int(dist[v])
					}
				}
			}
			return acc
		},
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
}

// ApproxDiameter lower-bounds the diameter with iterated double sweeps:
// BFS from a start vertex, then from the farthest vertex found, repeating
// for rounds. The bound is exact on trees and usually tight on real-world
// graphs; it never exceeds the true diameter.
func ApproxDiameter(g *Graph, start, rounds int) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	dist := make([]int32, n)
	var queue []uint32
	best := 0
	src := start
	for r := 0; r < rounds; r++ {
		queue = bfsDistances(g, src, dist, queue)
		far, farDist := src, int32(0)
		for _, v := range queue {
			if dist[v] > farDist {
				far, farDist = int(v), dist[v]
			}
		}
		if int(farDist) > best {
			best = int(farDist)
		}
		if far == src {
			break
		}
		src = far
	}
	return best
}

// Radius computes the exact radius: the minimum eccentricity over vertices
// in the largest component (vertices with no neighbors are skipped so a
// lone isolated vertex does not force radius 0).
func Radius(eng *parallel.Engine, g *Graph) int {
	ecc := Eccentricity(eng, g)
	radius := -1
	for v, e := range ecc {
		if g.Degree(v) == 0 {
			continue
		}
		if radius == -1 || int(e) < radius {
			radius = int(e)
		}
	}
	if radius == -1 {
		return 0
	}
	return radius
}
