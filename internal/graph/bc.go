package graph

import (
	"math/rand"

	"nwhy/internal/parallel"
)

// BetweennessCentrality computes exact betweenness centrality with Brandes'
// algorithm, parallelized over sources: every worker runs independent
// single-source dependency accumulations into a private score array and the
// partials are summed. For undirected graphs each pair is counted twice by
// the textbook formulation, so scores are halved; with normalized=true they
// are further scaled by 1/((n-1)(n-2)).
func BetweennessCentrality(eng *parallel.Engine, g *Graph, normalized bool) []float64 {
	n := g.NumVertices()
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	return betweenness(eng, g, sources, normalized, float64(n))
}

// ApproxBetweennessCentrality estimates betweenness from k sampled sources
// (Brandes–Pich style), scaling contributions by n/k.
func ApproxBetweennessCentrality(eng *parallel.Engine, g *Graph, k int, seed int64, normalized bool) []float64 {
	n := g.NumVertices()
	if k >= n {
		return BetweennessCentrality(eng, g, normalized)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return betweenness(eng, g, perm[:k], normalized, float64(n))
}

func betweenness(eng *parallel.Engine, g *Graph, sources []int, normalized bool, n float64) []float64 {
	partials := parallel.NewTLSFor(eng, func() []float64 { return make([]float64, g.NumVertices()) })
	scale := n / float64(len(sources))

	// Grain 1: each source is one grain, so cancellation is observed between
	// single-source Brandes accumulations.
	eng.For(parallel.BlockedGrain(0, len(sources), 1), func(w, lo, hi int) {
		score := *partials.Get(w)
		st := newBrandesState(g.NumVertices())
		for i := lo; i < hi; i++ {
			brandesFromSource(g, sources[i], score, st, scale)
		}
	})

	out := make([]float64, g.NumVertices())
	partials.All(func(s *[]float64) {
		for i, v := range *s {
			out[i] += v
		}
	})
	// Undirected double counting.
	for i := range out {
		out[i] /= 2
	}
	if normalized && n > 2 {
		norm := 1 / ((n - 1) * (n - 2))
		for i := range out {
			out[i] *= norm
		}
	}
	return out
}

// brandesState holds per-worker scratch reused across sources.
type brandesState struct {
	sigma []float64
	delta []float64
	dist  []int32
	order []uint32 // vertices in non-decreasing BFS order
}

func newBrandesState(n int) *brandesState {
	return &brandesState{
		sigma: make([]float64, n),
		delta: make([]float64, n),
		dist:  make([]int32, n),
		order: make([]uint32, 0, n),
	}
}

// brandesFromSource runs one sequential Brandes accumulation, adding each
// vertex's dependency (times scale/1) into score.
func brandesFromSource(g *Graph, src int, score []float64, st *brandesState, scale float64) {
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		st.sigma[i] = 0
		st.delta[i] = 0
		st.dist[i] = -1
	}
	st.order = st.order[:0]
	st.sigma[src] = 1
	st.dist[src] = 0
	st.order = append(st.order, uint32(src))
	// BFS in order; st.order doubles as the queue.
	for head := 0; head < len(st.order); head++ {
		u := st.order[head]
		du := st.dist[u]
		for _, v := range g.Row(int(u)) {
			if st.dist[v] == -1 {
				st.dist[v] = du + 1
				st.order = append(st.order, v)
			}
			if st.dist[v] == du+1 {
				st.sigma[v] += st.sigma[u]
			}
		}
	}
	// Reverse accumulation.
	for i := len(st.order) - 1; i > 0; i-- {
		w := st.order[i]
		coeff := (1 + st.delta[w]) / st.sigma[w]
		for _, v := range g.Row(int(w)) {
			if st.dist[v] == st.dist[w]-1 {
				st.delta[v] += st.sigma[v] * coeff
			}
		}
		score[w] += st.delta[w] * scale
	}
}
