// Package graph is the NWGraph stand-in: a CSR adjacency representation and
// the suite of parallel graph algorithms that NWHy's approximate hypergraph
// analytics delegate to once a hypergraph has been projected to an s-line
// graph, clique expansion, or adjoin graph.
//
// Algorithms provided: breadth-first search (top-down, bottom-up, and
// direction-optimizing), connected components (label propagation,
// Shiloach–Vishkin, and Afforest), single-source shortest paths
// (delta-stepping), betweenness centrality (Brandes), closeness / harmonic
// closeness / eccentricity, PageRank, k-core decomposition, and triangle
// counting.
package graph

import (
	"fmt"

	"nwhy/internal/sparse"
)

// Graph is a square adjacency structure. The undirected algorithms in this
// package assume the adjacency is symmetric (both directions stored); the
// constructors enforce or produce that.
type Graph struct {
	adj *sparse.CSR
	// Weights, when non-nil, alias adj.Val with one weight per stored arc.
}

// FromCSR wraps a square CSR as a Graph. It returns an error if the CSR is
// not square.
func FromCSR(c *sparse.CSR) (*Graph, error) {
	if c.NumRows() != c.NumCols() {
		return nil, fmt.Errorf("graph: adjacency must be square, got %dx%d", c.NumRows(), c.NumCols())
	}
	return &Graph{adj: c}, nil
}

// FromEdgeList builds a graph from an edge list. When undirected is true the
// list is symmetrized (and deduplicated) first.
func FromEdgeList(el *sparse.EdgeList, undirected bool) *Graph {
	if undirected {
		cp := &sparse.EdgeList{NumVertices: el.NumVertices, Edges: append([]sparse.Edge(nil), el.Edges...)}
		cp.Symmetrize()
		el = cp
	}
	return &Graph{adj: sparse.FromEdgeList(el)}
}

// NumVertices reports the vertex count.
func (g *Graph) NumVertices() int { return g.adj.NumRows() }

// NumArcs reports the number of stored directed arcs (2x the undirected edge
// count for symmetric graphs, self-loops counted once).
func (g *Graph) NumArcs() int { return g.adj.NumEdges() }

// Row returns vertex u's neighbor slice (sorted ascending; aliases storage).
func (g *Graph) Row(u int) []uint32 { return g.adj.Row(u) }

// NumRows makes Graph satisfy parallel.Adjacency.
func (g *Graph) NumRows() int { return g.adj.NumRows() }

// Degree reports vertex u's out-degree.
func (g *Graph) Degree(u int) int { return g.adj.Degree(u) }

// Degrees returns all degrees.
func (g *Graph) Degrees() []int { return g.adj.Degrees() }

// Weights returns the per-arc weight slice for vertex u, or nil when the
// graph is unweighted.
func (g *Graph) Weights(u int) []float64 { return g.adj.RowVal(u) }

// Weighted reports whether the graph carries arc weights.
func (g *Graph) Weighted() bool { return g.adj.Val != nil }

// CSR exposes the underlying adjacency (read-only by convention).
func (g *Graph) CSR() *sparse.CSR { return g.adj }

// HasEdge reports whether the arc (u, v) is stored.
func (g *Graph) HasEdge(u int, v uint32) bool { return g.adj.HasEntry(u, v) }

// IsSymmetric verifies that every stored arc has its reverse stored too.
func (g *Graph) IsSymmetric() bool {
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Row(u) {
			if !g.HasEdge(int(v), uint32(u)) {
				return false
			}
		}
	}
	return true
}

// unreachable marks vertices a traversal never reached.
const unreachable = int32(-1)
