package graph

import (
	"nwhy/internal/parallel"
)

// bfsDistances runs a sequential BFS from src into dist (reused scratch;
// entries set to -1 first), returning the visit order.
func bfsDistances(g *Graph, src int, dist []int32, queue []uint32) []uint32 {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = queue[:0]
	queue = append(queue, uint32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Row(int(u)) {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return queue
}

// perSourceScan computes fn over the BFS distance vector of every source in
// parallel (one sequential BFS per source, sources distributed over workers).
func perSourceScan(eng *parallel.Engine, g *Graph, fn func(src int, dist []int32, reached []uint32) float64) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	type scratch struct {
		dist  []int32
		queue []uint32
	}
	tls := parallel.NewTLSFor(eng, func() scratch {
		return scratch{dist: make([]int32, n), queue: make([]uint32, 0, n)}
	})
	eng.For(parallel.BlockedGrain(0, n, 1), func(w, lo, hi int) {
		s := tls.Get(w)
		for src := lo; src < hi; src++ {
			reached := bfsDistances(g, src, s.dist, s.queue)
			s.queue = reached
			out[src] = fn(src, s.dist, reached)
		}
	})
	return out
}

// ClosenessCentrality computes, for every vertex, the closeness
// (n_reachable - 1) / sum-of-distances within its component, following the
// Wasserman–Faust convention of scaling by the reachable fraction:
// ((r-1)/(n-1)) * ((r-1)/sum). Vertices with no reachable peers score 0.
func ClosenessCentrality(eng *parallel.Engine, g *Graph) []float64 {
	n := g.NumVertices()
	return perSourceScan(eng, g, func(src int, dist []int32, reached []uint32) float64 {
		var sum int64
		for _, v := range reached {
			sum += int64(dist[v])
		}
		r := len(reached)
		if r <= 1 || sum == 0 {
			return 0
		}
		c := float64(r-1) / float64(sum)
		if n > 1 {
			c *= float64(r-1) / float64(n-1)
		}
		return c
	})
}

// HarmonicClosenessCentrality computes sum over other vertices of 1/d(u,v)
// (0 for unreachable pairs), normalized by n-1.
func HarmonicClosenessCentrality(eng *parallel.Engine, g *Graph) []float64 {
	n := g.NumVertices()
	return perSourceScan(eng, g, func(src int, dist []int32, reached []uint32) float64 {
		sum := 0.0
		for _, v := range reached {
			if d := dist[v]; d > 0 {
				sum += 1 / float64(d)
			}
		}
		if n > 1 {
			sum /= float64(n - 1)
		}
		return sum
	})
}

// Eccentricity computes, for every vertex, the greatest hop distance to any
// vertex reachable from it. Isolated vertices score 0.
func Eccentricity(eng *parallel.Engine, g *Graph) []float64 {
	return perSourceScan(eng, g, func(src int, dist []int32, reached []uint32) float64 {
		var ecc int32
		for _, v := range reached {
			if dist[v] > ecc {
				ecc = dist[v]
			}
		}
		return float64(ecc)
	})
}

// EccentricityOf computes one vertex's eccentricity without the all-pairs
// sweep.
func EccentricityOf(g *Graph, src int) float64 {
	dist := make([]int32, g.NumVertices())
	reached := bfsDistances(g, src, dist, nil)
	var ecc int32
	for _, v := range reached {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	return float64(ecc)
}

// PageRank runs damped power iteration until the L1 change drops below tol
// or maxIter rounds, returning scores summing to ~1. Dangling mass is
// redistributed uniformly.
func PageRank(eng *parallel.Engine, g *Graph, damping float64, tol float64, maxIter int) []float64 {
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	deg := g.Degrees()
	for iter := 0; iter < maxIter && !eng.Cancelled(); iter++ {
		dangling := parallel.ReduceWith(eng, n, 0.0, func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				if deg[i] == 0 {
					acc += rank[i]
				}
			}
			return acc
		}, func(a, b float64) float64 { return a + b })
		base := (1-damping)*inv + damping*dangling*inv
		// Pull-based update: next[v] = base + d * sum_{u->v} rank[u]/deg[u].
		// The graph is symmetric, so pulling over v's row visits its
		// in-neighbors.
		eng.ForN(n, func(_, lo, hi int) {
			for v := lo; v < hi; v++ {
				sum := 0.0
				for _, u := range g.Row(v) {
					sum += rank[u] / float64(deg[u])
				}
				next[v] = base + damping*sum
			}
		})
		delta := parallel.ReduceWith(eng, n, 0.0, func(lo, hi int, acc float64) float64 {
			for i := lo; i < hi; i++ {
				d := next[i] - rank[i]
				if d < 0 {
					d = -d
				}
				acc += d
			}
			return acc
		}, func(a, b float64) float64 { return a + b })
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	return rank
}

// Coreness computes the k-core number of every vertex with the O(m)
// bin-sort peeling algorithm (Batagelj–Zaveršnik).
func Coreness(g *Graph) []int {
	n := g.NumVertices()
	deg := g.Degrees()
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		c := bin[d]
		bin[d] = start
		start += c
	}
	pos := make([]int, n)
	vert := make([]int, n)
	for v, d := range deg {
		pos[v] = bin[d]
		vert[pos[v]] = v
		bin[d]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0
	core := append([]int(nil), deg...)
	for i := 0; i < n; i++ {
		v := vert[i]
		for _, uu := range g.Row(v) {
			u := int(uu)
			if core[u] > core[v] {
				du := core[u]
				pu := pos[u]
				pw := bin[du]
				w := vert[pw]
				if u != w {
					pos[u] = pw
					vert[pu] = w
					pos[w] = pu
					vert[pw] = u
				}
				bin[du]++
				core[u]--
			}
		}
	}
	return core
}

// TriangleCount counts undirected triangles: for every edge (u, v) with
// u < v, intersect the neighbor sets above v. Requires a symmetric graph
// with sorted rows (as built by FromEdgeList).
func TriangleCount(eng *parallel.Engine, g *Graph) int64 {
	n := g.NumVertices()
	return parallel.ReduceWith(eng, n, int64(0),
		func(lo, hi int, acc int64) int64 {
			for u := lo; u < hi; u++ {
				row := g.Row(u)
				for _, v := range row {
					if int(v) <= u {
						continue
					}
					acc += countCommonAbove(row, g.Row(int(v)), v)
				}
			}
			return acc
		},
		func(a, b int64) int64 { return a + b })
}

// countCommonAbove counts values > floor present in both sorted slices.
func countCommonAbove(a, b []uint32, floor uint32) int64 {
	i, j := 0, 0
	var c int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] <= floor:
			i++
		case b[j] <= floor:
			j++
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
