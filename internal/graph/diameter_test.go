package graph

import (
	"testing"
	"testing/quick"
)

func TestDiameterPath(t *testing.T) {
	if d := Diameter(teng, pathGraph(10)); d != 9 {
		t.Fatalf("path diameter = %d, want 9", d)
	}
}

func TestDiameterComplete(t *testing.T) {
	if d := Diameter(teng, completeGraph(6)); d != 1 {
		t.Fatalf("K6 diameter = %d, want 1", d)
	}
}

func TestDiameterDisconnectedPerComponent(t *testing.T) {
	g := buildGraph(7, [][2]uint32{{0, 1}, {1, 2}, {4, 5}, {5, 6}})
	if d := Diameter(teng, g); d != 2 {
		t.Fatalf("diameter = %d, want 2", d)
	}
}

func TestDiameterEmpty(t *testing.T) {
	if Diameter(teng, buildGraph(3, nil)) != 0 {
		t.Fatal("edgeless diameter != 0")
	}
}

func TestApproxDiameterNeverExceedsExact(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(60, 120, seed)
		exact := Diameter(teng, g)
		approx := ApproxDiameter(g, 0, 4)
		return approx <= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxDiameterExactOnPath(t *testing.T) {
	// Double sweep is exact on trees: starting anywhere on a path it finds
	// an endpoint, then the other endpoint.
	if d := ApproxDiameter(pathGraph(15), 7, 3); d != 14 {
		t.Fatalf("approx diameter = %d, want 14", d)
	}
}

func TestRadiusPath(t *testing.T) {
	// Path of 5: center has eccentricity 2.
	if r := Radius(teng, pathGraph(5)); r != 2 {
		t.Fatalf("radius = %d, want 2", r)
	}
}

func TestRadiusIgnoresIsolated(t *testing.T) {
	g := buildGraph(4, [][2]uint32{{0, 1}, {1, 2}})
	if r := Radius(teng, g); r != 1 {
		t.Fatalf("radius = %d, want 1 (vertex 3 isolated)", r)
	}
}
