package graph

import (
	"context"
	"testing"

	"nwhy/internal/parallel"
)

// TestMISSelectionPhaseRaceDiscipline pins the atomic discipline of the
// MIS selection phase (every state[] element access inside the parallel
// rounds goes through sync/atomic — the invariant nwhy-lint's
// atomic-mixing check enforces). Running a dense graph on a multi-worker
// engine makes the selection and knock-out phases overlap heavily, so a
// reintroduced plain read shows up under -race.
func TestMISSelectionPhaseRaceDiscipline(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	g := randomGraph(400, 4000, 7)
	for seed := int64(0); seed < 4; seed++ {
		set := MaximalIndependentSet(eng, g, seed)
		if !IsMaximalIndependentSet(g, set) {
			t.Fatalf("seed %d: invalid MIS", seed)
		}
	}
}

// TestCCAfforestCancelledEngine pins the per-round cancellation check of
// CCAfforest's neighbor-sampling loop (the invariant nwhy-lint's
// ctx-at-rounds check enforces): on a cancelled engine the driver must
// return promptly with a well-formed (if incomplete) labelling instead of
// spinning rounds whose parallel loops all no-op.
func TestCCAfforestCancelledEngine(t *testing.T) {
	eng := parallel.NewEngine(2)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ceng := eng.WithContext(ctx)

	g := randomGraph(200, 1000, 3)
	comp := CCAfforest(ceng, g)
	if len(comp) != g.NumVertices() {
		t.Fatalf("len(comp) = %d, want %d", len(comp), g.NumVertices())
	}
	// No parallel round ran, so every vertex keeps its identity label.
	for v, c := range comp {
		if c != uint32(v) {
			t.Fatalf("comp[%d] = %d on a cancelled engine, want identity", v, c)
		}
	}
	if err := ceng.Err(); err == nil {
		t.Fatal("cancelled engine reports no error")
	}

	// The same engine handle without the context still computes correctly.
	want := CanonicalizeComponents(ccOracle(g))
	got := CanonicalizeComponents(CCAfforest(eng, g))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("comp[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
