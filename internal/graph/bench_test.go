package graph

import (
	"testing"
)

func benchGraph(b *testing.B) *Graph {
	b.Helper()
	return randomGraph(20000, 200000, 1)
}

func BenchmarkBFSVariants(b *testing.B) {
	g := benchGraph(b)
	for name, fn := range map[string]func(*Graph, int) *BFSResult{
		"topdown":  tBFSTopDown,
		"bottomup": tBFSBottomUp,
		"diropt":   tBFSDirectionOptimizing,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = fn(g, 0)
			}
		})
	}
}

func BenchmarkCCVariants(b *testing.B) {
	g := benchGraph(b)
	for name, fn := range map[string]func(*Graph) []uint32{
		"labelprop": tCCLabelPropagation,
		"sv":        tCCShiloachVishkin,
		"afforest":  tCCAfforest,
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = fn(g)
			}
		})
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	g := weightedRandomGraph(10000, 80000, 2)
	b.Run("auto-delta", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = DeltaStepping(teng, g, 0, 0)
		}
	})
}

func BenchmarkBetweennessApprox(b *testing.B) {
	g := randomGraph(2000, 12000, 3)
	b.Run("k=32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ApproxBetweennessCentrality(teng, g, 32, 1, true)
		}
	})
}

func BenchmarkPageRank(b *testing.B) {
	g := benchGraph(b)
	for i := 0; i < b.N; i++ {
		_ = PageRank(teng, g, 0.85, 1e-8, 100)
	}
}

func BenchmarkTriangleCount(b *testing.B) {
	g := randomGraph(10000, 100000, 4)
	for i := 0; i < b.N; i++ {
		_ = TriangleCount(teng, g)
	}
}
