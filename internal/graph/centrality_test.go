package graph

import (
	"container/heap"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nwhy/internal/sparse"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

// --- SSSP ---

type pqItem struct {
	v uint32
	d float64
}
type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(a, b int) bool  { return q[a].d < q[b].d }
func (q pq) Swap(a, b int)       { q[a], q[b] = q[b], q[a] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	x := old[len(old)-1]
	*q = old[:len(old)-1]
	return x
}

// dijkstraOracle is a textbook Dijkstra for validation.
func dijkstraOracle(g *Graph, src int) []float64 {
	n := g.NumVertices()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = Inf
	}
	dist[src] = 0
	q := &pq{{uint32(src), 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.d > dist[it.v] {
			continue
		}
		row := g.Row(int(it.v))
		ws := g.Weights(int(it.v))
		for k, v := range row {
			w := 1.0
			if ws != nil {
				w = ws[k]
			}
			if nd := it.d + w; nd < dist[v] {
				dist[v] = nd
				heap.Push(q, pqItem{v, nd})
			}
		}
	}
	return dist
}

func weightedRandomGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	el := sparse.NewEdgeList(n)
	var weights []float64
	for i := 0; i < m; i++ {
		u, v := uint32(rng.Intn(n)), uint32(rng.Intn(n))
		if u == v {
			continue
		}
		w := 0.1 + rng.Float64()*9.9
		el.Add(u, v)
		el.Add(v, u)
		weights = append(weights, w, w)
	}
	// Dedup would misalign weights; build directly from pairs instead.
	csr := sparse.FromPairs(n, n, el.Edges, weights)
	g, err := FromCSR(csr)
	if err != nil {
		panic(err)
	}
	return g
}

func TestDeltaSteppingUnweightedMatchesBFS(t *testing.T) {
	g := randomGraph(100, 300, 4)
	want := bfsOracle(g, 0)
	r := DeltaStepping(teng, g, 0, 1)
	for v := range want {
		if want[v] == -1 {
			if !math.IsInf(r.Dist[v], 1) {
				t.Fatalf("vertex %d should be unreachable, dist %v", v, r.Dist[v])
			}
			continue
		}
		if r.Dist[v] != float64(want[v]) {
			t.Fatalf("dist[%d] = %v, want %d", v, r.Dist[v], want[v])
		}
	}
}

func TestDeltaSteppingWeightedMatchesDijkstra(t *testing.T) {
	for _, delta := range []float64{0, 0.5, 3, 100} {
		g := weightedRandomGraph(80, 240, 7)
		want := dijkstraOracle(g, 0)
		r := DeltaStepping(teng, g, 0, delta)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(r.Dist[v], 1) {
				t.Fatalf("delta=%v: reachability mismatch at %d", delta, v)
			}
			if !math.IsInf(want[v], 1) && math.Abs(r.Dist[v]-want[v]) > 1e-9 {
				t.Fatalf("delta=%v: dist[%d] = %v, want %v", delta, v, r.Dist[v], want[v])
			}
		}
	}
}

func TestDeltaSteppingPropertyAgainstDijkstra(t *testing.T) {
	f := func(seed int64) bool {
		g := weightedRandomGraph(40, 100, seed)
		want := dijkstraOracle(g, 0)
		r := DeltaStepping(teng, g, 0, 0)
		for v := range want {
			if math.IsInf(want[v], 1) != math.IsInf(r.Dist[v], 1) {
				return false
			}
			if !math.IsInf(want[v], 1) && math.Abs(r.Dist[v]-want[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPPath(t *testing.T) {
	g := pathGraph(6)
	r := DeltaStepping(teng, g, 0, 1)
	path := r.PathTo(5)
	want := []uint32{0, 1, 2, 3, 4, 5}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if r.PathTo(0) == nil || len(r.PathTo(0)) != 1 {
		t.Fatal("path to source should be the source alone")
	}
}

func TestSSSPPathUnreachable(t *testing.T) {
	g := buildGraph(4, [][2]uint32{{0, 1}})
	r := DeltaStepping(teng, g, 0, 1)
	if r.PathTo(3) != nil {
		t.Fatal("path to unreachable vertex should be nil")
	}
}

func TestSSSPParentsConsistent(t *testing.T) {
	g := weightedRandomGraph(60, 200, 13)
	r := DeltaStepping(teng, g, 0, 0)
	for v := range r.Dist {
		if v == 0 || math.IsInf(r.Dist[v], 1) {
			continue
		}
		p := r.Parent[v]
		if p < 0 {
			t.Fatalf("reachable vertex %d has no parent", v)
		}
		// dist[v] == dist[p] + w(p,v) for some arc p->v.
		found := false
		row := g.Row(int(p))
		ws := g.Weights(int(p))
		for k, u := range row {
			if int(u) == v && almostEqual(r.Dist[p]+ws[k], r.Dist[v]) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("parent edge (%d,%d) does not certify dist", p, v)
		}
	}
}

// --- Betweenness ---

// bcOracle computes betweenness by enumerating all shortest paths via BFS
// path counting (same math as Brandes but trusted-simple).
func bcOracle(g *Graph, normalized bool) []float64 {
	n := g.NumVertices()
	score := make([]float64, n)
	for s := 0; s < n; s++ {
		sigma := make([]float64, n)
		dist := make([]int32, n)
		delta := make([]float64, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		order := []uint32{uint32(s)}
		for h := 0; h < len(order); h++ {
			u := order[h]
			for _, v := range g.Row(int(u)) {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					order = append(order, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, v := range g.Row(int(w)) {
				if dist[v] == dist[w]-1 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			score[w] += delta[w]
		}
	}
	for i := range score {
		score[i] /= 2
	}
	if normalized && n > 2 {
		for i := range score {
			score[i] /= float64(n-1) * float64(n-2)
		}
	}
	return score
}

func TestBetweennessPathGraph(t *testing.T) {
	// On a path 0-1-2-3-4, vertex 2 lies on paths {0,1}x{3,4} plus
	// (1,3): BC(2) = 4... counting unordered pairs through 2: (0,3),(0,4),(1,3),(1,4) = 4.
	got := BetweennessCentrality(teng, pathGraph(5), false)
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Fatalf("BC = %v, want %v", got, want)
		}
	}
}

func TestBetweennessCompleteGraphZero(t *testing.T) {
	got := BetweennessCentrality(teng, completeGraph(6), false)
	for i, v := range got {
		if !almostEqual(v, 0) {
			t.Fatalf("BC[%d] = %v on complete graph, want 0", i, v)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with hub 0 and 5 leaves: hub BC = C(5,2) = 10.
	var pairs [][2]uint32
	for i := 1; i <= 5; i++ {
		pairs = append(pairs, [2]uint32{0, uint32(i)})
	}
	got := BetweennessCentrality(teng, buildGraph(6, pairs), false)
	if !almostEqual(got[0], 10) {
		t.Fatalf("hub BC = %v, want 10", got[0])
	}
	norm := BetweennessCentrality(teng, buildGraph(6, pairs), true)
	if !almostEqual(norm[0], 10.0/(5*4)) {
		t.Fatalf("normalized hub BC = %v", norm[0])
	}
}

func TestBetweennessMatchesOracle(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 60, seed)
		got := BetweennessCentrality(teng, g, false)
		want := bcOracle(g, false)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxBetweennessAllSourcesIsExact(t *testing.T) {
	g := randomGraph(25, 60, 3)
	exact := BetweennessCentrality(teng, g, false)
	approx := ApproxBetweennessCentrality(teng, g, 25, 1, false)
	for i := range exact {
		if math.Abs(exact[i]-approx[i]) > 1e-9 {
			t.Fatal("k = n approximation should equal exact")
		}
	}
}

func TestApproxBetweennessReasonable(t *testing.T) {
	// On the star, any sampled subset still ranks the hub far above leaves.
	var pairs [][2]uint32
	for i := 1; i <= 40; i++ {
		pairs = append(pairs, [2]uint32{0, uint32(i)})
	}
	g := buildGraph(41, pairs)
	got := ApproxBetweennessCentrality(teng, g, 10, 2, false)
	for i := 1; i <= 40; i++ {
		if got[0] <= got[i] {
			t.Fatalf("hub score %v not above leaf %v", got[0], got[i])
		}
	}
}

// --- Closeness, harmonic, eccentricity ---

func TestClosenessPathEndpoints(t *testing.T) {
	g := pathGraph(5) // distances from 0: 0+1+2+3+4 = 10
	got := ClosenessCentrality(teng, g)
	if !almostEqual(got[0], 4.0/10.0) {
		t.Fatalf("closeness[0] = %v, want 0.4", got[0])
	}
	// Middle vertex: distances 2+1+0+1+2 = 6.
	if !almostEqual(got[2], 4.0/6.0) {
		t.Fatalf("closeness[2] = %v", got[2])
	}
}

func TestClosenessDisconnectedScaled(t *testing.T) {
	// Two components of sizes 2 and 3 over n=5: Wasserman–Faust scaling.
	g := buildGraph(5, [][2]uint32{{0, 1}, {2, 3}, {3, 4}})
	got := ClosenessCentrality(teng, g)
	// Vertex 0: reaches 1 at distance 1. c = (1/1) * (1/4) = 0.25.
	if !almostEqual(got[0], 0.25) {
		t.Fatalf("closeness[0] = %v, want 0.25", got[0])
	}
	// Vertex 3: reaches 2,4 at distance 1 each. c = (2/2)*(2/4) = 0.5.
	if !almostEqual(got[3], 0.5) {
		t.Fatalf("closeness[3] = %v, want 0.5", got[3])
	}
}

func TestClosenessIsolatedVertexZero(t *testing.T) {
	g := buildGraph(3, [][2]uint32{{0, 1}})
	if got := ClosenessCentrality(teng, g); got[2] != 0 {
		t.Fatalf("isolated closeness = %v", got[2])
	}
}

func TestHarmonicPath(t *testing.T) {
	g := pathGraph(3)
	got := HarmonicClosenessCentrality(teng, g)
	// Vertex 0: 1/1 + 1/2 = 1.5, normalized by n-1=2 -> 0.75.
	if !almostEqual(got[0], 0.75) {
		t.Fatalf("harmonic[0] = %v", got[0])
	}
	// Vertex 1: 1 + 1 = 2 -> 1.0.
	if !almostEqual(got[1], 1.0) {
		t.Fatalf("harmonic[1] = %v", got[1])
	}
}

func TestHarmonicDisconnected(t *testing.T) {
	g := buildGraph(4, [][2]uint32{{0, 1}})
	got := HarmonicClosenessCentrality(teng, g)
	if !almostEqual(got[0], 1.0/3.0) {
		t.Fatalf("harmonic[0] = %v, want 1/3", got[0])
	}
	if got[2] != 0 {
		t.Fatalf("isolated harmonic = %v", got[2])
	}
}

func TestEccentricityPath(t *testing.T) {
	g := pathGraph(5)
	got := Eccentricity(teng, g)
	want := []float64{4, 3, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ecc = %v, want %v", got, want)
		}
	}
	if EccentricityOf(g, 0) != 4 {
		t.Fatalf("EccentricityOf(0) = %v", EccentricityOf(g, 0))
	}
}

func TestEccentricityDisconnectedPerComponent(t *testing.T) {
	g := buildGraph(5, [][2]uint32{{0, 1}, {2, 3}, {3, 4}})
	got := Eccentricity(teng, g)
	if got[0] != 1 || got[2] != 2 || got[3] != 1 {
		t.Fatalf("ecc = %v", got)
	}
}

// --- PageRank ---

func TestPageRankSumsToOne(t *testing.T) {
	g := randomGraph(100, 400, 8)
	pr := PageRank(teng, g, 0.85, 1e-10, 200)
	sum := 0.0
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("PageRank sums to %v", sum)
	}
}

func TestPageRankCycleUniform(t *testing.T) {
	var pairs [][2]uint32
	const n = 10
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]uint32{uint32(i), uint32((i + 1) % n)})
	}
	pr := PageRank(teng, buildGraph(n, pairs), 0.85, 1e-12, 500)
	for i, v := range pr {
		if math.Abs(v-0.1) > 1e-6 {
			t.Fatalf("cycle PageRank[%d] = %v, want 0.1", i, v)
		}
	}
}

func TestPageRankStarHubHighest(t *testing.T) {
	var pairs [][2]uint32
	for i := 1; i <= 20; i++ {
		pairs = append(pairs, [2]uint32{0, uint32(i)})
	}
	pr := PageRank(teng, buildGraph(21, pairs), 0.85, 1e-10, 200)
	for i := 1; i <= 20; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub rank %v not above leaf %v", pr[0], pr[i])
		}
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	// Graph with an isolated (dangling, degree-0) vertex must still sum to 1.
	g := buildGraph(3, [][2]uint32{{0, 1}})
	pr := PageRank(teng, g, 0.85, 1e-12, 500)
	sum := pr[0] + pr[1] + pr[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

// --- k-core ---

func TestCorenessCompleteGraph(t *testing.T) {
	core := Coreness(completeGraph(5))
	for i, c := range core {
		if c != 4 {
			t.Fatalf("coreness[%d] = %d, want 4", i, c)
		}
	}
}

func TestCorenessPath(t *testing.T) {
	core := Coreness(pathGraph(5))
	for i, c := range core {
		if c != 1 {
			t.Fatalf("coreness[%d] = %d, want 1", i, c)
		}
	}
}

func TestCorenessTriangleWithTail(t *testing.T) {
	// Triangle 0-1-2 plus tail 2-3: coreness 2,2,2,1.
	g := buildGraph(4, [][2]uint32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	core := Coreness(g)
	want := []int{2, 2, 2, 1}
	for i := range want {
		if core[i] != want[i] {
			t.Fatalf("coreness = %v, want %v", core, want)
		}
	}
}

func TestCorenessInvariantDegreeBound(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(50, 150, seed)
		core := Coreness(g)
		for v, c := range core {
			if c > g.Degree(v) {
				return false
			}
			// Each vertex must have >= c neighbors with coreness >= c.
			cnt := 0
			for _, u := range g.Row(v) {
				if core[u] >= c {
					cnt++
				}
			}
			if cnt < c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// --- Triangles ---

func TestTriangleCountK4(t *testing.T) {
	if got := TriangleCount(teng, completeGraph(4)); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
}

func TestTriangleCountPathZero(t *testing.T) {
	if got := TriangleCount(teng, pathGraph(10)); got != 0 {
		t.Fatalf("path triangles = %d", got)
	}
}

func TestTriangleCountMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(30, 90, seed)
		var want int64
		n := g.NumVertices()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				if !g.HasEdge(a, uint32(b)) {
					continue
				}
				for c := b + 1; c < n; c++ {
					if g.HasEdge(b, uint32(c)) && g.HasEdge(a, uint32(c)) {
						want++
					}
				}
			}
		}
		return TriangleCount(teng, g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
