package graph

import (
	"testing"
	"testing/quick"
)

// bfsOracle is a trivially correct sequential BFS returning levels.
func bfsOracle(g *Graph, src int) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []int{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Row(u) {
			if level[v] == -1 {
				level[v] = level[u] + 1
				queue = append(queue, int(v))
			}
		}
	}
	return level
}

func checkLevels(t *testing.T, name string, got, want []int32) {
	t.Helper()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("%s: level[%d] = %d, want %d", name, v, got[v], want[v])
		}
	}
}

// checkParents verifies parent pointers are consistent with levels.
func checkParents(t *testing.T, name string, g *Graph, r *BFSResult, src int) {
	t.Helper()
	for v := range r.Level {
		switch {
		case v == src:
			if r.Parent[v] != -1 {
				t.Fatalf("%s: source parent = %d", name, r.Parent[v])
			}
		case r.Level[v] == -1:
			if r.Parent[v] != -1 {
				t.Fatalf("%s: unreachable %d has parent %d", name, v, r.Parent[v])
			}
		default:
			p := r.Parent[v]
			if p < 0 {
				t.Fatalf("%s: reached %d has no parent", name, v)
			}
			if r.Level[p] != r.Level[v]-1 {
				t.Fatalf("%s: parent level %d for child level %d", name, r.Level[p], r.Level[v])
			}
			if !g.HasEdge(int(p), uint32(v)) {
				t.Fatalf("%s: parent %d not adjacent to %d", name, p, v)
			}
		}
	}
}

func runAllBFS(t *testing.T, g *Graph, src int) {
	t.Helper()
	want := bfsOracle(g, src)
	for name, fn := range map[string]func(*Graph, int) *BFSResult{
		"topdown":  tBFSTopDown,
		"bottomup": tBFSBottomUp,
		"diropt":   tBFSDirectionOptimizing,
	} {
		r := fn(g, src)
		checkLevels(t, name, r.Level, want)
		checkParents(t, name, g, r, src)
	}
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(10)
	runAllBFS(t, g, 0)
	runAllBFS(t, g, 5)
}

func TestBFSComplete(t *testing.T) {
	runAllBFS(t, completeGraph(8), 3)
}

func TestBFSDisconnected(t *testing.T) {
	g := buildGraph(6, [][2]uint32{{0, 1}, {1, 2}, {4, 5}})
	runAllBFS(t, g, 0)
	r := tBFSTopDown(g, 0)
	if r.Level[3] != -1 || r.Level[4] != -1 {
		t.Fatal("vertices in other components should be unreachable")
	}
	if r.Reached() != 3 {
		t.Fatalf("Reached = %d, want 3", r.Reached())
	}
}

func TestBFSSingleVertex(t *testing.T) {
	g := buildGraph(1, nil)
	r := tBFSTopDown(g, 0)
	if r.Level[0] != 0 || r.Reached() != 1 {
		t.Fatal("single-vertex BFS wrong")
	}
}

func TestBFSSelfLoop(t *testing.T) {
	g := buildGraph(2, [][2]uint32{{0, 0}, {0, 1}})
	runAllBFS(t, g, 0)
}

func TestBFSStar(t *testing.T) {
	// Star forces a huge level-1 frontier: exercises the bottom-up switch.
	var pairs [][2]uint32
	for i := 1; i < 500; i++ {
		pairs = append(pairs, [2]uint32{0, uint32(i)})
	}
	runAllBFS(t, buildGraph(500, pairs), 0)
}

func TestBFSRandomAgreement(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(60, 150, seed)
		want := bfsOracle(g, 0)
		for _, fn := range []func(*Graph, int) *BFSResult{tBFSTopDown, tBFSBottomUp, tBFSDirectionOptimizing} {
			r := fn(g, 0)
			for v := range want {
				if r.Level[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSDeterministicLevels(t *testing.T) {
	g := randomGraph(200, 600, 9)
	a := tBFSTopDown(g, 0)
	for i := 0; i < 5; i++ {
		b := tBFSTopDown(g, 0)
		for v := range a.Level {
			if a.Level[v] != b.Level[v] {
				t.Fatalf("levels differ across runs at %d", v)
			}
		}
	}
}
