// Package sparse provides the compressed sparse data structures underneath
// every hypergraph representation in NWHy-Go: edge lists, bipartite edge
// lists (the paper's biedgelist), rectangular CSR incidence structures (the
// paper's biadjacency), and the relabel-by-degree permutation machinery.
//
// The central design point, taken from the paper, is that hypergraph
// incidence matrices are rectangular: the hyperedge and hypernode index
// spaces are distinct and may have different sizes, so nothing here assumes
// square dimensions.
package sparse

import (
	"fmt"

	"nwhy/internal/parallel"
)

// Edge is one (source, target) pair. In a BiEdgeList, U indexes the first
// partition (hyperedges) and V the second (hypernodes); in a plain EdgeList
// both ends share one index space.
type Edge struct {
	U, V uint32
}

// EdgeList is a list of edges over a single index space of NumVertices
// vertices, the form consumed by general graph construction (adjoin graphs,
// s-line graphs, clique expansions).
type EdgeList struct {
	NumVertices int
	Edges       []Edge
}

// NewEdgeList creates an empty edge list over n vertices.
func NewEdgeList(n int) *EdgeList { return &EdgeList{NumVertices: n} }

// Add appends the edge (u, v), growing the vertex count if needed.
func (el *EdgeList) Add(u, v uint32) {
	el.Edges = append(el.Edges, Edge{u, v})
	if int(u) >= el.NumVertices {
		el.NumVertices = int(u) + 1
	}
	if int(v) >= el.NumVertices {
		el.NumVertices = int(v) + 1
	}
}

// Len reports the number of edges.
func (el *EdgeList) Len() int { return len(el.Edges) }

// Sort orders edges by (U, V).
func (el *EdgeList) Sort() { sortEdges(el.Edges) }

// SortOn is Sort scheduled on engine e's pool. A cancelled engine leaves the
// list a permutation of its input; callers detect the abort with e.Err().
func (el *EdgeList) SortOn(e *parallel.Engine) { sortEdgesOn(e, el.Edges) }

// Dedup removes duplicate edges. The list is sorted as a side effect.
func (el *EdgeList) Dedup() {
	el.Sort()
	el.Edges = dedupEdges(el.Edges)
}

// Symmetrize appends the reverse of every edge and removes duplicates, so
// the list represents an undirected graph with both directions materialized.
// Self-loops are kept (once).
func (el *EdgeList) Symmetrize() {
	n := len(el.Edges)
	for i := 0; i < n; i++ {
		e := el.Edges[i]
		if e.U != e.V {
			el.Edges = append(el.Edges, Edge{e.V, e.U})
		}
	}
	el.Dedup()
}

// RemoveSelfLoops drops edges with U == V.
func (el *EdgeList) RemoveSelfLoops() {
	out := el.Edges[:0]
	for _, e := range el.Edges {
		if e.U != e.V {
			out = append(out, e)
		}
	}
	el.Edges = out
}

// Validate checks that all endpoints are within the vertex range.
func (el *EdgeList) Validate() error {
	for i, e := range el.Edges {
		if int(e.U) >= el.NumVertices || int(e.V) >= el.NumVertices {
			return fmt.Errorf("sparse: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, el.NumVertices)
		}
	}
	return nil
}

// BiEdgeList is the paper's biedgelist (Listing 1): a list of incidences
// between two disjoint index spaces, N0 hyperedges and N1 hypernodes. Every
// edge has U in [0, N0) and V in [0, N1). Weights, if non-nil, align with
// Edges and carry one attribute per incidence.
type BiEdgeList struct {
	N0, N1  int
	Edges   []Edge
	Weights []float64
}

// NewBiEdgeList creates an empty bipartite edge list with the given
// partition cardinalities (the paper's vertex_cardinality_ array).
func NewBiEdgeList(n0, n1 int) *BiEdgeList { return &BiEdgeList{N0: n0, N1: n1} }

// Add appends the incidence (hyperedge e, hypernode v), growing the
// partition cardinalities as needed.
func (bel *BiEdgeList) Add(e, v uint32) {
	bel.Edges = append(bel.Edges, Edge{e, v})
	if int(e) >= bel.N0 {
		bel.N0 = int(e) + 1
	}
	if int(v) >= bel.N1 {
		bel.N1 = int(v) + 1
	}
}

// AddWeighted appends a weighted incidence. Mixing Add and AddWeighted on
// one list is invalid.
func (bel *BiEdgeList) AddWeighted(e, v uint32, w float64) {
	bel.Add(e, v)
	bel.Weights = append(bel.Weights, w)
}

// Len reports the number of incidences.
func (bel *BiEdgeList) Len() int { return len(bel.Edges) }

// NumVertices returns the cardinality of partition idx (0 = hyperedges,
// 1 = hypernodes), mirroring num_vertices(g, idx) in the paper's API.
func (bel *BiEdgeList) NumVertices(idx int) int {
	if idx == 0 {
		return bel.N0
	}
	return bel.N1
}

// Dedup removes duplicate incidences (keeping the first weight of each
// group when weights are present). The list is sorted by (U, V).
func (bel *BiEdgeList) Dedup() {
	// Dedup cannot fail without an engine: the nil-engine radix path never
	// cancels, so the error return of dedupOn is structurally nil here.
	_ = bel.dedupOn(nil)
}

// DedupOn is Dedup scheduled on engine e's pool, observing e's cancellation
// between radix passes. On cancellation the list is left a (possibly
// unsorted, weight-aligned) permutation of its input and e's error is
// returned.
func (bel *BiEdgeList) DedupOn(e *parallel.Engine) error {
	return bel.dedupOn(e)
}

func (bel *BiEdgeList) dedupOn(e *parallel.Engine) error {
	if len(bel.Edges) == 0 {
		return nil
	}
	if bel.Weights == nil {
		sortEdgesOn(e, bel.Edges)
		if e != nil && e.Err() != nil {
			return e.Err()
		}
		bel.Edges = dedupEdges(bel.Edges)
		return nil
	}
	// Weighted: sort a permutation instead of the edges so weights follow.
	// The radix sort is stable, so the first occurrence of a duplicate group
	// stays first and the first-weight-wins rule below needs no tiebreak.
	idx := make([]int, len(bel.Edges))
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) uint64 { return edgeKey(bel.Edges[i]) }
	if e == nil {
		parallel.RadixSort64(idx, key)
	} else {
		parallel.RadixSort64On(e, idx, key)
		if e.Err() != nil {
			return e.Err()
		}
	}
	edges := make([]Edge, 0, len(bel.Edges))
	weights := make([]float64, 0, len(bel.Weights))
	for k, i := range idx {
		if k > 0 && bel.Edges[i] == edges[len(edges)-1] {
			continue
		}
		edges = append(edges, bel.Edges[i])
		weights = append(weights, bel.Weights[i])
	}
	bel.Edges = edges
	bel.Weights = weights
	return nil
}

// Validate checks all incidences are inside the declared partitions.
func (bel *BiEdgeList) Validate() error {
	if bel.Weights != nil && len(bel.Weights) != len(bel.Edges) {
		return fmt.Errorf("sparse: %d weights for %d edges", len(bel.Weights), len(bel.Edges))
	}
	for i, e := range bel.Edges {
		if int(e.U) >= bel.N0 {
			return fmt.Errorf("sparse: incidence %d hyperedge %d out of range [0,%d)", i, e.U, bel.N0)
		}
		if int(e.V) >= bel.N1 {
			return fmt.Errorf("sparse: incidence %d hypernode %d out of range [0,%d)", i, e.V, bel.N1)
		}
	}
	return nil
}

// Transpose returns the bipartite edge list of the dual hypergraph: every
// incidence (e, v) becomes (v, e) and the partition cardinalities swap.
func (bel *BiEdgeList) Transpose() *BiEdgeList {
	out := &BiEdgeList{N0: bel.N1, N1: bel.N0, Edges: make([]Edge, len(bel.Edges))}
	for i, e := range bel.Edges {
		out.Edges[i] = Edge{e.V, e.U}
	}
	if bel.Weights != nil {
		out.Weights = append([]float64(nil), bel.Weights...)
	}
	return out
}

// edgeKey packs an edge into the radix key ordering (U, V) pairs: U in the
// high 32 bits, V in the low.
func edgeKey(e Edge) uint64 { return uint64(e.U)<<32 | uint64(e.V) }

func sortEdges(edges []Edge) { sortEdgesOn(nil, edges) }

// sortEdgesOn orders edges by (U, V) with the parallel LSD radix sort, after
// a cheap sortedness scan so already-canonical inputs (snapshot loads,
// pre-sorted files) skip the passes entirely. nil engine = default pool.
func sortEdgesOn(e *parallel.Engine, edges []Edge) {
	sorted := true
	for i := 1; i < len(edges); i++ {
		if edgeKey(edges[i-1]) > edgeKey(edges[i]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if e == nil {
		parallel.RadixSort64(edges, edgeKey)
	} else {
		parallel.RadixSort64On(e, edges, edgeKey)
	}
}

func dedupEdges(edges []Edge) []Edge {
	out := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// maxParallelThreshold is the size below which construction helpers run
// sequentially; tiny inputs are not worth scheduling overhead.
const maxParallelThreshold = 1 << 12

// countInto bumps counts[key(i)] for i in [0, n), in parallel for large n.
// The parallel path dispatches between per-worker count arrays merged at the
// end (immune to the cache-line contention a skewed key distribution puts on
// shared atomics) and a shared atomic scatter (cheaper when the count array
// is too large to replicate per worker).
func countInto(n int, counts []int64, key func(i int) uint32) {
	if n < maxParallelThreshold {
		for i := 0; i < n; i++ {
			counts[key(i)]++
		}
		return
	}
	if len(counts)*parallel.Default().NumWorkers() <= 4*n {
		countIntoPerWorker(n, counts, key)
	} else {
		countIntoAtomic(n, counts, key)
	}
}

// countIntoPerWorker gives each worker a private count array and merges them
// into counts afterwards. Replication costs workers x len(counts) memory and
// a merge pass, which the countInto dispatcher bounds against n.
func countIntoPerWorker(n int, counts []int64, key func(i int) uint32) {
	locals := make([][]int64, parallel.Default().NumWorkers())
	parallel.For(n, func(w, lo, hi int) {
		local := locals[w]
		if local == nil {
			local = make([]int64, len(counts))
			locals[w] = local
		}
		for i := lo; i < hi; i++ {
			local[key(i)]++
		}
	})
	parallel.For(len(counts), func(_, lo, hi int) {
		for _, local := range locals {
			if local == nil {
				continue
			}
			for j := lo; j < hi; j++ {
				counts[j] += local[j]
			}
		}
	})
}

// countIntoAtomic scatters increments straight into the shared count array.
func countIntoAtomic(n int, counts []int64, key func(i int) uint32) {
	parallel.For(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			parallel.AddI64(&counts[key(i)], 1)
		}
	})
}
