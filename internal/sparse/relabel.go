package sparse

import (
	"nwhy/internal/parallel"
)

// Order selects a relabel-by-degree direction. Relabeling by degree
// (permute-by-row/column) improves workload distribution and memory access
// patterns for skewed inputs; the paper notes it cannot be applied to adjoin
// graphs directly because it would intermingle hyperedge and hypernode IDs —
// the motivation for the queue-based s-line-graph algorithms.
type Order int

const (
	// NoOrder leaves IDs as they are.
	NoOrder Order = iota
	// Ascending gives the smallest IDs to the lowest-degree vertices.
	Ascending
	// Descending gives the smallest IDs to the highest-degree vertices.
	Descending
)

func (o Order) String() string {
	switch o {
	case Ascending:
		return "ascending"
	case Descending:
		return "descending"
	default:
		return "none"
	}
}

// DegreePerm computes the relabel-by-degree permutation for the given
// degrees: perm[newID] = oldID, inv[oldID] = newID. Ties break by old ID so
// the permutation is deterministic (the radix sort is stable over the
// identity-initialized permutation). NoOrder returns identity permutations.
func DegreePerm(degrees []int, order Order) (perm, inv []uint32) {
	n := len(degrees)
	perm = make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	switch order {
	case Ascending:
		parallel.RadixSort64(perm, func(id uint32) uint64 { return uint64(degrees[id]) })
	case Descending:
		// Key on maxDeg−deg rather than a bit flip so the pass count stays
		// proportional to the degree range.
		maxDeg := 0
		for _, d := range degrees {
			if d > maxDeg {
				maxDeg = d
			}
		}
		parallel.RadixSort64(perm, func(id uint32) uint64 { return uint64(maxDeg - degrees[id]) })
	}
	return perm, InvertPerm(perm)
}

// InvertPerm returns the inverse of a permutation: inv[perm[i]] = i. With
// perm[newID] = oldID the result reads inv[oldID] = newID.
func InvertPerm(perm []uint32) []uint32 {
	inv := make([]uint32, len(perm))
	for newID, oldID := range perm {
		inv[oldID] = uint32(newID)
	}
	return inv
}

// ApplyPerm is the one permutation primitive every relabeling shares. It
// returns a copy of c with its row space permuted by rowPerm (row newID of
// the result is row rowPerm[newID] of the input) and every column value v
// replaced by colInv[v], re-sorting rows when a column map is applied so the
// sorted-rows invariant holds. Either argument may be nil for identity; both
// nil degrades to Clone. rowPerm must be a permutation of [0, NumRows()) and
// colInv a permutation of [0, NumCols()) — composing ApplyPerm(rowPerm,
// colInv) with ApplyPerm(InvertPerm(rowPerm), InvertPerm(colInv)) yields a
// CSR byte-identical to the input.
func (c *CSR) ApplyPerm(rowPerm, colInv []uint32) *CSR {
	out := &CSR{nrows: c.nrows, ncols: c.ncols}
	out.RowPtr = make([]int64, c.nrows+1)
	if rowPerm == nil {
		copy(out.RowPtr, c.RowPtr)
	} else {
		for newID, oldID := range rowPerm {
			out.RowPtr[newID+1] = out.RowPtr[newID] + int64(c.Degree(int(oldID)))
		}
	}
	out.Col = make([]uint32, len(c.Col))
	if c.Val != nil {
		out.Val = make([]float64, len(c.Val))
	}
	parallel.For(c.nrows, func(_, lo, hi int) {
		for newID := lo; newID < hi; newID++ {
			oldID := newID
			if rowPerm != nil {
				oldID = int(rowPerm[newID])
			}
			dst := out.Col[out.RowPtr[newID]:out.RowPtr[newID+1]]
			copy(dst, c.Row(oldID))
			if colInv != nil {
				for k, v := range dst {
					dst[k] = colInv[v]
				}
			}
			if c.Val != nil {
				copy(out.Val[out.RowPtr[newID]:out.RowPtr[newID+1]], c.RowVal(oldID))
			}
		}
	})
	if colInv != nil {
		out.sortRows()
	}
	return out
}

// RelabelHyperedges renames the hyperedge index space of a mutually indexed
// biadjacency pair by degree: row newID of the returned edges CSR is row
// perm[newID] of the input, and every hyperedge ID appearing in the nodes
// CSR is mapped through inv. Hypernode IDs are untouched. It returns the
// relabeled pair plus perm (perm[newID] = oldID) for mapping results back.
func RelabelHyperedges(edges, nodes *CSR, order Order) (redges, rnodes *CSR, perm []uint32) {
	if order == NoOrder {
		return edges, nodes, identityPerm(edges.NumRows())
	}
	perm, inv := DegreePerm(edges.Degrees(), order)
	redges = edges.ApplyPerm(perm, nil)
	rnodes = nodes.ApplyPerm(nil, inv)
	return redges, rnodes, perm
}

// RelabelSquare relabels a square adjacency by degree, permuting both rows
// and column values. Returns the relabeled graph and perm[newID] = oldID.
func RelabelSquare(g *CSR, order Order) (*CSR, []uint32) {
	if order == NoOrder {
		return g, identityPerm(g.NumRows())
	}
	perm, inv := DegreePerm(g.Degrees(), order)
	return g.ApplyPerm(perm, inv), perm
}

func identityPerm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}
