package sparse

import (
	"sort"

	"nwhy/internal/parallel"
)

// Order selects a relabel-by-degree direction. Relabeling by degree
// (permute-by-row/column) improves workload distribution and memory access
// patterns for skewed inputs; the paper notes it cannot be applied to adjoin
// graphs directly because it would intermingle hyperedge and hypernode IDs —
// the motivation for the queue-based s-line-graph algorithms.
type Order int

const (
	// NoOrder leaves IDs as they are.
	NoOrder Order = iota
	// Ascending gives the smallest IDs to the lowest-degree vertices.
	Ascending
	// Descending gives the smallest IDs to the highest-degree vertices.
	Descending
)

func (o Order) String() string {
	switch o {
	case Ascending:
		return "ascending"
	case Descending:
		return "descending"
	default:
		return "none"
	}
}

// DegreePerm computes the relabel-by-degree permutation for the given
// degrees: perm[newID] = oldID, inv[oldID] = newID. Ties break by old ID so
// the permutation is deterministic. NoOrder returns identity permutations.
func DegreePerm(degrees []int, order Order) (perm, inv []uint32) {
	n := len(degrees)
	perm = make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	switch order {
	case Ascending:
		sort.SliceStable(perm, func(a, b int) bool { return degrees[perm[a]] < degrees[perm[b]] })
	case Descending:
		sort.SliceStable(perm, func(a, b int) bool { return degrees[perm[a]] > degrees[perm[b]] })
	}
	inv = make([]uint32, n)
	for newID, oldID := range perm {
		inv[oldID] = uint32(newID)
	}
	return perm, inv
}

// RelabelHyperedges renames the hyperedge index space of a mutually indexed
// biadjacency pair by degree: row newID of the returned edges CSR is row
// perm[newID] of the input, and every hyperedge ID appearing in the nodes
// CSR is mapped through inv. Hypernode IDs are untouched. It returns the
// relabeled pair plus perm (perm[newID] = oldID) for mapping results back.
func RelabelHyperedges(edges, nodes *CSR, order Order) (redges, rnodes *CSR, perm []uint32) {
	if order == NoOrder {
		return edges, nodes, identityPerm(edges.NumRows())
	}
	perm, inv := DegreePerm(edges.Degrees(), order)
	redges = permuteRows(edges, perm)
	rnodes = mapColumns(nodes, inv)
	return redges, rnodes, perm
}

// RelabelSquare relabels a square adjacency by degree, permuting both rows
// and column values. Returns the relabeled graph and perm[newID] = oldID.
func RelabelSquare(g *CSR, order Order) (*CSR, []uint32) {
	if order == NoOrder {
		return g, identityPerm(g.NumRows())
	}
	perm, inv := DegreePerm(g.Degrees(), order)
	out := mapColumns(permuteRows(g, perm), inv)
	out.sortRows()
	return out, perm
}

func identityPerm(n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	return p
}

// permuteRows builds a CSR whose row newID is the input's row perm[newID].
func permuteRows(c *CSR, perm []uint32) *CSR {
	out := &CSR{nrows: c.nrows, ncols: c.ncols}
	out.RowPtr = make([]int64, c.nrows+1)
	for newID, oldID := range perm {
		out.RowPtr[newID+1] = out.RowPtr[newID] + int64(c.Degree(int(oldID)))
	}
	out.Col = make([]uint32, len(c.Col))
	if c.Val != nil {
		out.Val = make([]float64, len(c.Val))
	}
	parallel.For(c.nrows, func(_, lo, hi int) {
		for newID := lo; newID < hi; newID++ {
			oldID := int(perm[newID])
			copy(out.Col[out.RowPtr[newID]:out.RowPtr[newID+1]], c.Row(oldID))
			if c.Val != nil {
				copy(out.Val[out.RowPtr[newID]:out.RowPtr[newID+1]], c.RowVal(oldID))
			}
		}
	})
	return out
}

// mapColumns builds a CSR with every column value v replaced by inv[v],
// re-sorting rows to keep them ascending.
func mapColumns(c *CSR, inv []uint32) *CSR {
	out := c.Clone()
	parallel.For(len(out.Col), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Col[i] = inv[out.Col[i]]
		}
	})
	out.sortRows()
	return out
}
