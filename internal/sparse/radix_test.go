package sparse

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"nwhy/internal/parallel"
)

func randomEdges(n int, space uint32, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, n)
	for i := range edges {
		edges[i] = Edge{U: rng.Uint32() % space, V: rng.Uint32() % space}
	}
	return edges
}

// sortEdgesRef is the comparison sort the radix path replaced; parity with
// it is the acceptance bar.
func sortEdgesRef(edges []Edge) {
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
}

func TestSortEdgesMatchesComparisonSort(t *testing.T) {
	for _, n := range []int{0, 1, 10, 1 << 10, 1 << 14} {
		got := randomEdges(n, 1<<16, int64(n))
		want := append([]Edge(nil), got...)
		sortEdgesRef(want)
		sortEdges(got)
		if !equalEdges(got, want) {
			t.Fatalf("n=%d: radix order differs from comparison sort", n)
		}
	}
}

func TestSortOnEngine(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	el := &EdgeList{NumVertices: 1 << 16, Edges: randomEdges(1<<14, 1<<16, 3)}
	want := append([]Edge(nil), el.Edges...)
	sortEdgesRef(want)
	el.SortOn(eng)
	if !equalEdges(el.Edges, want) {
		t.Fatal("SortOn order differs from comparison sort")
	}
}

func TestBiEdgeListDedupLargeParity(t *testing.T) {
	// Above the radix serial cutoff, with heavy duplication.
	edges := randomEdges(1<<14, 64, 7)
	bel := &BiEdgeList{N0: 64, N1: 64, Edges: append([]Edge(nil), edges...)}
	bel.Dedup()
	seen := map[Edge]bool{}
	for _, e := range edges {
		seen[e] = true
	}
	if len(bel.Edges) != len(seen) {
		t.Fatalf("dedup kept %d edges, want %d distinct", len(bel.Edges), len(seen))
	}
	for i := 1; i < len(bel.Edges); i++ {
		if edgeKey(bel.Edges[i-1]) >= edgeKey(bel.Edges[i]) {
			t.Fatalf("dedup output not strictly increasing at %d", i)
		}
	}
}

// First-weight-wins must survive the switch to the stable index radix sort,
// at a size that exercises the parallel path.
func TestBiEdgeListDedupWeightedFirstWinsLarge(t *testing.T) {
	const n = 1 << 14
	rng := rand.New(rand.NewSource(11))
	bel := &BiEdgeList{N0: 32, N1: 32}
	first := map[Edge]float64{}
	for i := 0; i < n; i++ {
		e := Edge{U: rng.Uint32() % 32, V: rng.Uint32() % 32}
		w := float64(i)
		bel.Edges = append(bel.Edges, e)
		bel.Weights = append(bel.Weights, w)
		if _, ok := first[e]; !ok {
			first[e] = w
		}
	}
	bel.Dedup()
	if len(bel.Edges) != len(first) {
		t.Fatalf("dedup kept %d, want %d", len(bel.Edges), len(first))
	}
	for i, e := range bel.Edges {
		if bel.Weights[i] != first[e] {
			t.Fatalf("edge %v kept weight %v, want first occurrence %v", e, bel.Weights[i], first[e])
		}
	}
}

func TestDedupOnCancelledEngine(t *testing.T) {
	eng := parallel.NewEngine(4)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ceng := eng.WithContext(ctx)
	bel := &BiEdgeList{N0: 1 << 16, N1: 1 << 16, Edges: randomEdges(1<<15, 1<<16, 5)}
	n := bel.Len()
	if err := bel.DedupOn(ceng); err == nil {
		t.Fatal("DedupOn on a cancelled engine returned nil error")
	}
	if bel.Len() != n {
		t.Fatalf("cancelled DedupOn changed length: %d -> %d", n, bel.Len())
	}
}

func equalEdges(a, b []Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
