package sparse

import (
	"math/rand"
	"testing"
)

// skewedKeys draws keys with a power-law-ish tail: a handful of hot rows get
// most increments, the regime where the shared atomic scatter contends.
func skewedKeys(n int, rows uint32, seed int64) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint32, n)
	for i := range keys {
		if rng.Intn(4) != 0 { // 75% of traffic on 8 hot rows
			keys[i] = rng.Uint32() % 8
		} else {
			keys[i] = rng.Uint32() % rows
		}
	}
	return keys
}

func TestCountIntoVariantsAgree(t *testing.T) {
	for _, tc := range []struct {
		n    int
		rows uint32
	}{
		{100, 16},          // serial path
		{1 << 14, 64},      // per-worker path (small count array)
		{1 << 13, 1 << 20}, // atomic path (count array dwarfs n)
	} {
		keys := skewedKeys(tc.n, tc.rows, int64(tc.n))
		want := make([]int64, tc.rows)
		for _, k := range keys {
			want[k]++
		}
		via := func(name string, fn func(int, []int64, func(int) uint32)) {
			counts := make([]int64, tc.rows)
			fn(tc.n, counts, func(i int) uint32 { return keys[i] })
			for r := range want {
				if counts[r] != want[r] {
					t.Fatalf("%s n=%d rows=%d: counts[%d] = %d, want %d", name, tc.n, tc.rows, r, counts[r], want[r])
				}
			}
		}
		via("countInto", countInto)
		via("perWorker", countIntoPerWorker)
		via("atomic", countIntoAtomic)
	}
}

// The dispatcher's two parallel paths, compared head to head on skewed and
// uniform key streams (run with -bench CountInto to choose thresholds).
func benchCountInto(b *testing.B, fn func(int, []int64, func(int) uint32), keys []uint32, rows uint32) {
	counts := make([]int64, rows)
	key := func(i int) uint32 { return keys[i] }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear(counts)
		fn(len(keys), counts, key)
	}
}

func BenchmarkCountIntoPerWorkerSkewed(b *testing.B) {
	benchCountInto(b, countIntoPerWorker, skewedKeys(1<<20, 1<<12, 1), 1<<12)
}

func BenchmarkCountIntoAtomicSkewed(b *testing.B) {
	benchCountInto(b, countIntoAtomic, skewedKeys(1<<20, 1<<12, 1), 1<<12)
}

func BenchmarkCountIntoPerWorkerUniform(b *testing.B) {
	keys := make([]uint32, 1<<20)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = rng.Uint32() % (1 << 12)
	}
	benchCountInto(b, countIntoPerWorker, keys, 1<<12)
}

func BenchmarkCountIntoAtomicUniform(b *testing.B) {
	keys := make([]uint32, 1<<20)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = rng.Uint32() % (1 << 12)
	}
	benchCountInto(b, countIntoAtomic, keys, 1<<12)
}
