package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary CSR serialization: a compact cache format for large hypergraphs so
// repeated experiments skip Matrix Market parsing and CSR construction.
//
// Layout (little endian): 8-byte magic, nrows/ncols/nnz int64, hasVal byte,
// RowPtr (nrows+1 int64), Col (nnz uint32), Val (nnz float64, if hasVal).

var csrMagic = [8]byte{'N', 'W', 'H', 'Y', 'C', 'S', 'R', '1'}

// WriteCSR serializes c to w in the binary CSR format.
func WriteCSR(w io.Writer, c *CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	hasVal := byte(0)
	if c.Val != nil {
		hasVal = 1
	}
	for _, v := range []int64{int64(c.nrows), int64(c.ncols), int64(len(c.Col))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(hasVal); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.RowPtr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, c.Col); err != nil {
		return err
	}
	if hasVal == 1 {
		if err := binary.Write(bw, binary.LittleEndian, c.Val); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSR deserializes a CSR written by WriteCSR, validating structure.
func ReadCSR(r io.Reader) (*CSR, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("sparse: reading magic: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("sparse: bad magic %q", magic[:])
	}
	var dims [3]int64
	if err := binary.Read(br, binary.LittleEndian, &dims); err != nil {
		return nil, fmt.Errorf("sparse: reading dims: %w", err)
	}
	nrows, ncols, nnz := dims[0], dims[1], dims[2]
	const maxReasonable = int64(1) << 40
	if nrows < 0 || ncols < 0 || nnz < 0 || nrows > maxReasonable || nnz > maxReasonable {
		return nil, fmt.Errorf("sparse: implausible dims %dx%d nnz %d", nrows, ncols, nnz)
	}
	hasVal, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if hasVal > 1 {
		return nil, fmt.Errorf("sparse: bad hasVal byte %d", hasVal)
	}
	c := &CSR{nrows: int(nrows), ncols: int(ncols)}
	c.RowPtr = make([]int64, nrows+1)
	if err := binary.Read(br, binary.LittleEndian, c.RowPtr); err != nil {
		return nil, fmt.Errorf("sparse: reading RowPtr: %w", err)
	}
	c.Col = make([]uint32, nnz)
	if err := binary.Read(br, binary.LittleEndian, c.Col); err != nil {
		return nil, fmt.Errorf("sparse: reading Col: %w", err)
	}
	if hasVal == 1 {
		c.Val = make([]float64, nnz)
		if err := binary.Read(br, binary.LittleEndian, c.Val); err != nil {
			return nil, fmt.Errorf("sparse: reading Val: %w", err)
		}
		for _, v := range c.Val {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("sparse: NaN weight in stream")
			}
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("sparse: corrupt stream: %w", err)
	}
	return c, nil
}

// SaveCSR writes c to a file.
func SaveCSR(path string, c *CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSR(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCSR reads a CSR file written by SaveCSR.
func LoadCSR(path string) (*CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSR(f)
}
