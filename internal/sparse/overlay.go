package sparse

import (
	"fmt"
	"sort"

	"nwhy/internal/parallel"
)

// Overlay is the mutable delta view over a frozen CSR: the base structure
// stays exactly as built (immutable, shared with every reader of the old
// snapshot), while insertions accumulate in append-only delta rows and
// deletions in a tombstone bitmap. Row IDs are stable across mutation —
// queries that captured an ID keep meaning the same row — and dead IDs are
// recycled through a LIFO free-list, so long-lived mutable structures do not
// leak ID space.
//
// An Overlay is a single-writer structure: one goroutine mutates it (the
// facade serializes writers per handle), and it is never read concurrently
// with mutation. Compact folds base plus deltas minus tombstones into a
// fresh frozen CSR using the ingestion pipeline's assembly primitives
// (parallel degree count, ScanExclusive, scatter, AdoptSorted revalidation),
// which becomes the next immutable snapshot.
type Overlay struct {
	base         *CSR
	nrows, ncols int

	tomb []uint64 // tombstone bitmap over [0, nrows)

	// Delta rows: each live inserted row is a window of deltaCol. The
	// storage is append-only; deleting a delta row abandons its window
	// until the next Compact.
	rows     map[uint32]deltaRow
	deltaCol []uint32

	free []uint32 // dead row IDs available for recycling (LIFO)

	inserts, deletes int
}

// deltaRow is one inserted row's window into the overlay's column storage.
type deltaRow struct {
	start, end int
}

// NewOverlay builds an empty overlay over base. Weighted structures are
// rejected: the mutation surface carries no per-incidence weights, and
// silently dropping the base's would corrupt weighted queries.
func NewOverlay(base *CSR) (*Overlay, error) {
	if base.Val != nil {
		return nil, fmt.Errorf("sparse: overlay over weighted CSR not supported")
	}
	return &Overlay{
		base:  base,
		nrows: base.NumRows(),
		ncols: base.NumCols(),
		tomb:  make([]uint64, (base.NumRows()+63)/64),
		rows:  map[uint32]deltaRow{},
	}, nil
}

// Base returns the frozen CSR the overlay was built over.
func (o *Overlay) Base() *CSR { return o.base }

// NumRows reports the current row ID space (base rows plus appended rows;
// dead rows still count — IDs are stable).
func (o *Overlay) NumRows() int { return o.nrows }

// NumCols reports the current column ID space.
func (o *Overlay) NumCols() int { return o.ncols }

// GrowCols widens the column ID space to at least n (never shrinks).
func (o *Overlay) GrowCols(n int) {
	if n > o.ncols {
		o.ncols = n
	}
}

// Inserts reports the number of InsertRow calls since construction.
func (o *Overlay) Inserts() int { return o.inserts }

// Deletes reports the number of DeleteRow calls since construction — the
// overlay's tombstone epoch: incremental consumers that cached results at
// Deletes() == 0 may absorb insertions but must recompute once it moves.
func (o *Overlay) Deletes() int { return o.deletes }

// Dead reports whether row i is tombstoned.
func (o *Overlay) Dead(i uint32) bool {
	return o.tomb[i>>6]&(1<<(i&63)) != 0
}

func (o *Overlay) setDead(i uint32)   { o.tomb[i>>6] |= 1 << (i & 63) }
func (o *Overlay) clearDead(i uint32) { o.tomb[i>>6] &^= 1 << (i & 63) }

// Row returns the live column IDs of row i (sorted, deduplicated). Dead
// rows yield nil. The slice aliases base or delta storage and must not be
// modified.
func (o *Overlay) Row(i uint32) []uint32 {
	if int(i) >= o.nrows || o.Dead(i) {
		return nil
	}
	if w, ok := o.rows[i]; ok {
		return o.deltaCol[w.start:w.end]
	}
	if int(i) < o.base.NumRows() {
		return o.base.Row(int(i))
	}
	return nil
}

// Degree reports the live entry count of row i (0 for dead rows).
func (o *Overlay) Degree(i uint32) int { return len(o.Row(i)) }

// InsertRow adds a new row holding cols (copied, sorted, deduplicated) and
// returns its ID: a recycled tombstoned ID when the free-list is non-empty,
// a fresh ID at the end of the row space otherwise. Column IDs beyond the
// current column space grow it.
func (o *Overlay) InsertRow(cols []uint32) uint32 {
	start := len(o.deltaCol)
	o.deltaCol = append(o.deltaCol, cols...)
	w := o.deltaCol[start:]
	sort.Slice(w, func(a, b int) bool { return w[a] < w[b] })
	k := start
	for j, v := range w {
		if j > 0 && v == w[j-1] {
			continue
		}
		o.deltaCol[k] = v
		k++
	}
	o.deltaCol = o.deltaCol[:k]
	if k > start {
		if top := int(o.deltaCol[k-1]) + 1; top > o.ncols {
			o.ncols = top
		}
	}

	var id uint32
	if n := len(o.free); n > 0 {
		id = o.free[n-1]
		o.free = o.free[:n-1]
		o.clearDead(id)
	} else {
		id = uint32(o.nrows)
		o.nrows++
		if need := (o.nrows + 63) / 64; need > len(o.tomb) {
			o.tomb = append(o.tomb, make([]uint64, need-len(o.tomb))...)
		}
	}
	o.rows[id] = deltaRow{start: start, end: k}
	o.inserts++
	return id
}

// DeleteRow tombstones row id and recycles its ID through the free-list.
// Deleting a dead or out-of-range row is an error.
func (o *Overlay) DeleteRow(id uint32) error {
	if int(id) >= o.nrows {
		return fmt.Errorf("sparse: delete of row %d outside [0,%d)", id, o.nrows)
	}
	if o.Dead(id) {
		return fmt.Errorf("sparse: delete of already-dead row %d", id)
	}
	delete(o.rows, id) // delta storage, if any, is abandoned until Compact
	o.setDead(id)
	o.free = append(o.free, id)
	o.deletes++
	return nil
}

// Compact folds the overlay into a fresh frozen CSR: live base rows are
// block-copied, live delta rows take their windows, dead rows become empty
// rows (their IDs stay reserved for the free-list). The assembly is the
// ingestion pipeline's: parallel per-row degree count, ScanExclusive into
// row offsets, parallel scatter, then AdoptSorted revalidates the full
// invariant set before adoption. A cancelled engine aborts with its error.
func (o *Overlay) Compact(e *parallel.Engine) (*CSR, error) {
	n := o.nrows
	counts := make([]int64, n, n+1)
	e.For(e.Blocked(0, n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			counts[i] = int64(o.Degree(uint32(i)))
		}
	})
	if err := e.Err(); err != nil {
		return nil, err
	}
	total := parallel.ScanExclusive(counts)
	rowptr := append(counts, total)
	col := make([]uint32, total)
	e.For(e.Blocked(0, n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(col[rowptr[i]:rowptr[i+1]], o.Row(uint32(i)))
		}
	})
	if err := e.Err(); err != nil {
		return nil, err
	}
	return AdoptSorted(n, o.ncols, rowptr, col, nil)
}

// TransposeOn is Transpose scheduled on engine e with the radix pipeline:
// scatter every entry as a (col, row) pair, stable parallel radix sort by
// the transposed key, then adopt the already-sorted assembly via
// AdoptSorted. Weighted structures fall back to the serial-keyed Transpose.
func TransposeOn(e *parallel.Engine, c *CSR) (*CSR, error) {
	if c.Val != nil {
		return c.Transpose(), e.Err()
	}
	pairs := make([]Edge, len(c.Col))
	e.For(e.Blocked(0, c.nrows), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				pairs[k] = Edge{c.Col[k], uint32(i)}
			}
		}
	})
	if err := e.Err(); err != nil {
		return nil, err
	}
	parallel.RadixSort64On(e, pairs, edgeKey)
	if err := e.Err(); err != nil {
		return nil, err
	}
	nrows := c.ncols
	counts := make([]int64, nrows, nrows+1)
	countInto(len(pairs), counts, func(i int) uint32 { return pairs[i].U })
	total := parallel.ScanExclusive(counts)
	rowptr := append(counts, total)
	col := make([]uint32, len(pairs))
	e.For(e.Blocked(0, len(pairs)), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			col[i] = pairs[i].V
		}
	})
	if err := e.Err(); err != nil {
		return nil, err
	}
	return AdoptSorted(nrows, c.nrows, rowptr, col, nil)
}
