package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// paperBiEdgeList returns the running example of the paper's Figure 1: four
// hyperedges over nine hypernodes. Hyperedge 0 = {0,1,2}, 1 = {2,3,4},
// 2 = {4,5,6}, 3 = {6,7,8,0}.
func paperBiEdgeList() *BiEdgeList {
	bel := NewBiEdgeList(4, 9)
	for _, inc := range [][2]uint32{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {1, 3}, {1, 4},
		{2, 4}, {2, 5}, {2, 6},
		{3, 6}, {3, 7}, {3, 8}, {3, 0},
	} {
		bel.Add(inc[0], inc[1])
	}
	return bel
}

func TestBiAdjacencyPaperExample(t *testing.T) {
	edges, nodes := BiAdjacency(paperBiEdgeList())
	if edges.NumRows() != 4 || edges.NumCols() != 9 {
		t.Fatalf("edges dims %dx%d, want 4x9", edges.NumRows(), edges.NumCols())
	}
	if nodes.NumRows() != 9 || nodes.NumCols() != 4 {
		t.Fatalf("nodes dims %dx%d, want 9x4", nodes.NumRows(), nodes.NumCols())
	}
	wantEdges := [][]uint32{{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {0, 6, 7, 8}}
	for e, want := range wantEdges {
		if !reflect.DeepEqual(edges.Row(e), want) {
			t.Errorf("hyperedge %d incidence = %v, want %v", e, edges.Row(e), want)
		}
	}
	// Mutual indexing: hypernode 0 is in hyperedges 0 and 3; node 4 in 1, 2.
	if !reflect.DeepEqual(nodes.Row(0), []uint32{0, 3}) {
		t.Errorf("hypernode 0 incidence = %v, want [0 3]", nodes.Row(0))
	}
	if !reflect.DeepEqual(nodes.Row(4), []uint32{1, 2}) {
		t.Errorf("hypernode 4 incidence = %v, want [1 2]", nodes.Row(4))
	}
	if err := edges.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := nodes.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSRDegrees(t *testing.T) {
	edges, nodes := BiAdjacency(paperBiEdgeList())
	if got := edges.Degrees(); !reflect.DeepEqual(got, []int{3, 3, 3, 4}) {
		t.Errorf("edge degrees = %v", got)
	}
	if edges.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4", edges.MaxDegree())
	}
	if nodes.MaxDegree() != 2 {
		t.Errorf("node MaxDegree = %d, want 2", nodes.MaxDegree())
	}
	if got := edges.AvgDegree(); got != 13.0/4.0 {
		t.Errorf("AvgDegree = %v", got)
	}
}

func TestCSRRectangular(t *testing.T) {
	// Rectangular matrix support: 2 rows, 1000 columns.
	bel := NewBiEdgeList(2, 1000)
	bel.Add(0, 999)
	bel.Add(1, 0)
	edges, nodes := BiAdjacency(bel)
	if edges.NumRows() != 2 || edges.NumCols() != 1000 {
		t.Fatalf("dims %dx%d", edges.NumRows(), edges.NumCols())
	}
	if nodes.NumRows() != 1000 || nodes.NumCols() != 2 {
		t.Fatalf("dual dims %dx%d", nodes.NumRows(), nodes.NumCols())
	}
	if !edges.HasEntry(0, 999) || edges.HasEntry(0, 0) {
		t.Fatal("HasEntry wrong on rectangular CSR")
	}
}

func TestCSREmptyRows(t *testing.T) {
	el := NewEdgeList(5)
	el.Add(0, 4)
	g := FromEdgeList(el)
	if g.NumRows() != 5 {
		t.Fatalf("NumRows = %d", g.NumRows())
	}
	for i := 1; i < 5; i++ {
		if g.Degree(i) != 0 {
			t.Errorf("row %d degree %d, want 0", i, g.Degree(i))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCSREmptyInput(t *testing.T) {
	g := FromPairs(0, 0, nil, nil)
	if g.NumRows() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty CSR not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() != 0 {
		t.Fatal("MaxDegree of empty CSR != 0")
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs := make([]Edge, 500)
	for i := range pairs {
		pairs[i] = Edge{uint32(rng.Intn(40)), uint32(rng.Intn(70))}
	}
	c := FromPairs(40, 70, pairs, nil)
	tt := c.Transpose().Transpose()
	if !c.Equal(tt) {
		t.Fatal("transpose of transpose differs from original")
	}
}

func TestTransposePreservesEntries(t *testing.T) {
	edges, nodes := BiAdjacency(paperBiEdgeList())
	tr := edges.Transpose()
	if !tr.Equal(nodes) {
		t.Fatal("Transpose of edge incidence != node incidence (dual)")
	}
}

func TestTransposeCarriesWeights(t *testing.T) {
	bel := NewBiEdgeList(2, 3)
	bel.AddWeighted(0, 1, 2.5)
	bel.AddWeighted(1, 2, -1.0)
	edges, _ := BiAdjacency(bel)
	tr := edges.Transpose()
	if tr.Val == nil {
		t.Fatal("transpose dropped weights")
	}
	if got := tr.RowVal(1); len(got) != 1 || got[0] != 2.5 {
		t.Fatalf("weight at transposed (1,0) = %v", got)
	}
}

func TestFromPairsSortsRows(t *testing.T) {
	pairs := []Edge{{0, 5}, {0, 1}, {0, 3}, {1, 2}, {1, 0}}
	c := FromPairs(2, 6, pairs, nil)
	if !reflect.DeepEqual(c.Row(0), []uint32{1, 3, 5}) {
		t.Errorf("row 0 = %v", c.Row(0))
	}
	if !reflect.DeepEqual(c.Row(1), []uint32{0, 2}) {
		t.Errorf("row 1 = %v", c.Row(1))
	}
}

func TestFromPairsWeightsFollowSort(t *testing.T) {
	pairs := []Edge{{0, 5}, {0, 1}}
	c := FromPairs(1, 6, pairs, []float64{50, 10})
	if !reflect.DeepEqual(c.Row(0), []uint32{1, 5}) {
		t.Fatalf("row = %v", c.Row(0))
	}
	if got := c.RowVal(0); got[0] != 10 || got[1] != 50 {
		t.Fatalf("weights did not follow sort: %v", got)
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nrows := 1 + rng.Intn(50)
		ncols := 1 + rng.Intn(50)
		m := rng.Intn(400)
		set := map[Edge]bool{}
		for i := 0; i < m; i++ {
			set[Edge{uint32(rng.Intn(nrows)), uint32(rng.Intn(ncols))}] = true
		}
		pairs := make([]Edge, 0, len(set))
		for e := range set {
			pairs = append(pairs, e)
		}
		c := FromPairs(nrows, ncols, pairs, nil)
		if c.Validate() != nil || c.NumEdges() != len(set) {
			return false
		}
		for e := range set {
			if !c.HasEntry(int(e.U), e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRLargeParallelBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 2000
	m := 50000 // above the parallel threshold
	pairs := make([]Edge, m)
	counts := make([]int64, n)
	for i := range pairs {
		u := uint32(rng.Intn(n))
		pairs[i] = Edge{u, uint32(rng.Intn(n))}
		counts[u]++
	}
	c := FromPairs(n, n, pairs, nil)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumEdges() != m {
		t.Fatalf("NumEdges = %d, want %d", c.NumEdges(), m)
	}
	for i := 0; i < n; i++ {
		if int64(c.Degree(i)) != counts[i] {
			t.Fatalf("row %d degree %d, want %d", i, c.Degree(i), counts[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := FromPairs(2, 2, []Edge{{0, 1}, {1, 0}}, nil)
	d := c.Clone()
	d.Col[0] = 0
	if c.Col[0] == 0 && c.Row(0)[0] == 0 {
		t.Fatal("Clone shares storage")
	}
	if !c.Equal(c.Clone()) {
		t.Fatal("Clone not Equal to original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := FromPairs(2, 2, []Edge{{0, 1}, {1, 0}}, nil)
	c.Col[0] = 7 // out of range
	if c.Validate() == nil {
		t.Fatal("Validate accepted out-of-range column")
	}
	c = FromPairs(2, 2, []Edge{{0, 0}, {0, 1}}, nil)
	c.Col[0], c.Col[1] = c.Col[1], c.Col[0]
	if c.Validate() == nil {
		t.Fatal("Validate accepted unsorted row")
	}
}
