package sparse

import "testing"

func TestAdoptSortedAccepts(t *testing.T) {
	c, err := AdoptSorted(3, 4,
		[]int64{0, 2, 2, 3},
		[]uint32{1, 3, 0},
		nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 3 || c.NumCols() != 4 || c.NumEdges() != 3 {
		t.Fatalf("dims %dx%d nnz %d", c.NumRows(), c.NumCols(), c.NumEdges())
	}
	if !c.HasEntry(0, 3) || c.HasEntry(1, 0) {
		t.Fatal("entries misplaced")
	}
}

func TestAdoptSortedRejects(t *testing.T) {
	cases := []struct {
		name   string
		nrows  int
		rowptr []int64
		col    []uint32
		val    []float64
	}{
		{"rowptr length", 2, []int64{0, 1}, []uint32{0}, nil},
		{"rowptr endpoint", 2, []int64{0, 1, 2}, []uint32{0}, nil},
		{"rowptr decreasing", 2, []int64{0, 2, 1}, []uint32{0, 1}, nil},
		{"unsorted row", 1, []int64{0, 2}, []uint32{3, 1}, nil},
		{"col out of range", 1, []int64{0, 1}, []uint32{9}, nil},
		{"val misaligned", 1, []int64{0, 2}, []uint32{0, 1}, []float64{1}},
	}
	for _, tc := range cases {
		if _, err := AdoptSorted(tc.nrows, 4, tc.rowptr, tc.col, tc.val); err == nil {
			t.Fatalf("%s: AdoptSorted accepted invalid storage", tc.name)
		}
	}
}

func TestAdoptSortedMatchesFromParts(t *testing.T) {
	rowptr := []int64{0, 2, 3}
	col := []uint32{0, 2, 1}
	val := []float64{1, 2, 3}
	a, err := AdoptSorted(2, 3, append([]int64(nil), rowptr...), append([]uint32(nil), col...), append([]float64(nil), val...))
	if err != nil {
		t.Fatal(err)
	}
	b := FromParts(2, 3, append([]int64(nil), rowptr...), append([]uint32(nil), col...), append([]float64(nil), val...))
	if !a.Equal(b) {
		t.Fatal("AdoptSorted differs from FromParts on sorted input")
	}
}
