package sparse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDegreePermAscending(t *testing.T) {
	degrees := []int{5, 1, 3, 1}
	perm, inv := DegreePerm(degrees, Ascending)
	// Sorted degrees: ids 1,3 (deg 1, tie by id), 2 (deg 3), 0 (deg 5).
	if !reflect.DeepEqual(perm, []uint32{1, 3, 2, 0}) {
		t.Fatalf("perm = %v", perm)
	}
	for newID, oldID := range perm {
		if inv[oldID] != uint32(newID) {
			t.Fatalf("inv not inverse of perm at %d", oldID)
		}
	}
}

func TestDegreePermDescending(t *testing.T) {
	degrees := []int{5, 1, 3, 1}
	perm, _ := DegreePerm(degrees, Descending)
	if !reflect.DeepEqual(perm, []uint32{0, 2, 1, 3}) {
		t.Fatalf("perm = %v", perm)
	}
}

func TestDegreePermNoOrderIdentity(t *testing.T) {
	perm, inv := DegreePerm([]int{9, 2, 7}, NoOrder)
	if !reflect.DeepEqual(perm, []uint32{0, 1, 2}) || !reflect.DeepEqual(inv, []uint32{0, 1, 2}) {
		t.Fatalf("NoOrder perm/inv not identity: %v %v", perm, inv)
	}
}

func TestDegreePermIsBijection(t *testing.T) {
	f := func(raw []uint8, asc bool) bool {
		degrees := make([]int, len(raw))
		for i, r := range raw {
			degrees[i] = int(r)
		}
		order := Ascending
		if !asc {
			order = Descending
		}
		perm, inv := DegreePerm(degrees, order)
		seen := make([]bool, len(perm))
		for newID, oldID := range perm {
			if seen[oldID] {
				return false
			}
			seen[oldID] = true
			if inv[oldID] != uint32(newID) {
				return false
			}
		}
		// Degrees must be monotone along the permutation.
		for i := 1; i < len(perm); i++ {
			a, b := degrees[perm[i-1]], degrees[perm[i]]
			if order == Ascending && a > b {
				return false
			}
			if order == Descending && a < b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// incidenceSet collects the (hyperedge, hypernode) pairs of a biadjacency,
// mapping hyperedge IDs back through perm.
func incidenceSet(edges *CSR, perm []uint32) map[Edge]bool {
	set := map[Edge]bool{}
	for e := 0; e < edges.NumRows(); e++ {
		for _, v := range edges.Row(e) {
			set[Edge{perm[e], v}] = true
		}
	}
	return set
}

func TestRelabelHyperedgesPreservesHypergraph(t *testing.T) {
	edges, nodes := BiAdjacency(paperBiEdgeList())
	for _, order := range []Order{NoOrder, Ascending, Descending} {
		redges, rnodes, perm := RelabelHyperedges(edges, nodes, order)
		if got, want := incidenceSet(redges, perm), incidenceSet(edges, identityPerm(4)); !reflect.DeepEqual(got, want) {
			t.Fatalf("order %v: incidences changed: %v vs %v", order, got, want)
		}
		// Mutual indexing must still hold: rnodes is the transpose of redges.
		if !redges.Transpose().Equal(rnodes) {
			t.Fatalf("order %v: relabeled pair not mutually indexed", order)
		}
		if err := redges.Validate(); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if err := rnodes.Validate(); err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
	}
}

func TestRelabelHyperedgesDegreeMonotone(t *testing.T) {
	edges, nodes := BiAdjacency(paperBiEdgeList())
	redges, _, _ := RelabelHyperedges(edges, nodes, Descending)
	d := redges.Degrees()
	if !sort.SliceIsSorted(d, func(a, b int) bool { return d[a] > d[b] }) {
		t.Fatalf("descending relabel degrees not sorted: %v", d)
	}
}

func TestRelabelSquarePreservesEdgeMultiset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	el := NewEdgeList(30)
	for i := 0; i < 200; i++ {
		el.Add(uint32(rng.Intn(30)), uint32(rng.Intn(30)))
	}
	el.Dedup()
	g := FromEdgeList(el)
	rg, perm := RelabelSquare(g, Ascending)
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	orig := map[Edge]bool{}
	for u := 0; u < g.NumRows(); u++ {
		for _, v := range g.Row(u) {
			orig[Edge{uint32(u), v}] = true
		}
	}
	back := map[Edge]bool{}
	for u := 0; u < rg.NumRows(); u++ {
		for _, v := range rg.Row(u) {
			back[Edge{perm[u], perm[v]}] = true
		}
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("RelabelSquare changed the edge set")
	}
}

func TestRelabelNoOrderReturnsSameCSR(t *testing.T) {
	edges, nodes := BiAdjacency(paperBiEdgeList())
	redges, rnodes, perm := RelabelHyperedges(edges, nodes, NoOrder)
	if redges != edges || rnodes != nodes {
		t.Fatal("NoOrder should return inputs unchanged")
	}
	for i, p := range perm {
		if p != uint32(i) {
			t.Fatal("NoOrder perm not identity")
		}
	}
}
