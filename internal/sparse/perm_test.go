package sparse

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomPerm(rng *rand.Rand, n int) []uint32 {
	p := make([]uint32, n)
	for i := range p {
		p[i] = uint32(i)
	}
	rng.Shuffle(n, func(a, b int) { p[a], p[b] = p[b], p[a] })
	return p
}

func randomCSR(rng *rand.Rand, weighted bool) *CSR {
	nrows := rng.Intn(40) + 1
	ncols := rng.Intn(40) + 1
	nnz := rng.Intn(200)
	pairs := make([]Edge, nnz)
	var weights []float64
	if weighted {
		weights = make([]float64, nnz)
	}
	for i := range pairs {
		pairs[i] = Edge{uint32(rng.Intn(nrows)), uint32(rng.Intn(ncols))}
		if weighted {
			weights[i] = rng.Float64()
		}
	}
	return FromPairs(nrows, ncols, pairs, weights)
}

func csrIdentical(a, b *CSR) bool {
	if !a.Equal(b) {
		return false
	}
	if (a.Val == nil) != (b.Val == nil) {
		return false
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] {
			return false
		}
	}
	return true
}

// TestApplyPermRoundTrip: for any valid permutation pair, applying
// (perm, colInv) then (InvertPerm(perm), InvertPerm(colInv)) reproduces the
// original CSR exactly, including weights.
func TestApplyPermRoundTrip(t *testing.T) {
	prop := func(seed int64, weighted bool) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSR(rng, weighted)
		rowPerm := randomPerm(rng, c.NumRows())
		colPerm := randomPerm(rng, c.NumCols())
		colInv := InvertPerm(colPerm)
		fwd := c.ApplyPerm(rowPerm, colInv)
		if err := fwd.Validate(); err != nil {
			t.Logf("forward result invalid: %v", err)
			return false
		}
		back := fwd.ApplyPerm(InvertPerm(rowPerm), InvertPerm(colInv))
		return csrIdentical(c, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyPermRowOnlyRoundTrip covers the colInv == nil fast path, which
// skips the re-sort.
func TestApplyPermRowOnlyRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomCSR(rng, seed%2 == 0)
		rowPerm := randomPerm(rng, c.NumRows())
		back := c.ApplyPerm(rowPerm, nil).ApplyPerm(InvertPerm(rowPerm), nil)
		return csrIdentical(c, back)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestApplyPermMatchesRowSemantics pins the meaning of the arguments: row
// newID of the result is row rowPerm[newID] of the input with every column
// mapped through colInv (as a set; rows re-sort).
func TestApplyPermMatchesRowSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := randomCSR(rng, false)
	rowPerm := randomPerm(rng, c.NumRows())
	colPerm := randomPerm(rng, c.NumCols())
	colInv := InvertPerm(colPerm)
	out := c.ApplyPerm(rowPerm, colInv)
	for newID := 0; newID < out.NumRows(); newID++ {
		want := append([]uint32(nil), c.Row(int(rowPerm[newID]))...)
		for i, v := range want {
			want[i] = colInv[v]
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		got := out.Row(newID)
		if len(got) != len(want) {
			t.Fatalf("row %d: %d entries, want %d", newID, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("row %d entry %d: %d, want %d", newID, i, got[i], want[i])
			}
		}
	}
}

// TestDegreePermMatchesStableSort pins the radix DegreePerm to the
// comparison-sort reference it replaced, including tie-breaking by old ID.
func TestDegreePermMatchesStableSort(t *testing.T) {
	prop := func(seed int64, descending bool) bool {
		rng := rand.New(rand.NewSource(seed))
		degrees := make([]int, rng.Intn(100)+1)
		for i := range degrees {
			degrees[i] = rng.Intn(10)
		}
		order := Ascending
		if descending {
			order = Descending
		}
		perm, inv := DegreePerm(degrees, order)
		ref := make([]uint32, len(degrees))
		for i := range ref {
			ref[i] = uint32(i)
		}
		if descending {
			sort.SliceStable(ref, func(a, b int) bool { return degrees[ref[a]] > degrees[ref[b]] })
		} else {
			sort.SliceStable(ref, func(a, b int) bool { return degrees[ref[a]] < degrees[ref[b]] })
		}
		for i := range ref {
			if perm[i] != ref[i] || inv[perm[i]] != uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
