package sparse

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestCSRSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nrows, ncols := 1+rng.Intn(40), 1+rng.Intn(40)
		var pairs []Edge
		seen := map[Edge]bool{}
		for i := 0; i < rng.Intn(300); i++ {
			e := Edge{U: uint32(rng.Intn(nrows)), V: uint32(rng.Intn(ncols))}
			if !seen[e] {
				seen[e] = true
				pairs = append(pairs, e)
			}
		}
		c := FromPairs(nrows, ncols, pairs, nil)
		var buf bytes.Buffer
		if WriteCSR(&buf, c) != nil {
			return false
		}
		back, err := ReadCSR(&buf)
		if err != nil {
			return false
		}
		return back.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSRSerializeWeighted(t *testing.T) {
	c := FromPairs(2, 3, []Edge{{U: 0, V: 2}, {U: 1, V: 0}}, []float64{2.5, -7})
	var buf bytes.Buffer
	if err := WriteCSR(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Val == nil || back.RowVal(0)[0] != 2.5 || back.RowVal(1)[0] != -7 {
		t.Fatalf("weights lost: %v", back.Val)
	}
}

func TestCSRSerializeEmpty(t *testing.T) {
	c := FromPairs(0, 0, nil, nil)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 || back.NumEdges() != 0 {
		t.Fatal("empty round trip failed")
	}
}

func TestReadCSRRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOTMAGIC........................"),
		"truncated": append([]byte("NWHYCSR1"), 1, 2, 3),
	}
	for name, data := range cases {
		if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCSRRejectsCorruptStructure(t *testing.T) {
	c := FromPairs(2, 2, []Edge{{U: 0, V: 1}, {U: 1, V: 0}}, nil)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, c); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt a column ID byte near the end (out-of-range column).
	data[len(data)-4] = 0xFF
	data[len(data)-3] = 0xFF
	if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt column accepted")
	}
}

func TestSaveLoadCSRFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.csr")
	c := FromPairs(3, 3, []Edge{{U: 0, V: 2}, {U: 2, V: 1}}, nil)
	if err := SaveCSR(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(c) {
		t.Fatal("file round trip differs")
	}
	if _, err := LoadCSR("/nonexistent/m.csr"); err == nil {
		t.Fatal("missing file accepted")
	}
}
