package sparse

import (
	"fmt"
	"sort"
	"sync"

	"nwhy/internal/parallel"
)

// CSR is a rectangular compressed-sparse-row structure: NumRows() row index
// spaces mapping to column IDs in [0, NumCols()). It implements the paper's
// biadjacency (Listing 1) when rows are hyperedges and columns hypernodes
// (or vice versa for the dual), and a square adjacency when rows == cols.
//
// The layout is the classic pair: RowPtr has len nrows+1, and row i's
// neighbors are Col[RowPtr[i]:RowPtr[i+1]]. Val, when non-nil, aligns with
// Col and carries per-incidence weights.
type CSR struct {
	nrows, ncols int
	RowPtr       []int64
	Col          []uint32
	Val          []float64
}

// NumRows reports the size of the row index space.
func (c *CSR) NumRows() int { return c.nrows }

// NumCols reports the size of the column index space.
func (c *CSR) NumCols() int { return c.ncols }

// NumEdges reports the number of stored entries.
func (c *CSR) NumEdges() int { return len(c.Col) }

// Row returns row i's column IDs. The slice aliases internal storage and
// must not be modified.
func (c *CSR) Row(i int) []uint32 { return c.Col[c.RowPtr[i]:c.RowPtr[i+1]] }

// RowVal returns row i's weights, aligned with Row(i). Nil when unweighted.
func (c *CSR) RowVal(i int) []float64 {
	if c.Val == nil {
		return nil
	}
	return c.Val[c.RowPtr[i]:c.RowPtr[i+1]]
}

// Degree reports the number of entries in row i.
func (c *CSR) Degree(i int) int { return int(c.RowPtr[i+1] - c.RowPtr[i]) }

// Degrees returns the degree of every row, computed in parallel. This is the
// degrees() accessor of the paper's biadjacency.
func (c *CSR) Degrees() []int {
	d := make([]int, c.nrows)
	parallel.For(c.nrows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			d[i] = c.Degree(i)
		}
	})
	return d
}

// MaxDegree returns the largest row degree, or 0 for an empty structure.
func (c *CSR) MaxDegree() int {
	return parallel.Reduce(c.nrows, 0,
		func(lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				if d := c.Degree(i); d > acc {
					acc = d
				}
			}
			return acc
		},
		func(a, b int) int {
			if a > b {
				return a
			}
			return b
		})
}

// AvgDegree returns the mean row degree.
func (c *CSR) AvgDegree() float64 {
	if c.nrows == 0 {
		return 0
	}
	return float64(len(c.Col)) / float64(c.nrows)
}

// HasEntry reports whether (row, col) is stored. Rows must be sorted (CSR
// builders in this package always sort rows).
func (c *CSR) HasEntry(row int, col uint32) bool {
	r := c.Row(row)
	k := sort.Search(len(r), func(i int) bool { return r[i] >= col })
	return k < len(r) && r[k] == col
}

// Validate checks structural invariants: monotone RowPtr, in-range columns,
// sorted rows.
func (c *CSR) Validate() error {
	if len(c.RowPtr) != c.nrows+1 {
		return fmt.Errorf("sparse: RowPtr length %d for %d rows", len(c.RowPtr), c.nrows)
	}
	if c.RowPtr[0] != 0 || c.RowPtr[c.nrows] != int64(len(c.Col)) {
		return fmt.Errorf("sparse: RowPtr endpoints %d..%d for %d entries", c.RowPtr[0], c.RowPtr[c.nrows], len(c.Col))
	}
	for i := 0; i < c.nrows; i++ {
		if c.RowPtr[i] > c.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr decreases at row %d", i)
		}
		row := c.Row(i)
		for k, v := range row {
			if int(v) >= c.ncols {
				return fmt.Errorf("sparse: row %d entry %d out of range [0,%d)", i, v, c.ncols)
			}
			if k > 0 && row[k-1] > v {
				return fmt.Errorf("sparse: row %d not sorted", i)
			}
		}
	}
	return nil
}

// FromPairs builds a CSR with nrows x ncols dimensions from (row, col)
// pairs, in parallel: count per-row degrees, exclusive-scan into RowPtr,
// scatter with per-row atomic cursors, then sort each row. Duplicate pairs
// are kept; call EdgeList/BiEdgeList Dedup first if needed.
func FromPairs(nrows, ncols int, pairs []Edge, weights []float64) *CSR {
	c := &CSR{nrows: nrows, ncols: ncols}
	counts := make([]int64, nrows, nrows+1)
	countInto(len(pairs), counts, func(i int) uint32 { return pairs[i].U })
	total := parallel.ScanExclusive(counts)
	c.RowPtr = append(counts, total)
	c.Col = make([]uint32, len(pairs))
	if weights != nil {
		c.Val = make([]float64, len(pairs))
	}
	cursor := make([]int64, nrows)
	copy(cursor, c.RowPtr[:nrows])
	if len(pairs) < maxParallelThreshold {
		for i, e := range pairs {
			k := cursor[e.U]
			cursor[e.U]++
			c.Col[k] = e.V
			if weights != nil {
				c.Val[k] = weights[i]
			}
		}
	} else {
		parallel.For(len(pairs), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := pairs[i]
				k := parallel.AddI64(&cursor[e.U], 1) - 1
				c.Col[k] = e.V
				if weights != nil {
					c.Val[k] = weights[i]
				}
			}
		})
	}
	c.sortRows()
	return c
}

// FromParts adopts prebuilt CSR storage: rowptr must have length nrows+1
// with rowptr[0] == 0 and rowptr[nrows] == len(col), and col (plus val, when
// non-nil, aligned with it) must hold each row's entries in its
// rowptr-delimited window, in any order — FromParts sorts the rows in place.
// The caller must not reuse the slices afterwards. It is the assembly entry
// point for builders that scatter directly into CSR storage (the s-overlap
// kernel's direct-CSR path) instead of routing through a global pair list.
func FromParts(nrows, ncols int, rowptr []int64, col []uint32, val []float64) *CSR {
	c := &CSR{nrows: nrows, ncols: ncols, RowPtr: rowptr, Col: col, Val: val}
	c.sortRows()
	return c
}

// AdoptSorted adopts prebuilt CSR storage whose rows are already sorted —
// the snapshot-load fast path, which must not pay FromParts' per-row sort on
// data that was canonical when written. The full structural invariant set is
// checked before adoption (including val/col alignment, which Validate does
// not see), so a corrupted or hand-forged payload is rejected instead of
// producing a CSR that violates the sorted-rows contract HasEntry and the
// merge kernels rely on. The caller must not reuse the slices afterwards.
func AdoptSorted(nrows, ncols int, rowptr []int64, col []uint32, val []float64) (*CSR, error) {
	if val != nil && len(val) != len(col) {
		return nil, fmt.Errorf("sparse: %d values for %d columns", len(val), len(col))
	}
	c := &CSR{nrows: nrows, ncols: ncols, RowPtr: rowptr, Col: col, Val: val}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// sortRows sorts each row's columns ascending (carrying weights along) via
// the stable radix path. Rows shorter than parallel.RadixSerialCutoff take
// RadixSort64's serial branch inline — submitting parallel passes from a pool
// worker would wait on the pool it occupies — while the rare heavier rows are
// collected during the sweep and sorted afterwards with full parallel passes.
func (c *CSR) sortRows() {
	var mu sync.Mutex
	var big []int
	parallel.For(c.nrows, func(_, lo, hi int) {
		var local []int
		for i := lo; i < hi; i++ {
			if c.Degree(i) >= parallel.RadixSerialCutoff {
				local = append(local, i)
				continue
			}
			c.sortRow(i)
		}
		if len(local) > 0 {
			mu.Lock()
			big = append(big, local...)
			mu.Unlock()
		}
	})
	for _, i := range big {
		c.sortRow(i)
	}
}

// sortRow sorts one row. Weighted rows zip (col, val) so the weight rides the
// sort; stability keeps duplicate columns' weights in input order.
func (c *CSR) sortRow(i int) {
	s, e := c.RowPtr[i], c.RowPtr[i+1]
	if c.Val == nil {
		parallel.RadixSort64(c.Col[s:e], func(v uint32) uint64 { return uint64(v) })
		return
	}
	row, val := c.Col[s:e], c.Val[s:e]
	zip := make([]colVal, len(row))
	for k := range row {
		zip[k] = colVal{row[k], val[k]}
	}
	parallel.RadixSort64(zip, func(cv colVal) uint64 { return uint64(cv.col) })
	for k, cv := range zip {
		row[k], val[k] = cv.col, cv.val
	}
}

type colVal struct {
	col uint32
	val float64
}

// FromEdgeList builds a square CSR adjacency from a single-index-space edge
// list. Each listed edge is stored as a directed entry; callers wanting an
// undirected graph should Symmetrize the list first.
func FromEdgeList(el *EdgeList) *CSR {
	return FromPairs(el.NumVertices, el.NumVertices, el.Edges, nil)
}

// BiAdjacency builds the two mutually indexed incidence structures of a
// hypergraph from a bipartite edge list (the paper's
// biadjacency<0>/biadjacency<1> pair): edges maps each hyperedge to its
// incident hypernodes, nodes maps each hypernode to its incident hyperedges.
func BiAdjacency(bel *BiEdgeList) (edges, nodes *CSR) {
	edges = FromPairs(bel.N0, bel.N1, bel.Edges, bel.Weights)
	t := bel.Transpose()
	nodes = FromPairs(t.N0, t.N1, t.Edges, t.Weights)
	return edges, nodes
}

// Transpose returns the CSR of the transposed matrix: entry (i, j) becomes
// (j, i). For a hypergraph incidence structure this is the dual.
func (c *CSR) Transpose() *CSR {
	pairs := make([]Edge, len(c.Col))
	parallel.For(c.nrows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			for k := c.RowPtr[i]; k < c.RowPtr[i+1]; k++ {
				pairs[k] = Edge{c.Col[k], uint32(i)}
			}
		}
	})
	var weights []float64
	if c.Val != nil {
		weights = c.Val
	}
	return FromPairs(c.ncols, c.nrows, pairs, weights)
}

// Clone returns a deep copy.
func (c *CSR) Clone() *CSR {
	out := &CSR{nrows: c.nrows, ncols: c.ncols}
	out.RowPtr = append([]int64(nil), c.RowPtr...)
	out.Col = append([]uint32(nil), c.Col...)
	if c.Val != nil {
		out.Val = append([]float64(nil), c.Val...)
	}
	return out
}

// Equal reports whether two CSRs have identical dimensions and entries.
func (c *CSR) Equal(o *CSR) bool {
	if c.nrows != o.nrows || c.ncols != o.ncols || len(c.Col) != len(o.Col) {
		return false
	}
	for i := range c.RowPtr {
		if c.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for i := range c.Col {
		if c.Col[i] != o.Col[i] {
			return false
		}
	}
	return true
}
