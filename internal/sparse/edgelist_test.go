package sparse

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestEdgeListAddGrows(t *testing.T) {
	el := NewEdgeList(0)
	el.Add(3, 7)
	if el.NumVertices != 8 {
		t.Fatalf("NumVertices = %d, want 8", el.NumVertices)
	}
	if el.Len() != 1 {
		t.Fatalf("Len = %d", el.Len())
	}
	if err := el.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListDedup(t *testing.T) {
	el := NewEdgeList(4)
	el.Add(1, 2)
	el.Add(0, 3)
	el.Add(1, 2)
	el.Add(1, 2)
	el.Dedup()
	want := []Edge{{0, 3}, {1, 2}}
	if !reflect.DeepEqual(el.Edges, want) {
		t.Fatalf("Dedup = %v, want %v", el.Edges, want)
	}
}

func TestEdgeListSymmetrize(t *testing.T) {
	el := NewEdgeList(3)
	el.Add(0, 1)
	el.Add(1, 0) // already has reverse
	el.Add(1, 2)
	el.Add(2, 2) // self-loop kept once
	el.Symmetrize()
	want := []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 2}}
	if !reflect.DeepEqual(el.Edges, want) {
		t.Fatalf("Symmetrize = %v, want %v", el.Edges, want)
	}
}

func TestEdgeListRemoveSelfLoops(t *testing.T) {
	el := NewEdgeList(3)
	el.Add(0, 0)
	el.Add(0, 1)
	el.Add(2, 2)
	el.RemoveSelfLoops()
	if !reflect.DeepEqual(el.Edges, []Edge{{0, 1}}) {
		t.Fatalf("RemoveSelfLoops = %v", el.Edges)
	}
}

func TestEdgeListValidateRejects(t *testing.T) {
	el := &EdgeList{NumVertices: 2, Edges: []Edge{{0, 5}}}
	if el.Validate() == nil {
		t.Fatal("Validate accepted out-of-range edge")
	}
}

func TestSymmetrizeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		el := NewEdgeList(0)
		for i := 0; i+1 < len(raw); i += 2 {
			el.Add(uint32(raw[i]%50), uint32(raw[i+1]%50))
		}
		el.Symmetrize()
		// Every edge's reverse must be present (self-loops trivially so).
		present := map[Edge]bool{}
		for _, e := range el.Edges {
			present[e] = true
		}
		for _, e := range el.Edges {
			if !present[Edge{e.V, e.U}] {
				return false
			}
		}
		// And no duplicates.
		return len(present) == len(el.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBiEdgeListBasics(t *testing.T) {
	bel := NewBiEdgeList(2, 3)
	bel.Add(0, 2)
	bel.Add(1, 0)
	if bel.NumVertices(0) != 2 || bel.NumVertices(1) != 3 {
		t.Fatalf("cardinalities %d,%d", bel.NumVertices(0), bel.NumVertices(1))
	}
	bel.Add(5, 9) // grows both partitions
	if bel.N0 != 6 || bel.N1 != 10 {
		t.Fatalf("after growth: %d,%d", bel.N0, bel.N1)
	}
	if err := bel.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBiEdgeListDedupUnweighted(t *testing.T) {
	bel := NewBiEdgeList(2, 2)
	bel.Add(0, 1)
	bel.Add(0, 1)
	bel.Add(1, 0)
	bel.Dedup()
	if bel.Len() != 2 {
		t.Fatalf("Len after dedup = %d", bel.Len())
	}
}

func TestBiEdgeListDedupWeightedKeepsFirst(t *testing.T) {
	bel := NewBiEdgeList(2, 2)
	bel.AddWeighted(0, 1, 5)
	bel.AddWeighted(0, 1, 9)
	bel.AddWeighted(1, 1, 2)
	bel.Dedup()
	if bel.Len() != 2 || len(bel.Weights) != 2 {
		t.Fatalf("after dedup: %d edges, %d weights", bel.Len(), len(bel.Weights))
	}
	if bel.Weights[0] != 5 {
		t.Fatalf("kept weight %v, want first occurrence 5", bel.Weights[0])
	}
}

func TestBiEdgeListTransposeInvolution(t *testing.T) {
	bel := paperBiEdgeList()
	tt := bel.Transpose().Transpose()
	if tt.N0 != bel.N0 || tt.N1 != bel.N1 || !reflect.DeepEqual(tt.Edges, bel.Edges) {
		t.Fatal("Transpose . Transpose != identity")
	}
}

func TestBiEdgeListValidateWeightMismatch(t *testing.T) {
	bel := NewBiEdgeList(2, 2)
	bel.Add(0, 0)
	bel.Weights = []float64{1, 2}
	if bel.Validate() == nil {
		t.Fatal("Validate accepted weight/edge length mismatch")
	}
}
