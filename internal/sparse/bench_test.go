package sparse

import (
	"math/rand"
	"testing"
)

func benchPairs(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]Edge, m)
	for i := range pairs {
		pairs[i] = Edge{U: uint32(rng.Intn(n)), V: uint32(rng.Intn(n))}
	}
	return pairs
}

func BenchmarkCSRBuild(b *testing.B) {
	pairs := benchPairs(50000, 500000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromPairs(50000, 50000, pairs, nil)
	}
}

func BenchmarkCSRTranspose(b *testing.B) {
	c := FromPairs(50000, 50000, benchPairs(50000, 500000, 2), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Transpose()
	}
}

func BenchmarkCSRDegrees(b *testing.B) {
	c := FromPairs(50000, 50000, benchPairs(50000, 500000, 3), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Degrees()
	}
}

func BenchmarkRelabelHyperedges(b *testing.B) {
	bel := NewBiEdgeList(20000, 20000)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200000; i++ {
		bel.Add(uint32(rng.Intn(20000)), uint32(rng.Intn(20000)))
	}
	edges, nodes := BiAdjacency(bel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = RelabelHyperedges(edges, nodes, Descending)
	}
}
