package sparse

import (
	"math/rand"
	"testing"

	"nwhy/internal/parallel"
)

func overlayBase(t *testing.T) *CSR {
	t.Helper()
	// 4 rows over 6 cols.
	c := FromPairs(4, 6, []Edge{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {1, 3},
		{2, 4},
		{3, 3}, {3, 5},
	}, nil)
	if err := c.Validate(); err != nil {
		t.Fatalf("base: %v", err)
	}
	return c
}

func TestOverlayRejectsWeighted(t *testing.T) {
	c := FromPairs(2, 2, []Edge{{0, 0}, {1, 1}}, []float64{1, 2})
	if _, err := NewOverlay(c); err == nil {
		t.Fatal("want error for weighted base")
	}
}

func TestOverlayReadThrough(t *testing.T) {
	ov, err := NewOverlay(overlayBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := ov.Row(1); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("Row(1) = %v", got)
	}
	if ov.NumRows() != 4 || ov.NumCols() != 6 {
		t.Fatalf("dims = %dx%d", ov.NumRows(), ov.NumCols())
	}
	if ov.Degree(0) != 3 || ov.Degree(2) != 1 {
		t.Fatalf("degrees = %d,%d", ov.Degree(0), ov.Degree(2))
	}
}

func TestOverlayInsertSortsDedupsGrows(t *testing.T) {
	ov, err := NewOverlay(overlayBase(t))
	if err != nil {
		t.Fatal(err)
	}
	id := ov.InsertRow([]uint32{7, 2, 7, 0})
	if id != 4 {
		t.Fatalf("id = %d, want 4", id)
	}
	if got := ov.Row(id); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 7 {
		t.Fatalf("Row(%d) = %v", id, got)
	}
	if ov.NumCols() != 8 {
		t.Fatalf("NumCols = %d, want 8 after inserting col 7", ov.NumCols())
	}
	if ov.NumRows() != 5 || ov.Inserts() != 1 {
		t.Fatalf("rows=%d inserts=%d", ov.NumRows(), ov.Inserts())
	}
}

func TestOverlayDeleteAndRecycle(t *testing.T) {
	ov, err := NewOverlay(overlayBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.DeleteRow(1); err != nil {
		t.Fatal(err)
	}
	if !ov.Dead(1) || ov.Row(1) != nil || ov.Degree(1) != 0 {
		t.Fatal("row 1 should be dead and empty")
	}
	if err := ov.DeleteRow(1); err == nil {
		t.Fatal("double delete should fail")
	}
	if err := ov.DeleteRow(99); err == nil {
		t.Fatal("out-of-range delete should fail")
	}
	// Recycled insert takes ID 1, not a fresh ID.
	id := ov.InsertRow([]uint32{5})
	if id != 1 {
		t.Fatalf("recycled id = %d, want 1", id)
	}
	if ov.Dead(1) || ov.NumRows() != 4 {
		t.Fatalf("after recycle: dead=%v rows=%d", ov.Dead(1), ov.NumRows())
	}
	if got := ov.Row(1); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Row(1) = %v", got)
	}
	if ov.Deletes() != 1 {
		t.Fatalf("Deletes = %d", ov.Deletes())
	}
}

func TestOverlayDeleteDeltaRow(t *testing.T) {
	ov, err := NewOverlay(overlayBase(t))
	if err != nil {
		t.Fatal(err)
	}
	id := ov.InsertRow([]uint32{1, 2})
	if err := ov.DeleteRow(id); err != nil {
		t.Fatal(err)
	}
	if ov.Row(id) != nil {
		t.Fatal("deleted delta row should read empty")
	}
}

func TestOverlayCompactMatchesManual(t *testing.T) {
	eng := parallel.NewEngine(4)
	ov, err := NewOverlay(overlayBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.DeleteRow(2); err != nil {
		t.Fatal(err)
	}
	ov.InsertRow([]uint32{0, 5}) // recycles ID 2
	ov.InsertRow([]uint32{4})    // fresh ID 4
	c, err := ov.Compact(eng)
	if err != nil {
		t.Fatal(err)
	}
	want := FromPairs(5, 6, []Edge{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {1, 3},
		{2, 0}, {2, 5},
		{3, 3}, {3, 5},
		{4, 4},
	}, nil)
	if !c.Equal(want) {
		t.Fatalf("compact mismatch:\n got %v %v\nwant %v %v", c.RowPtr, c.Col, want.RowPtr, want.Col)
	}
}

func TestOverlayCompactDeadRowsEmpty(t *testing.T) {
	eng := parallel.NewEngine(2)
	ov, err := NewOverlay(overlayBase(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := ov.DeleteRow(0); err != nil {
		t.Fatal(err)
	}
	c, err := ov.Compact(eng)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumRows() != 4 || len(c.Row(0)) != 0 {
		t.Fatalf("dead row should compact to empty: rows=%d row0=%v", c.NumRows(), c.Row(0))
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOverlayCompactRandomDifferential(t *testing.T) {
	eng := parallel.NewEngine(4)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		nrows, ncols := 1+rng.Intn(40), 1+rng.Intn(30)
		var pairs []Edge
		for i := 0; i < nrows; i++ {
			d := rng.Intn(5)
			for j := 0; j < d; j++ {
				pairs = append(pairs, Edge{uint32(i), uint32(rng.Intn(ncols))})
			}
		}
		bel := &BiEdgeList{N0: nrows, N1: ncols, Edges: pairs}
		bel.Dedup()
		base := FromPairs(nrows, ncols, bel.Edges, nil)
		ov, err := NewOverlay(base)
		if err != nil {
			t.Fatal(err)
		}
		// Shadow model: live rows by ID.
		shadow := map[uint32][]uint32{}
		for i := 0; i < nrows; i++ {
			shadow[uint32(i)] = append([]uint32(nil), base.Row(i)...)
		}
		for op := 0; op < 60; op++ {
			if rng.Intn(3) == 0 && len(shadow) > 0 {
				// Delete a random live row.
				var victim uint32
				n := rng.Intn(len(shadow))
				for id := range shadow {
					if n == 0 {
						victim = id
						break
					}
					n--
				}
				if err := ov.DeleteRow(victim); err != nil {
					t.Fatal(err)
				}
				delete(shadow, victim)
			} else {
				d := 1 + rng.Intn(4)
				cols := make([]uint32, d)
				for j := range cols {
					cols[j] = uint32(rng.Intn(ncols))
				}
				id := ov.InsertRow(cols)
				sorted := append([]uint32(nil), cols...)
				for a := 1; a < len(sorted); a++ {
					for b := a; b > 0 && sorted[b] < sorted[b-1]; b-- {
						sorted[b], sorted[b-1] = sorted[b-1], sorted[b]
					}
				}
				dedup := sorted[:0]
				for j, v := range sorted {
					if j == 0 || v != sorted[j-1] {
						dedup = append(dedup, v)
					}
				}
				shadow[id] = append([]uint32(nil), dedup...)
			}
		}
		c, err := ov.Compact(eng)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if c.NumRows() != ov.NumRows() {
			t.Fatalf("trial %d: rows %d != %d", trial, c.NumRows(), ov.NumRows())
		}
		for i := 0; i < c.NumRows(); i++ {
			want := shadow[uint32(i)]
			got := c.Row(i)
			if len(got) != len(want) {
				t.Fatalf("trial %d row %d: got %v want %v", trial, i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("trial %d row %d: got %v want %v", trial, i, got, want)
				}
			}
		}
	}
}

func TestTransposeOnMatchesTranspose(t *testing.T) {
	eng := parallel.NewEngine(4)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		nrows, ncols := 1+rng.Intn(50), 1+rng.Intn(50)
		var pairs []Edge
		for k := 0; k < rng.Intn(200); k++ {
			pairs = append(pairs, Edge{uint32(rng.Intn(nrows)), uint32(rng.Intn(ncols))})
		}
		bel := &BiEdgeList{N0: nrows, N1: ncols, Edges: pairs}
		bel.Dedup()
		c := FromPairs(nrows, ncols, bel.Edges, nil)
		got, err := TransposeOn(eng, c)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(c.Transpose()) {
			t.Fatalf("trial %d: TransposeOn != Transpose", trial)
		}
	}
}

func TestTransposeOnWeightedFallback(t *testing.T) {
	eng := parallel.NewEngine(2)
	c := FromPairs(2, 3, []Edge{{0, 1}, {1, 0}, {1, 2}}, []float64{1, 2, 3})
	got, err := TransposeOn(eng, c)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c.Transpose()) {
		t.Fatal("weighted fallback mismatch")
	}
}
