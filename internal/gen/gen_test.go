package gen

import (
	"testing"

	"nwhy/internal/core"
)

func TestUniformShape(t *testing.T) {
	h := Uniform(100, 200, 5, 1)
	if h.NumEdges() != 100 || h.NumNodes() != 200 {
		t.Fatalf("shape %d/%d", h.NumEdges(), h.NumNodes())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 100; e++ {
		if h.EdgeDegree(e) != 5 {
			t.Fatalf("edge %d degree %d, want exactly 5", e, h.EdgeDegree(e))
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(50, 80, 4, 7)
	b := Uniform(50, 80, 4, 7)
	if !a.Edges.Equal(b.Edges) {
		t.Fatal("same seed produced different hypergraphs")
	}
	c := Uniform(50, 80, 4, 8)
	if a.Edges.Equal(c.Edges) {
		t.Fatal("different seeds produced identical hypergraphs")
	}
}

func TestUniformEdgeSizeClamped(t *testing.T) {
	h := Uniform(3, 4, 100, 1)
	for e := 0; e < 3; e++ {
		if h.EdgeDegree(e) != 4 {
			t.Fatalf("degree %d, want clamped 4", h.EdgeDegree(e))
		}
	}
}

func TestUniformLowSkew(t *testing.T) {
	// Uniform membership: max node degree should be within a small factor
	// of the mean (binomial concentration), unlike the community generator.
	h := Uniform(2000, 2000, 10, 3)
	s := core.ComputeStats(h)
	if s.AvgNodeDegree < 9 || s.AvgNodeDegree > 11 {
		t.Fatalf("avg node degree %v, want ~10", s.AvgNodeDegree)
	}
	if float64(s.MaxNodeDegree) > 6*s.AvgNodeDegree {
		t.Fatalf("uniform hypergraph too skewed: max %d vs avg %v", s.MaxNodeDegree, s.AvgNodeDegree)
	}
}

func TestCommunitySkewedDegrees(t *testing.T) {
	h := Community(CommunityConfig{
		NumEdges: 3000, NumNodes: 2000, MeanEdgeSize: 10,
		SizeSkew: 1.5, MemberSkew: 0.5, Seed: 9,
	})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	s := core.ComputeStats(h)
	// Heavy-tailed: the max degrees must be far above the means.
	if float64(s.MaxEdgeDegree) < 4*s.AvgEdgeDegree {
		t.Fatalf("edge sizes not skewed: max %d avg %v", s.MaxEdgeDegree, s.AvgEdgeDegree)
	}
	if float64(s.MaxNodeDegree) < 4*s.AvgNodeDegree {
		t.Fatalf("node degrees not skewed: max %d avg %v", s.MaxNodeDegree, s.AvgNodeDegree)
	}
}

func TestCommunityMeanEdgeSizeNearTarget(t *testing.T) {
	h := Community(CommunityConfig{
		NumEdges: 5000, NumNodes: 5000, MeanEdgeSize: 12,
		SizeSkew: 1.5, MemberSkew: 0.3, Seed: 4,
	})
	s := core.ComputeStats(h)
	if s.AvgEdgeDegree < 6 || s.AvgEdgeDegree > 24 {
		t.Fatalf("avg edge degree %v, want within 2x of 12", s.AvgEdgeDegree)
	}
}

func TestBipartitePowerLaw(t *testing.T) {
	h := BipartitePowerLaw(2000, 4000, 20000, 1.7, 5)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumIncidences() != 20000 {
		t.Fatalf("incidences = %d", h.NumIncidences())
	}
	s := core.ComputeStats(h)
	if float64(s.MaxEdgeDegree) < 5*s.AvgEdgeDegree {
		t.Fatalf("power-law edges not skewed: max %d avg %v", s.MaxEdgeDegree, s.AvgEdgeDegree)
	}
}

func TestPresetsAllBuildAndValidate(t *testing.T) {
	for _, p := range Presets() {
		h := p.Build(0.05) // tiny scale for test speed
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if h.NumEdges() == 0 || h.NumNodes() == 0 {
			t.Errorf("%s: empty hypergraph", p.Name)
		}
	}
}

func TestPresetShapesMatchTableI(t *testing.T) {
	// The defining ratios of Table I must survive the scale-down:
	// com-orkut has |E| >> |V|; friendster has |V| >> |E|; rand1 is square.
	build := func(name string) core.Stats {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return core.ComputeStats(p.Build(0.2))
	}
	co := build("com-orkut-mini")
	if co.NumEdges < 3*co.NumNodes {
		t.Errorf("com-orkut should have many more hyperedges than nodes: %+v", co)
	}
	fr := build("friendster-mini")
	if fr.NumNodes < 3*fr.NumEdges {
		t.Errorf("friendster should have many more nodes than hyperedges: %+v", fr)
	}
	r1 := build("rand1-mini")
	if r1.NumNodes != r1.NumEdges {
		t.Errorf("rand1 should be square: %+v", r1)
	}
	if float64(r1.MaxEdgeDegree) > 2*r1.AvgEdgeDegree {
		t.Errorf("rand1 should be uniform: %+v", r1)
	}
	og := build("orkut-group-mini")
	if og.AvgEdgeDegree < 15 {
		t.Errorf("orkut-group should be dense (d̄e=37 in the paper): %+v", og)
	}
}

func TestRMATShape(t *testing.T) {
	h := RMAT(1000, 2000, 8000, 0.55, 0.15, 0.15, 7)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 1000 || h.NumNodes() != 2000 {
		t.Fatalf("shape %d/%d", h.NumEdges(), h.NumNodes())
	}
	if h.NumIncidences() < 7000 {
		t.Fatalf("incidences = %d, want near 8000", h.NumIncidences())
	}
}

func TestRMATSkewGrowsWithA(t *testing.T) {
	uniform := core.ComputeStats(RMAT(2000, 2000, 16000, 0.25, 0.25, 0.25, 3))
	skewed := core.ComputeStats(RMAT(2000, 2000, 16000, 0.6, 0.15, 0.15, 3))
	if skewed.MaxEdgeDegree <= uniform.MaxEdgeDegree {
		t.Fatalf("RMAT skew did not grow: max %d (a=0.6) vs %d (uniform)",
			skewed.MaxEdgeDegree, uniform.MaxEdgeDegree)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(500, 500, 3000, 0.5, 0.2, 0.2, 11)
	b := RMAT(500, 500, 3000, 0.5, 0.2, 0.2, 11)
	if !a.Edges.Equal(b.Edges) {
		t.Fatal("RMAT not deterministic")
	}
}

func TestRMATNonPowerOfTwoDims(t *testing.T) {
	h := RMAT(100, 77, 500, 0.4, 0.2, 0.2, 5)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 100 || h.NumNodes() != 77 {
		t.Fatalf("shape %d/%d", h.NumEdges(), h.NumNodes())
	}
}

func TestFromDegreeSequences(t *testing.T) {
	edgeSizes := []int{3, 3, 3, 3}
	nodeDegrees := []int{2, 2, 2, 2, 2, 2}
	h := FromDegreeSequences(edgeSizes, nodeDegrees, 1)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumEdges() != 4 || h.NumNodes() != 6 {
		t.Fatalf("shape %d/%d", h.NumEdges(), h.NumNodes())
	}
	// Stub totals match (12 = 12); after dedup incidences are <= 12.
	if h.NumIncidences() > 12 {
		t.Fatalf("incidences = %d", h.NumIncidences())
	}
	// Degrees cannot exceed the requested stubs.
	for e := 0; e < 4; e++ {
		if h.EdgeDegree(e) > 3 {
			t.Fatalf("edge %d degree %d > 3", e, h.EdgeDegree(e))
		}
	}
	for v := 0; v < 6; v++ {
		if h.NodeDegree(v) > 2 {
			t.Fatalf("node %d degree %d > 2", v, h.NodeDegree(v))
		}
	}
}

func TestFromDegreeSequencesSkewed(t *testing.T) {
	// One giant hyperedge, many small: sizes preserved approximately.
	edgeSizes := []int{100, 2, 2, 2}
	nodeDegrees := make([]int, 200)
	for i := range nodeDegrees {
		nodeDegrees[i] = 1
	}
	h := FromDegreeSequences(edgeSizes, nodeDegrees, 3)
	if h.EdgeDegree(0) < 80 {
		t.Fatalf("giant edge degree %d, want near 100", h.EdgeDegree(0))
	}
}

func TestFromDegreeSequencesMismatchedStubs(t *testing.T) {
	// Edge stubs (10) exceed node stubs (4): truncation, no panic.
	h := FromDegreeSequences([]int{10}, []int{2, 2}, 5)
	if h.NumIncidences() > 4 {
		t.Fatalf("incidences = %d, want <= 4", h.NumIncidences())
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPresetsDeterministic(t *testing.T) {
	p, _ := ByName("livejournal-mini")
	a := p.Build(0.1)
	b := p.Build(0.1)
	if !a.Edges.Equal(b.Edges) {
		t.Fatal("preset not deterministic")
	}
}
