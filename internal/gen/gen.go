// Package gen generates synthetic hypergraphs standing in for the paper's
// evaluation datasets. The paper uses SNAP social networks materialized as
// community hypergraphs (each detected community = one hyperedge), KONECT
// bipartite networks, and a Hygra-generated uniform random hypergraph
// (Rand1). None of those downloads fit this environment, so this package
// provides three generator families reproducing their *shapes* — size
// ratios, mean degrees, and degree skew — plus named presets matching each
// Table I row at a configurable scale.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nwhy/internal/core"
	"nwhy/internal/sparse"
)

// Uniform generates a Rand1-style hypergraph: ne hyperedges, each with
// exactly edgeSize hypernodes chosen uniformly at random from [0, nv)
// (without replacement within a hyperedge). Degree distributions are tightly
// concentrated — the "uniform degree distribution" input of Figures 7/8.
func Uniform(ne, nv, edgeSize int, seed int64) *core.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	if edgeSize > nv {
		edgeSize = nv
	}
	bel := sparse.NewBiEdgeList(ne, nv)
	bel.Edges = make([]sparse.Edge, 0, ne*edgeSize)
	scratch := make(map[uint32]bool, edgeSize)
	for e := 0; e < ne; e++ {
		clear(scratch)
		for len(scratch) < edgeSize {
			scratch[uint32(rng.Intn(nv))] = true
		}
		for v := range scratch {
			bel.Edges = append(bel.Edges, sparse.Edge{U: uint32(e), V: v})
		}
	}
	return core.FromBiEdgeList(bel)
}

// CommunityConfig parameterizes the planted-community generator.
type CommunityConfig struct {
	NumEdges int // number of hyperedges (communities)
	NumNodes int // number of hypernodes (members)
	// MeanEdgeSize is the target mean community size d̄e.
	MeanEdgeSize float64
	// SizeSkew is the Zipf exponent (> 1) of the community size
	// distribution; values near 1.5 give the heavy-tailed community sizes
	// of the SNAP-derived hypergraphs (large Δe).
	SizeSkew float64
	// MemberSkew in [0, 1) biases member selection toward low-ID nodes,
	// producing the skewed hypernode degree distribution (large Δv) of
	// social networks. 0 = uniform membership.
	MemberSkew float64
	Seed       int64
}

// Community generates a SNAP-style community hypergraph: hyperedge sizes
// follow a truncated Zipf distribution with the requested mean, and members
// are drawn with a power-law bias so a few hypernodes join many
// communities. The result has skewed degree distributions on both sides,
// like com-Orkut, Orkut-group, LiveJournal and Web in Table I.
func Community(cfg CommunityConfig) *core.Hypergraph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.SizeSkew <= 1 {
		cfg.SizeSkew = 1.5
	}
	maxSize := cfg.NumNodes
	if maxSize > 100000 {
		maxSize = 100000
	}
	sizes := zipfSizes(rng, cfg.NumEdges, cfg.MeanEdgeSize, cfg.SizeSkew, maxSize)
	bel := sparse.NewBiEdgeList(cfg.NumEdges, cfg.NumNodes)
	scratch := map[uint32]bool{}
	for e, size := range sizes {
		clear(scratch)
		for len(scratch) < size {
			scratch[pickMember(rng, cfg.NumNodes, cfg.MemberSkew)] = true
		}
		for v := range scratch {
			bel.Edges = append(bel.Edges, sparse.Edge{U: uint32(e), V: v})
		}
	}
	return core.FromBiEdgeList(bel)
}

// pickMember draws a hypernode. skew in (0, 1) biases selection toward low
// IDs by mapping a uniform draw through u^(1/(1-skew)): skew 0 is uniform,
// larger skews concentrate membership on a small hot set of hypernodes,
// producing the large Δv of the social-network hypergraphs.
func pickMember(rng *rand.Rand, nv int, skew float64) uint32 {
	if skew <= 0 {
		return uint32(rng.Intn(nv))
	}
	exp := 1 / (1 - skew)
	id := int(float64(nv) * math.Pow(rng.Float64(), exp))
	if id >= nv {
		id = nv - 1
	}
	return uint32(id)
}

// zipfSizes draws n sizes >= 1 from a truncated Zipf with the target mean:
// sizes are drawn with exponent skew, then rescaled toward the requested
// mean by adjusting the Zipf imax.
func zipfSizes(rng *rand.Rand, n int, mean, skew float64, maxSize int) []int {
	if mean < 1 {
		mean = 1
	}
	// Calibrate imax so the sample mean lands near the target: draw from
	// Zipf(s=skew, v=1, imax) and scale.
	imax := uint64(maxSize)
	z := rand.NewZipf(rng, skew, 1, imax)
	sizes := make([]int, n)
	var sum float64
	for i := range sizes {
		sizes[i] = int(z.Uint64()) + 1
		sum += float64(sizes[i])
	}
	// Rescale multiplicatively to hit the mean (keeping minimum 1).
	scale := mean / (sum / float64(n))
	for i := range sizes {
		s := int(float64(sizes[i]) * scale)
		if s < 1 {
			s = 1
		}
		if s > maxSize {
			s = maxSize
		}
		sizes[i] = s
	}
	return sizes
}

// BipartitePowerLaw generates a KONECT-style bipartite hypergraph with
// power-law degrees on both sides: m incidences are placed by sampling a
// hyperedge and a hypernode independently from Zipf marginals.
func BipartitePowerLaw(ne, nv, m int, skew float64, seed int64) *core.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	if skew <= 1 {
		skew = 1.8
	}
	ze := rand.NewZipf(rng, skew, 1, uint64(ne-1))
	zv := rand.NewZipf(rng, skew, 1, uint64(nv-1))
	bel := sparse.NewBiEdgeList(ne, nv)
	seen := make(map[sparse.Edge]bool, m)
	for len(bel.Edges) < m {
		e := sparse.Edge{U: uint32(ze.Uint64()), V: uint32(zv.Uint64())}
		if seen[e] {
			continue
		}
		seen[e] = true
		bel.Edges = append(bel.Edges, e)
	}
	return core.FromBiEdgeList(bel)
}

// ContainmentConfig parameterizes the containment-rich generator.
type ContainmentConfig struct {
	NumBase  int // number of base (intended-toplex) hyperedges
	NumNodes int // number of hypernodes
	// BaseSize is the size of each base hyperedge (members drawn without
	// replacement, with MemberSkew bias so bases overlap and stay connected).
	BaseSize int
	// SubsPerBase nested hyperedges are carved out of each base hyperedge as
	// random proper subsets — these are non-maximal by construction, so the
	// toplex fraction is roughly 1/(1+SubsPerBase).
	SubsPerBase int
	// MemberSkew in [0, 1) biases base membership toward low-ID hypernodes
	// (same knob as CommunityConfig), keeping the base edges s-overlapping.
	MemberSkew float64
	Seed       int64
}

// Containment generates a containment-rich hypergraph: NumBase large base
// hyperedges plus SubsPerBase proper subsets nested inside each. Most
// hyperedges are therefore non-maximal and covered by a base edge — the
// shape where toplex-pruned s-overlap construction shines, standing in for
// set-valued datasets (shopping baskets, tag sets) whose small records are
// usually contained in larger ones. Base edges come first (IDs
// [0, NumBase)), subsets after, so tests can tell the strata apart.
func Containment(cfg ContainmentConfig) *core.Hypergraph {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.BaseSize < 2 {
		cfg.BaseSize = 2
	}
	if cfg.BaseSize > cfg.NumNodes {
		cfg.BaseSize = cfg.NumNodes
	}
	ne := cfg.NumBase * (1 + cfg.SubsPerBase)
	bel := sparse.NewBiEdgeList(ne, cfg.NumNodes)
	bases := make([][]uint32, cfg.NumBase)
	scratch := make(map[uint32]bool, cfg.BaseSize)
	for b := 0; b < cfg.NumBase; b++ {
		clear(scratch)
		for len(scratch) < cfg.BaseSize {
			scratch[pickMember(rng, cfg.NumNodes, cfg.MemberSkew)] = true
		}
		members := make([]uint32, 0, cfg.BaseSize)
		for v := range scratch {
			members = append(members, v)
		}
		bases[b] = members
		for _, v := range members {
			bel.Edges = append(bel.Edges, sparse.Edge{U: uint32(b), V: v})
		}
	}
	e := uint32(cfg.NumBase)
	for b := 0; b < cfg.NumBase; b++ {
		members := bases[b]
		for k := 0; k < cfg.SubsPerBase; k++ {
			// Proper subset: size in [1, |base|-1], first `size` of a shuffle.
			size := 1 + rng.Intn(len(members)-1)
			rng.Shuffle(len(members), func(i, j int) {
				members[i], members[j] = members[j], members[i]
			})
			for _, v := range members[:size] {
				bel.Edges = append(bel.Edges, sparse.Edge{U: e, V: v})
			}
			e++
		}
	}
	return core.FromBiEdgeList(bel)
}

// RMAT generates a hypergraph whose incidence matrix is drawn from the
// R-MAT (recursive matrix) distribution used by Graph500-style workload
// generators: each of m incidences picks its (hyperedge, hypernode) cell by
// descending a 2x2 quadrant tree with probabilities (a, b, c, d). Skew
// grows with a; a=b=c=d=0.25 is uniform. Dimensions round up to powers of
// two internally and are truncated back. Duplicates are dropped.
func RMAT(ne, nv, m int, a, b, c float64, seed int64) *core.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	d := 1 - a - b - c
	if d < 0 {
		d = 0
	}
	logR := ceilLog2(ne)
	logC := ceilLog2(nv)
	bel := sparse.NewBiEdgeList(ne, nv)
	seen := map[sparse.Edge]bool{}
	attempts := 0
	for len(bel.Edges) < m && attempts < 20*m {
		attempts++
		row, col := 0, 0
		levels := logR
		if logC > levels {
			levels = logC
		}
		for bit := levels - 1; bit >= 0; bit-- {
			u := rng.Float64()
			var right, down bool
			switch {
			case u < a:
			case u < a+b:
				right = true
			case u < a+b+c:
				down = true
			default:
				right = true
				down = true
			}
			if right && bit < logC {
				col |= 1 << bit
			}
			if down && bit < logR {
				row |= 1 << bit
			}
		}
		if row >= ne || col >= nv {
			continue
		}
		e := sparse.Edge{U: uint32(row), V: uint32(col)}
		if seen[e] {
			continue
		}
		seen[e] = true
		bel.Edges = append(bel.Edges, e)
	}
	return core.FromBiEdgeList(bel)
}

func ceilLog2(n int) int {
	l := 0
	for (1 << l) < n {
		l++
	}
	return l
}

// FromDegreeSequences generates a hypergraph with (approximately) the
// requested hyperedge sizes and hypernode degrees via the bipartite
// configuration model: each hyperedge gets size[e] incidence stubs, each
// hypernode degree[v] stubs, stubs are matched uniformly at random, and
// duplicate incidences are dropped. The stub totals need not match exactly;
// the smaller side truncates. This is the precision tool for mimicking a
// measured Table I row when the moment-level presets are not close enough.
func FromDegreeSequences(edgeSizes, nodeDegrees []int, seed int64) *core.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	var edgeStubs, nodeStubs []uint32
	for e, s := range edgeSizes {
		for i := 0; i < s; i++ {
			edgeStubs = append(edgeStubs, uint32(e))
		}
	}
	for v, d := range nodeDegrees {
		for i := 0; i < d; i++ {
			nodeStubs = append(nodeStubs, uint32(v))
		}
	}
	rng.Shuffle(len(edgeStubs), func(i, j int) { edgeStubs[i], edgeStubs[j] = edgeStubs[j], edgeStubs[i] })
	rng.Shuffle(len(nodeStubs), func(i, j int) { nodeStubs[i], nodeStubs[j] = nodeStubs[j], nodeStubs[i] })
	n := len(edgeStubs)
	if len(nodeStubs) < n {
		n = len(nodeStubs)
	}
	bel := sparse.NewBiEdgeList(len(edgeSizes), len(nodeDegrees))
	for i := 0; i < n; i++ {
		bel.Add(edgeStubs[i], nodeStubs[i])
	}
	bel.Dedup()
	return core.FromBiEdgeList(bel)
}

// Preset names one Table I dataset shape.
type Preset struct {
	Name string
	// Paper characteristics this preset mimics (for documentation).
	PaperV, PaperE string
	// Build generates the hypergraph at the given scale (scale 1 ≈ 10-50k
	// entities; scale s multiplies entity counts by s).
	Build func(scale float64) *core.Hypergraph
}

// Presets returns the six Table I dataset stand-ins in paper order.
func Presets() []Preset {
	return []Preset{
		{
			Name: "com-orkut-mini", PaperV: "2.3M", PaperE: "15.3M",
			// d̄v=46, d̄e=7, many more hyperedges than nodes, skewed.
			Build: func(s float64) *core.Hypergraph {
				nv := scaleInt(4000, s)
				ne := scaleInt(26000, s)
				return Community(CommunityConfig{
					NumEdges: ne, NumNodes: nv, MeanEdgeSize: 7,
					SizeSkew: 1.6, MemberSkew: 0.5, Seed: 101,
				})
			},
		},
		{
			Name: "friendster-mini", PaperV: "7.9M", PaperE: "1.6M",
			// d̄v=3, d̄e=14: few large communities over many nodes.
			Build: func(s float64) *core.Hypergraph {
				nv := scaleInt(30000, s)
				ne := scaleInt(6000, s)
				return Community(CommunityConfig{
					NumEdges: ne, NumNodes: nv, MeanEdgeSize: 14,
					SizeSkew: 1.6, MemberSkew: 0.4, Seed: 102,
				})
			},
		},
		{
			Name: "orkut-group-mini", PaperV: "2.8M", PaperE: "8.7M",
			// d̄v=118, d̄e=37: very dense, extremely skewed (Δe=318k).
			Build: func(s float64) *core.Hypergraph {
				nv := scaleInt(3000, s)
				ne := scaleInt(9500, s)
				return Community(CommunityConfig{
					NumEdges: ne, NumNodes: nv, MeanEdgeSize: 37,
					SizeSkew: 1.35, MemberSkew: 0.6, Seed: 103,
				})
			},
		},
		{
			Name: "livejournal-mini", PaperV: "3.2M", PaperE: "7.5M",
			// d̄v=35, d̄e=15, huge Δe (1.1M in the paper).
			Build: func(s float64) *core.Hypergraph {
				nv := scaleInt(6500, s)
				ne := scaleInt(15000, s)
				return Community(CommunityConfig{
					NumEdges: ne, NumNodes: nv, MeanEdgeSize: 15,
					SizeSkew: 1.4, MemberSkew: 0.55, Seed: 104,
				})
			},
		},
		{
			Name: "web-mini", PaperV: "27.7M", PaperE: "12.8M",
			// d̄v=5, d̄e=11: sparse, more nodes than edges, power-law both
			// sides (KONECT bipartite).
			Build: func(s float64) *core.Hypergraph {
				nv := scaleInt(44000, s)
				ne := scaleInt(20000, s)
				return BipartitePowerLaw(ne, nv, scaleInt(220000, s), 1.7, 105)
			},
		},
		{
			Name: "containment-mini", PaperV: "-", PaperE: "-",
			// Not a Table I row: a containment-rich shape (most hyperedges
			// nested inside a base toplex) for exercising toplex pruning.
			Build: func(s float64) *core.Hypergraph {
				return Containment(ContainmentConfig{
					NumBase:  scaleInt(1200, s),
					NumNodes: scaleInt(8000, s),
					BaseSize: 24, SubsPerBase: 7,
					MemberSkew: 0.45, Seed: 107,
				})
			},
		},
		{
			Name: "rand1-mini", PaperV: "100M", PaperE: "100M",
			// d̄v=d̄e=10, uniform: one giant component, no skew.
			Build: func(s float64) *core.Hypergraph {
				n := scaleInt(40000, s)
				return Uniform(n, n, 10, 106)
			},
		},
	}
}

// ByName returns the preset with the given name.
func ByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range Presets() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, names)
}

func scaleInt(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}
