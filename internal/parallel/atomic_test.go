package parallel

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestMinU32Sequential(t *testing.T) {
	var x uint32 = 100
	if !MinU32(&x, 50) || x != 50 {
		t.Fatalf("MinU32 lower: x=%d", x)
	}
	if MinU32(&x, 50) {
		t.Fatal("MinU32 equal value reported change")
	}
	if MinU32(&x, 70) || x != 50 {
		t.Fatalf("MinU32 higher changed value: x=%d", x)
	}
}

func TestMinU32Concurrent(t *testing.T) {
	var x uint32 = 1 << 30
	var wg sync.WaitGroup
	vals := make([]uint32, 1000)
	min := uint32(1 << 30)
	rng := rand.New(rand.NewSource(1))
	for i := range vals {
		vals[i] = rng.Uint32()
		if vals[i] < min {
			min = vals[i]
		}
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(vals); i += 8 {
				MinU32(&x, vals[i])
			}
		}(g)
	}
	wg.Wait()
	if x != min {
		t.Fatalf("concurrent MinU32 = %d, want %d", x, min)
	}
}

func TestMinU64Property(t *testing.T) {
	f := func(init uint64, vals []uint64) bool {
		x := init
		want := init
		for _, v := range vals {
			MinU64(&x, v)
			if v < want {
				want = v
			}
		}
		return x == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatalf("Count after Clear = %d", b.Count())
	}
}

func TestBitsetSetIdempotent(t *testing.T) {
	b := NewBitset(64)
	b.Set(10)
	b.Set(10)
	if b.Count() != 1 {
		t.Fatalf("Count = %d after double Set", b.Count())
	}
}

func TestBitsetTestAndSetExactlyOneWinner(t *testing.T) {
	const n = 1 << 12
	b := NewBitset(n)
	wins := make([]int32, n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if b.TestAndSet(i) {
					// Atomic not needed for the counter: only the single
					// winner for bit i writes wins[i].
					wins[i]++
				}
			}
		}()
	}
	wg.Wait()
	for i, w := range wins {
		if w != 1 {
			t.Fatalf("bit %d won %d times", i, w)
		}
	}
	if b.Count() != n {
		t.Fatalf("Count = %d, want %d", b.Count(), n)
	}
}

func TestBitsetCountMatchesSets(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := NewBitset(1 << 16)
		distinct := map[uint16]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			distinct[i] = true
		}
		return b.Count() == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
