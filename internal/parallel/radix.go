package parallel

import "sort"

// RadixSort64 sorts s by key with a stable parallel LSD radix sort: one
// 8-bit digit per pass, per-chunk histograms, and offsets laid out
// bucket-major/chunk-minor so elements of a bucket keep their chunk order —
// the property the weighted dedup's first-wins rule depends on. The pass
// count comes from the maximum key (a 32-bit key pays four passes, not
// eight) and passes whose digit is uniform across the input are skipped.
// Falls back to sort.SliceStable below the size where parallel passes pay
// for themselves.
func RadixSort64[T any](s []T, key func(T) uint64) {
	radixSort64(Default(), nil, s, key)
}

// RadixSort64On is RadixSort64 scheduled on engine e's pool, observing e's
// cancellation between digit passes: a cancelled sort stops early and leaves
// s a permutation of its input (possibly unsorted), never a corrupted mix of
// the ping-pong buffers. Callers detect the abort with e.Err().
func RadixSort64On[T any](e *Engine, s []T, key func(T) uint64) {
	radixSort64(e.pool(), e, s, key)
}

const radixSerialCutoff = 1 << 13

// RadixSerialCutoff is the input size below which RadixSort64 sorts serially
// (sort.SliceStable) instead of scheduling parallel passes. Callers inside a
// parallel loop body may sort slices shorter than this without deadlock risk:
// the serial path never submits pool work, whereas a parallel pass submitted
// from a pool worker would wait on the very pool it is occupying.
const RadixSerialCutoff = radixSerialCutoff

func radixSort64[T any](p *Pool, e *Engine, s []T, key func(T) uint64) {
	n := len(s)
	if n < radixSerialCutoff || p.NumWorkers() < 2 {
		sort.SliceStable(s, func(a, b int) bool { return key(s[a]) < key(s[b]) })
		return
	}
	nchunks := p.NumWorkers()
	bounds := make([]int, nchunks+1)
	for i := 0; i <= nchunks; i++ {
		bounds[i] = i * n / nchunks
	}
	// Pass count from the maximum key: byte k is a pass only if some key
	// has a nonzero byte at or above position k.
	maxes := make([]uint64, nchunks)
	p.For(BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			var m uint64
			for _, v := range s[bounds[c]:bounds[c+1]] {
				if k := key(v); k > m {
					m = k
				}
			}
			maxes[c] = m
		}
	})
	var maxKey uint64
	for _, m := range maxes {
		if m > maxKey {
			maxKey = m
		}
	}
	if maxKey == 0 {
		return // all keys equal: stable sort is the identity
	}
	passes := 0
	for k := maxKey; k != 0; k >>= 8 {
		passes++
	}
	buf := make([]T, n)
	src, dst := s, buf
	hist := make([]int, nchunks*256)
	for pass := 0; pass < passes; pass++ {
		if e != nil && e.Cancelled() {
			break
		}
		shift := uint(8 * pass)
		clear(hist)
		p.For(BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				h := hist[c*256 : c*256+256]
				for _, v := range src[bounds[c]:bounds[c+1]] {
					h[byte(key(v)>>shift)]++
				}
			}
		})
		// Exclusive offsets, bucket-major then chunk-minor: all of bucket
		// b's elements across chunks land contiguously, chunk 0's first.
		// A digit uniform across the input means the pass would be a pure
		// copy — skip it.
		pos, uniform := 0, false
		for b := 0; b < 256; b++ {
			start := pos
			for c := 0; c < nchunks; c++ {
				cnt := hist[c*256+b]
				hist[c*256+b] = pos
				pos += cnt
			}
			if pos-start == n {
				uniform = true
				break
			}
		}
		if uniform {
			continue
		}
		p.For(BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				h := hist[c*256 : c*256+256]
				for _, v := range src[bounds[c]:bounds[c+1]] {
					b := byte(key(v) >> shift)
					dst[h[b]] = v
					h[b]++
				}
			}
		})
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		// Serial on purpose: this also runs on the cancelled-early path,
		// where pool loops would still execute but an engine loop would
		// silently drop chunks.
		copy(s, src)
	}
}
