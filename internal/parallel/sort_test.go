package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortSmallFallback(t *testing.T) {
	s := []int{5, 2, 9, 1, 5, 6}
	Sort(s, func(a, b int) bool { return a < b })
	if !sort.IntsAreSorted(s) {
		t.Fatalf("not sorted: %v", s)
	}
}

func TestSortLargeRandom(t *testing.T) {
	SetNumWorkers(4)
	rng := rand.New(rand.NewSource(1))
	s := make([]int, 200000)
	counts := map[int]int{}
	for i := range s {
		s[i] = rng.Intn(1000)
		counts[s[i]]++
	}
	Sort(s, func(a, b int) bool { return a < b })
	if !sort.IntsAreSorted(s) {
		t.Fatal("not sorted")
	}
	// Multiset preserved.
	for _, v := range s {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("element %d count off by %d", v, c)
		}
	}
}

func TestSortAlreadySorted(t *testing.T) {
	s := make([]int, 100000)
	for i := range s {
		s[i] = i
	}
	Sort(s, func(a, b int) bool { return a < b })
	for i := range s {
		if s[i] != i {
			t.Fatal("sorted input perturbed")
		}
	}
}

func TestSortReverse(t *testing.T) {
	n := 150000
	s := make([]int, n)
	for i := range s {
		s[i] = n - i
	}
	Sort(s, func(a, b int) bool { return a < b })
	if !sort.IntsAreSorted(s) {
		t.Fatal("reverse input not sorted")
	}
}

func TestSortAllEqual(t *testing.T) {
	s := make([]int, 100000)
	Sort(s, func(a, b int) bool { return a < b })
	for _, v := range s {
		if v != 0 {
			t.Fatal("corrupted")
		}
	}
}

func TestSortU32Property(t *testing.T) {
	f := func(raw []uint32) bool {
		s := append([]uint32(nil), raw...)
		SortU32(s)
		if len(s) != len(raw) {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] > s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortSingleWorker(t *testing.T) {
	SetNumWorkers(1)
	defer SetNumWorkers(4)
	rng := rand.New(rand.NewSource(2))
	s := make([]int, 50000)
	for i := range s {
		s[i] = rng.Int()
	}
	Sort(s, func(a, b int) bool { return a < b })
	if !sort.IntsAreSorted(s) {
		t.Fatal("not sorted with one worker")
	}
}

func TestMergeInto(t *testing.T) {
	a := []int{1, 3, 5}
	b := []int{2, 3, 4, 6}
	out := make([]int, 7)
	mergeInto(out, a, b, func(x, y int) bool { return x < y })
	want := []int{1, 2, 3, 3, 4, 5, 6}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merge = %v", out)
		}
	}
	// Empty sides.
	out2 := make([]int, 3)
	mergeInto(out2, nil, []int{1, 2, 3}, func(x, y int) bool { return x < y })
	if out2[0] != 1 || out2[2] != 3 {
		t.Fatalf("merge with empty a = %v", out2)
	}
}
