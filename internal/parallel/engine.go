package parallel

import (
	"context"
	"sync"
)

// Engine is an explicit execution context for the algorithm layers: an
// owned (or shared) work-stealing pool, per-worker scratch arenas that
// persist across calls, and an optional context.Context observed at grain
// boundaries. It plays the role a scoped tbb::global_control plus
// task_arena plays in the C++ NWHy framework — except the handle is
// explicit, so two concurrent computations can run under different thread
// budgets, deadlines, and scratch pools without racing on process-global
// state.
//
// Engines are cheap handles: WithContext derives a new handle sharing the
// pool and arenas. An Engine obtained from NewEngine owns its pool and must
// be Closed; SharedEngine returns the process-wide engine backed by the
// default pool, which is never closed.
type Engine struct {
	sh  *engineShared
	ctx context.Context // nil = never cancelled
}

// engineShared is the state common to every handle derived from one engine:
// the pool (nil = route to the process default pool, so the SetNumThreads
// compat shim keeps working) and the per-worker scratch arenas.
type engineShared struct {
	pool  *Pool
	owned bool

	mu     sync.Mutex
	arenas []*arena
}

// arena is one worker's scratch free-lists. Access is guarded by a
// per-arena mutex so buffers may be grabbed inside loop bodies and stashed
// back from the coordinating goroutine without racing a concurrent
// computation sharing the engine.
type arena struct {
	mu   sync.Mutex
	u32  [][]uint32
	objs map[string][]any
}

// NewEngine creates an engine with an owned pool of workers threads
// (workers < 1 means GOMAXPROCS). Close it when done.
func NewEngine(workers int) *Engine {
	return &Engine{sh: &engineShared{pool: New(workers), owned: true}}
}

var (
	sharedEngineOnce sync.Once
	sharedEngine     *Engine
)

// SharedEngine returns the process-wide engine backed by the default pool.
// It is the engine compatibility entry points bind when the caller does not
// supply one; SetNumWorkers resizes the pool underneath it.
func SharedEngine() *Engine {
	sharedEngineOnce.Do(func() { sharedEngine = &Engine{sh: &engineShared{}} })
	return sharedEngine
}

// Close shuts down an owned pool. It is a no-op for the shared engine and
// for handles derived from it. Close must not be called while work is in
// flight on the engine.
func (e *Engine) Close() {
	if e.sh.owned && e.sh.pool != nil {
		e.sh.pool.Close()
	}
}

// WithContext derives a handle that shares this engine's pool and scratch
// arenas but observes ctx: parallel loops started from the derived handle
// stop scheduling new grains once ctx is cancelled, and Err reports
// ctx.Err().
func (e *Engine) WithContext(ctx context.Context) *Engine {
	return &Engine{sh: e.sh, ctx: ctx}
}

// Detach returns a handle on the same pool with no bound context — the
// inverse of WithContext. It is for the boundary where a request- or
// boot-bound engine constructs state that must outlive its deadline
// (serving handles, caches): build on the bound engine, rebind the result
// to the detached one.
func (e *Engine) Detach() *Engine {
	if e.ctx == nil {
		return e
	}
	return &Engine{sh: e.sh}
}

// Context returns the bound context (context.Background() if none).
func (e *Engine) Context() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// Err reports the bound context's error: nil while live, the cancellation
// cause once cancelled. Kernels return this after observing an aborted
// loop.
func (e *Engine) Err() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// Cancelled reports whether the bound context has been cancelled. Checked
// at grain boundaries by every loop driver.
func (e *Engine) Cancelled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// pool resolves the pool this engine schedules on.
func (e *Engine) pool() *Pool {
	if e.sh.pool != nil {
		return e.sh.pool
	}
	return Default()
}

// NumWorkers reports the engine's worker count.
func (e *Engine) NumWorkers() int { return e.pool().NumWorkers() }

// autoGrainFor sizes a grain to give workers about 8 chunks each.
func autoGrainFor(n, workers int) int {
	g := n / (8 * workers)
	if g < 1 {
		g = 1
	}
	return g
}

// Blocked returns a BlockedRange over [begin, end) with a grain sized for
// this engine's worker count.
func (e *Engine) Blocked(begin, end int) BlockedRange {
	return BlockedRange{Begin: begin, End: end, Grain: autoGrainFor(end-begin, e.NumWorkers())}
}

// Cyclic returns a CyclicRange over [begin, end) splitting into at most
// bins interleaved sub-ranges (bins < 1: 4x this engine's worker count).
func (e *Engine) Cyclic(begin, end, bins int) CyclicRange {
	if bins < 1 {
		bins = 4 * e.NumWorkers()
	}
	return CyclicRange{Begin: begin, End: end, Offset: 0, Stride: 1, MaxStride: bins}
}

// For runs body over the blocked range on this engine. Cancellation is
// observed at grain boundaries: once the bound context is cancelled no
// further chunk executes (chunks already running finish). Callers detect an
// aborted loop with Err. If body panics, remaining chunks are skipped and
// the first panic is rethrown on the calling goroutine once in-flight
// chunks finish — the engine and its arenas stay usable afterwards.
func (e *Engine) For(r BlockedRange, body func(worker, lo, hi int)) {
	if r.Len() <= 0 || e.Cancelled() {
		return
	}
	if r.Grain < 1 {
		r.Grain = autoGrainFor(r.Len(), e.NumWorkers())
	}
	p := e.pool()
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(1)
	p.submit(task{wg: &wg, fn: func(w int) { e.forBlocked(p, w, r, body, &wg, &box) }})
	wg.Wait()
	box.rethrow()
}

func (e *Engine) forBlocked(p *Pool, w int, r BlockedRange, body func(worker, lo, hi int), wg *sync.WaitGroup, box *panicBox) {
	for r.Divisible() {
		if e.Cancelled() || box.tripped.Load() {
			return
		}
		left, right := r.Split()
		wg.Add(1)
		r = left
		p.spawn(w, task{wg: wg, fn: func(w2 int) { e.forBlocked(p, w2, right, body, wg, box) }})
	}
	if e.Cancelled() || box.tripped.Load() {
		return
	}
	box.guard(func() { body(w, r.Begin, r.End) })
}

// ForN runs body over [0, n) with automatic grain.
func (e *Engine) ForN(n int, body func(worker, lo, hi int)) {
	e.For(e.Blocked(0, n), body)
}

// ForEach runs body once per index of [0, n).
func (e *Engine) ForEach(n int, body func(i int)) {
	e.ForN(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForCyclic runs body over the cyclic range on this engine, observing
// cancellation at sub-range boundaries.
func (e *Engine) ForCyclic(r CyclicRange, body func(worker, start, end, stride int)) {
	if r.End-r.Begin <= 0 || e.Cancelled() {
		return
	}
	p := e.pool()
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(1)
	p.submit(task{wg: &wg, fn: func(w int) { e.forCyclic(p, w, r, body, &wg, &box) }})
	wg.Wait()
	box.rethrow()
}

func (e *Engine) forCyclic(p *Pool, w int, r CyclicRange, body func(worker, start, end, stride int), wg *sync.WaitGroup, box *panicBox) {
	for r.Divisible() {
		if e.Cancelled() || box.tripped.Load() {
			return
		}
		left, right := r.Split()
		wg.Add(1)
		r = left
		p.spawn(w, task{wg: wg, fn: func(w2 int) { e.forCyclic(p, w2, right, body, wg, box) }})
	}
	if e.Cancelled() || box.tripped.Load() {
		return
	}
	box.guard(func() { body(w, r.Begin+r.Offset, r.End, r.Stride) })
}

// ForCyclicNeighbor is the cyclic neighbor range adaptor on this engine.
func (e *Engine) ForCyclicNeighbor(g Adjacency, bins int, body func(worker, u int, neighbors []uint32)) {
	e.ForCyclic(e.Cyclic(0, g.NumRows(), bins), func(w, start, end, stride int) {
		for u := start; u < end; u += stride {
			body(w, u, g.Row(u))
		}
	})
}

// Invoke runs all fns in parallel on this engine and waits. Functions not
// yet started when the context is cancelled are skipped. The first panic
// raised by any fn is rethrown on the calling goroutine after all finish.
func (e *Engine) Invoke(fns ...func()) {
	if e.Cancelled() {
		return
	}
	p := e.pool()
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.submit(task{fn: func(int) {
			if !e.Cancelled() && !box.tripped.Load() {
				box.guard(fn)
			}
		}, wg: &wg})
	}
	wg.Wait()
	box.rethrow()
}

// Go schedules fn on the engine's pool and returns immediately.
func (e *Engine) Go(fn func(worker int), wg *sync.WaitGroup) {
	e.pool().Go(fn, wg)
}

// ReduceWith computes a parallel reduction over [0, n) on engine e. join
// must be associative; combination order is unspecified. If the engine is
// cancelled mid-loop the unprocessed chunks are skipped — callers must
// check e.Err() before trusting the value.
func ReduceWith[T any](e *Engine, n int, identity T, mapFn func(lo, hi int, acc T) T, join func(a, b T) T) T {
	partials := make([]T, e.NumWorkers())
	seen := make([]bool, e.NumWorkers())
	e.ForN(n, func(w, lo, hi int) {
		if !seen[w] {
			partials[w] = identity
			seen[w] = true
		}
		partials[w] = mapFn(lo, hi, partials[w])
	})
	acc := identity
	for w, ok := range seen {
		if ok {
			acc = join(acc, partials[w])
		}
	}
	return acc
}

// NewTLSFor creates per-worker storage sized for engine e's pool.
func NewTLSFor[T any](e *Engine, init func() T) *TLS[T] {
	return NewTLS(e.pool(), init)
}

// arena returns worker w's scratch arena, growing the table on demand (the
// shared engine's worker count can change via SetNumWorkers).
func (e *Engine) arena(w int) *arena {
	sh := e.sh
	sh.mu.Lock()
	for len(sh.arenas) <= w {
		sh.arenas = append(sh.arenas, &arena{})
	}
	a := sh.arenas[w]
	sh.mu.Unlock()
	return a
}

// GrabU32 pops a reusable uint32 buffer (length 0, capacity retained from
// earlier calls) from worker w's arena, or returns nil if none is free.
// Kernels use these for frontier buffers so steady-state traversals stop
// allocating.
func (e *Engine) GrabU32(w int) []uint32 {
	a := e.arena(w)
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.u32); n > 0 {
		buf := a.u32[n-1]
		a.u32 = a.u32[:n-1]
		return buf[:0]
	}
	return nil
}

// StashU32 returns a buffer to worker w's arena for reuse by later calls.
func (e *Engine) StashU32(w int, buf []uint32) {
	if cap(buf) == 0 {
		return
	}
	a := e.arena(w)
	a.mu.Lock()
	a.u32 = append(a.u32, buf[:0])
	a.mu.Unlock()
}

// Grab pops a reusable scratch object stashed under key in worker w's
// arena. The caller owns the object until it Stashes it back.
func (e *Engine) Grab(w int, key string) (any, bool) {
	a := e.arena(w)
	a.mu.Lock()
	defer a.mu.Unlock()
	free := a.objs[key]
	if n := len(free); n > 0 {
		v := free[n-1]
		a.objs[key] = free[:n-1]
		return v, true
	}
	return nil, false
}

// Stash returns a scratch object to worker w's arena under key.
func (e *Engine) Stash(w int, key string, v any) {
	a := e.arena(w)
	a.mu.Lock()
	if a.objs == nil {
		a.objs = map[string][]any{}
	}
	a.objs[key] = append(a.objs[key], v)
	a.mu.Unlock()
}
