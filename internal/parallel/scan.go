package parallel

// ScanExclusive replaces s with its exclusive prefix sum in parallel and
// returns the total: s[i] becomes the sum of the original s[0..i). The
// classic two-pass algorithm: per-chunk sums, sequential scan over chunk
// totals, then per-chunk local scans offset by the chunk base.
func ScanExclusive(s []int64) int64 {
	const serialCutoff = 1 << 14
	n := len(s)
	if n < serialCutoff {
		var sum int64
		for i := range s {
			v := s[i]
			s[i] = sum
			sum += v
		}
		return sum
	}
	p := Default()
	nchunks := p.NumWorkers() * 4
	bounds := make([]int, nchunks+1)
	for i := 0; i <= nchunks; i++ {
		bounds[i] = i * n / nchunks
	}
	sums := make([]int64, nchunks)
	p.For(BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			var sum int64
			for _, v := range s[bounds[c]:bounds[c+1]] {
				sum += v
			}
			sums[c] = sum
		}
	})
	var total int64
	for c := 0; c < nchunks; c++ {
		v := sums[c]
		sums[c] = total
		total += v
	}
	p.For(BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			sum := sums[c]
			chunk := s[bounds[c]:bounds[c+1]]
			for i := range chunk {
				v := chunk[i]
				chunk[i] = sum
				sum += v
			}
		}
	})
	return total
}
