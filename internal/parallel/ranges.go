package parallel

import "sync"

// BlockedRange is the analogue of tbb::blocked_range: a half-open interval
// [Begin, End) that parallel loops split recursively into contiguous chunks
// no smaller than Grain. Contiguous chunks give good cache behaviour but can
// load-imbalance badly when the per-index work is skewed and sorted (e.g. a
// degree-sorted hypergraph), which is why NWHy also offers cyclic ranges.
type BlockedRange struct {
	Begin, End int
	Grain      int
}

// Blocked returns a BlockedRange over [begin, end) with an automatic grain:
// small enough to give the scheduler ~8 chunks per worker to steal, but
// never below 1.
func Blocked(begin, end int) BlockedRange {
	return BlockedRange{Begin: begin, End: end, Grain: autoGrain(end - begin)}
}

// BlockedGrain returns a BlockedRange with an explicit grain size.
func BlockedGrain(begin, end, grain int) BlockedRange {
	if grain < 1 {
		grain = 1
	}
	return BlockedRange{Begin: begin, End: end, Grain: grain}
}

func autoGrain(n int) int {
	g := n / (8 * Default().NumWorkers())
	if g < 1 {
		g = 1
	}
	return g
}

// Len reports the number of indices in the range.
func (r BlockedRange) Len() int { return r.End - r.Begin }

// Divisible reports whether the range is worth splitting further.
func (r BlockedRange) Divisible() bool { return r.Len() > r.Grain }

// Split divides the range in half.
func (r BlockedRange) Split() (BlockedRange, BlockedRange) {
	mid := r.Begin + r.Len()/2
	a, b := r, r
	a.End = mid
	b.Begin = mid
	return a, b
}

// CyclicRange is NWHy's cyclic range adaptor: the index set
// {Begin + Offset, Begin + Offset + Stride, ...} below End. With Stride equal
// to the number of bins, bin k visits indices k, k+Stride, k+2*Stride, ... —
// interleaving high- and low-degree vertices across workers, the antidote to
// the blocked range's imbalance on degree-sorted inputs.
type CyclicRange struct {
	Begin, End int
	Offset     int
	Stride     int
	MaxStride  int
}

// Cyclic returns a CyclicRange over [begin, end) that splits into at most
// bins interleaved sub-ranges. bins < 1 defaults to 4x the default pool size.
func Cyclic(begin, end, bins int) CyclicRange {
	if bins < 1 {
		bins = 4 * Default().NumWorkers()
	}
	return CyclicRange{Begin: begin, End: end, Offset: 0, Stride: 1, MaxStride: bins}
}

// Divisible reports whether the range can be split into two interleaved halves.
func (r CyclicRange) Divisible() bool {
	return r.Stride*2 <= r.MaxStride && r.Begin+r.Offset+r.Stride < r.End
}

// Split divides the range into even and odd interleavings: (offset, 2*stride)
// and (offset+stride, 2*stride).
func (r CyclicRange) Split() (CyclicRange, CyclicRange) {
	a, b := r, r
	a.Stride = r.Stride * 2
	b.Stride = r.Stride * 2
	b.Offset = r.Offset + r.Stride
	return a, b
}

// For runs body over the blocked range in parallel. body receives the worker
// ID executing the chunk (for per-worker state) and the chunk bounds [lo, hi).
// If body panics, remaining chunks are skipped and the first panic is
// rethrown on the calling goroutine once in-flight chunks finish.
func (p *Pool) For(r BlockedRange, body func(worker, lo, hi int)) {
	if r.Len() <= 0 {
		return
	}
	if r.Grain < 1 {
		r.Grain = autoGrain(r.Len())
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(1)
	p.submit(task{wg: &wg, fn: func(w int) { p.forBlocked(w, r, body, &wg, &box) }})
	wg.Wait()
	box.rethrow()
}

func (p *Pool) forBlocked(w int, r BlockedRange, body func(worker, lo, hi int), wg *sync.WaitGroup, box *panicBox) {
	for r.Divisible() {
		if box.tripped.Load() {
			return
		}
		left, right := r.Split()
		wg.Add(1)
		r = left
		p.spawn(w, task{wg: wg, fn: func(w2 int) { p.forBlocked(w2, right, body, wg, box) }})
	}
	if box.tripped.Load() {
		return
	}
	box.guard(func() { body(w, r.Begin, r.End) })
}

// ForCyclic runs body over the cyclic range in parallel. body receives the
// worker ID and a strided sub-range: it must visit i = start; i < end;
// i += stride. Panics propagate like For's.
func (p *Pool) ForCyclic(r CyclicRange, body func(worker, start, end, stride int)) {
	if r.End-r.Begin <= 0 {
		return
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(1)
	p.submit(task{wg: &wg, fn: func(w int) { p.forCyclic(w, r, body, &wg, &box) }})
	wg.Wait()
	box.rethrow()
}

func (p *Pool) forCyclic(w int, r CyclicRange, body func(worker, start, end, stride int), wg *sync.WaitGroup, box *panicBox) {
	for r.Divisible() {
		if box.tripped.Load() {
			return
		}
		left, right := r.Split()
		wg.Add(1)
		r = left
		p.spawn(w, task{wg: wg, fn: func(w2 int) { p.forCyclic(w2, right, body, wg, box) }})
	}
	if box.tripped.Load() {
		return
	}
	box.guard(func() { body(w, r.Begin+r.Offset, r.End, r.Stride) })
}

// Adjacency is the minimal view of a CSR-like structure that the
// cyclic-neighbor range needs: a row count and per-row neighbor slices. It is
// satisfied by sparse.CSR and by graph.Graph.
type Adjacency interface {
	NumRows() int
	Row(i int) []uint32
}

// ForCyclicNeighbor is NWHy's cyclic neighbor range adaptor: like ForCyclic,
// but the body receives each vertex together with its neighborhood, saving
// the row lookup and making the iteration pattern of Listing 4 explicit.
func (p *Pool) ForCyclicNeighbor(g Adjacency, bins int, body func(worker, u int, neighbors []uint32)) {
	p.ForCyclic(Cyclic(0, g.NumRows(), bins), func(w, start, end, stride int) {
		for u := start; u < end; u += stride {
			body(w, u, g.Row(u))
		}
	})
}

// For runs body over [0, n) on the default pool with automatic grain.
func For(n int, body func(worker, lo, hi int)) {
	Default().For(Blocked(0, n), body)
}

// ForEach runs body once per index of [0, n) on the default pool.
func ForEach(n int, body func(i int)) {
	Default().For(Blocked(0, n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Reduce computes a parallel reduction over [0, n): map produces a partial
// result for each chunk seeded with identity, and join combines partials.
// join must be associative; the order of combination is unspecified.
func Reduce[T any](n int, identity T, mapFn func(lo, hi int, acc T) T, join func(a, b T) T) T {
	p := Default()
	partials := make([]T, p.NumWorkers())
	seen := make([]bool, p.NumWorkers())
	p.For(Blocked(0, n), func(w, lo, hi int) {
		if !seen[w] {
			partials[w] = identity
			seen[w] = true
		}
		partials[w] = mapFn(lo, hi, partials[w])
	})
	acc := identity
	for w, ok := range seen {
		if ok {
			acc = join(acc, partials[w])
		}
	}
	return acc
}

// TLS holds one value per worker of a pool: the analogue of
// tbb::enumerable_thread_specific, used for per-thread edge-list buffers and
// work queues in the s-line-graph algorithms.
type TLS[T any] struct {
	slots []T
	used  []bool
	init  func() T
}

// NewTLS creates per-worker storage for pool p. init, if non-nil, lazily
// initializes a slot on first Get.
func NewTLS[T any](p *Pool, init func() T) *TLS[T] {
	return &TLS[T]{slots: make([]T, p.NumWorkers()), used: make([]bool, p.NumWorkers()), init: init}
}

// Get returns a pointer to worker w's slot, initializing it on first use.
func (t *TLS[T]) Get(w int) *T {
	if !t.used[w] {
		t.used[w] = true
		if t.init != nil {
			t.slots[w] = t.init()
		}
	}
	return &t.slots[w]
}

// All invokes fn for each slot that was touched.
func (t *TLS[T]) All(fn func(v *T)) {
	for w := range t.slots {
		if t.used[w] {
			fn(&t.slots[w])
		}
	}
}

// Each invokes fn for each touched slot along with its worker id, so callers
// can return per-worker scratch to the matching engine arena.
func (t *TLS[T]) Each(fn func(w int, v *T)) {
	for w := range t.slots {
		if t.used[w] {
			fn(w, &t.slots[w])
		}
	}
}

// FlattenTLS concatenates every touched per-worker buffer of tls into dst
// (reusing dst's capacity; pass nil to allocate fresh) and returns the
// result. It is the single merge path for per-worker append buffers: BFS
// next-frontiers, s-line edge lists, and every other fan-in of TLS slices
// go through it. If recycle is non-nil it is called with each worker's
// buffer after draining — typically Engine.StashU32, returning frontier
// buffers to the worker's scratch arena — and the slot is cleared so a
// recycled buffer cannot be aliased by a later round.
func FlattenTLS[T any](dst []T, tls *TLS[[]T], recycle func(w int, buf []T)) []T {
	dst = dst[:0]
	tls.Each(func(w int, v *[]T) {
		dst = append(dst, *v...)
		if recycle != nil {
			recycle(w, *v)
			*v = nil
		}
	})
	return dst
}
