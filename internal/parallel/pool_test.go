package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolInvokeRunsAll(t *testing.T) {
	p := New(4)
	defer p.Close()
	var a, b, c atomic.Int32
	p.Invoke(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatalf("Invoke did not run all functions: %d %d %d", a.Load(), b.Load(), c.Load())
	}
}

func TestPoolInvokeEmpty(t *testing.T) {
	p := New(2)
	defer p.Close()
	p.Invoke() // must not hang
}

func TestPoolGoCompletes(t *testing.T) {
	p := New(2)
	defer p.Close()
	var wg sync.WaitGroup
	var n atomic.Int32
	for i := 0; i < 100; i++ {
		wg.Add(1)
		p.Go(func(worker int) {
			if worker < 0 || worker >= p.NumWorkers() {
				t.Errorf("bad worker id %d", worker)
			}
			n.Add(1)
		}, &wg)
	}
	wg.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestPoolSingleWorker(t *testing.T) {
	p := New(1)
	defer p.Close()
	var n atomic.Int32
	p.For(Blocked(0, 1000), func(_, lo, hi int) {
		n.Add(int32(hi - lo))
	})
	if n.Load() != 1000 {
		t.Fatalf("covered %d of 1000", n.Load())
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	p := New(8)
	defer p.Close()
	const n = 100003
	counts := make([]int32, n)
	p.For(Blocked(0, n), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForEmptyRange(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := false
	p.For(Blocked(5, 5), func(_, lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
	p.For(Blocked(7, 3), func(_, lo, hi int) { called = true })
	if called {
		t.Fatal("body called for inverted range")
	}
}

func TestForGrainRespected(t *testing.T) {
	p := New(4)
	defer p.Close()
	var mu sync.Mutex
	sizes := []int{}
	p.For(BlockedGrain(0, 100, 10), func(_, lo, hi int) {
		mu.Lock()
		sizes = append(sizes, hi-lo)
		mu.Unlock()
	})
	total := 0
	for _, s := range sizes {
		if s > 10 {
			t.Errorf("chunk size %d exceeds grain 10: ranges split while Len > Grain, so leaves must be <= Grain", s)
		}
		total += s
	}
	if total != 100 {
		t.Fatalf("total coverage %d != 100", total)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	p := New(3)
	defer p.Close()
	p.For(Blocked(0, 10000), func(w, lo, hi int) {
		if w < 0 || w >= 3 {
			t.Errorf("worker id %d out of range", w)
		}
	})
}

func TestForCyclicCoversEveryIndexOnce(t *testing.T) {
	p := New(8)
	defer p.Close()
	const n = 99991
	counts := make([]int32, n)
	p.ForCyclic(Cyclic(0, n, 32), func(_, start, end, stride int) {
		for i := start; i < end; i += stride {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForCyclicSmallRanges(t *testing.T) {
	p := New(4)
	defer p.Close()
	for n := 0; n < 20; n++ {
		counts := make([]int32, n+1)
		p.ForCyclic(Cyclic(0, n, 16), func(_, start, end, stride int) {
			for i := start; i < end; i += stride {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i := 0; i < n; i++ {
			if counts[i] != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, counts[i])
			}
		}
	}
}

func TestCyclicRangeSplitInterleaves(t *testing.T) {
	r := Cyclic(0, 16, 4)
	a, b := r.Split()
	if a.Offset != 0 || a.Stride != 2 || b.Offset != 1 || b.Stride != 2 {
		t.Fatalf("unexpected split: %+v %+v", a, b)
	}
	if !a.Divisible() || !b.Divisible() {
		t.Fatal("stride-2 ranges with MaxStride 4 should still be divisible")
	}
	aa, ab := a.Split()
	if aa.Divisible() || ab.Divisible() {
		t.Fatal("stride-4 ranges with MaxStride 4 must not be divisible")
	}
}

type fakeAdj struct {
	rows [][]uint32
}

func (f fakeAdj) NumRows() int       { return len(f.rows) }
func (f fakeAdj) Row(i int) []uint32 { return f.rows[i] }

func TestForCyclicNeighborDeliversRows(t *testing.T) {
	p := New(4)
	defer p.Close()
	adj := fakeAdj{rows: [][]uint32{{1, 2}, {0}, {0, 3, 4}, {}, {2}}}
	var mu sync.Mutex
	got := make(map[int]int)
	p.ForCyclicNeighbor(adj, 2, func(_, u int, nbrs []uint32) {
		mu.Lock()
		got[u] = len(nbrs)
		mu.Unlock()
	})
	if len(got) != 5 {
		t.Fatalf("visited %d of 5 rows", len(got))
	}
	for u, want := range map[int]int{0: 2, 1: 1, 2: 3, 3: 0, 4: 1} {
		if got[u] != want {
			t.Errorf("row %d: got %d neighbors, want %d", u, got[u], want)
		}
	}
}

func TestSkewedWorkloadBalances(t *testing.T) {
	// One index carries nearly all the work; the scheduler must still finish
	// promptly because other workers steal the remaining chunks.
	p := New(4)
	defer p.Close()
	const n = 4096
	start := time.Now()
	var total atomic.Int64
	p.For(BlockedGrain(0, n, 1), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			work := 1
			if i == 0 {
				work = 200000
			}
			s := 0
			for k := 0; k < work; k++ {
				s += k
			}
			total.Add(int64(s % 7))
		}
	})
	_ = total.Load()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("skewed workload took %v; scheduler not balancing", elapsed)
	}
}

func TestReduceSum(t *testing.T) {
	SetNumWorkers(4)
	const n = 100000
	got := Reduce(n, 0,
		func(lo, hi, acc int) int {
			for i := lo; i < hi; i++ {
				acc += i
			}
			return acc
		},
		func(a, b int) int { return a + b })
	want := n * (n - 1) / 2
	if got != want {
		t.Fatalf("Reduce sum = %d, want %d", got, want)
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(0, 42, func(lo, hi, acc int) int { return acc + 1 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("Reduce over empty range = %d, want identity 42", got)
	}
}

func TestForEachCovers(t *testing.T) {
	const n = 1000
	counts := make([]int32, n)
	ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestSetNumWorkers(t *testing.T) {
	SetNumWorkers(2)
	if NumWorkers() != 2 {
		t.Fatalf("NumWorkers = %d, want 2", NumWorkers())
	}
	SetNumWorkers(5)
	if NumWorkers() != 5 {
		t.Fatalf("NumWorkers = %d, want 5", NumWorkers())
	}
	// Pool still works after swap.
	var n atomic.Int32
	ForEach(100, func(int) { n.Add(1) })
	if n.Load() != 100 {
		t.Fatalf("pool broken after SetNumWorkers: %d", n.Load())
	}
}

func TestTLSPerWorkerIsolation(t *testing.T) {
	p := New(4)
	defer p.Close()
	tls := NewTLS(p, func() []int { return nil })
	p.For(BlockedGrain(0, 10000, 16), func(w, lo, hi int) {
		s := tls.Get(w)
		for i := lo; i < hi; i++ {
			*s = append(*s, i)
		}
	})
	seen := make([]bool, 10000)
	total := 0
	tls.All(func(v *[]int) {
		for _, i := range *v {
			if seen[i] {
				t.Fatalf("index %d appears in two TLS slots", i)
			}
			seen[i] = true
			total++
		}
	})
	if total != 10000 {
		t.Fatalf("TLS captured %d of 10000 items", total)
	}
}

func TestTLSInit(t *testing.T) {
	p := New(2)
	defer p.Close()
	tls := NewTLS(p, func() int { return 7 })
	if *tls.Get(0) != 7 {
		t.Fatalf("TLS init not applied: %d", *tls.Get(0))
	}
	*tls.Get(0) = 9
	if *tls.Get(0) != 9 {
		t.Fatal("TLS slot not persistent")
	}
	count := 0
	tls.All(func(v *int) { count++ })
	if count != 1 {
		t.Fatalf("All visited %d slots, want 1 (only slot 0 touched)", count)
	}
}

func TestCloseIdle(t *testing.T) {
	p := New(3)
	p.Invoke(func() {}, func() {})
	done := make(chan struct{})
	go func() { p.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung")
	}
}

func TestManySequentialParallelFors(t *testing.T) {
	// Regression guard against lost-wakeup bugs: many small rounds where
	// workers park and wake repeatedly.
	p := New(4)
	defer p.Close()
	for round := 0; round < 500; round++ {
		var n atomic.Int32
		p.For(Blocked(0, 37), func(_, lo, hi int) { n.Add(int32(hi - lo)) })
		if n.Load() != 37 {
			t.Fatalf("round %d: covered %d of 37", round, n.Load())
		}
	}
}

func TestEngineDetach(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	// Detaching an unbound engine is the identity.
	if eng.Detach() != eng {
		t.Fatal("Detach of an unbound engine returned a new handle")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bound := eng.WithContext(ctx)
	if bound.Err() == nil {
		t.Fatal("bound engine does not observe the cancelled ctx")
	}
	d := bound.Detach()
	if err := d.Err(); err != nil {
		t.Fatalf("detached engine still observes the ctx: %v", err)
	}
	if d.NumWorkers() != eng.NumWorkers() {
		t.Fatal("detached engine is not on the same pool")
	}
	// The detached handle actually schedules work.
	var n atomic.Int32
	d.ForEach(8, func(int) { n.Add(1) })
	if n.Load() != 8 {
		t.Fatalf("ForEach on detached engine ran %d/8 grains", n.Load())
	}
}
