package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestWorkQueueDrainsExactlyOnce(t *testing.T) {
	eng := SharedEngine()
	items := make([]uint32, 1000)
	for i := range items {
		items[i] = uint32(i)
	}
	wq := NewWorkQueue(items, 7)
	var seen [1000]int32
	Drain(eng, wq, func(_ int, it uint32) {
		atomic.AddInt32(&seen[it], 1)
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("item %d processed %d times", i, c)
		}
	}
}

func TestWorkQueueEmpty(t *testing.T) {
	wq := NewWorkQueue[int](nil, 4)
	if wq.Len() != 0 {
		t.Fatalf("Len = %d", wq.Len())
	}
	called := false
	Drain(SharedEngine(), wq, func(_, _ int) { called = true })
	if called {
		t.Fatal("body called on empty queue")
	}
}

func TestNewWorkQueueForGrain(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	// 64 items / (16 chunks * 2 workers) = grain 2.
	wq := NewWorkQueueFor(eng, make([]int, 64))
	if wq.grain != 2 {
		t.Fatalf("grain = %d, want 2", wq.grain)
	}
	// Tiny queues clamp to grain 1.
	if wq := NewWorkQueueFor(eng, make([]int, 3)); wq.grain != 1 {
		t.Fatalf("tiny grain = %d, want 1", wq.grain)
	}
}

// TestDrainCancellationStopsAtChunkBoundary is the deterministic mid-drain
// cancellation regression test: on a single-worker engine, cancelling inside
// a chunk lets that chunk finish, stops fetching at the boundary, surfaces
// the error via Err, and leaves the engine (and its arenas) reusable.
func TestDrainCancellationStopsAtChunkBoundary(t *testing.T) {
	eng := NewEngine(1)
	defer eng.Close()
	// Stash a scratch buffer so we can check arenas survive the abort.
	eng.StashU32(0, make([]uint32, 0, 64))

	ctx, cancel := context.WithCancel(context.Background())
	ceng := eng.WithContext(ctx)
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	var processed int
	Drain(ceng, NewWorkQueue(items, 10), func(_, it int) {
		processed++
		if it == 4 { // mid-chunk: the enclosing chunk [0,10) still completes
			cancel()
		}
	})
	if processed != 10 {
		t.Fatalf("processed %d items, want exactly the first chunk of 10", processed)
	}
	if ceng.Err() == nil {
		t.Fatal("cancelled engine must surface Err")
	}

	// Arena scratch is still grabbable after the aborted drain.
	if buf := eng.GrabU32(0); cap(buf) != 64 {
		t.Fatalf("arena buffer lost after cancellation: cap=%d", cap(buf))
	}

	// The engine itself (sans cancelled context) drains a fresh queue fully.
	var again int
	Drain(eng, NewWorkQueue(items, 10), func(_, _ int) { again++ })
	if again != 100 {
		t.Fatalf("engine not reusable after cancellation: processed %d/100", again)
	}
}

func TestDrainAlreadyCancelledRunsNothing(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	Drain(eng.WithContext(ctx), NewWorkQueue(make([]int, 50), 5), func(_, _ int) { called = true })
	if called {
		t.Fatal("body ran under a pre-cancelled engine")
	}
}

func TestDrainPanicPropagates(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	items := make([]int, 200)
	for i := range items {
		items[i] = i
	}
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		Drain(eng, NewWorkQueue(items, 4), func(_, it int) {
			if it == 17 {
				panic("boom")
			}
		})
		t.Fatal("Drain returned without rethrowing")
	}()
	// The engine stays usable after the rethrow.
	var n atomic.Int64
	Drain(eng, NewWorkQueue(items, 4), func(_, _ int) { n.Add(1) })
	if n.Load() != 200 {
		t.Fatalf("post-panic drain processed %d/200", n.Load())
	}
}
