package parallel

import (
	"sync"
	"sync/atomic"
)

// WorkQueue is the dynamic work-distribution adaptor of NWHy's queue-based
// algorithms, promoted to a first-class sibling of BlockedRange and
// CyclicRange: items are enqueued up front and workers repeatedly fetch
// fixed-size chunks with an atomic cursor until the queue drains. Unlike the
// splittable ranges, fetching is fully dynamic, so the load balances
// regardless of how work is distributed across items — the property the
// paper's Algorithms 1 and 2 rely on for skewed hyperedge degrees.
type WorkQueue[T any] struct {
	items  []T
	cursor atomic.Int64
	grain  int
}

// NewWorkQueue creates a queue over items fetched in chunks of grain
// (grain < 1 is clamped to 1).
func NewWorkQueue[T any](items []T, grain int) *WorkQueue[T] {
	if grain < 1 {
		grain = 1
	}
	return &WorkQueue[T]{items: items, grain: grain}
}

// NewWorkQueueFor creates a queue over items with a grain sized for eng's
// worker count: about 16 chunks per worker, so dynamic fetching amortizes the
// cursor contention while still rebalancing skew.
func NewWorkQueueFor[T any](eng *Engine, items []T) *WorkQueue[T] {
	g := len(items) / (16 * eng.NumWorkers())
	return NewWorkQueue(items, g)
}

// Next returns the next chunk of work, or nil when the queue is drained.
func (q *WorkQueue[T]) Next() []T {
	lo := q.cursor.Add(int64(q.grain)) - int64(q.grain)
	if lo >= int64(len(q.items)) {
		return nil
	}
	hi := lo + int64(q.grain)
	if hi > int64(len(q.items)) {
		hi = int64(len(q.items))
	}
	return q.items[lo:hi]
}

// Len reports the number of enqueued items.
func (q *WorkQueue[T]) Len() int { return len(q.items) }

// Drain runs body over every queue item using all of eng's workers. Like the
// other structured drivers (For/ForCyclic/Invoke) it is cancellable and
// panic-safe: a cancelled engine stops fetching at the next chunk boundary,
// leaving the rest of the queue unprocessed (callers surface eng.Err()), and
// if body panics the remaining chunks are skipped and the first panic is
// rethrown on the calling goroutine once in-flight chunks finish — the
// engine and its arenas stay usable afterwards.
func Drain[T any](eng *Engine, q *WorkQueue[T], body func(worker int, item T)) {
	if q.Len() == 0 || eng.Cancelled() {
		return
	}
	p := eng.pool()
	var box panicBox
	var wg sync.WaitGroup
	n := p.NumWorkers()
	wg.Add(n)
	for w := 0; w < n; w++ {
		p.submit(task{wg: &wg, fn: func(worker int) {
			for !eng.Cancelled() && !box.tripped.Load() {
				chunk := q.Next()
				if chunk == nil {
					return
				}
				box.guard(func() {
					for _, it := range chunk {
						body(worker, it)
					}
				})
			}
		}})
	}
	wg.Wait()
	box.rethrow()
}
