package parallel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScanExclusiveSmall(t *testing.T) {
	s := []int64{3, 0, 2, 5}
	total := ScanExclusive(s)
	if total != 10 {
		t.Fatalf("total = %d", total)
	}
	want := []int64{0, 3, 3, 5}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("scan = %v", s)
		}
	}
}

func TestScanExclusiveEmpty(t *testing.T) {
	if ScanExclusive(nil) != 0 {
		t.Fatal("empty scan total != 0")
	}
}

func TestScanExclusiveLargeMatchesSequential(t *testing.T) {
	SetNumWorkers(4)
	rng := rand.New(rand.NewSource(5))
	n := 300000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(100))
		b[i] = a[i]
	}
	totalA := ScanExclusive(a)
	var sum int64
	for i := range b {
		v := b[i]
		b[i] = sum
		sum += v
	}
	if totalA != sum {
		t.Fatalf("totals differ: %d vs %d", totalA, sum)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan differs at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestScanExclusiveProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			s[i] = int64(v)
			want += int64(v)
		}
		return ScanExclusive(s) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkParallelFor(b *testing.B) {
	p := New(4)
	defer p.Close()
	data := make([]int64, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(Blocked(0, len(data)), func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				data[k]++
			}
		})
	}
}

func BenchmarkWorkStealingSkewed(b *testing.B) {
	p := New(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.For(BlockedGrain(0, 1024, 1), func(_, lo, hi int) {
			for k := lo; k < hi; k++ {
				work := 10
				if k%128 == 0 {
					work = 10000
				}
				s := 0
				for w := 0; w < work; w++ {
					s += w
				}
				_ = s
			}
		})
	}
}

func BenchmarkParallelSort(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	orig := make([]uint32, 1<<18)
	for i := range orig {
		orig[i] = rng.Uint32()
	}
	buf := make([]uint32, len(orig))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, orig)
		SortU32(buf)
	}
}

func BenchmarkScanExclusive(b *testing.B) {
	data := make([]int64, 1<<20)
	for i := range data {
		data[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ScanExclusive(data)
	}
}
