package parallel

import (
	"sync/atomic"
	"testing"
)

// recoverValue runs fn and returns the value it panicked with (nil if it
// returned normally).
func recoverValue(fn func()) (v any) {
	defer func() { v = recover() }()
	fn()
	return nil
}

func TestPoolForPanicPropagates(t *testing.T) {
	p := New(4)
	defer p.Close()
	v := recoverValue(func() {
		p.For(BlockedGrain(0, 1000, 1), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == 137 {
					panic("boom")
				}
			}
		})
	})
	if v != "boom" {
		t.Fatalf("recovered %v, want boom", v)
	}
	// The pool must remain fully usable after a captured panic.
	var count atomic.Int64
	p.For(Blocked(0, 1000), func(_, lo, hi int) { count.Add(int64(hi - lo)) })
	if count.Load() != 1000 {
		t.Fatalf("post-panic For covered %d indices, want 1000", count.Load())
	}
}

func TestPoolForCyclicPanicPropagates(t *testing.T) {
	p := New(4)
	defer p.Close()
	v := recoverValue(func() {
		p.ForCyclic(Cyclic(0, 1000, 16), func(_, start, end, stride int) {
			for i := start; i < end; i += stride {
				if i == 500 {
					panic("cyclic boom")
				}
			}
		})
	})
	if v != "cyclic boom" {
		t.Fatalf("recovered %v, want cyclic boom", v)
	}
}

func TestPoolInvokePanicPropagates(t *testing.T) {
	p := New(2)
	defer p.Close()
	ran := atomic.Int64{}
	v := recoverValue(func() {
		p.Invoke(
			func() { ran.Add(1) },
			func() { panic("invoke boom") },
			func() { ran.Add(1) },
		)
	})
	if v != "invoke boom" {
		t.Fatalf("recovered %v, want invoke boom", v)
	}
	// Invoke waits for all fns even when one panics; the others ran.
	if ran.Load() != 2 {
		t.Fatalf("ran = %d sibling fns, want 2", ran.Load())
	}
}

func TestEnginePanicDoesNotCorruptArena(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()

	// Seed the arenas with reusable buffers.
	eng.ForN(eng.NumWorkers(), func(w, lo, hi int) {
		eng.StashU32(w, make([]uint32, 0, 64))
	})

	// A body grabs arena scratch and panics before stashing it back. The
	// panic must surface on the calling goroutine, and the engine and its
	// arenas must stay usable: the grabbed buffer is simply lost to GC,
	// never double-handed to another worker.
	v := recoverValue(func() {
		eng.ForN(64, func(w, lo, hi int) {
			buf := eng.GrabU32(w)
			buf = append(buf, uint32(lo))
			_ = buf
			panic("arena boom")
		})
	})
	if v != "arena boom" {
		t.Fatalf("recovered %v, want arena boom", v)
	}

	// Steady-state grab/stash traffic still works after the panic.
	var total atomic.Int64
	for round := 0; round < 8; round++ {
		eng.ForN(1000, func(w, lo, hi int) {
			buf := eng.GrabU32(w)
			if buf == nil {
				buf = make([]uint32, 0, 16)
			}
			for i := lo; i < hi; i++ {
				buf = append(buf[:0], uint32(i))
			}
			total.Add(int64(hi - lo))
			eng.StashU32(w, buf)
		})
	}
	if total.Load() != 8000 {
		t.Fatalf("post-panic rounds covered %d indices, want 8000", total.Load())
	}
}

func TestEngineInvokePanicPropagates(t *testing.T) {
	eng := NewEngine(2)
	defer eng.Close()
	v := recoverValue(func() {
		eng.Invoke(func() {}, func() { panic(42) })
	})
	if v != 42 {
		t.Fatalf("recovered %v, want 42", v)
	}
}

func TestEngineForCyclicPanicPropagates(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	v := recoverValue(func() {
		eng.ForCyclic(eng.Cyclic(0, 512, 8), func(_, start, end, stride int) {
			panic("cyclic engine boom")
		})
	})
	if v != "cyclic engine boom" {
		t.Fatalf("recovered %v, want cyclic engine boom", v)
	}
}

func TestFirstPanicWins(t *testing.T) {
	p := New(4)
	defer p.Close()
	v := recoverValue(func() {
		p.For(BlockedGrain(0, 64, 1), func(_, lo, hi int) {
			panic("boom") // every chunk panics; exactly one value surfaces
		})
	})
	if v != "boom" {
		t.Fatalf("recovered %v, want boom", v)
	}
}
