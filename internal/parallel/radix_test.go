package parallel

import (
	"context"
	"math/rand"
	"sort"
	"testing"
)

type radixItem struct {
	key uint64
	seq int
}

func randomItems(n int, keySpace uint64, seed int64) []radixItem {
	rng := rand.New(rand.NewSource(seed))
	items := make([]radixItem, n)
	for i := range items {
		items[i] = radixItem{key: uint64(rng.Int63()) % keySpace, seq: i}
	}
	return items
}

func checkSortedStable(t *testing.T, items []radixItem) {
	t.Helper()
	for i := 1; i < len(items); i++ {
		if items[i-1].key > items[i].key {
			t.Fatalf("not sorted at %d: %d > %d", i, items[i-1].key, items[i].key)
		}
		if items[i-1].key == items[i].key && items[i-1].seq > items[i].seq {
			t.Fatalf("not stable at %d: key %d has seq %d before %d", i, items[i].key, items[i-1].seq, items[i].seq)
		}
	}
}

func TestRadixSort64MatchesSortSlice(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	for _, n := range []int{0, 1, 2, 100, radixSerialCutoff - 1, radixSerialCutoff, 1 << 15} {
		for _, keySpace := range []uint64{1, 7, 1 << 8, 1 << 20, 1 << 40, 1 << 62} {
			items := randomItems(n, keySpace, int64(n)+int64(keySpace))
			want := append([]radixItem(nil), items...)
			sort.SliceStable(want, func(a, b int) bool { return want[a].key < want[b].key })
			RadixSort64On(eng, items, func(it radixItem) uint64 { return it.key })
			for i := range items {
				if items[i] != want[i] {
					t.Fatalf("n=%d space=%d: mismatch at %d: got %+v want %+v", n, keySpace, i, items[i], want[i])
				}
			}
			checkSortedStable(t, items)
		}
	}
}

func TestRadixSort64DefaultPool(t *testing.T) {
	items := randomItems(1<<14, 1<<32, 7)
	RadixSort64(items, func(it radixItem) uint64 { return it.key })
	checkSortedStable(t, items)
}

// Duplicate-heavy input: stability must hold when most elements share keys,
// the regime the weighted dedup's first-weight-wins rule lives in.
func TestRadixSort64StabilityDuplicates(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	items := randomItems(1<<15, 16, 99)
	RadixSort64On(eng, items, func(it radixItem) uint64 { return it.key })
	checkSortedStable(t, items)
}

// A cancelled engine must leave the slice a permutation of its input.
func TestRadixSort64CancelledLeavesPermutation(t *testing.T) {
	eng := NewEngine(4)
	defer eng.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ceng := eng.WithContext(ctx)
	items := randomItems(1<<15, 1<<40, 3)
	seen := make([]bool, len(items))
	RadixSort64On(ceng, items, func(it radixItem) uint64 { return it.key })
	if ceng.Err() == nil {
		t.Fatal("expected engine to report cancellation")
	}
	for _, it := range items {
		if seen[it.seq] {
			t.Fatalf("seq %d appears twice: slice is not a permutation", it.seq)
		}
		seen[it.seq] = true
	}
}

func BenchmarkRadixSort64(b *testing.B) {
	eng := NewEngine(0)
	defer eng.Close()
	base := randomItems(1<<18, 1<<40, 1)
	items := make([]radixItem, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(items, base)
		RadixSort64On(eng, items, func(it radixItem) uint64 { return it.key })
	}
}

func BenchmarkMergeSortComparable(b *testing.B) {
	eng := NewEngine(0)
	defer eng.Close()
	base := randomItems(1<<18, 1<<40, 1)
	items := make([]radixItem, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(items, base)
		SortOn(eng, items, func(a, c radixItem) bool { return a.key < c.key })
	}
}
