package parallel

import (
	"reflect"
	"testing"
)

func TestScanExclusiveSingleElement(t *testing.T) {
	s := []int64{7}
	if total := ScanExclusive(s); total != 7 {
		t.Fatalf("total = %d, want 7", total)
	}
	if s[0] != 0 {
		t.Fatalf("s[0] = %d, want 0", s[0])
	}
}

func TestScanExclusiveAllZeros(t *testing.T) {
	s := make([]int64, 100)
	if total := ScanExclusive(s); total != 0 {
		t.Fatalf("total = %d, want 0", total)
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("s[%d] = %d, want 0", i, v)
		}
	}
}

func TestFlattenTLSZeroContribution(t *testing.T) {
	p := New(4)
	defer p.Close()
	tls := NewTLS[[]uint32](p, nil)

	// Only one worker slot contributes; the untouched slots must neither
	// appear in the output nor reach the recycle callback.
	*tls.Get(2) = append(*tls.Get(2), 10, 11)

	var recycled []int
	out := FlattenTLS(nil, tls, func(w int, buf []uint32) {
		recycled = append(recycled, w)
	})
	if !reflect.DeepEqual(out, []uint32{10, 11}) {
		t.Fatalf("flatten = %v, want [10 11]", out)
	}
	if !reflect.DeepEqual(recycled, []int{2}) {
		t.Fatalf("recycled workers = %v, want [2]", recycled)
	}
	// The recycled slot is cleared so a stale buffer cannot alias later
	// rounds. Note Get marks the slot touched, so the emptied slice (not
	// absence) is what the next flatten sees.
	if got := *tls.Get(2); got != nil {
		t.Fatalf("slot 2 after recycle = %v, want nil", got)
	}
}

func TestFlattenTLSNoTouchedSlots(t *testing.T) {
	p := New(4)
	defer p.Close()
	tls := NewTLS[[]uint32](p, nil)
	called := false
	out := FlattenTLS(nil, tls, func(int, []uint32) { called = true })
	if len(out) != 0 {
		t.Fatalf("flatten of untouched TLS = %v, want empty", out)
	}
	if called {
		t.Fatal("recycle called for an untouched TLS")
	}
}

func TestFlattenTLSReusesDst(t *testing.T) {
	p := New(2)
	defer p.Close()
	tls := NewTLS[[]uint32](p, nil)
	*tls.Get(0) = append(*tls.Get(0), 1, 2, 3)
	dst := make([]uint32, 0, 64)
	out := FlattenTLS(dst, tls, nil)
	if !reflect.DeepEqual(out, []uint32{1, 2, 3}) {
		t.Fatalf("flatten = %v", out)
	}
	if &out[:1][0] != &dst[:1][0] {
		t.Fatal("flatten did not reuse dst's backing array")
	}
	// Without a recycle callback the slot keeps its contents.
	if got := *tls.Get(0); !reflect.DeepEqual(got, []uint32{1, 2, 3}) {
		t.Fatalf("slot 0 = %v, want [1 2 3]", got)
	}
}
