package parallel

import (
	"math/bits"
	"sync/atomic"
)

// MinU32 atomically sets *addr = min(*addr, v). It reports whether the stored
// value changed. This is the write-min primitive behind label-propagation
// connected components.
func MinU32(addr *uint32, v uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if old <= v {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, v) {
			return true
		}
	}
}

// MinU64 atomically sets *addr = min(*addr, v) and reports whether it changed.
func MinU64(addr *uint64, v uint64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if old <= v {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, v) {
			return true
		}
	}
}

// CASU32 performs a single compare-and-swap on a uint32.
func CASU32(addr *uint32, old, new uint32) bool {
	return atomic.CompareAndSwapUint32(addr, old, new)
}

// LoadU32 atomically loads a uint32.
func LoadU32(addr *uint32) uint32 { return atomic.LoadUint32(addr) }

// StoreU32 atomically stores a uint32.
func StoreU32(addr *uint32, v uint32) { atomic.StoreUint32(addr, v) }

// AddI64 atomically adds delta to *addr and returns the new value.
func AddI64(addr *int64, delta int64) int64 { return atomic.AddInt64(addr, delta) }

// Bitset is a fixed-size bitmap with atomic set/test operations, used as the
// visited set and frontier bitmap in the BFS kernels.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset creates a bitset of n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the number of bits.
func (b *Bitset) Len() int { return b.n }

// Get reports bit i using an atomic load.
func (b *Bitset) Get(i int) bool {
	return atomic.LoadUint64(&b.words[i>>6])&(1<<(uint(i)&63)) != 0
}

// Set sets bit i atomically.
func (b *Bitset) Set(i int) {
	mask := uint64(1) << (uint(i) & 63)
	w := &b.words[i>>6]
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// TestAndSet sets bit i and reports whether this call changed it (i.e. the
// bit was previously clear). Exactly one concurrent caller wins.
func (b *Bitset) TestAndSet(i int) bool {
	mask := uint64(1) << (uint(i) & 63)
	w := &b.words[i>>6]
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return true
		}
	}
}

// Clear resets all bits to zero. Not safe against concurrent mutation.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits. It is not linearizable against
// concurrent writers; call it between parallel phases.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}
