// Package parallel provides the shared-memory parallel runtime that the rest
// of NWHy-Go is built on. It plays the role oneAPI Threading Building Blocks
// (oneTBB) plays in the C++ NWHy framework: a work-stealing scheduler plus a
// family of splittable range adaptors (blocked, cyclic, and cyclic-neighbor
// ranges) that control how loop iterations are distributed over workers.
//
// The scheduler is a classic work-stealing design: every worker owns a deque
// of tasks; a worker pushes locally spawned tasks onto its own deque and pops
// them LIFO (for locality), while idle workers steal FIFO from random victims
// (for load balance). Parallel loops split their range recursively, spawning
// one half and descending into the other, so skewed workloads rebalance
// dynamically — the property the NWHy paper relies on for hypergraphs with
// skewed degree distributions.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// A task is one unit of schedulable work. The worker executing it passes its
// own ID so the task can use per-worker (thread-local) state.
type task struct {
	fn func(worker int)
	wg *sync.WaitGroup
}

// taskRing is a growable circular buffer of tasks supporting O(1) push/pop
// at the back and O(1) pop at the front. Both the worker deques and the
// injector queue dequeue from the front (steal / FIFO submit order), which
// with a plain slice cost an O(n) copy per dequeue.
type taskRing struct {
	buf  []task
	head int // index of the front element
	n    int // number of live elements
}

func (r *taskRing) len() int { return r.n }

// pushBack appends t, doubling the buffer when full.
func (r *taskRing) pushBack(t task) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = t
	r.n++
}

// popBack removes the most recently pushed task (LIFO end).
func (r *taskRing) popBack() (task, bool) {
	if r.n == 0 {
		return task{}, false
	}
	i := (r.head + r.n - 1) % len(r.buf)
	t := r.buf[i]
	r.buf[i] = task{}
	r.n--
	return t, true
}

// popFront removes the oldest task (FIFO end).
func (r *taskRing) popFront() (task, bool) {
	if r.n == 0 {
		return task{}, false
	}
	t := r.buf[r.head]
	r.buf[r.head] = task{}
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return t, true
}

func (r *taskRing) grow() {
	nb := make([]task, max(2*len(r.buf), 8))
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
}

// worker holds one scheduler participant's local deque.
type worker struct {
	mu    sync.Mutex
	deque taskRing
	rng   *rand.Rand
}

// push adds t to the bottom (LIFO end) of the deque.
func (w *worker) push(t task) {
	w.mu.Lock()
	w.deque.pushBack(t)
	w.mu.Unlock()
}

// pop removes a task from the bottom (LIFO end). Used by the owner.
func (w *worker) pop() (task, bool) {
	w.mu.Lock()
	t, ok := w.deque.popBack()
	w.mu.Unlock()
	return t, ok
}

// steal removes a task from the top (FIFO end). Used by thieves.
func (w *worker) steal() (task, bool) {
	w.mu.Lock()
	t, ok := w.deque.popFront()
	w.mu.Unlock()
	return t, ok
}

// Pool is a fixed-size work-stealing scheduler. The zero value is not usable;
// construct one with New. A Pool must be Closed when no longer needed unless
// it is the shared default pool.
type Pool struct {
	workers []*worker

	// injector receives tasks submitted from outside the pool's workers.
	injectMu sync.Mutex
	inject   taskRing

	// pending counts tasks that are queued somewhere but not yet taken.
	// Workers park only when pending is zero.
	pending atomic.Int64

	parkMu  sync.Mutex
	parked  *sync.Cond
	nparked atomic.Int32

	closed atomic.Bool
	done   sync.WaitGroup
}

// New creates a pool with n workers. n < 1 is treated as runtime.GOMAXPROCS(0).
func New(n int) *Pool {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: make([]*worker, n)}
	p.parked = sync.NewCond(&p.parkMu)
	for i := range p.workers {
		p.workers[i] = &worker{rng: rand.New(rand.NewSource(int64(i)*2654435761 + 1))}
	}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go p.run(i)
	}
	return p
}

// NumWorkers reports the number of workers in the pool.
func (p *Pool) NumWorkers() int { return len(p.workers) }

// Close shuts the pool down. It must not be called while work is in flight.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.parkMu.Lock()
	p.parked.Broadcast()
	p.parkMu.Unlock()
	p.done.Wait()
}

// submit enqueues a task from outside the pool.
func (p *Pool) submit(t task) {
	p.injectMu.Lock()
	p.inject.pushBack(t)
	p.injectMu.Unlock()
	p.pending.Add(1)
	p.wake()
}

// spawn enqueues a task onto worker w's own deque (called from inside tasks).
func (p *Pool) spawn(w int, t task) {
	p.workers[w].push(t)
	p.pending.Add(1)
	p.wake()
}

// wake unparks a worker if any are parked. The pending increment must happen
// before wake is called: a parker increments nparked before re-checking
// pending (both atomically), so either the parker sees the new pending count
// or we see its nparked increment — never neither.
func (p *Pool) wake() {
	if p.nparked.Load() > 0 {
		p.parkMu.Lock()
		p.parked.Broadcast()
		p.parkMu.Unlock()
	}
}

// takeInjected removes one task from the injector queue.
func (p *Pool) takeInjected() (task, bool) {
	p.injectMu.Lock()
	t, ok := p.inject.popFront()
	p.injectMu.Unlock()
	return t, ok
}

// find locates a runnable task for worker id, or returns false.
func (p *Pool) find(id int) (task, bool) {
	if t, ok := p.workers[id].pop(); ok {
		return t, true
	}
	if t, ok := p.takeInjected(); ok {
		return t, true
	}
	// Steal: try every other worker once, starting at a random victim.
	n := len(p.workers)
	if n > 1 {
		start := p.workers[id].rng.Intn(n)
		for k := 0; k < n; k++ {
			v := (start + k) % n
			if v == id {
				continue
			}
			if t, ok := p.workers[v].steal(); ok {
				return t, true
			}
		}
	}
	return task{}, false
}

// run is the worker main loop.
func (p *Pool) run(id int) {
	defer p.done.Done()
	for {
		if t, ok := p.find(id); ok {
			p.pending.Add(-1)
			t.fn(id)
			if t.wg != nil {
				t.wg.Done()
			}
			continue
		}
		p.parkMu.Lock()
		p.nparked.Add(1)
		for p.pending.Load() == 0 && !p.closed.Load() {
			p.parked.Wait()
		}
		p.nparked.Add(-1)
		closed := p.closed.Load()
		p.parkMu.Unlock()
		if closed && p.pending.Load() == 0 {
			return
		}
	}
}

// panicBox captures the first panic raised by any task of one structured
// parallel call (For/ForCyclic/Invoke) so the coordinating goroutine can
// rethrow it after wg.Wait. Without it a body panic would unwind a pool
// worker's stack and tear down the whole process far from the call that
// caused it — and leave the call's WaitGroup waiting forever. Later panics
// of the same call are swallowed; sibling chunks are skipped once the box
// has tripped.
type panicBox struct {
	tripped atomic.Bool
	mu      sync.Mutex
	val     any
}

// guard runs fn, capturing a panic into the box instead of letting it
// unwind the worker. The capture happens-before the task's wg.Done, so the
// coordinator's read after wg.Wait is ordered.
func (b *panicBox) guard(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			b.mu.Lock()
			if !b.tripped.Load() {
				b.val = r
				b.tripped.Store(true)
			}
			b.mu.Unlock()
		}
	}()
	fn()
}

// rethrow re-raises the captured panic on the calling goroutine, if any.
func (b *panicBox) rethrow() {
	if b.tripped.Load() {
		panic(b.val)
	}
}

// Go schedules fn on the pool and returns immediately. done.Done is called
// when fn completes. Unlike the structured drivers (For/ForCyclic/Invoke),
// Go does not capture panics: there is no coordinating call to rethrow on,
// so a panicking fn crashes the process just like a panicking goroutine.
func (p *Pool) Go(fn func(worker int), wg *sync.WaitGroup) {
	p.submit(task{fn: fn, wg: wg})
}

// Invoke runs all fns in parallel on the pool and waits for completion. If
// any fn panics, the first panic is rethrown on the calling goroutine once
// all fns have finished.
func (p *Pool) Invoke(fns ...func()) {
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		fn := fn
		p.submit(task{fn: func(int) { box.guard(fn) }, wg: &wg})
	}
	wg.Wait()
	box.rethrow()
}

var (
	defaultMu   sync.Mutex
	defaultPool *Pool
)

// Default returns the shared process-wide pool, creating it on first use with
// GOMAXPROCS workers.
func Default() *Pool {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	if defaultPool == nil {
		defaultPool = New(0)
	}
	return defaultPool
}

// SetNumWorkers replaces the default pool with one of n workers. It is how
// strong-scaling experiments vary the thread count, mirroring setting the
// oneTBB global_control concurrency limit. It must not be called while
// parallel work is running.
func SetNumWorkers(n int) {
	defaultMu.Lock()
	old := defaultPool
	defaultPool = New(n)
	defaultMu.Unlock()
	if old != nil {
		old.Close()
	}
}

// NumWorkers reports the default pool's worker count.
func NumWorkers() int { return Default().NumWorkers() }
