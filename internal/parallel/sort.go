package parallel

import "sort"

// Sort sorts s with a parallel merge sort: the slice is cut into one chunk
// per worker, chunks sort concurrently with the standard library sort, and
// sorted runs merge pairwise in parallel rounds. Not stable. Falls back to
// sort.Slice for small inputs where parallelism cannot pay for itself.
func Sort[T any](s []T, less func(a, b T) bool) {
	sortOn(Default(), s, less)
}

// SortOn is Sort scheduled on engine e's pool instead of the shared default
// pool, so a construction bound to a private engine stays within its thread
// budget through its final canonicalization pass.
func SortOn[T any](e *Engine, s []T, less func(a, b T) bool) {
	sortOn(e.pool(), s, less)
}

func sortOn[T any](p *Pool, s []T, less func(a, b T) bool) {
	const serialCutoff = 1 << 13
	if len(s) < serialCutoff {
		sort.Slice(s, func(a, b int) bool { return less(s[a], s[b]) })
		return
	}
	nchunks := p.NumWorkers()
	if nchunks < 2 {
		sort.Slice(s, func(a, b int) bool { return less(s[a], s[b]) })
		return
	}
	// Chunk boundaries.
	bounds := make([]int, nchunks+1)
	for i := 0; i <= nchunks; i++ {
		bounds[i] = i * len(s) / nchunks
	}
	// Sort each chunk concurrently.
	p.For(BlockedGrain(0, nchunks, 1), func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			chunk := s[bounds[c]:bounds[c+1]]
			sort.Slice(chunk, func(a, b int) bool { return less(chunk[a], chunk[b]) })
		}
	})
	// Pairwise merge rounds, ping-ponging between s and buf.
	buf := make([]T, len(s))
	src, dst := s, buf
	for len(bounds) > 2 {
		newBounds := make([]int, 0, len(bounds)/2+1)
		newBounds = append(newBounds, 0)
		type job struct{ lo, mid, hi int }
		var jobs []job
		for i := 0; i+2 < len(bounds); i += 2 {
			jobs = append(jobs, job{bounds[i], bounds[i+1], bounds[i+2]})
			newBounds = append(newBounds, bounds[i+2])
		}
		if len(bounds)%2 == 0 { // odd number of runs: last one copies through
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			jobs = append(jobs, job{lo, hi, hi})
			newBounds = append(newBounds, hi)
		}
		p.For(BlockedGrain(0, len(jobs), 1), func(_, jlo, jhi int) {
			for k := jlo; k < jhi; k++ {
				j := jobs[k]
				mergeInto(dst[j.lo:j.hi], src[j.lo:j.mid], src[j.mid:j.hi], less)
			}
		})
		src, dst = dst, src
		bounds = newBounds
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// mergeInto merges sorted runs a and b into out (len(out) == len(a)+len(b)).
func mergeInto[T any](out, a, b []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out[k] = b[j]
			j++
		} else {
			out[k] = a[i]
			i++
		}
		k++
	}
	copy(out[k:], a[i:])
	copy(out[k+len(a)-i:], b[j:])
}

// SortU32 sorts a uint32 slice in parallel.
func SortU32(s []uint32) {
	Sort(s, func(a, b uint32) bool { return a < b })
}
