package countmap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasicCounting(t *testing.T) {
	d := NewDense(64)
	d.Inc(10, 1)
	d.Inc(10, 1)
	d.Inc(20, 1)
	if d.Get(10) != 2 || d.Get(20) != 1 || d.Get(30) != 0 {
		t.Fatalf("counts: %d %d %d", d.Get(10), d.Get(20), d.Get(30))
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDenseClearIsCheapAndComplete(t *testing.T) {
	d := NewDense(128)
	for i := uint32(0); i < 100; i++ {
		d.Inc(i, 1)
	}
	d.Clear()
	if d.Len() != 0 {
		t.Fatalf("Len after Clear = %d", d.Len())
	}
	for i := uint32(0); i < 100; i++ {
		if d.Get(i) != 0 {
			t.Fatalf("key %d survived Clear", i)
		}
	}
	d.Inc(5, 1)
	if d.Get(5) != 1 || d.Len() != 1 {
		t.Fatal("counter broken after Clear")
	}
}

func TestDenseResetGrows(t *testing.T) {
	d := NewDense(4)
	d.Inc(3, 7)
	d.Reset(1000)
	if d.Get(3) != 0 || d.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
	d.Inc(999, 2)
	if d.Get(999) != 2 {
		t.Fatalf("Get(999) = %d after grow", d.Get(999))
	}
	// Shrinking reuses the existing arrays.
	d.Reset(10)
	if d.Get(999) != 0 {
		t.Fatal("stale count visible after Reset")
	}
	d.Inc(9, 1)
	if d.Get(9) != 1 {
		t.Fatal("counter broken after shrink Reset")
	}
}

func TestMapResetClears(t *testing.T) {
	m := New(4)
	m.Inc(9, 3)
	m.Reset(1 << 20) // key space irrelevant for the hash map
	if m.Get(9) != 0 || m.Len() != 0 {
		t.Fatal("Map.Reset did not clear")
	}
}

func TestDenseEpochWraparound(t *testing.T) {
	d := NewDense(8)
	d.Inc(1, 1)
	d.epoch = ^uint32(0)
	d.Clear()
	if d.Get(1) != 0 {
		t.Fatal("stale entry visible after wraparound reset")
	}
	d.Inc(2, 1)
	if d.Get(2) != 1 {
		t.Fatal("counter broken after wraparound")
	}
}

// TestCountersAgreeProperty drives Map and Dense with the same operation
// stream through the Counter interface and demands identical observable
// state — the parity contract the kernel's pluggable counter axis relies on.
func TestCountersAgreeProperty(t *testing.T) {
	const space = 300
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var counters []Counter = []Counter{New(4), NewDense(0)}
		for _, c := range counters {
			c.Reset(space)
		}
		oracle := map[uint32]int32{}
		for op := 0; op < 3000; op++ {
			switch rng.Intn(12) {
			case 0:
				for _, c := range counters {
					c.Clear()
				}
				oracle = map[uint32]int32{}
			case 1:
				for _, c := range counters {
					c.Reset(space)
				}
				oracle = map[uint32]int32{}
			default:
				k := uint32(rng.Intn(space))
				for _, c := range counters {
					c.Inc(k, 1)
				}
				oracle[k]++
			}
		}
		for _, c := range counters {
			if c.Len() != len(oracle) {
				return false
			}
			for k, v := range oracle {
				if c.Get(k) != v {
					return false
				}
			}
			n := 0
			c.Range(func(k uint32, v int32) {
				if oracle[k] != v {
					n = -1 << 30
				}
				n++
			})
			if n != len(oracle) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// benchCounters compares hashmap vs dense tallying across overlap densities:
// each round simulates one hyperedge's counting pass touching `keys` distinct
// neighbors out of a `space`-sized ID space (the fraction is the overlap
// density), with `hits` increments per key, then a Clear — the exact access
// pattern of the s-overlap kernel's two-level walk.
func benchCounters(b *testing.B, space, keys, hits int) {
	ks := make([]uint32, keys*hits)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(space)
	for i := 0; i < keys; i++ {
		for h := 0; h < hits; h++ {
			ks[i*hits+h] = uint32(perm[i])
		}
	}
	rng.Shuffle(len(ks), func(i, j int) { ks[i], ks[j] = ks[j], ks[i] })
	run := func(b *testing.B, c Counter) {
		c.Reset(space)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, k := range ks {
				c.Inc(k, 1)
			}
			n := 0
			c.Range(func(uint32, int32) { n++ })
			if n != keys {
				b.Fatalf("tallied %d keys, want %d", n, keys)
			}
			c.Clear()
		}
	}
	b.Run("hashmap", func(b *testing.B) { run(b, New(64)) })
	b.Run("dense", func(b *testing.B) { run(b, NewDense(0)) })
}

func BenchmarkCounterDensity(b *testing.B) {
	const space = 1 << 16
	for _, density := range []float64{0.001, 0.01, 0.1, 0.5} {
		keys := int(float64(space) * density)
		b.Run(fmt.Sprintf("density=%g", density), func(b *testing.B) {
			benchCounters(b, space, keys, 3)
		})
	}
}
