// Package countmap provides a specialized open-addressing hash map from
// uint32 keys to int32 counts, built for the inner loop of the
// hashmap-counting s-line-graph algorithms: one map per worker, cleared
// once per hyperedge. Clearing is O(1) via epoch stamping — no bucket
// zeroing — which is what makes the per-hyperedge reuse pattern cheap.
package countmap

// Map counts occurrences of uint32 keys. Not safe for concurrent use; the
// construction algorithms keep one per worker.
type Map struct {
	keys    []uint32
	vals    []int32
	stamps  []uint32
	epoch   uint32
	touched []uint32 // occupied slot indices for this epoch, for Range
	mask    uint32
	n       int
}

// New creates a map sized for about capHint distinct keys.
func New(capHint int) *Map {
	capacity := 16
	for capacity < capHint*2 {
		capacity *= 2
	}
	m := &Map{
		keys:   make([]uint32, capacity),
		vals:   make([]int32, capacity),
		stamps: make([]uint32, capacity),
		epoch:  1,
		mask:   uint32(capacity - 1),
	}
	return m
}

// hash mixes the key (Fibonacci hashing).
func hash(k uint32) uint32 { return k * 2654435761 }

// Inc adds delta to key's count (creating it at delta).
func (m *Map) Inc(key uint32, delta int32) {
	if m.n*3 >= len(m.keys)*2 {
		m.grow()
	}
	i := hash(key) & m.mask
	for {
		if m.stamps[i] != m.epoch {
			m.stamps[i] = m.epoch
			m.keys[i] = key
			m.vals[i] = delta
			m.touched = append(m.touched, i)
			m.n++
			return
		}
		if m.keys[i] == key {
			m.vals[i] += delta
			return
		}
		i = (i + 1) & m.mask
	}
}

// Get returns key's count (0 if absent).
func (m *Map) Get(key uint32) int32 {
	i := hash(key) & m.mask
	for {
		if m.stamps[i] != m.epoch {
			return 0
		}
		if m.keys[i] == key {
			return m.vals[i]
		}
		i = (i + 1) & m.mask
	}
}

// Len reports the number of distinct keys this epoch.
func (m *Map) Len() int { return m.n }

// Clear resets the map in O(1) by advancing the epoch.
func (m *Map) Clear() {
	m.epoch++
	m.touched = m.touched[:0]
	m.n = 0
	if m.epoch == 0 { // stamp wraparound: hard reset
		for i := range m.stamps {
			m.stamps[i] = 0
		}
		m.epoch = 1
	}
}

// Range calls fn for every (key, count) of the current epoch, in insertion
// order of first occurrence.
func (m *Map) Range(fn func(key uint32, count int32)) {
	for _, i := range m.touched {
		fn(m.keys[i], m.vals[i])
	}
}

// grow doubles capacity and rehashes the current epoch's entries.
func (m *Map) grow() {
	oldKeys, oldVals, oldTouched := m.keys, m.vals, m.touched
	capacity := len(m.keys) * 2
	m.keys = make([]uint32, capacity)
	m.vals = make([]int32, capacity)
	m.stamps = make([]uint32, capacity)
	m.mask = uint32(capacity - 1)
	m.epoch = 1
	m.touched = make([]uint32, 0, len(oldTouched))
	m.n = 0
	for _, i := range oldTouched {
		m.Inc(oldKeys[i], oldVals[i])
	}
}
