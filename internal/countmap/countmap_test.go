package countmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicCounting(t *testing.T) {
	m := New(4)
	m.Inc(10, 1)
	m.Inc(10, 1)
	m.Inc(20, 1)
	if m.Get(10) != 2 || m.Get(20) != 1 || m.Get(30) != 0 {
		t.Fatalf("counts: %d %d %d", m.Get(10), m.Get(20), m.Get(30))
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestIncDelta(t *testing.T) {
	m := New(4)
	m.Inc(7, 5)
	m.Inc(7, -2)
	if m.Get(7) != 3 {
		t.Fatalf("Get = %d", m.Get(7))
	}
}

func TestClearIsCheapAndComplete(t *testing.T) {
	m := New(4)
	for i := uint32(0); i < 100; i++ {
		m.Inc(i, 1)
	}
	m.Clear()
	if m.Len() != 0 {
		t.Fatalf("Len after Clear = %d", m.Len())
	}
	for i := uint32(0); i < 100; i++ {
		if m.Get(i) != 0 {
			t.Fatalf("key %d survived Clear", i)
		}
	}
	// Reuse after Clear.
	m.Inc(5, 1)
	if m.Get(5) != 1 || m.Len() != 1 {
		t.Fatal("map broken after Clear")
	}
}

func TestGrowPreservesCounts(t *testing.T) {
	m := New(2) // tiny: forces several grows
	for i := uint32(0); i < 1000; i++ {
		m.Inc(i%37, 1)
	}
	for i := uint32(0); i < 37; i++ {
		want := int32(1000 / 37)
		if i < 1000%37 {
			want++
		}
		if m.Get(i) != want {
			t.Fatalf("Get(%d) = %d, want %d", i, m.Get(i), want)
		}
	}
}

func TestRangeVisitsAllOnce(t *testing.T) {
	m := New(8)
	for i := uint32(0); i < 50; i++ {
		m.Inc(i*3, int32(i))
	}
	seen := map[uint32]int32{}
	m.Range(func(k uint32, c int32) {
		if _, dup := seen[k]; dup {
			t.Fatalf("key %d visited twice", k)
		}
		seen[k] = c
	})
	if len(seen) != 50 {
		t.Fatalf("Range visited %d keys", len(seen))
	}
	for i := uint32(0); i < 50; i++ {
		if seen[i*3] != int32(i) {
			t.Fatalf("key %d count %d", i*3, seen[i*3])
		}
	}
}

func TestMatchesBuiltinMapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New(4)
		oracle := map[uint32]int32{}
		for op := 0; op < 2000; op++ {
			switch rng.Intn(10) {
			case 0:
				m.Clear()
				oracle = map[uint32]int32{}
			default:
				k := uint32(rng.Intn(200))
				m.Inc(k, 1)
				oracle[k]++
			}
		}
		if m.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			if m.Get(k) != v {
				return false
			}
		}
		total := 0
		m.Range(func(k uint32, c int32) {
			if oracle[k] != c {
				total = -1 << 30
			}
			total++
		})
		return total == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochWraparound(t *testing.T) {
	m := New(4)
	m.Inc(1, 1)
	m.epoch = ^uint32(0) // force wraparound on next Clear
	m.Clear()
	if m.Get(1) != 0 {
		t.Fatal("stale entry visible after wraparound reset")
	}
	m.Inc(2, 1)
	if m.Get(2) != 1 {
		t.Fatal("map broken after wraparound")
	}
}

func TestAdversarialCollisions(t *testing.T) {
	// Keys that collide under the Fibonacci hash low bits.
	m := New(4)
	keys := []uint32{0, 16, 32, 48, 64, 80}
	for _, k := range keys {
		m.Inc(k, 2)
	}
	for _, k := range keys {
		if m.Get(k) != 2 {
			t.Fatalf("Get(%d) = %d", k, m.Get(k))
		}
	}
}

func BenchmarkIncClear(b *testing.B) {
	m := New(256)
	for i := 0; i < b.N; i++ {
		for k := uint32(0); k < 200; k++ {
			m.Inc(k*7, 1)
		}
		m.Clear()
	}
}

func BenchmarkVsBuiltinMap(b *testing.B) {
	b.Run("countmap", func(b *testing.B) {
		m := New(256)
		for i := 0; i < b.N; i++ {
			for k := uint32(0); k < 200; k++ {
				m.Inc(k*7, 1)
			}
			m.Clear()
		}
	})
	b.Run("builtin", func(b *testing.B) {
		m := map[uint32]int32{}
		for i := 0; i < b.N; i++ {
			for k := uint32(0); k < 200; k++ {
				m[k*7]++
			}
			clear(m)
		}
	})
}
