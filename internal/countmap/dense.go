package countmap

// Counter is the tallying interface shared by the hashmap (Map) and dense
// (Dense) counters, so the s-overlap kernel can swap counting strategies
// without touching its walk: Inc during the two-level incidence walk, Range
// to emit, Clear between hyperedges, Reset when the key space changes.
type Counter interface {
	// Inc adds delta to key's count (creating it at delta).
	Inc(key uint32, delta int32)
	// Get returns key's count (0 if absent).
	Get(key uint32) int32
	// Len reports the number of distinct keys since the last Clear.
	Len() int
	// Clear forgets all counts in O(1) (or O(touched)).
	Clear()
	// Reset prepares the counter for keys in [0, n), clearing it and growing
	// storage if needed. Must be called before the first Inc of a run whose
	// key space may exceed earlier runs'.
	Reset(n int)
	// Range calls fn for every (key, count) tallied since the last Clear, in
	// insertion order of first occurrence.
	Range(fn func(key uint32, count int32))
}

var (
	_ Counter = (*Map)(nil)
	_ Counter = (*Dense)(nil)
)

// Reset implements Counter for Map: the hash table grows on demand, so only
// a Clear is needed regardless of the key space.
func (m *Map) Reset(int) { m.Clear() }

// Dense counts occurrences of uint32 keys in a flat array indexed by key —
// the stamp/counter-array alternative to the hash map. Inc and Get are a
// single indexed access with no probing, which wins when a hyperedge
// overlaps a large fraction of the ID space (dense overlap); the cost is
// O(key space) memory per worker. Clearing is O(1) via the same epoch
// stamping as Map. Not safe for concurrent use.
type Dense struct {
	vals    []int32
	stamps  []uint32
	epoch   uint32
	touched []uint32 // keys tallied this epoch, for Range
	n       int
}

// NewDense creates a dense counter for keys in [0, n).
func NewDense(n int) *Dense {
	return &Dense{
		vals:   make([]int32, n),
		stamps: make([]uint32, n),
		epoch:  1,
	}
}

// Reset clears the counter and grows its arrays to cover keys in [0, n).
func (d *Dense) Reset(n int) {
	if n > len(d.vals) {
		d.vals = make([]int32, n)
		d.stamps = make([]uint32, n)
		d.epoch = 0 // Clear below bumps to 1 with fresh zero stamps
	}
	d.Clear()
}

// Inc adds delta to key's count (creating it at delta). key must be within
// the range given to NewDense/Reset.
func (d *Dense) Inc(key uint32, delta int32) {
	if d.stamps[key] != d.epoch {
		d.stamps[key] = d.epoch
		d.vals[key] = delta
		d.touched = append(d.touched, key)
		d.n++
		return
	}
	d.vals[key] += delta
}

// Get returns key's count (0 if absent or out of range).
func (d *Dense) Get(key uint32) int32 {
	if int(key) >= len(d.vals) || d.stamps[key] != d.epoch {
		return 0
	}
	return d.vals[key]
}

// Len reports the number of distinct keys this epoch.
func (d *Dense) Len() int { return d.n }

// Clear resets the counter in O(1) by advancing the epoch.
func (d *Dense) Clear() {
	d.epoch++
	d.touched = d.touched[:0]
	d.n = 0
	if d.epoch == 0 { // stamp wraparound: hard reset
		for i := range d.stamps {
			d.stamps[i] = 0
		}
		d.epoch = 1
	}
}

// Range calls fn for every (key, count) of the current epoch, in insertion
// order of first occurrence.
func (d *Dense) Range(fn func(key uint32, count int32)) {
	for _, k := range d.touched {
		fn(k, d.vals[k])
	}
}
