package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Admission is the query admission controller: a bounded set of in-flight
// slots plus a bounded wait queue with a deadline. It is the mechanism that
// keeps a burst of expensive queries from oversubscribing the one shared
// engine — queries beyond MaxInFlight wait (bounded, cancellable), and
// arrivals beyond the queue bound are rejected immediately so callers can
// shed load instead of piling up.
type Admission struct {
	slots     chan struct{}
	maxQueue  int64
	queueWait time.Duration

	waiting  atomic.Int64
	inflight atomic.Int64

	admitted  atomic.Int64
	rejected  atomic.Int64
	timedOut  atomic.Int64
	cancelled atomic.Int64
}

// NewAdmission builds a controller admitting maxInFlight concurrent queries
// with at most maxQueue waiters, each waiting at most queueWait.
func NewAdmission(maxInFlight, maxQueue int, queueWait time.Duration) *Admission {
	return &Admission{
		slots:     make(chan struct{}, maxInFlight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
	}
}

// Acquire blocks until an in-flight slot is granted and returns its release
// function (idempotent), or fails with ErrOverloaded (queue full),
// ErrQueueTimeout (wait deadline), or ctx.Err() (caller gave up).
func (a *Admission) Acquire(ctx context.Context) (func(), error) {
	if err := ctx.Err(); err != nil {
		a.cancelled.Add(1)
		return nil, err
	}
	select {
	case a.slots <- struct{}{}:
		return a.grant(), nil
	default:
	}
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer a.waiting.Add(-1)
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.grant(), nil
	case <-ctx.Done():
		a.cancelled.Add(1)
		return nil, ctx.Err()
	case <-timer.C:
		a.timedOut.Add(1)
		return nil, ErrQueueTimeout
	}
}

func (a *Admission) grant() func() {
	a.inflight.Add(1)
	a.admitted.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			a.inflight.Add(-1)
			<-a.slots
		})
	}
}

// InFlight reports currently executing queries.
func (a *Admission) InFlight() int64 { return a.inflight.Load() }

// QueueDepth reports queries waiting for a slot.
func (a *Admission) QueueDepth() int64 { return a.waiting.Load() }

// Counters reports the lifetime admitted / rejected / timed-out / cancelled
// totals.
func (a *Admission) Counters() (admitted, rejected, timedOut, cancelled int64) {
	return a.admitted.Load(), a.rejected.Load(), a.timedOut.Load(), a.cancelled.Load()
}
