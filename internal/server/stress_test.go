package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"nwhy"
	"nwhy/internal/gen"
	"nwhy/internal/sparse"
)

// stressGraph builds the stress-test hypergraph deterministically so the
// serial baseline and the served copies are the same input.
func stressGraph() *nwhy.NWHypergraph {
	return nwhy.Wrap(gen.BipartitePowerLaw(150, 120, 1200, 1.6, 7))
}

// baseline is the serial ground truth for one s value, computed on a
// single-worker engine before the storm starts.
type baseline struct {
	pairs       []sparse.Edge
	labels      []uint32
	closeness   []float64
	harmonic    []float64
	ecc         []float64
	betweenness []float64
}

func equalPairs(a, b []sparse.Edge) error {
	if len(a) != len(b) {
		return fmt.Errorf("pair count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("pair[%d] = %v != %v", i, a[i], b[i])
		}
	}
	return nil
}

func equalU32(name string, a, b []uint32) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("%s[%d] = %d != %d", name, i, a[i], b[i])
		}
	}
	return nil
}

// equalF64 demands bit-identical floats — the deterministic centralities
// write each slot exactly once, so any divergence is a real race.
func equalF64(name string, a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return fmt.Errorf("%s[%d] = %v != %v", name, i, a[i], b[i])
		}
	}
	return nil
}

// closeF64 allows relative float drift — betweenness merges per-worker
// partials in steal order, so it is correct but not bit-stable.
func closeF64(name string, a, b []float64, tol float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s length %d != %d", name, len(a), len(b))
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if diff/scale > tol {
			return fmt.Errorf("%s[%d] = %v vs %v (rel diff %g)", name, i, a[i], b[i], diff/scale)
		}
	}
	return nil
}

// TestConcurrentReadersMatchSerial hammers one registry dataset from many
// goroutines with the full mixed query surface — s-line construction (with
// a cache small enough to force constant eviction and rebuild), direct and
// line-graph s-CC, deterministic and float-merged centralities, and raw
// Pairs() reads on a shared cached handle — and asserts every deterministic
// result is bit-identical to a serial single-worker run. Run it under
// -race: the assertions catch value races, the detector catches the rest.
func TestConcurrentReadersMatchSerial(t *testing.T) {
	sValues := []int{1, 2, 3}

	// Serial ground truth on one worker.
	serialEng := nwhy.NewEngine(1)
	defer serialEng.Close()
	serial := stressGraph().WithEngine(serialEng)
	base := map[int]*baseline{}
	for _, s := range sValues {
		lg := serial.SLineGraph(s, true)
		base[s] = &baseline{
			pairs:       lg.Pairs(),
			labels:      serial.SConnectedComponentsDirect(s),
			closeness:   lg.SClosenessCentrality(),
			harmonic:    lg.SHarmonicClosenessCentrality(),
			ecc:         lg.SEccentricity(),
			betweenness: lg.SBetweennessCentrality(false),
		}
	}

	// The served copy: parallel engine, deliberately tiny cache so the
	// three s values evict each other and constructions keep re-running
	// concurrently with reads of the surviving entries.
	eng := nwhy.NewEngine(4)
	defer eng.Close()
	reg := NewRegistry()
	reg.Add("stress", stressGraph().WithEngine(eng), "")
	srv, err := New(Config{
		Engine: eng, CacheEntries: 2,
		MaxInFlight: 64, MaxQueue: 256, QueueWait: time.Minute,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// One shared handle whose lazy Pairs() extraction the goroutines race.
	sharedLg, _, _, err := srv.slineGraph(ctx, SLineRequest{Dataset: "stress", S: sValues[0], Edges: true})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const iters = 10
	errCh := make(chan error, goroutines*iters)
	var wg sync.WaitGroup
	for id := 0; id < goroutines; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				s := sValues[(id+it)%len(sValues)]
				b := base[s]
				var err error
				switch (id + it) % 6 {
				case 0:
					lg, _, _, gerr := srv.slineGraph(ctx, SLineRequest{Dataset: "stress", S: s, Edges: true})
					if gerr != nil {
						err = gerr
						break
					}
					err = equalPairs(b.pairs, lg.Pairs())
				case 1:
					res, gerr := srv.SComponents(ctx, SCCRequest{Dataset: "stress", S: s, Direct: true, WithLabels: true})
					if gerr != nil {
						err = gerr
						break
					}
					err = equalU32("direct labels", b.labels, res.Labels)
				case 2:
					res, gerr := srv.SComponents(ctx, SCCRequest{Dataset: "stress", S: s, WithLabels: true})
					if gerr != nil {
						err = gerr
						break
					}
					err = equalU32("cached labels", b.labels, res.Labels)
				case 3:
					res, gerr := srv.Centrality(ctx, CentralityRequest{Dataset: "stress", S: s, Kind: CentralityHarmonic})
					if gerr != nil {
						err = gerr
						break
					}
					if err = equalF64("harmonic", b.harmonic, res.Scores); err == nil {
						var ecc CentralityResult
						if ecc, err = srv.Centrality(ctx, CentralityRequest{Dataset: "stress", S: s, Kind: CentralityEccentricity}); err == nil {
							err = equalF64("eccentricity", b.ecc, ecc.Scores)
						}
					}
				case 4:
					res, gerr := srv.Centrality(ctx, CentralityRequest{Dataset: "stress", S: s, Kind: CentralityCloseness})
					if gerr != nil {
						err = gerr
						break
					}
					err = equalF64("closeness", b.closeness, res.Scores)
				default:
					res, gerr := srv.Centrality(ctx, CentralityRequest{Dataset: "stress", S: s, Kind: CentralityBetweenness})
					if gerr != nil {
						err = gerr
						break
					}
					err = closeF64("betweenness", b.betweenness, res.Scores, 1e-9)
				}
				if err == nil {
					// Every iteration also races the shared handle's lazy
					// pair extraction.
					err = equalPairs(base[sValues[0]].pairs, sharedLg.Pairs())
				}
				if err != nil {
					errCh <- fmt.Errorf("goroutine %d iter %d (s=%d): %w", id, it, s, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	hits, misses, _ := srv.Cache().Stats()
	if misses < int64(len(sValues)) {
		t.Errorf("cache misses = %d, want >= %d (evictions should force rebuilds)", misses, len(sValues))
	}
	t.Logf("cache after storm: %d hits / %d misses", hits, misses)
}
