// Package server is NWHy-Go's serving core: the concurrency-safe layer that
// turns the batch facade into a long-lived multi-tenant query service. It
// owns three pieces of shared state the batch CLIs never needed:
//
//   - a Registry of loaded hypergraphs, warm-started from .nwhyb snapshots
//     and bound to one shared serving engine (LoadOptions.Engine);
//   - an Admission controller bounding in-flight queries and the wait
//     queue, with a wait deadline and per-request context cancellation
//     reaching every kernel;
//   - an SLineCache memoizing constructed s-line graphs keyed on
//     (dataset, s, edges, weighted, strategy), with single-flight dedup of
//     concurrent identical constructions.
//
// The Server type glues them together behind request-shaped methods (one
// per query kind, each taking a context.Context first) and exposes the same
// surface over stdlib HTTP via Handler. cmd/nwhyd is the thin daemon around
// it; cmd/nwhy-bench's -exp serve drives it in-process.
//
// Datasets are mutable in place: Mutate stages hyperedge insertions and
// removals through the facade's delta overlay (per-dataset single writer,
// readers unaffected until commit), and the CompactEvery policy decides when
// staged batches fold into a fresh frozen snapshot. Cache keys carry the
// dataset's mutation epoch, so commits invalidate stale s-line entries by
// construction, and repeat requests after insert-only commits are served by
// patching the previous epoch's pairs rather than rebuilding.
//
// Everything here is plumbing, not computation: kernels still run on the
// facade handles' engine, and request contexts reach them through the
// facade's *Ctx variants.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"nwhy"
	"nwhy/internal/core"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrBadRequest marks malformed or out-of-range request parameters.
	ErrBadRequest = errors.New("bad request")
	// ErrUnknownDataset is returned for queries against names the registry
	// does not hold.
	ErrUnknownDataset = errors.New("unknown dataset")
	// ErrOverloaded is returned when the admission wait queue is full.
	ErrOverloaded = errors.New("overloaded: admission queue full")
	// ErrQueueTimeout is returned when a queued query's wait deadline
	// expires before an in-flight slot frees up.
	ErrQueueTimeout = errors.New("admission queue wait deadline exceeded")
)

// Config sizes the serving core.
type Config struct {
	// Engine is the shared engine every dataset handle and kernel runs on.
	// Required.
	Engine *nwhy.Engine
	// MaxInFlight bounds concurrently executing queries (< 1: twice the
	// engine's worker count).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an in-flight slot (< 1: four
	// times MaxInFlight). Arrivals beyond it are rejected with
	// ErrOverloaded.
	MaxQueue int
	// QueueWait is the longest a query waits for a slot before
	// ErrQueueTimeout (<= 0: 2s).
	QueueWait time.Duration
	// CacheEntries bounds the s-line result cache (< 1: 64).
	CacheEntries int
	// CompactEvery is the compaction policy: how many staged mutation
	// operations a dataset accumulates before Mutate folds them into a new
	// frozen snapshot (< 1: every Mutate request commits immediately).
	// Staged-but-uncommitted operations are invisible to queries; Compact
	// flushes them on demand.
	CompactEvery int
	// PartitionHints maps dataset names to their preferred shard counts for
	// sharded queries that do not name one (SCCRequest.Parts == 0). Entries
	// may also be set after start with SetPartitionHint.
	PartitionHints map[string]int
}

// Server is the serving core: registry + admission + cache + metrics behind
// a request-shaped query surface. All methods are safe for concurrent use.
type Server struct {
	eng          *nwhy.Engine
	reg          *Registry
	adm          *Admission
	cache        *SLineCache
	met          *metrics
	start        time.Time
	compactEvery int

	// mutMu guards muts; each mutState's own lock serializes that dataset's
	// writers so mutations on different datasets never contend.
	mutMu sync.Mutex
	muts  map[string]*mutState

	// sccMu guards sccs: the server-held incremental s-CC views, one per
	// (dataset, s), invalidated when the registry swaps the handle.
	sccMu sync.Mutex
	sccs  map[sccKey]*sccEntry

	// latestMu guards latest: per request shape, the newest successfully
	// built unweighted s-line handle — the patch source fed to the facade's
	// incremental refresh when the same request arrives at a later epoch.
	// Keyed by the facade handle too, so a registry swap can never patch
	// against a different dataset's pairs.
	latestMu sync.Mutex
	latest   map[latestKey]*nwhy.SLineGraph

	// hintMu guards hints: per-dataset preferred shard counts for sharded
	// queries that do not name one.
	hintMu sync.Mutex
	hints  map[string]int
}

// latestKey identifies one patch-source slot: the epoch-less request shape
// bound to the exact facade handle it was built from.
type latestKey struct {
	base CacheKey
	g    *nwhy.NWHypergraph
}

// latestFor returns the recorded patch source for key's shape on g, or nil.
func (s *Server) latestFor(key CacheKey, g *nwhy.NWHypergraph) *nwhy.SLineGraph {
	s.latestMu.Lock()
	defer s.latestMu.Unlock()
	return s.latest[latestKey{base: key.base(), g: g}]
}

// recordLatest keeps lg as the patch source for key's shape on g unless a
// newer-epoch handle is already recorded (builds racing across a commit
// resolve in favor of the newer snapshot).
func (s *Server) recordLatest(key CacheKey, g *nwhy.NWHypergraph, lg *nwhy.SLineGraph) {
	lk := latestKey{base: key.base(), g: g}
	s.latestMu.Lock()
	if prev, ok := s.latest[lk]; !ok || lg.Epoch() >= prev.Epoch() {
		s.latest[lk] = lg
	}
	s.latestMu.Unlock()
}

// New builds a Server over an existing registry. The registry may keep
// gaining datasets after the server starts (Registry is concurrency-safe).
func New(cfg Config, reg *Registry) (*Server, error) {
	if cfg.Engine == nil {
		return nil, errors.New("server: Config.Engine is required")
	}
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 2 * cfg.Engine.NumWorkers()
	}
	if cfg.MaxQueue < 1 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.QueueWait <= 0 {
		cfg.QueueWait = 2 * time.Second
	}
	if cfg.CompactEvery < 1 {
		cfg.CompactEvery = 1
	}
	if reg == nil {
		reg = NewRegistry()
	}
	hints := map[string]int{}
	for name, k := range cfg.PartitionHints {
		hints[name] = k
	}
	return &Server{
		eng:          cfg.Engine,
		reg:          reg,
		adm:          NewAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		cache:        NewSLineCache(cfg.CacheEntries),
		met:          newMetrics(),
		start:        time.Now(),
		compactEvery: cfg.CompactEvery,
		muts:         map[string]*mutState{},
		sccs:         map[sccKey]*sccEntry{},
		latest:       map[latestKey]*nwhy.SLineGraph{},
		hints:        hints,
	}, nil
}

// SetPartitionHint records dataset's preferred shard count for sharded
// queries that do not name one (k < 1 removes the hint).
func (s *Server) SetPartitionHint(dataset string, k int) {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	if k < 1 {
		delete(s.hints, dataset)
		return
	}
	s.hints[dataset] = k
}

// PartitionHint reports dataset's configured shard count, 0 when unset.
func (s *Server) PartitionHint(dataset string) int {
	s.hintMu.Lock()
	defer s.hintMu.Unlock()
	return s.hints[dataset]
}

// Registry returns the server's dataset registry.
func (s *Server) Registry() *Registry { return s.reg }

// Admission returns the server's admission controller.
func (s *Server) Admission() *Admission { return s.adm }

// Cache returns the server's s-line result cache.
func (s *Server) Cache() *SLineCache { return s.cache }

// Engine returns the shared serving engine.
func (s *Server) Engine() *nwhy.Engine { return s.eng }

// do is the admission-controlled request wrapper every query method runs
// under: acquire a slot (bounded queue, wait deadline, ctx cancellation),
// run fn, record per-endpoint latency. The admission wait and the handler
// run are timed separately so queueing pressure is visible as such on
// /metrics instead of inflating handler latency.
func (s *Server) do(ctx context.Context, endpoint string, fn func(ctx context.Context) error) error {
	q0 := time.Now()
	release, err := s.adm.Acquire(ctx)
	queued := time.Since(q0)
	if err != nil {
		s.met.observeRejected(endpoint, queued)
		return err
	}
	defer release()
	t0 := time.Now()
	err = fn(ctx)
	s.met.observe(endpoint, queued, time.Since(t0), err)
	return err
}

// dataset resolves a registry entry.
func (s *Server) dataset(name string) (*nwhy.NWHypergraph, error) {
	if name == "" {
		return nil, fmt.Errorf("%w: missing dataset", ErrBadRequest)
	}
	return s.reg.Get(name)
}

// DatasetInfo describes one registry entry.
type DatasetInfo struct {
	Name          string `json:"name"`
	NumEdges      int    `json:"num_edges"`
	NumNodes      int    `json:"num_nodes"`
	NumIncidences int    `json:"num_incidences"`
	Source        string `json:"source,omitempty"`
}

// Datasets lists the registry (metadata only — not admission-controlled, so
// health checks stay responsive under load).
func (s *Server) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	names := s.reg.Names()
	out := make([]DatasetInfo, 0, len(names))
	for _, n := range names {
		g, err := s.reg.Get(n)
		if err != nil {
			continue // racing a concurrent removal is fine
		}
		out = append(out, DatasetInfo{
			Name:          n,
			NumEdges:      g.NumEdges(),
			NumNodes:      g.NumNodes(),
			NumIncidences: g.NumIncidences(),
			Source:        s.reg.Source(n),
		})
	}
	return out, nil
}

// StatsResult is the Table I characteristics row for one dataset.
type StatsResult struct {
	Dataset string     `json:"dataset"`
	Stats   core.Stats `json:"stats"`
}

// Stats computes the dataset's characteristics row.
func (s *Server) Stats(ctx context.Context, dataset string) (StatsResult, error) {
	var out StatsResult
	err := s.do(ctx, "stats", func(ctx context.Context) error {
		g, err := s.dataset(dataset)
		if err != nil {
			return err
		}
		out = StatsResult{Dataset: dataset, Stats: g.Stats()}
		return ctx.Err()
	})
	return out, err
}

// ToplexesResult lists the maximal hyperedges of a dataset.
type ToplexesResult struct {
	Dataset  string   `json:"dataset"`
	Count    int      `json:"count"`
	Toplexes []uint32 `json:"toplexes"`
}

// Toplexes computes the maximal hyperedges (paper Algorithm 3).
func (s *Server) Toplexes(ctx context.Context, dataset string) (ToplexesResult, error) {
	var out ToplexesResult
	err := s.do(ctx, "toplexes", func(ctx context.Context) error {
		g, err := s.dataset(dataset)
		if err != nil {
			return err
		}
		tops, err := g.ToplexesCtx(ctx)
		if err != nil {
			return err
		}
		out = ToplexesResult{Dataset: dataset, Count: len(tops), Toplexes: tops}
		return nil
	})
	return out, err
}

// SLineRequest names one s-line graph: the cache key components plus the
// (result-invariant) schedule hint.
type SLineRequest struct {
	Dataset  string
	S        int
	Edges    bool // line graph over hyperedges (true) or hypernodes (false)
	Weighted bool
	Strategy nwhy.Strategy
	Schedule nwhy.Schedule
	// Prune selects the kernel's pruning level. Materializing constructions
	// clamp anything above the (result-invariant) degree prefilter, so every
	// level yields the same graph; the level still enters the cache key as
	// the prune fingerprint.
	Prune nwhy.Prune
}

func (r SLineRequest) validate() error {
	if r.S < 1 {
		return fmt.Errorf("%w: s must be >= 1 (got %d)", ErrBadRequest, r.S)
	}
	if r.Weighted && !r.Edges {
		return fmt.Errorf("%w: weighted s-line graphs are only supported over hyperedges", ErrBadRequest)
	}
	return nil
}

// key maps the request onto its cache key. The schedule is deliberately not
// part of the key: it only affects construction scheduling, never the
// resulting graph.
func (r SLineRequest) key() CacheKey {
	return CacheKey{Dataset: r.Dataset, S: r.S, Edges: r.Edges, Weighted: r.Weighted, Strategy: r.Strategy, Prune: r.Prune}
}

// SLineResult summarizes one constructed (or cache-served) s-line graph.
type SLineResult struct {
	Dataset     string  `json:"dataset"`
	S           int     `json:"s"`
	Edges       bool    `json:"edges"`
	Weighted    bool    `json:"weighted"`
	NumVertices int     `json:"num_vertices"`
	NumEdges    int     `json:"num_edges"`
	CacheHit    bool    `json:"cache_hit"`
	ElapsedMs   float64 `json:"elapsed_ms"`
}

// slineGraph resolves the request's s-line graph through the cache,
// constructing it under ctx on a miss. Exactly one of the returns is
// non-nil depending on req.Weighted.
//
// The cache key carries the dataset's current mutation epoch, so a commit
// makes every stale entry unaddressable without explicit invalidation. A
// miss caused only by an epoch bump does not necessarily rebuild: for
// unweighted requests the cache's per-shape patch source feeds the facade's
// incremental refresh, which patches the cached pairs with the dirty-edge
// delta when the gap is insert-only and falls back to a full construction
// otherwise.
func (s *Server) slineGraph(ctx context.Context, req SLineRequest) (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, bool, error) {
	if err := req.validate(); err != nil {
		return nil, nil, false, err
	}
	g, err := s.dataset(req.Dataset)
	if err != nil {
		return nil, nil, false, err
	}
	key := req.key()
	key.Epoch = g.Epoch()
	opts := nwhy.ConstructOptions{Strategy: req.Strategy, Schedule: req.Schedule, Prune: req.Prune}
	return s.cache.Get(ctx, key, func() (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, error) {
		if req.Weighted {
			wlg, err := g.SLineGraphWeightedCtx(ctx, req.S, opts)
			return nil, wlg, err
		}
		var lg *nwhy.SLineGraph
		var err error
		if prev := s.latestFor(key, g); prev != nil {
			lg, _, err = g.RefreshSLineGraphCtx(ctx, prev, opts)
		} else {
			lg, err = g.SLineGraphCtx(ctx, req.S, req.Edges, opts)
		}
		if err != nil {
			return nil, nil, err
		}
		s.recordLatest(key, g, lg)
		return lg, nil, nil
	})
}

// SLine constructs (or serves from cache) the requested s-line graph and
// returns its shape.
func (s *Server) SLine(ctx context.Context, req SLineRequest) (SLineResult, error) {
	var out SLineResult
	err := s.do(ctx, "slinegraph", func(ctx context.Context) error {
		t0 := time.Now()
		lg, wlg, hit, err := s.slineGraph(ctx, req)
		if err != nil {
			return err
		}
		out = SLineResult{
			Dataset: req.Dataset, S: req.S, Edges: req.Edges, Weighted: req.Weighted,
			CacheHit: hit, ElapsedMs: float64(time.Since(t0)) / float64(time.Millisecond),
		}
		if req.Weighted {
			out.NumVertices, out.NumEdges = wlg.NumVertices(), wlg.NumEdges()
		} else {
			out.NumVertices, out.NumEdges = lg.NumVertices(), lg.NumEdges()
		}
		return nil
	})
	return out, err
}

// SCCRequest asks for the s-connected components of a dataset's hyperedges.
type SCCRequest struct {
	Dataset string
	S       int
	// Direct bypasses the s-line cache and runs the union-find kernel that
	// never materializes the line graph — the right call for one-shot
	// connectivity on a cold dataset.
	Direct bool
	// Incremental serves from the server-held maintained s-CC view: the
	// first call computes from scratch and keeps the union-find forest, and
	// insert-only mutation epochs are absorbed by growing it — the right
	// call for repeated connectivity on a mutating dataset. Mutually
	// exclusive with Direct.
	Incremental bool
	// Sharded runs the k-shard execution path: partition the dataset, run
	// the union-find kernel per shard on dedicated engines, merge across
	// halos. Labels match Direct exactly. Mutually exclusive with Direct
	// and Incremental.
	Sharded bool
	// Parts is the shard count for Sharded (0: the dataset's configured
	// partition hint, falling back to an engine-derived default).
	Parts int
	// WithLabels includes the full per-hyperedge label vector in the
	// result (the summary is always computed).
	WithLabels bool
	// Strategy selects the overlap counter for the legacy line-graph path;
	// the default pruned path auto-resolves it from the handle's memoized
	// degree statistics.
	Strategy nwhy.Strategy
	// Prune selects the pruning level for the default path (PruneAuto: the
	// connectivity arsenal, upgrading to toplex-only once the dataset's
	// toplex cache is warm; PruneNone: the unpruned baseline). Labels are
	// identical at every level.
	Prune nwhy.Prune
}

// SCCResult summarizes the s-component structure.
type SCCResult struct {
	Dataset       string `json:"dataset"`
	S             int    `json:"s"`
	NumComponents int    `json:"num_components"`
	LargestSize   int    `json:"largest_size"`
	CacheHit      bool   `json:"cache_hit"`
	// Incremental reports that the maintained view answered without a full
	// recompute (only meaningful on SCCRequest.Incremental).
	Incremental bool `json:"incremental,omitempty"`
	// Sharded echoes the execution path; Parts is the shard count used.
	Sharded bool     `json:"sharded,omitempty"`
	Parts   int      `json:"parts,omitempty"`
	Labels  []uint32 `json:"labels,omitempty"`
}

// SComponents computes s-connected components. The default path is the
// intent-aware pruned union-find kernel (no s-line graph is ever
// materialized; the prune level comes from req.Prune); Direct forces the
// unpruned-era direct kernel, Incremental the maintained view, Sharded the
// k-shard execution path. Labels agree across all of them.
func (s *Server) SComponents(ctx context.Context, req SCCRequest) (SCCResult, error) {
	var out SCCResult
	err := s.do(ctx, "scc", func(ctx context.Context) error {
		if req.S < 1 {
			return fmt.Errorf("%w: s must be >= 1 (got %d)", ErrBadRequest, req.S)
		}
		if req.Direct && req.Incremental {
			return fmt.Errorf("%w: direct and incremental are mutually exclusive", ErrBadRequest)
		}
		if req.Sharded && (req.Direct || req.Incremental) {
			return fmt.Errorf("%w: sharded is mutually exclusive with direct and incremental", ErrBadRequest)
		}
		if req.Parts < 0 || (req.Parts > 0 && !req.Sharded) {
			return fmt.Errorf("%w: parts requires sharded=true and must be >= 0", ErrBadRequest)
		}
		var (
			labels []uint32
			hit    bool
			inc    bool
			parts  int
		)
		switch {
		case req.Sharded:
			g, err := s.dataset(req.Dataset)
			if err != nil {
				return err
			}
			k := req.Parts
			if k < 1 {
				k = s.PartitionHint(req.Dataset)
			}
			labels, err = g.SConnectedComponentsShardedCtx(ctx, req.S, k)
			if err != nil {
				return err
			}
			parts = k // 0 means the facade picked an engine-derived count
		case req.Incremental:
			g, err := s.dataset(req.Dataset)
			if err != nil {
				return err
			}
			labels, inc, err = s.incrementalSCC(req.Dataset, req.S, g).Labels(ctx)
			if err != nil {
				return err
			}
		case req.Direct:
			g, err := s.dataset(req.Dataset)
			if err != nil {
				return err
			}
			labels, err = g.SConnectedComponentsDirectCtx(ctx, req.S)
			if err != nil {
				return err
			}
		default:
			// The pruned connectivity path: never materializes the s-line
			// graph, unions s-incident pairs under the full pruning arsenal
			// (degree prefilter, connected short-circuit, and — once the
			// dataset's toplex cache is warm — toplex-only construction).
			g, err := s.dataset(req.Dataset)
			if err != nil {
				return err
			}
			labels, err = g.SConnectedComponentsPrunedCtx(ctx, req.S, req.Prune)
			if err != nil {
				return err
			}
		}
		sizes := map[uint32]int{}
		largest := 0
		for _, l := range labels {
			sizes[l]++
			if sizes[l] > largest {
				largest = sizes[l]
			}
		}
		out = SCCResult{Dataset: req.Dataset, S: req.S, NumComponents: len(sizes), LargestSize: largest, CacheHit: hit, Incremental: inc, Sharded: req.Sharded, Parts: parts}
		if req.WithLabels {
			out.Labels = labels
		}
		return nil
	})
	return out, err
}

// SDistanceRequest asks for the s-walk distance between two hyperedges.
type SDistanceRequest struct {
	Dataset  string
	S        int
	Src, Dst int
	Weighted bool
}

// SDistanceResult carries the hop (or strength-weighted) s-distance;
// Distance is -1 (or +Inf serialized as "unreachable") when disconnected.
type SDistanceResult struct {
	Dataset   string  `json:"dataset"`
	S         int     `json:"s"`
	Src       int     `json:"src"`
	Dst       int     `json:"dst"`
	Weighted  bool    `json:"weighted"`
	Distance  float64 `json:"distance"`
	Reachable bool    `json:"reachable"`
	CacheHit  bool    `json:"cache_hit"`
}

func (s *Server) checkEndpoints(dataset string, src, dst int) error {
	g, err := s.dataset(dataset)
	if err != nil {
		return err
	}
	if src < 0 || src >= g.NumEdges() || dst < 0 || dst >= g.NumEdges() {
		return fmt.Errorf("%w: src/dst must be hyperedge IDs in [0,%d)", ErrBadRequest, g.NumEdges())
	}
	return nil
}

// SDistance computes the s-distance between two hyperedges via the cached
// s-line graph.
func (s *Server) SDistance(ctx context.Context, req SDistanceRequest) (SDistanceResult, error) {
	var out SDistanceResult
	err := s.do(ctx, "sdistance", func(ctx context.Context) error {
		if err := s.checkEndpoints(req.Dataset, req.Src, req.Dst); err != nil {
			return err
		}
		lg, wlg, hit, err := s.slineGraph(ctx, SLineRequest{Dataset: req.Dataset, S: req.S, Edges: true, Weighted: req.Weighted})
		if err != nil {
			return err
		}
		out = SDistanceResult{Dataset: req.Dataset, S: req.S, Src: req.Src, Dst: req.Dst, Weighted: req.Weighted, CacheHit: hit}
		if req.Weighted {
			d, err := wlg.SDistanceWeightedCtx(ctx, req.Src, req.Dst)
			if err != nil {
				return err
			}
			out.Distance, out.Reachable = d, !isInf(d)
		} else {
			d, err := lg.SDistanceCtx(ctx, req.Src, req.Dst)
			if err != nil {
				return err
			}
			out.Distance, out.Reachable = float64(d), d >= 0
		}
		return nil
	})
	return out, err
}

// SPathResult carries one shortest s-walk (nil when unreachable).
type SPathResult struct {
	Dataset  string   `json:"dataset"`
	S        int      `json:"s"`
	Src      int      `json:"src"`
	Dst      int      `json:"dst"`
	Weighted bool     `json:"weighted"`
	Path     []uint32 `json:"path"`
	CacheHit bool     `json:"cache_hit"`
}

// SPath computes one shortest s-walk between two hyperedges.
func (s *Server) SPath(ctx context.Context, req SDistanceRequest) (SPathResult, error) {
	var out SPathResult
	err := s.do(ctx, "spath", func(ctx context.Context) error {
		if err := s.checkEndpoints(req.Dataset, req.Src, req.Dst); err != nil {
			return err
		}
		lg, wlg, hit, err := s.slineGraph(ctx, SLineRequest{Dataset: req.Dataset, S: req.S, Edges: true, Weighted: req.Weighted})
		if err != nil {
			return err
		}
		out = SPathResult{Dataset: req.Dataset, S: req.S, Src: req.Src, Dst: req.Dst, Weighted: req.Weighted, CacheHit: hit}
		if req.Weighted {
			out.Path, err = wlg.SPathWeightedCtx(ctx, req.Src, req.Dst)
		} else {
			out.Path, err = lg.SPathCtx(ctx, req.Src, req.Dst)
		}
		return err
	})
	return out, err
}

// CentralityKind names one s-centrality.
type CentralityKind string

const (
	CentralityBetweenness  CentralityKind = "betweenness"
	CentralityCloseness    CentralityKind = "closeness"
	CentralityHarmonic     CentralityKind = "harmonic"
	CentralityEccentricity CentralityKind = "eccentricity"
	CentralityPageRank     CentralityKind = "pagerank"
)

// CentralityRequest asks for a per-hyperedge centrality vector over s-walks.
type CentralityRequest struct {
	Dataset    string
	S          int
	Kind       CentralityKind
	Normalized bool // betweenness only
	Weighted   bool // strength-weighted walks (not supported for pagerank)
}

// CentralityResult carries the full score vector.
type CentralityResult struct {
	Dataset  string         `json:"dataset"`
	S        int            `json:"s"`
	Kind     CentralityKind `json:"kind"`
	Weighted bool           `json:"weighted"`
	Scores   []float64      `json:"scores"`
	CacheHit bool           `json:"cache_hit"`
}

// Centrality computes an s-centrality vector via the cached s-line graph.
func (s *Server) Centrality(ctx context.Context, req CentralityRequest) (CentralityResult, error) {
	var out CentralityResult
	err := s.do(ctx, "centrality", func(ctx context.Context) error {
		if req.Weighted && req.Kind == CentralityPageRank {
			return fmt.Errorf("%w: weighted pagerank is not supported", ErrBadRequest)
		}
		lg, wlg, hit, err := s.slineGraph(ctx, SLineRequest{Dataset: req.Dataset, S: req.S, Edges: true, Weighted: req.Weighted})
		if err != nil {
			return err
		}
		var scores []float64
		switch req.Kind {
		case CentralityBetweenness:
			if req.Weighted {
				scores, err = wlg.SBetweennessCentralityWeightedCtx(ctx, req.Normalized)
			} else {
				scores, err = lg.SBetweennessCentralityCtx(ctx, req.Normalized)
			}
		case CentralityCloseness:
			if req.Weighted {
				scores, err = wlg.SClosenessCentralityWeightedCtx(ctx)
			} else {
				scores, err = lg.SClosenessCentralityCtx(ctx)
			}
		case CentralityHarmonic:
			if req.Weighted {
				scores, err = wlg.SHarmonicClosenessCentralityWeightedCtx(ctx)
			} else {
				scores, err = lg.SHarmonicClosenessCentralityCtx(ctx)
			}
		case CentralityEccentricity:
			if req.Weighted {
				scores, err = wlg.SEccentricityWeightedCtx(ctx)
			} else {
				scores, err = lg.SEccentricityCtx(ctx)
			}
		case CentralityPageRank:
			scores, err = lg.SPageRankCtx(ctx, 0.85, 1e-9, 100)
		default:
			return fmt.Errorf("%w: unknown centrality kind %q", ErrBadRequest, req.Kind)
		}
		if err != nil {
			return err
		}
		out = CentralityResult{Dataset: req.Dataset, S: req.S, Kind: req.Kind, Weighted: req.Weighted, Scores: scores, CacheHit: hit}
		return nil
	})
	return out, err
}

// HealthResult is the /healthz payload.
type HealthResult struct {
	Status     string   `json:"status"`
	Datasets   []string `json:"datasets"`
	InFlight   int64    `json:"in_flight"`
	QueueDepth int64    `json:"queue_depth"`
}

// Health reports liveness plus the key load gauges. Not
// admission-controlled: it must answer even when the query queue is full.
func (s *Server) Health() HealthResult {
	names := s.reg.Names()
	sort.Strings(names)
	return HealthResult{
		Status:     "ok",
		Datasets:   names,
		InFlight:   s.adm.InFlight(),
		QueueDepth: s.adm.QueueDepth(),
	}
}

func isInf(f float64) bool { return math.IsInf(f, 1) }
