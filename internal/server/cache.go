package server

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"nwhy"
)

// CacheKey identifies one constructed s-line graph. Schedule is absent on
// purpose: it changes how construction is scheduled, never what is built.
// Epoch is the dataset's mutation epoch at request time: a commit bumps it,
// so every entry built before the commit simply stops being addressable and
// ages out of the LRU — mutation invalidates the cache without any explicit
// invalidation traffic.
type CacheKey struct {
	Dataset  string
	S        int
	Edges    bool
	Weighted bool
	Strategy nwhy.Strategy
	// Prune is the requested pruning level — the prune-axis fingerprint.
	// Like Strategy it never changes what a materializing construction
	// builds (the facade clamps levels that would), but keying on it keeps
	// the entry's provenance explicit and future-proofs result-shaping
	// levels.
	Prune nwhy.Prune
	Epoch uint64
}

// base strips the epoch off the key: the identity of the request independent
// of dataset version, used to find patch sources across epochs.
func (k CacheKey) base() CacheKey {
	k.Epoch = 0
	return k
}

// cacheEntry is one single-flight slot. done is closed exactly once, when
// the building request finishes (successfully or not); waiters block on it
// (or their own ctx) instead of re-running the construction.
type cacheEntry struct {
	key  CacheKey
	done chan struct{}

	// Written once before done is closed, read-only after.
	lg  *nwhy.SLineGraph
	wlg *nwhy.WeightedSLineGraph
	err error
}

// SLineCache is a bounded LRU of constructed s-line graphs with
// single-flight deduplication: N concurrent requests for the same key cost
// one construction, and repeated requests cost none. Cached handles are
// never mutated by queries (the facade's *Ctx variants derive per-call
// engine bindings), so one entry can serve any number of concurrent
// readers.
type SLineCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[CacheKey]*list.Element // value: *cacheEntry
	order    *list.List                 // front = most recent

	hits      atomic.Int64
	misses    atomic.Int64
	waits     atomic.Int64
	evictions atomic.Int64
}

// NewSLineCache builds a cache bounded to capacity entries (< 1: 64).
func NewSLineCache(capacity int) *SLineCache {
	if capacity < 1 {
		capacity = 64
	}
	return &SLineCache{
		capacity: capacity,
		entries:  map[CacheKey]*list.Element{},
		order:    list.New(),
	}
}

// Get returns the s-line graph for key, running build under single-flight on
// a miss. The third return reports whether the result came from cache (a
// wait on another request's in-flight build counts as a hit — nothing was
// constructed for this caller). Failed builds are evicted so the next
// request retries.
func (c *SLineCache) Get(ctx context.Context, key CacheKey, build func() (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, error)) (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.order.MoveToFront(el)
		c.mu.Unlock()
		select {
		case <-e.done:
			// Built (or failed) already.
		default:
			c.waits.Add(1)
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, nil, false, ctx.Err()
			}
		}
		if e.err != nil {
			return nil, nil, false, e.err
		}
		c.hits.Add(1)
		return e.lg, e.wlg, true, nil
	}

	// Miss: install an in-flight entry, then build outside the lock.
	e := &cacheEntry{key: key, done: make(chan struct{})}
	c.entries[key] = c.order.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()
	c.misses.Add(1)

	e.lg, e.wlg, e.err = build()
	close(e.done)
	if e.err != nil {
		c.remove(key, e)
		return nil, nil, false, e.err
	}
	return e.lg, e.wlg, false, nil
}

// evictLocked drops least-recently-used completed entries until the cache
// fits. In-flight entries are skipped: evicting one would strand its
// waiters without invalidating the build.
func (c *SLineCache) evictLocked() {
	for c.order.Len() > c.capacity {
		evicted := false
		for el := c.order.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.done:
				c.order.Remove(el)
				delete(c.entries, e.key)
				c.evictions.Add(1)
				evicted = true
			default:
				continue
			}
			break
		}
		if !evicted {
			return // everything over capacity is in flight; let builds finish
		}
	}
}

// remove drops key iff it still maps to e (a concurrent rebuild may have
// replaced it).
func (c *SLineCache) remove(key CacheKey, e *cacheEntry) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// Len reports the number of cached (or in-flight) entries.
func (c *SLineCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports lifetime hits, misses, and single-flight waits. Waits are
// also counted as hits once the awaited build lands.
func (c *SLineCache) Stats() (hits, misses, waits int64) {
	return c.hits.Load(), c.misses.Load(), c.waits.Load()
}

// Evictions reports the lifetime count of completed entries dropped by the
// LRU bound — including stale-epoch entries aged out after mutations.
func (c *SLineCache) Evictions() int64 { return c.evictions.Load() }
