package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"nwhy"
)

// Registry is the concurrency-safe dataset table: name → loaded facade
// handle. Handles are added bound to the serving engine and are themselves
// safe for concurrent readers, so Get never copies.
type Registry struct {
	mu  sync.RWMutex
	m   map[string]*nwhy.NWHypergraph
	src map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]*nwhy.NWHypergraph{}, src: map[string]string{}}
}

// Add registers (or replaces) a dataset under name. source is a free-form
// provenance string ("" for in-memory datasets).
func (r *Registry) Add(name string, g *nwhy.NWHypergraph, source string) {
	r.mu.Lock()
	r.m[name] = g
	r.src[name] = source
	r.mu.Unlock()
}

// Get resolves a dataset by name.
func (r *Registry) Get(name string) (*nwhy.NWHypergraph, error) {
	r.mu.RLock()
	g, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return g, nil
}

// Source reports the provenance string recorded for name ("" if unknown).
func (r *Registry) Source(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.src[name]
}

// Names lists the registered dataset names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len reports the number of registered datasets.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

// warmExts are the file extensions WarmStart recognizes, in the order they
// shadow each other when one basename carries both.
var warmExts = []string{".nwhyb", ".mtx"}

// WarmStart loads every recognized hypergraph file directly under dir —
// .nwhyb binary snapshots (the fast path: deserialization skips parse and
// dedup entirely) and .mtx Matrix Market text — registering each under its
// basename without extension. Loading runs on eng as given — pass a
// ctx-bound engine (eng.WithContext(ctx)) so cancellation also aborts a
// parallel parse mid-file; ctx is observed between files either way, so a
// cancelled warm start keeps what it already loaded. Registered handles
// are rebound to the detached engine and never retain the boot deadline.
// Returns the names loaded, sorted by load order.
func (r *Registry) WarmStart(ctx context.Context, eng *nwhy.Engine, dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var loaded []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		ext := strings.ToLower(filepath.Ext(e.Name()))
		recognized := false
		for _, want := range warmExts {
			if ext == want {
				recognized = true
				break
			}
		}
		if !recognized {
			continue
		}
		if err := ctx.Err(); err != nil {
			return loaded, err
		}
		path := filepath.Join(dir, e.Name())
		g, err := nwhy.LoadFile(path, nwhy.LoadOptions{Engine: eng})
		if err != nil {
			return loaded, fmt.Errorf("warm start %s: %w", path, err)
		}
		name := strings.TrimSuffix(e.Name(), filepath.Ext(e.Name()))
		// The caller's engine may be bound to the boot context so that
		// cancellation aborts a long parallel load; the handle must not
		// stay on that deadline once it is serving.
		r.Add(name, g.WithEngine(eng.Detach()), path)
		loaded = append(loaded, name)
	}
	return loaded, nil
}
